// Deadline-slack study: how much energy do tight deadlines cost?
//
// The intro's premise is that deadlines are the binding performance
// requirement; this example quantifies their energy price. The same
// volume is shipped under spans stretched by a slack factor (slack 1 =
// deadline just met at the base rate; larger = looser), and we compare
// RS and SP+MCF energies. Speed scaling predicts energy ~ rate^(alpha-1)
// per unit of data, so doubling slack should roughly halve the dynamic
// energy at alpha = 2.
//
// Run: ./build/examples/deadline_study [seed]
#include <cstdio>
#include <cstdlib>

#include "baselines/baselines.h"
#include "common/random.h"
#include "common/stats.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "sim/replay.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dcn;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  const Topology topo = fat_tree(8);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  const int num_flows = 60;
  const int runs = 3;

  std::printf("Deadline-slack study on %s (alpha=2, %d flows, %d runs)\n",
              topo.name().c_str(), num_flows, runs);
  std::printf("%8s  %14s  %14s  %12s\n", "slack", "RS energy", "SP+MCF energy",
              "RS/LB");
  for (double slack : {1.0, 1.5, 2.0, 4.0, 8.0}) {
    RunningStats rs_energy, sp_energy, rs_ratio;
    for (int run = 0; run < runs; ++run) {
      Rng rng(seed + static_cast<std::uint64_t>(run));
      // Volume 10 at base rate 1: span length = 10 * slack.
      const auto flows = slack_workload(topo, num_flows, /*volume=*/10.0,
                                        /*base_rate=*/1.0, slack,
                                        {0.0, 100.0}, rng);
      RandomScheduleOptions options;
      options.relaxation.frank_wolfe.max_iterations = 15;
      options.relaxation.frank_wolfe.gap_tolerance = 2e-3;
      const auto rs = random_schedule(g, flows, model, rng, options);
      if (!rs.capacity_feasible) continue;
      const auto replay = replay_schedule(g, flows, rs.schedule, model);
      if (!replay.ok) continue;
      const auto sp = sp_mcf(g, flows, model);
      rs_energy.add(replay.energy);
      sp_energy.add(energy_phi_f(g, sp.schedule, model, flow_horizon(flows)));
      rs_ratio.add(replay.energy / rs.lower_bound_energy);
    }
    std::printf("%8.1f  %14.1f  %14.1f  %12s\n", slack, rs_energy.mean(),
                sp_energy.mean(), format_mean_ci(rs_ratio).c_str());
  }
  std::printf(
      "\nReading: dynamic energy drops ~1/slack at alpha=2 — loose deadlines\n"
      "let links run slower; the RS/LB ratio stays flat (the algorithm\n"
      "tracks the relaxation at every tightness).\n");
  return 0;
}
