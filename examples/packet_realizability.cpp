// From fluid schedule to packets: demonstrates the library's
// discrete-event packet simulator on a single instance, showing the
// Sec. III-C realizability story end to end — and its one caveat.
//
// Run: ./build/examples/packet_realizability [seed]
#include <cstdio>
#include <cstdlib>

#include "baselines/baselines.h"
#include "common/random.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "sim/packet_sim.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dcn;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;

  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);

  Rng rng(seed);
  PaperWorkloadParams params;
  params.num_flows = 15;
  const auto flows = paper_workload(topo, params, rng);

  const auto rs = random_schedule(g, flows, model, rng);
  if (!rs.capacity_feasible) {
    std::printf("rounding found no capacity-feasible schedule; rerun with "
                "another seed\n");
    return 1;
  }
  std::printf("fluid schedule: energy %.1f, every deadline met by "
              "construction (Theorem 4)\n\n",
              rs.energy);

  std::printf("%10s  %10s  %14s  %12s\n", "priority", "pkt size",
              "max lateness", "verdict");
  for (double size : {0.5, 0.1, 0.02}) {
    for (auto [name, priority] :
         {std::pair{"EDF", PacketSimOptions::Priority::kEdf},
          std::pair{"start", PacketSimOptions::Priority::kStartTime}}) {
      PacketSimOptions options;
      options.packet_size = size;
      options.priority = priority;
      const auto report = packet_simulate(g, flows, rs.schedule, options);
      std::printf("%10s  %10.2f  %14.5f  %12s\n", name, size,
                  report.max_lateness,
                  report.all_deadlines_met ? "ok" : "LATE");
    }
  }
  std::printf(
      "\nThe lateness columns shrink linearly with the packet size: in the\n"
      "fluid limit the schedule is realized exactly. EDF priorities are the\n"
      "robust choice; the start-time rule can stall tight flows behind\n"
      "loose ones on other instances (see EXPERIMENTS.md E6).\n");
  return 0;
}
