// Walkthrough of the paper's Example 1 (Sec. III-C) on the Fig. 1 line
// network, showing how Most-Critical-First reduces DCFS to speed
// scaling with virtual weights.
//
// Network: A --- B --- C, power f(x) = x^2.
// Flows:  j1 = (A->C, [2,4], w=6),  j2 = (A->B, [1,3], w=8).
//
// The virtual weights are w'_1 = 6 * sqrt(2) (two hops) and w'_2 = 8;
// the critical interval is [1,4] on link A->B with intensity
// (8 + 6 sqrt 2)/3, giving s2 = (8+6 sqrt 2)/3 and s1 = s2/sqrt(2).
#include <cmath>
#include <cstdio>

#include "dcfs/most_critical_first.h"
#include "graph/shortest_path.h"
#include "schedule/schedule.h"
#include "speedscale/yds.h"
#include "topology/builders.h"

int main() {
  using namespace dcn;

  const Topology topo = line_network(3);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);

  const std::vector<Flow> flows{
      {0, 0, 2, 6.0, 2.0, 4.0},  // j1: two hops
      {1, 0, 1, 8.0, 1.0, 3.0},  // j2: one hop
  };

  std::printf("Step 1 — virtual weights (Theorem 1): w'_i = w_i |P_i|^(1/2)\n");
  std::printf("  w'_1 = 6 * sqrt(2) = %.6f   (path A->B->C, 2 hops)\n",
              6.0 * std::sqrt(2.0));
  std::printf("  w'_2 = 8                       (path A->B, 1 hop)\n\n");

  std::printf("Step 2 — the equivalent single-processor YDS instance:\n");
  const std::vector<SsJob> jobs{
      {0, 6.0 * std::sqrt(2.0), {2.0, 4.0}},
      {1, 8.0, {1.0, 3.0}},
  };
  const SsSchedule yds = yds_schedule(jobs);
  std::printf("  both jobs run at the critical speed %.6f in [1,4]\n",
              yds.jobs[0].speed);
  std::printf("  (8 + 6 sqrt 2)/3 = %.6f\n\n", (8.0 + 6.0 * std::sqrt(2.0)) / 3.0);

  std::printf("Step 3 — Most-Critical-First on the network instance:\n");
  std::vector<Path> paths;
  for (const Flow& fl : flows) {
    paths.push_back(*bfs_shortest_path(g, fl.src, fl.dst));
  }
  const DcfsResult result = most_critical_first(g, flows, paths, model);
  std::printf("  s1 = %.6f, s2 = %.6f  (sqrt(2) s1 = %.6f = s2)\n",
              result.rates[0], result.rates[1], std::sqrt(2.0) * result.rates[0]);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (const RateSegment& seg : result.schedule.flows[i].segments) {
      std::printf("  j%zu transmits in [%.4f, %.4f) at rate %.4f\n", i + 1,
                  seg.interval.lo, seg.interval.hi, seg.rate);
    }
  }

  const double energy = energy_phi_g(g, result.schedule, model, {1.0, 4.0});
  std::printf("\nStep 4 — energy: Phi = 2*6*s1 + 8*s2 = %.6f\n", energy);
  std::printf("          YDS equivalent energy        = %.6f\n", yds.energy(2.0));
  return 0;
}
