// MapReduce-style shuffle study: m mappers each send a partition to r
// reducers inside one deadline window (the all-to-all pattern of
// Sec. VI's MapReduce references [27]).
//
// Compares three routing policies under identical optimal-rate
// scheduling where applicable:
//   RS      — Random-Schedule (relaxation-guided randomized rounding),
//   ECMP    — random equal-cost path per flow + Most-Critical-First,
//   SP      — deterministic shortest path + Most-Critical-First.
//
// Run: ./build/examples/shuffle_study [seed]
#include <cstdio>
#include <cstdlib>

#include "baselines/baselines.h"
#include "common/random.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "sim/replay.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dcn;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  const Topology topo = fat_tree(8);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);

  std::printf("Shuffle study on %s (alpha=2, volume 2 per pair, window 30)\n",
              topo.name().c_str());
  std::printf("%12s  %8s  %12s  %12s  %12s  %12s\n", "m x r", "flows", "LB",
              "RS", "ECMP+MCF", "SP+MCF");

  for (int m : {4, 8, 12}) {
    const int r = m;
    Rng rng(seed);
    const auto flows =
        shuffle_workload(topo, m, r, /*volume=*/2.0, {0.0, 30.0}, rng);

    const auto rs = random_schedule(g, flows, model, rng);
    const auto rs_replay = replay_schedule(g, flows, rs.schedule, model);

    Rng ecmp_rng(seed ^ 0xabc);
    const auto ecmp = ecmp_mcf(g, flows, model, /*width=*/16, ecmp_rng);
    const double ecmp_energy =
        energy_phi_f(g, ecmp.schedule, model, flow_horizon(flows));

    const auto sp = sp_mcf(g, flows, model);
    const double sp_energy =
        energy_phi_f(g, sp.schedule, model, flow_horizon(flows));

    std::printf("%5dx%-6d  %8zu  %12.1f  %12.1f  %12.1f  %12.1f\n", m, r,
                flows.size(), rs.lower_bound_energy, rs_replay.energy,
                ecmp_energy, sp_energy);
  }

  std::printf(
      "\nReading: ECMP hashing recovers part of RS's advantage over SP by\n"
      "accidental spreading, but RS's relaxation-guided choice (which sees\n"
      "the whole shuffle at once) stays closest to the lower bound.\n");
  return 0;
}
