// MapReduce-style shuffle study: m mappers each send a partition to r
// reducers inside one deadline window (the all-to-all pattern of
// Sec. VI's MapReduce references [27]).
//
// Engine-driven: the "fat_tree8/shuffle" scenario is rebuilt per
// shuffle size, and three registry solvers run on the same Instance —
// identical optimal-rate scheduling where applicable:
//   dcfsr    — Random-Schedule (relaxation-guided randomized rounding),
//   ecmp_mcf — random equal-cost path per flow + Most-Critical-First,
//   mcf      — deterministic shortest path + Most-Critical-First.
//
// Run: ./build/examples/shuffle_study [seed]
#include <cstdio>
#include <cstdlib>

#include "engine/instance.h"
#include "engine/registry.h"
#include "engine/scenario.h"
#include "engine/solvers.h"

int main(int argc, char** argv) {
  using namespace dcn::engine;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  const ScenarioSuite& suite = ScenarioSuite::default_suite();
  const SolverRegistry& registry = default_registry();

  std::printf(
      "Shuffle study on fat_tree8 (alpha=2, volume 2 per pair, window 30)\n");
  std::printf("%12s  %8s  %12s  %12s  %12s  %12s\n", "m x r", "flows", "LB",
              "RS", "ECMP+MCF", "SP+MCF");

  bool all_ok = true;
  for (const int m : {4, 8, 12}) {
    ScenarioOptions options;
    options.mappers = m;
    options.reducers = m;
    options.volume = 2.0;
    options.window = {0.0, 30.0};
    const Instance instance = suite.build("fat_tree8/shuffle", seed, options);

    const SolverOutcome rs = registry.create("dcfsr")->solve(instance);
    // Width 16 as in the original study (the registry default is 8).
    const SolverOutcome ecmp = EcmpMcfSolver(/*width=*/16).solve(instance);
    const SolverOutcome sp = registry.create("mcf")->solve(instance);
    all_ok = all_ok && rs.feasible && ecmp.feasible && sp.feasible;

    std::printf("%5dx%-6d  %8zu  %12.1f  %12.1f  %12.1f  %12.1f\n", m, m,
                instance.flows().size(), rs.lower_bound, rs.energy, ecmp.energy,
                sp.energy);
  }

  std::printf(
      "\nReading: ECMP hashing recovers part of RS's advantage over SP by\n"
      "accidental spreading, but RS's relaxation-guided choice (which sees\n"
      "the whole shuffle at once) stays closest to the lower bound.\n");
  return all_ok ? 0 : 1;
}
