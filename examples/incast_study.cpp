// Partition-aggregate (incast) study — the workload the paper's
// introduction motivates: search/social-network frontends fan a request
// out to many workers whose responses must all arrive before a rigid
// latency budget.
//
// Many senders transmit to one aggregator inside a common window. The
// aggregator's host link is an unavoidable bottleneck, but the paths
// toward it are not: Random-Schedule spreads them across the fabric
// while shortest-path routing stacks pod-local links. We sweep the
// sender count and report energies plus the fraction of deadlines met.
//
// Run: ./build/examples/incast_study [seed]
#include <cstdio>
#include <cstdlib>

#include "baselines/baselines.h"
#include "common/random.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "sim/replay.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dcn;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  const Topology topo = fat_tree(8);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);

  std::printf("Incast study on %s (alpha=2, volume 5 per sender, window 20)\n",
              topo.name().c_str());
  std::printf("%10s  %12s  %12s  %12s  %10s\n", "senders", "LB", "RS", "SP+MCF",
              "deadlines");

  for (int senders : {4, 8, 16, 32, 64}) {
    Rng rng(seed);
    const auto flows = incast_workload(topo, senders, /*volume=*/5.0,
                                       {0.0, 20.0}, rng);
    const auto rs = random_schedule(g, flows, model, rng);
    const auto rs_replay = replay_schedule(g, flows, rs.schedule, model);
    const auto sp = sp_mcf(g, flows, model);
    const auto sp_replay = replay_schedule(g, flows, sp.schedule, model);

    int met = 0;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (rs_replay.delivered[i] >= flows[i].volume * (1.0 - 1e-6)) ++met;
    }
    std::printf("%10d  %12.1f  %12.1f  %12.1f  %7d/%d\n", senders,
                rs.lower_bound_energy, rs_replay.energy, sp_replay.energy, met,
                senders);
  }

  std::printf(
      "\nReading: every response meets its deadline by construction\n"
      "(Theorem 4). At small fan-in RS tracks LB closely; as fan-in grows\n"
      "the shared aggregator link dominates all schemes, so the curves\n"
      "converge — routing freedom only matters where path diversity exists.\n");
  return 0;
}
