// Partition-aggregate (incast) study — the workload the paper's
// introduction motivates: search/social-network frontends fan a request
// out to many workers whose responses must all arrive before a rigid
// latency budget.
//
// Engine-driven: the "fat_tree8/incast" scenario is rebuilt per fan-in
// via ScenarioOptions, and both solvers come from the registry. The
// aggregator's host link is an unavoidable bottleneck, but the paths
// toward it are not: Random-Schedule spreads them across the fabric
// while shortest-path routing stacks pod-local links. We sweep the
// sender count and report energies plus replay-validated feasibility.
//
// Run: ./build/examples/incast_study [seed]
#include <cstdio>
#include <cstdlib>

#include "engine/instance.h"
#include "engine/registry.h"
#include "engine/scenario.h"

int main(int argc, char** argv) {
  using namespace dcn::engine;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  const ScenarioSuite& suite = ScenarioSuite::default_suite();
  const SolverRegistry& registry = default_registry();

  std::printf(
      "Incast study on fat_tree8 (alpha=2, volume 5 per sender, window 20)\n");
  std::printf("%10s  %12s  %12s  %12s  %10s\n", "senders", "LB", "RS", "SP+MCF",
              "validated");

  bool all_ok = true;
  for (const int senders : {4, 8, 16, 32, 64}) {
    ScenarioOptions options;
    options.senders = senders;
    options.volume = 5.0;
    options.window = {0.0, 20.0};
    const Instance instance = suite.build("fat_tree8/incast", seed, options);

    const SolverOutcome rs = registry.create("dcfsr")->solve(instance);
    const SolverOutcome sp = registry.create("mcf")->solve(instance);
    all_ok = all_ok && rs.feasible && sp.feasible;

    std::printf("%10d  %12.1f  %12.1f  %12.1f  %7s/%s\n", senders,
                rs.lower_bound, rs.energy, sp.energy,
                rs.feasible ? "RS ok" : "RS FAIL",
                sp.feasible ? "SP ok" : "SP FAIL");
  }

  std::printf(
      "\nReading: every response meets its deadline by construction\n"
      "(Theorem 4). At small fan-in RS tracks LB closely; as fan-in grows\n"
      "the shared aggregator link dominates all schemes, so the curves\n"
      "converge — routing freedom only matters where path diversity exists.\n");
  return all_ok ? 0 : 1;
}
