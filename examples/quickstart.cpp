// Quickstart: the full public-API tour in ~60 lines.
//
// Builds the paper's evaluation fabric (fat-tree k=8: 80 switches, 128
// hosts), generates a deadline-constrained workload, then schedules it
// three ways and compares energies:
//   1. LB        — fractional relaxation (not a real schedule; a bound),
//   2. RS        — Random-Schedule, the paper's DCFSR approximation,
//   3. SP+MCF    — shortest paths + the optimal DCFS rate assignment.
//
// Build & run:  ./build/examples/quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "baselines/baselines.h"
#include "common/random.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "sim/replay.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dcn;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2014;

  // 1. The network: fat-tree(8) and the Eq. 1 power model f(x) = x^2.
  const Topology topo = fat_tree(8);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(/*alpha=*/2.0);
  std::printf("network: %s — %d switches, %d hosts, %d directed links\n",
              topo.name().c_str(), topo.num_switches(), topo.num_hosts(),
              g.num_edges());

  // 2. A workload of deadline-constrained flows (the Sec. V-C shape).
  Rng rng(seed);
  PaperWorkloadParams params;
  params.num_flows = 100;
  const std::vector<Flow> flows = paper_workload(topo, params, rng);
  std::printf("workload: %zu flows, horizon [%.1f, %.1f], max density %.2f\n",
              flows.size(), flow_horizon(flows).lo, flow_horizon(flows).hi,
              max_density(flows));

  // 3. Random-Schedule: joint routing + scheduling (Algorithm 2). The
  //    trimmed Frank-Wolfe budget moves the lower bound by < 0.5%
  //    relative to the library default while running ~5x faster.
  RandomScheduleOptions options;
  options.relaxation.frank_wolfe.max_iterations = 15;
  options.relaxation.frank_wolfe.gap_tolerance = 2e-3;
  const RandomScheduleResult rs = random_schedule(g, flows, model, rng, options);
  std::printf("\nRandom-Schedule: energy %.1f (LB %.1f, ratio %.3f, "
              "%d rounding attempt%s)\n",
              rs.energy, rs.lower_bound_energy,
              rs.energy / rs.lower_bound_energy, rs.rounding_attempts,
              rs.rounding_attempts == 1 ? "" : "s");

  // 4. The baseline: shortest-path routing + Most-Critical-First rates.
  const DcfsResult sp = sp_mcf(g, flows, model);
  const double sp_energy =
      energy_phi_f(g, sp.schedule, model, flow_horizon(flows));
  std::printf("SP + MCF:        energy %.1f (ratio %.3f)\n", sp_energy,
              sp_energy / rs.lower_bound_energy);

  // 5. Always validate with the independent replayer: every flow done
  //    by its deadline, no link over capacity, energy re-derived.
  const ReplayReport replay = replay_schedule(g, flows, rs.schedule, model);
  std::printf("\nreplay: %s — %d active links, peak rate %.2f\n",
              replay.ok ? "all deadlines met" : "VIOLATIONS",
              replay.active_links, replay.peak_rate);
  for (const std::string& issue : replay.issues) {
    std::printf("  !! %s\n", issue.c_str());
  }
  return replay.ok ? 0 : 1;
}
