// Quickstart: the engine-API tour in ~50 lines.
//
// Builds the paper's evaluation scenario (fat-tree k=8, Sec. V-C
// workload), then runs two registry solvers on the same Instance and
// compares them:
//   * dcfsr — Random-Schedule, the paper's DCFSR approximation (also
//             reports the fractional lower bound LB),
//   * mcf   — shortest paths + the optimal DCFS rate assignment
//             (the paper's SP+MCF baseline).
// Every outcome is replay-validated by construction: `feasible` means
// the independent replayer confirmed deadlines, volumes, capacities.
//
// Build & run:  ./build/examples/quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "engine/instance.h"
#include "engine/registry.h"
#include "engine/scenario.h"

int main(int argc, char** argv) {
  using namespace dcn::engine;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2014;

  // 1. The scenario: topology x workload x power model, one call.
  ScenarioOptions options;
  options.num_flows = 100;  // the Sec. V-C scale
  const Instance instance =
      ScenarioSuite::default_suite().build("fat_tree8/paper", seed, options);
  std::printf("instance: %s\n\n", instance.summary().c_str());

  // 2. Solvers come from the registry by name; unknown names throw
  //    with the full catalogue in the message.
  const SolverRegistry& registry = default_registry();

  const SolverOutcome rs = registry.create("dcfsr")->solve(instance);
  std::printf("dcfsr: energy %.1f (LB %.1f, ratio %.3f) — %s\n", rs.energy,
              rs.lower_bound, rs.energy / rs.lower_bound,
              rs.feasible ? "replay-validated" : rs.first_issue.c_str());

  const SolverOutcome sp = registry.create("mcf")->solve(instance);
  std::printf("mcf:   energy %.1f (ratio %.3f)       — %s\n", sp.energy,
              sp.energy / rs.lower_bound,
              sp.feasible ? "replay-validated" : sp.first_issue.c_str());

  // 3. Solver-specific diagnostics travel in the outcome's stats list.
  std::printf("\ndiagnostics:\n");
  for (const auto& [key, value] : rs.stats) {
    std::printf("  dcfsr %s = %g\n", key.c_str(), value);
  }

  std::printf("\njoint routing+scheduling saves %.1f%% over SP routing here.\n",
              100.0 * (1.0 - rs.energy / sp.energy));
  return rs.feasible && sp.feasible ? 0 : 1;
}
