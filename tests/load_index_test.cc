// Differential suite of the incremental load index.
//
// LoadProfile's contract is *bitwise* equivalence with StepFunction —
// same adds, same probes, same answers to the last bit — on every probe
// at or after the prune point. These tests pin that contract on
// randomized histories (including deliberately colliding breakpoint
// times, where the difference representation accumulates float dust),
// the segment enumeration against segments(), pruning at a moving
// low-water mark, and the EdgeLoadIndex wrapper's audit mode + health
// counters. The online schedulers' behavior being unchanged by the
// index (PRs 4–6 outputs byte-identical) rests on exactly these
// equalities.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "baselines/baselines.h"
#include "common/piecewise.h"
#include "common/random.h"
#include "online/load_index.h"
#include "power/power_model.h"

namespace dcn {
namespace {

/// A random committed-load-shaped interval: breakpoints drawn from a
/// coarse grid half the time (forcing exact time collisions, the
/// accumulate-into-one-entry path) and continuously otherwise.
Interval random_interval(Rng& rng, double lo_min, double lo_max) {
  const auto draw = [&](double lo, double hi) {
    if (rng.uniform() < 0.5) {
      return 0.25 * static_cast<double>(rng.uniform_int(
                        static_cast<std::int64_t>(lo * 4),
                        static_cast<std::int64_t>(hi * 4)));
    }
    return rng.uniform(lo, hi);
  };
  const double lo = draw(lo_min, lo_max);
  return {lo, lo + std::max(0.25, draw(0.0, 3.0))};
}

double random_rate(Rng& rng) {
  // Mix exact-dyadic rates (collision-friendly: equal-magnitude adds
  // cancel exactly) with continuous ones.
  if (rng.uniform() < 0.5) {
    return 0.5 * static_cast<double>(rng.uniform_int(-4, 8));
  }
  return rng.uniform(-2.0, 4.0);
}

TEST(LoadProfile, ProbesMatchStepFunctionBitwiseOnRandomHistories) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    StepFunction naive;
    LoadProfile indexed;
    for (int step = 0; step < 300; ++step) {
      const Interval iv = random_interval(rng, 0.0, 20.0);
      const double rate = random_rate(rng);
      naive.add(iv, rate);
      indexed.add(iv, rate);

      // Interleave probes with adds so the lazy caches refresh from
      // every possible dirty prefix, not just a fully-built history.
      const double t = rng.uniform(-1.0, 25.0);
      ASSERT_EQ(indexed.value_at(t), naive.value_at(t)) << "seed " << seed;
      const Interval window = random_interval(rng, -1.0, 24.0);
      ASSERT_EQ(indexed.max_within(window), naive.max_within(window))
          << "seed " << seed;
    }
    // Windows wider than any block span exercise the block-max shortcut
    // end to end.
    ASSERT_EQ(indexed.max_within({-10.0, 100.0}),
              naive.max_within({-10.0, 100.0}));
  }
}

TEST(LoadProfile, SegmentWalkMatchesSegmentsSuffix) {
  // for_each_segment_from rewinds to a guaranteed run boundary, so the
  // emitted runs must be exactly a suffix of segments() — bitwise, and
  // covering every run that ends after `from`.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    StepFunction naive;
    LoadProfile indexed;
    for (int step = 0; step < 120; ++step) {
      const Interval iv = random_interval(rng, 0.0, 20.0);
      const double rate = random_rate(rng);
      naive.add(iv, rate);
      indexed.add(iv, rate);
    }
    const std::vector<std::pair<Interval, double>> reference =
        naive.segments();
    for (const double from :
         {-std::numeric_limits<double>::infinity(), 0.0, 3.7, 10.0, 19.25,
          50.0}) {
      std::vector<std::pair<Interval, double>> walked;
      indexed.for_each_segment_from(from, [&](const Interval& run, double v) {
        walked.emplace_back(run, v);
        return true;
      });
      ASSERT_LE(walked.size(), reference.size()) << "seed " << seed;
      const std::size_t offset = reference.size() - walked.size();
      for (std::size_t i = 0; i < walked.size(); ++i) {
        EXPECT_EQ(walked[i].first.lo, reference[offset + i].first.lo)
            << "seed " << seed << " from " << from;
        EXPECT_EQ(walked[i].first.hi, reference[offset + i].first.hi)
            << "seed " << seed << " from " << from;
        EXPECT_EQ(walked[i].second, reference[offset + i].second)
            << "seed " << seed << " from " << from;
      }
      // Completeness: every run ending after `from` was walked.
      for (std::size_t i = 0; i < offset; ++i) {
        EXPECT_LE(reference[i].first.hi, from) << "seed " << seed;
      }
    }
    // Early exit: returning false stops after the first run.
    int calls = 0;
    indexed.for_each_segment_from(
        -std::numeric_limits<double>::infinity(), [&](const Interval&, double) {
          ++calls;
          return false;
        });
    EXPECT_LE(calls, 1);
  }
}

TEST(LoadProfile, PruningPreservesProbesAtOrAfterTheLowWaterMark) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    StepFunction naive;  // never pruned: the reference fold
    LoadProfile indexed;
    double mark = -std::numeric_limits<double>::infinity();
    for (int step = 0; step < 300; ++step) {
      // Releases march forward like an arrival trace; the mark trails
      // them like the scheduler's low-water mark.
      const double base = 0.1 * static_cast<double>(step);
      const Interval iv = random_interval(rng, base, base + 2.0);
      const double rate = random_rate(rng);
      naive.add(iv, rate);
      indexed.add(iv, rate);
      if (step % 25 == 24) {
        mark = base;  // strictly increasing: prune points only advance
        indexed.prune_before(mark);
        EXPECT_EQ(indexed.prune_time(), mark);
      }
      const double t = rng.uniform(std::max(mark, base - 1.0), base + 5.0);
      ASSERT_EQ(indexed.value_at(t), naive.value_at(t))
          << "seed " << seed << " step " << step;
      const double wlo = rng.uniform(std::max(mark, base - 1.0), base + 3.0);
      const Interval window{wlo, wlo + rng.uniform(0.1, 4.0)};
      ASSERT_EQ(indexed.max_within(window), naive.max_within(window))
          << "seed " << seed << " step " << step;
    }
    // The trace ran far past the first prune point, so history must
    // actually have been folded away — live working set strictly
    // smaller than the full breakpoint count.
    EXPECT_GT(indexed.pruned_breakpoints(), 0);
    EXPECT_LT(indexed.live_breakpoints(),
              indexed.live_breakpoints() + indexed.pruned_breakpoints());
  }
}

TEST(LoadProfile, PruneIsIdempotentAndMonotone) {
  LoadProfile p;
  p.add({0.0, 1.0}, 2.0);
  p.add({1.0, 2.0}, 3.0);
  p.add({2.0, 3.0}, 1.0);
  p.prune_before(1.5);
  const std::int64_t pruned = p.pruned_breakpoints();
  EXPECT_GT(pruned, 0);
  p.prune_before(1.5);  // same mark: no-op
  p.prune_before(0.5);  // regressing mark: no-op (monotone)
  EXPECT_EQ(p.pruned_breakpoints(), pruned);
  EXPECT_EQ(p.prune_time(), 1.5);
  // Values at/after the mark keep the exact fold.
  EXPECT_EQ(p.value_at(1.5), 3.0);
  EXPECT_EQ(p.value_at(2.5), 1.0);
  EXPECT_EQ(p.value_at(3.5), 0.0);
}

TEST(LoadProfile, WindowEdgesAreHalfOpenAtExactBreakpoints) {
  // The admission probes (rate_fits and the re-rate pass's segment
  // checks) ask max_within over spans whose endpoints routinely
  // coincide with committed breakpoints — a flow scheduled back-to-back
  // after another starts exactly where the other ends. The contract is
  // half-open on both sides: a segment's value is visible to a window
  // iff the segment's interior overlaps the window's interior, so
  // touching at a shared endpoint is never interference.
  LoadProfile p;
  StepFunction naive;
  for (const auto& [iv, rate] :
       {std::pair<Interval, double>{{0.0, 1.0}, 2.0},
        std::pair<Interval, double>{{1.0, 2.0}, 3.0},
        std::pair<Interval, double>{{2.0, 3.0}, 1.0}}) {
    p.add(iv, rate);
    naive.add(iv, rate);
  }
  // Windows aligned exactly with one segment see that segment only.
  EXPECT_EQ(p.max_within({0.0, 1.0}), 2.0);
  EXPECT_EQ(p.max_within({1.0, 2.0}), 3.0);
  EXPECT_EQ(p.max_within({2.0, 3.0}), 1.0);
  // A window ending exactly where load begins, or beginning exactly
  // where it ends, sees nothing (off-by-one in either comparison would
  // reject a perfectly packable back-to-back flow).
  EXPECT_EQ(p.max_within({-1.0, 0.0}), 0.0);
  EXPECT_EQ(p.max_within({3.0, 4.0}), 0.0);
  // Degenerate (empty) windows pinned at a breakpoint see nothing.
  EXPECT_EQ(p.max_within({1.0, 1.0}), 0.0);
  // value_at at an exact breakpoint is right-continuous: the new rate.
  EXPECT_EQ(p.value_at(0.0), 2.0);
  EXPECT_EQ(p.value_at(1.0), 3.0);
  EXPECT_EQ(p.value_at(3.0), 0.0);
  // And every one of the above is the naive fold's answer, bitwise.
  for (const Interval w : {Interval{0.0, 1.0}, Interval{1.0, 2.0},
                           Interval{2.0, 3.0}, Interval{-1.0, 0.0},
                           Interval{3.0, 4.0}, Interval{1.0, 1.0}}) {
    EXPECT_EQ(p.max_within(w), naive.max_within(w));
  }
}

TEST(EdgeLoadIndex, BackToBackSpansAtASharedBreakpointDoNotInterfere) {
  // The scheduler-level consequence of half-open windows: a committed
  // flow at full capacity on [0, 5) leaves the rate_fits probe for a
  // second full-rate flow on [5, 10) reading zero load — exactly at the
  // shared breakpoint, no epsilon shaving needed.
  EdgeLoadIndex index(1, /*audit=*/true);
  index.add(0, {0.0, 5.0}, 3.0);
  EXPECT_EQ(index.max_within(0, {5.0, 10.0}), 0.0);
  EXPECT_EQ(index.max_within(0, {4.999999999, 10.0}), 3.0);
  index.add(0, {5.0, 10.0}, 3.0);
  EXPECT_EQ(index.max_within(0, {0.0, 10.0}), 3.0);  // abut, never stack
  EXPECT_EQ(index.value_at(0, 5.0), 3.0);
}

TEST(EdgeLoadIndex, RetractIsTheBitwiseInverseOfAdd) {
  // A single add/retract pair cancels exactly (same magnitudes at the
  // same breakpoints): the profile reads identically zero afterwards,
  // not merely small.
  EdgeLoadIndex index(1, /*audit=*/true);
  index.add(0, {0.0, 1.0}, 0.3);
  index.retract(0, {0.0, 1.0}, 0.3);
  EXPECT_EQ(index.value_at(0, 0.5), 0.0);
  EXPECT_EQ(index.max_within(0, {-1.0, 2.0}), 0.0);
}

TEST(EdgeLoadIndex, RetractMatchesNaiveReplayAcrossRandomPrunedHistories) {
  // Randomized add/retract/prune interleavings (the re-rate pass's op
  // mix: retract a live flow's future, repack, occasionally roll back)
  // against a never-pruned naive replay applying the identical op
  // sequence — probes must agree bitwise at or after the low-water
  // mark. Retractions honor the documented contract: only intervals
  // with lo at or after the mark are retracted.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    EdgeLoadIndex index(1, /*audit=*/true);
    StepFunction naive;
    std::vector<std::pair<Interval, double>> live;
    double mark = -std::numeric_limits<double>::infinity();
    int retractions = 0;
    for (int step = 0; step < 240; ++step) {
      const double base = 0.1 * static_cast<double>(step);
      const Interval iv = random_interval(rng, base, base + 2.0);
      const double rate = std::fabs(random_rate(rng));
      index.add(0, iv, rate);
      naive.add(iv, rate);
      live.emplace_back(iv, rate);

      if (rng.uniform() < 0.3 && !live.empty()) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        const auto [riv, rrate] = live[pick];
        if (riv.lo >= mark) {
          index.retract(0, riv, rrate);
          naive.add(riv, -rrate);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
          ++retractions;
        }
      }
      if (step % 40 == 39) {
        mark = base - 1.0;
        index.advance_low_water(mark);
      }
      const double t = rng.uniform(std::max(mark, base - 1.0), base + 4.0);
      ASSERT_EQ(index.value_at(0, t), naive.value_at(t))
          << "seed " << seed << " step " << step;
      const double wlo = rng.uniform(std::max(mark, base - 1.0), base + 3.0);
      const Interval window{wlo, wlo + rng.uniform(0.1, 3.0)};
      ASSERT_EQ(index.max_within(0, window), naive.max_within(window))
          << "seed " << seed << " step " << step;
    }
    EXPECT_GT(retractions, 10) << "seed " << seed;  // the mix was real
    EXPECT_GT(index.segments_pruned(), 0) << "seed " << seed;
  }
}

TEST(EdgeLoadIndex, AuditModeCrossChecksEveryProbeAndCountsHealth) {
  const PowerModel model(0.0, 1.0, 2.0, 8.0);
  EdgeLoadIndex index(2, /*audit=*/true);
  ASSERT_NE(index.shadow(), nullptr);
  Rng rng(7);
  std::vector<StepFunction> reference(2);
  for (int step = 0; step < 80; ++step) {
    const EdgeId e = static_cast<EdgeId>(rng.uniform_int(0, 1));
    const Interval iv = random_interval(rng, 0.0, 10.0);
    const double rate = std::fabs(random_rate(rng));
    index.add(e, iv, rate);
    reference[static_cast<std::size_t>(e)].add(iv, rate);

    // Every probe here re-checks itself against the audit shadow
    // internally (DCN_ENSURES); the EXPECTs below additionally pin the
    // wrapper against an independent naive replay.
    const double t = rng.uniform(0.0, 12.0);
    EXPECT_EQ(index.value_at(e, t),
              reference[static_cast<std::size_t>(e)].value_at(t));
    const Interval window = random_interval(rng, 0.0, 11.0);
    EXPECT_EQ(index.max_within(e, window),
              reference[static_cast<std::size_t>(e)].max_within(window));
    const Interval span = random_interval(rng, 0.0, 11.0);
    const double d = 0.5 + rng.uniform();
    EXPECT_EQ(index.marginal_energy(e, span, d, model),
              marginal_energy(reference[static_cast<std::size_t>(e)], span, d,
                              model));
  }
  EXPECT_GT(index.peak_live_segments(), 0);
  EXPECT_EQ(index.segments_pruned(), 0);  // never pruned yet
  // Prune everything strictly before t=6; probes at/after stay valid
  // and audited (the shadow folds its own prefix at the same mark via
  // StepFunction::drop_before, so the cross-check keeps running against
  // the same naive fold while staying memory-bounded).
  index.advance_low_water(6.0);
  EXPECT_EQ(index.low_water(), 6.0);
  EXPECT_GT(index.segments_pruned(), 0);
  for (std::size_t e = 0; e < 2; ++e) {
    // The shadow actually shrank: strictly fewer breakpoints than the
    // unpruned naive function it still agrees with at/after the mark.
    EXPECT_LT((*index.shadow())[e].breakpoint_count(),
              reference[e].breakpoint_count());
  }
  for (int probe = 0; probe < 40; ++probe) {
    const EdgeId e = static_cast<EdgeId>(rng.uniform_int(0, 1));
    const double t = rng.uniform(6.0, 14.0);
    EXPECT_EQ(index.value_at(e, t),
              reference[static_cast<std::size_t>(e)].value_at(t));
    const double lo = rng.uniform(6.0, 12.0);
    const Interval window{lo, lo + rng.uniform(0.1, 3.0)};
    EXPECT_EQ(index.max_within(e, window),
              reference[static_cast<std::size_t>(e)].max_within(window));
  }
  // Regressing the mark is a no-op, like LoadProfile's.
  index.advance_low_water(2.0);
  EXPECT_EQ(index.low_water(), 6.0);
}

}  // namespace
}  // namespace dcn
