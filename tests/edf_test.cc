// Tests for the preemptive EDF scheduler with allowed-time sets.
#include <gtest/gtest.h>

#include <cmath>

#include "common/piecewise.h"
#include "common/random.h"
#include "schedule/edf.h"

namespace dcn {
namespace {

double total_time(const std::vector<Interval>& segments) {
  double t = 0.0;
  for (const Interval& iv : segments) t += iv.measure();
  return t;
}

TEST(Edf, SingleJobRunsAtRelease) {
  const std::vector<EdfJob> jobs{
      {0, 10.0, 3.0, IntervalSet{Interval{2.0, 10.0}}},
  };
  const EdfResult r = preemptive_edf(jobs);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.segments[0].size(), 1u);
  EXPECT_EQ(r.segments[0][0], Interval(2.0, 5.0));
}

TEST(Edf, EarlierDeadlineWins) {
  // Both available from 0; job 1's deadline is earlier so it runs first.
  const std::vector<EdfJob> jobs{
      {0, 10.0, 2.0, IntervalSet{Interval{0.0, 10.0}}},
      {1, 4.0, 2.0, IntervalSet{Interval{0.0, 4.0}}},
  };
  const EdfResult r = preemptive_edf(jobs);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.segments[1][0], Interval(0.0, 2.0));
  EXPECT_EQ(r.segments[0][0], Interval(2.0, 4.0));
}

TEST(Edf, PreemptionOnLateUrgentArrival) {
  // Job 0 (deadline 10) starts, then job 1 (deadline 3) arrives at t=1
  // and preempts it.
  const std::vector<EdfJob> jobs{
      {0, 10.0, 5.0, IntervalSet{Interval{0.0, 10.0}}},
      {1, 3.0, 1.5, IntervalSet{Interval{1.0, 3.0}}},
  };
  const EdfResult r = preemptive_edf(jobs);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.segments[1].size(), 1u);
  EXPECT_EQ(r.segments[1][0], Interval(1.0, 2.5));
  // Job 0 ran [0,1) and resumes [2.5, ...).
  ASSERT_EQ(r.segments[0].size(), 2u);
  EXPECT_EQ(r.segments[0][0], Interval(0.0, 1.0));
  EXPECT_EQ(r.segments[0][1], Interval(2.5, 6.5));
}

TEST(Edf, RespectsAvailabilityGaps) {
  // Machine unavailable in [2, 5).
  IntervalSet allowed = IntervalSet::from_intervals({{0.0, 2.0}, {5.0, 9.0}});
  const std::vector<EdfJob> jobs{{0, 9.0, 4.0, allowed}};
  const EdfResult r = preemptive_edf(jobs);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.segments[0].size(), 2u);
  EXPECT_EQ(r.segments[0][0], Interval(0.0, 2.0));
  EXPECT_EQ(r.segments[0][1], Interval(5.0, 7.0));
}

TEST(Edf, InfeasibleWhenWorkExceedsAllowedTime) {
  const std::vector<EdfJob> jobs{
      {0, 3.0, 5.0, IntervalSet{Interval{0.0, 3.0}}},
  };
  const EdfResult r = preemptive_edf(jobs);
  EXPECT_FALSE(r.feasible);
  ASSERT_EQ(r.unfinished.size(), 1u);
  EXPECT_EQ(r.unfinished[0], 0);
  EXPECT_NEAR(r.remaining[0], 2.0, 1e-9);
}

TEST(Edf, ExactFitIsFeasible) {
  // Three jobs exactly packing [0, 6).
  const std::vector<EdfJob> jobs{
      {0, 2.0, 2.0, IntervalSet{Interval{0.0, 2.0}}},
      {1, 4.0, 2.0, IntervalSet{Interval{0.0, 4.0}}},
      {2, 6.0, 2.0, IntervalSet{Interval{0.0, 6.0}}},
  };
  const EdfResult r = preemptive_edf(jobs);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(total_time(r.segments[0]) + total_time(r.segments[1]) +
                  total_time(r.segments[2]),
              6.0, 1e-9);
}

TEST(Edf, TieBreaksOnSmallerId) {
  const std::vector<EdfJob> jobs{
      {7, 5.0, 1.0, IntervalSet{Interval{0.0, 5.0}}},
      {3, 5.0, 1.0, IntervalSet{Interval{0.0, 5.0}}},
  };
  const EdfResult r = preemptive_edf(jobs);
  ASSERT_TRUE(r.feasible);
  // Job with id 3 (index 1) runs first.
  EXPECT_EQ(r.segments[1][0], Interval(0.0, 1.0));
  EXPECT_EQ(r.segments[0][0], Interval(1.0, 2.0));
}

TEST(Edf, RejectsNonPositiveProcessing) {
  const std::vector<EdfJob> jobs{{0, 1.0, 0.0, IntervalSet{Interval{0.0, 1.0}}}};
  EXPECT_THROW((void)preemptive_edf(jobs), ContractViolation);
}

// Property: on random feasible instances (constructed by carving
// per-job segments out of a machine timeline), EDF finds a feasible
// schedule and the output segments stay within each job's allowed set
// and never overlap across jobs.
class EdfPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdfPropertyTest, FeasibleInstancesScheduleCleanly) {
  Rng rng(GetParam());
  // Build a feasible instance: slice [0, 20) into chunks, assign each
  // chunk to a random job; the job's allowed set covers all its chunks
  // and its processing time is the total chunk length.
  const int n_jobs = 5;
  std::vector<double> processing(n_jobs, 0.0);
  std::vector<double> lo(n_jobs, 1e9), hi(n_jobs, -1e9);
  double t = 0.0;
  while (t < 20.0) {
    const double len = rng.uniform(0.2, 1.5);
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, n_jobs - 1));
    processing[j] += std::min(len, 20.0 - t);
    lo[j] = std::min(lo[j], t);
    hi[j] = std::max(hi[j], std::min(t + len, 20.0));
    t += len;
  }
  std::vector<EdfJob> jobs;
  for (int j = 0; j < n_jobs; ++j) {
    if (processing[static_cast<std::size_t>(j)] <= 0.0) continue;
    const auto js = static_cast<std::size_t>(j);
    jobs.push_back(EdfJob{j, hi[js], processing[js],
                          IntervalSet{Interval{lo[js], hi[js]}}});
  }
  const EdfResult r = preemptive_edf(jobs);
  ASSERT_TRUE(r.feasible);

  StepFunction usage;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_NEAR(total_time(r.segments[j]), jobs[j].processing, 1e-6);
    for (const Interval& seg : r.segments[j]) {
      EXPECT_TRUE(jobs[j].allowed.covers(seg))
          << "job " << jobs[j].id << " segment " << seg.lo << "-" << seg.hi;
      usage.add(seg, 1.0);
    }
  }
  // One machine: no two jobs simultaneously.
  EXPECT_LE(usage.max_value(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfPropertyTest,
                         ::testing::Values(1u, 4u, 9u, 16u, 25u, 36u, 49u, 64u));

}  // namespace
}  // namespace dcn
