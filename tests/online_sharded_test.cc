// The sharded always-on service's determinism contract, pinned.
//
// The shard decomposition is a function of the topology alone; shard
// and worker counts only pick how many source groups run phase A
// concurrently, and the coordinator commits in (event-time, group-id,
// flow-id) order — so the full OnlineResult (admitted set, schedule,
// every deterministic counter) must be byte-identical for any shard
// count >= 2 and any worker count. Single-lane plans delegate to the
// flat loop outright, so "1 shard" is online_dcfsr byte for byte. On
// pod-local traffic (flows that never leave their source group, one
// group active at a time) the per-group re-solves see exactly the
// residual the flat loop's global re-solve sees, so the *schedule*
// matches the unsharded one too — the cross-implementation anchor that
// sharding redistributes work without changing decisions.
//
// Also here: the zero-/single-arrival edge cases across every online
// policy entry point (the degenerate traces a long-lived service must
// shrug off), re-rating under the sharded coordinator, and the
// stream-vs-trace equivalence of the service entry point.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine/instance.h"
#include "engine/scenario.h"
#include "engine/solver.h"
#include "online/event_stream.h"
#include "online/online_scheduler.h"
#include "online/shard_plan.h"
#include "online/sharded.h"
#include "sim/replay.h"

namespace dcn::engine {
namespace {

/// The flat-latency configuration every sharded registry entry runs
/// (calibrated Frank-Wolfe budget, 2.0 window, 0.5 epoch).
OnlineOptions FlatOptions() {
  OnlineOptions options;
  options.rounding.relaxation.frank_wolfe.max_iterations = 12;
  options.rounding.relaxation.frank_wolfe.gap_tolerance = 1e-3;
  options.lookahead_window = 2.0;
  options.epoch = 0.5;
  return options;
}

/// Full-result equality: every deterministic field of OnlineResult
/// (decision latencies are wall clock and excluded by design).
void ExpectSameResult(const OnlineResult& a, const OnlineResult& b,
                      const std::string& tag) {
  EXPECT_EQ(a.admitted, b.admitted) << tag;
  EXPECT_EQ(a.num_admitted, b.num_admitted) << tag;
  EXPECT_EQ(a.num_rejected, b.num_rejected) << tag;
  EXPECT_EQ(a.num_events, b.num_events) << tag;
  EXPECT_EQ(a.resolves, b.resolves) << tag;
  EXPECT_EQ(a.fw_iterations, b.fw_iterations) << tag;
  EXPECT_EQ(a.rounding_attempts, b.rounding_attempts) << tag;
  EXPECT_EQ(a.batch_fallbacks, b.batch_fallbacks) << tag;
  EXPECT_EQ(a.departure_gap_checks, b.departure_gap_checks) << tag;
  EXPECT_EQ(a.gap_check_iterations, b.gap_check_iterations) << tag;
  EXPECT_EQ(a.first_lower_bound, b.first_lower_bound) << tag;
  EXPECT_EQ(a.peak_in_flight, b.peak_in_flight) << tag;
  EXPECT_EQ(a.peak_live_segments, b.peak_live_segments) << tag;
  EXPECT_EQ(a.load_segments_pruned, b.load_segments_pruned) << tag;
  EXPECT_EQ(a.rerate_attempts, b.rerate_attempts) << tag;
  EXPECT_EQ(a.rerate_commits, b.rerate_commits) << tag;
  EXPECT_EQ(a.rerated_flows, b.rerated_flows) << tag;
  ASSERT_EQ(a.schedule.flows.size(), b.schedule.flows.size()) << tag;
  for (std::size_t i = 0; i < a.schedule.flows.size(); ++i) {
    EXPECT_EQ(a.schedule.flows[i].path, b.schedule.flows[i].path)
        << tag << " flow " << i;
    EXPECT_EQ(a.schedule.flows[i].segments, b.schedule.flows[i].segments)
        << tag << " flow " << i;
  }
}

class OnlineShardedTest : public ::testing::Test {
 protected:
  const ScenarioSuite& suite_ = ScenarioSuite::default_suite();
};

TEST_F(OnlineShardedTest, ByteIdenticalForAnyShardAndWorkerCount) {
  // The house rule, over a genuinely contended multi-event trace: the
  // (shards, workers) grid collapses onto one result. shards = 0 is
  // one lane per group; workers vary from serial to oversubscribed.
  for (const std::uint64_t seed : {1, 2}) {
    ScenarioOptions scen;
    scen.num_flows = 20;
    scen.capacity = 3.0;
    scen.arrival_rate = 4.0;
    const Instance instance = suite_.build("fat_tree/poisson", seed, scen);
    const OnlineOptions options = FlatOptions();

    Rng rng0 = solver_rng(instance, "dcfsr");
    const ShardPlan base_plan =
        ShardPlan::by_source_group(instance.topology(), 0);
    ASSERT_GE(base_plan.num_groups(), 2);
    const OnlineResult base =
        online_dcfsr_sharded(instance.graph(), instance.flows(),
                             instance.model(), rng0, options, base_plan,
                             /*workers=*/1);
    EXPECT_GT(base.num_events, 1);

    const struct {
      std::int32_t shards, workers;
    } grid[] = {{2, 1}, {2, 4}, {4, 2}, {8, 4}, {0, 3}};
    for (const auto& [shards, workers] : grid) {
      Rng rng = solver_rng(instance, "dcfsr");
      const ShardPlan plan =
          ShardPlan::by_source_group(instance.topology(), shards);
      const OnlineResult r =
          online_dcfsr_sharded(instance.graph(), instance.flows(),
                               instance.model(), rng, options, plan, workers);
      ExpectSameResult(base, r,
                       "seed " + std::to_string(seed) + " shards " +
                           std::to_string(shards) + " workers " +
                           std::to_string(workers));
    }
  }
}

TEST_F(OnlineShardedTest, SingleLanePlanIsFlatSchedulerByteForByte) {
  // num_shards = 1 delegates to online_dcfsr with the caller's own rng:
  // literal equality on every property-sweep scenario family.
  for (const char* spec : {"fat_tree/poisson", "leaf_spine/hadoop"}) {
    for (const std::uint64_t seed : {1, 2, 3}) {
      ScenarioOptions scen;
      scen.capacity = 3.0;
      const Instance instance = suite_.build(spec, seed, scen);
      const OnlineOptions options = FlatOptions();

      Rng rng_flat = solver_rng(instance, "dcfsr");
      const OnlineResult flat =
          online_dcfsr(instance.graph(), instance.flows(), instance.model(),
                       rng_flat, options);
      Rng rng_sharded = solver_rng(instance, "dcfsr");
      const OnlineResult sharded = online_dcfsr_sharded(
          instance.graph(), instance.flows(), instance.model(), rng_sharded,
          options, ShardPlan::by_source_group(instance.topology(), 1),
          /*workers=*/4);
      ExpectSameResult(flat, sharded,
                       std::string(spec) + " seed " + std::to_string(seed));
    }
  }
}

TEST_F(OnlineShardedTest, PodLocalTrafficMatchesUnshardedAcrossShardGrid) {
  // The satellite grid: traffic that never leaves its source group,
  // groups active in disjoint time windows, one arrival per event, a
  // unique candidate path (same-attachment pairs), ample capacity. Each
  // per-group re-solve then sees exactly the residual problem the flat
  // loop's global re-solve sees, so the *decisions* — admitted set,
  // paths, rate segments — must match the unsharded run for 1, 2, and
  // 4 shards alike (solver-work counters differ by construction: the
  // sharded engine counts per-group solves).
  auto [topo, unused_rng] = suite_.build_topology("fat_tree/poisson", 1);
  const ShardPlan groups = ShardPlan::by_source_group(topo, 0);
  ASSERT_GE(groups.num_groups(), 2);

  // Two hosts per group (fat_tree k=4 attaches 2 hosts per edge
  // switch); groups take turns in disjoint windows, with distinct
  // deadlines throughout (the engine's active-set keying breaks exact
  // deadline ties differently from the flat loop's).
  std::vector<std::vector<NodeId>> hosts_of_group(
      static_cast<std::size_t>(groups.num_groups()));
  for (const NodeId h : topo.hosts()) {
    hosts_of_group[static_cast<std::size_t>(groups.group_of_host(h))]
        .push_back(h);
  }
  std::vector<Flow> flows;
  double t = 0.0;
  for (std::size_t g = 0; g < hosts_of_group.size(); ++g) {
    ASSERT_GE(hosts_of_group[g].size(), 2u) << "group " << g;
    const NodeId a = hosts_of_group[g][0];
    const NodeId b = hosts_of_group[g][1];
    for (int k = 0; k < 3; ++k) {
      Flow fl;
      fl.id = static_cast<FlowId>(flows.size());
      fl.src = k % 2 == 0 ? a : b;
      fl.dst = k % 2 == 0 ? b : a;
      fl.volume = 1.0;
      fl.release = t;
      fl.deadline = t + 1.5 + 0.01 * static_cast<double>(flows.size());
      flows.push_back(fl);
      t += 0.8;  // > epoch: one arrival per event
    }
    t += 4.0;  // drain the group before the next one starts
  }
  const PowerModel model(0.0, 1.0, 2.0, /*capacity=*/4.0);
  const OnlineOptions options = FlatOptions();

  Rng rng_flat(mix_seed(17, "pod-local"));
  const OnlineResult flat =
      online_dcfsr(topo.graph(), flows, model, rng_flat, options);
  EXPECT_EQ(flat.num_admitted, static_cast<std::int32_t>(flows.size()));

  for (const std::int32_t shards : {1, 2, 4}) {
    Rng rng(mix_seed(17, "pod-local"));
    const OnlineResult r = online_dcfsr_sharded(
        topo.graph(), flows, model, rng, options,
        ShardPlan::by_source_group(topo, shards), /*workers=*/2);
    const std::string tag = "shards " + std::to_string(shards);
    EXPECT_EQ(flat.admitted, r.admitted) << tag;
    EXPECT_EQ(flat.num_admitted, r.num_admitted) << tag;
    EXPECT_EQ(flat.num_rejected, r.num_rejected) << tag;
    ASSERT_EQ(flat.schedule.flows.size(), r.schedule.flows.size()) << tag;
    for (std::size_t i = 0; i < flat.schedule.flows.size(); ++i) {
      EXPECT_EQ(flat.schedule.flows[i].path, r.schedule.flows[i].path)
          << tag << " flow " << i;
      EXPECT_EQ(flat.schedule.flows[i].segments, r.schedule.flows[i].segments)
          << tag << " flow " << i;
    }
  }
}

TEST_F(OnlineShardedTest, ZeroAndSingleArrivalAcrossAllPolicies) {
  // The degenerate traces of a long-lived service. Zero arrivals: every
  // policy returns the empty result without touching its rng-dependent
  // paths. One arrival with ample capacity: every policy admits it onto
  // a non-empty path with serving segments.
  auto [topo, unused_rng] = suite_.build_topology("fat_tree/poisson", 1);
  const PowerModel model(0.0, 1.0, 2.0, /*capacity=*/8.0);
  const ShardPlan plan = ShardPlan::by_source_group(topo, 0);
  const std::vector<Flow> empty;
  Flow fl;
  fl.id = 0;
  fl.src = topo.hosts().front();
  fl.dst = topo.hosts().back();
  fl.volume = 1.0;
  fl.release = 0.5;
  fl.deadline = 2.5;
  const std::vector<Flow> single{fl};

  const auto run = [&](const char* policy,
                       const std::vector<Flow>& flows) -> OnlineResult {
    Rng rng(mix_seed(3, "edge-cases"));
    const std::string name(policy);
    if (name == "online_greedy") {
      return online_greedy(topo.graph(), flows, model);
    }
    if (name == "oracle_dcfsr") {
      return oracle_dcfsr(topo.graph(), flows, model, rng);
    }
    if (name == "online_dcfsr_sharded") {
      return online_dcfsr_sharded(topo.graph(), flows, model, rng,
                                  FlatOptions(), plan, /*workers=*/2);
    }
    OnlineOptions options = FlatOptions();
    if (name == "online_dcfsr") options = OnlineOptions{};
    if (name == "online_dcfsr_preempt") options.allow_rerate = true;
    return online_dcfsr(topo.graph(), flows, model, rng, options);
  };

  for (const char* policy :
       {"online_dcfsr", "online_dcfsr_flat", "online_dcfsr_preempt",
        "online_dcfsr_sharded", "online_greedy", "oracle_dcfsr"}) {
    const OnlineResult zero = run(policy, empty);
    EXPECT_EQ(zero.num_admitted, 0) << policy;
    EXPECT_EQ(zero.num_rejected, 0) << policy;
    EXPECT_EQ(zero.num_events, 0) << policy;
    EXPECT_TRUE(zero.schedule.flows.empty()) << policy;
    EXPECT_TRUE(zero.admitted.empty()) << policy;

    const OnlineResult one = run(policy, single);
    ASSERT_EQ(one.schedule.flows.size(), 1u) << policy;
    ASSERT_EQ(one.admitted.size(), 1u) << policy;
    EXPECT_TRUE(one.admitted[0]) << policy;
    EXPECT_EQ(one.num_admitted, 1) << policy;
    EXPECT_EQ(one.num_rejected, 0) << policy;
    EXPECT_FALSE(one.schedule.flows[0].path.empty()) << policy;
    EXPECT_FALSE(one.schedule.flows[0].segments.empty()) << policy;
  }
}

TEST_F(OnlineShardedTest, StreamedServiceMatchesBatchSolver) {
  // run_online_stream pulling from a PoissonEventStream must reproduce
  // the batch solver on the materialized instance: build_topology hands
  // back the scenario rng mid-stream, online_workload_params rebuilds
  // the generator knobs, and the service draws from the same
  // "<spec>#<seed>|dcfsr" stream the engine would — so the trace, the
  // decisions, and every deterministic counter coincide.
  const std::string spec = "fat_tree/poisson";
  const std::uint64_t seed = 5;
  ScenarioOptions scen;
  scen.num_flows = 30;
  scen.capacity = 3.0;
  scen.arrival_rate = 4.0;
  const OnlineOptions options = FlatOptions();

  const Instance instance = suite_.build(spec, seed, scen);
  Rng rng_batch = solver_rng(instance, "dcfsr");
  const OnlineResult batch = online_dcfsr_sharded(
      instance.graph(), instance.flows(), instance.model(), rng_batch,
      options, ShardPlan::by_source_group(instance.topology(), 0),
      /*workers=*/2);

  auto [topo, scenario_rng] = suite_.build_topology(spec, seed);
  PoissonEventStream stream(topo,
                            online_workload_params(scen, SizeModel::kFixed),
                            scenario_rng, scen.num_flows);
  Rng rng_stream(mix_seed(seed, spec + "#" + std::to_string(seed) + "|dcfsr"));
  const OnlineResult streamed = run_online_stream(
      topo.graph(), stream, instance.model(), rng_stream, options,
      ShardPlan::by_source_group(topo, 0), /*workers=*/2, /*flush_every=*/0,
      nullptr, /*discard_completed=*/false);

  // Poisson releases are non-decreasing by construction, so the batch
  // API's caller-order rows coincide with the stream's feed order.
  ExpectSameResult(batch, streamed, "stream vs batch");
}

TEST_F(OnlineShardedTest, RerateUnderShardingStaysReplayFeasible) {
  // allow_rerate under the sharded coordinator, on the capacity-cliff
  // regime: whatever the re-rate pass reshapes, the admitted subset
  // must replay cleanly — the commit barrier's deadline guarantee does
  // not depend on the storage split.
  std::int64_t total_attempts = 0;
  for (const std::uint64_t seed : {1, 2, 3, 4}) {
    ScenarioOptions scen;
    scen.num_flows = 24;
    scen.capacity = 2.5;
    scen.arrival_rate = 6.0;
    const Instance instance = suite_.build("fat_tree/poisson", seed, scen);
    OnlineOptions options = FlatOptions();
    options.allow_rerate = true;

    Rng rng = solver_rng(instance, "dcfsr");
    const OnlineResult r = online_dcfsr_sharded(
        instance.graph(), instance.flows(), instance.model(), rng, options,
        ShardPlan::by_source_group(instance.topology(), 0), /*workers=*/2);
    total_attempts += r.rerate_attempts;
    ASSERT_GE(r.num_admitted, 1) << "seed " << seed;
    const auto [sub_flows, sub_schedule] =
        admitted_subset(instance.flows(), r.schedule, r.admitted);
    const ReplayReport replay = replay_schedule(instance.graph(), sub_flows,
                                                sub_schedule, instance.model());
    EXPECT_TRUE(replay.ok)
        << "seed " << seed << ": "
        << (replay.issues.empty() ? "" : replay.issues[0]);
  }
  EXPECT_GE(total_attempts, 1)
      << "sweep never attempted a re-rate; tighten the scenario";
}

}  // namespace
}  // namespace dcn::engine
