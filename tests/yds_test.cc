// Tests for the YDS optimal speed-scaling kernel.
#include <gtest/gtest.h>

#include <cmath>

#include "common/piecewise.h"
#include "common/random.h"
#include "opt/line_search.h"
#include "speedscale/yds.h"

namespace dcn {
namespace {

TEST(Yds, SingleJobRunsAtDensity) {
  const std::vector<SsJob> jobs{{0, 6.0, {2.0, 5.0}}};
  const SsSchedule s = yds_schedule(jobs);
  EXPECT_NEAR(s.jobs[0].speed, 2.0, 1e-9);
  EXPECT_NEAR(s.jobs[0].execution_time(), 3.0, 1e-9);
}

TEST(Yds, TwoDisjointJobsKeepTheirOwnDensity) {
  const std::vector<SsJob> jobs{
      {0, 4.0, {0.0, 2.0}},   // density 2
      {1, 3.0, {5.0, 11.0}},  // density 0.5
  };
  const SsSchedule s = yds_schedule(jobs);
  EXPECT_NEAR(s.jobs[0].speed, 2.0, 1e-9);
  EXPECT_NEAR(s.jobs[1].speed, 0.5, 1e-9);
}

TEST(Yds, NestedJobsShareCriticalSpeed) {
  // Classic YDS example: a long job with a nested urgent one.
  // Critical interval is the nested span if its intensity dominates.
  const std::vector<SsJob> jobs{
      {0, 2.0, {0.0, 10.0}},  // background
      {1, 6.0, {4.0, 6.0}},   // intense: density 3
  };
  const SsSchedule s = yds_schedule(jobs);
  EXPECT_NEAR(s.jobs[1].speed, 3.0, 1e-9);
  // Background runs outside [4,6): 2 units of work in 8 units of time.
  EXPECT_NEAR(s.jobs[0].speed, 0.25, 1e-9);
  for (const Interval& seg : s.jobs[0].segments) {
    EXPECT_FALSE(seg.overlaps(Interval{4.0, 6.0}));
  }
}

TEST(Yds, ExampleOneVirtualWeights) {
  // The SS-SP instance from the paper's Example 1: jobs with weights
  // 6*sqrt(2) and 8, spans [2,4] and [1,3]. The YDS schedule runs both
  // at (8 + 6 sqrt 2)/3 in interval [1,4].
  const double w1 = 6.0 * std::sqrt(2.0);
  const std::vector<SsJob> jobs{
      {0, w1, {2.0, 4.0}},
      {1, 8.0, {1.0, 3.0}},
  };
  const SsSchedule s = yds_schedule(jobs);
  const double expected = (8.0 + 6.0 * std::sqrt(2.0)) / 3.0;
  EXPECT_NEAR(s.jobs[0].speed, expected, 1e-9);
  EXPECT_NEAR(s.jobs[1].speed, expected, 1e-9);
}

TEST(Yds, SpeedsAreNonIncreasingAcrossCriticality) {
  // Energy optimality implies the speed profile is highest in the most
  // critical interval; verify speeds sorted by criticality ordering on
  // a mixed instance.
  const std::vector<SsJob> jobs{
      {0, 10.0, {0.0, 2.0}},  // density 5: most critical
      {1, 4.0, {0.0, 8.0}},
      {2, 1.0, {6.0, 10.0}},
  };
  const SsSchedule s = yds_schedule(jobs);
  EXPECT_GE(s.jobs[0].speed, s.jobs[1].speed - 1e-9);
  EXPECT_GE(s.jobs[1].speed, s.jobs[2].speed - 1e-9);
}

TEST(Yds, InfeasibleWithZeroAvailability) {
  const std::vector<SsJob> jobs{{0, 1.0, {2.0, 3.0}}};
  // Availability excludes the entire span.
  const IntervalSet availability{Interval{5.0, 9.0}};
  EXPECT_THROW((void)yds_schedule(jobs, availability), InfeasibleError);
}

TEST(Yds, AvailabilityGapRaisesSpeed) {
  const std::vector<SsJob> jobs{{0, 6.0, {0.0, 6.0}}};
  IntervalSet availability{Interval{0.0, 6.0}};
  availability.subtract(Interval{1.0, 4.0});
  const SsSchedule s = yds_schedule(jobs, availability);
  EXPECT_NEAR(s.jobs[0].speed, 2.0, 1e-9);  // 6 work / 3 available
  for (const Interval& seg : s.jobs[0].segments) {
    EXPECT_FALSE(seg.overlaps(Interval{1.0, 4.0}));
  }
}

TEST(Yds, EnergyFormula) {
  const std::vector<SsJob> jobs{{0, 6.0, {0.0, 3.0}}};
  const SsSchedule s = yds_schedule(jobs);
  // One job at speed 2 for 3 time units: energy = 2^alpha * 3.
  EXPECT_NEAR(s.energy(2.0), 12.0, 1e-9);
  EXPECT_NEAR(s.energy(3.0), 24.0, 1e-9);
}

// Optimality cross-check: for two overlapping jobs, brute-force the
// optimal single-rate assignment with a fine golden-section search and
// compare energies.
class YdsOptimalityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(YdsOptimalityTest, MatchesBruteForceOnTwoJobInstances) {
  Rng rng(GetParam());
  const double alpha = 2.0 + 2.0 * rng.uniform();
  // Nested spans: job 1 inside job 0 (the interesting case).
  const double r0 = 0.0, d0 = 10.0;
  const double r1 = rng.uniform(1.0, 4.0);
  const double d1 = rng.uniform(r1 + 1.0, 9.0);
  const double w0 = rng.uniform(1.0, 10.0);
  const double w1 = rng.uniform(1.0, 10.0);
  const std::vector<SsJob> jobs{{0, w0, {r0, d0}}, {1, w1, {r1, d1}}};
  const SsSchedule s = yds_schedule(jobs);
  const double yds_energy = s.energy(alpha);

  // Brute force: job 1 runs at speed s1 somewhere in its span; job 0
  // uses the remaining time optimally (constant speed by convexity).
  // Parameterize by t = time given to job 1 (in (0, d1 - r1]).
  const auto energy_for = [&](double t) {
    const double s1 = w1 / t;
    const double s0 = w0 / (d0 - r0 - t);
    return std::pow(s1, alpha) * t + std::pow(s0, alpha) * (d0 - r0 - t);
  };
  const double t_best = golden_section_minimize(
      energy_for, 1e-6, d1 - r1, 1e-10);
  const double brute = std::min(energy_for(t_best), energy_for(d1 - r1));
  EXPECT_LE(yds_energy, brute + 1e-6);
  EXPECT_NEAR(yds_energy, brute, 1e-3 * brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, YdsOptimalityTest,
                         ::testing::Values(2u, 3u, 5u, 7u, 11u, 13u, 17u, 19u));

// Feasibility sweep: random instances always yield schedules meeting
// every span, with per-job work conserved.
class YdsFeasibilityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(YdsFeasibilityTest, RandomInstancesAreScheduledFeasibly) {
  Rng rng(GetParam());
  std::vector<SsJob> jobs;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    double a = rng.uniform(0.0, 50.0);
    double b = rng.uniform(0.0, 50.0);
    if (a > b) std::swap(a, b);
    if (b - a < 0.5) b = a + 0.5;
    jobs.push_back({i, rng.uniform(0.5, 8.0), {a, b}});
  }
  const SsSchedule s = yds_schedule(jobs);
  StepFunction usage;
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    double work = 0.0;
    for (const Interval& seg : s.jobs[idx].segments) {
      EXPECT_GE(seg.lo, jobs[idx].span.lo - 1e-9);
      EXPECT_LE(seg.hi, jobs[idx].span.hi + 1e-9);
      work += seg.measure() * s.jobs[idx].speed;
      usage.add(seg, 1.0);
    }
    EXPECT_NEAR(work, jobs[idx].work, 1e-6 * jobs[idx].work);
  }
  EXPECT_LE(usage.max_value(), 1.0 + 1e-9);  // one processor
}

INSTANTIATE_TEST_SUITE_P(Seeds, YdsFeasibilityTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u,
                                           707u, 808u, 909u, 1010u));

}  // namespace
}  // namespace dcn
