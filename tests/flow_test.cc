// Tests for Flow and the workload generators.
#include <gtest/gtest.h>

#include <set>

#include "flow/flow.h"
#include "flow/workload.h"
#include "topology/builders.h"

namespace dcn {
namespace {

TEST(Flow, DensityAndSpan) {
  const Flow fl{0, 1, 2, 10.0, 2.0, 7.0};
  EXPECT_DOUBLE_EQ(fl.density(), 2.0);
  EXPECT_EQ(fl.span(), Interval(2.0, 7.0));
  EXPECT_TRUE(fl.active_at(2.0));
  EXPECT_TRUE(fl.active_at(6.9));
  EXPECT_FALSE(fl.active_at(7.0));
  EXPECT_FALSE(fl.active_at(1.9));
}

TEST(Flow, HorizonAndMaxDensity) {
  const std::vector<Flow> flows{
      {0, 0, 1, 4.0, 3.0, 5.0},   // density 2
      {1, 0, 1, 9.0, 1.0, 10.0},  // density 1
  };
  EXPECT_EQ(flow_horizon(flows), Interval(1.0, 10.0));
  EXPECT_DOUBLE_EQ(max_density(flows), 2.0);
}

TEST(Flow, ValidationCatchesBadFlows) {
  const Topology topo = line_network(3);
  const Graph& g = topo.graph();
  // Deadline before release.
  EXPECT_THROW(validate_flows(g, {{0, 0, 2, 1.0, 5.0, 3.0}}), ContractViolation);
  // Zero volume.
  EXPECT_THROW(validate_flows(g, {{0, 0, 2, 0.0, 1.0, 3.0}}), ContractViolation);
  // Same endpoints.
  EXPECT_THROW(validate_flows(g, {{0, 1, 1, 1.0, 1.0, 3.0}}), ContractViolation);
  // Misnumbered id.
  EXPECT_THROW(validate_flows(g, {{5, 0, 2, 1.0, 1.0, 3.0}}), ContractViolation);
  // A good one passes.
  EXPECT_NO_THROW(validate_flows(g, {{0, 0, 2, 1.0, 1.0, 3.0}}));
}

TEST(PaperWorkload, RespectsAllParameters) {
  const Topology topo = fat_tree(4);
  Rng rng(42);
  PaperWorkloadParams params;
  params.num_flows = 200;
  const auto flows = paper_workload(topo, params, rng);
  ASSERT_EQ(flows.size(), 200u);
  for (const Flow& fl : flows) {
    EXPECT_GE(fl.release, params.horizon_lo);
    EXPECT_LE(fl.deadline, params.horizon_hi);
    EXPECT_GE(fl.deadline - fl.release, params.min_span);
    EXPECT_GE(fl.volume, params.min_volume);
    EXPECT_TRUE(topo.is_host(fl.src));
    EXPECT_TRUE(topo.is_host(fl.dst));
    EXPECT_NE(fl.src, fl.dst);
  }
}

TEST(PaperWorkload, VolumeDistributionApproximatesNormal) {
  const Topology topo = fat_tree(4);
  Rng rng(7);
  PaperWorkloadParams params;
  params.num_flows = 5000;
  const auto flows = paper_workload(topo, params, rng);
  double sum = 0.0;
  for (const Flow& fl : flows) sum += fl.volume;
  EXPECT_NEAR(sum / static_cast<double>(flows.size()), 10.0, 0.2);  // N(10,3)
}

TEST(PaperWorkload, DeterministicPerSeed) {
  const Topology topo = fat_tree(4);
  Rng rng1(123), rng2(123);
  PaperWorkloadParams params;
  const auto a = paper_workload(topo, params, rng1);
  const auto b = paper_workload(topo, params, rng2);
  EXPECT_EQ(a, b);
}

TEST(IncastWorkload, AllFlowsShareTheAggregator) {
  const Topology topo = fat_tree(4);
  Rng rng(11);
  const auto flows = incast_workload(topo, 8, 5.0, {0.0, 10.0}, rng);
  ASSERT_EQ(flows.size(), 8u);
  const NodeId agg = flows[0].dst;
  std::set<NodeId> senders;
  for (const Flow& fl : flows) {
    EXPECT_EQ(fl.dst, agg);
    EXPECT_DOUBLE_EQ(fl.volume, 5.0);
    EXPECT_DOUBLE_EQ(fl.release, 0.0);
    EXPECT_DOUBLE_EQ(fl.deadline, 10.0);
    senders.insert(fl.src);
  }
  EXPECT_EQ(senders.size(), 8u);  // distinct senders
  EXPECT_EQ(senders.count(agg), 0u);
}

TEST(ShuffleWorkload, FullBipartitePattern) {
  const Topology topo = fat_tree(4);
  Rng rng(13);
  const auto flows = shuffle_workload(topo, 3, 4, 2.0, {1.0, 5.0}, rng);
  ASSERT_EQ(flows.size(), 12u);
  std::set<NodeId> mappers, reducers;
  for (const Flow& fl : flows) {
    mappers.insert(fl.src);
    reducers.insert(fl.dst);
  }
  EXPECT_EQ(mappers.size(), 3u);
  EXPECT_EQ(reducers.size(), 4u);
  for (NodeId m : mappers) EXPECT_EQ(reducers.count(m), 0u);
}

TEST(PermutationWorkload, DistinctPartners) {
  const Topology topo = fat_tree(4);
  Rng rng(17);
  PaperWorkloadParams params;
  const auto flows = permutation_workload(topo, 6, params, rng);
  ASSERT_EQ(flows.size(), 6u);
  std::set<NodeId> used;
  for (const Flow& fl : flows) {
    EXPECT_TRUE(used.insert(fl.src).second);
    EXPECT_TRUE(used.insert(fl.dst).second);
  }
}

TEST(SlackWorkload, SlackControlsSpanLength) {
  const Topology topo = fat_tree(4);
  Rng rng(19);
  const auto tight = slack_workload(topo, 10, 10.0, 1.0, 1.0, {0.0, 100.0}, rng);
  const auto loose = slack_workload(topo, 10, 10.0, 1.0, 4.0, {0.0, 100.0}, rng);
  for (const Flow& fl : tight) {
    EXPECT_NEAR(fl.deadline - fl.release, 10.0, 1e-9);
    EXPECT_NEAR(fl.density(), 1.0, 1e-9);
  }
  for (const Flow& fl : loose) {
    EXPECT_NEAR(fl.deadline - fl.release, 40.0, 1e-9);
    EXPECT_NEAR(fl.density(), 0.25, 1e-9);
  }
}

TEST(Workloads, RejectOversizedRequests) {
  const Topology topo = line_network(3);  // 3 hosts
  Rng rng(1);
  EXPECT_THROW((void)incast_workload(topo, 3, 1.0, {0.0, 1.0}, rng),
               ContractViolation);
  EXPECT_THROW((void)shuffle_workload(topo, 2, 2, 1.0, {0.0, 1.0}, rng),
               ContractViolation);
  PaperWorkloadParams params;
  EXPECT_THROW((void)permutation_workload(topo, 2, params, rng), ContractViolation);
}

}  // namespace
}  // namespace dcn
