// Known-good fixture: the annotated timing-capture pattern — every
// clock read carries a visible allow() saying where the value goes
// (and that destination is never canonical output).
#include <chrono>

double capture_decision_latency() {
  // dcn-lint: allow(wall-clock) timing capture: decision latency, reaches SolverOutcome::timings only
  const auto start = std::chrono::steady_clock::now();
  const auto end = std::chrono::steady_clock::now();  // dcn-lint: allow(wall-clock) timing capture: closes the window opened above
  // dcn-lint: allow(wall-clock) timing capture: duration arithmetic on already-captured points
  return std::chrono::duration<double, std::milli>(end - start).count();
}
