// Known-bad fixture: ad-hoc threading outside common/parallel. Raw
// threads bypass the WorkerPool's deterministic task claiming and its
// TSan-vetted synchronization; detached threads outlive any barrier.
#include <future>
#include <thread>

void spawn_raw_worker() {
  std::thread worker([] {});  // BAD: ad-hoc thread
  worker.join();
}

void fire_and_forget() {
  std::thread background([] {});
  background.detach();  // BAD: unjoinable work
}

int async_compute() {
  auto result = std::async([] { return 7; });  // BAD: hidden thread
  return result.get();
}
