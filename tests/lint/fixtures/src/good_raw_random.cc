// Known-good fixture: randomness through the seeded dcn::Rng, the way
// every stochastic component draws it. The mentions of std::mt19937
// and rand() in comments and string literals exercise the linter's
// comment/string stripping — they must NOT be flagged.
//
// The seed engine replaced a std::mt19937 in the seed repo: xoshiro
// is deterministic across standard libraries, rand() never was.

namespace dcn {
class Rng;
}

const char* kDocstring =
    "randomized rounding draws from Rng, never std::random_device";

double draw(dcn::Rng& rng);

double sample(dcn::Rng& rng) {
  return draw(rng);  /* not rand(): the Rng stream is seeded per (instance, solver) */
}
