// Known-bad fixture: raw std random sources in canonical code. Each
// one either varies per run (random_device) or per standard library
// (mt19937 + std distributions), so every line here must be flagged.
#include <cstdlib>
#include <random>

int libc_rand() {
  return rand();  // BAD: hidden global state
}

unsigned hardware_entropy() {
  std::random_device device;  // BAD: non-deterministic by definition
  return device();
}

double std_engine() {
  std::mt19937 engine(42);  // BAD: bypasses the seeded dcn::Rng
  return static_cast<double>(engine());
}
