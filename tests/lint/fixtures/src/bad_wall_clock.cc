// Known-bad fixture: un-annotated clock reads in canonical code. Any
// of these could leak wall time into output that must be byte-stable.
#include <chrono>
#include <ctime>

double sneak_a_clock() {
  const auto t0 = std::chrono::steady_clock::now();  // BAD: no annotation
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

long sneak_posix_time() {
  return static_cast<long>(time(nullptr));  // BAD: wall clock
}
