// Known-good fixture: every blessed unordered-container pattern.
// Membership probes, inserts, and keyed value access are fine without
// any annotation; the one genuine hash-order drain is annotated with
// a reason (the collect-then-sort idiom).
#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

bool saw_before(std::unordered_set<int>& visited, int node) {
  return !visited.insert(node).second;  // membership only — no iteration
}

double keyed_access(std::unordered_map<int, std::vector<double>>& by_key) {
  double total = 0.0;
  // Value access through a key: by_key[k] is an ordered vector, so
  // this range-for exposes no hash order and needs no annotation.
  for (double x : by_key[3]) total += x;
  for (double x : by_key.at(4)) total += x;
  return total;
}

std::vector<int> sorted_keys(const std::unordered_map<int, double>& m) {
  std::vector<int> keys;
  keys.reserve(m.size());
  // dcn-lint: allow(unordered-iter) keys collected then sorted below — the hash order never reaches the result
  for (const auto& [key, value] : m) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}
