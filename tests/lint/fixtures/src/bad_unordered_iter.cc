// Known-bad fixture: iteration over unordered containers in canonical
// code. dcn_lint must flag the range-for, the alias-typed iterator
// walk, and the indexed element of a vector-of-unordered.
#include <unordered_map>
#include <unordered_set>
#include <vector>

using Accumulator = std::unordered_map<int, double>;

double hash_order_sum() {
  std::unordered_map<int, double> weights;
  weights[3] = 0.25;
  weights[7] = 0.75;
  double total = 0.0;
  for (const auto& [key, value] : weights) {  // BAD: hash-order floats
    total += value * static_cast<double>(key);
  }
  return total;
}

int first_key(const std::unordered_set<int>& members) {
  return *members.begin();  // BAD: hash-order front element
}

double element_walk() {
  std::vector<Accumulator> accum(4);
  accum[0][1] = 1.0;
  double total = 0.0;
  for (auto it = accum[2].begin(); it != accum[2].end(); ++it) {  // BAD
    total += it->second;
  }
  return total;
}
