// Known-good fixture: parallelism through WorkerPool, plus the static
// std::thread::hardware_concurrency() query — allowed, it creates no
// thread. Must lint clean with no annotations at all.
#include <cstddef>
#include <thread>
#include <vector>

namespace dcn {
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t threads);
  template <typename Fn>
  void run(std::size_t num_tasks, const Fn& fn);
};
}  // namespace dcn

std::size_t pick_worker_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void fan_out(std::vector<double>& slots) {
  dcn::WorkerPool pool(pick_worker_count());
  pool.run(slots.size(), [&](std::size_t i) { slots[i] = 1.0; });
}
