// Known-good fixture: the templated-callable idiom src/opt uses since
// PR 6 — concrete functors inline into the hot loop. The std::function
// mention in this comment must not be flagged (comment stripping), and
// the one real use is annotated as a cold-path exception.
#include <functional>
#include <vector>

template <typename Objective>
double line_search(const Objective& objective, double lo, double hi) {
  return (objective(lo) < objective(hi)) ? lo : hi;
}

struct AnalyticCost {
  double sigma = 0.0;
  double alpha = 2.0;
  double operator()(double x) const { return sigma + x * x * alpha; }
};

double minimize(double lo, double hi) {
  return line_search(AnalyticCost{}, lo, hi);
}

struct ProblemSpec {
  // dcn-lint: allow(std-function-hot) problem-definition callback: read once at setup, never inside the iteration loop
  std::function<double(double)> generic_fallback_cost;
};
