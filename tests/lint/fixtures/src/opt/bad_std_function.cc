// Known-bad fixture: std::function in src/opt/ — the Frank-Wolfe hot
// loops run ~10^8 cost evaluations per cold solve; type erasure there
// cost 1.4x wall clock before PR 6 templated it away.
#include <functional>
#include <vector>

double line_search(const std::function<double(double)>& objective,  // BAD
                   double lo, double hi) {
  return (objective(lo) < objective(hi)) ? lo : hi;
}

struct Repricer {
  std::function<double(double)> marginal_cost;  // BAD: per-edge indirect call
  std::vector<double> loads;
};
