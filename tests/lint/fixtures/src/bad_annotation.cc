// Known-bad fixture: suppression annotations that must themselves be
// rejected — an allow() with no reason, an unknown rule name, and a
// malformed annotation. A reasonless allow is how silent suppressions
// creep in; the lint requires every one to argue its case.
#include <chrono>

double reasonless() {
  // dcn-lint: allow(wall-clock)
  const auto t0 = std::chrono::steady_clock::now();  // still BAD: allow above has no reason
  return t0.time_since_epoch().count();
}

double unknown_rule() {
  // dcn-lint: allow(made-up-rule) this rule does not exist
  const auto t0 = std::chrono::steady_clock::now();  // still BAD: allow names unknown rule
  return t0.time_since_epoch().count();
}

double malformed() {
  // dcn-lint: suppress wall-clock please
  const auto t0 = std::chrono::steady_clock::now();  // still BAD: not the allow() grammar
  return t0.time_since_epoch().count();
}
