// Boundary cases of the online EDF fallback fill (edf_fill,
// src/online/online_scheduler.cc): the piece-by-piece packer that
// admits a flow whose constant density does not fit by loading it into
// the earliest remaining capacity of its path.
//
// Pinned here: exact-fit volume on the last elementary piece,
// zero-availability pieces skipped entirely, committed segments
// touching the span endpoints, and the `remaining > tolerance`
// rejection path when even the full remaining capacity cannot finish
// the volume.
// The schedulers route through the EdgeLoadIndex overload; the
// StepFunction overload exercised by the cases below is its reference
// implementation. EdfFillIndexed re-runs every committed-load shape
// through both and requires bitwise-identical fills — including against
// a pruned index, where the low-water fold must not perturb a single
// cut or rate.
#include <gtest/gtest.h>

#include <vector>

#include "common/piecewise.h"
#include "common/random.h"
#include "online/load_index.h"
#include "online/online_scheduler.h"

namespace dcn {
namespace {

constexpr double kCap = 4.0;

/// Two-edge path over a three-node line; load[0] / load[1] are the
/// committed timelines of its edges.
struct Fixture {
  Path path{0, 2, {0, 1}};
  std::vector<StepFunction> load{2};
};

double total_volume(const std::vector<RateSegment>& segments) {
  double v = 0.0;
  for (const RateSegment& seg : segments) v += seg.volume();
  return v;
}

TEST(EdfFill, IdleSpanFillsFromTheFrontAtFullCapacity) {
  Fixture f;
  const std::vector<RateSegment> segs =
      edf_fill(f.load, f.path, {0.0, 10.0}, 12.0, kCap);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].rate, kCap);
  EXPECT_DOUBLE_EQ(segs[0].interval.lo, 0.0);
  EXPECT_DOUBLE_EQ(segs[0].interval.hi, 3.0);  // 12 volume at rate 4
  EXPECT_DOUBLE_EQ(total_volume(segs), 12.0);
}

TEST(EdfFill, ExactFitVolumeOnTheLastPieceEndsFlushWithTheDeadline) {
  Fixture f;
  // [0, 6) committed at 3 on edge 0 -> avail 1; [6, 10) idle -> avail 4.
  f.load[0].add({0.0, 6.0}, 3.0);
  // 6*1 + 4*4 = 22: exactly the whole span's remaining capacity.
  const std::vector<RateSegment> segs =
      edf_fill(f.load, f.path, {0.0, 10.0}, 22.0, kCap);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_DOUBLE_EQ(segs[0].rate, 1.0);
  EXPECT_EQ(segs[0].interval, (Interval{0.0, 6.0}));
  EXPECT_DOUBLE_EQ(segs[1].rate, 4.0);
  // The exact-fit branch (takeable >= remaining) must close the last
  // piece exactly at the span end, not overrun it.
  EXPECT_DOUBLE_EQ(segs[1].interval.lo, 6.0);
  EXPECT_DOUBLE_EQ(segs[1].interval.hi, 10.0);
  EXPECT_DOUBLE_EQ(total_volume(segs), 22.0);
}

TEST(EdfFill, ZeroAvailabilityPiecesAreSkippedNotEmitted) {
  Fixture f;
  // The middle piece is saturated on edge 1: no segment may be emitted
  // for it, and the fill must resume after it.
  f.load[1].add({2.0, 5.0}, kCap);
  const std::vector<RateSegment> segs =
      edf_fill(f.load, f.path, {0.0, 10.0}, 16.0, kCap);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].interval, (Interval{0.0, 2.0}));
  EXPECT_DOUBLE_EQ(segs[0].rate, kCap);
  EXPECT_DOUBLE_EQ(segs[1].interval.lo, 5.0);  // resumed after the block
  EXPECT_DOUBLE_EQ(segs[1].interval.hi, 7.0);
  EXPECT_DOUBLE_EQ(total_volume(segs), 16.0);
}

TEST(EdfFill, BottleneckIsTheMaxLoadAcrossThePathsEdges) {
  Fixture f;
  // Different committed loads on the two edges over the same stretch:
  // availability is capacity minus the *worst* edge.
  f.load[0].add({0.0, 4.0}, 1.0);
  f.load[1].add({0.0, 4.0}, 3.0);
  const std::vector<RateSegment> segs =
      edf_fill(f.load, f.path, {0.0, 4.0}, 4.0, kCap);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_DOUBLE_EQ(segs[0].rate, 1.0);  // 4 - max(1, 3)
  EXPECT_EQ(segs[0].interval, (Interval{0.0, 4.0}));
}

TEST(EdfFill, CommittedSegmentsTouchingTheSpanEndpointsClipCorrectly) {
  Fixture f;
  // Saturated prefix starting exactly at span.lo and a saturated
  // suffix ending exactly at span.hi: only the middle window remains,
  // and the breakpoints at 0 and 10 must not create degenerate pieces.
  f.load[0].add({0.0, 3.0}, kCap);
  f.load[0].add({7.0, 10.0}, kCap);
  const std::vector<RateSegment> segs =
      edf_fill(f.load, f.path, {0.0, 10.0}, 16.0, kCap);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].interval, (Interval{3.0, 7.0}));
  EXPECT_DOUBLE_EQ(segs[0].rate, kCap);
  EXPECT_DOUBLE_EQ(total_volume(segs), 16.0);
}

TEST(EdfFill, BreakpointsOutsideTheSpanDoNotCutPieces) {
  Fixture f;
  // Committed load straddling the span on both sides: its breakpoints
  // lie outside [2, 8) and must be ignored by the cut builder, leaving
  // one uniform piece at the straddling segment's availability.
  f.load[0].add({0.0, 10.0}, 1.5);
  const std::vector<RateSegment> segs =
      edf_fill(f.load, f.path, {2.0, 8.0}, 15.0, kCap);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].interval, (Interval{2.0, 8.0}));
  EXPECT_DOUBLE_EQ(segs[0].rate, 2.5);
  EXPECT_DOUBLE_EQ(total_volume(segs), 15.0);
}

TEST(EdfFill, RejectsWhenRemainingVolumeExceedsTolerance) {
  Fixture f;
  f.load[0].add({0.0, 10.0}, 3.0);  // avail 1 throughout
  // 10 time units at availability 1 carry 10 < 10.1: rejection must
  // return an empty vector, not a partial fill.
  EXPECT_TRUE(edf_fill(f.load, f.path, {0.0, 10.0}, 10.1, kCap).empty());
  // At exactly the carriable volume (within float tolerance) it fits.
  EXPECT_FALSE(edf_fill(f.load, f.path, {0.0, 10.0}, 10.0, kCap).empty());
}

TEST(EdfFill, FullySaturatedSpanRejectsOutright) {
  Fixture f;
  f.load[1].add({0.0, 10.0}, kCap);
  EXPECT_TRUE(edf_fill(f.load, f.path, {0.0, 10.0}, 1.0, kCap).empty());
}

/// Asserts the indexed fill is bitwise the reference fill.
void expect_same_fill(const EdgeLoadIndex& index,
                      const std::vector<StepFunction>& load, const Path& path,
                      const Interval& span, double volume) {
  const std::vector<RateSegment> got =
      edf_fill(index, path, span, volume, kCap);
  const std::vector<RateSegment> want =
      edf_fill(load, path, span, volume, kCap);
  ASSERT_EQ(got.size(), want.size()) << "span [" << span.lo << ", " << span.hi
                                     << ") volume " << volume;
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].interval.lo, want[k].interval.lo);
    EXPECT_EQ(got[k].interval.hi, want[k].interval.hi);
    EXPECT_EQ(got[k].rate, want[k].rate);
  }
}

TEST(EdfFillIndexed, MatchesReferenceOnEveryFixtureShape) {
  // Each entry mirrors one of the boundary cases above: (edge, interval,
  // rate) adds, then the same (span, volume) fill through both overloads.
  struct Case {
    std::vector<std::pair<int, RateSegment>> adds;
    Interval span;
    double volume;
  };
  const std::vector<Case> cases = {
      {{}, {0.0, 10.0}, 12.0},
      {{{0, {{0.0, 6.0}, 3.0}}}, {0.0, 10.0}, 22.0},
      {{{1, {{2.0, 5.0}, kCap}}}, {0.0, 10.0}, 16.0},
      {{{0, {{0.0, 4.0}, 1.0}}, {1, {{0.0, 4.0}, 3.0}}}, {0.0, 4.0}, 4.0},
      {{{0, {{0.0, 3.0}, kCap}}, {0, {{7.0, 10.0}, kCap}}}, {0.0, 10.0}, 16.0},
      {{{0, {{0.0, 10.0}, 1.5}}}, {2.0, 8.0}, 15.0},
      {{{0, {{0.0, 10.0}, 3.0}}}, {0.0, 10.0}, 10.1},  // rejection path
      {{{1, {{0.0, 10.0}, kCap}}}, {0.0, 10.0}, 1.0},  // saturated span
  };
  for (const Case& c : cases) {
    Fixture f;
    EdgeLoadIndex index(2, /*audit=*/true);
    for (const auto& [e, seg] : c.adds) {
      f.load[static_cast<std::size_t>(e)].add(seg.interval, seg.rate);
      index.add(static_cast<EdgeId>(e), seg.interval, seg.rate);
    }
    expect_same_fill(index, f.load, f.path, c.span, c.volume);
  }
}

TEST(EdfFillIndexed, MatchesReferenceOnRandomizedAndPrunedHistories) {
  // An arrival-trace-shaped history: commits march forward in time, the
  // index prunes behind them, and every fill probed at or after the
  // low-water mark must still be the reference fill bitwise — the naive
  // profiles keep the full history, so this is exactly the pruning
  // contract edf_fill relies on.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    Fixture f;
    EdgeLoadIndex index(2, /*audit=*/true);
    double mark = 0.0;
    for (int step = 0; step < 60; ++step) {
      const double base = 0.25 * static_cast<double>(step);
      const int e = static_cast<int>(rng.uniform_int(0, 1));
      const Interval iv{base, base + rng.uniform(0.5, 3.0)};
      const double rate = rng.uniform(0.25, 2.5);
      f.load[static_cast<std::size_t>(e)].add(iv, rate);
      index.add(static_cast<EdgeId>(e), iv, rate);
      if (step % 15 == 14) {
        mark = base;
        index.advance_low_water(mark);
      }
      const double lo = rng.uniform(mark, base + 1.0);
      const Interval span{lo, lo + rng.uniform(0.5, 4.0)};
      expect_same_fill(index, f.load, f.path, span,
                       rng.uniform(0.5, kCap * span.measure()));
    }
    EXPECT_GT(index.segments_pruned(), 0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dcn
