// Tests for the power model (Eq. 1, Lemma 3, convex envelope, Thm. 3).
#include <gtest/gtest.h>

#include <cmath>

#include "power/power_model.h"

namespace dcn {
namespace {

TEST(PowerModel, Eq1Semantics) {
  const PowerModel m(/*sigma=*/2.0, /*mu=*/0.5, /*alpha=*/2.0, /*capacity=*/10.0);
  EXPECT_DOUBLE_EQ(m.f(0.0), 0.0);  // powered-down link
  EXPECT_DOUBLE_EQ(m.f(2.0), 2.0 + 0.5 * 4.0);
  EXPECT_DOUBLE_EQ(m.g(2.0), 0.5 * 4.0);
  EXPECT_DOUBLE_EQ(m.power_rate(2.0), (2.0 + 2.0) / 2.0);
}

TEST(PowerModel, ConstructionContracts) {
  EXPECT_THROW(PowerModel(-1.0, 1.0, 2.0), ContractViolation);
  EXPECT_THROW(PowerModel(1.0, 0.0, 2.0), ContractViolation);
  EXPECT_THROW(PowerModel(1.0, 1.0, 1.0), ContractViolation);  // alpha > 1
  EXPECT_THROW(PowerModel(1.0, 1.0, 2.0, 0.0), ContractViolation);
}

TEST(PowerModel, Lemma3OptimalRate) {
  // R_opt = (sigma / (mu (alpha-1)))^(1/alpha).
  const PowerModel m(8.0, 2.0, 3.0);
  const double expected = std::pow(8.0 / (2.0 * 2.0), 1.0 / 3.0);
  EXPECT_NEAR(m.r_opt(), expected, 1e-12);
  // The power rate is indeed minimized at R_opt: sample around it.
  const double at_opt = m.power_rate(m.r_opt());
  for (double x : {0.5 * m.r_opt(), 0.9 * m.r_opt(), 1.1 * m.r_opt(), 2.0 * m.r_opt()}) {
    EXPECT_GE(m.power_rate(x), at_opt - 1e-12);
  }
}

TEST(PowerModel, PureSpeedScalingHasZeroRopt) {
  const PowerModel m = PowerModel::pure_speed_scaling(2.0);
  EXPECT_DOUBLE_EQ(m.sigma(), 0.0);
  EXPECT_DOUBLE_EQ(m.mu(), 1.0);
  EXPECT_DOUBLE_EQ(m.r_opt(), 0.0);
  // Envelope degenerates to f itself.
  for (double x : {0.0, 0.5, 1.0, 4.0}) {
    EXPECT_DOUBLE_EQ(m.envelope(x), m.f(x));
  }
}

TEST(PowerModel, EnvelopeIsTightLowerBound) {
  const PowerModel m(4.0, 1.0, 2.0);
  const double rhat = m.r_hat();
  EXPECT_NEAR(rhat, 2.0, 1e-12);  // (4 / (1*1))^(1/2)
  // env <= f everywhere, with equality at 0, at r_hat and beyond.
  for (double x : {0.0, 0.5, 1.0, 1.9, 2.0, 3.0, 7.0}) {
    EXPECT_LE(m.envelope(x), m.f(x) + 1e-12) << "x=" << x;
  }
  EXPECT_DOUBLE_EQ(m.envelope(0.0), 0.0);
  EXPECT_NEAR(m.envelope(rhat), m.f(rhat), 1e-12);
  EXPECT_NEAR(m.envelope(5.0), m.f(5.0), 1e-12);
  // Strictly below f on (0, r_hat): f jumps by sigma at 0+.
  EXPECT_LT(m.envelope(0.1), m.f(0.1));
}

TEST(PowerModel, EnvelopeDerivativeIsContinuousAtRhat) {
  const PowerModel m(4.0, 1.0, 2.0);
  const double rhat = m.r_hat();
  // Tangency at R_opt: linear slope equals f'(R_opt).
  EXPECT_NEAR(m.envelope_derivative(rhat - 1e-9), m.envelope_derivative(rhat + 1e-9),
              1e-6);
  // Slope equals power rate at r_hat.
  EXPECT_NEAR(m.envelope_derivative(0.0), m.power_rate(rhat), 1e-12);
}

TEST(PowerModel, EnvelopeConvexOnSamples) {
  const PowerModel m(3.0, 2.0, 2.5);
  // Midpoint convexity on a sample grid.
  for (double a = 0.0; a <= 4.0; a += 0.25) {
    for (double b = a; b <= 4.0; b += 0.25) {
      const double mid = 0.5 * (a + b);
      EXPECT_LE(m.envelope(mid), 0.5 * (m.envelope(a) + m.envelope(b)) + 1e-12);
    }
  }
}

TEST(PowerModel, CapacityClampsRhat) {
  const PowerModel m(100.0, 1.0, 2.0, /*capacity=*/3.0);
  EXPECT_GT(m.r_opt(), 3.0);
  EXPECT_DOUBLE_EQ(m.r_hat(), 3.0);
  EXPECT_TRUE(m.within_capacity(3.0));
  EXPECT_FALSE(m.within_capacity(3.1));
  EXPECT_FALSE(m.within_capacity(-0.1));
}

TEST(PowerModel, Theorem3BoundValues) {
  // gamma(alpha) = 3/2 (1 + ((2/3)^alpha - 1)/alpha); gamma(2) = 3/2 * (1 - 5/18)
  const PowerModel m2(1.0, 1.0, 2.0);
  EXPECT_NEAR(m2.inapproximability_bound(),
              1.5 * (1.0 + (std::pow(2.0 / 3.0, 2.0) - 1.0) / 2.0), 1e-12);
  EXPECT_NEAR(m2.inapproximability_bound(), 1.0833333333333333, 1e-9);
  // The bound exceeds 1 (it is a hardness gap) and grows toward 3/2.
  double prev = 1.0;
  for (double alpha : {1.5, 2.0, 3.0, 4.0, 8.0, 16.0}) {
    const PowerModel m(1.0, 1.0, alpha);
    const double bound = m.inapproximability_bound();
    EXPECT_GT(bound, 1.0);
    EXPECT_LT(bound, 1.5);
    EXPECT_GT(bound, prev);  // increasing in alpha
    prev = bound;
  }
}

TEST(PowerModel, FRejectsNegativeRate) {
  const PowerModel m(1.0, 1.0, 2.0);
  EXPECT_THROW((void)m.f(-0.1), ContractViolation);
  EXPECT_THROW((void)m.power_rate(0.0), ContractViolation);
}

}  // namespace
}  // namespace dcn
