// Tests for the engine layer: Instance, SolverRegistry, ScenarioSuite,
// and the solver adapters' replay-validated outcomes.
#include <gtest/gtest.h>

#include <memory>

#include "common/contracts.h"
#include "engine/instance.h"
#include "engine/registry.h"
#include "engine/scenario.h"
#include "engine/solver.h"
#include "engine/solvers.h"

namespace dcn::engine {
namespace {

TEST(SolverRegistry, DefaultRegistryCarriesEveryAlgorithm) {
  const SolverRegistry& registry = default_registry();
  for (const char* name :
       {"mcf", "mcf_paper", "mcf_plain", "sp_mcf", "dcfsr", "dcfsr_classic",
        "dcfsr_mt", "ecmp_mcf", "greedy", "edf", "exact", "online_dcfsr",
        "online_dcfsr_id", "online_dcfsr_flat", "online_dcfsr_preempt",
        "online_dcfsr_sharded", "online_greedy", "oracle_dcfsr"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    const std::unique_ptr<Solver> solver = registry.create(name);
    EXPECT_EQ(solver->name(), name);
    EXPECT_FALSE(solver->description().empty());
  }
  EXPECT_EQ(registry.size(), 18u);
}

TEST(SolverRegistry, UnknownSolverThrowsWithCatalogue) {
  const SolverRegistry& registry = default_registry();
  EXPECT_FALSE(registry.contains("no_such_solver"));
  try {
    (void)registry.create("no_such_solver");
    FAIL() << "expected UnknownSolverError";
  } catch (const UnknownSolverError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no_such_solver"), std::string::npos);
    // The message must help the caller: it lists what *is* registered.
    EXPECT_NE(message.find("dcfsr"), std::string::npos);
    EXPECT_NE(message.find("mcf"), std::string::npos);
  }
}

TEST(SolverRegistry, RejectsDuplicateAndEmptyNames) {
  SolverRegistry registry;
  registry.add("edf", [] { return std::make_unique<EdfSolver>(); });
  EXPECT_THROW(
      registry.add("edf", [] { return std::make_unique<EdfSolver>(); }),
      ContractViolation);
  EXPECT_THROW(
      registry.add("", [] { return std::make_unique<EdfSolver>(); }),
      ContractViolation);
  EXPECT_THROW(registry.add("x", nullptr), ContractViolation);
}

TEST(ScenarioSuite, NamesAreTheFullCross) {
  const ScenarioSuite& suite = ScenarioSuite::default_suite();
  const auto topos = suite.topology_names();
  const auto works = suite.workload_names();
  const auto names = suite.names();
  EXPECT_EQ(names.size(), topos.size() * works.size());
  EXPECT_TRUE(suite.contains("fat_tree/paper"));
  EXPECT_TRUE(suite.contains("leaf_spine/incast"));
  EXPECT_FALSE(suite.contains("fat_tree"));          // no workload part
  EXPECT_FALSE(suite.contains("fat_tree/unknown"));  // unknown workload
}

TEST(ScenarioSuite, UnknownSpecThrowsWithCatalogue) {
  const ScenarioSuite& suite = ScenarioSuite::default_suite();
  try {
    (void)suite.build("not_a_topo/paper", 1);
    FAIL() << "expected UnknownScenarioError";
  } catch (const UnknownScenarioError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("not_a_topo"), std::string::npos);
    EXPECT_NE(message.find("fat_tree"), std::string::npos);
    EXPECT_NE(message.find("incast"), std::string::npos);
  }
  EXPECT_THROW((void)suite.build("no_slash", 1), UnknownScenarioError);
}

TEST(ScenarioSuite, BuildIsAPureFunctionOfSpecSeedOptions) {
  const ScenarioSuite& suite = ScenarioSuite::default_suite();
  const Instance a = suite.build("fat_tree/paper", 7);
  const Instance b = suite.build("fat_tree/paper", 7);
  ASSERT_EQ(a.flows().size(), b.flows().size());
  EXPECT_EQ(a.flows(), b.flows());
  EXPECT_EQ(a.name(), "fat_tree/paper#7");
  EXPECT_EQ(a.seed(), 7u);

  // Different seed, different workload.
  const Instance c = suite.build("fat_tree/paper", 8);
  EXPECT_NE(a.flows(), c.flows());
}

TEST(ScenarioSuite, EveryScenarioBuildsAValidInstance) {
  const ScenarioSuite& suite = ScenarioSuite::default_suite();
  ScenarioOptions options;
  options.num_flows = 6;  // keep the sweep fast
  for (const std::string& spec : suite.names()) {
    // Skip the two 128-host fabrics here; covered by benches.
    if (spec.find("fat_tree8") == 0 || spec.find("leaf_spine_wide") == 0) {
      continue;
    }
    const Instance instance = suite.build(spec, 11, options);
    EXPECT_FALSE(instance.flows().empty()) << spec;
    EXPECT_GT(instance.horizon().measure(), 0.0) << spec;
    EXPECT_FALSE(instance.summary().empty()) << spec;
  }
}

TEST(ScenarioSuite, OptionsShapeThePowerModel) {
  const ScenarioSuite& suite = ScenarioSuite::default_suite();
  ScenarioOptions options;
  options.alpha = 4.0;
  options.sigma = 0.5;
  const Instance instance = suite.build("line/paper", 1, options);
  EXPECT_DOUBLE_EQ(instance.model().alpha(), 4.0);
  EXPECT_DOUBLE_EQ(instance.model().sigma(), 0.5);
}

TEST(SolverRng, DependsOnInstanceAndSolverOnly) {
  const ScenarioSuite& suite = ScenarioSuite::default_suite();
  const Instance a = suite.build("fat_tree/paper", 1);
  Rng r1 = solver_rng(a, "dcfsr");
  Rng r2 = solver_rng(a, "dcfsr");
  EXPECT_EQ(r1(), r2());  // same stream
  Rng r3 = solver_rng(a, "ecmp_mcf");
  Rng r4 = solver_rng(suite.build("fat_tree/paper", 2), "dcfsr");
  Rng r5 = solver_rng(a, "dcfsr");
  const auto first = r5();
  EXPECT_NE(first, r3());  // other solver, other stream
  EXPECT_NE(first, r4());  // other seed, other stream
}

class SolverOutcomeTest : public ::testing::Test {
 protected:
  const ScenarioSuite& suite_ = ScenarioSuite::default_suite();
  ScenarioOptions small_ = [] {
    ScenarioOptions o;
    o.num_flows = 10;
    return o;
  }();
};

TEST_F(SolverOutcomeTest, EveryDeterministicSolverIsReplayValidated) {
  const Instance instance = suite_.build("fat_tree/paper", 5, small_);
  for (const char* name :
       {"mcf", "mcf_paper", "mcf_plain", "greedy", "edf", "online_greedy"}) {
    const SolverOutcome out = default_registry().create(name)->solve(instance);
    EXPECT_TRUE(out.feasible) << name << ": " << out.first_issue;
    EXPECT_GT(out.energy, 0.0) << name;
    EXPECT_EQ(out.solver, name);
    EXPECT_EQ(out.instance, "fat_tree/paper#5");
  }
}

TEST_F(SolverOutcomeTest, RandomizedSolversAreReplayValidatedAndDeterministic) {
  const Instance instance = suite_.build("fat_tree/paper", 5, small_);
  for (const char* name : {"dcfsr", "ecmp_mcf", "online_dcfsr"}) {
    const SolverOutcome a = default_registry().create(name)->solve(instance);
    const SolverOutcome b = default_registry().create(name)->solve(instance);
    EXPECT_TRUE(a.feasible) << name << ": " << a.first_issue;
    EXPECT_EQ(canonical_summary(a), canonical_summary(b)) << name;
  }
}

TEST_F(SolverOutcomeTest, DcfsrReportsALowerBoundBelowItsEnergy) {
  const Instance instance = suite_.build("fat_tree/paper", 5, small_);
  const SolverOutcome out = default_registry().create("dcfsr")->solve(instance);
  EXPECT_GT(out.lower_bound, 0.0);
  // LB is a bound on the optimum; the rounded schedule can only cost more
  // (up to float tolerance).
  EXPECT_GE(out.energy, out.lower_bound * (1.0 - 1e-9));
}

TEST_F(SolverOutcomeTest, ExactMatchesMcfWhenRoutingIsForced) {
  // On the line topology there is a single simple path per flow, so the
  // exhaustive optimum and SP+MCF coincide exactly.
  ScenarioOptions options;
  options.num_flows = 4;
  const Instance instance = suite_.build("line/paper", 3, options);
  const SolverOutcome exact = default_registry().create("exact")->solve(instance);
  const SolverOutcome mcf = default_registry().create("mcf")->solve(instance);
  EXPECT_TRUE(exact.feasible) << exact.first_issue;
  EXPECT_DOUBLE_EQ(exact.energy, mcf.energy);
}

TEST_F(SolverOutcomeTest, CanonicalSummaryIsStableAndTimingFree) {
  const Instance instance = suite_.build("line/paper", 3, small_);
  const SolverOutcome out = default_registry().create("mcf")->solve(instance);
  const std::string summary = canonical_summary(out);
  EXPECT_NE(summary.find("solver=mcf"), std::string::npos);
  EXPECT_NE(summary.find("instance=line/paper#3"), std::string::npos);
  EXPECT_NE(summary.find("feasible=1"), std::string::npos);
  EXPECT_EQ(summary.find("ms"), std::string::npos);  // no wall-clock leakage
  EXPECT_EQ(summary, canonical_summary(out));
}

}  // namespace
}  // namespace dcn::engine
