// The event-stream seam of the online service, pinned differentially.
//
// The service never materializes its trace: PoissonEventStream must
// emit — flow for flow, field for field — exactly what poisson_workload
// would have materialized from the same scenario rng state, and
// TraceEventStream must hand a materialized trace out in the event
// loop's (release, id) arrival order. ScenarioSuite::build_topology is
// the bridge: it returns the scenario rng advanced past the topology
// draw, i.e. the precise state the workload factory would have
// received.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "engine/scenario.h"
#include "flow/workload.h"
#include "online/event_stream.h"

namespace dcn::engine {
namespace {

class EventStreamTest : public ::testing::Test {
 protected:
  const ScenarioSuite& suite_ = ScenarioSuite::default_suite();
};

TEST_F(EventStreamTest, PoissonStreamEmitsTheMaterializedTrace) {
  // Every online workload family, several seeds: pulls equal the
  // materialized instance's flows exactly (Flow has defaulted ==, so
  // this is field-for-field float identity), then the stream exhausts.
  const struct {
    const char* spec;
    SizeModel model;
  } families[] = {{"fat_tree/poisson", SizeModel::kFixed},
                  {"leaf_spine/websearch", SizeModel::kWebSearch},
                  {"fat_tree/hadoop", SizeModel::kHadoop}};
  for (const auto& [spec, model] : families) {
    for (const std::uint64_t seed : {1, 2, 7}) {
      ScenarioOptions scen;
      scen.num_flows = 25;
      scen.arrival_rate = 3.0;
      const Instance instance = suite_.build(spec, seed, scen);

      auto [topo, rng] = suite_.build_topology(spec, seed);
      PoissonEventStream stream(topo, online_workload_params(scen, model),
                                rng, scen.num_flows);
      std::vector<Flow> pulled;
      while (auto next = stream.next()) pulled.push_back(*next);
      ASSERT_EQ(pulled.size(), instance.flows().size())
          << spec << " seed " << seed;
      for (std::size_t i = 0; i < pulled.size(); ++i) {
        EXPECT_EQ(pulled[i], instance.flows()[i])
            << spec << " seed " << seed << " flow " << i;
      }
      EXPECT_FALSE(stream.next().has_value());
    }
  }
}

TEST_F(EventStreamTest, PoissonStreamLimitTruncatesWithoutPerturbing) {
  // A shorter limit is a strict prefix: synthesizing fewer arrivals
  // must not disturb the ones emitted (the service's --arrivals knob).
  const char* spec = "fat_tree/poisson";
  ScenarioOptions scen;
  scen.num_flows = 20;

  auto [topo_full, rng_full] = suite_.build_topology(spec, 3);
  PoissonEventStream full(topo_full, online_workload_params(scen, SizeModel::kFixed),
                          rng_full, 20);
  std::vector<Flow> all;
  while (auto next = full.next()) all.push_back(*next);
  ASSERT_EQ(all.size(), 20u);

  auto [topo_short, rng_short] = suite_.build_topology(spec, 3);
  PoissonEventStream truncated(
      topo_short, online_workload_params(scen, SizeModel::kFixed), rng_short,
      7);
  std::vector<Flow> prefix;
  while (auto next = truncated.next()) prefix.push_back(*next);
  ASSERT_EQ(prefix.size(), 7u);
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(prefix[i], all[i]) << "flow " << i;
  }
}

TEST_F(EventStreamTest, TraceStreamHandsOutArrivalOrder) {
  // A deliberately shuffled trace with a release tie: the stream must
  // emit (release, id) order — the flat event loop's arrival order.
  std::vector<Flow> flows(4);
  flows[0] = {0, 0, 1, 1.0, 5.0, 8.0};
  flows[1] = {1, 1, 2, 1.0, 1.0, 4.0};
  flows[2] = {2, 2, 3, 1.0, 5.0, 9.0};  // release tie with id 0
  flows[3] = {3, 3, 4, 1.0, 0.5, 3.0};
  TraceEventStream stream(flows);

  std::vector<FlowId> order;
  double last_release = 0.0;
  while (auto next = stream.next()) {
    EXPECT_GE(next->release, last_release);
    last_release = next->release;
    order.push_back(next->id);
  }
  EXPECT_EQ(order, (std::vector<FlowId>{3, 1, 0, 2}));
}

TEST_F(EventStreamTest, EmptyTraceStreamIsImmediatelyExhausted) {
  TraceEventStream stream({});
  EXPECT_FALSE(stream.next().has_value());
}

}  // namespace
}  // namespace dcn::engine
