// Tests for the Frank-Wolfe convex multi-commodity flow solver.
#include <gtest/gtest.h>

#include <cmath>

#include "opt/convex_mcf.h"
#include "power/power_model.h"
#include "topology/builders.h"

namespace dcn {
namespace {

ConvexMcfProblem quadratic_problem(const Graph& g) {
  ConvexMcfProblem p;
  p.graph = &g;
  p.cost = [](double x) { return x * x; };
  p.cost_derivative = [](double x) { return 2.0 * x; };
  return p;
}

TEST(ConvexMcf, EmptyProblemIsTrivial) {
  const Topology topo = line_network(3);
  ConvexMcfProblem p = quadratic_problem(topo.graph());
  const auto sol = solve_convex_mcf(p);
  EXPECT_DOUBLE_EQ(sol.cost, 0.0);
  for (double x : sol.total_flow) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(ConvexMcf, SingleCommodityOnLineUsesTheOnlyRoute) {
  const Topology topo = line_network(3);
  ConvexMcfProblem p = quadratic_problem(topo.graph());
  p.commodities = {{0, 2, 4.0}};
  const auto sol = solve_convex_mcf(p);
  // Both rightward edges carry the full demand: cost = 2 * 16.
  EXPECT_NEAR(sol.cost, 32.0, 1e-6);
}

TEST(ConvexMcf, QuadraticSplitsEvenlyAcrossParallelLinks) {
  // With cost x^2 and k parallel links, the optimum splits demand
  // equally: cost = k * (d/k)^2 = d^2 / k.
  for (int k : {2, 3, 4}) {
    const Topology topo = parallel_links(k);
    ConvexMcfProblem p = quadratic_problem(topo.graph());
    const double demand = 6.0;
    p.commodities = {{0, 1, demand}};
    FrankWolfeOptions opts;
    opts.max_iterations = 400;
    opts.gap_tolerance = 1e-7;
    const auto sol = solve_convex_mcf(p, opts);
    EXPECT_NEAR(sol.cost, demand * demand / k, 1e-2) << "k=" << k;
    // Per-edge flows near demand/k on forward edges.
    for (EdgeId e = 0; e < topo.graph().num_edges(); ++e) {
      const double x = sol.total_flow[static_cast<std::size_t>(e)];
      if (x > 1e-6) {
        EXPECT_NEAR(x, demand / k, 0.15);
      }
    }
  }
}

TEST(ConvexMcf, TwoCommoditiesShareTheLoad) {
  // Two commodities src->dst on 2 parallel links, demands 2 and 4:
  // optimal total per link = 3 each, cost = 18.
  const Topology topo = parallel_links(2);
  ConvexMcfProblem p = quadratic_problem(topo.graph());
  p.commodities = {{0, 1, 2.0}, {0, 1, 4.0}};
  FrankWolfeOptions opts;
  opts.max_iterations = 400;
  opts.gap_tolerance = 1e-7;
  const auto sol = solve_convex_mcf(p, opts);
  EXPECT_NEAR(sol.cost, 18.0, 1e-2);
}

TEST(ConvexMcf, CommodityFlowsSumToTotal) {
  const Topology topo = fat_tree(4);
  ConvexMcfProblem p = quadratic_problem(topo.graph());
  p.commodities = {{topo.hosts()[0], topo.hosts()[9], 3.0},
                   {topo.hosts()[2], topo.hosts()[12], 1.5}};
  const auto sol = solve_convex_mcf(p);
  std::vector<double> sum(sol.total_flow.size(), 0.0);
  for (const auto& yc : sol.commodity_flow) sparse_flow_accumulate(yc, sum);
  for (std::size_t e = 0; e < sol.total_flow.size(); ++e) {
    EXPECT_NEAR(sum[e], sol.total_flow[e], 1e-9);
  }
}

TEST(ConvexMcf, FlowConservationHoldsPerCommodity) {
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  ConvexMcfProblem p = quadratic_problem(g);
  const NodeId src = topo.hosts()[0], dst = topo.hosts()[15];
  p.commodities = {{src, dst, 2.0}};
  const auto sol = solve_convex_mcf(p);
  std::vector<double> y0(static_cast<std::size_t>(g.num_edges()), 0.0);
  sparse_flow_accumulate(sol.commodity_flow[0], y0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    double net = 0.0;
    for (EdgeId e : g.out_edges(u)) net += y0[static_cast<std::size_t>(e)];
    for (EdgeId e : g.in_edges(u)) net -= y0[static_cast<std::size_t>(e)];
    if (u == src) {
      EXPECT_NEAR(net, 2.0, 1e-6);
    } else if (u == dst) {
      EXPECT_NEAR(net, -2.0, 1e-6);
    } else {
      EXPECT_NEAR(net, 0.0, 1e-6);
    }
  }
}

TEST(ConvexMcf, EnvelopeCostConsolidatesWhenIdlePowerDominates) {
  // With a large sigma, the envelope's linear part dominates and the
  // optimum concentrates both commodities on one link instead of
  // splitting (opposite of the pure-quadratic case).
  const Topology topo = parallel_links(2);
  const PowerModel model(/*sigma=*/100.0, /*mu=*/1.0, /*alpha=*/2.0);
  ConvexMcfProblem p;
  p.graph = &topo.graph();
  p.cost = [&model](double x) { return model.envelope(x); };
  p.cost_derivative = [&model](double x) { return model.envelope_derivative(x); };
  p.commodities = {{0, 1, 0.5}, {0, 1, 0.5}};
  FrankWolfeOptions opts;
  opts.max_iterations = 300;
  opts.gap_tolerance = 1e-7;
  const auto sol = solve_convex_mcf(p, opts);
  // Total demand 1.0 is far below R_opt = 10: cost = envelope(1) on one
  // link (the linear envelope makes any split equally cheap at best, so
  // just check the optimal value).
  EXPECT_NEAR(sol.cost, model.envelope(1.0), 1e-4 * model.envelope(1.0));
}

TEST(ConvexMcf, GapDecreasesAndIsReported) {
  const Topology topo = fat_tree(4);
  ConvexMcfProblem p = quadratic_problem(topo.graph());
  for (int i = 0; i < 6; ++i) {
    p.commodities.push_back(
        {topo.hosts()[static_cast<std::size_t>(i)],
         topo.hosts()[static_cast<std::size_t>(15 - i)], 1.0 + i});
  }
  FrankWolfeOptions loose;
  loose.max_iterations = 3;
  FrankWolfeOptions tight;
  tight.max_iterations = 200;
  tight.gap_tolerance = 1e-6;
  const auto rough = solve_convex_mcf(p, loose);
  const auto fine = solve_convex_mcf(p, tight);
  EXPECT_LE(fine.cost, rough.cost + 1e-9);
  EXPECT_LE(fine.relative_gap, 1e-6 + 1e-12);
}

TEST(ConvexMcf, WarmStartConvergesFasterOrEqual) {
  const Topology topo = fat_tree(4);
  ConvexMcfProblem p = quadratic_problem(topo.graph());
  for (int i = 0; i < 5; ++i) {
    p.commodities.push_back(
        {topo.hosts()[static_cast<std::size_t>(i)],
         topo.hosts()[static_cast<std::size_t>(10 + i)], 2.0});
  }
  FrankWolfeOptions opts;
  opts.max_iterations = 300;
  opts.gap_tolerance = 1e-6;
  const auto cold = solve_convex_mcf(p, opts);
  const auto warm = solve_convex_mcf(p, opts, &cold.commodity_flow);
  EXPECT_LE(warm.iterations, cold.iterations);
  EXPECT_NEAR(warm.cost, cold.cost, 1e-3 * cold.cost);
}

TEST(ConvexMcf, ContractsOnBadProblem) {
  const Topology topo = line_network(2);
  ConvexMcfProblem p = quadratic_problem(topo.graph());
  p.commodities = {{0, 0, 1.0}};  // src == dst
  EXPECT_THROW((void)solve_convex_mcf(p), ContractViolation);
  p.commodities = {{0, 1, -1.0}};  // negative demand
  EXPECT_THROW((void)solve_convex_mcf(p), ContractViolation);
  p.commodities = {{0, 1, 1.0}};
  p.cost = nullptr;
  EXPECT_THROW((void)solve_convex_mcf(p), ContractViolation);
}

}  // namespace
}  // namespace dcn
