// Property tests for the model's scaling laws — analytic invariances
// that any correct implementation of Eq. 5/6 and the optimal algorithms
// must satisfy.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.h"
#include "common/random.h"
#include "dcfs/most_critical_first.h"
#include "flow/workload.h"
#include "schedule/schedule.h"
#include "speedscale/yds.h"
#include "topology/builders.h"

namespace dcn {
namespace {

std::vector<Flow> scale_volumes(std::vector<Flow> flows, double c) {
  for (Flow& fl : flows) fl.volume *= c;
  return flows;
}

std::vector<Flow> scale_time(std::vector<Flow> flows, double c) {
  for (Flow& fl : flows) {
    fl.release *= c;
    fl.deadline *= c;
  }
  return flows;
}

class ScalingLawTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalingLawTest, VolumeScalingRaisesEnergyByCAlpha) {
  // Doubling every volume doubles every optimal rate; the transmission
  // times are unchanged, so Phi_g scales by c^alpha.
  Rng rng(GetParam());
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const double alpha = 2.0 + rng.uniform(0.0, 2.0);
  const PowerModel model = PowerModel::pure_speed_scaling(alpha);
  PaperWorkloadParams params;
  params.num_flows = 12;
  const auto flows = paper_workload(topo, params, rng);
  const double c = 2.0;
  const auto scaled = scale_volumes(flows, c);

  const auto base = sp_mcf(g, flows, model);
  const auto big = sp_mcf(g, scaled, model);
  if (base.availability_fallbacks > 0 || big.availability_fallbacks > 0) {
    GTEST_SKIP() << "congested instance; scaling law holds only overlap-free";
  }
  const Interval horizon = flow_horizon(flows);
  const double e1 = energy_phi_g(g, base.schedule, model, horizon);
  const double e2 = energy_phi_g(g, big.schedule, model, horizon);
  EXPECT_NEAR(e2 / e1, std::pow(c, alpha), 1e-6 * std::pow(c, alpha));
}

TEST_P(ScalingLawTest, TimeScalingLowersEnergyByCAlphaMinusOne) {
  // Stretching all spans by c scales optimal rates by 1/c and
  // transmission times by c: Phi_g scales by c^(1-alpha).
  Rng rng(GetParam() ^ 0xf00d);
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const double alpha = 2.0;
  const PowerModel model = PowerModel::pure_speed_scaling(alpha);
  PaperWorkloadParams params;
  params.num_flows = 12;
  const auto flows = paper_workload(topo, params, rng);
  const double c = 3.0;
  const auto stretched = scale_time(flows, c);

  const auto base = sp_mcf(g, flows, model);
  const auto slow = sp_mcf(g, stretched, model);
  if (base.availability_fallbacks > 0 || slow.availability_fallbacks > 0) {
    GTEST_SKIP() << "congested instance; scaling law holds only overlap-free";
  }
  const double e1 = energy_phi_g(g, base.schedule, model, flow_horizon(flows));
  const double e2 =
      energy_phi_g(g, slow.schedule, model, flow_horizon(stretched));
  EXPECT_NEAR(e2 / e1, std::pow(c, 1.0 - alpha), 1e-6);
}

TEST_P(ScalingLawTest, YdsEnergyIsScaleInvariantInTheSameWay) {
  Rng rng(GetParam() ^ 0xbeef);
  std::vector<SsJob> jobs;
  for (int i = 0; i < 8; ++i) {
    double a = rng.uniform(0.0, 20.0);
    double b = a + rng.uniform(1.0, 10.0);
    jobs.push_back({i, rng.uniform(1.0, 5.0), {a, b}});
  }
  const double alpha = 2.5;
  const double base = yds_schedule(jobs).energy(alpha);

  std::vector<SsJob> scaled = jobs;
  for (SsJob& j : scaled) j.work *= 2.0;
  EXPECT_NEAR(yds_schedule(scaled).energy(alpha) / base, std::pow(2.0, alpha),
              1e-6 * std::pow(2.0, alpha));

  std::vector<SsJob> stretched = jobs;
  for (SsJob& j : stretched) {
    j.span.lo *= 2.0;
    j.span.hi *= 2.0;
  }
  EXPECT_NEAR(yds_schedule(stretched).energy(alpha) / base,
              std::pow(2.0, 1.0 - alpha), 1e-9);
}

TEST_P(ScalingLawTest, MuIsAPureMultiplier) {
  Rng rng(GetParam() ^ 0xcafe);
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  PaperWorkloadParams params;
  params.num_flows = 10;
  const auto flows = paper_workload(topo, params, rng);
  const PowerModel m1(0.0, 1.0, 2.0);
  const PowerModel m5(0.0, 5.0, 2.0);
  // Most-Critical-First's schedule does not depend on mu (it cancels in
  // the intensity comparison), so energy scales exactly by mu.
  const auto r1 = sp_mcf(g, flows, m1);
  const auto r5 = sp_mcf(g, flows, m5);
  const Interval horizon = flow_horizon(flows);
  EXPECT_NEAR(energy_phi_g(g, r5.schedule, m5, horizon),
              5.0 * energy_phi_g(g, r1.schedule, m1, horizon), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalingLawTest,
                         ::testing::Values(11u, 13u, 17u, 19u, 23u, 29u));

}  // namespace
}  // namespace dcn
