// Tests for the breakpoint interval decomposition (Sec. V-A).
#include <gtest/gtest.h>

#include "mcf/interval_decomposition.h"

namespace dcn {
namespace {

TEST(IntervalDecomposition, BreakpointsAreSortedUniqueReleaseDeadlines) {
  const std::vector<Flow> flows{
      {0, 0, 1, 1.0, 2.0, 7.0},
      {1, 0, 1, 1.0, 4.0, 9.0},
      {2, 0, 1, 1.0, 2.0, 4.0},  // duplicates 2 and 4
  };
  const auto dec = decompose_intervals(flows);
  EXPECT_EQ(dec.breakpoints, (std::vector<double>{2.0, 4.0, 7.0, 9.0}));
  ASSERT_EQ(dec.num_intervals(), 3u);
  EXPECT_EQ(dec.intervals[0], Interval(2.0, 4.0));
  EXPECT_EQ(dec.intervals[1], Interval(4.0, 7.0));
  EXPECT_EQ(dec.intervals[2], Interval(7.0, 9.0));
}

TEST(IntervalDecomposition, ActiveSetsPerInterval) {
  const std::vector<Flow> flows{
      {0, 0, 1, 1.0, 2.0, 7.0},
      {1, 0, 1, 1.0, 4.0, 9.0},
      {2, 0, 1, 1.0, 2.0, 4.0},
  };
  const auto dec = decompose_intervals(flows);
  EXPECT_EQ(dec.active[0], (std::vector<FlowId>{0, 2}));  // [2,4)
  EXPECT_EQ(dec.active[1], (std::vector<FlowId>{0, 1}));  // [4,7)
  EXPECT_EQ(dec.active[2], (std::vector<FlowId>{1}));     // [7,9)
}

TEST(IntervalDecomposition, EveryFlowSpanIsExactlyPartitioned) {
  const std::vector<Flow> flows{
      {0, 0, 1, 1.0, 1.0, 10.0},
      {1, 0, 1, 1.0, 3.0, 5.0},
      {2, 0, 1, 1.0, 4.0, 8.0},
  };
  const auto dec = decompose_intervals(flows);
  for (const Flow& fl : flows) {
    double covered = 0.0;
    for (std::size_t k = 0; k < dec.num_intervals(); ++k) {
      const bool active = std::find(dec.active[k].begin(), dec.active[k].end(),
                                    fl.id) != dec.active[k].end();
      if (active) {
        covered += dec.intervals[k].measure();
        EXPECT_TRUE(fl.span().covers(dec.intervals[k]));
      }
    }
    EXPECT_NEAR(covered, fl.deadline - fl.release, 1e-9);
  }
}

TEST(IntervalDecomposition, LambdaAndBeta) {
  const std::vector<Flow> flows{
      {0, 0, 1, 1.0, 0.0, 10.0},
      {1, 0, 1, 1.0, 8.0, 10.0},
  };
  const auto dec = decompose_intervals(flows);
  // Intervals [0,8) and [8,10): lambda = 10/2 = 5.
  EXPECT_NEAR(dec.lambda(), 5.0, 1e-12);
  EXPECT_NEAR(dec.beta(0), 0.8, 1e-12);
  EXPECT_NEAR(dec.beta(1), 0.2, 1e-12);
  EXPECT_EQ(dec.horizon(), Interval(0.0, 10.0));
}

TEST(IntervalDecomposition, SingleFlow) {
  const std::vector<Flow> flows{{0, 0, 1, 5.0, 1.0, 3.0}};
  const auto dec = decompose_intervals(flows);
  ASSERT_EQ(dec.num_intervals(), 1u);
  EXPECT_EQ(dec.intervals[0], Interval(1.0, 3.0));
  EXPECT_NEAR(dec.lambda(), 1.0, 1e-12);
  EXPECT_EQ(dec.active[0], (std::vector<FlowId>{0}));
}

TEST(IntervalDecomposition, GapsBetweenFlowsYieldEmptyActiveSets) {
  const std::vector<Flow> flows{
      {0, 0, 1, 1.0, 0.0, 2.0},
      {1, 0, 1, 1.0, 5.0, 6.0},
  };
  const auto dec = decompose_intervals(flows);
  ASSERT_EQ(dec.num_intervals(), 3u);
  EXPECT_TRUE(dec.active[1].empty());  // [2,5): nobody active
}

TEST(IntervalDecomposition, NearCoincidentBreakpointsAreMerged) {
  const std::vector<Flow> flows{
      {0, 0, 1, 1.0, 0.0, 5.0},
      {1, 0, 1, 1.0, 5.0 + 1e-12, 9.0},
  };
  const auto dec = decompose_intervals(flows);
  // 5.0 and 5.0+1e-12 merge: no degenerate interval, lambda stays sane.
  EXPECT_EQ(dec.num_intervals(), 2u);
  EXPECT_LT(dec.lambda(), 10.0);
}

}  // namespace
}  // namespace dcn
