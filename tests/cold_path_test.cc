// The v2 cold-solve hot path: step-rule equivalence, oracle batching,
// the adaptive parallel oracle, and the analytic envelope fast path.
//
// Five claims are pinned here:
//
//   1. Equivalence: classic, pairwise, and away-step solve the same
//      convex programs to the same objective (to 1e-7 relative) across
//      the scenario grid — the rules differ in trajectory, not optimum.
//   2. Batching: grouping same-source commodities into one multi-target
//      Dijkstra sweep is bitwise equal to one sweep per commodity (the
//      early exit never disturbs the parents of settled nodes), at
//      strictly fewer sweeps.
//   3. Adaptive parallel oracle: oracle_threads = 0 (the default),
//      any pinned width, and forced-sequential all produce
//      byte-identical solutions *and* identical deterministic phase
//      counters — the counters are safe to byte-compare in canonical
//      engine output.
//   4. The cold-stall fix the v2 default flip ships: on the bcube
//      incast instance pairwise certifies gap <= 1e-6 within a pinned
//      iteration budget where the classic rule, at the same budget,
//      stalls orders of magnitude short.
//   5. The analytic EnvelopeCostSpec reproduces the std::function
//      envelope callbacks bit for bit — same iterations, same cost,
//      same flows — for the kinked (sigma > 0), quadratic, cubic, and
//      generic-alpha envelopes, under every step rule.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine/instance.h"
#include "engine/scenario.h"
#include "graph/graph.h"
#include "mcf/relaxation.h"
#include "opt/convex_mcf.h"
#include "power/power_model.h"
#include "topology/builders.h"

namespace dcn {
namespace {

using engine::Instance;
using engine::ScenarioOptions;
using engine::ScenarioSuite;

/// A multipath problem with shared sources on the k=4 fat-tree,
/// costed by `model` through the generic std::function callbacks.
ConvexMcfProblem power_problem(const Graph& g, const PowerModel& model) {
  ConvexMcfProblem p;
  p.graph = &g;
  p.cost = [&model](double x) { return model.envelope(x); };
  p.cost_derivative = [&model](double x) {
    return model.envelope_derivative(x);
  };
  return p;
}

void add_fat_tree_commodities(ConvexMcfProblem& p, const Topology& topo) {
  for (int i = 0; i < 10; ++i) {
    p.commodities.push_back({topo.hosts()[static_cast<std::size_t>(i % 4)],
                             topo.hosts()[static_cast<std::size_t>(15 - i)],
                             0.5 + 0.3 * i});
  }
}

EnvelopeCostSpec spec_of(const PowerModel& model) {
  EnvelopeCostSpec spec;
  spec.sigma = model.sigma();
  spec.mu = model.mu();
  spec.alpha = model.alpha();
  spec.r_hat = model.r_hat();
  spec.env_slope = model.envelope_derivative(0.0);
  return spec;
}

void expect_bitwise_equal(const ConvexMcfSolution& a, const ConvexMcfSolution& b,
                          const std::string& tag) {
  EXPECT_EQ(a.iterations, b.iterations) << tag;
  EXPECT_EQ(a.cost, b.cost) << tag;  // bitwise, not just near
  ASSERT_EQ(a.total_flow.size(), b.total_flow.size()) << tag;
  for (std::size_t e = 0; e < a.total_flow.size(); ++e) {
    EXPECT_EQ(a.total_flow[e], b.total_flow[e]) << tag << " edge " << e;
  }
  ASSERT_EQ(a.commodity_flow.size(), b.commodity_flow.size()) << tag;
  for (std::size_t c = 0; c < a.commodity_flow.size(); ++c) {
    EXPECT_EQ(a.commodity_flow[c], b.commodity_flow[c]) << tag << " row " << c;
  }
}

TEST(ColdPath, ThreeStepRulesAgreeOnTheScenarioGrid) {
  const ScenarioSuite& suite = ScenarioSuite::default_suite();
  for (const char* spec :
       {"fat_tree/incast", "fat_tree/shuffle", "leaf_spine/shuffle",
        "line/incast"}) {
    for (const std::uint64_t seed : {3ull, 5ull}) {
      ScenarioOptions sopt;
      sopt.num_flows = 10;
      const Instance inst = suite.build(spec, seed, sopt);

      RelaxationOptions base;
      base.frank_wolfe.max_iterations = 2000;
      base.frank_wolfe.gap_tolerance = 1e-7;
      RelaxationOptions classic = base;
      classic.frank_wolfe.step_rule = FrankWolfeStepRule::kClassic;
      RelaxationOptions pairwise = base;
      pairwise.frank_wolfe.step_rule = FrankWolfeStepRule::kPairwise;
      RelaxationOptions away = base;
      away.frank_wolfe.step_rule = FrankWolfeStepRule::kAwayStep;

      const FractionalRelaxation a =
          solve_relaxation(inst.graph(), inst.flows(), inst.model(), classic);
      const FractionalRelaxation b =
          solve_relaxation(inst.graph(), inst.flows(), inst.model(), pairwise);
      const FractionalRelaxation c =
          solve_relaxation(inst.graph(), inst.flows(), inst.model(), away);
      const std::string tag = std::string(spec) + "#" + std::to_string(seed);
      EXPECT_NEAR(b.lower_bound_energy, a.lower_bound_energy,
                  1e-7 * a.lower_bound_energy)
          << tag;
      EXPECT_NEAR(c.lower_bound_energy, a.lower_bound_energy,
                  1e-7 * a.lower_bound_energy)
          << tag;
      // The atom rules must actually certify the tight tolerance.
      EXPECT_LE(b.mean_relative_gap, 1e-7) << tag;
      EXPECT_LE(c.mean_relative_gap, 1e-7) << tag;
    }
  }
}

TEST(ColdPath, BatchedOracleIsBitwiseEqualToPerCommoditySweeps) {
  const Topology topo = fat_tree(4);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  for (const FrankWolfeStepRule rule :
       {FrankWolfeStepRule::kClassic, FrankWolfeStepRule::kPairwise,
        FrankWolfeStepRule::kAwayStep}) {
    ConvexMcfProblem p = power_problem(topo.graph(), model);
    add_fat_tree_commodities(p, topo);
    FrankWolfeOptions batched;
    batched.step_rule = rule;
    batched.max_iterations = 120;
    batched.gap_tolerance = 1e-6;
    FrankWolfeOptions per_commodity = batched;
    per_commodity.batch_oracle = false;

    const auto a = solve_convex_mcf(p, batched);
    const auto b = solve_convex_mcf(p, per_commodity);
    const std::string tag =
        "rule " + std::to_string(static_cast<int>(rule));
    expect_bitwise_equal(a, b, tag);
    // 10 commodities share 4 sources: batching must sweep strictly
    // less, everything else (including repricing work) is identical.
    EXPECT_LT(a.stats.oracle_sweeps, b.stats.oracle_sweeps) << tag;
    EXPECT_EQ(a.stats.edges_repriced, b.stats.edges_repriced) << tag;
    EXPECT_EQ(a.stats.line_search_evals, b.stats.line_search_evals) << tag;
  }
}

TEST(ColdPath, AdaptiveOracleIsByteDeterministicAcrossThreadCounts) {
  const Topology topo = fat_tree(4);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  ConvexMcfProblem p = power_problem(topo.graph(), model);
  add_fat_tree_commodities(p, topo);
  FrankWolfeOptions reference_options;  // oracle_threads = 0: adaptive
  reference_options.max_iterations = 120;
  reference_options.gap_tolerance = 1e-6;
  const auto reference = solve_convex_mcf(p, reference_options);

  for (const std::int32_t threads : {-1, 1, 2, 8}) {
    FrankWolfeOptions opts = reference_options;
    opts.oracle_threads = threads;
    ConvexMcfWorkspace ws;  // also exercises pool (re)build per width
    for (int round = 0; round < 2; ++round) {
      const auto sol = solve_convex_mcf(p, opts, nullptr, &ws);
      const std::string tag =
          "threads " + std::to_string(threads) + " round " +
          std::to_string(round);
      expect_bitwise_equal(sol, reference, tag);
      // The deterministic phase counters may enter canonical engine
      // output, so they must not depend on the oracle width either.
      EXPECT_EQ(sol.stats.oracle_sweeps, reference.stats.oracle_sweeps) << tag;
      EXPECT_EQ(sol.stats.edges_repriced, reference.stats.edges_repriced)
          << tag;
      EXPECT_EQ(sol.stats.line_search_evals,
                reference.stats.line_search_evals)
          << tag;
    }
  }
}

TEST(ColdPath, PairwiseCertifiesTightGapWhereClassicStalls) {
  // The hard multipath instance of the v2 flip: bcube incast. At the
  // same pinned iteration budget the classic rule's joint steps zigzag
  // and stall orders of magnitude short of the 1e-6 gap the pairwise
  // sweeps certify — the last-mile pathology that kept the v1 offline
  // default at a loose 2e-3 tolerance.
  ScenarioOptions sopt;
  sopt.num_flows = 10;
  const Instance inst =
      ScenarioSuite::default_suite().build("bcube/incast", 5, sopt);

  RelaxationOptions pairwise;
  pairwise.frank_wolfe.step_rule = FrankWolfeStepRule::kPairwise;
  pairwise.frank_wolfe.max_iterations = 120;
  pairwise.frank_wolfe.gap_tolerance = 1e-6;
  RelaxationOptions classic = pairwise;
  classic.frank_wolfe.step_rule = FrankWolfeStepRule::kClassic;

  const FractionalRelaxation certified =
      solve_relaxation(inst.graph(), inst.flows(), inst.model(), pairwise);
  const FractionalRelaxation stalled =
      solve_relaxation(inst.graph(), inst.flows(), inst.model(), classic);

  EXPECT_LE(certified.mean_relative_gap, 1e-6);
  EXPECT_LE(certified.total_fw_iterations, 120);
  // Classic burns the whole budget and still certifies nothing close.
  EXPECT_GT(stalled.mean_relative_gap, 1e-5);
}

TEST(ColdPath, EnvelopeSpecMatchesCallbacksBitwise) {
  const Topology topo = fat_tree(4);
  // Kinked envelope (sigma > 0), quadratic, cubic (the repricing fast
  // paths), and a generic non-integer alpha (the std::pow fallback).
  const PowerModel models[] = {
      PowerModel(1.0, 0.5, 2.0, 10.0),
      PowerModel::pure_speed_scaling(2.0),
      PowerModel(0.5, 1.0, 3.0, 8.0),
      PowerModel::pure_speed_scaling(2.5),
  };
  for (const PowerModel& model : models) {
    for (const FrankWolfeStepRule rule :
         {FrankWolfeStepRule::kClassic, FrankWolfeStepRule::kPairwise,
          FrankWolfeStepRule::kAwayStep}) {
      ConvexMcfProblem generic = power_problem(topo.graph(), model);
      add_fat_tree_commodities(generic, topo);
      ConvexMcfProblem analytic = power_problem(topo.graph(), model);
      add_fat_tree_commodities(analytic, topo);
      analytic.envelope = spec_of(model);

      FrankWolfeOptions opts;
      opts.step_rule = rule;
      opts.max_iterations = 120;
      opts.gap_tolerance = 1e-6;
      const auto a = solve_convex_mcf(generic, opts);
      const auto b = solve_convex_mcf(analytic, opts);
      const std::string tag = "alpha " + std::to_string(model.alpha()) +
                              " rule " +
                              std::to_string(static_cast<int>(rule));
      expect_bitwise_equal(a, b, tag);
    }
  }
}

}  // namespace
}  // namespace dcn
