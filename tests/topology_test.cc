// Tests for the topology builders.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "graph/shortest_path.h"
#include "topology/builders.h"

namespace dcn {
namespace {

TEST(FatTree, NodeAndEdgeCounts) {
  // fat_tree(k): 5k^2/4 switches, k^3/4 hosts; physical links:
  // (k/2)^2 * k core-agg + (k/2)^2 * k agg-edge + k^3/4 host links,
  // each physical link = 2 directed edges.
  for (int k : {2, 4, 6, 8}) {
    const Topology topo = fat_tree(k);
    const int half = k / 2;
    EXPECT_EQ(topo.num_switches(), half * half + k * half * 2) << "k=" << k;
    EXPECT_EQ(topo.num_hosts(), k * half * half) << "k=" << k;
    const int physical = k * half * half * 2 + k * half * half;
    EXPECT_EQ(topo.graph().num_edges(), physical * 2) << "k=" << k;
    EXPECT_TRUE(is_strongly_connected(topo.graph()));
  }
}

TEST(FatTree, PaperEvaluationSize) {
  const Topology topo = fat_tree(8);
  EXPECT_EQ(topo.num_switches(), 80);
  EXPECT_EQ(topo.num_hosts(), 128);
}

TEST(FatTree, HostsHaveDegreeOne) {
  const Topology topo = fat_tree(4);
  for (NodeId h : topo.hosts()) {
    EXPECT_EQ(topo.graph().out_edges(h).size(), 1u);
    EXPECT_EQ(topo.graph().in_edges(h).size(), 1u);
    EXPECT_TRUE(topo.is_host(h));
  }
}

TEST(FatTree, RejectsOddOrTinyK) {
  EXPECT_THROW((void)fat_tree(3), ContractViolation);
  EXPECT_THROW((void)fat_tree(0), ContractViolation);
}

TEST(BCube, CountsAndConnectivity) {
  // bcube(n, l): n^(l+1) hosts, (l+1) * n^l switches, each host has
  // degree l+1.
  const Topology b1 = bcube(4, 1);
  EXPECT_EQ(b1.num_hosts(), 16);
  EXPECT_EQ(b1.num_switches(), 8);
  EXPECT_TRUE(is_strongly_connected(b1.graph()));

  const Topology b2 = bcube(2, 2);
  EXPECT_EQ(b2.num_hosts(), 8);
  EXPECT_EQ(b2.num_switches(), 12);
  for (NodeId h : b2.hosts()) {
    EXPECT_EQ(b2.graph().out_edges(h).size(), 3u);
  }
}

TEST(BCube, Level0IsGroupedByHighDigits) {
  // bcube(2,1): hosts 0,1 share a level-0 switch; 0,2 share a level-1
  // switch.
  const Topology topo = bcube(2, 1);
  const Graph& g = topo.graph();
  const auto p01 = bfs_shortest_path(g, 0, 1);
  const auto p02 = bfs_shortest_path(g, 0, 2);
  const auto p03 = bfs_shortest_path(g, 0, 3);
  ASSERT_TRUE(p01 && p02 && p03);
  EXPECT_EQ(p01->length(), 2u);  // via shared level-0 switch
  EXPECT_EQ(p02->length(), 2u);  // via shared level-1 switch
  EXPECT_EQ(p03->length(), 4u);  // two-hop host relay
}

TEST(LeafSpine, CountsAndDiameter) {
  const Topology topo = leaf_spine(4, 2, 8);
  EXPECT_EQ(topo.num_switches(), 6);
  EXPECT_EQ(topo.num_hosts(), 32);
  EXPECT_TRUE(is_strongly_connected(topo.graph()));
  // Hosts on different leaves: host-leaf-spine-leaf-host = 4 hops.
  const auto p = bfs_shortest_path(topo.graph(), topo.hosts()[0],
                                   topo.hosts()[topo.hosts().size() - 1]);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 4u);
}

TEST(LineNetwork, StructureMatchesFig1) {
  const Topology topo = line_network(3);  // A - B - C
  EXPECT_EQ(topo.graph().num_nodes(), 3);
  EXPECT_EQ(topo.graph().num_edges(), 4);  // 2 physical, directed pairs
  EXPECT_EQ(topo.num_hosts(), 3);          // every node can source traffic
  const auto p = bfs_shortest_path(topo.graph(), 0, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 2u);
}

TEST(ParallelLinks, MultigraphShape) {
  const Topology topo = parallel_links(5);
  EXPECT_EQ(topo.graph().num_nodes(), 2);
  EXPECT_EQ(topo.graph().num_edges(), 10);  // 5 physical pairs
  EXPECT_EQ(topo.graph().out_edges(0).size(), 5u);
}

TEST(RandomFabric, ConnectedAndDeterministic) {
  Rng rng1(77), rng2(77);
  const Topology a = random_fabric(10, 6, 2, rng1);
  const Topology b = random_fabric(10, 6, 2, rng2);
  EXPECT_EQ(a.graph().num_edges(), b.graph().num_edges());
  EXPECT_EQ(a.num_hosts(), 20);
  EXPECT_TRUE(is_strongly_connected(a.graph()));
  for (EdgeId e = 0; e < a.graph().num_edges(); ++e) {
    EXPECT_EQ(a.graph().edge(e), b.graph().edge(e));
  }
}

TEST(Topology, SwitchHostPartition) {
  const Topology topo = fat_tree(4);
  const auto switches = topo.switches();
  EXPECT_EQ(static_cast<std::int32_t>(switches.size()), topo.num_switches());
  std::set<NodeId> host_set(topo.hosts().begin(), topo.hosts().end());
  for (NodeId sw : switches) {
    EXPECT_FALSE(topo.is_host(sw));
    EXPECT_EQ(host_set.count(sw), 0u);
  }
}

}  // namespace
}  // namespace dcn
