// Deadline-safe preemption (online re-rating) unit tests, on fabrics
// small enough to hand-verify every float:
//
//   * a single bidirectional link where an arrival only fits if the
//     in-flight flow's future is reshaped — the re-rate pass must admit
//     it, keep the in-flight flow's past untouched, and leave a
//     committed schedule the independent replayer and the packet-level
//     simulator both accept;
//   * the same link where the reshape cannot finish the in-flight
//     flow's remaining volume by its deadline — the commit barrier must
//     roll the transaction back bitwise (the in-flight schedule ends
//     the run byte-identical to its pre-arrival state) and reject the
//     arrival instead;
//   * contended scenario-suite traces where the preempt configuration
//     must admit at least as many flows as its own no-rerate anchor
//     (it only ever adds admissions: the fallback path is tried first
//     and re-rating is a strict superset of it);
//   * rejection hygiene: every rejection in a tight-capacity epoch-
//     batched run must leave zero stale warm-start state behind —
//     enforced by the audit mode's warm-state sweep at every event
//     (a regression here aborts the run via DCN_ENSURES rather than
//     silently re-routing a ghost flow on the next re-solve).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine/instance.h"
#include "engine/scenario.h"
#include "engine/solver.h"
#include "online/online_scheduler.h"
#include "sim/packet_sim.h"
#include "sim/replay.h"

namespace dcn::engine {
namespace {

/// One link, one in-flight flow: A = 10 volume over [0, 10] (density
/// 1), B = 4 volume over [2, 4] (density 2). At B's arrival the link
/// carries A at rate 1, so B needs 2 + 1 = 3 > capacity.
struct LineFixture {
  Graph g{2};
  std::vector<Flow> flows;
  LineFixture(double b_volume, double b_deadline) {
    g.add_bidirectional_edge(0, 1);
    flows.push_back({0, 0, 1, 10.0, 0.0, 10.0});
    flows.push_back({1, 0, 1, b_volume, 2.0, b_deadline});
  }
};

OnlineOptions preempt_options(bool allow_rerate) {
  OnlineOptions options;
  options.rounding.relaxation.frank_wolfe.max_iterations = 15;
  options.rounding.relaxation.frank_wolfe.gap_tolerance = 2e-3;
  options.audit_load_index = true;
  options.allow_rerate = allow_rerate;
  return options;
}

TEST(OnlinePreempt, RerateAdmitsAnArrivalTheFlatPathRejects) {
  // Capacity 2.5: B (density 2) fits only if A's concurrent rate drops
  // to 0.5. Without re-rating B is rejected; with it, A's future is
  // reshaped to 0.5 on [2, 4] and the EDF fill catches the remaining
  // 7 volume at full residual capacity 2.5 on [4, 6.8].
  const LineFixture fx(4.0, 4.0);
  const PowerModel model(0.0, 1.0, 2.0, 2.5);

  Rng rng_flat(17);
  const OnlineResult flat =
      online_dcfsr(fx.g, fx.flows, model, rng_flat, preempt_options(false));
  EXPECT_EQ(flat.num_admitted, 1);
  EXPECT_FALSE(flat.admitted[1]);
  EXPECT_EQ(flat.rerate_attempts, 0);

  Rng rng(17);
  const OnlineResult r =
      online_dcfsr(fx.g, fx.flows, model, rng, preempt_options(true));
  ASSERT_EQ(r.num_admitted, 2);
  EXPECT_EQ(r.rerate_commits, 1);
  EXPECT_EQ(r.rerated_flows, 1);
  EXPECT_GE(r.rerate_attempts, 1);

  // A's committed profile: untouched past [0, 2] at rate 1, then the
  // reshaped future — 0.5 beside B, 2.5 after B departs.
  const auto& a = r.schedule.flows[0].segments;
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].interval.lo, 0.0);
  EXPECT_DOUBLE_EQ(a[0].interval.hi, 2.0);
  EXPECT_DOUBLE_EQ(a[0].rate, 1.0);
  EXPECT_DOUBLE_EQ(a[1].interval.lo, 2.0);
  EXPECT_DOUBLE_EQ(a[1].interval.hi, 4.0);
  EXPECT_DOUBLE_EQ(a[1].rate, 0.5);
  EXPECT_DOUBLE_EQ(a[2].interval.lo, 4.0);
  EXPECT_NEAR(a[2].interval.hi, 6.8, 1e-12);
  EXPECT_DOUBLE_EQ(a[2].rate, 2.5);
  const auto& b = r.schedule.flows[1].segments;
  ASSERT_EQ(b.size(), 1u);
  EXPECT_DOUBLE_EQ(b[0].rate, 2.0);

  const ReplayReport replay = replay_schedule(fx.g, fx.flows, r.schedule, model);
  EXPECT_TRUE(replay.ok) << (replay.issues.empty() ? "" : replay.issues[0]);
  const PacketSimReport packets = packet_simulate(fx.g, fx.flows, r.schedule);
  EXPECT_TRUE(packets.all_deadlines_met);
  EXPECT_EQ(packets.packets_starved, 0);
}

TEST(OnlinePreempt, CommitBarrierRollsBackWhenADeadlineWouldBreak) {
  // Capacity 2.2, B = 14 volume over [2, 9] (density 2, feasible alone).
  // Reshaping A down to the leftover 0.2 beside B leaves at most
  // 0.2 * 7 + 2.2 * 1 = 3.6 of A's remaining 8 volume schedulable by
  // A's deadline — the barrier must refuse, restore A's committed
  // profile bitwise, and reject B.
  const LineFixture fx(14.0, 9.0);
  const PowerModel model(0.0, 1.0, 2.0, 2.2);

  Rng rng(17);
  const OnlineResult r =
      online_dcfsr(fx.g, fx.flows, model, rng, preempt_options(true));
  EXPECT_EQ(r.num_admitted, 1);
  EXPECT_TRUE(r.admitted[0]);
  EXPECT_FALSE(r.admitted[1]);
  EXPECT_GE(r.rerate_attempts, 1);
  EXPECT_EQ(r.rerate_commits, 0);
  EXPECT_EQ(r.rerated_flows, 0);

  // A ends the run exactly as first committed: one flat segment.
  const auto& a = r.schedule.flows[0].segments;
  ASSERT_EQ(a.size(), 1u);
  EXPECT_DOUBLE_EQ(a[0].interval.lo, 0.0);
  EXPECT_DOUBLE_EQ(a[0].interval.hi, 10.0);
  EXPECT_DOUBLE_EQ(a[0].rate, 1.0);
  EXPECT_TRUE(r.schedule.flows[1].segments.empty());

  const auto [sub_flows, sub_schedule] =
      admitted_subset(fx.flows, r.schedule, r.admitted);
  const ReplayReport replay =
      replay_schedule(fx.g, sub_flows, sub_schedule, model);
  EXPECT_TRUE(replay.ok) << (replay.issues.empty() ? "" : replay.issues[0]);
}

TEST(OnlinePreempt, AdmitsAtLeastAsManyAsTheNoRerateAnchorWhenContended) {
  // Re-rating only ever runs after the plain fallback path has already
  // failed an arrival, so on any trace the preempt run's admitted count
  // dominates the anchor's. Swept across contended fat-tree traces;
  // also requires the sweep to surface at least one committed re-rate
  // (i.e. the scenarios genuinely exercise the pass).
  // Capacity 2.5 is the regime where re-rating actually lands: the
  // generated flow densities hover around 1–2, so at 2.0 an arrival
  // that displaces an in-flight flow leaves no headroom to repack it,
  // while at 2.5 the EDF fill can catch the displaced volume later.
  std::int32_t total_rerates = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ScenarioOptions scen;
    scen.num_flows = 24;
    scen.capacity = 2.5;
    scen.arrival_rate = 6.0;
    const Instance instance =
        ScenarioSuite::default_suite().build("fat_tree/poisson", seed, scen);
    OnlineOptions flat = preempt_options(false);
    flat.lookahead_window = 2.0;
    flat.epoch = 0.5;
    OnlineOptions preempt = flat;
    preempt.allow_rerate = true;

    Rng rng_a = solver_rng(instance, "dcfsr");
    const OnlineResult a = online_dcfsr(instance.graph(), instance.flows(),
                                        instance.model(), rng_a, flat);
    Rng rng_b = solver_rng(instance, "dcfsr");
    const OnlineResult b = online_dcfsr(instance.graph(), instance.flows(),
                                        instance.model(), rng_b, preempt);
    EXPECT_GE(b.num_admitted, a.num_admitted) << "seed " << seed;
    total_rerates += b.rerate_commits;
  }
  EXPECT_GE(total_rerates, 1) << "sweep never re-rated; tighten the scenario";
}

TEST(OnlinePreempt, RejectionsLeaveNoStaleWarmStateUnderAudit) {
  // Tight capacity forces rejections through both the joint-rounding
  // leftover path and the fallback loop; audit mode's warm-state sweep
  // then asserts, at every subsequent event, that no rejected or
  // departed flow still owns warm rows or path atoms. The test's
  // assertion is simply that the run completes (DCN_ENSURES aborts on
  // violation) with a meaningfully non-empty rejection set, for both
  // the flat anchor and the re-rating configuration.
  for (const bool allow_rerate : {false, true}) {
    ScenarioOptions scen;
    scen.num_flows = 20;
    scen.capacity = 1.5;
    scen.arrival_rate = 6.0;
    const Instance instance =
        ScenarioSuite::default_suite().build("fat_tree/poisson", 7, scen);
    OnlineOptions options = preempt_options(allow_rerate);
    options.lookahead_window = 1.5;
    options.epoch = 0.5;
    Rng rng = solver_rng(instance, "dcfsr");
    const OnlineResult r = online_dcfsr(instance.graph(), instance.flows(),
                                        instance.model(), rng, options);
    EXPECT_GE(r.num_rejected, 1) << "allow_rerate=" << allow_rerate;
    for (std::size_t i = 0; i < r.admitted.size(); ++i) {
      if (!r.admitted[i]) {
        EXPECT_TRUE(r.schedule.flows[i].segments.empty())
            << "allow_rerate=" << allow_rerate << " flow " << i;
      }
    }
  }
}

}  // namespace
}  // namespace dcn::engine
