// Tests for schedule representation, timelines, energy (Eq. 5/6) and
// feasibility checking.
#include <gtest/gtest.h>

#include <cmath>

#include "schedule/schedule.h"
#include "topology/builders.h"

namespace dcn {
namespace {

/// Line network A(0) - B(1) - C(2); rightward edges.
struct LineFixture {
  Topology topo = line_network(3);
  EdgeId ab, bc;

  LineFixture() {
    // Edges are created in pairs (fwd, bwd) per hop: fwd A->B is edge 0,
    // fwd B->C is edge 2.
    ab = 0;
    bc = 2;
    const Graph& g = topo.graph();
    EXPECT_EQ(g.edge(ab).src, 0);
    EXPECT_EQ(g.edge(ab).dst, 1);
    EXPECT_EQ(g.edge(bc).src, 1);
    EXPECT_EQ(g.edge(bc).dst, 2);
  }
};

TEST(FlowSchedule, VolumeAndTime) {
  FlowSchedule fs;
  fs.segments = {{{0.0, 2.0}, 3.0}, {{5.0, 6.0}, 1.0}};
  EXPECT_DOUBLE_EQ(fs.transmitted_volume(), 7.0);
  EXPECT_DOUBLE_EQ(fs.transmission_time(), 3.0);
}

TEST(Schedule, LinkTimelinesSumOverFlows) {
  LineFixture fx;
  const Graph& g = fx.topo.graph();
  Schedule s;
  s.flows.resize(2);
  s.flows[0].path = {0, 2, {fx.ab, fx.bc}};
  s.flows[0].segments = {{{0.0, 4.0}, 1.5}};
  s.flows[1].path = {0, 1, {fx.ab}};
  s.flows[1].segments = {{{2.0, 6.0}, 2.0}};

  const auto timelines = link_timelines(g, s);
  EXPECT_DOUBLE_EQ(timelines[static_cast<std::size_t>(fx.ab)].value_at(1.0), 1.5);
  EXPECT_DOUBLE_EQ(timelines[static_cast<std::size_t>(fx.ab)].value_at(3.0), 3.5);
  EXPECT_DOUBLE_EQ(timelines[static_cast<std::size_t>(fx.ab)].value_at(5.0), 2.0);
  EXPECT_DOUBLE_EQ(timelines[static_cast<std::size_t>(fx.bc)].value_at(3.0), 1.5);
  EXPECT_DOUBLE_EQ(timelines[static_cast<std::size_t>(fx.bc)].value_at(5.0), 0.0);
}

TEST(Schedule, ActiveEdgesOnlyThoseCarryingTraffic) {
  LineFixture fx;
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 1, {fx.ab}};
  s.flows[0].segments = {{{0.0, 1.0}, 1.0}};
  const auto active = active_edges(fx.topo.graph(), s);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], fx.ab);
}

TEST(Schedule, EnergyEq5HandComputed) {
  LineFixture fx;
  const Graph& g = fx.topo.graph();
  const PowerModel model(/*sigma=*/1.0, /*mu=*/1.0, /*alpha=*/2.0);
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 2, {fx.ab, fx.bc}};
  s.flows[0].segments = {{{0.0, 2.0}, 3.0}};  // rate 3 for 2s on 2 links

  const Interval horizon{0.0, 10.0};
  // Dynamic: 2 links * 3^2 * 2s = 36. Idle: sigma * 10 * 2 links = 20.
  EXPECT_NEAR(energy_phi_g(g, s, model, horizon), 36.0, 1e-9);
  EXPECT_NEAR(energy_phi_f(g, s, model, horizon), 56.0, 1e-9);
}

TEST(Schedule, EnergyScalesWithMuAndAlpha) {
  LineFixture fx;
  const Graph& g = fx.topo.graph();
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 1, {fx.ab}};
  s.flows[0].segments = {{{0.0, 1.0}, 2.0}};
  const Interval horizon{0.0, 1.0};
  EXPECT_NEAR(energy_phi_g(g, s, PowerModel(0.5, 2.0, 3.0), horizon),
              2.0 * 8.0, 1e-9);
  EXPECT_NEAR(energy_phi_g(g, s, PowerModel(0.5, 1.0, 4.0), horizon), 16.0, 1e-9);
}

TEST(Feasibility, AcceptsAValidSchedule) {
  LineFixture fx;
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 0.0, 3.0}};
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 2, {fx.ab, fx.bc}};
  s.flows[0].segments = {{{0.0, 3.0}, 2.0}};
  const auto report =
      check_feasibility(fx.topo.graph(), flows, s, PowerModel(1.0, 1.0, 2.0));
  EXPECT_TRUE(report.feasible) << (report.violations.empty()
                                       ? ""
                                       : report.violations.front());
}

TEST(Feasibility, DetectsShortVolume) {
  LineFixture fx;
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 0.0, 3.0}};
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 2, {fx.ab, fx.bc}};
  s.flows[0].segments = {{{0.0, 2.0}, 2.0}};  // moves 4 of 6
  const auto report =
      check_feasibility(fx.topo.graph(), flows, s, PowerModel(1.0, 1.0, 2.0));
  EXPECT_FALSE(report.feasible);
}

TEST(Feasibility, DetectsDeadlineViolation) {
  LineFixture fx;
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 0.0, 3.0}};
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 2, {fx.ab, fx.bc}};
  s.flows[0].segments = {{{1.0, 4.0}, 2.0}};  // ends after the deadline
  const auto report =
      check_feasibility(fx.topo.graph(), flows, s, PowerModel(1.0, 1.0, 2.0));
  EXPECT_FALSE(report.feasible);
}

TEST(Feasibility, DetectsWrongPath) {
  LineFixture fx;
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 0.0, 3.0}};
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 1, {fx.ab}};  // stops at B, not C
  s.flows[0].segments = {{{0.0, 3.0}, 2.0}};
  const auto report =
      check_feasibility(fx.topo.graph(), flows, s, PowerModel(1.0, 1.0, 2.0));
  EXPECT_FALSE(report.feasible);
}

TEST(Feasibility, DetectsCapacityViolation) {
  LineFixture fx;
  const std::vector<Flow> flows{
      {0, 0, 1, 6.0, 0.0, 3.0},
      {1, 0, 1, 6.0, 0.0, 3.0},
  };
  Schedule s;
  s.flows.resize(2);
  for (int i = 0; i < 2; ++i) {
    s.flows[static_cast<std::size_t>(i)].path = {0, 1, {fx.ab}};
    s.flows[static_cast<std::size_t>(i)].segments = {{{0.0, 3.0}, 2.0}};
  }
  // Capacity 3 < combined rate 4.
  const auto report = check_feasibility(fx.topo.graph(), flows, s,
                                        PowerModel(1.0, 1.0, 2.0, /*capacity=*/3.0));
  EXPECT_FALSE(report.feasible);
  // With capacity 5 the same schedule passes.
  const auto report2 = check_feasibility(fx.topo.graph(), flows, s,
                                         PowerModel(1.0, 1.0, 2.0, /*capacity=*/5.0));
  EXPECT_TRUE(report2.feasible);
}

TEST(Feasibility, DetectsOverlappingSegmentsOfOneFlow) {
  LineFixture fx;
  const std::vector<Flow> flows{{0, 0, 1, 6.0, 0.0, 4.0}};
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 1, {fx.ab}};
  s.flows[0].segments = {{{0.0, 2.0}, 2.0}, {{1.0, 3.0}, 1.0}};
  const auto report =
      check_feasibility(fx.topo.graph(), flows, s, PowerModel(1.0, 1.0, 2.0));
  EXPECT_FALSE(report.feasible);
}

TEST(Feasibility, DetectsCountMismatch) {
  LineFixture fx;
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 0.0, 3.0}};
  const Schedule s;  // empty
  const auto report =
      check_feasibility(fx.topo.graph(), flows, s, PowerModel(1.0, 1.0, 2.0));
  EXPECT_FALSE(report.feasible);
}

}  // namespace
}  // namespace dcn
