// Tests for the independent replay validator.
#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/shortest_path.h"
#include "sim/replay.h"
#include "topology/builders.h"

namespace dcn {
namespace {

struct LineFixture {
  Topology topo = line_network(3);
  EdgeId ab = 0, bc = 2;
};

TEST(Replay, AgreesWithAnalyticEnergyEvaluator) {
  LineFixture fx;
  const Graph& g = fx.topo.graph();
  const PowerModel model(2.0, 1.5, 3.0);
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 0.0, 3.0}};
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 2, {fx.ab, fx.bc}};
  s.flows[0].segments = {{{0.0, 1.5}, 2.5}, {{2.0, 3.0}, 2.25}};
  const auto replay = replay_schedule(g, flows, s, model);
  EXPECT_TRUE(replay.ok) << (replay.issues.empty() ? "" : replay.issues.front());
  EXPECT_NEAR(replay.energy,
              energy_phi_f(g, s, model, flow_horizon(flows)), 1e-9);
  EXPECT_EQ(replay.active_links, 2);
  EXPECT_NEAR(replay.peak_rate, 2.5, 1e-12);
  EXPECT_NEAR(replay.idle_energy, 2.0 * 3.0 * 2.0, 1e-12);
}

TEST(Replay, DetectsVolumeShortfall) {
  LineFixture fx;
  const std::vector<Flow> flows{{0, 0, 1, 5.0, 0.0, 3.0}};
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 1, {fx.ab}};
  s.flows[0].segments = {{{0.0, 1.0}, 2.0}};  // delivers 2 of 5
  const auto replay =
      replay_schedule(fx.topo.graph(), flows, s, PowerModel(1.0, 1.0, 2.0));
  EXPECT_FALSE(replay.ok);
  EXPECT_NEAR(replay.delivered[0], 2.0, 1e-12);
}

TEST(Replay, DetectsDeadlineOverrun) {
  LineFixture fx;
  const std::vector<Flow> flows{{0, 0, 1, 4.0, 0.0, 3.0}};
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 1, {fx.ab}};
  s.flows[0].segments = {{{2.0, 4.0}, 2.0}};  // runs past d = 3
  const auto replay =
      replay_schedule(fx.topo.graph(), flows, s, PowerModel(1.0, 1.0, 2.0));
  EXPECT_FALSE(replay.ok);
}

TEST(Replay, DetectsCapacityBreach) {
  LineFixture fx;
  const std::vector<Flow> flows{
      {0, 0, 1, 6.0, 0.0, 3.0},
      {1, 0, 1, 6.0, 0.0, 3.0},
  };
  Schedule s;
  s.flows.resize(2);
  for (auto& fs : s.flows) {
    fs.path = {0, 1, {fx.ab}};
    fs.segments = {{{0.0, 3.0}, 2.0}};
  }
  const auto replay = replay_schedule(fx.topo.graph(), flows, s,
                                      PowerModel(1.0, 1.0, 2.0, /*capacity=*/3.0));
  EXPECT_FALSE(replay.ok);
  EXPECT_NEAR(replay.peak_rate, 4.0, 1e-12);
}

TEST(Replay, DetectsBogusPath) {
  LineFixture fx;
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 0.0, 3.0}};
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 2, {fx.ab}};  // chain does not reach node 2
  s.flows[0].segments = {{{0.0, 3.0}, 2.0}};
  const auto replay =
      replay_schedule(fx.topo.graph(), flows, s, PowerModel(1.0, 1.0, 2.0));
  EXPECT_FALSE(replay.ok);
}

TEST(Replay, CountMismatchFailsFast) {
  LineFixture fx;
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 0.0, 3.0}};
  const auto replay = replay_schedule(fx.topo.graph(), flows, Schedule{},
                                      PowerModel(1.0, 1.0, 2.0));
  EXPECT_FALSE(replay.ok);
}

// Property: on randomly generated (valid) density schedules, replay and
// the analytic evaluator agree on the energy to float precision.
class ReplayAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplayAgreementTest, EnergiesAgreeOnRandomSchedules) {
  Rng rng(GetParam());
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const PowerModel model(rng.uniform(0.0, 2.0), rng.uniform(0.5, 2.0),
                         rng.uniform(1.5, 4.0));
  std::vector<Flow> flows;
  Schedule s;
  const int n = 15;
  for (int i = 0; i < n; ++i) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, 15));
    std::size_t b;
    do {
      b = static_cast<std::size_t>(rng.uniform_int(0, 15));
    } while (b == a);
    const double r = rng.uniform(0.0, 50.0);
    const double d = r + rng.uniform(1.0, 20.0);
    const double w = rng.uniform(1.0, 10.0);
    flows.push_back({i, topo.hosts()[a], topo.hosts()[b], w, r, d});
    FlowSchedule fs;
    fs.path = *bfs_shortest_path(g, topo.hosts()[a], topo.hosts()[b]);
    fs.segments = {{{r, d}, w / (d - r)}};
    s.flows.push_back(std::move(fs));
  }
  const auto replay = replay_schedule(g, flows, s, model);
  EXPECT_TRUE(replay.ok) << (replay.issues.empty() ? "" : replay.issues.front());
  EXPECT_NEAR(replay.energy, energy_phi_f(g, s, model, flow_horizon(flows)),
              1e-6 * std::max(1.0, replay.energy));
  EXPECT_EQ(replay.active_links,
            static_cast<std::int32_t>(active_edges(g, s).size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayAgreementTest,
                         ::testing::Values(3u, 6u, 9u, 12u, 15u, 18u, 21u, 24u));

}  // namespace
}  // namespace dcn
