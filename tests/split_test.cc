// Tests for flow splitting (the multipath hook of Sec. II-B).
#include <gtest/gtest.h>

#include "common/random.h"
#include "dcfsr/random_schedule.h"
#include "flow/split.h"
#include "flow/workload.h"
#include "sim/replay.h"
#include "topology/builders.h"

namespace dcn {
namespace {

TEST(SplitFlows, PreservesEndpointsSpanAndTotalVolume) {
  const std::vector<Flow> flows{
      {0, 1, 2, 12.0, 0.0, 6.0},
      {1, 3, 4, 5.0, 2.0, 9.0},
  };
  const SplitResult split = split_flows(flows, 4);
  ASSERT_EQ(split.subflows.size(), 8u);
  ASSERT_EQ(split.parent.size(), 8u);
  double total0 = 0.0, total1 = 0.0;
  for (std::size_t i = 0; i < split.subflows.size(); ++i) {
    const Flow& sub = split.subflows[i];
    EXPECT_EQ(sub.id, static_cast<FlowId>(i));  // renumbered densely
    const Flow& parent = flows[static_cast<std::size_t>(split.parent[i])];
    EXPECT_EQ(sub.src, parent.src);
    EXPECT_EQ(sub.dst, parent.dst);
    EXPECT_DOUBLE_EQ(sub.release, parent.release);
    EXPECT_DOUBLE_EQ(sub.deadline, parent.deadline);
    (split.parent[i] == 0 ? total0 : total1) += sub.volume;
  }
  EXPECT_NEAR(total0, 12.0, 1e-12);
  EXPECT_NEAR(total1, 5.0, 1e-12);
}

TEST(SplitFlows, OneWayIsARenumberedCopy) {
  const std::vector<Flow> flows{{0, 1, 2, 3.0, 0.0, 1.0}};
  const SplitResult split = split_flows(flows, 1);
  ASSERT_EQ(split.subflows.size(), 1u);
  EXPECT_EQ(split.subflows[0], flows[0]);
}

TEST(SplitFlows, RejectsNonPositiveWays) {
  EXPECT_THROW((void)split_flows({}, 0), ContractViolation);
}

TEST(AggregateByParent, SumsSubflowQuantities) {
  const std::vector<Flow> flows{
      {0, 1, 2, 10.0, 0.0, 5.0},
      {1, 3, 4, 6.0, 0.0, 5.0},
  };
  const SplitResult split = split_flows(flows, 2);
  const std::vector<double> delivered{5.0, 5.0, 3.0, 3.0};
  const auto by_parent = aggregate_by_parent(split, delivered, 2);
  EXPECT_DOUBLE_EQ(by_parent[0], 10.0);
  EXPECT_DOUBLE_EQ(by_parent[1], 6.0);
}

TEST(SplitFlows, SubflowDensitiesScaleDown) {
  const std::vector<Flow> flows{{0, 1, 2, 12.0, 0.0, 6.0}};  // density 2
  const SplitResult split = split_flows(flows, 4);
  for (const Flow& sub : split.subflows) {
    EXPECT_NEAR(sub.density(), 0.5, 1e-12);
  }
}

// Splitting must never hurt the fractional relaxation (the subflow
// commodities can always replicate the parent's fractional routing),
// and the rounded schedule still meets every parent's volume.
class SplitRsTest : public ::testing::TestWithParam<int> {};

TEST_P(SplitRsTest, RandomScheduleOnSubflowsDeliversParents) {
  const int ways = GetParam();
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  Rng rng(404);
  PaperWorkloadParams params;
  params.num_flows = 10;
  const auto flows = paper_workload(topo, params, rng);
  const SplitResult split = split_flows(flows, ways);

  const auto rs = random_schedule(g, split.subflows, model, rng);
  ASSERT_TRUE(rs.capacity_feasible);
  const auto replay = replay_schedule(g, split.subflows, rs.schedule, model);
  ASSERT_TRUE(replay.ok) << (replay.issues.empty() ? "" : replay.issues.front());

  const auto delivered =
      aggregate_by_parent(split, replay.delivered, flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_NEAR(delivered[i], flows[i].volume, 1e-6 * flows[i].volume);
  }
  EXPECT_GE(rs.energy, rs.lower_bound_energy * (1.0 - 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Ways, SplitRsTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dcn
