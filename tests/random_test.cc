// Tests for the deterministic RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.h"
#include "common/random.h"

namespace dcn {
namespace {

TEST(Rng, DeterministicForAGivenSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(3.0, 9.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(99);
  std::vector<int> hits(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++hits[static_cast<std::size_t>(v)];
  }
  for (int h : hits) EXPECT_GT(h, 800);  // roughly uniform
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_int(5, 4), ContractViolation);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(2024);
  const double mean = 10.0, stddev = 3.0;
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(mean, stddev);
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / n;
  const double var = sum_sq / n - m * m;
  EXPECT_NEAR(m, mean, 0.1);
  EXPECT_NEAR(std::sqrt(var), stddev, 0.1);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(5);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 8000; ++i) {
    ++hits[rng.weighted_index(weights)];
  }
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[2]) / hits[0], 3.0, 0.5);
}

TEST(Rng, WeightedIndexContractViolations) {
  Rng rng(5);
  EXPECT_THROW((void)rng.weighted_index({}), ContractViolation);
  EXPECT_THROW((void)rng.weighted_index({0.0, 0.0}), ContractViolation);
  EXPECT_THROW((void)rng.weighted_index({1.0, -0.5}), ContractViolation);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  Rng a2(42);
  (void)a2();  // consume what split consumed
  // The child must not replay the parent's stream.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (child() == a2()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  // Regression pin: splitmix64(0) reference value.
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
}

}  // namespace
}  // namespace dcn
