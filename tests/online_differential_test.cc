// Differential anchor of the online subsystem: when every flow arrives
// at t = 0 the rolling-horizon loop degenerates to a single event whose
// admission re-solve *is* offline Algorithm 2 — same relaxation, same
// rng stream, same rounding accept/reject step — so online_dcfsr must
// reproduce offline dcfsr exactly, on single-path (line) and multipath
// (fat-tree) fabrics alike.
//
// This also covers the acceptance path end-to-end: the admitted
// schedule of an online run on a Poisson fat-tree k=4 scenario is
// pushed through the packet-level simulator and every admitted flow
// must meet its deadline within the store-and-forward envelope.
#include <gtest/gtest.h>

#include <memory>

#include "engine/instance.h"
#include "engine/registry.h"
#include "engine/scenario.h"
#include "engine/solver.h"
#include "online/online_scheduler.h"
#include "sim/packet_sim.h"
#include "sim/replay.h"

namespace dcn::engine {
namespace {

SolverOutcome run(const Instance& instance, const char* solver) {
  return default_registry().create(solver)->solve(instance);
}

/// All-at-t=0 scenarios: incast and shuffle release every flow at the
/// window start, so the whole instance arrives as one event batch.
class OnlineDifferentialTest : public ::testing::Test {
 protected:
  const ScenarioSuite& suite_ = ScenarioSuite::default_suite();
};

TEST_F(OnlineDifferentialTest, MatchesOfflineDcfsrOnLine) {
  ScenarioOptions options;
  options.senders = 3;
  const Instance instance = suite_.build("line/incast", 7, options);
  const SolverOutcome offline = run(instance, "dcfsr");
  const SolverOutcome online = run(instance, "online_dcfsr");
  ASSERT_TRUE(offline.feasible) << offline.first_issue;
  ASSERT_TRUE(online.feasible) << online.first_issue;
  // One event, nothing rejected, and the identical schedule: energies
  // agree to float identity, not merely to tolerance.
  EXPECT_NEAR(online.energy, offline.energy, 1e-9 * offline.energy);
  EXPECT_EQ(online.schedule.flows.size(), offline.schedule.flows.size());
  for (std::size_t i = 0; i < online.schedule.flows.size(); ++i) {
    EXPECT_EQ(online.schedule.flows[i].path, offline.schedule.flows[i].path);
    EXPECT_EQ(online.schedule.flows[i].segments,
              offline.schedule.flows[i].segments);
  }
}

TEST_F(OnlineDifferentialTest, MatchesOfflineDcfsrOnFatTree) {
  for (const char* spec : {"fat_tree/incast", "fat_tree/shuffle"}) {
    const Instance instance = suite_.build(spec, 11);
    const SolverOutcome offline = run(instance, "dcfsr");
    const SolverOutcome online = run(instance, "online_dcfsr");
    ASSERT_TRUE(offline.feasible) << spec << ": " << offline.first_issue;
    ASSERT_TRUE(online.feasible) << spec << ": " << online.first_issue;
    EXPECT_NEAR(online.energy, offline.energy, 1e-9 * offline.energy) << spec;
    // The online run saw exactly one event and admitted everything.
    for (const auto& [key, value] : online.stats) {
      if (key == "events") {
        EXPECT_EQ(value, 1.0) << spec;
      } else if (key == "rejected") {
        EXPECT_EQ(value, 0.0) << spec;
      } else if (key == "admitted") {
        EXPECT_EQ(value, static_cast<double>(instance.flows().size())) << spec;
      } else if (key == "first_lb") {
        // The single re-solve's LB is the offline relaxation LB.
        EXPECT_NEAR(value, offline.lower_bound, 1e-9 * offline.lower_bound)
            << spec;
      }
    }
  }
}

TEST_F(OnlineDifferentialTest, OracleMatchesOfflineDcfsrWhenJointRoundingFits) {
  // The hindsight oracle runs offline Algorithm 2 on the whole trace
  // with the "dcfsr" rng stream; whenever its joint rounding is
  // capacity-feasible it must BE offline dcfsr — identical schedule,
  // identical energy. All-at-t=0 (incast) and genuinely staggered
  // (poisson at infinite capacity, where rounding is always feasible)
  // both land in that case.
  for (const char* spec : {"line/incast", "fat_tree/incast"}) {
    const Instance instance = suite_.build(spec, 7);
    const SolverOutcome offline = run(instance, "dcfsr");
    const SolverOutcome oracle = run(instance, "oracle_dcfsr");
    ASSERT_TRUE(offline.feasible) << spec << ": " << offline.first_issue;
    ASSERT_TRUE(oracle.feasible) << spec << ": " << oracle.first_issue;
    EXPECT_EQ(oracle.energy, offline.energy) << spec;
    ASSERT_EQ(oracle.schedule.flows.size(), offline.schedule.flows.size());
    for (std::size_t i = 0; i < oracle.schedule.flows.size(); ++i) {
      EXPECT_EQ(oracle.schedule.flows[i].path, offline.schedule.flows[i].path)
          << spec;
      EXPECT_EQ(oracle.schedule.flows[i].segments,
                offline.schedule.flows[i].segments)
          << spec;
    }
  }
  ScenarioOptions options;
  options.num_flows = 16;
  const Instance staggered = suite_.build("fat_tree/poisson", 3, options);
  const SolverOutcome offline = run(staggered, "dcfsr");
  const SolverOutcome oracle = run(staggered, "oracle_dcfsr");
  ASSERT_TRUE(offline.feasible) << offline.first_issue;
  ASSERT_TRUE(oracle.feasible) << oracle.first_issue;
  EXPECT_EQ(oracle.energy, offline.energy);
  for (const auto& [key, value] : oracle.stats) {
    if (key == "rejected") {
      EXPECT_EQ(value, 0.0);
    }
    if (key == "admitted") {
      EXPECT_EQ(value, static_cast<double>(staggered.flows().size()));
    }
  }
}

TEST_F(OnlineDifferentialTest, OracleAdmitsAtLeastAsManyAsItRejects) {
  // Under real contention the oracle falls back to RCD-ordered per-flow
  // admission; the result must stay replay-feasible and never serve a
  // rejected flow (the invariants the property suite pins for the
  // online policies, asserted here for the hindsight baseline).
  ScenarioOptions options;
  options.num_flows = 24;
  options.capacity = 2.0;
  options.arrival_rate = 4.0;
  const Instance instance = suite_.build("fat_tree/poisson", 5, options);
  const SolverOutcome oracle = run(instance, "oracle_dcfsr");
  ASSERT_TRUE(oracle.feasible) << oracle.first_issue;
  double admitted = -1.0, rejected = -1.0;
  for (const auto& [key, value] : oracle.stats) {
    if (key == "admitted") admitted = value;
    if (key == "rejected") rejected = value;
  }
  EXPECT_GE(admitted, 1.0);
  EXPECT_EQ(admitted + rejected, static_cast<double>(instance.flows().size()));
  for (std::size_t i = 0; i < oracle.schedule.flows.size(); ++i) {
    if (oracle.schedule.flows[i].segments.empty()) continue;
    EXPECT_FALSE(oracle.schedule.flows[i].path.empty()) << i;
  }
}

TEST_F(OnlineDifferentialTest, StaggeredArrivalsStillServeEveryAdmittedFlow) {
  // Genuinely online input (Poisson releases) on the paper's k=4
  // fat-tree: at least one flow admitted, and the admitted subset
  // replays cleanly — this is the dcn_run acceptance scenario in
  // library form.
  ScenarioOptions options;
  options.num_flows = 16;
  options.capacity = 4.0;
  const Instance instance = suite_.build("fat_tree/poisson", 1, options);
  const SolverOutcome online = run(instance, "online_dcfsr");
  ASSERT_TRUE(online.feasible) << online.first_issue;

  double admitted = 0.0;
  for (const auto& [key, value] : online.stats) {
    if (key == "admitted") admitted = value;
  }
  EXPECT_GE(admitted, 1.0);
}

TEST_F(OnlineDifferentialTest, WindowCoveringEverySpanIsBitIdenticalToNoWindow) {
  // The lookahead window clips residual deadlines to [now, now + W] in
  // the relaxation; a W larger than every span can never clip, so the
  // run must be the W = 0 run *bit for bit* — identical admitted set,
  // identical paths and rate segments, identical solver-work counters.
  // This is the degenerate-case contract that lets online_dcfsr_flat
  // share the code path with online_dcfsr.
  ScenarioOptions scen;
  scen.num_flows = 14;
  scen.capacity = 3.0;
  scen.arrival_rate = 3.0;
  const Instance instance = suite_.build("fat_tree/poisson", 3, scen);

  OnlineOptions base;
  base.rounding.relaxation.frank_wolfe.max_iterations = 15;
  base.rounding.relaxation.frank_wolfe.gap_tolerance = 2e-3;
  base.audit_load_index = true;
  OnlineOptions windowed = base;
  windowed.lookahead_window = 1e9;  // covers every generated span

  Rng rng_a = solver_rng(instance, "dcfsr");
  const OnlineResult a =
      online_dcfsr(instance.graph(), instance.flows(), instance.model(), rng_a,
                   base);
  Rng rng_b = solver_rng(instance, "dcfsr");
  const OnlineResult b =
      online_dcfsr(instance.graph(), instance.flows(), instance.model(), rng_b,
                   windowed);

  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.num_events, b.num_events);
  EXPECT_EQ(a.resolves, b.resolves);
  EXPECT_EQ(a.fw_iterations, b.fw_iterations);
  EXPECT_EQ(a.rounding_attempts, b.rounding_attempts);
  EXPECT_EQ(a.first_lower_bound, b.first_lower_bound);
  ASSERT_EQ(a.schedule.flows.size(), b.schedule.flows.size());
  for (std::size_t i = 0; i < a.schedule.flows.size(); ++i) {
    EXPECT_EQ(a.schedule.flows[i].path, b.schedule.flows[i].path) << i;
    EXPECT_EQ(a.schedule.flows[i].segments, b.schedule.flows[i].segments) << i;
  }
  // The trace actually exercised the rolling loop (several events) —
  // otherwise this equality would be vacuous.
  EXPECT_GT(a.num_events, 1);
}

TEST_F(OnlineDifferentialTest, EpochBatchingAllAtTimeZeroMatchesOfflineDcfsr) {
  // Epoch batching groups arrivals within `epoch` of an event's first
  // release into one joint re-solve. When every flow arrives at t = 0
  // the batch IS the whole instance regardless of epoch, so the run
  // must reproduce offline dcfsr byte for byte — same Frank-Wolfe
  // budget (the registry's calibrated 12 / 1e-3), same "dcfsr" rng
  // stream, same rounding. A huge window on top must not disturb it
  // (nothing to clip).
  const Instance instance = suite_.build("fat_tree/incast", 11);
  const SolverOutcome offline = run(instance, "dcfsr");
  ASSERT_TRUE(offline.feasible) << offline.first_issue;

  OnlineOptions options;
  options.rounding.relaxation.frank_wolfe.max_iterations = 12;
  options.rounding.relaxation.frank_wolfe.gap_tolerance = 1e-3;
  options.audit_load_index = true;
  options.epoch = 0.5;
  for (const double window : {0.0, 1e9}) {
    options.lookahead_window = window;
    Rng rng = solver_rng(instance, "dcfsr");
    const OnlineResult r = online_dcfsr(instance.graph(), instance.flows(),
                                        instance.model(), rng, options);
    EXPECT_EQ(r.num_events, 1) << "window " << window;
    EXPECT_EQ(r.num_rejected, 0) << "window " << window;
    ASSERT_EQ(r.schedule.flows.size(), offline.schedule.flows.size());
    for (std::size_t i = 0; i < r.schedule.flows.size(); ++i) {
      EXPECT_EQ(r.schedule.flows[i].path, offline.schedule.flows[i].path)
          << "window " << window << " flow " << i;
      EXPECT_EQ(r.schedule.flows[i].segments, offline.schedule.flows[i].segments)
          << "window " << window << " flow " << i;
    }
  }
}

TEST_F(OnlineDifferentialTest, EpochBatchingKeepsEveryAdmittedDeadline) {
  // Finite window + coarse epoch on a genuinely staggered contended
  // trace: admission decisions may differ from the per-release loop,
  // but the hard invariants cannot — every admitted flow replays
  // cleanly against its *true* span (the rounding checks true spans
  // even when the relaxation saw clipped ones), rejected flows get no
  // service, and batching strictly reduces the event count.
  ScenarioOptions scen;
  scen.num_flows = 18;
  scen.capacity = 3.0;
  scen.arrival_rate = 6.0;
  const Instance instance = suite_.build("fat_tree/poisson", 9, scen);

  OnlineOptions base;
  base.rounding.relaxation.frank_wolfe.max_iterations = 15;
  base.rounding.relaxation.frank_wolfe.gap_tolerance = 2e-3;
  base.audit_load_index = true;
  OnlineOptions batched = base;
  batched.lookahead_window = 1.5;
  batched.epoch = 0.5;

  Rng rng_a = solver_rng(instance, "dcfsr");
  const OnlineResult per_release = online_dcfsr(
      instance.graph(), instance.flows(), instance.model(), rng_a, base);
  Rng rng_b = solver_rng(instance, "dcfsr");
  const OnlineResult r = online_dcfsr(instance.graph(), instance.flows(),
                                      instance.model(), rng_b, batched);

  EXPECT_LT(r.num_events, per_release.num_events);
  EXPECT_EQ(r.num_admitted + r.num_rejected,
            static_cast<std::int32_t>(instance.flows().size()));
  ASSERT_GE(r.num_admitted, 1);
  for (std::size_t i = 0; i < r.admitted.size(); ++i) {
    if (!r.admitted[i]) {
      EXPECT_TRUE(r.schedule.flows[i].segments.empty()) << i;
    }
  }
  const auto [sub_flows, sub_schedule] =
      admitted_subset(instance.flows(), r.schedule, r.admitted);
  const ReplayReport replay = replay_schedule(instance.graph(), sub_flows,
                                              sub_schedule, instance.model());
  EXPECT_TRUE(replay.ok) << (replay.issues.empty() ? "" : replay.issues[0]);
}

TEST_F(OnlineDifferentialTest, RerateOffIsByteIdenticalToFlatConfiguration) {
  // online_dcfsr_preempt is online_dcfsr_flat plus allow_rerate. Two
  // anchors on a staggered multi-event trace: (a) with the flag off the
  // run is the flat configuration byte for byte — same float
  // expressions, same rng consumption; (b) with the flag ON but no
  // successful re-rate (ample capacity) the run is *still* byte
  // identical — the rerate mode only diverges at the first reshaped
  // profile, and until then its extra per-arrival verification probes
  // are read-only.
  ScenarioOptions scen;
  scen.num_flows = 14;
  scen.capacity = 8.0;
  scen.arrival_rate = 3.0;
  const Instance instance = suite_.build("fat_tree/poisson", 3, scen);

  OnlineOptions flat;
  flat.rounding.relaxation.frank_wolfe.max_iterations = 15;
  flat.rounding.relaxation.frank_wolfe.gap_tolerance = 2e-3;
  flat.lookahead_window = 2.0;
  flat.epoch = 0.5;
  flat.audit_load_index = true;
  OnlineOptions off = flat;
  off.allow_rerate = false;
  OnlineOptions on = flat;
  on.allow_rerate = true;

  Rng rng_flat = solver_rng(instance, "dcfsr");
  const OnlineResult a = online_dcfsr(instance.graph(), instance.flows(),
                                      instance.model(), rng_flat, flat);
  for (const OnlineOptions* options : {&off, &on}) {
    Rng rng = solver_rng(instance, "dcfsr");
    const OnlineResult b = online_dcfsr(instance.graph(), instance.flows(),
                                        instance.model(), rng, *options);
    const char* tag = options == &on ? "allow_rerate=true" : "allow_rerate=false";
    EXPECT_EQ(b.rerate_commits, 0) << tag;  // precondition of (b)
    EXPECT_EQ(a.admitted, b.admitted) << tag;
    EXPECT_EQ(a.num_events, b.num_events) << tag;
    EXPECT_EQ(a.resolves, b.resolves) << tag;
    EXPECT_EQ(a.fw_iterations, b.fw_iterations) << tag;
    EXPECT_EQ(a.rounding_attempts, b.rounding_attempts) << tag;
    EXPECT_EQ(a.first_lower_bound, b.first_lower_bound) << tag;
    ASSERT_EQ(a.schedule.flows.size(), b.schedule.flows.size()) << tag;
    for (std::size_t i = 0; i < a.schedule.flows.size(); ++i) {
      EXPECT_EQ(a.schedule.flows[i].path, b.schedule.flows[i].path)
          << tag << " flow " << i;
      EXPECT_EQ(a.schedule.flows[i].segments, b.schedule.flows[i].segments)
          << tag << " flow " << i;
    }
  }
  EXPECT_GT(a.num_events, 1);  // the equality covered the rolling loop
}

TEST_F(OnlineDifferentialTest, ReRatedProfilesMeetDeadlinesInPacketReplay) {
  // The tentpole's correctness claim, end to end: under capacity-cliff
  // contention the preempt solver reshapes in-flight profiles, and
  // every admitted flow — re-rated ones included — must still replay
  // cleanly and land its last packet within the store-and-forward
  // envelope of its deadline. Swept over seeds so at least one run
  // exercises a committed re-rate (asserted, not assumed).
  double total_rerate_commits = 0.0;
  for (const std::uint64_t seed : {1, 2, 3, 4, 5, 6}) {
    ScenarioOptions options;
    options.num_flows = 24;
    options.capacity = 2.5;  // tight but with repack headroom: densities ~1-2
    options.arrival_rate = 6.0;
    const Instance instance = suite_.build("fat_tree/poisson", seed, options);
    const SolverOutcome out = run(instance, "online_dcfsr_preempt");
    ASSERT_TRUE(out.feasible) << "seed " << seed << ": " << out.first_issue;
    for (const auto& [key, value] : out.stats) {
      if (key == "rerate_commits") total_rerate_commits += value;
    }

    std::vector<bool> admitted(instance.flows().size());
    std::size_t count = 0;
    for (std::size_t i = 0; i < instance.flows().size(); ++i) {
      admitted[i] = !out.schedule.flows[i].segments.empty();
      count += admitted[i] ? 1u : 0u;
    }
    ASSERT_GE(count, 1u) << "seed " << seed;
    const auto [sub_flows, sub_schedule] =
        admitted_subset(instance.flows(), out.schedule, admitted);
    const ReplayReport replay = replay_schedule(
        instance.graph(), sub_flows, sub_schedule, instance.model());
    ASSERT_TRUE(replay.ok) << "seed " << seed << ": "
                           << (replay.issues.empty() ? "" : replay.issues[0]);
    const PacketSimReport packets =
        packet_simulate(instance.graph(), sub_flows, sub_schedule);
    EXPECT_TRUE(packets.all_deadlines_met) << "seed " << seed;
    EXPECT_EQ(packets.packets_starved, 0) << "seed " << seed;
  }
  EXPECT_GE(total_rerate_commits, 1.0)
      << "sweep never committed a re-rate; tighten the scenario";
}

TEST_F(OnlineDifferentialTest, AdmittedFlowsMeetDeadlinesInPacketReplay) {
  // End-to-end: online admission -> fluid schedule -> packet-level
  // store-and-forward simulation. Every admitted flow's last packet
  // must arrive within the pipeline-fill envelope of its deadline.
  ScenarioOptions options;
  options.num_flows = 12;
  options.capacity = 4.0;
  const Instance instance = suite_.build("fat_tree/poisson", 2, options);

  for (const char* solver : {"online_dcfsr", "online_greedy"}) {
    const SolverOutcome out = run(instance, solver);
    ASSERT_TRUE(out.feasible) << solver << ": " << out.first_issue;

    std::vector<bool> admitted(instance.flows().size());
    std::size_t count = 0;
    for (std::size_t i = 0; i < instance.flows().size(); ++i) {
      admitted[i] = !out.schedule.flows[i].segments.empty();
      count += admitted[i] ? 1u : 0u;
    }
    ASSERT_GE(count, 1u) << solver;

    const auto [sub_flows, sub_schedule] =
        admitted_subset(instance.flows(), out.schedule, admitted);
    const ReplayReport replay = replay_schedule(
        instance.graph(), sub_flows, sub_schedule, instance.model());
    ASSERT_TRUE(replay.ok) << solver << ": "
                           << (replay.issues.empty() ? "" : replay.issues[0]);

    const PacketSimReport packets =
        packet_simulate(instance.graph(), sub_flows, sub_schedule);
    EXPECT_TRUE(packets.all_deadlines_met) << solver;
    EXPECT_EQ(packets.packets_starved, 0) << solver;
  }
}

}  // namespace
}  // namespace dcn::engine
