// Tests for the multi-interval fractional relaxation (LB + candidates).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.h"
#include "common/random.h"
#include "flow/workload.h"
#include "mcf/relaxation.h"
#include "schedule/schedule.h"
#include "topology/builders.h"

namespace dcn {
namespace {

TEST(Relaxation, SingleFlowLowerBoundIsExact) {
  // One flow alone: LB = |span| * env(density) * hops. With sigma = 0
  // the relaxation routes on a shortest path at the density rate.
  const Topology topo = line_network(3);
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 1.0, 4.0}};  // density 2
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  const auto relax = solve_relaxation(topo.graph(), flows, model);
  EXPECT_NEAR(relax.lower_bound_energy, 3.0 * 4.0 * 2.0, 1e-3);
  ASSERT_EQ(relax.candidates.size(), 1u);
  ASSERT_EQ(relax.candidates[0].paths.size(), 1u);
  EXPECT_NEAR(relax.candidates[0].paths[0].weight, 1.0, 1e-12);
  EXPECT_EQ(relax.candidates[0].paths[0].path.length(), 2u);
}

TEST(Relaxation, CandidateWeightsFormDistributions) {
  const Topology topo = fat_tree(4);
  Rng rng(5);
  PaperWorkloadParams params;
  params.num_flows = 20;
  params.horizon_hi = 30.0;
  const auto flows = paper_workload(topo, params, rng);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  const auto relax = solve_relaxation(topo.graph(), flows, model);
  ASSERT_EQ(relax.candidates.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    double total = 0.0;
    for (const WeightedPath& wp : relax.candidates[i].paths) {
      EXPECT_GT(wp.weight, 0.0);
      EXPECT_TRUE(is_valid_path(topo.graph(), wp.path));
      EXPECT_EQ(wp.path.src, flows[i].src);
      EXPECT_EQ(wp.path.dst, flows[i].dst);
      total += wp.weight;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Relaxation, LowerBoundsAnyFeasibleScheduleWeCanConstruct) {
  // LB <= Phi_f(SP+MCF) on random instances (the defining property of
  // the Fig. 2 normalizer).
  const Topology topo = fat_tree(4);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    PaperWorkloadParams params;
    params.num_flows = 15;
    params.horizon_hi = 30.0;
    const auto flows = paper_workload(topo, params, rng);
    const auto relax = solve_relaxation(topo.graph(), flows, model);
    const auto sp = sp_mcf(topo.graph(), flows, model);
    const double sp_energy =
        energy_phi_f(topo.graph(), sp.schedule, model, flow_horizon(flows));
    EXPECT_LE(relax.lower_bound_energy, sp_energy * (1.0 + 1e-6))
        << "seed " << seed;
  }
}

TEST(Relaxation, LowerBoundScalesWithMu) {
  const Topology topo = line_network(3);
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 1.0, 4.0}};
  const auto lb1 =
      solve_relaxation(topo.graph(), flows, PowerModel(0.0, 1.0, 2.0)).lower_bound_energy;
  const auto lb3 =
      solve_relaxation(topo.graph(), flows, PowerModel(0.0, 3.0, 2.0)).lower_bound_energy;
  EXPECT_NEAR(lb3, 3.0 * lb1, 1e-6);
}

TEST(Relaxation, SigmaRaisesTheLowerBound) {
  const Topology topo = line_network(3);
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 1.0, 4.0}};
  const double lb_no_idle =
      solve_relaxation(topo.graph(), flows, PowerModel(0.0, 1.0, 2.0)).lower_bound_energy;
  const double lb_idle =
      solve_relaxation(topo.graph(), flows, PowerModel(2.0, 1.0, 2.0)).lower_bound_energy;
  EXPECT_GT(lb_idle, lb_no_idle);
}

TEST(Relaxation, MeanGapIsSmall) {
  const Topology topo = fat_tree(4);
  Rng rng(7);
  PaperWorkloadParams params;
  params.num_flows = 10;
  params.horizon_hi = 20.0;
  const auto flows = paper_workload(topo, params, rng);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  RelaxationOptions options;
  options.frank_wolfe.gap_tolerance = 1e-4;
  options.frank_wolfe.max_iterations = 300;
  const auto relax = solve_relaxation(topo.graph(), flows, model, options);
  // Frank-Wolfe converges at O(1/k); a 300-iteration budget lands the
  // mean gap within a small multiple of the 1e-4 target.
  EXPECT_LE(relax.mean_relative_gap, 5e-3);
}

}  // namespace
}  // namespace dcn
