// Warm-start reuse across relaxation re-solves — the mechanism that
// makes the online scheduler's per-arrival re-solves cheap.
//
// Frank-Wolfe solutions agree with the true optimum only to the duality
// -gap tolerance, so "warm equals cold to 1e-9" cannot hold between two
// *different* trajectories. The exactness claim is therefore pinned
// where it is exact: re-solving from a solve's own final rows must
// terminate on the very first gap check with the flow unchanged to
// 1e-9 (in fact bitwise, for a single-interval instance). The economy
// claim — strictly fewer iterations than a cold solve — is asserted on
// the incremental case: solve N flows, let one more arrive, re-solve
// N + 1 warm-started.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "engine/instance.h"
#include "engine/scenario.h"
#include "mcf/relaxation.h"

namespace dcn {
namespace {

RelaxationOptions tight_options() {
  RelaxationOptions options;
  options.frank_wolfe.max_iterations = 200;
  options.frank_wolfe.gap_tolerance = 1e-4;
  return options;
}

/// Multipath single-interval base instance: 6-sender incast on the k=4
/// fat-tree (every flow shares the window, so there is one interval and
/// final_flow rows are exactly the interval optimum).
engine::Instance incast_instance() {
  engine::ScenarioOptions options;
  options.senders = 6;
  return engine::ScenarioSuite::default_suite().build("fat_tree/incast", 5,
                                                      options);
}

TEST(RelaxationWarmStart, ResolveFromOwnSolutionStopsAtFirstGapCheck) {
  const engine::Instance instance = incast_instance();
  // Rows-only bit-exactness is a classic-rule contract: the atom rules
  // re-decompose warm rows (discarding sub-tolerance dust), so their
  // exact counterpart is the carried-atoms test below.
  RelaxationOptions options = tight_options();
  options.frank_wolfe.step_rule = FrankWolfeStepRule::kClassic;

  RelaxationWorkspace workspace;
  const FractionalRelaxation cold = solve_relaxation(
      instance.graph(), instance.flows(), instance.model(), options, &workspace);
  ASSERT_EQ(cold.decomposition.num_intervals(), 1u);
  ASSERT_GT(cold.total_fw_iterations, 1);  // the cold solve did real work

  const FractionalRelaxation warm =
      solve_relaxation(instance.graph(), instance.flows(), instance.model(),
                       options, &workspace, &cold.final_flow);
  // One iteration: the oracle runs once, sees the warm point already
  // within tolerance, and returns it untouched.
  EXPECT_EQ(warm.total_fw_iterations, 1);
  EXPECT_NEAR(warm.lower_bound_energy, cold.lower_bound_energy,
              1e-9 * cold.lower_bound_energy);

  // The per-flow fractional flows are the warm rows, unchanged to 1e-9.
  ASSERT_EQ(warm.final_flow.size(), cold.final_flow.size());
  for (std::size_t i = 0; i < warm.final_flow.size(); ++i) {
    ASSERT_EQ(warm.final_flow[i].size(), cold.final_flow[i].size()) << i;
    for (std::size_t k = 0; k < warm.final_flow[i].size(); ++k) {
      EXPECT_EQ(warm.final_flow[i][k].first, cold.final_flow[i][k].first);
      EXPECT_NEAR(warm.final_flow[i][k].second, cold.final_flow[i][k].second,
                  1e-9);
    }
  }
}

TEST(RelaxationWarmStart, IncrementalResolveAfterOneArrivalIsStrictlyCheaper) {
  const engine::Instance instance = incast_instance();
  // The production budget (registry dcfsr/online_dcfsr): plain
  // Frank-Wolfe is slow at *shedding* mass from paths an arrival makes
  // suboptimal, so at much tighter tolerances a warm start can lose to
  // a cold one; at the calibrated gap it converges in a fraction of the
  // cold iterations. (The pairwise step rule removes the shedding
  // stall altogether — tests/pairwise_fw_test.cc pins warm pairwise
  // strictly below warm classic on this same regime; this test keeps
  // the classic rule's economy honest.)
  RelaxationOptions options;
  options.frank_wolfe.max_iterations = 120;
  options.frank_wolfe.gap_tolerance = 2e-3;
  const std::vector<Flow>& base = instance.flows();

  // The arrival: a mouse flow on an existing hot pair — the typical
  // online event, perturbing the optimum only slightly. (An elephant
  // that reshapes the whole optimum is plain Frank-Wolfe's worst case:
  // a step is one joint convex combination across all commodities, so
  // shedding the warm mass that the arrival made suboptimal needs tiny
  // steps, and warm can lose to cold. online_dcfsr's capped per-event
  // budget bounds that case; this test asserts the common one.)
  std::vector<Flow> grown = base;
  Flow arrival = base.back();
  arrival.id = static_cast<FlowId>(grown.size());
  arrival.volume *= 0.05;
  grown.push_back(arrival);

  RelaxationWorkspace workspace;
  // The prior solve runs tighter than the re-solve budget, so the warm
  // rows carry a point whose quality beats the re-solve tolerance —
  // the regime warm starts are for. (Seeding from a point stopped
  // exactly *at* the re-solve tolerance would strand the warm solve
  // just above it, in Frank-Wolfe's slow last-mile regime.)
  const FractionalRelaxation prior = solve_relaxation(
      instance.graph(), base, instance.model(), tight_options(), &workspace);

  std::vector<SparseEdgeFlow> warm_rows = prior.final_flow;
  warm_rows.emplace_back();  // the arrival starts cold
  const FractionalRelaxation warm = solve_relaxation(
      instance.graph(), grown, instance.model(), options, &workspace, &warm_rows);

  const FractionalRelaxation cold = solve_relaxation(instance.graph(), grown,
                                                     instance.model(), options);

  // Strictly fewer Frank-Wolfe iterations than the cold solve of the
  // identical instance...
  EXPECT_LT(warm.total_fw_iterations, cold.total_fw_iterations);
  // ...for the same optimum, up to the shared gap tolerance (the gap
  // bounds each solve's relative distance from the common optimum).
  EXPECT_NEAR(warm.lower_bound_energy, cold.lower_bound_energy,
              2.0 * options.frank_wolfe.gap_tolerance * cold.lower_bound_energy);
  EXPECT_LE(warm.mean_relative_gap, options.frank_wolfe.gap_tolerance);
  EXPECT_LE(cold.mean_relative_gap, options.frank_wolfe.gap_tolerance);
}

TEST(RelaxationWarmStart, CarriedAtomsResolveFromOwnSolutionInOneIteration) {
  // The atom carry-over analog of the exactness claim above: a pairwise
  // solve hands out final_atoms alongside final_flow; re-solving with
  // both carried must terminate on the first gap check with the atom
  // sets intact — no Raghavan-Tompson pass, no drift.
  const engine::Instance instance = incast_instance();
  RelaxationOptions options = tight_options();
  options.frank_wolfe.step_rule = FrankWolfeStepRule::kPairwise;

  RelaxationWorkspace workspace;
  const FractionalRelaxation first = solve_relaxation(
      instance.graph(), instance.flows(), instance.model(), options, &workspace);
  ASSERT_EQ(first.final_atoms.size(), instance.flows().size());

  // The atoms are a consistent decomposition: weights sum to the flow's
  // density and edge-sums reproduce the final rows.
  for (std::size_t i = 0; i < first.final_atoms.size(); ++i) {
    ASSERT_FALSE(first.final_atoms[i].empty()) << i;
    double total = 0.0;
    std::map<EdgeId, double> by_edge;
    for (const PathAtom& atom : first.final_atoms[i]) {
      total += atom.weight;
      for (const EdgeId e : atom.edges) by_edge[e] += atom.weight;
    }
    EXPECT_NEAR(total, instance.flows()[i].density(), 1e-9) << i;
    for (const auto& [e, v] : first.final_flow[i]) {
      EXPECT_NEAR(by_edge[e], v, 1e-9) << "flow " << i << " edge " << e;
    }
  }

  const FractionalRelaxation warm = solve_relaxation(
      instance.graph(), instance.flows(), instance.model(), options, &workspace,
      &first.final_flow, &first.final_atoms);
  EXPECT_EQ(warm.total_fw_iterations, 1);
  EXPECT_NEAR(warm.lower_bound_energy, first.lower_bound_energy,
              1e-9 * first.lower_bound_energy);

  // Atom identity survives the carried re-solve.
  ASSERT_EQ(warm.final_atoms.size(), first.final_atoms.size());
  for (std::size_t i = 0; i < warm.final_atoms.size(); ++i) {
    ASSERT_EQ(warm.final_atoms[i].size(), first.final_atoms[i].size()) << i;
    for (std::size_t a = 0; a < warm.final_atoms[i].size(); ++a) {
      EXPECT_EQ(warm.final_atoms[i][a].edges, first.final_atoms[i][a].edges);
      EXPECT_NEAR(warm.final_atoms[i][a].weight,
                  first.final_atoms[i][a].weight, 1e-12);
    }
  }
}

TEST(RelaxationWarmStart, SharedWorkspaceLeaksNoStateBetweenInstances) {
  // A workspace threaded across unrelated solves (exactly what the
  // online scheduler does per run) must not change any result: solve
  // A, then B, with one workspace, and compare against fresh solves.
  const engine::ScenarioSuite& suite = engine::ScenarioSuite::default_suite();
  engine::ScenarioOptions options;
  options.num_flows = 8;
  const engine::Instance a = suite.build("fat_tree/paper", 3, options);
  const engine::Instance b = suite.build("leaf_spine/shuffle", 4, options);

  RelaxationWorkspace shared;
  const FractionalRelaxation a_shared = solve_relaxation(
      a.graph(), a.flows(), a.model(), {}, &shared);
  const FractionalRelaxation b_shared = solve_relaxation(
      b.graph(), b.flows(), b.model(), {}, &shared);

  const FractionalRelaxation a_fresh =
      solve_relaxation(a.graph(), a.flows(), a.model());
  const FractionalRelaxation b_fresh =
      solve_relaxation(b.graph(), b.flows(), b.model());

  EXPECT_EQ(a_shared.lower_bound_energy, a_fresh.lower_bound_energy);
  EXPECT_EQ(b_shared.lower_bound_energy, b_fresh.lower_bound_energy);
  EXPECT_EQ(a_shared.total_fw_iterations, a_fresh.total_fw_iterations);
  EXPECT_EQ(b_shared.total_fw_iterations, b_fresh.total_fw_iterations);
}

}  // namespace
}  // namespace dcn
