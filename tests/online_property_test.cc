// Property-based sweep over the online subsystem: across 50 seeded
// random online scenarios (Poisson / websearch / hadoop arrivals on
// four fabrics, finite capacity) and four policies — greedy, the
// per-release rolling horizon, the flat-latency windowed + epoch-
// batched configuration, and the flat configuration with deadline-safe
// re-rating of admitted flows (online_dcfsr_preempt), all with the
// load index's bitwise audit on — every admission decision must uphold
// the hard invariants of the model:
//
//   1. no admitted flow misses its deadline (and every admitted flow
//      receives its full volume) — replay-validated on the admitted
//      subset;
//   2. link capacities are respected in every interval of the
//      committed schedule;
//   3. rejected flows receive no service at all (no partial circuits);
//   4. admission is monotone in capacity on the swept seeds: relaxing
//      the only binding resource never shrinks the admitted count.
//
// (4) is not a theorem for greedy admission control — a flow admitted
// at higher capacity can, in principle, crowd out two later ones — but
// it holds across this entire deterministic sweep, and the assertion
// doubles as a regression canary for seed-plumbing: any drift in how
// scenario or solver streams are derived reshuffles the admitted sets
// and trips it.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "engine/instance.h"
#include "engine/scenario.h"
#include "engine/solver.h"
#include "online/online_scheduler.h"
#include "sim/replay.h"

namespace dcn::engine {
namespace {

struct Scenario {
  std::string spec;
  std::uint64_t seed;
};

/// 50 scenarios: five spec shapes x ten seeds.
std::vector<Scenario> sweep() {
  const std::vector<std::string> specs = {
      "fat_tree/poisson", "fat_tree/websearch", "leaf_spine/hadoop",
      "bcube/websearch", "random/poisson"};
  std::vector<Scenario> out;
  for (const std::string& spec : specs) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) out.push_back({spec, seed});
  }
  return out;
}

ScenarioOptions online_options(double capacity) {
  ScenarioOptions options;
  options.num_flows = 10;
  options.capacity = capacity;
  options.arrival_rate = 3.0;
  return options;
}

/// The four swept configurations: greedy routing, the per-release
/// rolling horizon, the flat-latency variant (finite lookahead window +
/// epoch-batched admission), and the flat variant with deadline-safe
/// re-rating of admitted flows (online_dcfsr_preempt's configuration —
/// invariant (1) below is exactly the re-rating commit barrier's
/// no-admitted-deadline-ever-broken contract). Every run keeps the
/// load index's differential audit on, so each of the ~200 scenario
/// runs bitwise cross-checks every index probe — including the re-rate
/// pass's retract/repack transactions — against a naive never-pruned
/// replay, plus the warm-state hygiene sweep at every event.
enum class Policy { kGreedy, kDcfsr, kDcfsrFlat, kDcfsrPreempt };

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kGreedy: return "online_greedy";
    case Policy::kDcfsr: return "online_dcfsr";
    case Policy::kDcfsrFlat: return "online_dcfsr_flat";
    default: return "online_dcfsr_preempt";
  }
}

OnlineResult run_policy(const Instance& instance, Policy policy) {
  OnlineOptions options;
  options.audit_load_index = true;
  if (policy == Policy::kGreedy) {
    return online_greedy(instance.graph(), instance.flows(), instance.model(),
                         options);
  }
  options.rounding.relaxation.frank_wolfe.max_iterations = 15;
  options.rounding.relaxation.frank_wolfe.gap_tolerance = 2e-3;
  if (policy == Policy::kDcfsrFlat || policy == Policy::kDcfsrPreempt) {
    // Deliberately aggressive: a window shorter than many spans (so
    // clipping actually happens) and an epoch wide enough to batch at
    // arrival_rate = 3 — the invariants below must survive both.
    options.lookahead_window = 1.0;
    options.epoch = 0.4;
  }
  options.allow_rerate = policy == Policy::kDcfsrPreempt;
  Rng rng = solver_rng(instance, "dcfsr");
  return online_dcfsr(instance.graph(), instance.flows(), instance.model(), rng,
                      options);
}

TEST(OnlineProperty, InvariantsHoldAcrossFiftySeededScenarios) {
  for (const Scenario& sc : sweep()) {
    const Instance instance = ScenarioSuite::default_suite().build(
        sc.spec, sc.seed, online_options(3.0));
    for (const Policy policy : {Policy::kGreedy, Policy::kDcfsr,
                                Policy::kDcfsrFlat, Policy::kDcfsrPreempt}) {
      const OnlineResult r = run_policy(instance, policy);
      const std::string tag = sc.spec + "#" + std::to_string(sc.seed) + "/" +
                              policy_name(policy);

      ASSERT_EQ(r.admitted.size(), instance.flows().size()) << tag;
      EXPECT_EQ(r.num_admitted + r.num_rejected,
                static_cast<std::int32_t>(instance.flows().size()))
          << tag;

      // (3) rejection means zero service.
      for (std::size_t i = 0; i < r.admitted.size(); ++i) {
        if (!r.admitted[i]) {
          EXPECT_TRUE(r.schedule.flows[i].segments.empty()) << tag;
        }
      }
      if (r.num_admitted == 0) continue;

      // (1) deadlines + volumes, via the independent replayer.
      const auto [sub_flows, sub_schedule] =
          admitted_subset(instance.flows(), r.schedule, r.admitted);
      const ReplayReport replay = replay_schedule(
          instance.graph(), sub_flows, sub_schedule, instance.model());
      EXPECT_TRUE(replay.ok)
          << tag << ": " << (replay.issues.empty() ? "" : replay.issues[0]);

      // (2) capacity in every interval, checked directly on the link
      // timelines as well (replay already enforces it; this pins the
      // invariant to the committed schedule representation itself).
      const double cap = instance.model().capacity();
      for (const StepFunction& timeline :
           link_timelines(instance.graph(), sub_schedule)) {
        EXPECT_LE(timeline.max_value(), cap * (1.0 + 1e-6)) << tag;
      }
    }
  }
}

TEST(OnlineAdmission, DisconnectedEndpointsAreRejectedNotFatal) {
  // Two components; the cross-component flow has no path at all. Every
  // admission path — greedy, the rolling horizon, and the hindsight
  // oracle — must count it rejected and keep going, not abort on a
  // routing contract (online inputs are not pre-screened for
  // connectivity).
  Graph g(4);
  g.add_bidirectional_edge(0, 1);
  g.add_bidirectional_edge(2, 3);
  std::vector<Flow> flows;
  flows.push_back({0, 0, 1, 4.0, 0.0, 2.0});  // routable
  flows.push_back({1, 0, 2, 4.0, 0.0, 2.0});  // disconnected endpoints
  flows.push_back({2, 2, 3, 4.0, 1.0, 3.0});  // routable, later event
  const PowerModel model(0.0, 1.0, 2.0, 8.0);

  OnlineOptions options;
  options.rounding.relaxation.frank_wolfe.max_iterations = 15;
  options.rounding.relaxation.frank_wolfe.gap_tolerance = 2e-3;
  for (const char* policy : {"online_greedy", "online_dcfsr", "oracle_dcfsr"}) {
    Rng rng(11);
    OnlineResult r;
    if (std::string(policy) == "online_greedy") {
      r = online_greedy(g, flows, model);
    } else if (std::string(policy) == "online_dcfsr") {
      r = online_dcfsr(g, flows, model, rng, options);
    } else {
      r = oracle_dcfsr(g, flows, model, rng, options);
    }
    EXPECT_EQ(r.num_admitted, 2) << policy;
    EXPECT_EQ(r.num_rejected, 1) << policy;
    EXPECT_FALSE(r.admitted[1]) << policy;
    EXPECT_TRUE(r.schedule.flows[1].segments.empty()) << policy;
    EXPECT_TRUE(r.admitted[0]) << policy;
    EXPECT_TRUE(r.admitted[2]) << policy;
  }
}

TEST(OnlineProperty, AdmissionIsMonotoneInCapacityOnTheSweptSeeds) {
  const double kInf = std::numeric_limits<double>::infinity();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const char* spec : {"fat_tree/poisson", "leaf_spine/hadoop"}) {
      // The canary runs the full-horizon configurations only: with a
      // finite window the relaxation sees clipped demands, and
      // monotonicity-in-capacity is even less of a theorem there.
      for (const Policy policy : {Policy::kGreedy, Policy::kDcfsr}) {
        std::int32_t previous = -1;
        for (const double capacity : {2.0, 4.0, 8.0, kInf}) {
          const Instance instance = ScenarioSuite::default_suite().build(
              spec, seed, online_options(capacity));
          const OnlineResult r = run_policy(instance, policy);
          EXPECT_GE(r.num_admitted, previous)
              << spec << "#" << seed << "/" << policy_name(policy)
              << " capacity=" << capacity;
          previous = r.num_admitted;
        }
        // Unbounded capacity admits everything.
        EXPECT_EQ(previous, 10);
      }
    }
  }
}

}  // namespace
}  // namespace dcn::engine
