// Unit and property tests for Interval / IntervalSet.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/interval.h"
#include "common/random.h"

namespace dcn {
namespace {

TEST(Interval, MeasureAndEmptiness) {
  EXPECT_DOUBLE_EQ(Interval(1.0, 4.0).measure(), 3.0);
  EXPECT_DOUBLE_EQ(Interval(2.0, 2.0).measure(), 0.0);
  EXPECT_DOUBLE_EQ(Interval(3.0, 1.0).measure(), 0.0);
  EXPECT_TRUE(Interval(2.0, 2.0).empty());
  EXPECT_TRUE(Interval(3.0, 1.0).empty());
  EXPECT_FALSE(Interval(0.0, 0.5).empty());
}

TEST(Interval, ContainsIsClosedOpen) {
  const Interval iv{1.0, 2.0};
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(1.5));
  EXPECT_FALSE(iv.contains(2.0));
  EXPECT_FALSE(iv.contains(0.999));
}

TEST(Interval, IntersectAndOverlap) {
  const Interval a{0.0, 5.0}, b{3.0, 8.0}, c{6.0, 7.0};
  EXPECT_EQ(a.intersect(b), Interval(3.0, 5.0));
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(a.intersect(c).empty());
  // Touching intervals do not overlap (closed-open semantics).
  EXPECT_FALSE(Interval(0.0, 1.0).overlaps(Interval(1.0, 2.0)));
}

TEST(Interval, Covers) {
  EXPECT_TRUE(Interval(0.0, 10.0).covers(Interval(2.0, 3.0)));
  EXPECT_TRUE(Interval(0.0, 10.0).covers(Interval(0.0, 10.0)));
  EXPECT_FALSE(Interval(0.0, 10.0).covers(Interval(9.0, 11.0)));
}

TEST(IntervalSet, AddMergesTouchingIntervals) {
  IntervalSet s;
  s.add({0.0, 1.0});
  s.add({2.0, 3.0});
  EXPECT_EQ(s.size(), 2u);
  s.add({1.0, 2.0});  // bridges the gap
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals().front(), Interval(0.0, 3.0));
}

TEST(IntervalSet, AddOverlappingKeepsCanonicalForm) {
  IntervalSet s;
  s.add({0.0, 4.0});
  s.add({2.0, 6.0});
  s.add({5.0, 5.5});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals().front(), Interval(0.0, 6.0));
  EXPECT_DOUBLE_EQ(s.measure(), 6.0);
}

TEST(IntervalSet, SubtractSplitsInTheMiddle) {
  IntervalSet s{Interval{0.0, 10.0}};
  s.subtract(Interval{3.0, 4.0});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.intervals()[0], Interval(0.0, 3.0));
  EXPECT_EQ(s.intervals()[1], Interval(4.0, 10.0));
  EXPECT_DOUBLE_EQ(s.measure(), 9.0);
}

TEST(IntervalSet, SubtractEdgesAndDisjoint) {
  IntervalSet s{Interval{0.0, 10.0}};
  s.subtract(Interval{0.0, 2.0});
  s.subtract(Interval{8.0, 12.0});
  s.subtract(Interval{-5.0, -1.0});  // disjoint: no effect
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals().front(), Interval(2.0, 8.0));
}

TEST(IntervalSet, SubtractEverything) {
  IntervalSet s{Interval{1.0, 2.0}};
  s.subtract(Interval{0.0, 3.0});
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.measure(), 0.0);
}

TEST(IntervalSet, UniteSets) {
  IntervalSet a = IntervalSet::from_intervals({{0.0, 1.0}, {4.0, 5.0}});
  IntervalSet b = IntervalSet::from_intervals({{0.5, 4.5}, {7.0, 8.0}});
  a.unite(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.intervals()[0], Interval(0.0, 5.0));
  EXPECT_EQ(a.intervals()[1], Interval(7.0, 8.0));
}

TEST(IntervalSet, IntersectWindow) {
  IntervalSet s = IntervalSet::from_intervals({{0.0, 2.0}, {3.0, 5.0}, {6.0, 9.0}});
  const IntervalSet clipped = s.intersect(Interval{1.0, 7.0});
  ASSERT_EQ(clipped.size(), 3u);
  EXPECT_EQ(clipped.intervals()[0], Interval(1.0, 2.0));
  EXPECT_EQ(clipped.intervals()[1], Interval(3.0, 5.0));
  EXPECT_EQ(clipped.intervals()[2], Interval(6.0, 7.0));
}

TEST(IntervalSet, IntersectSets) {
  const IntervalSet a = IntervalSet::from_intervals({{0.0, 4.0}, {6.0, 10.0}});
  const IntervalSet b = IntervalSet::from_intervals({{2.0, 7.0}, {9.0, 12.0}});
  const IntervalSet c = a.intersect(b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.intervals()[0], Interval(2.0, 4.0));
  EXPECT_EQ(c.intervals()[1], Interval(6.0, 7.0));
  EXPECT_EQ(c.intervals()[2], Interval(9.0, 10.0));
}

TEST(IntervalSet, MeasureWithin) {
  const IntervalSet s = IntervalSet::from_intervals({{0.0, 2.0}, {3.0, 5.0}});
  EXPECT_DOUBLE_EQ(s.measure_within({1.0, 4.0}), 2.0);
  EXPECT_DOUBLE_EQ(s.measure_within({5.0, 9.0}), 0.0);
  EXPECT_DOUBLE_EQ(s.measure_within({-1.0, 10.0}), 4.0);
}

TEST(IntervalSet, ContainsPoint) {
  const IntervalSet s = IntervalSet::from_intervals({{0.0, 1.0}, {2.0, 3.0}});
  EXPECT_TRUE(s.contains(0.0));
  EXPECT_TRUE(s.contains(2.5));
  EXPECT_FALSE(s.contains(1.0));  // closed-open
  EXPECT_FALSE(s.contains(1.5));
  EXPECT_FALSE(s.contains(3.0));
}

TEST(IntervalSet, CoversInterval) {
  const IntervalSet s = IntervalSet::from_intervals({{0.0, 4.0}, {5.0, 6.0}});
  EXPECT_TRUE(s.covers({1.0, 3.0}));
  EXPECT_FALSE(s.covers({3.0, 5.5}));
  EXPECT_TRUE(s.covers({2.0, 2.0}));  // empty interval is always covered
}

TEST(IntervalSet, MinMax) {
  const IntervalSet s = IntervalSet::from_intervals({{3.0, 5.0}, {0.5, 1.0}});
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(IntervalSet, MinMaxOnEmptySetThrows) {
  const IntervalSet s;
  EXPECT_THROW((void)s.min(), ContractViolation);
  EXPECT_THROW((void)s.max(), ContractViolation);
}

TEST(IntervalSet, FromIntervalsDropsEmptyAndSorts) {
  const IntervalSet s =
      IntervalSet::from_intervals({{5.0, 4.0}, {2.0, 3.0}, {0.0, 1.0}, {1.0, 2.0}});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals().front(), Interval(0.0, 3.0));
}

// ---------------------------------------------------------------------------
// Property tests: random interval operations checked against a dense
// grid discretization of the same sets.
// ---------------------------------------------------------------------------

class IntervalSetPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

constexpr int kGrid = 400;
constexpr double kLo = 0.0, kHi = 10.0;

std::vector<bool> rasterize(const IntervalSet& s) {
  std::vector<bool> bits(kGrid);
  for (int i = 0; i < kGrid; ++i) {
    const double t = kLo + (kHi - kLo) * (i + 0.5) / kGrid;  // cell midpoints
    bits[static_cast<std::size_t>(i)] = s.contains(t);
  }
  return bits;
}

Interval random_interval(Rng& rng) {
  double a = rng.uniform(kLo, kHi);
  double b = rng.uniform(kLo, kHi);
  if (a > b) std::swap(a, b);
  return {a, b};
}

TEST_P(IntervalSetPropertyTest, OperationsMatchGridSemantics) {
  Rng rng(GetParam());
  IntervalSet s;
  std::vector<bool> grid(kGrid, false);
  for (int step = 0; step < 60; ++step) {
    const Interval iv = random_interval(rng);
    const bool add = rng.uniform() < 0.6;
    if (add) {
      s.add(iv);
    } else {
      s.subtract(iv);
    }
    for (int i = 0; i < kGrid; ++i) {
      const double t = kLo + (kHi - kLo) * (i + 0.5) / kGrid;
      if (iv.contains(t)) grid[static_cast<std::size_t>(i)] = add;
    }
  }
  EXPECT_EQ(rasterize(s), grid);
  // Canonical form invariants: sorted, disjoint, non-adjacent, non-empty.
  const auto& ivs = s.intervals();
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    EXPECT_FALSE(ivs[i].empty());
    if (i > 0) {
      EXPECT_LT(ivs[i - 1].hi, ivs[i].lo);
    }
  }
  // Measure roughly matches the grid density.
  const double grid_measure =
      static_cast<double>(std::count(grid.begin(), grid.end(), true)) *
      (kHi - kLo) / kGrid;
  EXPECT_NEAR(s.measure(), grid_measure, 60.0 * (kHi - kLo) / kGrid);
}

TEST_P(IntervalSetPropertyTest, IntersectionIsPointwiseAnd) {
  Rng rng(GetParam() ^ 0xabcdef);
  IntervalSet a, b;
  for (int i = 0; i < 15; ++i) a.add(random_interval(rng));
  for (int i = 0; i < 15; ++i) b.add(random_interval(rng));
  const IntervalSet c = a.intersect(b);
  const auto ra = rasterize(a), rb = rasterize(b), rc = rasterize(c);
  for (int i = 0; i < kGrid; ++i) {
    EXPECT_EQ(rc[static_cast<std::size_t>(i)],
              ra[static_cast<std::size_t>(i)] && rb[static_cast<std::size_t>(i)])
        << "cell " << i;
  }
}

TEST_P(IntervalSetPropertyTest, SubtractSetIsPointwiseAndNot) {
  Rng rng(GetParam() ^ 0x1234567);
  IntervalSet a, b;
  for (int i = 0; i < 15; ++i) a.add(random_interval(rng));
  for (int i = 0; i < 15; ++i) b.add(random_interval(rng));
  IntervalSet c = a;
  c.subtract(b);
  const auto ra = rasterize(a), rb = rasterize(b), rc = rasterize(c);
  for (int i = 0; i < kGrid; ++i) {
    EXPECT_EQ(rc[static_cast<std::size_t>(i)],
              ra[static_cast<std::size_t>(i)] && !rb[static_cast<std::size_t>(i)])
        << "cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace dcn
