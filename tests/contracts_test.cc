// Cross-module contract coverage: every public entry point rejects
// malformed input with dcn::ContractViolation instead of invoking UB.
#include <gtest/gtest.h>

#include "common/contracts.h"
#include "dcfs/most_critical_first.h"
#include "dcfsr/random_schedule.h"
#include "flow/split.h"
#include "flow/workload.h"
#include "mcf/interval_decomposition.h"
#include "schedule/schedule.h"
#include "topology/builders.h"

namespace dcn {
namespace {

TEST(Contracts, ViolationMessageNamesExpressionAndLocation) {
  try {
    DCN_EXPECTS(1 + 1 == 3);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos);
    EXPECT_NE(what.find("contracts_test.cc"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Contracts, EnsuresIsPostcondition) {
  try {
    DCN_ENSURES(false);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"), std::string::npos);
  }
}

TEST(Contracts, FlowHorizonRejectsEmptySet) {
  EXPECT_THROW((void)flow_horizon({}), ContractViolation);
}

TEST(Contracts, IntervalDecompositionRejectsEmptySet) {
  EXPECT_THROW((void)decompose_intervals({}), ContractViolation);
}

TEST(Contracts, TopologyRejectsBogusHostIds) {
  Graph g(2);
  g.add_bidirectional_edge(0, 1);
  EXPECT_THROW(Topology("bad", std::move(g), {5}), ContractViolation);
}

TEST(Contracts, EnergyRejectsEmptyHorizon) {
  const Topology topo = line_network(2);
  const PowerModel model(1.0, 1.0, 2.0);
  const Schedule s;
  EXPECT_THROW(
      (void)energy_phi_f(topo.graph(), s, model, Interval{3.0, 3.0}),
      ContractViolation);
}

TEST(Contracts, McfRejectsDuplicatePathMismatch) {
  const Topology topo = line_network(3);
  const std::vector<Flow> flows{{0, 0, 2, 1.0, 0.0, 1.0}};
  const PowerModel model(0.0, 1.0, 2.0);
  // Empty path list.
  EXPECT_THROW((void)most_critical_first(topo.graph(), flows, {}, model),
               ContractViolation);
  // Zero-length path (src == dst impossible for a valid flow anyway).
  std::vector<Path> paths{Path{0, 0, {}}};
  EXPECT_THROW((void)most_critical_first(topo.graph(), flows, paths, model),
               ContractViolation);
}

TEST(Contracts, DcfsOptionsValidated) {
  const Topology topo = line_network(3);
  const std::vector<Flow> flows{{0, 0, 2, 1.0, 0.0, 1.0}};
  const PowerModel model(0.0, 1.0, 2.0);
  std::vector<Path> paths{Path{0, 2, {0, 2}}};
  DcfsOptions bad;
  bad.escalation_factor = 1.0;  // must be > 1
  EXPECT_THROW((void)most_critical_first(topo.graph(), flows, paths, model, bad),
               ContractViolation);
}

TEST(Contracts, RandomScheduleOptionsValidated) {
  const Topology topo = line_network(3);
  const std::vector<Flow> flows{{0, 0, 2, 1.0, 0.0, 1.0}};
  const PowerModel model(0.0, 1.0, 2.0);
  Rng rng(1);
  RandomScheduleOptions bad;
  bad.max_rounding_attempts = 0;
  EXPECT_THROW((void)random_schedule(topo.graph(), flows, model, rng, bad),
               ContractViolation);
  RandomScheduleOptions bad2;
  bad2.best_of = 0;
  EXPECT_THROW((void)random_schedule(topo.graph(), flows, model, rng, bad2),
               ContractViolation);
}

TEST(Contracts, WorkloadGeneratorBounds) {
  const Topology topo = fat_tree(4);
  Rng rng(1);
  PaperWorkloadParams params;
  params.num_flows = 0;
  EXPECT_THROW((void)paper_workload(topo, params, rng), ContractViolation);
  EXPECT_THROW((void)slack_workload(topo, 5, 1.0, 1.0, 0.5, {0.0, 10.0}, rng),
               ContractViolation);  // slack < 1
}

TEST(Contracts, SplitAggregationShapeChecked) {
  const std::vector<Flow> flows{{0, 1, 2, 1.0, 0.0, 1.0}};
  const SplitResult split = split_flows(flows, 2);
  EXPECT_THROW((void)aggregate_by_parent(split, {1.0}, 1), ContractViolation);
}

}  // namespace
}  // namespace dcn
