// Tests for the discrete-event packet simulator — the executable check
// of Sec. III-C's "priorities realize the fluid schedule" claim.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.h"
#include "common/random.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "graph/shortest_path.h"
#include "sim/packet_sim.h"
#include "topology/builders.h"

namespace dcn {
namespace {

struct LineFixture {
  Topology topo = line_network(3);
  EdgeId ab = 0, bc = 2;
};

TEST(PacketSim, SingleFlowFinishesWithPipelineFill) {
  // One flow at constant rate 2 on a 2-hop path, volume 6 in [0,3]:
  // fluid completion 3.0; packetized completion ~ 3.0 + S/2 (one extra
  // hop of pipeline fill at rate 2).
  LineFixture fx;
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 0.0, 3.0}};
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 2, {fx.ab, fx.bc}};
  s.flows[0].segments = {{{0.0, 3.0}, 2.0}};

  PacketSimOptions options;
  options.packet_size = 0.1;
  const auto report = packet_simulate(fx.topo.graph(), flows, s, options);
  EXPECT_TRUE(report.all_deadlines_met);
  EXPECT_EQ(report.packets_delivered, 60);
  EXPECT_EQ(report.packets_starved, 0);
  EXPECT_NEAR(report.completion_time[0], 3.0 + 0.1 / 2.0, 1e-9);
  EXPECT_NEAR(report.lateness[0], 0.05, 1e-9);
  EXPECT_LE(report.lateness[0], report.pipeline_allowance[0] + 1e-12);
}

TEST(PacketSim, PipelineFillShrinksLinearlyWithPacketSize) {
  LineFixture fx;
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 0.0, 3.0}};
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 2, {fx.ab, fx.bc}};
  s.flows[0].segments = {{{0.0, 3.0}, 2.0}};

  double prev = 1e9;
  for (double size : {0.4, 0.2, 0.1, 0.05}) {
    PacketSimOptions options;
    options.packet_size = size;
    const auto report = packet_simulate(fx.topo.graph(), flows, s, options);
    EXPECT_NEAR(report.lateness[0], size / 2.0, 1e-9) << "S=" << size;
    EXPECT_LT(report.lateness[0], prev);
    prev = report.lateness[0];
  }
}

TEST(PacketSim, ExampleOneScheduleIsRealizable) {
  // The MCF schedule of the paper's Example 1 survives packetization:
  // both flows complete within their deadlines + pipeline allowance.
  const Topology topo = line_network(3);
  const Graph& g = topo.graph();
  const std::vector<Flow> flows{
      {0, 0, 2, 6.0, 2.0, 4.0},
      {1, 0, 1, 8.0, 1.0, 3.0},
  };
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  std::vector<Path> paths;
  for (const Flow& fl : flows) paths.push_back(*bfs_shortest_path(g, fl.src, fl.dst));
  const DcfsResult mcf = most_critical_first(g, flows, paths, model);

  for (auto priority : {PacketSimOptions::Priority::kEdf,
                        PacketSimOptions::Priority::kStartTime}) {
    PacketSimOptions options;
    options.packet_size = 0.05;
    options.priority = priority;
    const auto report = packet_simulate(g, flows, mcf.schedule, options);
    EXPECT_TRUE(report.all_deadlines_met);
    EXPECT_EQ(report.packets_starved, 0);
  }
}

TEST(PacketSim, SingleHopFlowsDeliverExactlyAtEmission) {
  // One-hop paths: the scheduled emission is the whole journey, so the
  // last packet lands exactly at the fluid completion time.
  LineFixture fx;
  const std::vector<Flow> flows{
      {0, 0, 1, 4.0, 0.0, 4.0},
      {1, 0, 1, 8.0, 0.0, 4.0},
  };
  Schedule s;
  s.flows.resize(2);
  s.flows[0].path = {0, 1, {fx.ab}};
  s.flows[0].segments = {{{0.0, 4.0}, 1.0}};
  s.flows[1].path = {0, 1, {fx.ab}};
  s.flows[1].segments = {{{0.0, 4.0}, 2.0}};

  PacketSimOptions options;
  options.packet_size = 0.25;
  const auto report = packet_simulate(fx.topo.graph(), flows, s, options);
  EXPECT_TRUE(report.all_deadlines_met);
  EXPECT_EQ(report.packets_delivered, 16 + 32);
  EXPECT_NEAR(report.completion_time[0], 4.0, 1e-9);
  EXPECT_NEAR(report.completion_time[1], 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(report.max_lateness, 0.0);
}

TEST(PacketSim, SharedDownstreamLinkSerializesWithoutLoss) {
  // line(4): flow 0 goes 0->3, flow 1 goes 1->3; they share links B->C
  // and C->D downstream of flow 1's emission. The shared links run at
  // the sum rate; packets interleave and everyone stays within the
  // pipeline allowance.
  const Topology topo = line_network(4);
  const Graph& g = topo.graph();
  const EdgeId ab = 0, bc = 2, cd = 4;
  ASSERT_EQ(g.edge(cd).src, 2);
  const std::vector<Flow> flows{
      {0, 0, 3, 4.0, 0.0, 4.0},  // rate 1
      {1, 1, 3, 8.0, 0.0, 4.0},  // rate 2
  };
  Schedule s;
  s.flows.resize(2);
  s.flows[0].path = {0, 3, {ab, bc, cd}};
  s.flows[0].segments = {{{0.0, 4.0}, 1.0}};
  s.flows[1].path = {1, 3, {bc, cd}};
  s.flows[1].segments = {{{0.0, 4.0}, 2.0}};

  PacketSimOptions options;
  options.packet_size = 0.25;
  const auto report = packet_simulate(g, flows, s, options);
  EXPECT_TRUE(report.all_deadlines_met);
  EXPECT_EQ(report.packets_delivered, 16 + 32);
  EXPECT_EQ(report.packets_starved, 0);
  EXPECT_GE(report.max_queue_packets, 1);
}

TEST(PacketSim, StarvedScheduleIsReported) {
  // Schedule claims rate only on [0,1) but releases 4 units of data at
  // rate 2 in [0,2): half the packets can never be served downstream.
  LineFixture fx;
  const std::vector<Flow> flows{{0, 0, 2, 4.0, 0.0, 2.0}};
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 2, {fx.ab, fx.bc}};
  s.flows[0].segments = {{{0.0, 2.0}, 2.0}};
  // Tamper: a second schedule view where the BC link gets no time. We
  // emulate by giving the flow a segment only on AB via a custom
  // schedule: put rate on AB using a 1-hop path, then extend path to
  // 2 hops with no BC rate — constructed by mixing two schedules.
  Schedule tampered;
  tampered.flows.resize(1);
  tampered.flows[0].path = {0, 2, {fx.ab, fx.bc}};
  tampered.flows[0].segments = {{{0.0, 1.0}, 2.0}};  // only half the volume
  const auto report = packet_simulate(fx.topo.graph(), flows, tampered);
  EXPECT_FALSE(report.all_deadlines_met);
}

TEST(PacketSim, FifoVersusEdfOrdering) {
  // An urgent flow released slightly after a bulk flow, both two hops:
  // EDF lets urgent packets overtake queued bulk packets on the shared
  // second link, FIFO does not. The urgent flow's completion under EDF
  // is no later than under FIFO.
  LineFixture fx;
  const std::vector<Flow> flows{
      {0, 0, 2, 8.0, 0.0, 10.0},  // bulk, loose deadline
      {1, 0, 2, 1.0, 0.5, 2.0},   // urgent
  };
  Schedule s;
  s.flows.resize(2);
  s.flows[0].path = {0, 2, {fx.ab, fx.bc}};
  s.flows[0].segments = {{{0.0, 10.0}, 0.8}};
  s.flows[1].path = {0, 2, {fx.ab, fx.bc}};
  s.flows[1].segments = {{{0.5, 2.0}, 1.0 / 1.5}};

  PacketSimOptions edf;
  edf.priority = PacketSimOptions::Priority::kEdf;
  PacketSimOptions fifo;
  fifo.priority = PacketSimOptions::Priority::kFifo;
  const auto r_edf = packet_simulate(fx.topo.graph(), flows, s, edf);
  const auto r_fifo = packet_simulate(fx.topo.graph(), flows, s, fifo);
  EXPECT_LE(r_edf.completion_time[1], r_fifo.completion_time[1] + 1e-9);
  EXPECT_TRUE(r_edf.all_deadlines_met);
}

TEST(PacketSim, RejectsNonPositivePacketSize) {
  LineFixture fx;
  const std::vector<Flow> flows{{0, 0, 1, 1.0, 0.0, 1.0}};
  Schedule s;
  s.flows.resize(1);
  s.flows[0].path = {0, 1, {fx.ab}};
  s.flows[0].segments = {{{0.0, 1.0}, 1.0}};
  PacketSimOptions options;
  options.packet_size = 0.0;
  EXPECT_THROW((void)packet_simulate(fx.topo.graph(), flows, s, options),
               ContractViolation);
}

// Property: Random-Schedule survives packetization on the paper's
// workload — Theorem 4 continues to hold at packet granularity (within
// the pipeline allowance).
class PacketTheorem4Test : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketTheorem4Test, RandomScheduleSurvivesPacketization) {
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  Rng rng(GetParam());
  PaperWorkloadParams params;
  params.num_flows = 12;
  const auto flows = paper_workload(topo, params, rng);
  const auto rs = random_schedule(g, flows, model, rng);
  ASSERT_TRUE(rs.capacity_feasible);

  PacketSimOptions options;
  options.packet_size = 0.1;
  const auto report = packet_simulate(g, flows, rs.schedule, options);
  EXPECT_TRUE(report.all_deadlines_met);
  EXPECT_EQ(report.packets_starved, 0);
  // Lateness is bounded by the per-flow pipeline allowance.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_LE(report.lateness[i],
              options.allowance_multiplier * report.pipeline_allowance[i] *
                      (1.0 + 1e-6) +
                  1e-9)
        << "flow " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketTheorem4Test,
                         ::testing::Values(2u, 4u, 6u, 8u, 10u, 12u));

// SP+MCF schedules are also realizable with start-time priorities on
// uncongested instances (the paper's own construction).
class PacketMcfTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketMcfTest, McfScheduleSurvivesPacketization) {
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  Rng rng(GetParam());
  PaperWorkloadParams params;
  params.num_flows = 10;
  const auto flows = paper_workload(topo, params, rng);
  const auto mcf = sp_mcf(g, flows, model);
  if (mcf.availability_fallbacks > 0) {
    GTEST_SKIP() << "congested instance with overlap fallback";
  }
  PacketSimOptions options;
  options.packet_size = 0.05;
  const auto report = packet_simulate(g, flows, mcf.schedule, options);
  EXPECT_TRUE(report.all_deadlines_met);
  EXPECT_EQ(report.packets_starved, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketMcfTest,
                         ::testing::Values(3u, 5u, 7u, 9u, 11u));

// Reproduction finding (documented in EXPERIMENTS.md): the paper's
// packet-priority rule — smaller scheduled start r'_i means higher
// priority (Sec. III-C) — does NOT always realize the fluid schedule in
// a store-and-forward network. A tight flow whose window starts late is
// starved behind an early-starting loose flow on shared links and can
// miss its deadline by tens of time units, while EDF priorities realize
// the same schedule within the packet-granularity envelope.
TEST(PacketSim, StartTimePriorityIsBrittleWhereEdfIsNot) {
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  Rng rng(3);  // the instance where the inversion manifests
  PaperWorkloadParams params;
  params.num_flows = 10;
  const auto flows = paper_workload(topo, params, rng);
  const auto mcf = sp_mcf(g, flows, model);
  ASSERT_EQ(mcf.availability_fallbacks, 0);

  PacketSimOptions start_time;
  start_time.packet_size = 0.05;
  start_time.priority = PacketSimOptions::Priority::kStartTime;
  PacketSimOptions edf;
  edf.packet_size = 0.05;
  const auto r_start = packet_simulate(g, flows, mcf.schedule, start_time);
  const auto r_edf = packet_simulate(g, flows, mcf.schedule, edf);
  EXPECT_TRUE(r_edf.all_deadlines_met);
  EXPECT_FALSE(r_start.all_deadlines_met);
  EXPECT_GT(r_start.max_lateness, 10.0);  // structural, not granularity
  EXPECT_LT(r_edf.max_lateness, 3.0);
}

}  // namespace
}  // namespace dcn
