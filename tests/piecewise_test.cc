// Tests for StepFunction (piecewise-constant rate timelines).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/piecewise.h"
#include "common/random.h"

namespace dcn {
namespace {

TEST(StepFunction, ZeroFunction) {
  const StepFunction f;
  EXPECT_TRUE(f.is_zero());
  EXPECT_DOUBLE_EQ(f.value_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.integral(), 0.0);
  EXPECT_DOUBLE_EQ(f.max_value(), 0.0);
  EXPECT_TRUE(f.segments().empty());
}

TEST(StepFunction, SingleSegment) {
  StepFunction f;
  f.add({1.0, 3.0}, 2.5);
  EXPECT_FALSE(f.is_zero());
  EXPECT_DOUBLE_EQ(f.value_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f.value_at(1.0), 2.5);
  EXPECT_DOUBLE_EQ(f.value_at(2.9), 2.5);
  EXPECT_DOUBLE_EQ(f.value_at(3.0), 0.0);
  EXPECT_DOUBLE_EQ(f.integral(), 5.0);
  EXPECT_DOUBLE_EQ(f.max_value(), 2.5);
}

TEST(StepFunction, OverlappingSegmentsAccumulate) {
  StepFunction f;
  f.add({0.0, 4.0}, 1.0);
  f.add({2.0, 6.0}, 2.0);
  EXPECT_DOUBLE_EQ(f.value_at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(f.value_at(3.0), 3.0);
  EXPECT_DOUBLE_EQ(f.value_at(5.0), 2.0);
  EXPECT_DOUBLE_EQ(f.integral(), 1.0 * 4.0 + 2.0 * 4.0);
  EXPECT_DOUBLE_EQ(f.max_value(), 3.0);
}

TEST(StepFunction, MaxWithinMatchesSegmentsScan) {
  StepFunction f;
  f.add({0.0, 4.0}, 1.0);
  f.add({2.0, 6.0}, 2.0);
  f.add({5.0, 9.0}, 0.5);
  // Reference: the segments() overlap scan max_within replaces.
  auto reference = [&f](const Interval& window) {
    double peak = 0.0;
    for (const auto& [iv, value] : f.segments()) {
      if (iv.overlaps(window)) peak = std::max(peak, value);
    }
    return peak;
  };
  for (double lo = -1.0; lo <= 10.0; lo += 0.5) {
    for (double hi = lo; hi <= 10.5; hi += 0.5) {
      EXPECT_DOUBLE_EQ(f.max_within({lo, hi}), reference({lo, hi}))
          << "[" << lo << ", " << hi << ")";
    }
  }
}

TEST(StepFunction, MaxWithinWindowBoundaries) {
  StepFunction f;
  f.add({2.0, 4.0}, 3.0);
  // Window entirely before / after the support.
  EXPECT_DOUBLE_EQ(f.max_within({0.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(f.max_within({4.0, 8.0}), 0.0);
  // Touching windows see the segment (shared-point overlap semantics).
  EXPECT_DOUBLE_EQ(f.max_within({0.0, 2.5}), 3.0);
  EXPECT_DOUBLE_EQ(f.max_within({3.5, 8.0}), 3.0);
  EXPECT_DOUBLE_EQ(f.max_within({2.0, 4.0}), 3.0);
  // Zero function.
  EXPECT_DOUBLE_EQ(StepFunction().max_within({0.0, 10.0}), 0.0);
}

TEST(StepFunction, NegativeDeltaCancels) {
  StepFunction f;
  f.add({0.0, 10.0}, 3.0);
  f.add({4.0, 6.0}, -3.0);
  EXPECT_DOUBLE_EQ(f.value_at(5.0), 0.0);
  EXPECT_DOUBLE_EQ(f.integral(), 3.0 * 8.0);
  const auto segs = f.segments();
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].first, Interval(0.0, 4.0));
  EXPECT_EQ(segs[1].first, Interval(6.0, 10.0));
}

TEST(StepFunction, IntegrateTransformedSkipsZeroStretches) {
  StepFunction f;
  f.add({0.0, 2.0}, 2.0);
  f.add({5.0, 7.0}, 3.0);
  // Power x^2 over a window covering both segments and the gap: the gap
  // contributes nothing (f(0) = 0 in the power model).
  const double energy = f.integrate_transformed(
      {0.0, 10.0}, [](double x) { return x * x; });
  EXPECT_NEAR(energy, 4.0 * 2.0 + 9.0 * 2.0, 1e-12);
}

TEST(StepFunction, IntegrateTransformedClipsToWindow) {
  StepFunction f;
  f.add({0.0, 10.0}, 2.0);
  const double e = f.integrate_transformed({4.0, 6.0}, [](double x) { return x; });
  EXPECT_NEAR(e, 4.0, 1e-12);
}

TEST(StepFunction, PositiveMeasure) {
  StepFunction f;
  f.add({0.0, 2.0}, 1.0);
  f.add({3.0, 4.0}, 0.5);
  EXPECT_NEAR(f.positive_measure({0.0, 10.0}), 3.0, 1e-12);
  EXPECT_NEAR(f.positive_measure({1.0, 3.5}), 1.5, 1e-12);
}

TEST(StepFunction, TimeToAccumulateWithinOneSegment) {
  StepFunction f;
  f.add({1.0, 5.0}, 2.0);
  EXPECT_DOUBLE_EQ(f.time_to_accumulate(1.0, 4.0), 3.0);
  EXPECT_DOUBLE_EQ(f.time_to_accumulate(0.0, 4.0), 3.0);  // waits for support
  EXPECT_DOUBLE_EQ(f.time_to_accumulate(2.0, 0.0), 2.0);  // zero volume
}

TEST(StepFunction, TimeToAccumulateAcrossGaps) {
  StepFunction f;
  f.add({0.0, 1.0}, 1.0);
  f.add({3.0, 5.0}, 2.0);
  // 1 unit in [0,1), then 2/rate-2 = covers the rest.
  EXPECT_DOUBLE_EQ(f.time_to_accumulate(0.0, 3.0), 4.0);
  EXPECT_DOUBLE_EQ(f.time_to_accumulate(0.5, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(f.time_to_accumulate(0.5, 1.0), 3.25);
}

TEST(StepFunction, TimeToAccumulateUnreachableIsInfinite) {
  StepFunction f;
  f.add({0.0, 2.0}, 1.0);
  EXPECT_TRUE(std::isinf(f.time_to_accumulate(0.0, 5.0)));
  EXPECT_TRUE(std::isinf(f.time_to_accumulate(3.0, 0.1)));
}

TEST(StepFunction, IntegralBetween) {
  StepFunction f;
  f.add({0.0, 4.0}, 1.5);
  EXPECT_NEAR(f.integral_between(1.0, 3.0), 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.integral_between(3.0, 1.0), 0.0);
  EXPECT_NEAR(f.integral_between(-5.0, 10.0), 6.0, 1e-12);
}

TEST(StepFunction, SegmentsMergeEqualAdjacentValues) {
  StepFunction f;
  f.add({0.0, 1.0}, 2.0);
  f.add({1.0, 2.0}, 2.0);
  const auto segs = f.segments();
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].first, Interval(0.0, 2.0));
  EXPECT_DOUBLE_EQ(segs[0].second, 2.0);
}

// Property: integral equals the sum over segments(); integrate_transformed
// with identity equals integral within a wide window.
class StepFunctionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StepFunctionPropertyTest, IntegralConsistency) {
  Rng rng(GetParam());
  StepFunction f;
  for (int i = 0; i < 40; ++i) {
    double a = rng.uniform(0.0, 50.0);
    double b = rng.uniform(0.0, 50.0);
    if (a > b) std::swap(a, b);
    if (b - a < 1e-6) continue;
    f.add({a, b}, rng.uniform(0.1, 3.0));
  }
  double by_segments = 0.0;
  for (const auto& [iv, v] : f.segments()) by_segments += v * iv.measure();
  EXPECT_NEAR(f.integral(), by_segments, 1e-6);
  EXPECT_NEAR(f.integrate_transformed({-10.0, 100.0}, [](double x) { return x; }),
              f.integral(), 1e-6);
}

TEST_P(StepFunctionPropertyTest, PowerIntegralIsSuperadditiveUnderMerging) {
  // Jensen: concentrating the same volume on a shorter time at a higher
  // rate costs more energy for alpha > 1.
  Rng rng(GetParam() ^ 0x77);
  const double volume = rng.uniform(5.0, 20.0);
  const double t_long = 10.0, t_short = rng.uniform(1.0, 9.0);
  StepFunction slow, fast;
  slow.add({0.0, t_long}, volume / t_long);
  fast.add({0.0, t_short}, volume / t_short);
  const auto square = [](double x) { return x * x; };
  EXPECT_LT(slow.integrate_transformed({0.0, 20.0}, square),
            fast.integrate_transformed({0.0, 20.0}, square));
}

TEST_P(StepFunctionPropertyTest, DropBeforePreservesProbesAtOrAfterTheCut) {
  // drop_before folds the pre-cut prefix in ascending order — the
  // exact partial fold every probe performs — so probes at or after the
  // last folded breakpoint are bitwise those of the unpruned function,
  // while the breakpoint count strictly shrinks. This is the bound on
  // the audit shadow's growth in long soaks.
  Rng rng(GetParam() ^ 0x5117);
  StepFunction pruned, reference;
  for (int i = 0; i < 60; ++i) {
    double a = rng.uniform(0.0, 40.0);
    double b = a + rng.uniform(0.1, 5.0);
    const double delta = rng.uniform(-2.0, 3.0);
    pruned.add({a, b}, delta);
    reference.add({a, b}, delta);
  }
  const std::int64_t before = pruned.breakpoint_count();
  ASSERT_GT(before, 10);
  pruned.drop_before(20.0);
  EXPECT_LT(pruned.breakpoint_count(), before);
  for (int probe = 0; probe < 200; ++probe) {
    const double t = rng.uniform(20.0, 50.0);
    EXPECT_EQ(pruned.value_at(t), reference.value_at(t)) << t;
    const double lo = rng.uniform(20.0, 45.0);
    const Interval window{lo, lo + rng.uniform(0.1, 4.0)};
    EXPECT_EQ(pruned.max_within(window), reference.max_within(window))
        << window.lo;
    EXPECT_EQ(pruned.integral_between(lo, window.hi),
              reference.integral_between(lo, window.hi))
        << lo;
  }
  // Monotone and idempotent like LoadProfile::prune_before; dropping
  // past every breakpoint leaves at most the carried fold.
  const std::int64_t after = pruned.breakpoint_count();
  pruned.drop_before(20.0);
  EXPECT_EQ(pruned.breakpoint_count(), after);
  pruned.drop_before(1000.0);
  EXPECT_LE(pruned.breakpoint_count(), 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepFunctionPropertyTest,
                         ::testing::Values(7u, 11u, 19u, 23u, 42u));

}  // namespace
}  // namespace dcn
