// Self-test for tools/lint/dcn_lint.py: feeds the known-bad and
// known-good fixtures under tests/lint/fixtures/ through every rule in
// both directions, checks the suppression annotation demands a
// non-empty reason, and finally runs the lint over the real tree — the
// tree staying clean is itself part of the contract.
//
// The lint is a Python tool, so this test shells out to it (CMake
// injects DCN_SOURCE_DIR); when no python3 is on PATH the tests skip
// rather than fail, matching how CI environments without Python would
// degrade.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

constexpr const char* kRoot = DCN_SOURCE_DIR;

struct LintRun {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

LintRun run_lint(const std::string& args) {
  const std::string command = std::string("python3 '") + kRoot +
                              "/tools/lint/dcn_lint.py' " + args + " 2>&1";
  LintRun run;
  std::FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buffer{};
  std::size_t got = 0;
  while ((got = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    run.output.append(buffer.data(), got);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

bool python_available() {
  static const bool available = [] {
    return run_lint("--list-rules").exit_code == 0;
  }();
  return available;
}

#define REQUIRE_PYTHON() \
  if (!python_available()) GTEST_SKIP() << "python3 not available on PATH"

std::string fixture_args(const std::string& rel_file) {
  return std::string("--root '") + kRoot + "/tests/lint/fixtures' --quiet " +
         rel_file;
}

struct RuleFixture {
  const char* rule;
  const char* bad_file;
  int bad_violations;
  const char* good_file;
};

// One known-bad and one known-good fixture per rule. The expected
// violation counts pin the rules' sensitivity: fewer means a detector
// went blind, more means a false positive crept in.
constexpr RuleFixture kRuleFixtures[] = {
    {"unordered-iter", "src/bad_unordered_iter.cc", 4,
     "src/good_unordered_iter.cc"},
    {"wall-clock", "src/bad_wall_clock.cc", 3, "src/good_wall_clock.cc"},
    {"raw-random", "src/bad_raw_random.cc", 3, "src/good_raw_random.cc"},
    {"raw-thread", "src/bad_raw_thread.cc", 4, "src/good_raw_thread.cc"},
    {"std-function-hot", "src/opt/bad_std_function.cc", 2,
     "src/opt/good_std_function.cc"},
};

int count_lines(const std::string& text) {
  int lines = 0;
  for (char c : text) lines += (c == '\n');
  return lines;
}

TEST(DcnLint, ListsEveryRule) {
  REQUIRE_PYTHON();
  const LintRun run = run_lint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const RuleFixture& fixture : kRuleFixtures) {
    EXPECT_NE(run.output.find(fixture.rule), std::string::npos)
        << "--list-rules is missing " << fixture.rule << ":\n"
        << run.output;
  }
}

TEST(DcnLint, EveryRuleFlagsItsKnownBadFixture) {
  REQUIRE_PYTHON();
  for (const RuleFixture& fixture : kRuleFixtures) {
    const LintRun run = run_lint(fixture_args(fixture.bad_file));
    EXPECT_EQ(run.exit_code, 1) << fixture.bad_file << ":\n" << run.output;
    EXPECT_NE(run.output.find(std::string("[") + fixture.rule + "]"),
              std::string::npos)
        << fixture.bad_file << " did not trip [" << fixture.rule << "]:\n"
        << run.output;
    EXPECT_EQ(count_lines(run.output), fixture.bad_violations)
        << fixture.bad_file << " violation count drifted:\n"
        << run.output;
  }
}

TEST(DcnLint, EveryRulePassesItsKnownGoodFixture) {
  REQUIRE_PYTHON();
  for (const RuleFixture& fixture : kRuleFixtures) {
    const LintRun run = run_lint(fixture_args(fixture.good_file));
    EXPECT_EQ(run.exit_code, 0)
        << fixture.good_file << " should lint clean:\n"
        << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
  }
}

TEST(DcnLint, SuppressionRequiresNonEmptyReason) {
  REQUIRE_PYTHON();
  const LintRun run = run_lint(fixture_args("src/bad_annotation.cc"));
  EXPECT_EQ(run.exit_code, 1);
  // The reasonless allow() is rejected as an annotation violation…
  EXPECT_NE(run.output.find("requires a non-empty reason"), std::string::npos)
      << run.output;
  // …the unknown rule name and the malformed spelling likewise…
  EXPECT_NE(run.output.find("unknown rule"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("malformed"), std::string::npos) << run.output;
  // …and none of the three suppresses anything: all three underlying
  // wall-clock violations still fire (3 annotation + 3 wall-clock).
  EXPECT_EQ(count_lines(run.output), 6) << run.output;
}

TEST(DcnLint, AnnotatedViolationCarriesNoExitPenalty) {
  REQUIRE_PYTHON();
  // good_wall_clock.cc and good_unordered_iter.cc both contain real
  // rule hits covered by reasoned allow() annotations — together they
  // prove suppression works on the same line and on the line above.
  const LintRun run = run_lint(
      fixture_args("src/good_wall_clock.cc src/good_unordered_iter.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(DcnLint, WholeFixtureTreeSeparatesGoodFromBad) {
  REQUIRE_PYTHON();
  const LintRun run = run_lint(std::string("--root '") + kRoot +
                               "/tests/lint/fixtures' --quiet");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(run.output.find("good_"), std::string::npos)
      << "a known-good fixture was flagged:\n"
      << run.output;
  int expected = 6;  // bad_annotation.cc
  for (const RuleFixture& fixture : kRuleFixtures) {
    expected += fixture.bad_violations;
  }
  EXPECT_EQ(count_lines(run.output), expected) << run.output;
}

// The real tree must lint clean: this is the same invariant the CI
// lint job gates on, kept enforceable locally through ctest.
TEST(DcnLint, RealTreeIsClean) {
  REQUIRE_PYTHON();
  const LintRun run =
      run_lint(std::string("--root '") + kRoot + "' --quiet");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
