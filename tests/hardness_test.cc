// Tests for the NP-hardness gadget builders (Theorems 2 and 3).
#include <gtest/gtest.h>

#include <cmath>

#include "dcfsr/hardness.h"

namespace dcn {
namespace {

TEST(Hardness, CalibrationMakesRoptEqualB) {
  // sigma = mu (alpha-1) B^alpha  =>  R_opt = B (the reduction's pivot).
  const std::vector<double> volumes{3.0, 3.0, 4.0, 4.0, 3.0, 3.0};  // m=2, B=10
  const auto inst = three_partition_instance(volumes, 10.0, 1.0, 2.0, 4);
  EXPECT_NEAR(inst.model.r_opt(), 10.0, 1e-9);
  EXPECT_EQ(inst.flows.size(), 6u);
  EXPECT_EQ(inst.topology.graph().num_nodes(), 2);
}

TEST(Hardness, PerfectPartitionAchievesPhi0) {
  // Volumes admit a perfect 3-partition into {3,3,4} + {4,3,3}: each
  // group sums to B = 10, so grouped energy = m * alpha * mu * B^alpha.
  const std::vector<double> volumes{3.0, 3.0, 4.0, 4.0, 3.0, 3.0};
  const auto inst = three_partition_instance(volumes, 10.0, 1.0, 2.0, 4);
  const double phi =
      grouped_energy(inst, {{0, 1, 2}, {3, 4, 5}});
  EXPECT_NEAR(phi, inst.phi0, 1e-9);
  EXPECT_NEAR(inst.phi0, 2.0 * 2.0 * 1.0 * 100.0, 1e-9);
}

TEST(Hardness, ImbalancedPartitionCostsStrictlyMore) {
  const std::vector<double> volumes{3.0, 3.0, 4.0, 4.0, 3.0, 3.0};
  const auto inst = three_partition_instance(volumes, 10.0, 1.0, 2.0, 4);
  // Imbalanced grouping: {3,3,3} = 9 and {4,4,3} = 11.
  const double phi = grouped_energy(inst, {{0, 1, 5}, {2, 3, 4}});
  EXPECT_GT(phi, inst.phi0 + 1e-9);
  // More groups than necessary also costs more (extra idle charges).
  const double phi3 =
      grouped_energy(inst, {{0, 1}, {2, 3}, {4, 5}});
  EXPECT_GT(phi3, inst.phi0 + 1e-9);
}

TEST(Hardness, PowerRateOptimalityExplainsTheGap) {
  // Theorem 2's "otherwise" direction: any link running at rate != B
  // has power rate > f(B)/B, so total energy > m alpha mu B^alpha.
  const std::vector<double> volumes{3.0, 3.0, 4.0, 4.0, 3.0, 3.0};
  const auto inst = three_partition_instance(volumes, 10.0, 1.0, 3.0, 4);
  const double optimal_rate = inst.model.power_rate(10.0);
  for (double rate : {6.0, 8.0, 9.0, 11.0, 14.0}) {
    EXPECT_GT(inst.model.power_rate(rate), optimal_rate);
  }
}

TEST(Hardness, GroupedEnergySkipsEmptyGroups) {
  const std::vector<double> volumes{3.0, 3.0, 4.0, 4.0, 3.0, 3.0};
  const auto inst = three_partition_instance(volumes, 10.0, 1.0, 2.0, 4);
  const double phi_with_empty = grouped_energy(inst, {{0, 1, 2}, {}, {3, 4, 5}});
  const double phi = grouped_energy(inst, {{0, 1, 2}, {3, 4, 5}});
  EXPECT_DOUBLE_EQ(phi_with_empty, phi);
}

TEST(Hardness, BuilderContracts) {
  EXPECT_THROW(
      (void)three_partition_instance({1.0, 2.0}, 10.0, 1.0, 2.0, 2),  // not 3m
      ContractViolation);
  EXPECT_THROW(
      (void)three_partition_instance({1.0, 2.0, 3.0}, 10.0, 1.0, 2.0, 0),  // k < m
      ContractViolation);
  EXPECT_THROW(
      (void)three_partition_instance({1.0, -2.0, 3.0}, 10.0, 1.0, 2.0, 2),
      ContractViolation);
}

TEST(Hardness, Theorem3GapIsRealizedOnPartitionGadget) {
  // Partition instance with a perfect split: 2 links at rate B/2 = C
  // versus the imperfect 3-way alternative used in the proof. The ratio
  // between the two certificate energies is the Theorem 3 bound, up to
  // the sigma >= mu C^alpha (alpha-1) inequality used in the proof.
  const double alpha = 2.0;
  const double c = 5.0;  // capacity = B/2
  const double mu = 1.0;
  const double sigma = mu * std::pow(c, alpha) * (alpha - 1.0);  // equality case
  const double two_link = 2.0 * sigma + 2.0 * mu * std::pow(c, alpha);
  const double three_link = 3.0 * sigma + 3.0 * mu * std::pow(2.0 * c / 3.0, alpha);
  const PowerModel model(sigma, mu, alpha, c);
  EXPECT_NEAR(three_link / two_link, model.inapproximability_bound(), 1e-9);
}

}  // namespace
}  // namespace dcn
