// Tests for Yen's k-shortest paths and equal-cost path enumeration.
#include <gtest/gtest.h>

#include <set>

#include "graph/k_shortest.h"
#include "graph/shortest_path.h"
#include "topology/builders.h"

namespace dcn {
namespace {

TEST(YenKShortest, EnumeratesAllSimplePathsInOrder) {
  // Diamond with an extra direct edge: three simple 0->3 paths.
  Graph g(4);
  g.add_edge(0, 1);  // e0
  g.add_edge(1, 3);  // e1
  g.add_edge(0, 2);  // e2
  g.add_edge(2, 3);  // e3
  g.add_edge(0, 3);  // e4 direct
  const std::vector<double> w{1.0, 1.0, 2.0, 2.0, 5.0};
  const auto paths = yen_k_shortest_paths(g, 0, 3, w, 10);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0].edges, (std::vector<EdgeId>{0, 1}));  // cost 2
  EXPECT_EQ(paths[1].edges, (std::vector<EdgeId>{2, 3}));  // cost 4
  EXPECT_EQ(paths[2].edges, (std::vector<EdgeId>{4}));     // cost 5
  for (const Path& p : paths) EXPECT_TRUE(is_valid_path(g, p));
}

TEST(YenKShortest, RespectsK) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  const std::vector<double> w{1.0, 1.0, 2.0, 2.0};
  EXPECT_EQ(yen_k_shortest_paths(g, 0, 3, w, 1).size(), 1u);
  EXPECT_EQ(yen_k_shortest_paths(g, 0, 3, w, 0).size(), 0u);
}

TEST(YenKShortest, WeightsAreNonDecreasing) {
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const std::vector<double> unit(static_cast<std::size_t>(g.num_edges()), 1.0);
  const auto paths =
      yen_k_shortest_paths(g, topo.hosts()[0], topo.hosts()[8], unit, 12);
  ASSERT_GE(paths.size(), 4u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(path_weight(paths[i - 1], unit), path_weight(paths[i], unit));
  }
  // All returned paths are distinct.
  std::set<std::vector<EdgeId>> distinct;
  for (const Path& p : paths) distinct.insert(p.edges);
  EXPECT_EQ(distinct.size(), paths.size());
}

TEST(YenKShortest, UnreachableGivesEmpty) {
  Graph g(3);
  g.add_edge(0, 1);
  const std::vector<double> w{1.0};
  EXPECT_TRUE(yen_k_shortest_paths(g, 0, 2, w, 5).empty());
}

TEST(EqualCostPaths, FatTreeCrossPodCount) {
  // In fat_tree(k), two hosts in different pods have (k/2)^2 equal-cost
  // 6-hop paths (one per core switch).
  const Topology topo = fat_tree(4);
  const auto paths = equal_cost_paths(topo.graph(), topo.hosts()[0],
                                      topo.hosts()[topo.hosts().size() - 1], 16);
  EXPECT_EQ(paths.size(), 4u);  // (4/2)^2
  for (const Path& p : paths) EXPECT_EQ(p.length(), 6u);
}

TEST(EqualCostPaths, SameEdgeSwitchSinglePath) {
  const Topology topo = fat_tree(4);
  const auto paths =
      equal_cost_paths(topo.graph(), topo.hosts()[0], topo.hosts()[1], 16);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].length(), 2u);
}

TEST(EqualCostPaths, RespectsLimit) {
  const Topology topo = fat_tree(8);
  const auto paths = equal_cost_paths(topo.graph(), topo.hosts()[0],
                                      topo.hosts()[topo.hosts().size() - 1], 5);
  EXPECT_EQ(paths.size(), 5u);
}

TEST(EqualCostPaths, ParallelLinksAreAllEqualCost) {
  const Topology topo = parallel_links(6);
  const auto paths = equal_cost_paths(topo.graph(), 0, 1, 16);
  EXPECT_EQ(paths.size(), 6u);
  for (const Path& p : paths) EXPECT_EQ(p.length(), 1u);
}

}  // namespace
}  // namespace dcn
