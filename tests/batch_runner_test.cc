// Tests for the parallel BatchRunner: grid expansion, failed-cell
// handling, aggregation, and — the engine's core guarantee — byte-
// identical results for any thread count at a fixed seed.
#include <gtest/gtest.h>

#include <memory>

#include "common/contracts.h"
#include "engine/batch_runner.h"
#include "engine/solvers.h"

namespace dcn::engine {
namespace {

BatchSpec small_spec() {
  BatchSpec spec;
  spec.solvers = {"mcf", "edf", "greedy", "dcfsr"};
  spec.scenarios = {"fat_tree/paper", "leaf_spine/incast"};
  spec.seeds = {1, 2};
  spec.options.num_flows = 8;
  spec.discard_schedules = true;
  return spec;
}

TEST(BatchRunner, RunsTheFullGridInOrder) {
  BatchSpec spec = small_spec();
  const BatchResult result =
      run_batch(default_registry(), ScenarioSuite::default_suite(), spec);

  ASSERT_EQ(result.cells.size(), 4u * 2u * 2u);
  // Grid order: scenario-major, then solver, then seed.
  EXPECT_EQ(result.cells[0].scenario, "fat_tree/paper");
  EXPECT_EQ(result.cells[0].solver, "mcf");
  EXPECT_EQ(result.cells[0].seed, 1u);
  EXPECT_EQ(result.cells[1].seed, 2u);
  EXPECT_EQ(result.cells[2].solver, "edf");
  EXPECT_EQ(result.cells[8].scenario, "leaf_spine/incast");

  for (const CellResult& cell : result.cells) {
    EXPECT_TRUE(cell.ran) << cell.solver << ": " << cell.error;
    EXPECT_TRUE(cell.outcome.feasible)
        << cell.solver << ": " << cell.outcome.first_issue;
    // discard_schedules keeps memory bounded.
    EXPECT_TRUE(cell.outcome.schedule.flows.empty());
  }
  EXPECT_TRUE(result.all_feasible());

  ASSERT_EQ(result.solvers.size(), 4u);
  for (const SolverAggregate& agg : result.solvers) {
    EXPECT_EQ(agg.cells, 4);
    EXPECT_EQ(agg.ran, 4);
    EXPECT_EQ(agg.feasible, 4);
    EXPECT_GT(agg.total_energy, 0.0);
    EXPECT_DOUBLE_EQ(agg.mean_energy, agg.total_energy / 4.0);
  }
  // Only dcfsr computes a relaxation lower bound.
  EXPECT_EQ(result.solvers[3].solver, "dcfsr");
  EXPECT_EQ(result.solvers[3].lb_cells, 4);
  EXPECT_GE(result.solvers[3].mean_lb_ratio, 1.0 - 1e-9);
  EXPECT_EQ(result.solvers[0].lb_cells, 0);
}

TEST(BatchRunner, ResultsAreByteIdenticalForJobs1VsJobs8) {
  BatchSpec spec = small_spec();
  spec.jobs = 1;
  const BatchResult serial =
      run_batch(default_registry(), ScenarioSuite::default_suite(), spec);
  spec.jobs = 8;
  const BatchResult parallel =
      run_batch(default_registry(), ScenarioSuite::default_suite(), spec);

  // The headline engine guarantee: canonical dumps (per-cell energies,
  // stats, aggregates — everything but wall-clock) are byte-identical.
  EXPECT_EQ(serial.canonical(), parallel.canonical());

  // And the aggregates agree exactly, not just to tolerance.
  ASSERT_EQ(serial.solvers.size(), parallel.solvers.size());
  for (std::size_t i = 0; i < serial.solvers.size(); ++i) {
    EXPECT_EQ(serial.solvers[i].total_energy, parallel.solvers[i].total_energy);
    EXPECT_EQ(serial.solvers[i].mean_lb_ratio, parallel.solvers[i].mean_lb_ratio);
  }
}

TEST(BatchRunner, SparseRelaxationGridIsByteIdenticalAcrossJobs) {
  // Determinism re-check focused on the sparse Frank-Wolfe pipeline:
  // dcfsr (relaxation + rounding) and mcf over a larger flow count than
  // the smoke grid, so warm starts, sparse decomposition, and the
  // hashed wbar accumulator all see real work.
  BatchSpec spec;
  spec.solvers = {"dcfsr", "mcf"};
  spec.scenarios = {"fat_tree/paper"};
  spec.seeds = {1, 2, 3};
  spec.options.num_flows = 24;
  spec.discard_schedules = true;
  spec.jobs = 1;
  const BatchResult serial =
      run_batch(default_registry(), ScenarioSuite::default_suite(), spec);
  spec.jobs = 8;
  const BatchResult parallel =
      run_batch(default_registry(), ScenarioSuite::default_suite(), spec);
  EXPECT_EQ(serial.canonical(), parallel.canonical());
  EXPECT_TRUE(serial.all_feasible());
}

TEST(BatchRunner, OnlineScenariosAreByteIdenticalAcrossJobs) {
  // Determinism re-check for the online subsystem: arrival-driven
  // scenarios (Poisson releases, heavy-tailed sizes) x online solvers
  // (per-arrival warm-started re-solves, admission control at finite
  // capacity) must stay a pure function of (scenario, seed, options) —
  // no state may leak between cells or depend on worker interleaving.
  BatchSpec spec;
  spec.solvers = {"online_greedy", "online_dcfsr", "online_dcfsr_flat",
                  "online_dcfsr_preempt"};
  spec.scenarios = {"fat_tree/poisson", "line/websearch", "leaf_spine/hadoop"};
  spec.seeds = {1, 2};
  spec.options.num_flows = 14;
  spec.options.capacity = 3.0;  // finite: admission/fallback paths execute
  spec.options.arrival_rate = 4.0;
  spec.discard_schedules = true;
  spec.jobs = 1;
  const BatchResult serial =
      run_batch(default_registry(), ScenarioSuite::default_suite(), spec);
  spec.jobs = 8;
  const BatchResult parallel =
      run_batch(default_registry(), ScenarioSuite::default_suite(), spec);
  EXPECT_EQ(serial.canonical(), parallel.canonical());
  // Online outcomes are feasible-by-admission: every cell must replay
  // its admitted subset cleanly even when it rejects flows.
  EXPECT_TRUE(serial.all_feasible());
}

TEST(BatchRunner, ParallelOracleVariantIsByteIdenticalToDcfsr) {
  // dcfsr_mt differs from dcfsr only in how the Frank-Wolfe oracle is
  // scheduled (worker pool vs sequential); the outcome must be
  // byte-identical — same rng stream, same relaxation, same rounding.
  ScenarioOptions options;
  options.num_flows = 12;
  const Instance instance =
      ScenarioSuite::default_suite().build("fat_tree/paper", 3, options);
  const SolverOutcome a = default_registry().create("dcfsr")->solve(instance);
  const SolverOutcome b = default_registry().create("dcfsr_mt")->solve(instance);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.lower_bound, b.lower_bound);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.stats, b.stats);
}

TEST(BatchRunner, OversubscribedThreadsStillDeterministic) {
  BatchSpec spec = small_spec();
  spec.solvers = {"edf", "greedy"};
  spec.jobs = 1;
  const BatchResult serial =
      run_batch(default_registry(), ScenarioSuite::default_suite(), spec);
  spec.jobs = 32;  // more workers than cells
  const BatchResult parallel =
      run_batch(default_registry(), ScenarioSuite::default_suite(), spec);
  EXPECT_EQ(serial.canonical(), parallel.canonical());
}

TEST(BatchRunner, ThrowingSolverBecomesAFailedCellNotACrash) {
  // An exact solver with a tiny assignment cap refuses the fat-tree
  // instance (many candidate paths per flow) but handles the line
  // topology (a single simple path per flow); the grid must carry both.
  SolverRegistry registry;
  registry.add("exact_tiny", [] {
    ExactDcfsrOptions tight;
    tight.max_assignments = 4;
    return std::make_unique<ExactSolver>(tight);
  });
  registry.add("mcf", [] { return std::make_unique<McfSolver>("mcf"); });

  BatchSpec spec;
  spec.solvers = {"exact_tiny", "mcf"};
  spec.scenarios = {"fat_tree/paper", "line/paper"};
  spec.seeds = {1};
  spec.options.num_flows = 4;
  spec.discard_schedules = true;
  const BatchResult result =
      run_batch(registry, ScenarioSuite::default_suite(), spec);

  ASSERT_EQ(result.cells.size(), 4u);
  const CellResult& failed = result.cells[0];  // fat_tree/paper, exact_tiny
  EXPECT_FALSE(failed.ran);
  EXPECT_FALSE(failed.error.empty());
  const CellResult& ok = result.cells[2];  // line/paper, exact_tiny
  EXPECT_TRUE(ok.ran) << ok.error;
  EXPECT_TRUE(ok.outcome.feasible);
  EXPECT_FALSE(result.all_feasible());

  ASSERT_EQ(result.solvers[0].solver, "exact_tiny");
  EXPECT_EQ(result.solvers[0].cells, 2);
  EXPECT_EQ(result.solvers[0].ran, 1);
  // The failure is visible in the canonical dump.
  EXPECT_NE(result.canonical().find("error="), std::string::npos);
  EXPECT_FALSE(result.table().empty());
}

TEST(BatchRunner, UnknownNamesFailFastBeforeAnyWork) {
  BatchSpec spec = small_spec();
  spec.solvers = {"mcf", "no_such_solver"};
  EXPECT_THROW((void)run_batch(default_registry(),
                               ScenarioSuite::default_suite(), spec),
               UnknownSolverError);

  spec = small_spec();
  spec.scenarios = {"no_such/scenario"};
  EXPECT_THROW((void)run_batch(default_registry(),
                               ScenarioSuite::default_suite(), spec),
               UnknownScenarioError);

  spec = small_spec();
  spec.solvers.clear();
  EXPECT_THROW((void)run_batch(default_registry(),
                               ScenarioSuite::default_suite(), spec),
               ContractViolation);
}

TEST(BatchRunner, EmptyGridIsNeverFeasible) {
  BatchResult result;
  EXPECT_FALSE(result.all_feasible());
}

}  // namespace
}  // namespace dcn::engine
