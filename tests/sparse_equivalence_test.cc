// Equivalence of the sparse Frank-Wolfe core against a faithful port of
// the seed's dense implementation: same total flows, same cost, same
// per-commodity flows (within float-noise tolerance) on fixed small
// instances. This is the guard rail for the sparse-core refactor — the
// sparse solver must be an optimization, not a behavioral change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "opt/convex_mcf.h"
#include "opt/line_search.h"
#include "power/power_model.h"
#include "topology/builders.h"

namespace dcn {
namespace {

// ---------------------------------------------------------------------------
// Dense reference solver: a line-for-line port of the seed
// solve_convex_mcf (dense commodity_flow matrix, full-graph Dijkstras,
// std::map source grouping, dense golden-section objective).

struct DenseSolution {
  std::vector<std::vector<double>> commodity_flow;
  std::vector<double> total_flow;
  double cost = 0.0;
  double relative_gap = 0.0;
  std::int32_t iterations = 0;
};

using DenseRow = std::vector<std::pair<EdgeId, double>>;

void dense_sparse_add(DenseRow& row, EdgeId e, double delta) {
  for (auto& [edge, value] : row) {
    if (edge == e) {
      value += delta;
      return;
    }
  }
  row.emplace_back(e, delta);
}

std::vector<Path> reference_cheapest_paths(const Graph& g,
                                           const std::vector<Commodity>& commodities,
                                           const std::vector<double>& weights) {
  std::vector<Path> out(commodities.size());
  std::map<NodeId, std::vector<std::size_t>> by_source;
  for (std::size_t c = 0; c < commodities.size(); ++c) {
    by_source[commodities[c].src].push_back(c);
  }
  for (const auto& [src, indices] : by_source) {
    const ShortestPathTree tree = dijkstra_tree(g, src, weights);
    for (std::size_t c : indices) {
      auto path = tree_path(g, tree, src, commodities[c].dst);
      EXPECT_TRUE(path.has_value());
      out[c] = std::move(*path);
    }
  }
  return out;
}

double reference_total_cost(const ConvexMcfProblem& problem,
                            const std::vector<double>& x) {
  double cost = 0.0;
  for (double xe : x) {
    if (xe > 1e-15) cost += problem.cost(xe);
  }
  return cost;
}

DenseSolution reference_solve(const ConvexMcfProblem& problem,
                              const FrankWolfeOptions& options,
                              const std::vector<std::vector<double>>* warm_start =
                                  nullptr) {
  const Graph& g = *problem.graph;
  const auto num_edges = static_cast<std::size_t>(g.num_edges());
  const std::size_t num_commodities = problem.commodities.size();

  DenseSolution sol;
  sol.total_flow.assign(num_edges, 0.0);
  if (num_commodities == 0) return sol;

  std::vector<DenseRow> rows(num_commodities);
  if (warm_start != nullptr && warm_start->size() == num_commodities) {
    for (std::size_t c = 0; c < num_commodities; ++c) {
      const auto& dense = (*warm_start)[c];
      for (std::size_t e = 0; e < num_edges; ++e) {
        if (dense[e] > 1e-15) rows[c].emplace_back(static_cast<EdgeId>(e), dense[e]);
      }
    }
  } else {
    std::vector<double> w0(num_edges,
                           std::max(problem.cost_derivative(0.0), problem.min_edge_weight));
    const std::vector<Path> paths =
        reference_cheapest_paths(g, problem.commodities, w0);
    for (std::size_t c = 0; c < num_commodities; ++c) {
      for (EdgeId e : paths[c].edges) {
        dense_sparse_add(rows[c], e, problem.commodities[c].demand);
      }
    }
  }
  for (std::size_t c = 0; c < num_commodities; ++c) {
    for (const auto& [e, v] : rows[c]) {
      sol.total_flow[static_cast<std::size_t>(e)] += v;
    }
  }

  std::vector<double> weights(num_edges, 0.0);
  std::vector<double> target_total(num_edges, 0.0);
  for (std::int32_t iter = 0; iter < options.max_iterations; ++iter) {
    sol.iterations = iter + 1;
    for (std::size_t e = 0; e < num_edges; ++e) {
      weights[e] = std::max(problem.cost_derivative(sol.total_flow[e]),
                            problem.min_edge_weight);
    }
    const std::vector<Path> target =
        reference_cheapest_paths(g, problem.commodities, weights);
    std::fill(target_total.begin(), target_total.end(), 0.0);
    for (std::size_t c = 0; c < num_commodities; ++c) {
      for (EdgeId e : target[c].edges) {
        target_total[static_cast<std::size_t>(e)] += problem.commodities[c].demand;
      }
    }
    double gap = 0.0;
    for (std::size_t e = 0; e < num_edges; ++e) {
      gap += weights[e] * (sol.total_flow[e] - target_total[e]);
    }
    const double current_cost = reference_total_cost(problem, sol.total_flow);
    sol.cost = current_cost;
    sol.relative_gap = current_cost > 0.0 ? gap / current_cost : 0.0;
    if (sol.relative_gap <= options.gap_tolerance) break;

    const auto& x = sol.total_flow;
    const auto& y = target_total;
    const double gamma = golden_section_minimize(
        [&](double t) {
          double c = 0.0;
          for (std::size_t e = 0; e < num_edges; ++e) {
            const double v = (1.0 - t) * x[e] + t * y[e];
            if (v > 1e-15) c += problem.cost(v);
          }
          return c;
        },
        0.0, 1.0, 1e-6);
    if (gamma <= 1e-12) break;

    for (std::size_t c = 0; c < num_commodities; ++c) {
      for (auto& [e, v] : rows[c]) v *= (1.0 - gamma);
      for (EdgeId e : target[c].edges) {
        dense_sparse_add(rows[c], e, gamma * problem.commodities[c].demand);
      }
      if (rows[c].size() > 256) {
        std::erase_if(rows[c], [](const auto& kv) { return kv.second < 1e-12; });
      }
    }
    for (std::size_t e = 0; e < num_edges; ++e) {
      sol.total_flow[e] = (1.0 - gamma) * sol.total_flow[e] + gamma * target_total[e];
    }
  }

  sol.cost = reference_total_cost(problem, sol.total_flow);
  sol.commodity_flow.assign(num_commodities, std::vector<double>(num_edges, 0.0));
  for (std::size_t c = 0; c < num_commodities; ++c) {
    for (const auto& [e, v] : rows[c]) {
      if (v > 1e-15) sol.commodity_flow[c][static_cast<std::size_t>(e)] = v;
    }
  }
  return sol;
}

// ---------------------------------------------------------------------------

void expect_equivalent(const ConvexMcfSolution& sparse, const DenseSolution& dense,
                       const Graph& g, double tol = 1e-9) {
  ASSERT_EQ(sparse.total_flow.size(), dense.total_flow.size());
  EXPECT_NEAR(sparse.cost, dense.cost, tol * (1.0 + std::abs(dense.cost)));
  EXPECT_EQ(sparse.iterations, dense.iterations);
  for (std::size_t e = 0; e < dense.total_flow.size(); ++e) {
    EXPECT_NEAR(sparse.total_flow[e], dense.total_flow[e], tol) << "edge " << e;
  }
  ASSERT_EQ(sparse.commodity_flow.size(), dense.commodity_flow.size());
  for (std::size_t c = 0; c < dense.commodity_flow.size(); ++c) {
    std::vector<double> row(static_cast<std::size_t>(g.num_edges()), 0.0);
    sparse_flow_accumulate(sparse.commodity_flow[c], row);
    for (std::size_t e = 0; e < row.size(); ++e) {
      EXPECT_NEAR(row[e], dense.commodity_flow[c][e], tol)
          << "commodity " << c << " edge " << e;
    }
  }
}

ConvexMcfProblem power_problem(const Graph& g, const PowerModel& model) {
  ConvexMcfProblem p;
  p.graph = &g;
  p.cost = [&model](double x) { return model.envelope(x); };
  p.cost_derivative = [&model](double x) { return model.envelope_derivative(x); };
  return p;
}

TEST(SparseEquivalence, LineNetworkQuadratic) {
  const Topology topo = line_network(5);
  ConvexMcfProblem p;
  p.graph = &topo.graph();
  p.cost = [](double x) { return x * x; };
  p.cost_derivative = [](double x) { return 2.0 * x; };
  p.commodities = {{0, 4, 3.0}, {1, 3, 1.5}, {0, 2, 0.25}, {2, 4, 2.0}};
  FrankWolfeOptions opts;
  opts.step_rule = FrankWolfeStepRule::kClassic;  // the dense reference's rule
  opts.max_iterations = 200;
  opts.gap_tolerance = 1e-7;
  const auto sparse = solve_convex_mcf(p, opts);
  const auto dense = reference_solve(p, opts);
  expect_equivalent(sparse, dense, topo.graph());
}

TEST(SparseEquivalence, FatTreeSpeedScaling) {
  const Topology topo = fat_tree(4);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  ConvexMcfProblem p = power_problem(topo.graph(), model);
  for (int i = 0; i < 8; ++i) {
    p.commodities.push_back({topo.hosts()[static_cast<std::size_t>(i)],
                             topo.hosts()[static_cast<std::size_t>(15 - i)],
                             0.5 + 0.35 * i});
  }
  // Shared sources exercise the batched multi-target Dijkstra path.
  p.commodities.push_back({topo.hosts()[0], topo.hosts()[5], 1.25});
  p.commodities.push_back({topo.hosts()[0], topo.hosts()[11], 0.75});
  FrankWolfeOptions opts;
  opts.step_rule = FrankWolfeStepRule::kClassic;  // the dense reference's rule
  opts.max_iterations = 150;
  opts.gap_tolerance = 1e-6;
  const auto sparse = solve_convex_mcf(p, opts);
  const auto dense = reference_solve(p, opts);
  expect_equivalent(sparse, dense, topo.graph());
}

TEST(SparseEquivalence, FatTreeQuartic) {
  const Topology topo = fat_tree(4);
  const PowerModel model = PowerModel::pure_speed_scaling(4.0);
  ConvexMcfProblem p = power_problem(topo.graph(), model);
  for (int i = 0; i < 6; ++i) {
    p.commodities.push_back({topo.hosts()[static_cast<std::size_t>(2 * i)],
                             topo.hosts()[static_cast<std::size_t>(15 - 2 * i)],
                             1.0 + 0.5 * i});
  }
  FrankWolfeOptions opts;
  opts.step_rule = FrankWolfeStepRule::kClassic;  // the dense reference's rule
  opts.max_iterations = 100;
  opts.gap_tolerance = 1e-5;
  const auto sparse = solve_convex_mcf(p, opts);
  const auto dense = reference_solve(p, opts);
  expect_equivalent(sparse, dense, topo.graph());
}

TEST(SparseEquivalence, WarmStartMatchesDenseWarmStart) {
  const Topology topo = fat_tree(4);
  ConvexMcfProblem p;
  p.graph = &topo.graph();
  p.cost = [](double x) { return x * x; };
  p.cost_derivative = [](double x) { return 2.0 * x; };
  for (int i = 0; i < 5; ++i) {
    p.commodities.push_back({topo.hosts()[static_cast<std::size_t>(i)],
                             topo.hosts()[static_cast<std::size_t>(10 + i)], 2.0});
  }
  FrankWolfeOptions opts;
  opts.step_rule = FrankWolfeStepRule::kClassic;  // the dense reference's rule
  opts.max_iterations = 120;
  opts.gap_tolerance = 1e-6;
  const auto cold_sparse = solve_convex_mcf(p, opts);
  const auto cold_dense = reference_solve(p, opts);
  expect_equivalent(cold_sparse, cold_dense, topo.graph());

  // Perturb the problem (one more commodity) and warm-start both solvers
  // from their cold solutions — the consecutive-interval pattern of
  // Algorithm 2.
  p.commodities.push_back({topo.hosts()[7], topo.hosts()[2], 1.0});
  std::vector<SparseEdgeFlow> sparse_warm = cold_sparse.commodity_flow;
  sparse_warm.push_back({});  // new commodity: no previous flow
  std::vector<std::vector<double>> dense_warm = cold_dense.commodity_flow;
  dense_warm.emplace_back(static_cast<std::size_t>(topo.graph().num_edges()), 0.0);
  // Seed semantics: a new commodity's warm row is its cheapest path
  // under empty-network weights.
  const std::vector<double> w0(static_cast<std::size_t>(topo.graph().num_edges()),
                               std::max(p.cost_derivative(0.0), p.min_edge_weight));
  const auto sp = dijkstra_shortest_path(topo.graph(), topo.hosts()[7],
                                         topo.hosts()[2], w0);
  ASSERT_TRUE(sp.has_value());
  for (EdgeId e : sp->edges) {
    sparse_warm.back().emplace_back(e, 1.0);
    dense_warm.back()[static_cast<std::size_t>(e)] = 1.0;
  }
  std::sort(sparse_warm.back().begin(), sparse_warm.back().end());

  const auto warm_sparse = solve_convex_mcf(p, opts, &sparse_warm);
  const auto warm_dense = reference_solve(p, opts, &dense_warm);
  expect_equivalent(warm_sparse, warm_dense, topo.graph());
}

TEST(SparseEquivalence, WorkspaceReuseAcrossSolvesIsTransparent) {
  // Solving a sequence of different instances through one workspace must
  // give the same answers as fresh solves.
  const Topology topo = fat_tree(4);
  ConvexMcfProblem p;
  p.graph = &topo.graph();
  p.cost = [](double x) { return x * x; };
  p.cost_derivative = [](double x) { return 2.0 * x; };
  FrankWolfeOptions opts;
  opts.max_iterations = 80;
  opts.gap_tolerance = 1e-6;

  ConvexMcfWorkspace ws;
  for (int round = 0; round < 4; ++round) {
    p.commodities.clear();
    for (int i = 0; i <= round + 1; ++i) {
      p.commodities.push_back(
          {topo.hosts()[static_cast<std::size_t>(i + round)],
           topo.hosts()[static_cast<std::size_t>(15 - i)], 1.0 + i + round});
    }
    const auto with_ws = solve_convex_mcf(p, opts, nullptr, &ws);
    const auto fresh = solve_convex_mcf(p, opts);
    ASSERT_EQ(with_ws.total_flow.size(), fresh.total_flow.size());
    EXPECT_EQ(with_ws.iterations, fresh.iterations);
    EXPECT_DOUBLE_EQ(with_ws.cost, fresh.cost);
    for (std::size_t e = 0; e < fresh.total_flow.size(); ++e) {
      EXPECT_DOUBLE_EQ(with_ws.total_flow[e], fresh.total_flow[e]) << "edge " << e;
    }
  }
}

TEST(SparseEquivalence, ParallelOracleIsByteIdenticalToSequential) {
  const Topology topo = fat_tree(4);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  ConvexMcfProblem p = power_problem(topo.graph(), model);
  for (int i = 0; i < 10; ++i) {
    p.commodities.push_back({topo.hosts()[static_cast<std::size_t>(i % 6)],
                             topo.hosts()[static_cast<std::size_t>(15 - i)],
                             0.5 + 0.3 * i});
  }
  FrankWolfeOptions sequential;
  sequential.max_iterations = 120;
  sequential.gap_tolerance = 1e-6;
  FrankWolfeOptions parallel = sequential;
  parallel.oracle_threads = 4;
  const auto seq = solve_convex_mcf(p, sequential);
  ConvexMcfWorkspace ws;  // also exercises pool reuse across solves
  for (int round = 0; round < 3; ++round) {
    const auto par = solve_convex_mcf(p, parallel, nullptr, &ws);
    EXPECT_EQ(par.iterations, seq.iterations);
    EXPECT_EQ(par.cost, seq.cost);  // bitwise, not just near
    ASSERT_EQ(par.total_flow.size(), seq.total_flow.size());
    for (std::size_t e = 0; e < seq.total_flow.size(); ++e) {
      EXPECT_EQ(par.total_flow[e], seq.total_flow[e]) << "edge " << e;
    }
    ASSERT_EQ(par.commodity_flow.size(), seq.commodity_flow.size());
    for (std::size_t c = 0; c < seq.commodity_flow.size(); ++c) {
      EXPECT_EQ(par.commodity_flow[c], seq.commodity_flow[c]) << "commodity " << c;
    }
  }
}

TEST(SparseEquivalence, CommodityRowsAreCanonical) {
  const Topology topo = fat_tree(4);
  ConvexMcfProblem p;
  p.graph = &topo.graph();
  p.cost = [](double x) { return x * x; };
  p.cost_derivative = [](double x) { return 2.0 * x; };
  p.commodities = {{topo.hosts()[0], topo.hosts()[9], 3.0},
                   {topo.hosts()[2], topo.hosts()[12], 1.5}};
  const auto sol = solve_convex_mcf(p);
  for (const SparseEdgeFlow& row : sol.commodity_flow) {
    EXPECT_FALSE(row.empty());
    for (std::size_t i = 0; i + 1 < row.size(); ++i) {
      EXPECT_LT(row[i].first, row[i + 1].first);  // sorted, no duplicates
    }
    for (const auto& [e, v] : row) {
      EXPECT_TRUE(topo.graph().valid_edge(e));
      EXPECT_GT(v, 1e-15);
    }
  }
}

}  // namespace
}  // namespace dcn
