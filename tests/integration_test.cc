// Integration tests: the full Fig. 2 pipeline (LB, SP+MCF, RS) on the
// paper's workload shape, cross-validated by the independent replayer.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.h"
#include "common/random.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "sim/replay.h"
#include "topology/builders.h"

namespace dcn {
namespace {

struct PipelineOutcome {
  double lb = 0.0;
  double rs = 0.0;
  double sp = 0.0;
};

PipelineOutcome run_pipeline(const Topology& topo, double alpha, int num_flows,
                             std::uint64_t seed) {
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(alpha);
  Rng rng(seed);
  PaperWorkloadParams params;
  params.num_flows = num_flows;
  const auto flows = paper_workload(topo, params, rng);

  const auto rs = random_schedule(g, flows, model, rng);
  EXPECT_TRUE(rs.capacity_feasible);
  const auto rs_replay = replay_schedule(g, flows, rs.schedule, model);
  EXPECT_TRUE(rs_replay.ok) << (rs_replay.issues.empty()
                                    ? ""
                                    : rs_replay.issues.front());

  const auto sp = sp_mcf(g, flows, model);
  const auto sp_replay = replay_schedule(g, flows, sp.schedule, model);
  EXPECT_TRUE(sp_replay.ok) << (sp_replay.issues.empty()
                                    ? ""
                                    : sp_replay.issues.front());

  return {rs.lower_bound_energy, rs_replay.energy, sp_replay.energy};
}

class PipelineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineTest, LowerBoundHoldsForBothAlgorithms) {
  const Topology topo = fat_tree(4);
  for (double alpha : {2.0, 4.0}) {
    const auto out = run_pipeline(topo, alpha, 24, GetParam());
    EXPECT_GE(out.rs, out.lb * (1.0 - 1e-6)) << "alpha=" << alpha;
    EXPECT_GE(out.sp, out.lb * (1.0 - 1e-6)) << "alpha=" << alpha;
    // The approximation ratio stays moderate on these low-load
    // instances (Fig. 2 reports roughly 1-3 for RS).
    EXPECT_LT(out.rs / out.lb, 10.0) << "alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineTest, ::testing::Values(101u, 202u, 303u));

TEST(Pipeline, RsBeatsSpOnCongestedSharedBottleneck) {
  // Many concurrent flows between the same pair of edge switches: SP
  // stacks them all on one path, RS spreads them across the fabric.
  // With sigma = 0 and alpha = 2, spreading must win.
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  std::vector<Flow> flows;
  for (int i = 0; i < 8; ++i) {
    // Same source/destination edge switches, distinct hosts where
    // possible (2 hosts per edge switch in fat_tree(4)).
    const NodeId src = topo.hosts()[static_cast<std::size_t>(i % 2)];
    const NodeId dst = topo.hosts()[static_cast<std::size_t>(14 + i % 2)];
    flows.push_back({i, src, dst, 10.0, 0.0, 10.0});
  }
  Rng rng(7);
  const auto rs = random_schedule(g, flows, model, rng);
  ASSERT_TRUE(rs.capacity_feasible);
  const auto sp = sp_mcf(g, flows, model);
  const double sp_energy = energy_phi_f(g, sp.schedule, model, flow_horizon(flows));
  EXPECT_LT(rs.energy, sp_energy);
}

TEST(Pipeline, IncastWorkloadEndToEnd) {
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  Rng rng(55);
  const auto flows = incast_workload(topo, 10, 4.0, {0.0, 20.0}, rng);
  const auto rs = random_schedule(g, flows, model, rng);
  ASSERT_TRUE(rs.capacity_feasible);
  const auto replay = replay_schedule(g, flows, rs.schedule, model);
  EXPECT_TRUE(replay.ok) << (replay.issues.empty() ? "" : replay.issues.front());
  EXPECT_GE(rs.energy, rs.lower_bound_energy * (1.0 - 1e-6));
}

TEST(Pipeline, ShuffleWorkloadEndToEnd) {
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  Rng rng(66);
  const auto flows = shuffle_workload(topo, 4, 4, 2.0, {0.0, 25.0}, rng);
  const auto rs = random_schedule(g, flows, model, rng);
  ASSERT_TRUE(rs.capacity_feasible);
  const auto sp = sp_mcf(g, flows, model);
  const auto sp_replay = replay_schedule(g, flows, sp.schedule, model);
  EXPECT_TRUE(sp_replay.ok);
  EXPECT_GE(sp_replay.energy, rs.lower_bound_energy * (1.0 - 1e-6));
}

TEST(Pipeline, WorksOnBCubeAndLeafSpine) {
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  for (const Topology& topo : {bcube(2, 1), leaf_spine(4, 2, 4)}) {
    Rng rng(88);
    PaperWorkloadParams params;
    params.num_flows = 10;
    params.horizon_hi = 20.0;
    const auto flows = paper_workload(topo, params, rng);
    const auto rs = random_schedule(topo.graph(), flows, model, rng);
    ASSERT_TRUE(rs.capacity_feasible) << topo.name();
    const auto replay = replay_schedule(topo.graph(), flows, rs.schedule, model);
    EXPECT_TRUE(replay.ok) << topo.name();
    EXPECT_GE(rs.energy, rs.lower_bound_energy * (1.0 - 1e-6)) << topo.name();
  }
}

TEST(Pipeline, GreedyBaselineAlsoBoundedByLb) {
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const PowerModel model(0.5, 1.0, 2.0);
  Rng rng(99);
  PaperWorkloadParams params;
  params.num_flows = 15;
  const auto flows = paper_workload(topo, params, rng);
  const auto relax = solve_relaxation(g, flows, model);
  const Schedule greedy = greedy_energy_aware(g, flows, model);
  const double greedy_energy =
      energy_phi_f(g, greedy, model, flow_horizon(flows));
  EXPECT_GE(greedy_energy, relax.lower_bound_energy * (1.0 - 1e-6));
}

}  // namespace
}  // namespace dcn
