// Tests for Random-Schedule (Algorithm 2).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "graph/shortest_path.h"
#include "sim/replay.h"
#include "topology/builders.h"

namespace dcn {
namespace {

TEST(RandomSchedule, SingleFlowPipelineEndToEnd) {
  const Topology topo = line_network(3);
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 1.0, 4.0}};
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  Rng rng(1);
  const auto result = random_schedule(topo.graph(), flows, model, rng);
  EXPECT_TRUE(result.capacity_feasible);
  // Unique route: schedule transmits at density 2 over [1,4) on 2 links.
  EXPECT_NEAR(result.energy, 2.0 * 4.0 * 3.0, 1e-3);
  EXPECT_NEAR(result.energy, result.lower_bound_energy,
              1e-3 * result.lower_bound_energy);
  const auto replay = replay_schedule(topo.graph(), flows, result.schedule, model);
  EXPECT_TRUE(replay.ok);
}

TEST(RandomSchedule, DensityScheduleMeetsEveryDeadlineByConstruction) {
  const Topology topo = fat_tree(4);
  Rng rng(3);
  PaperWorkloadParams params;
  params.num_flows = 12;
  const auto flows = paper_workload(topo, params, rng);
  std::vector<Path> paths;
  for (const Flow& fl : flows) {
    paths.push_back(*bfs_shortest_path(topo.graph(), fl.src, fl.dst));
  }
  const Schedule s = density_schedule(flows, paths);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_NEAR(s.flows[i].transmitted_volume(), flows[i].volume,
                1e-9 * flows[i].volume);
    EXPECT_EQ(s.flows[i].segments.front().interval, flows[i].span());
  }
}

TEST(RandomSchedule, SamplePathsRespectsDistribution) {
  // A two-candidate distribution 0.9 / 0.1: sampling should strongly
  // favor the heavy path.
  FlowCandidates cand;
  cand.paths = {{Path{0, 1, {0}}, 0.9}, {Path{0, 1, {2}}, 0.1}};
  Rng rng(17);
  int heavy = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto paths = sample_paths({cand}, rng);
    if (paths[0].edges[0] == 0) ++heavy;
  }
  EXPECT_NEAR(static_cast<double>(heavy) / 2000.0, 0.9, 0.04);
}

TEST(RandomSchedule, EnergyNeverBelowLowerBound) {
  const Topology topo = fat_tree(4);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    Rng rng(seed);
    PaperWorkloadParams params;
    params.num_flows = 15;
    params.horizon_hi = 40.0;
    const auto flows = paper_workload(topo, params, rng);
    const auto result = random_schedule(topo.graph(), flows, model, rng);
    EXPECT_GE(result.energy, result.lower_bound_energy * (1.0 - 1e-6))
        << "seed " << seed;
  }
}

TEST(RandomSchedule, DeterministicGivenSeed) {
  const Topology topo = fat_tree(4);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  PaperWorkloadParams params;
  params.num_flows = 10;
  Rng wl1(5), wl2(5);
  const auto flows1 = paper_workload(topo, params, wl1);
  const auto flows2 = paper_workload(topo, params, wl2);
  Rng rs1(99), rs2(99);
  const auto a = random_schedule(topo.graph(), flows1, model, rs1);
  const auto b = random_schedule(topo.graph(), flows2, model, rs2);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  EXPECT_EQ(a.rounding_attempts, b.rounding_attempts);
}

TEST(RandomSchedule, BestOfKNeverWorse) {
  const Topology topo = fat_tree(4);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  Rng rng(31);
  PaperWorkloadParams params;
  params.num_flows = 16;
  const auto flows = paper_workload(topo, params, rng);
  const auto relax = solve_relaxation(topo.graph(), flows, model);

  RandomScheduleOptions one;
  one.best_of = 1;
  RandomScheduleOptions ten;
  ten.best_of = 10;
  ten.max_rounding_attempts = 100;
  Rng r1(7), r10(7);
  const auto a = round_relaxation(topo.graph(), flows, model, relax, r1, one);
  const auto b = round_relaxation(topo.graph(), flows, model, relax, r10, ten);
  EXPECT_LE(b.energy, a.energy + 1e-9);
}

TEST(RandomSchedule, CapacityRejectionRetriesAndReports) {
  // Two flows, two parallel links, capacity fits exactly one density
  // each: any rounding putting both on one link is rejected.
  const Topology topo = parallel_links(2);
  const std::vector<Flow> flows{
      {0, 0, 1, 10.0, 0.0, 10.0},  // density 1
      {1, 0, 1, 10.0, 0.0, 10.0},
  };
  const PowerModel model(0.0, 1.0, 2.0, /*capacity=*/1.5);
  Rng rng(13);
  RandomScheduleOptions options;
  options.max_rounding_attempts = 200;
  const auto result = random_schedule(topo.graph(), flows, model, rng, options);
  EXPECT_TRUE(result.capacity_feasible);
  const auto replay = replay_schedule(topo.graph(), flows, result.schedule, model);
  EXPECT_TRUE(replay.ok) << (replay.issues.empty() ? "" : replay.issues.front());
  EXPECT_LE(replay.peak_rate, 1.5 + 1e-9);
}

TEST(RandomSchedule, ImpossibleCapacityReportsInfeasible) {
  const Topology topo = parallel_links(1);
  const std::vector<Flow> flows{
      {0, 0, 1, 10.0, 0.0, 10.0},
      {1, 0, 1, 10.0, 0.0, 10.0},
  };
  // One link, combined density 2 > capacity: no rounding can work.
  const PowerModel model(0.0, 1.0, 2.0, /*capacity=*/1.5);
  Rng rng(1);
  RandomScheduleOptions options;
  options.max_rounding_attempts = 5;
  const auto result = random_schedule(topo.graph(), flows, model, rng, options);
  EXPECT_FALSE(result.capacity_feasible);
  EXPECT_EQ(result.rounding_attempts, 5);
}

// Theorem 4 as a property: every rounding meets every deadline. Sweep
// seeds and both power exponents on the paper's workload shape.
struct Theorem4Params {
  std::uint64_t seed;
  double alpha;
};

class Theorem4Test : public ::testing::TestWithParam<Theorem4Params> {};

TEST_P(Theorem4Test, AllDeadlinesMet) {
  const auto [seed, alpha] = GetParam();
  const Topology topo = fat_tree(4);
  const PowerModel model = PowerModel::pure_speed_scaling(alpha);
  Rng rng(seed);
  PaperWorkloadParams params;
  params.num_flows = 20;
  const auto flows = paper_workload(topo, params, rng);
  const auto result = random_schedule(topo.graph(), flows, model, rng);
  ASSERT_TRUE(result.capacity_feasible);
  const auto replay = replay_schedule(topo.graph(), flows, result.schedule, model);
  EXPECT_TRUE(replay.ok) << (replay.issues.empty() ? "" : replay.issues.front());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_NEAR(replay.delivered[i], flows[i].volume, 1e-6 * flows[i].volume);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndAlphas, Theorem4Test,
    ::testing::Values(Theorem4Params{1, 2.0}, Theorem4Params{2, 2.0},
                      Theorem4Params{3, 2.0}, Theorem4Params{4, 4.0},
                      Theorem4Params{5, 4.0}, Theorem4Params{6, 4.0},
                      Theorem4Params{7, 3.0}, Theorem4Params{8, 1.5}));

}  // namespace
}  // namespace dcn
