// Tests for the Graph container and Path validation.
#include <gtest/gtest.h>

#include "common/contracts.h"
#include "graph/graph.h"
#include "graph/path.h"

namespace dcn {
namespace {

TEST(Graph, AddNodesAndEdges) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  EXPECT_EQ(g.num_nodes(), 2);
  const EdgeId e = g.add_edge(a, b);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge(e).src, a);
  EXPECT_EQ(g.edge(e).dst, b);
  ASSERT_EQ(g.out_edges(a).size(), 1u);
  EXPECT_EQ(g.out_edges(a)[0], e);
  ASSERT_EQ(g.in_edges(b).size(), 1u);
  EXPECT_EQ(g.in_edges(b)[0], e);
  EXPECT_TRUE(g.out_edges(b).empty());
}

TEST(Graph, BulkNodeCreation) {
  Graph g(5);
  EXPECT_EQ(g.num_nodes(), 5);
  const NodeId first = g.add_nodes(3);
  EXPECT_EQ(first, 5);
  EXPECT_EQ(g.num_nodes(), 8);
}

TEST(Graph, BidirectionalEdgesKnowTheirReverse) {
  Graph g(2);
  const auto [fwd, bwd] = g.add_bidirectional_edge(0, 1);
  EXPECT_EQ(g.reverse_edge(fwd), bwd);
  EXPECT_EQ(g.reverse_edge(bwd), fwd);
  const EdgeId solo = g.add_edge(0, 1);
  EXPECT_EQ(g.reverse_edge(solo), kInvalidEdge);
}

TEST(Graph, ParallelEdgesAreDistinct) {
  Graph g(2);
  const EdgeId e1 = g.add_edge(0, 1);
  const EdgeId e2 = g.add_edge(0, 1);
  EXPECT_NE(e1, e2);
  EXPECT_EQ(g.out_edges(0).size(), 2u);
}

TEST(Graph, ContractsRejectInvalidEndpoints) {
  Graph g(2);
  EXPECT_THROW((void)g.add_edge(0, 5), ContractViolation);
  EXPECT_THROW((void)g.add_edge(0, 0), ContractViolation);  // no self loops
  EXPECT_THROW((void)g.edge(3), ContractViolation);
  EXPECT_THROW((void)g.out_edges(-1), ContractViolation);
}

TEST(Path, ValidSimplePath) {
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  const EdgeId e23 = g.add_edge(2, 3);
  const Path p{0, 3, {e01, e12, e23}};
  EXPECT_TRUE(is_valid_path(g, p));
  EXPECT_EQ(p.length(), 3u);
  EXPECT_EQ(path_nodes(g, p), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Path, DisconnectedChainIsInvalid) {
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e23 = g.add_edge(2, 3);
  EXPECT_FALSE(is_valid_path(g, Path{0, 3, {e01, e23}}));
}

TEST(Path, WrongEndpointsAreInvalid) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  EXPECT_FALSE(is_valid_path(g, Path{0, 2, {e01}}));  // ends at 1, not 2
  EXPECT_FALSE(is_valid_path(g, Path{1, 1, {e01}}));  // starts at 0, not 1
}

TEST(Path, RepeatedNodeIsInvalid) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e10 = g.add_edge(1, 0);
  const EdgeId e01b = g.add_edge(0, 1);
  EXPECT_FALSE(is_valid_path(g, Path{0, 1, {e01, e10, e01b}}));
}

TEST(Path, EmptyPathValidOnlyWhenSrcEqualsDst) {
  Graph g(2);
  EXPECT_TRUE(is_valid_path(g, Path{0, 0, {}}));
  EXPECT_FALSE(is_valid_path(g, Path{0, 1, {}}));
}

TEST(Path, WeightSumsEdgeWeights) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  const std::vector<double> w{2.0, 3.5};
  EXPECT_DOUBLE_EQ(path_weight(Path{0, 2, {e01, e12}}, w), 5.5);
}

}  // namespace
}  // namespace dcn
