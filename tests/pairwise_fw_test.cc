// Pairwise (away-step) Frank-Wolfe — the repair for the warm-start
// last-mile stall.
//
// Three claims are pinned here:
//
//   1. Equivalence: at a tight gap tolerance the pairwise rule solves
//      the same convex programs to the same objective as the classic
//      rule (to 1e-7 relative — both gaps bound the distance from the
//      shared optimum) across a scenario grid.
//   2. The stall regression itself: on the documented warm-start
//      regime (tests/online_warm_start_test.cc — solve N flows, one
//      mouse arrives, re-solve N + 1 warm), pairwise needs strictly
//      fewer Frank-Wolfe iterations than classic, at every tolerance
//      the production paths use. Classic's step is one joint convex
//      combination across all commodities, so shedding the warm mass
//      the arrival made suboptimal decays only geometrically; the
//      pairwise step moves exactly that mass and nothing else.
//   3. Determinism: the pairwise trajectory is byte-identical under
//      the parallel linearization oracle (any thread count), and an
//      online BatchRunner grid over the pairwise-stepping online
//      solvers stays byte-identical for any --jobs (dcfsr_mt's
//      classic-rule parallel solves are covered by
//      sparse_equivalence/batch_runner tests).
//
// The departures-only fast path of the online scheduler rides along:
// completions between arrivals must be handled by a single gap check,
// not a full relaxation, and must not disturb admission invariants.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine/batch_runner.h"
#include "engine/instance.h"
#include "engine/registry.h"
#include "engine/scenario.h"
#include "mcf/relaxation.h"
#include "online/online_scheduler.h"
#include "power/power_model.h"
#include "topology/builders.h"

namespace dcn {
namespace {

using engine::Instance;
using engine::ScenarioOptions;
using engine::ScenarioSuite;

TEST(PairwiseFrankWolfe, MatchesClassicObjectiveAcrossScenarioGrid) {
  // At gap 1e-7 each solve is within 1e-7 of the common optimum, so
  // the objectives must agree to ~2e-7; the observed agreement is
  // ~1e-13 (classic's objective converges long before its zigzagging
  // gap estimate does — the generous classic iteration budget absorbs
  // that). The grid is restricted to instances where classic does
  // converge within the budget: on harder multipath instances (bcube
  // incast) classic stalls ~1e-4 from the optimum that pairwise
  // certifies, which is the stall this PR fixes, not an equivalence
  // failure.
  const ScenarioSuite& suite = ScenarioSuite::default_suite();
  for (const char* spec :
       {"fat_tree/incast", "fat_tree/shuffle", "leaf_spine/shuffle",
        "line/incast"}) {
    for (const std::uint64_t seed : {3ull, 5ull}) {
      ScenarioOptions sopt;
      sopt.num_flows = 10;
      const Instance inst = suite.build(spec, seed, sopt);

      RelaxationOptions classic;
      classic.frank_wolfe.step_rule = FrankWolfeStepRule::kClassic;
      classic.frank_wolfe.max_iterations = 2000;
      classic.frank_wolfe.gap_tolerance = 1e-7;
      RelaxationOptions pairwise = classic;
      pairwise.frank_wolfe.step_rule = FrankWolfeStepRule::kPairwise;

      const FractionalRelaxation a =
          solve_relaxation(inst.graph(), inst.flows(), inst.model(), classic);
      const FractionalRelaxation b =
          solve_relaxation(inst.graph(), inst.flows(), inst.model(), pairwise);
      const std::string tag = std::string(spec) + "#" + std::to_string(seed);
      EXPECT_NEAR(b.lower_bound_energy, a.lower_bound_energy,
                  1e-7 * a.lower_bound_energy)
          << tag;
      // Pairwise converges linearly where classic zigzags: it must
      // actually reach the tight tolerance.
      EXPECT_LE(b.mean_relative_gap, 1e-7) << tag;
    }
  }
}

/// The warm-start regime of online_warm_start_test: a tight prior
/// solve of the base instance, one mouse arrival on an existing hot
/// pair, warm re-solve of the grown instance.
struct WarmRegime {
  Instance instance;
  std::vector<Flow> grown;
  std::vector<SparseEdgeFlow> warm_rows;
  RelaxationWorkspace workspace;
};

WarmRegime make_warm_regime() {
  ScenarioOptions options;
  options.senders = 6;
  WarmRegime r{ScenarioSuite::default_suite().build("fat_tree/incast", 5,
                                                    options),
               {},
               {},
               {}};
  r.grown = r.instance.flows();
  Flow arrival = r.grown.back();
  arrival.id = static_cast<FlowId>(r.grown.size());
  arrival.volume *= 0.05;
  r.grown.push_back(arrival);

  RelaxationOptions tight;
  tight.frank_wolfe.max_iterations = 200;
  tight.frank_wolfe.gap_tolerance = 1e-4;
  const FractionalRelaxation prior =
      solve_relaxation(r.instance.graph(), r.instance.flows(),
                       r.instance.model(), tight, &r.workspace);
  r.warm_rows = prior.final_flow;
  r.warm_rows.emplace_back();  // the arrival starts cold
  return r;
}

TEST(PairwiseFrankWolfe, ShedsWarmMassInStrictlyFewerIterationsThanClassic) {
  WarmRegime r = make_warm_regime();
  // The production budget (2e-3: registry online_dcfsr) and tighter
  // tolerances where the classic stall grows without bound while
  // pairwise stays flat.
  for (const double tol : {2e-3, 1e-3, 3e-4, 1e-4}) {
    RelaxationOptions classic;
    classic.frank_wolfe.step_rule = FrankWolfeStepRule::kClassic;
    classic.frank_wolfe.max_iterations = 2000;
    classic.frank_wolfe.gap_tolerance = tol;
    RelaxationOptions pairwise = classic;
    pairwise.frank_wolfe.step_rule = FrankWolfeStepRule::kPairwise;

    const FractionalRelaxation warm_classic =
        solve_relaxation(r.instance.graph(), r.grown, r.instance.model(),
                         classic, &r.workspace, &r.warm_rows);
    const FractionalRelaxation warm_pairwise =
        solve_relaxation(r.instance.graph(), r.grown, r.instance.model(),
                         pairwise, &r.workspace, &r.warm_rows);

    EXPECT_LT(warm_pairwise.total_fw_iterations,
              warm_classic.total_fw_iterations)
        << "tolerance " << tol;
    // Same optimum, up to the shared gap tolerance.
    EXPECT_NEAR(warm_pairwise.lower_bound_energy,
                warm_classic.lower_bound_energy,
                2.0 * tol * warm_classic.lower_bound_energy)
        << "tolerance " << tol;
    EXPECT_LE(warm_pairwise.mean_relative_gap, tol) << "tolerance " << tol;
  }
}

TEST(PairwiseFrankWolfe, ParallelOracleIsByteIdentical) {
  WarmRegime r = make_warm_regime();
  RelaxationOptions pairwise;
  pairwise.frank_wolfe.max_iterations = 120;
  pairwise.frank_wolfe.gap_tolerance = 2e-3;
  pairwise.frank_wolfe.step_rule = FrankWolfeStepRule::kPairwise;
  const FractionalRelaxation serial =
      solve_relaxation(r.instance.graph(), r.grown, r.instance.model(),
                       pairwise, nullptr, &r.warm_rows);
  RelaxationOptions threaded = pairwise;
  threaded.frank_wolfe.oracle_threads = 4;
  const FractionalRelaxation parallel =
      solve_relaxation(r.instance.graph(), r.grown, r.instance.model(),
                       threaded, nullptr, &r.warm_rows);

  EXPECT_EQ(serial.lower_bound_energy, parallel.lower_bound_energy);
  EXPECT_EQ(serial.total_fw_iterations, parallel.total_fw_iterations);
  ASSERT_EQ(serial.final_flow.size(), parallel.final_flow.size());
  for (std::size_t i = 0; i < serial.final_flow.size(); ++i) {
    EXPECT_EQ(serial.final_flow[i], parallel.final_flow[i]) << i;
  }
}

TEST(PairwiseFrankWolfe, OnlineBatchGridIsJobsInvariant) {
  engine::BatchSpec spec;
  spec.solvers = {"online_dcfsr", "online_dcfsr_id", "oracle_dcfsr"};
  spec.scenarios = {"fat_tree/poisson", "leaf_spine/hadoop"};
  spec.seeds = {1, 2};
  spec.options.num_flows = 10;
  spec.options.capacity = 3.0;
  spec.options.arrival_rate = 3.0;

  spec.jobs = 1;
  const engine::BatchResult serial = engine::run_batch(
      engine::default_registry(), ScenarioSuite::default_suite(), spec);
  spec.jobs = 4;
  const engine::BatchResult parallel = engine::run_batch(
      engine::default_registry(), ScenarioSuite::default_suite(), spec);

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].outcome.energy, parallel.cells[i].outcome.energy)
        << i;
    EXPECT_EQ(serial.cells[i].outcome.stats, parallel.cells[i].outcome.stats)
        << i;
  }
}

TEST(OnlineActiveFlowIndex, PeakInFlightTracksWavesNotTotals) {
  // Three disjoint waves of two flows each, every wave completing
  // before the next arrives: the deadline-ordered active index must
  // never hold more than one wave, so the warm state the run keeps is
  // proportional to the flows in flight, not the offered total.
  const Topology topo = fat_tree(4);
  const std::vector<NodeId>& hosts = topo.hosts();
  std::vector<Flow> flows;
  for (int wave = 0; wave < 3; ++wave) {
    const double t = 100.0 * wave;
    flows.push_back(
        {static_cast<FlowId>(flows.size()), hosts[0], hosts[5], 20.0, t,
         t + 10.0});
    flows.push_back(
        {static_cast<FlowId>(flows.size()), hosts[1], hosts[6], 20.0, t,
         t + 10.0});
  }
  const PowerModel model(1.0, 1.0, 2.0, 8.0);
  OnlineOptions options;
  options.rounding.relaxation.frank_wolfe.max_iterations = 15;
  options.rounding.relaxation.frank_wolfe.gap_tolerance = 2e-3;
  Rng rng(17);
  const OnlineResult r = online_dcfsr(topo.graph(), flows, model, rng, options);
  EXPECT_EQ(r.num_admitted, 6);
  EXPECT_EQ(r.num_events, 3);
  EXPECT_EQ(r.peak_in_flight, 2);

  // Degenerate all-at-t=0 check of the same counter: everything is in
  // flight at once.
  std::vector<Flow> together;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    Flow fl = flows[i];
    fl.release = 0.0;
    fl.deadline = 10.0;
    together.push_back(fl);
  }
  Rng rng2(17);
  const OnlineResult all =
      online_dcfsr(topo.graph(), together, model, rng2, options);
  EXPECT_EQ(all.peak_in_flight, all.num_admitted);
}

TEST(OnlineDeparturesFastPath, CompletionWindowGetsGapCheckNotFullResolve) {
  // Two events: {A, B} arrive at t = 0, C arrives at t = 50. A
  // completes at t = 10 < 50 while B is still in flight, so the
  // completion window must be handled by exactly one single-iteration
  // gap check — and with the fast path disabled, by none.
  const Topology topo = fat_tree(4);
  const std::vector<NodeId>& hosts = topo.hosts();
  std::vector<Flow> flows;
  flows.push_back({0, hosts[0], hosts[5], 20.0, 0.0, 10.0});
  flows.push_back({1, hosts[1], hosts[6], 50.0, 0.0, 100.0});
  flows.push_back({2, hosts[2], hosts[7], 20.0, 50.0, 100.0});
  const PowerModel model(1.0, 1.0, 2.0, 8.0);

  for (const bool fast_path : {true, false}) {
    OnlineOptions options;
    options.rounding.relaxation.frank_wolfe.max_iterations = 15;
    options.rounding.relaxation.frank_wolfe.gap_tolerance = 2e-3;
    options.departures_fast_path = fast_path;
    Rng rng(17);
    const OnlineResult r =
        online_dcfsr(topo.graph(), flows, model, rng, options);

    EXPECT_EQ(r.num_events, 2);
    EXPECT_EQ(r.resolves, 2);  // full relaxations: one per arrival event
    EXPECT_EQ(r.num_admitted, 3);
    if (fast_path) {
      EXPECT_EQ(r.departure_gap_checks, 1);
      // One interval (B alone over [10, 100]) checked with a budget of
      // one iteration.
      EXPECT_EQ(r.gap_check_iterations, 1);
    } else {
      EXPECT_EQ(r.departure_gap_checks, 0);
      EXPECT_EQ(r.gap_check_iterations, 0);
    }
  }
}

}  // namespace
}  // namespace dcn
