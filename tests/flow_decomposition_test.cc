// Tests for the Raghavan-Tompson style path decomposition.
#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/flow_decomposition.h"
#include "graph/k_shortest.h"
#include "graph/shortest_path.h"
#include "topology/builders.h"

namespace dcn {
namespace {

TEST(FlowDecomposition, SinglePathFlow) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  std::vector<double> flow(static_cast<std::size_t>(g.num_edges()), 0.0);
  flow[static_cast<std::size_t>(e01)] = 2.0;
  flow[static_cast<std::size_t>(e12)] = 2.0;
  const auto paths = decompose_flow(g, 0, 2, flow, 2.0);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_DOUBLE_EQ(paths[0].weight, 1.0);
  EXPECT_EQ(paths[0].path.edges, (std::vector<EdgeId>{e01, e12}));
}

TEST(FlowDecomposition, SplitAcrossParallelRoutes) {
  Graph g(4);
  const EdgeId a1 = g.add_edge(0, 1);
  const EdgeId a2 = g.add_edge(1, 3);
  const EdgeId b1 = g.add_edge(0, 2);
  const EdgeId b2 = g.add_edge(2, 3);
  std::vector<double> flow(static_cast<std::size_t>(g.num_edges()), 0.0);
  flow[static_cast<std::size_t>(a1)] = 0.75;
  flow[static_cast<std::size_t>(a2)] = 0.75;
  flow[static_cast<std::size_t>(b1)] = 0.25;
  flow[static_cast<std::size_t>(b2)] = 0.25;
  const auto paths = decompose_flow(g, 0, 3, flow, 1.0);
  ASSERT_EQ(paths.size(), 2u);
  double total = 0.0;
  for (const auto& wp : paths) {
    EXPECT_TRUE(is_valid_path(g, wp.path));
    total += wp.weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // The heavier route carries 0.75.
  const double max_w = std::max(paths[0].weight, paths[1].weight);
  EXPECT_NEAR(max_w, 0.75, 1e-9);
}

TEST(FlowDecompositionSparse, MatchesDenseOnSplitFlow) {
  Graph g(4);
  const EdgeId a1 = g.add_edge(0, 1);
  const EdgeId a2 = g.add_edge(1, 3);
  const EdgeId b1 = g.add_edge(0, 2);
  const EdgeId b2 = g.add_edge(2, 3);
  std::vector<double> dense(static_cast<std::size_t>(g.num_edges()), 0.0);
  dense[static_cast<std::size_t>(a1)] = 0.75;
  dense[static_cast<std::size_t>(a2)] = 0.75;
  dense[static_cast<std::size_t>(b1)] = 0.25;
  dense[static_cast<std::size_t>(b2)] = 0.25;
  // Deliberately unsorted sparse row: the decomposition canonicalizes.
  const SparseEdgeFlow sparse{{b2, 0.25}, {a1, 0.75}, {b1, 0.25}, {a2, 0.75}};

  const auto from_dense = decompose_flow(g, 0, 3, dense, 1.0);
  const auto from_sparse = decompose_flow_sparse(g, 0, 3, sparse, 1.0);
  ASSERT_EQ(from_dense.size(), from_sparse.size());
  for (std::size_t i = 0; i < from_dense.size(); ++i) {
    EXPECT_EQ(from_dense[i].path.edges, from_sparse[i].path.edges);
    EXPECT_DOUBLE_EQ(from_dense[i].weight, from_sparse[i].weight);
  }
}

TEST(FlowDecompositionSparse, WalksOnlyTheSupportSubgraph) {
  // A big fat-tree, but a commodity whose flow touches one path: the
  // sparse decomposition never needs the rest of the graph.
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const NodeId src = topo.hosts()[0];
  const NodeId dst = topo.hosts()[15];
  const auto sp = bfs_shortest_path(g, src, dst);
  ASSERT_TRUE(sp.has_value());
  SparseEdgeFlow row;
  for (EdgeId e : sp->edges) row.emplace_back(e, 4.0);
  const auto paths = decompose_flow_sparse(g, src, dst, row, 4.0);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_DOUBLE_EQ(paths[0].weight, 1.0);
  EXPECT_EQ(paths[0].path.edges, sp->edges);
}

TEST(FlowDecompositionSparse, ContractsOnBadInput) {
  Graph g(2);
  g.add_edge(0, 1);
  const SparseEdgeFlow row{{0, 1.0}};
  EXPECT_THROW((void)decompose_flow_sparse(g, 0, 0, row, 1.0), ContractViolation);
  EXPECT_THROW((void)decompose_flow_sparse(g, 0, 1, row, 0.0), ContractViolation);
  const SparseEdgeFlow bad_edge{{7, 1.0}};
  EXPECT_THROW((void)decompose_flow_sparse(g, 0, 1, bad_edge, 1.0),
               ContractViolation);
  // No extractable path at all (empty support).
  EXPECT_THROW((void)decompose_flow_sparse(g, 0, 1, {}, 1.0), ContractViolation);
}

TEST(FlowDecomposition, ContractsOnBadInput) {
  Graph g(2);
  g.add_edge(0, 1);
  std::vector<double> flow{1.0};
  EXPECT_THROW((void)decompose_flow(g, 0, 0, flow, 1.0), ContractViolation);
  EXPECT_THROW((void)decompose_flow(g, 0, 1, flow, 0.0), ContractViolation);
  EXPECT_THROW((void)decompose_flow(g, 0, 1, std::vector<double>{}, 1.0),
               ContractViolation);
}

// Property: decomposing a random convex combination of known simple
// paths recovers weights that sum to 1 and only uses support edges.
class DecompositionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecompositionPropertyTest, RecoversConvexCombinations) {
  Rng rng(GetParam());
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const NodeId src = topo.hosts()[0];
  const NodeId dst = topo.hosts()[topo.hosts().size() - 1];

  const auto base_paths = equal_cost_paths(g, src, dst, 4);
  ASSERT_EQ(base_paths.size(), 4u);

  // Random convex combination.
  std::vector<double> mix(base_paths.size());
  double total = 0.0;
  for (double& m : mix) {
    m = rng.uniform(0.05, 1.0);
    total += m;
  }
  for (double& m : mix) m /= total;

  const double demand = rng.uniform(0.5, 10.0);
  std::vector<double> edge_flow(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (std::size_t p = 0; p < base_paths.size(); ++p) {
    for (EdgeId e : base_paths[p].edges) {
      edge_flow[static_cast<std::size_t>(e)] += mix[p] * demand;
    }
  }

  const auto out = decompose_flow(g, src, dst, edge_flow, demand);
  double weight_total = 0.0;
  for (const auto& wp : out) {
    EXPECT_TRUE(is_valid_path(g, wp.path));
    EXPECT_EQ(wp.path.src, src);
    EXPECT_EQ(wp.path.dst, dst);
    EXPECT_GT(wp.weight, 0.0);
    weight_total += wp.weight;
    // Only support edges may appear.
    for (EdgeId e : wp.path.edges) {
      EXPECT_GT(edge_flow[static_cast<std::size_t>(e)], 0.0);
    }
  }
  EXPECT_NEAR(weight_total, 1.0, 1e-9);
  // Every edge's flow is fully explained by the extracted paths.
  std::vector<double> reconstructed(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (const auto& wp : out) {
    for (EdgeId e : wp.path.edges) {
      reconstructed[static_cast<std::size_t>(e)] += wp.weight * demand;
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_NEAR(reconstructed[static_cast<std::size_t>(e)],
                edge_flow[static_cast<std::size_t>(e)], 1e-6 * demand);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompositionPropertyTest,
                         ::testing::Values(3u, 17u, 29u, 31u, 101u, 257u));

}  // namespace
}  // namespace dcn
