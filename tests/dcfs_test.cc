// Tests for Most-Critical-First (Algorithm 1), including the paper's
// Example 1 closed form.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.h"
#include "common/random.h"
#include "dcfs/most_critical_first.h"
#include "flow/workload.h"
#include "graph/shortest_path.h"
#include "schedule/schedule.h"
#include "sim/replay.h"
#include "speedscale/yds.h"
#include "topology/builders.h"

namespace dcn {
namespace {

std::vector<Path> bfs_paths(const Graph& g, const std::vector<Flow>& flows) {
  std::vector<Path> paths;
  for (const Flow& fl : flows) {
    auto p = bfs_shortest_path(g, fl.src, fl.dst);
    EXPECT_TRUE(p.has_value());
    paths.push_back(std::move(*p));
  }
  return paths;
}

TEST(MostCriticalFirst, PaperExampleOneClosedForm) {
  // Line network A-B-C, f(x) = x^2. Flows:
  //   j1 = (A -> C, r=2, d=4, w=6),  j2 = (A -> B, r=1, d=3, w=8).
  // Optimal: sqrt(2) * s1 = s2 = (8 + 6 sqrt 2) / 3.
  const Topology topo = line_network(3);
  const Graph& g = topo.graph();
  const std::vector<Flow> flows{
      {0, 0, 2, 6.0, 2.0, 4.0},  // j1
      {1, 0, 1, 8.0, 1.0, 3.0},  // j2
  };
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  const DcfsResult r = most_critical_first(g, flows, bfs_paths(g, flows), model);

  const double s2_expected = (8.0 + 6.0 * std::sqrt(2.0)) / 3.0;
  EXPECT_NEAR(r.rates[1], s2_expected, 1e-9);
  EXPECT_NEAR(r.rates[0] * std::sqrt(2.0), s2_expected, 1e-9);

  // The objective from the example: Phi = 2*6*s1 + 8*s2 (Phi_g form
  // w_i |P_i| s_i^(alpha-1) with alpha = 2).
  const double phi = 2.0 * 6.0 * r.rates[0] + 8.0 * r.rates[1];
  const Interval horizon{1.0, 4.0};
  EXPECT_NEAR(energy_phi_g(g, r.schedule, model, horizon), phi, 1e-9);

  // EDF order inside the critical interval: j2 (deadline 3) first, from
  // t=1, then j1 finishes exactly at its deadline 4.
  const auto report = check_feasibility(g, flows, r.schedule, model);
  EXPECT_TRUE(report.feasible) << (report.violations.empty()
                                       ? ""
                                       : report.violations.front());
  const double j2_finish = 1.0 + 8.0 / r.rates[1];
  EXPECT_NEAR(r.schedule.flows[1].segments.back().interval.hi, j2_finish, 1e-9);
  EXPECT_NEAR(r.schedule.flows[0].segments.back().interval.hi, 4.0, 1e-9);
}

TEST(MostCriticalFirst, SingleLinkReducesToYds) {
  // All flows on one link: virtual weights equal plain weights and the
  // schedule must match the plain YDS energy.
  const Topology topo = line_network(2);
  const Graph& g = topo.graph();
  const std::vector<Flow> flows{
      {0, 0, 1, 5.0, 0.0, 4.0},
      {1, 0, 1, 3.0, 1.0, 3.0},
      {2, 0, 1, 2.0, 2.0, 8.0},
  };
  const PowerModel model = PowerModel::pure_speed_scaling(3.0);
  const DcfsResult r = most_critical_first(g, flows, bfs_paths(g, flows), model);

  std::vector<SsJob> jobs;
  for (const Flow& fl : flows) jobs.push_back({fl.id, fl.volume, fl.span()});
  const SsSchedule yds = yds_schedule(jobs);

  EXPECT_NEAR(energy_phi_g(g, r.schedule, model, flow_horizon(flows)),
              yds.energy(3.0), 1e-6);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_NEAR(r.rates[i], yds.jobs[i].speed, 1e-9);
  }
}

TEST(MostCriticalFirst, IsolatedFlowRunsAtDensity) {
  // A flow alone in the network transmits at its density (Lemma 2).
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const std::vector<Flow> flows{{0, topo.hosts()[0], topo.hosts()[5], 12.0, 0.0, 6.0}};
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  const DcfsResult r = most_critical_first(g, flows, bfs_paths(g, flows), model);
  EXPECT_NEAR(r.rates[0], 2.0, 1e-9);
  EXPECT_NEAR(r.schedule.flows[0].transmission_time(), 6.0, 1e-9);
}

TEST(MostCriticalFirst, DisjointFlowsAllRunAtDensity) {
  // Flows on disjoint paths never interact: each runs at density.
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  // Host pairs under different edge switches in different pods.
  const std::vector<Flow> flows{
      {0, topo.hosts()[0], topo.hosts()[1], 10.0, 0.0, 5.0},   // same edge switch
      {1, topo.hosts()[4], topo.hosts()[5], 6.0, 1.0, 4.0},    // another pod pair
  };
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  const DcfsResult r = most_critical_first(g, flows, bfs_paths(g, flows), model);
  EXPECT_NEAR(r.rates[0], 2.0, 1e-9);
  EXPECT_NEAR(r.rates[1], 2.0, 1e-9);
}

TEST(MostCriticalFirst, VirtualWeightBiasesAgainstLongPaths) {
  // Two flows over a shared link; one continues over a second hop. With
  // alpha = 2 the optimum satisfies sqrt(|P1|) s1 = sqrt(|P2|) s2 inside
  // a shared critical interval (Eq. 12).
  const Topology topo = line_network(3);
  const Graph& g = topo.graph();
  const std::vector<Flow> flows{
      {0, 0, 2, 6.0, 0.0, 3.0},  // two hops
      {1, 0, 1, 6.0, 0.0, 3.0},  // one hop
  };
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  const DcfsResult r = most_critical_first(g, flows, bfs_paths(g, flows), model);
  EXPECT_NEAR(std::sqrt(2.0) * r.rates[0], std::sqrt(1.0) * r.rates[1], 1e-9);
  // Both fit exactly into [0,3] on the shared link.
  EXPECT_NEAR(6.0 / r.rates[0] + 6.0 / r.rates[1], 3.0, 1e-9);
}

TEST(MostCriticalFirst, EnergyMatchesAnalyticForm) {
  // Phi_g = sum_i |P_i| w_i s_i^(alpha-1) for every instance.
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  Rng rng(99);
  PaperWorkloadParams params;
  params.num_flows = 25;
  params.horizon_hi = 20.0;
  const auto flows = paper_workload(topo, params, rng);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  const auto paths = bfs_paths(g, flows);
  const DcfsResult r = most_critical_first(g, flows, paths, model);

  double analytic = 0.0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    analytic += static_cast<double>(paths[i].length()) * flows[i].volume *
                std::pow(r.rates[i], model.alpha() - 1.0);
  }
  const double measured = energy_phi_g(g, r.schedule, model, flow_horizon(flows));
  if (r.availability_fallbacks == 0) {
    // Overlap-free schedule: the timeline energy equals the analytic
    // optimum form exactly.
    EXPECT_NEAR(measured, analytic, 1e-6 * analytic);
  } else {
    // Fallback overlaps only ever add superadditive cost.
    EXPECT_GE(measured, analytic * (1.0 - 1e-9));
  }
}

TEST(MostCriticalFirst, ContractsOnMismatchedInputs) {
  const Topology topo = line_network(3);
  const Graph& g = topo.graph();
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 2.0, 4.0}};
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  EXPECT_THROW((void)most_critical_first(g, flows, {}, model), ContractViolation);
  // Path that does not match the flow's endpoints.
  std::vector<Path> wrong{Path{0, 1, {0}}};
  EXPECT_THROW((void)most_critical_first(g, flows, wrong, model),
               ContractViolation);
}

// Property sweep: on random low-load instances, Most-Critical-First
// produces feasible schedules (every deadline met, volumes moved) whose
// replayed energy matches the analytic evaluator.
class McfPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McfPropertyTest, FeasibleAndConsistentOnRandomInstances) {
  Rng rng(GetParam());
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  PaperWorkloadParams params;
  params.num_flows = 30;
  const auto flows = paper_workload(topo, params, rng);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  const DcfsResult r = most_critical_first(g, flows, bfs_paths(g, flows), model);

  const auto report = check_feasibility(g, flows, r.schedule, model);
  EXPECT_TRUE(report.feasible) << (report.violations.empty()
                                       ? ""
                                       : report.violations.front());
  const auto replay = replay_schedule(g, flows, r.schedule, model);
  EXPECT_TRUE(replay.ok) << (replay.issues.empty() ? "" : replay.issues.front());
  EXPECT_NEAR(replay.energy,
              energy_phi_f(g, r.schedule, model, flow_horizon(flows)),
              1e-6 * std::max(1.0, replay.energy));
}

INSTANTIATE_TEST_SUITE_P(Seeds, McfPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u));

}  // namespace
}  // namespace dcn
