// Tests for BFS and Dijkstra searches.
#include <gtest/gtest.h>

#include "graph/shortest_path.h"
#include "topology/builders.h"

namespace dcn {
namespace {

Graph diamond() {
  // 0 -> 1 -> 3 (weights 1 + 1) and 0 -> 2 -> 3 (weights 3 + 0.5).
  Graph g(4);
  g.add_edge(0, 1);  // e0
  g.add_edge(1, 3);  // e1
  g.add_edge(0, 2);  // e2
  g.add_edge(2, 3);  // e3
  return g;
}

TEST(BfsShortestPath, FindsFewestHops) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 4);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  const auto p = bfs_shortest_path(g, 0, 4);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 2u);
  EXPECT_TRUE(is_valid_path(g, *p));
}

TEST(BfsShortestPath, UnreachableReturnsNullopt) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(bfs_shortest_path(g, 0, 2).has_value());
  // Directed: 1 cannot reach 0.
  EXPECT_FALSE(bfs_shortest_path(g, 1, 0).has_value());
}

TEST(BfsShortestPath, SrcEqualsDst) {
  Graph g(2);
  g.add_edge(0, 1);
  const auto p = bfs_shortest_path(g, 0, 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

TEST(Dijkstra, PrefersCheaperLongerRoute) {
  const Graph g = diamond();
  const std::vector<double> w{1.0, 1.0, 3.0, 0.5};
  const auto p = dijkstra_shortest_path(g, 0, 3, w);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->edges, (std::vector<EdgeId>{0, 1}));  // cost 2 < 3.5

  const std::vector<double> w2{5.0, 5.0, 3.0, 0.5};
  const auto p2 = dijkstra_shortest_path(g, 0, 3, w2);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->edges, (std::vector<EdgeId>{2, 3}));  // cost 3.5 < 10
}

TEST(Dijkstra, RejectsNegativeWeights) {
  const Graph g = diamond();
  const std::vector<double> w{1.0, -1.0, 3.0, 0.5};
  EXPECT_THROW((void)dijkstra_shortest_path(g, 0, 3, w), ContractViolation);
}

TEST(Dijkstra, TreeDistancesMatchPathWeights) {
  const Graph g = diamond();
  const std::vector<double> w{1.0, 1.0, 3.0, 0.5};
  const ShortestPathTree tree = dijkstra_tree(g, 0, w);
  EXPECT_DOUBLE_EQ(tree.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(tree.distance[1], 1.0);
  EXPECT_DOUBLE_EQ(tree.distance[2], 3.0);
  EXPECT_DOUBLE_EQ(tree.distance[3], 2.0);
  const auto p = tree_path(g, tree, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(path_weight(*p, w), tree.distance[3]);
}

TEST(DijkstraWorkspaceSweep, FullSweepMatchesTree) {
  const Graph g = diamond();
  const std::vector<double> w{1.0, 1.0, 3.0, 0.5};
  CsrAdjacency adj;
  adj.build(g);
  DijkstraWorkspace ws;
  dijkstra_sweep(adj, 0, w, {}, ws);
  const ShortestPathTree tree = dijkstra_tree(g, 0, w);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(ws.distance(v), tree.distance[static_cast<std::size_t>(v)]);
    EXPECT_EQ(ws.parent_edge(v), tree.parent_edge[static_cast<std::size_t>(v)]);
  }
  const auto p = workspace_path(g, ws, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->edges, (std::vector<EdgeId>{0, 1}));
}

TEST(DijkstraWorkspaceSweep, EarlyExitSettledTargetsMatchFullSweep) {
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  std::vector<double> w(static_cast<std::size_t>(g.num_edges()));
  for (std::size_t e = 0; e < w.size(); ++e) {
    w[e] = 1.0 + 0.01 * static_cast<double>(e % 7);
  }
  const NodeId src = topo.hosts()[0];
  const std::vector<NodeId> targets{topo.hosts()[3], topo.hosts()[9],
                                    topo.hosts()[9], topo.hosts()[14]};
  CsrAdjacency adj;
  adj.build(g);
  DijkstraWorkspace ws;
  dijkstra_sweep(adj, src, w, targets, ws);
  const ShortestPathTree full = dijkstra_tree(g, src, w);
  for (const NodeId t : targets) {
    EXPECT_DOUBLE_EQ(ws.distance(t), full.distance[static_cast<std::size_t>(t)]);
    const auto p = workspace_path(g, ws, src, t);
    const auto q = tree_path(g, full, src, t);
    ASSERT_TRUE(p.has_value());
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(p->edges, q->edges);
  }
}

TEST(DijkstraWorkspaceSweep, GenerationStampsInvalidateOldSweeps) {
  const Graph g = diamond();
  const std::vector<double> w{1.0, 1.0, 3.0, 0.5};
  CsrAdjacency adj;
  adj.build(g);
  DijkstraWorkspace ws;
  dijkstra_sweep(adj, 0, w, {}, ws);
  EXPECT_DOUBLE_EQ(ws.distance(3), 2.0);
  // A sweep from node 2 reaches only node 3; stale node-1 state from the
  // previous sweep must read as unreached.
  dijkstra_sweep(adj, 2, w, {}, ws);
  EXPECT_DOUBLE_EQ(ws.distance(2), 0.0);
  EXPECT_DOUBLE_EQ(ws.distance(3), 0.5);
  EXPECT_EQ(ws.distance(1), kInfiniteDistance);
  EXPECT_EQ(ws.parent_edge(1), kInvalidEdge);
  EXPECT_FALSE(workspace_path(g, ws, 2, 1).has_value());
}

TEST(DijkstraWorkspaceSweep, EarlyExitWhenSourceIsTheTarget) {
  const Graph g = diamond();
  const std::vector<double> w{1.0, 1.0, 3.0, 0.5};
  CsrAdjacency adj;
  adj.build(g);
  DijkstraWorkspace ws;
  const std::vector<NodeId> targets{0};
  dijkstra_sweep(adj, 0, w, targets, ws);
  const auto p = workspace_path(g, ws, 0, 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

TEST(DijkstraWorkspaceSweep, AdaptsToGraphSizeChanges) {
  DijkstraWorkspace ws;
  const Graph small = diamond();
  CsrAdjacency small_adj;
  small_adj.build(small);
  dijkstra_sweep(small_adj, 0, {1.0, 1.0, 3.0, 0.5}, {}, ws);
  EXPECT_DOUBLE_EQ(ws.distance(3), 2.0);

  const Topology topo = fat_tree(4);
  const Graph& big = topo.graph();
  CsrAdjacency big_adj;
  big_adj.build(big);
  const std::vector<double> w(static_cast<std::size_t>(big.num_edges()), 1.0);
  dijkstra_sweep(big_adj, topo.hosts()[0], w, {}, ws);
  EXPECT_DOUBLE_EQ(ws.distance(topo.hosts()[0]), 0.0);
  EXPECT_DOUBLE_EQ(ws.distance(topo.hosts()[15]), 6.0);
}

TEST(DijkstraWorkspaceSweep, LeafSkipOnlyAppliesToTargetedSweeps) {
  // Full sweeps must still settle leaves (hosts); targeted sweeps skip
  // non-target leaves and report them unreached.
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  CsrAdjacency adj;
  adj.build(g);
  const std::vector<double> w(static_cast<std::size_t>(g.num_edges()), 1.0);
  const NodeId src = topo.hosts()[0];
  const NodeId other_host = topo.hosts()[7];
  const NodeId target = topo.hosts()[15];
  DijkstraWorkspace ws;
  dijkstra_sweep(adj, src, w, {}, ws);
  EXPECT_LT(ws.distance(other_host), kInfiniteDistance);
  const std::vector<NodeId> targets{target};
  dijkstra_sweep(adj, src, w, targets, ws);
  EXPECT_DOUBLE_EQ(ws.distance(target), 6.0);
  EXPECT_EQ(ws.distance(other_host), kInfiniteDistance);  // skipped leaf
}

TEST(BfsDistances, LineGraphDistances) {
  const Topology topo = line_network(5);
  const auto dist = bfs_distances(topo.graph(), 0);
  EXPECT_EQ(dist, (std::vector<std::int32_t>{0, 1, 2, 3, 4}));
}

TEST(StrongConnectivity, BidirectionalTopologiesAreStronglyConnected) {
  EXPECT_TRUE(is_strongly_connected(fat_tree(4).graph()));
  EXPECT_TRUE(is_strongly_connected(line_network(6).graph()));
  EXPECT_TRUE(is_strongly_connected(bcube(2, 1).graph()));
}

TEST(StrongConnectivity, DirectedChainIsNot) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(is_strongly_connected(g));
}

// Property sweep: on fat-tree(k), BFS host-to-host distances follow the
// standard pattern (2 hops same edge switch, 4 same pod, 6 across pods),
// counting the two host links.
class FatTreePathTest : public ::testing::TestWithParam<int> {};

TEST_P(FatTreePathTest, HostDistancesFollowFatTreeStructure) {
  const int k = GetParam();
  const Topology topo = fat_tree(k);
  const Graph& g = topo.graph();
  const auto& hosts = topo.hosts();
  const int half = k / 2;
  const int hosts_per_pod = half * half;
  // Sample a few representative pairs.
  const NodeId h0 = hosts[0];
  const NodeId same_edge = hosts[1];
  const NodeId same_pod = hosts[static_cast<std::size_t>(half)];
  const NodeId other_pod = hosts[static_cast<std::size_t>(hosts_per_pod)];

  const auto d_edge = bfs_shortest_path(g, h0, same_edge);
  const auto d_pod = bfs_shortest_path(g, h0, same_pod);
  const auto d_cross = bfs_shortest_path(g, h0, other_pod);
  ASSERT_TRUE(d_edge && d_pod && d_cross);
  EXPECT_EQ(d_edge->length(), 2u);
  EXPECT_EQ(d_pod->length(), 4u);
  EXPECT_EQ(d_cross->length(), 6u);
}

INSTANTIATE_TEST_SUITE_P(Ks, FatTreePathTest, ::testing::Values(4, 6, 8));

}  // namespace
}  // namespace dcn
