// Tests for the baseline routers and schedulers.
#include <gtest/gtest.h>

#include <set>

#include "baselines/baselines.h"
#include "common/random.h"
#include "flow/workload.h"
#include "sim/replay.h"
#include "topology/builders.h"

namespace dcn {
namespace {

TEST(ShortestPathRouting, ProducesValidMinimalPaths) {
  const Topology topo = fat_tree(4);
  Rng rng(2);
  PaperWorkloadParams params;
  params.num_flows = 20;
  const auto flows = paper_workload(topo, params, rng);
  const auto paths = shortest_path_routing(topo.graph(), flows);
  ASSERT_EQ(paths.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_TRUE(is_valid_path(topo.graph(), paths[i]));
    EXPECT_EQ(paths[i].src, flows[i].src);
    EXPECT_EQ(paths[i].dst, flows[i].dst);
    EXPECT_LE(paths[i].length(), 6u);  // fat-tree diameter
  }
}

TEST(EcmpRouting, SpreadsAcrossEqualCostPaths) {
  const Topology topo = fat_tree(4);
  // Many flows between the same cross-pod pair: ECMP should use more
  // than one of the 4 equal-cost paths.
  std::vector<Flow> flows;
  for (int i = 0; i < 20; ++i) {
    flows.push_back({i, topo.hosts()[0], topo.hosts()[15], 1.0, 0.0, 10.0});
  }
  Rng rng(5);
  const auto paths = ecmp_routing(topo.graph(), flows, 8, rng);
  std::set<std::vector<EdgeId>> distinct;
  for (const Path& p : paths) {
    EXPECT_TRUE(is_valid_path(topo.graph(), p));
    EXPECT_EQ(p.length(), 6u);
    distinct.insert(p.edges);
  }
  EXPECT_GT(distinct.size(), 1u);
  EXPECT_LE(distinct.size(), 4u);  // only (k/2)^2 = 4 exist
}

TEST(SpMcf, FeasibleAndReplayConsistent) {
  const Topology topo = fat_tree(4);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  Rng rng(9);
  PaperWorkloadParams params;
  params.num_flows = 25;
  const auto flows = paper_workload(topo, params, rng);
  const auto result = sp_mcf(topo.graph(), flows, model);
  const auto replay = replay_schedule(topo.graph(), flows, result.schedule, model);
  EXPECT_TRUE(replay.ok) << (replay.issues.empty() ? "" : replay.issues.front());
  EXPECT_NEAR(replay.energy,
              energy_phi_f(topo.graph(), result.schedule, model, flow_horizon(flows)),
              1e-6 * replay.energy);
}

TEST(EcmpMcf, FeasibleOnRandomInstances) {
  const Topology topo = fat_tree(4);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  Rng wl(10);
  PaperWorkloadParams params;
  params.num_flows = 15;
  const auto flows = paper_workload(topo, params, wl);
  Rng rng(11);
  const auto result = ecmp_mcf(topo.graph(), flows, model, 8, rng);
  const auto replay = replay_schedule(topo.graph(), flows, result.schedule, model);
  EXPECT_TRUE(replay.ok) << (replay.issues.empty() ? "" : replay.issues.front());
}

TEST(GreedyEnergyAware, FeasibleAndDeadlineMeeting) {
  const Topology topo = fat_tree(4);
  const PowerModel model(1.0, 1.0, 2.0);
  Rng rng(12);
  PaperWorkloadParams params;
  params.num_flows = 20;
  const auto flows = paper_workload(topo, params, rng);
  const Schedule s = greedy_energy_aware(topo.graph(), flows, model);
  const auto replay = replay_schedule(topo.graph(), flows, s, model);
  EXPECT_TRUE(replay.ok) << (replay.issues.empty() ? "" : replay.issues.front());
}

TEST(GreedyEnergyAware, ConsolidatesWhenIdlePowerDominates) {
  // Two flows between the same pair over parallel links with huge
  // sigma: the greedy should stack them on one link (2 active directed
  // edges would double idle cost).
  const Topology topo = parallel_links(2);
  const PowerModel model(/*sigma=*/50.0, /*mu=*/1.0, /*alpha=*/2.0);
  const std::vector<Flow> flows{
      {0, 0, 1, 1.0, 0.0, 10.0},
      {1, 0, 1, 1.0, 0.0, 10.0},
  };
  const Schedule s = greedy_energy_aware(topo.graph(), flows, model);
  EXPECT_EQ(s.flows[0].path.edges, s.flows[1].path.edges);
}

TEST(GreedyEnergyAware, SpreadsWhenDynamicPowerDominates) {
  // With sigma = 0 and alpha = 2, splitting halves the dynamic energy.
  const Topology topo = parallel_links(2);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  const std::vector<Flow> flows{
      {0, 0, 1, 10.0, 0.0, 10.0},
      {1, 0, 1, 10.0, 0.0, 10.0},
  };
  const Schedule s = greedy_energy_aware(topo.graph(), flows, model);
  EXPECT_NE(s.flows[0].path.edges, s.flows[1].path.edges);
}

TEST(Baselines, SpMcfEnergyIsDeterministic) {
  const Topology topo = fat_tree(4);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  Rng wl1(77), wl2(77);
  PaperWorkloadParams params;
  params.num_flows = 10;
  const auto flows1 = paper_workload(topo, params, wl1);
  const auto flows2 = paper_workload(topo, params, wl2);
  const auto a = sp_mcf(topo.graph(), flows1, model);
  const auto b = sp_mcf(topo.graph(), flows2, model);
  EXPECT_DOUBLE_EQ(
      energy_phi_f(topo.graph(), a.schedule, model, flow_horizon(flows1)),
      energy_phi_f(topo.graph(), b.schedule, model, flow_horizon(flows2)));
}

}  // namespace
}  // namespace dcn
