// Tests for streaming statistics.
#include <gtest/gtest.h>

#include "common/contracts.h"
#include "common/stats.h"

namespace dcn {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, CiShrinksWithSamples) {
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : 2.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : 2.0);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.2), 1.0);
}

TEST(Percentile, ContractsOnBadInput) {
  EXPECT_THROW((void)percentile({}, 0.5), ContractViolation);
  EXPECT_THROW((void)percentile({1.0}, 1.5), ContractViolation);
}

TEST(FormatMeanCi, ContainsBothNumbers) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  const std::string out = format_mean_ci(s, 2);
  EXPECT_NE(out.find("2.00"), std::string::npos);
  EXPECT_NE(out.find("+/-"), std::string::npos);
}

}  // namespace
}  // namespace dcn
