// Build smoke test: every public header compiles and links together.
//
// Keep this list in sync with `find src -name '*.h'` — the test is the
// all-headers-link invariant, so a header missing here is a hole in the
// invariant.
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "common/contracts.h"
#include "common/errors.h"
#include "common/interval.h"
#include "common/parallel.h"
#include "common/piecewise.h"
#include "common/random.h"
#include "common/stats.h"
#include "dcfs/most_critical_first.h"
#include "dcfsr/exact.h"
#include "dcfsr/hardness.h"
#include "dcfsr/random_schedule.h"
#include "engine/batch_runner.h"
#include "engine/cli.h"
#include "engine/instance.h"
#include "engine/registry.h"
#include "engine/scenario.h"
#include "engine/solver.h"
#include "engine/solvers.h"
#include "flow/flow.h"
#include "flow/split.h"
#include "flow/workload.h"
#include "graph/flow_decomposition.h"
#include "graph/graph.h"
#include "graph/k_shortest.h"
#include "graph/path.h"
#include "graph/shortest_path.h"
#include "graph/sparse_flow.h"
#include "mcf/interval_decomposition.h"
#include "mcf/relaxation.h"
#include "online/online_scheduler.h"
#include "opt/convex_mcf.h"
#include "opt/line_search.h"
#include "power/power_model.h"
#include "schedule/edf.h"
#include "schedule/schedule.h"
#include "sim/packet_sim.h"
#include "sim/replay.h"
#include "speedscale/yds.h"
#include "topology/builders.h"
#include "topology/topology.h"

namespace dcn {
namespace {

TEST(Smoke, PaperTopologyMatchesEvaluationSetup) {
  const Topology topo = fat_tree(8);
  EXPECT_EQ(topo.num_switches(), 80);  // "80 switches"
  EXPECT_EQ(topo.num_hosts(), 128);    // "(with 128 servers connected)"
}

TEST(Smoke, EngineEndToEnd) {
  // The one-call tour: scenario -> solver -> replay-validated outcome.
  const engine::Instance instance =
      engine::ScenarioSuite::default_suite().build("line/paper", 1);
  const engine::SolverOutcome outcome =
      engine::default_registry().create("mcf")->solve(instance);
  EXPECT_TRUE(outcome.feasible) << outcome.first_issue;
  EXPECT_GT(outcome.energy, 0.0);
}

}  // namespace
}  // namespace dcn
