// Tests for the exhaustive DCFSR solver.
#include <gtest/gtest.h>

#include "common/random.h"
#include "dcfs/most_critical_first.h"
#include "dcfsr/exact.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "graph/k_shortest.h"
#include "sim/replay.h"
#include "topology/builders.h"

namespace dcn {
namespace {

TEST(ExactDcfsr, SingleFlowMatchesDensityOptimum) {
  // One flow on the line network: the only choice is the single path;
  // optimal rate is the density.
  const Topology topo = line_network(3);
  const std::vector<Flow> flows{{0, 0, 2, 6.0, 1.0, 4.0}};
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  const auto exact = exact_dcfsr(topo.graph(), flows, model);
  EXPECT_EQ(exact.assignments_tried, 1);
  EXPECT_NEAR(exact.energy, 2.0 * 4.0 * 3.0, 1e-9);  // 2 links * 2^2 * 3s
}

TEST(ExactDcfsr, SplitsTwoFlowsAcrossParallelLinks) {
  // Two identical simultaneous flows, two parallel links, alpha = 2:
  // the optimum puts one flow per link (energy 2 * 1 * T) instead of
  // stacking (energy (1+1)^2 * T = 4T... as one link at rate 2 serially
  // or doubled rate).
  const Topology topo = parallel_links(2);
  const std::vector<Flow> flows{
      {0, 0, 1, 10.0, 0.0, 10.0},
      {1, 0, 1, 10.0, 0.0, 10.0},
  };
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  const auto exact = exact_dcfsr(topo.graph(), flows, model);
  EXPECT_EQ(exact.assignments_tried, 4);
  // One flow per link at rate 1 for 10s each: 2 * 1^2 * 10 = 20.
  EXPECT_NEAR(exact.energy, 20.0, 1e-6);
  EXPECT_NE(exact.chosen_path_index[0], exact.chosen_path_index[1]);
}

TEST(ExactDcfsr, PrefersConsolidationWhenIdlePowerDominates) {
  // Same two flows, huge sigma: one active link costs less despite the
  // superadditive dynamic term — note both flows then share the link
  // serially via MCF.
  const Topology topo = parallel_links(2);
  const std::vector<Flow> flows{
      {0, 0, 1, 5.0, 0.0, 10.0},
      {1, 0, 1, 5.0, 0.0, 10.0},
  };
  const PowerModel model(/*sigma=*/10.0, /*mu=*/1.0, /*alpha=*/2.0);
  const auto exact = exact_dcfsr(topo.graph(), flows, model);
  EXPECT_EQ(exact.chosen_path_index[0], exact.chosen_path_index[1]);
  // One link: idle 10 * 10 + dynamic 1^2 * 10 (rate 1 for the combined
  // 10 units over the horizon) = 110 < two links at rate 0.5:
  // 2*100 + 2*0.25*10 = 205.
  EXPECT_NEAR(exact.energy, 110.0, 1e-6);
}

TEST(ExactDcfsr, BoundedByLbAndNeverBeatenInItsOwnModel) {
  // The exact virtual-circuit optimum is (a) lower-bounded by the
  // fractional LB and (b) no worse than any single assignment drawn
  // from the same candidate path space and scheduled with MCF.
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    PaperWorkloadParams params;
    params.num_flows = 5;
    params.horizon_hi = 20.0;
    const auto flows = paper_workload(topo, params, rng);
    ExactDcfsrOptions options;
    options.paths_per_flow = 4;
    const auto exact = exact_dcfsr(g, flows, model, options);

    const auto relax = solve_relaxation(g, flows, model);
    EXPECT_GE(exact.energy, relax.lower_bound_energy * (1.0 - 1e-6))
        << "seed " << seed;

    // A random assignment from the same candidate space cannot beat it.
    const std::vector<double> unit(static_cast<std::size_t>(g.num_edges()), 1.0);
    std::vector<Path> assignment;
    for (const Flow& fl : flows) {
      auto cands = yen_k_shortest_paths(g, fl.src, fl.dst, unit, 4);
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cands.size()) - 1));
      assignment.push_back(cands[pick]);
    }
    const auto arbitrary = most_critical_first(g, flows, assignment, model);
    const double arbitrary_energy =
        energy_phi_f(g, arbitrary.schedule, model, flow_horizon(flows));
    EXPECT_LE(exact.energy, arbitrary_energy * (1.0 + 1e-9)) << "seed " << seed;

    const auto replay = replay_schedule(g, flows, exact.schedule, model);
    EXPECT_TRUE(replay.ok) << (replay.issues.empty() ? "" : replay.issues.front());
  }
}

TEST(ExactDcfsr, RejectsExplosiveInstances) {
  const Topology topo = fat_tree(4);
  Rng rng(9);
  PaperWorkloadParams params;
  params.num_flows = 30;
  const auto flows = paper_workload(topo, params, rng);
  ExactDcfsrOptions options;
  options.paths_per_flow = 4;
  options.max_assignments = 1000;  // 4^30 >> 1000
  EXPECT_THROW((void)exact_dcfsr(topo.graph(), flows,
                                 PowerModel::pure_speed_scaling(2.0), options),
               ContractViolation);
}

}  // namespace
}  // namespace dcn
