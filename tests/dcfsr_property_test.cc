// Deeper statistical and structural properties of the Random-Schedule
// pipeline (beyond the basics in random_schedule_test.cc).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/random.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "graph/shortest_path.h"
#include "schedule/schedule.h"
#include "topology/builders.h"

namespace dcn {
namespace {

TEST(RoundingDistribution, EmpiricalFrequenciesMatchWbar) {
  // Round one flow's candidate set many times; the empirical path
  // frequencies must match the wbar distribution (Algorithm 2 step 9).
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);

  // Construct an instance where the relaxation genuinely splits: many
  // identical-pair flows force load balancing across the 4 core routes.
  std::vector<Flow> flows;
  for (int i = 0; i < 6; ++i) {
    flows.push_back({i, topo.hosts()[0], topo.hosts()[15], 8.0, 0.0, 4.0});
  }
  const auto relax = solve_relaxation(g, flows, model);
  const auto& cand = relax.candidates[0];
  ASSERT_GE(cand.paths.size(), 2u) << "relaxation should split this load";

  Rng rng(1234);
  std::map<std::vector<EdgeId>, int> counts;
  const int draws = 4000;
  for (int d = 0; d < draws; ++d) {
    const auto paths = sample_paths(relax.candidates, rng);
    ++counts[paths[0].edges];
  }
  for (const WeightedPath& wp : cand.paths) {
    const double expected = wp.weight * draws;
    if (expected < 40.0) continue;  // too rare to test tightly
    const double got = counts[wp.path.edges];
    EXPECT_NEAR(got / draws, wp.weight, 4.0 * std::sqrt(wp.weight / draws))
        << "path weight " << wp.weight;
  }
}

TEST(RoundingDistribution, ExpectedLinkLoadMatchesFractional) {
  // E[rounded load on e] = sum_i wbar-probability that i uses e * D_i.
  // Check the identity by Monte Carlo against the candidate weights.
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  std::vector<Flow> flows;
  for (int i = 0; i < 5; ++i) {
    flows.push_back({i, topo.hosts()[0], topo.hosts()[15], 6.0, 0.0, 3.0});
  }
  const auto relax = solve_relaxation(g, flows, model);

  // Analytic expectation from wbar.
  std::vector<double> expected(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (const WeightedPath& wp : relax.candidates[i].paths) {
      for (EdgeId e : wp.path.edges) {
        expected[static_cast<std::size_t>(e)] += wp.weight * flows[i].density();
      }
    }
  }

  Rng rng(77);
  std::vector<double> sampled(static_cast<std::size_t>(g.num_edges()), 0.0);
  const int draws = 3000;
  for (int d = 0; d < draws; ++d) {
    const auto paths = sample_paths(relax.candidates, rng);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      for (EdgeId e : paths[i].edges) {
        sampled[static_cast<std::size_t>(e)] +=
            flows[i].density() / static_cast<double>(draws);
      }
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto idx = static_cast<std::size_t>(e);
    if (expected[idx] < 0.05) continue;
    EXPECT_NEAR(sampled[idx], expected[idx], 0.15 * expected[idx] + 0.05)
        << "edge " << e;
  }
}

TEST(RandomSchedule, IdenticalFlowsSpreadAcrossCores) {
  // 8 identical flows between the same cross-pod pair at alpha = 2:
  // the rounded schedule should use more than one core route (pure SP
  // would use exactly one).
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  std::vector<Flow> flows;
  for (int i = 0; i < 8; ++i) {
    flows.push_back({i, topo.hosts()[0], topo.hosts()[15], 10.0, 0.0, 10.0});
  }
  Rng rng(5);
  const auto rs = random_schedule(g, flows, model, rng);
  ASSERT_TRUE(rs.capacity_feasible);
  std::map<std::vector<EdgeId>, int> used;
  for (const FlowSchedule& fs : rs.schedule.flows) ++used[fs.path.edges];
  EXPECT_GT(used.size(), 1u);
}

TEST(RandomSchedule, CandidatePathsAllSimpleAndEndpointCorrect) {
  const Topology topo = bcube(2, 1);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  Rng rng(31);
  PaperWorkloadParams params;
  params.num_flows = 12;
  params.horizon_hi = 20.0;
  const auto flows = paper_workload(topo, params, rng);
  const auto relax = solve_relaxation(g, flows, model);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (const WeightedPath& wp : relax.candidates[i].paths) {
      EXPECT_TRUE(is_valid_path(g, wp.path));
      EXPECT_EQ(wp.path.src, flows[i].src);
      EXPECT_EQ(wp.path.dst, flows[i].dst);
    }
  }
}

TEST(RandomSchedule, LambdaReportedMatchesDecomposition) {
  const Topology topo = fat_tree(4);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  Rng rng(92);
  PaperWorkloadParams params;
  params.num_flows = 15;
  const auto flows = paper_workload(topo, params, rng);
  const auto rs = random_schedule(topo.graph(), flows, model, rng);
  EXPECT_NEAR(rs.lambda, decompose_intervals(flows).lambda(), 1e-9);
}

TEST(RandomSchedule, HigherAlphaSpreadsAtLeastAsManyLinks) {
  // With alpha = 4 the superadditive penalty is harsher, so RS should
  // activate at least as many links as with alpha = 2 on the same
  // congested instance (more spreading).
  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  std::vector<Flow> flows;
  for (int i = 0; i < 10; ++i) {
    flows.push_back({i, topo.hosts()[0], topo.hosts()[15], 10.0, 0.0, 10.0});
  }
  Rng rng2(42), rng4(42);
  const auto rs2 = random_schedule(
      g, flows, PowerModel::pure_speed_scaling(2.0), rng2);
  const auto rs4 = random_schedule(
      g, flows, PowerModel::pure_speed_scaling(4.0), rng4);
  ASSERT_TRUE(rs2.capacity_feasible);
  ASSERT_TRUE(rs4.capacity_feasible);
  const auto links2 = active_edges(g, rs2.schedule).size();
  const auto links4 = active_edges(g, rs4.schedule).size();
  EXPECT_GE(links4 + 2, links2);  // allow small sampling slack
}

}  // namespace
}  // namespace dcn
