// True approximation ratios on tiny instances.
//
// At the paper's evaluation scale only the fractional LB is computable,
// so Fig. 2 reports RS/LB — an *upper bound* on the real approximation
// ratio. On tiny instances the exact optimum is enumerable
// (src/dcfsr/exact.h), separating the two gaps:
//
//     RS / LB  =  (RS / OPT) * (OPT / LB).
//
// This harness prints all three columns per instance size, showing how
// much of the Fig. 2 ratio is the algorithm (RS/OPT ~ small) versus the
// relaxation's integrality gap (OPT/LB).
#include <cstdio>

#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "dcfsr/exact.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dcn;
  const bench::Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 5));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  const Topology topo = fat_tree(4);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);

  std::printf("Exact optimum study on fat_tree(4) (alpha=2, %d runs)\n", runs);
  std::printf("(OPT = exact optimum of the paper's virtual-circuit model)\n");
  bench::rule();
  std::printf("%8s  %12s  %12s  %12s  %12s\n", "flows", "RS/OPT", "OPT/LB",
              "RS/LB", "SP/OPT");
  bench::rule();

  for (int num_flows : {3, 4, 5, 6, 7}) {
    RunningStats rs_opt, opt_lb, rs_lb, sp_opt;
    for (int run = 0; run < runs; ++run) {
      Rng rng(seed + static_cast<std::uint64_t>(run));
      PaperWorkloadParams params;
      params.num_flows = num_flows;
      params.horizon_hi = 20.0;
      const auto flows = paper_workload(topo, params, rng);

      ExactDcfsrOptions exact_options;
      exact_options.paths_per_flow = 4;
      const auto exact = exact_dcfsr(g, flows, model, exact_options);
      const auto rs = random_schedule(g, flows, model, rng);
      if (!rs.capacity_feasible) continue;
      const auto sp = sp_mcf(g, flows, model);
      const double sp_energy =
          energy_phi_f(g, sp.schedule, model, flow_horizon(flows));

      rs_opt.add(rs.energy / exact.energy);
      opt_lb.add(exact.energy / rs.lower_bound_energy);
      rs_lb.add(rs.energy / rs.lower_bound_energy);
      sp_opt.add(sp_energy / exact.energy);
    }
    std::printf("%8d  %12s  %12s  %12s  %12s\n", num_flows,
                format_mean_ci(rs_opt).c_str(), format_mean_ci(opt_lb).c_str(),
                format_mean_ci(rs_lb).c_str(), format_mean_ci(sp_opt).c_str());
  }
  std::printf(
      "\nReading: most of the Fig. 2 RS/LB ratio is the gap between the\n"
      "virtual-circuit optimum and the fractional LB (OPT/LB), not\n"
      "suboptimality of the rounding (RS/OPT ~ 1). RS/OPT can even dip\n"
      "below 1: RS's fluid density schedules share links concurrently,\n"
      "which the paper's exclusive-occupancy model cannot — the\n"
      "virtual-circuit restriction itself costs a few percent.\n");
  return 0;
}
