// Online arrival sweep: sustained Poisson load against the online
// solvers (src/online) on a finite-capacity fabric, with a hindsight
// oracle column for empirical competitive ratios.
//
// The grid is rates x offered-flow counts; each cell reports, per
// solver: admitted / offered flows, replayed energy over the admitted
// subset, relaxation re-solves and total Frank-Wolfe iterations
// (online_dcfsr — the warm-start effectiveness signal: iterations per
// re-solve stays near the per-interval floor when warm starts hit),
// departures-fast-path gap checks, the peak number of flows in flight
// (what the indexed event loop keeps warm state for), EDF-fallback
// admissions (online_greedy), competitive ratios against the
// oracle_dcfsr row, and wall-clock. Every cell is replay-validated by
// the engine before it is counted.
//
// oracle_dcfsr is the hindsight baseline (cf. DCoflow): offline dcfsr
// over the whole trace with admission control — all flows known
// upfront, joint rounding first, then a per-flow fallback run in both
// the RCD and the density-first order, keeping the better admission
// set. cr_adm = solver admitted / oracle admitted and cr_en = solver
// energy / oracle energy are the empirical competitive ratios (each
// side on its own admitted subset, the two algorithms' actual
// objectives). A cell where an online solver still admits more than
// the oracle on some seed is flagged: its cr_adm is suffixed '!' and
// the count travels as the oracle_beaten counter — a ratio above a
// beaten oracle is not a competitive ratio and must not be read as one.
//
// online_dcfsr_preempt is the flat configuration plus deadline-safe
// re-rating (PDQ-style): arrivals that do not fit may reshape in-flight
// flows' future rate profiles behind a commit barrier that keeps every
// admitted deadline inviolable. Its extra columns: rr_cmt, re-rate
// passes that stuck (each one is an admission the frozen-rate contract
// would have rejected), and rr_flows, distinct in-flight profiles
// reshaped.
//
// online_dcfsr_id is the built-in A/B baseline: the legacy online
// configuration (id-order per-flow admission instead of RCD-style
// deadline-then-density, classic warm re-solve steps instead of
// pairwise + atom carry-over, no departures fast path), so the admit%
// and fw_iters columns read directly as the win of this configuration.
//
// Per solver row the table also carries the admission-decision latency
// percentiles (p50/p99 wall ms per arrival, from the schedulers'
// per-event clocks) and the load-index health columns: pk_seg, the
// largest live-segment count any edge's profile held (what bounds
// probe cost under the low-water-mark pruning), and pruned, the total
// departed-history breakpoints the index folded away.
//
// Flags: --rates a,b,..   arrival rates to sweep       [0.5,1,2,4,8]
//        --flows a,b,..   offered flows per run        [60]
//        --runs n         seeds per (cell, solver)     [3]
//        --capacity x     link capacity                [3]
//        --scenario s     online scenario              [fat_tree/poisson]
//        --solvers a,b,.. online solver columns
//                         [online_greedy,online_dcfsr,online_dcfsr_id]
//        --jobs n         worker threads               [1]
//        --no-oracle      skip the oracle_dcfsr column
//        --json FILE      also write the table as google-benchmark JSON
//                         (bench_to_json.py converts it into the
//                         BENCH_online.json snapshot schema; the latency
//                         percentiles, index-health columns and peak RSS
//                         travel as per-benchmark counters)
//        --stream         sustained-stream mode instead of the batch
//                         grid: arrivals pulled from a PoissonEventStream
//                         into the sharded service, never materializing
//                         the trace (--flows = arrival counts, default
//                         100000; --seed [101], --shards [0 = one lane
//                         per source group]); rows are BM_OnlineStream
//                         names with per-event p50/p99 and peak-RSS
//                         counters
//
// The sustained-stream configuration tracked in BENCH_online.json (the
// bounded-memory acceptance check: per-event p50/p99 at 100k arrivals
// flat versus the 16k batch point, peak RSS bounded because the stream
// synthesizes arrivals on demand and discards completed rows):
//   bench_online --stream --scenario fat_tree8/poisson --rates 8
//                --flows 100000 --json rawstream.json
//
// The scaling configuration tracked in BENCH_online.json:
//   bench_online --scenario fat_tree8/poisson --rates 8
//                --flows 1000,2000,4000 --runs 1 --jobs 4 --json raw.json
//   bench_online --scenario fat_tree8/poisson --rates 8 --flows 16000
//                --runs 1 --jobs 4 --no-oracle
//                --solvers online_greedy,online_dcfsr,online_dcfsr_flat
//                --json raw16k.json
// (the 16k point is the flat-per-event acceptance check: online_dcfsr
// ms per event within ~1.3x of its 1000-flow value)
//
// The capacity-cliff configurations tracked in BENCH_online.json (cells
// run at a non-default capacity carry a capX name segment). Capacity
// 2.5 is the regime where re-rating lands: the generated densities
// hover around 1-2, so 2.0 leaves no repack headroom while 2.5 lets
// the EDF fill catch displaced volume later:
//   bench_online --scenario fat_tree8/poisson --rates 8 --flows 500
//                --capacity 2.5 --runs 1 --jobs 1
//                --solvers online_dcfsr_flat,online_dcfsr_preempt,oracle_dcfsr
//                --json rawcap8.json
//   bench_online --scenario fat_tree/poisson --rates 6 --flows 24
//                --capacity 2.5 --runs 10 --jobs 1
//                --solvers online_dcfsr_flat,online_dcfsr_preempt,oracle_dcfsr
//                --json rawcap4.json
// (the preempt acceptance check: where flat trails the oracle the
// preempt configuration closes a measurable share of the cr_adm gap —
// 0.957 -> 0.974 on the fat_tree sweep — at <= 5% energy premium, and
// on the fat_tree8 cliff it out-admits even the fixed oracle, which
// cannot re-rate: cr_adm 1.005, flagged '!')
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <map>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "bench_util.h"
#include "engine/batch_runner.h"
#include "online/event_stream.h"
#include "online/sharded.h"

namespace {

/// One aggregated (cell, solver) row.
struct Row {
  double admitted = 0, offered = 0, energy = 0, resolves = 0, fw = 0,
         gap_checks = 0, peak = 0, edf = 0, ms = 0;
  // Frank-Wolfe phase counters (deterministic; from the fw_* stats).
  double sweeps = 0, repriced = 0, ls_evals = 0;
  // Load-index health (deterministic stats) and admission-decision
  // latency percentiles (wall clock, from SolverOutcome::timings);
  // both averaged over the cell's seeds at print time.
  double peak_seg = 0, pruned = 0, p50 = 0, p99 = 0;
  // Re-rating (online_dcfsr_preempt) totals over the cell's seeds.
  double rerate_commits = 0, rerated_flows = 0;
  // Seeds on which this solver admitted strictly more than the oracle:
  // the explicit "this cr_adm row is not a bound" flag.
  double oracle_beaten = 0;
  int cells = 0;
  bool ok = true;
};

/// "fat_tree8/poisson" -> "fat_tree8_poisson" (benchmark name segment).
std::string flatten(std::string s) {
  for (char& c : s) {
    if (c == '/') c = '_';
  }
  return s;
}

/// Rows for the optional JSON dump: one benchmark per (cell, solver)
/// with mean ms per cell as the time and the latency/index columns as
/// counters.
struct JsonRow {
  std::string name;
  double ms = 0;
  std::vector<std::pair<std::string, double>> counters;
};

/// Google-benchmark-shaped JSON so tools/bench_to_json.py can fold the
/// table into the tracked BENCH_online.json snapshot.
int write_json(const std::string& json_path,
               const std::vector<JsonRow>& json_rows) {
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_online: cannot write %s\n", json_path.c_str());
    return 2;
  }
  // Provenance context, mirroring google-benchmark's: snapshots from
  // mismatched hosts must be tellable apart when comparing.
  char date[64] = "";
  const std::time_t now = std::time(nullptr);
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", std::localtime(&now));
  char host[256] = "";
#ifndef _WIN32
  if (gethostname(host, sizeof(host) - 1) != 0) host[0] = '\0';
#endif
  // dcn_sanitizer mirrors bench_micro's custom context: a TSan build's
  // numbers must be refused by bench_to_json.py, not folded into a
  // tracked snapshot (see bench_util.h).
  std::fprintf(f,
               "{\n  \"context\": {\"date\": \"%s\", \"host_name\": \"%s\", "
               "\"num_cpus\": %u%s},\n  \"benchmarks\": [\n",
               date, host, std::thread::hardware_concurrency(),
               DCN_BENCH_TSAN ? ", \"dcn_sanitizer\": \"thread\"" : "");
  for (std::size_t i = 0; i < json_rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
                 "\"real_time\": %.6f, \"cpu_time\": %.6f, "
                 "\"time_unit\": \"ms\", \"iterations\": 1",
                 json_rows[i].name.c_str(), json_rows[i].ms, json_rows[i].ms);
    for (const auto& [key, value] : json_rows[i].counters) {
      std::fprintf(f, ", \"%s\": %.6f", key.c_str(), value);
    }
    std::fprintf(f, "}%s\n", i + 1 < json_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return 0;
}

double latency_pct(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  return xs[static_cast<std::size_t>(q * static_cast<double>(xs.size() - 1) +
                                     0.5)];
}

/// --stream: the sustained-stream scaling probe. Pulls arrivals from a
/// PoissonEventStream into the sharded service (run_online_stream), so
/// the trace is synthesized on demand and completed schedule rows are
/// discarded — the configuration whose memory must stay bounded at
/// 100k+ arrivals. One row per (rate, arrival count); the tracked
/// BM_OnlineStream names carry per-event latency percentiles and peak
/// RSS as counters.
int run_stream(const dcn::bench::Args& args) {
  using namespace dcn;
  using namespace dcn::engine;

  const std::string scenario =
      args.get_list("scenario", {"fat_tree8/poisson"})[0];
  const std::size_t slash = scenario.find('/');
  const std::string workload =
      slash == std::string::npos ? "" : scenario.substr(slash + 1);
  SizeModel size_model;
  if (workload == "poisson") {
    size_model = SizeModel::kFixed;
  } else if (workload == "websearch") {
    size_model = SizeModel::kWebSearch;
  } else if (workload == "hadoop") {
    size_model = SizeModel::kHadoop;
  } else {
    std::fprintf(stderr,
                 "bench_online --stream: scenario workload must be "
                 "poisson|websearch|hadoop, got \"%s\"\n",
                 scenario.c_str());
    return 2;
  }

  std::vector<double> rates;
  for (const std::string& r : args.get_list("rates", {"8"})) {
    rates.push_back(std::stod(r));
  }
  const std::vector<std::int64_t> arrival_counts =
      args.get_int_list("flows", {100000});
  const double capacity = args.get_double("capacity", 3.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 101));
  const auto shards = static_cast<std::int32_t>(args.get_int("shards", 0));
  const std::string json_path = args.get("json", "");

  std::printf("Sustained-stream sweep: %s, capacity=%g, seed=%llu\n",
              scenario.c_str(), capacity,
              static_cast<unsigned long long>(seed));
  bench::rule();
  std::printf("%6s %8s  %8s %8s %8s %8s %8s %8s %8s %10s %10s\n", "rate",
              "arrivals", "admit%", "peak", "pk_seg", "pruned", "p50ms",
              "p99ms", "rss_mb", "ms", "us/event");

  std::vector<JsonRow> json_rows;
  for (const double rate : rates) {
    for (const std::int64_t arrivals : arrival_counts) {
      ScenarioOptions options;
      options.capacity = capacity;
      options.arrival_rate = rate;
      options.num_flows = static_cast<std::int32_t>(arrivals);

      // The registered online_dcfsr_sharded configuration (flat-latency
      // options on the calibrated Frank-Wolfe budget).
      OnlineOptions online;
      online.rounding.relaxation.frank_wolfe.max_iterations = 12;
      online.rounding.relaxation.frank_wolfe.gap_tolerance = 1e-3;
      online.lookahead_window = 2.0;
      online.epoch = 0.5;

      auto [topology, stream_rng] = ScenarioSuite::default_suite()
                                        .build_topology(scenario, seed);
      PoissonEventStream stream(topology,
                                online_workload_params(options, size_model),
                                stream_rng, arrivals);
      const ShardPlan plan = ShardPlan::by_source_group(topology, shards);
      Rng rng(mix_seed(seed,
                       scenario + "#" + std::to_string(seed) + "|dcfsr"));
      const PowerModel model = options.power_model();

      const auto start = std::chrono::steady_clock::now();
      OnlineResult result = run_online_stream(
          topology.graph(), stream, model, rng, online, plan, /*workers=*/0,
          /*flush_every=*/0, nullptr, /*discard_completed=*/true);
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();

      const double offered =
          static_cast<double>(result.num_admitted + result.num_rejected);
      const double p50 = latency_pct(result.decision_latency_ms, 0.50);
      const double p99 = latency_pct(result.decision_latency_ms, 0.99);
      const double rss_mb = static_cast<double>(peak_rss_kb()) / 1024.0;
      std::printf(
          "%6g %8lld  %7.1f%% %8d %8d %8lld %8.3f %8.3f %8.1f %10.0f %10.1f\n",
          rate, static_cast<long long>(arrivals),
          offered > 0 ? 100.0 * result.num_admitted / offered : 0.0,
          result.peak_in_flight, result.peak_live_segments,
          static_cast<long long>(result.load_segments_pruned), p50, p99,
          rss_mb, ms, offered > 0 ? 1000.0 * ms / offered : 0.0);

      char cap_segment[32] = "";
      if (capacity != 3.0) {
        std::snprintf(cap_segment, sizeof(cap_segment), "cap%g/", capacity);
      }
      char name[160];
      std::snprintf(name, sizeof(name),
                    "BM_OnlineStream/%s/rate%g/%lld/%sonline_dcfsr_sharded",
                    flatten(scenario).c_str(), rate,
                    static_cast<long long>(arrivals), cap_segment);
      json_rows.push_back(
          {name,
           ms,
           {{"decision_latency_p50_ms", p50},
            {"decision_latency_p99_ms", p99},
            {"peak_live_segments",
             static_cast<double>(result.peak_live_segments)},
            {"load_segments_pruned",
             static_cast<double>(result.load_segments_pruned)},
            {"peak_in_flight", static_cast<double>(result.peak_in_flight)},
            {"admitted", static_cast<double>(result.num_admitted)},
            {"peak_rss_mb", rss_mb}}});
    }
  }
  if (!json_path.empty()) return write_json(json_path, json_rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcn;
  using namespace dcn::engine;
  const bench::Args args(argc, argv);
  if (args.has_flag("stream")) return run_stream(args);

  std::vector<std::string> solvers = args.get_list(
      "solvers", {"online_greedy", "online_dcfsr", "online_dcfsr_id"});
  const bool with_oracle = !args.has_flag("no-oracle");
  if (with_oracle &&
      std::find(solvers.begin(), solvers.end(), "oracle_dcfsr") ==
          solvers.end()) {
    solvers.push_back("oracle_dcfsr");
  }
  std::vector<double> rates;
  for (const std::string& r : args.get_list("rates", {"0.5", "1", "2", "4", "8"})) {
    rates.push_back(std::stod(r));
  }
  const std::vector<std::int64_t> flow_counts = args.get_int_list("flows", {60});
  const int runs = static_cast<int>(args.get_int("runs", 3));
  const std::string scenario = args.get_list("scenario", {"fat_tree/poisson"})[0];
  const std::string json_path = args.get("json", "");

  BatchSpec spec;
  spec.solvers = solvers;
  spec.scenarios = {scenario};
  spec.seeds.clear();
  for (int run = 0; run < runs; ++run) {
    spec.seeds.push_back(101 + static_cast<std::uint64_t>(run));
  }
  spec.options.capacity = args.get_double("capacity", 3.0);
  spec.jobs = static_cast<std::int32_t>(args.get_int("jobs", 1));
  spec.discard_schedules = true;

  std::printf("Online arrival sweep: %s, %d runs, capacity=%g\n",
              scenario.c_str(), runs, spec.options.capacity);
  bench::rule();
  std::printf("%6s %6s  %-17s %8s %12s %8s %9s %8s %10s %9s %7s %6s %6s %6s "
              "%8s %6s %8s %8s %8s %8s %7s %9s\n",
              "rate", "flows", "solver", "admit%", "energy", "resolves",
              "fw_iters", "sweeps", "repriced", "ls_evals", "gapchk", "peak",
              "edf_fb", "rr_cmt", "rr_flows", "pk_seg", "pruned", "p50ms",
              "p99ms", "cr_adm", "cr_en", "ms");

  std::vector<JsonRow> json_rows;

  for (const double rate : rates) {
    for (const std::int64_t flows : flow_counts) {
      spec.options.arrival_rate = rate;
      spec.options.num_flows = static_cast<std::int32_t>(flows);
      BatchResult result;
      try {
        result = run_batch(default_registry(), ScenarioSuite::default_suite(),
                           spec);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_online: %s\n", e.what());
        return 2;
      }

      // Per-seed oracle admitted counts, so every solver cell can be
      // checked for "admitted more than the oracle" on its own seed
      // (the oracle_beaten flag — a beaten oracle makes cr_adm
      // meaningless for that cell).
      std::map<std::uint64_t, double> oracle_admitted_by_seed;
      for (const auto& cell : result.cells) {
        if (cell.solver != "oracle_dcfsr" || !cell.ran) continue;
        for (const auto& [key, value] : cell.outcome.stats) {
          if (key == "admitted") oracle_admitted_by_seed[cell.seed] = value;
        }
      }

      // Aggregate per solver over the seeds.
      std::map<std::string, Row> rows;
      for (const auto& cell : result.cells) {
        Row& row = rows[cell.solver];
        ++row.cells;
        row.ms += cell.elapsed_ms;
        if (!cell.ran || !cell.outcome.feasible) {
          row.ok = false;
          continue;
        }
        row.offered += static_cast<double>(spec.options.num_flows);
        row.energy += cell.outcome.energy;
        for (const auto& [key, value] : cell.outcome.stats) {
          if (key == "admitted") {
            row.admitted += value;
            if (cell.solver != "oracle_dcfsr") {
              const auto it = oracle_admitted_by_seed.find(cell.seed);
              if (it != oracle_admitted_by_seed.end() && value > it->second) {
                row.oracle_beaten += 1;
              }
            }
          }
          if (key == "resolves") row.resolves += value;
          if (key == "fw_iterations") row.fw += value;
          if (key == "fw_sweeps") row.sweeps += value;
          if (key == "fw_edges_repriced") row.repriced += value;
          if (key == "fw_ls_evals") row.ls_evals += value;
          if (key == "departure_gap_checks") row.gap_checks += value;
          if (key == "peak_in_flight") row.peak += value;
          if (key == "edf_fallbacks") row.edf += value;
          if (key == "peak_live_segments") row.peak_seg += value;
          if (key == "load_segments_pruned") row.pruned += value;
          if (key == "rerate_commits") row.rerate_commits += value;
          if (key == "rerated_flows") row.rerated_flows += value;
        }
        for (const auto& [key, value] : cell.outcome.timings) {
          if (key == "decision_latency_p50_ms") row.p50 += value;
          if (key == "decision_latency_p99_ms") row.p99 += value;
        }
      }
      const Row* oracle =
          with_oracle && rows.contains("oracle_dcfsr") &&
                  rows["oracle_dcfsr"].ok
              ? &rows["oracle_dcfsr"]
              : nullptr;
      for (const std::string& solver : solvers) {
        const Row& row = rows[solver];
        if (!row.ok) {
          std::printf("%6g %6lld  %-16s %8s\n", rate,
                      static_cast<long long>(flows), solver.c_str(), "FAILED");
          continue;
        }
        char cr_adm[16] = "-";
        char cr_en[16] = "-";
        if (oracle != nullptr && oracle->admitted > 0 && oracle->energy > 0) {
          // A '!' marks a cell where this solver beat the oracle on at
          // least one seed: the ratio is not a competitive ratio there.
          std::snprintf(cr_adm, sizeof(cr_adm), "%.3f%s",
                        row.admitted / oracle->admitted,
                        row.oracle_beaten > 0 ? "!" : "");
          std::snprintf(cr_en, sizeof(cr_en), "%.3f",
                        row.energy / oracle->energy);
        }
        const double cells = static_cast<double>(std::max(1, row.cells));
        std::printf("%6g %6lld  %-17s %7.1f%% %12.1f %8.0f %9.0f %8.0f %10.0f "
                    "%9.0f %7.0f %6.0f %6.0f %6.0f %8.0f %6.0f %8.0f %8.2f "
                    "%8.2f %8s %7s %9.0f\n",
                    rate, static_cast<long long>(flows), solver.c_str(),
                    row.offered > 0 ? 100.0 * row.admitted / row.offered : 0.0,
                    row.energy, row.resolves, row.fw, row.sweeps, row.repriced,
                    row.ls_evals, row.gap_checks, row.peak / cells, row.edf,
                    row.rerate_commits, row.rerated_flows,
                    row.peak_seg / cells, row.pruned / cells, row.p50 / cells,
                    row.p99 / cells, cr_adm, cr_en, row.ms);
        // Cells run at a non-default capacity get a capX name segment:
        // the capacity-cliff sweeps must not collide with the default
        // grid's tracked names.
        char cap_segment[32] = "";
        if (spec.options.capacity != 3.0) {
          std::snprintf(cap_segment, sizeof(cap_segment), "cap%g/",
                        spec.options.capacity);
        }
        char name[160];
        std::snprintf(name, sizeof(name), "BM_Online/%s/rate%g/%lld/%s%s",
                      flatten(scenario).c_str(), rate,
                      static_cast<long long>(flows), cap_segment,
                      solver.c_str());
        json_rows.push_back(
            {name,
             row.ms / cells,
             {{"decision_latency_p50_ms", row.p50 / cells},
              {"decision_latency_p99_ms", row.p99 / cells},
              {"peak_live_segments", row.peak_seg / cells},
              {"load_segments_pruned", row.pruned / cells},
              {"peak_in_flight", row.peak / cells},
              {"admitted", row.admitted / cells},
              {"energy", row.energy / cells},
              {"rerate_commits", row.rerate_commits / cells},
              {"rerated_flows", row.rerated_flows / cells},
              {"oracle_beaten", row.oracle_beaten},
              // Process-wide high-water mark at row emission: rows
              // within one invocation share the process, so read the
              // largest cell's footprint from the last row (tracked
              // sweeps run one configuration per invocation).
              {"peak_rss_mb", static_cast<double>(peak_rss_kb()) / 1024.0}}});
      }
    }
  }

  if (!json_path.empty()) return write_json(json_path, json_rows);
  return 0;
}
