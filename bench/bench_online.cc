// Online arrival-rate sweep: sustained Poisson load against the online
// solvers (src/online) on a finite-capacity fabric.
//
// For each arrival rate the table reports, per solver: admitted /
// offered flows, replayed energy over the admitted subset, relaxation
// re-solves and total Frank-Wolfe iterations (online_dcfsr — the
// warm-start effectiveness signal: iterations per re-solve stays near
// the per-interval floor when warm starts hit), departures-fast-path
// gap checks, EDF-fallback admissions (online_greedy), and wall-clock.
// Every cell is replay-validated by the engine before it is counted.
//
// online_dcfsr_id is the built-in A/B baseline: the legacy online
// configuration (id-order per-flow admission instead of RCD-style
// deadline-then-density, classic warm re-solve steps instead of
// pairwise, no departures fast path), so the admit% and fw_iters
// columns read directly as the win of this configuration.
//
// Flags: --rates a,b,..  arrival rates to sweep     [0.5,1,2,4,8]
//        --runs n        seeds per (rate, solver)   [3]
//        --flows n       offered flows per run      [60]
//        --capacity x    link capacity              [3]
//        --scenario s    online scenario            [fat_tree/poisson]
//        --jobs n        worker threads             [1]
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "engine/batch_runner.h"

int main(int argc, char** argv) {
  using namespace dcn;
  using namespace dcn::engine;
  const bench::Args args(argc, argv);

  const std::vector<std::string> solvers = {"online_greedy", "online_dcfsr",
                                            "online_dcfsr_id"};
  std::vector<double> rates;
  for (const std::string& r : args.get_list("rates", {"0.5", "1", "2", "4", "8"})) {
    rates.push_back(std::stod(r));
  }
  const int runs = static_cast<int>(args.get_int("runs", 3));
  const std::string scenario = args.get_list("scenario", {"fat_tree/poisson"})[0];

  BatchSpec spec;
  spec.solvers = solvers;
  spec.scenarios = {scenario};
  spec.seeds.clear();
  for (int run = 0; run < runs; ++run) {
    spec.seeds.push_back(101 + static_cast<std::uint64_t>(run));
  }
  spec.options.num_flows = static_cast<std::int32_t>(args.get_int("flows", 60));
  spec.options.capacity = args.get_double("capacity", 3.0);
  spec.jobs = static_cast<std::int32_t>(args.get_int("jobs", 1));
  spec.discard_schedules = true;

  std::printf("Online arrival-rate sweep: %s, %d flows/run, %d runs, "
              "capacity=%g\n",
              scenario.c_str(), spec.options.num_flows, runs,
              spec.options.capacity);
  bench::rule();
  std::printf("%6s  %-16s %9s %12s %9s %9s %9s %9s %9s\n", "rate", "solver",
              "admit%", "energy", "resolves", "fw_iters", "gapchk", "edf_fb",
              "ms");

  for (const double rate : rates) {
    spec.options.arrival_rate = rate;
    BatchResult result;
    try {
      result = run_batch(default_registry(), ScenarioSuite::default_suite(), spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_online: %s\n", e.what());
      return 2;
    }

    // Aggregate per solver over the seeds.
    struct Row {
      double admitted = 0, offered = 0, energy = 0, resolves = 0, fw = 0,
             gap_checks = 0, edf = 0, ms = 0;
      int cells = 0;
      bool ok = true;
    };
    std::map<std::string, Row> rows;
    for (const auto& cell : result.cells) {
      Row& row = rows[cell.solver];
      ++row.cells;
      row.ms += cell.elapsed_ms;
      if (!cell.ran || !cell.outcome.feasible) {
        row.ok = false;
        continue;
      }
      row.offered += static_cast<double>(spec.options.num_flows);
      row.energy += cell.outcome.energy;
      for (const auto& [key, value] : cell.outcome.stats) {
        if (key == "admitted") row.admitted += value;
        if (key == "resolves") row.resolves += value;
        if (key == "fw_iterations") row.fw += value;
        if (key == "departure_gap_checks") row.gap_checks += value;
        if (key == "edf_fallbacks") row.edf += value;
      }
    }
    for (const std::string& solver : solvers) {
      const Row& row = rows[solver];
      if (!row.ok) {
        std::printf("%6g  %-16s %9s\n", rate, solver.c_str(), "FAILED");
        continue;
      }
      std::printf("%6g  %-16s %8.1f%% %12.1f %9.0f %9.0f %9.0f %9.0f %9.0f\n",
                  rate, solver.c_str(),
                  row.offered > 0 ? 100.0 * row.admitted / row.offered : 0.0,
                  row.energy, row.resolves, row.fw, row.gap_checks, row.edf,
                  row.ms);
    }
  }
  return 0;
}
