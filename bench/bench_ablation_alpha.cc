// Ablation A4: power exponent sweep. The paper evaluates x^2 and x^4;
// this bench fills in the curve alpha in {1.5, 2, 2.5, 3, 4} at the
// Fig. 2 operating point and reports both algorithms normalized by LB.
// Higher alpha penalizes rate concentration more, widening the gap
// between load-spreading (RS) and shortest-path stacking (SP+MCF).
#include <cstdio>

#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "sim/replay.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dcn;
  const bench::Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 5));
  const int num_flows = static_cast<int>(args.get_int("flows", 120));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 61));

  const Topology topo = fat_tree(8);
  const Graph& g = topo.graph();

  std::printf("Ablation A4: exponent sweep (sigma=0, %d flows, %d runs)\n",
              num_flows, runs);
  bench::rule();
  std::printf("%8s  %14s  %14s  %14s\n", "alpha", "RS/LB", "SP+MCF/LB",
              "SP/RS");
  bench::rule();

  for (double alpha : {1.5, 2.0, 2.5, 3.0, 4.0}) {
    const PowerModel model = PowerModel::pure_speed_scaling(alpha);
    RunningStats rs_ratio, sp_ratio, sp_over_rs;
    for (int run = 0; run < runs; ++run) {
      Rng rng(seed + static_cast<std::uint64_t>(run));
      PaperWorkloadParams params;
      params.num_flows = num_flows;
      const auto flows = paper_workload(topo, params, rng);

      RandomScheduleOptions options;
      options.relaxation.frank_wolfe.max_iterations = 15;
      options.relaxation.frank_wolfe.gap_tolerance = 2e-3;
      const auto rs = random_schedule(g, flows, model, rng, options);
      if (!rs.capacity_feasible) continue;
      const auto rs_replay = replay_schedule(g, flows, rs.schedule, model);
      const auto sp = sp_mcf(g, flows, model);
      const double sp_energy =
          energy_phi_f(g, sp.schedule, model, flow_horizon(flows));

      rs_ratio.add(rs_replay.energy / rs.lower_bound_energy);
      sp_ratio.add(sp_energy / rs.lower_bound_energy);
      sp_over_rs.add(sp_energy / rs_replay.energy);
    }
    std::printf("%8.2f  %14s  %14s  %14s\n", alpha,
                format_mean_ci(rs_ratio).c_str(),
                format_mean_ci(sp_ratio).c_str(),
                format_mean_ci(sp_over_rs).c_str());
  }
  return 0;
}
