// Ablation A8: Most-Critical-First semantics. Compares the
// circuit-exact implementation (per-flow availability intersected over
// the whole path; no two flows ever share a link instant) against the
// paper-literal rule (availability and EDF against the critical link
// only), which can overlap flows on non-critical links and pay
// superadditive energy. Congestion is scaled by packing more flows into
// a fixed host subset.
#include <cstdio>

#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "dcfs/most_critical_first.h"
#include "flow/workload.h"
#include "schedule/schedule.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dcn;
  const bench::Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 5));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 73));

  const Topology topo = fat_tree(4);  // small fabric => real contention
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);

  std::printf(
      "Ablation A8: circuit-exact vs paper-literal MCF on fat_tree(4) "
      "(%d runs)\n",
      runs);
  bench::rule();
  std::printf("%8s  %16s  %16s  %12s  %12s\n", "flows", "Phi_g exact",
              "Phi_g literal", "lit/exact", "fallbacks");
  bench::rule();

  for (int num_flows : {10, 20, 40, 60}) {
    RunningStats exact_e, literal_e, ratio, fallbacks;
    for (int run = 0; run < runs; ++run) {
      Rng rng(seed + static_cast<std::uint64_t>(run));
      PaperWorkloadParams params;
      params.num_flows = num_flows;
      const auto flows = paper_workload(topo, params, rng);
      const auto paths = shortest_path_routing(g, flows);
      const Interval horizon = flow_horizon(flows);

      DcfsOptions exact;
      DcfsOptions literal;
      literal.circuit_exact = false;
      const auto a = most_critical_first(g, flows, paths, model, exact);
      const auto b = most_critical_first(g, flows, paths, model, literal);
      const double ea = energy_phi_g(g, a.schedule, model, horizon);
      const double eb = energy_phi_g(g, b.schedule, model, horizon);
      exact_e.add(ea);
      literal_e.add(eb);
      ratio.add(eb / ea);
      fallbacks.add(static_cast<double>(a.availability_fallbacks +
                                        b.availability_fallbacks));
    }
    std::printf("%8d  %16.1f  %16.1f  %12s  %12.1f\n", num_flows, exact_e.mean(),
                literal_e.mean(), format_mean_ci(ratio, 4).c_str(),
                fallbacks.mean());
  }
  return 0;
}
