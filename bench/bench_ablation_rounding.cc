// Ablation A5: randomized-rounding quality. One relaxation per
// instance, re-rounded with best-of-k for k in {1, 2, 4, 8, 16}: how
// much does drawing several roundings and keeping the cheapest improve
// on Algorithm 2's single draw? (The relaxation is the expensive stage;
// re-rounding is nearly free.)
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dcn;
  const bench::Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 5));
  const int num_flows = static_cast<int>(args.get_int("flows", 100));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 29));

  const Topology topo = fat_tree(8);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);

  std::printf("Ablation A5: best-of-k rounding (alpha=2, %d flows, %d runs)\n",
              num_flows, runs);
  bench::rule();
  std::printf("%8s  %14s\n", "k", "RS/LB");
  bench::rule();

  // Precompute one relaxation per run.
  std::vector<FractionalRelaxation> relaxations;
  std::vector<std::vector<Flow>> flow_sets;
  for (int run = 0; run < runs; ++run) {
    Rng rng(seed + static_cast<std::uint64_t>(run));
    PaperWorkloadParams params;
    params.num_flows = num_flows;
    flow_sets.push_back(paper_workload(topo, params, rng));
    relaxations.push_back(solve_relaxation(g, flow_sets.back(), model));
  }

  for (int k : {1, 2, 4, 8, 16}) {
    RunningStats ratio;
    for (int run = 0; run < runs; ++run) {
      Rng rng(seed ^ (0x5bd1e995ULL * static_cast<std::uint64_t>(run + 1)));
      RandomScheduleOptions options;
      options.best_of = k;
      options.max_rounding_attempts = 20 * k;
      const auto rs = round_relaxation(g, flow_sets[static_cast<std::size_t>(run)],
                                       model,
                                       relaxations[static_cast<std::size_t>(run)],
                                       rng, options);
      if (!rs.capacity_feasible) continue;
      ratio.add(rs.energy / rs.lower_bound_energy);
    }
    std::printf("%8d  %14s\n", k, format_mean_ci(ratio, 4).c_str());
  }
  return 0;
}
