// Ablation A6: topology sensitivity. Runs the Fig. 2 pipeline on
// fabrics with comparable host counts — fat-tree(8), BCube(4,2),
// leaf-spine — plus fat-tree(4) as a congested small fabric. Reports
// RS/LB and SP+MCF/LB: path diversity (number of equal-cost routes)
// drives how much joint routing+scheduling can save.
#include <cstdio>

#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "sim/replay.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dcn;
  const bench::Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 5));
  const int num_flows = static_cast<int>(args.get_int("flows", 80));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 67));

  const PowerModel model = PowerModel::pure_speed_scaling(2.0);

  std::printf("Ablation A6: topology sweep (alpha=2, %d flows, %d runs)\n",
              num_flows, runs);
  bench::rule();
  std::printf("%26s  %7s  %7s  %14s  %14s\n", "topology", "hosts", "links",
              "RS/LB", "SP+MCF/LB");
  bench::rule();

  const std::vector<Topology> topologies{
      fat_tree(8),
      fat_tree(4),
      bcube(4, 2),          // 64 hosts, 48 switches
      leaf_spine(16, 8, 8)  // 128 hosts, 24 switches
  };

  for (const Topology& topo : topologies) {
    const Graph& g = topo.graph();
    RunningStats rs_ratio, sp_ratio;
    for (int run = 0; run < runs; ++run) {
      Rng rng(seed + static_cast<std::uint64_t>(run));
      PaperWorkloadParams params;
      params.num_flows = num_flows;
      const auto flows = paper_workload(topo, params, rng);

      RandomScheduleOptions options;
      options.relaxation.frank_wolfe.max_iterations = 15;
      options.relaxation.frank_wolfe.gap_tolerance = 2e-3;
      const auto rs = random_schedule(g, flows, model, rng, options);
      if (!rs.capacity_feasible) continue;
      const auto rs_replay = replay_schedule(g, flows, rs.schedule, model);
      if (!rs_replay.ok) continue;
      const auto sp = sp_mcf(g, flows, model);
      const double sp_energy =
          energy_phi_f(g, sp.schedule, model, flow_horizon(flows));

      rs_ratio.add(rs_replay.energy / rs.lower_bound_energy);
      sp_ratio.add(sp_energy / rs.lower_bound_energy);
    }
    std::printf("%26s  %7d  %7d  %14s  %14s\n", topo.name().c_str(),
                topo.num_hosts(), g.num_edges() / 2,
                format_mean_ci(rs_ratio).c_str(),
                format_mean_ci(sp_ratio).c_str());
  }
  return 0;
}
