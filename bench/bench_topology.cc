// Ablation A6: topology sensitivity. Runs the Fig. 2 pipeline on
// fabrics with comparable host counts — fat-tree(8), BCube(4,2),
// leaf-spine — plus fat-tree(4) as a congested small fabric. Reports
// RS/LB and SP+MCF/LB: path diversity (number of equal-cost routes)
// drives how much joint routing+scheduling can save.
//
// Engine-driven: one BatchRunner grid (solver x scenario x seed),
// executed on --jobs threads; every schedule is replay-validated by the
// engine before it is counted.
//
// Flags: --runs <n> (seeds per cell, default 5), --flows <n> (default
//        80), --seed <base>, --jobs <n>, --solvers <list> (dcfsr is
//        always included — it computes the LB the table normalizes by).
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "engine/batch_runner.h"

int main(int argc, char** argv) {
  using namespace dcn;
  using namespace dcn::engine;
  const bench::Args args(argc, argv);

  BatchSpec spec;
  spec.solvers = args.get_list("solvers", {"dcfsr", "mcf"});
  // The ratios below normalize by the fractional LB, which only the
  // dcfsr cells carry — keep dcfsr in the grid no matter what.
  if (std::find(spec.solvers.begin(), spec.solvers.end(), "dcfsr") ==
      spec.solvers.end()) {
    spec.solvers.insert(spec.solvers.begin(), "dcfsr");
  }
  spec.scenarios = {"fat_tree8/paper", "fat_tree/paper", "bcube42/paper",
                    "leaf_spine_wide/paper"};
  const int runs = static_cast<int>(args.get_int("runs", 5));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 67));
  spec.seeds.clear();
  for (int run = 0; run < runs; ++run) {
    spec.seeds.push_back(seed + static_cast<std::uint64_t>(run));
  }
  spec.options.num_flows = static_cast<std::int32_t>(args.get_int("flows", 80));
  spec.jobs = static_cast<std::int32_t>(args.get_int("jobs", 1));
  spec.discard_schedules = true;

  std::printf("Ablation A6: topology sweep (alpha=2, %d flows, %d runs, %d jobs)\n",
              spec.options.num_flows, runs, spec.jobs);
  bench::rule();

  BatchResult result;
  try {
    result = run_batch(default_registry(), ScenarioSuite::default_suite(), spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_topology: %s\n", e.what());
    return 2;
  }

  // Per (scenario, solver) mean energy; dcfsr also yields the per-cell
  // LB, against which both solvers' ratios are normalized.
  std::map<std::pair<std::string, std::string>, RunningStats> ratios;
  std::map<std::pair<std::string, std::uint64_t>, double> lb;
  for (const CellResult& cell : result.cells) {
    if (cell.ran && cell.outcome.lower_bound > 0.0) {
      lb[{cell.scenario, cell.seed}] = cell.outcome.lower_bound;
    }
  }
  for (const CellResult& cell : result.cells) {
    if (!cell.ran || !cell.outcome.feasible) continue;
    const auto it = lb.find({cell.scenario, cell.seed});
    if (it == lb.end()) continue;
    ratios[{cell.scenario, cell.solver}].add(cell.outcome.energy / it->second);
  }

  std::printf("%22s", "scenario");
  for (const std::string& solver : spec.solvers) {
    std::printf("  %10s/LB", solver.c_str());
  }
  std::printf("\n");
  bench::rule();
  for (const std::string& scenario : spec.scenarios) {
    std::printf("%22s", scenario.c_str());
    for (const std::string& solver : spec.solvers) {
      const RunningStats& stats = ratios[{scenario, solver}];
      // "-" for cells with no feasible samples (e.g. a solver that
      // threw on this fabric) instead of a misleading 0.000 ratio.
      std::printf("  %13s",
                  stats.count() == 0 ? "-" : format_mean_ci(stats).c_str());
    }
    std::printf("\n");
  }
  return result.all_feasible() ? 0 : 1;
}
