// Ablation A1: the virtual-weight correction of Theorem 1.
//
// Most-Critical-First weights each flow w'_i = w_i * |P_i|^(1/alpha) so
// that multi-hop flows get proportionally more of a shared critical
// interval (their energy scales with hop count). This bench runs the
// same instances with and without the correction and reports the energy
// ratio (>= 1 means the paper's weighting wins).
#include <cstdio>

#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "dcfs/most_critical_first.h"
#include "flow/workload.h"
#include "schedule/schedule.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dcn;
  const bench::Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 10));
  const int num_flows = static_cast<int>(args.get_int("flows", 15));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 41));

  // A line network gives heterogeneous hop counts (1..9) on shared
  // links — the regime where the |P|^(1/alpha) correction matters. On
  // fat-trees nearly all paths have 6 hops and both weightings coincide.
  const Topology topo = line_network(10);
  const Graph& g = topo.graph();

  std::printf(
      "Ablation A1: virtual weights w|P|^(1/alpha) vs plain w "
      "(line(10), %d flows, %d runs)\n",
      num_flows, runs);
  bench::rule();
  std::printf("%8s  %16s  %16s  %14s\n", "alpha", "Phi_g virtual", "Phi_g plain",
              "plain/virtual");
  bench::rule();

  for (double alpha : {1.5, 2.0, 3.0, 4.0}) {
    const PowerModel model = PowerModel::pure_speed_scaling(alpha);
    RunningStats virt, plain, ratio;
    for (int run = 0; run < runs; ++run) {
      Rng rng(seed + static_cast<std::uint64_t>(run));
      PaperWorkloadParams params;
      params.num_flows = num_flows;
      const auto flows = paper_workload(topo, params, rng);
      const auto paths = shortest_path_routing(g, flows);

      DcfsOptions with;
      DcfsOptions without;
      without.use_virtual_weights = false;
      const auto a = most_critical_first(g, flows, paths, model, with);
      const auto b = most_critical_first(g, flows, paths, model, without);
      const Interval horizon = flow_horizon(flows);
      const double ea = energy_phi_g(g, a.schedule, model, horizon);
      const double eb = energy_phi_g(g, b.schedule, model, horizon);
      virt.add(ea);
      plain.add(eb);
      ratio.add(eb / ea);
    }
    std::printf("%8.2f  %16.1f  %16.1f  %14s\n", alpha, virt.mean(), plain.mean(),
                format_mean_ci(ratio, 4).c_str());
  }

  // Congestion sweep: the correction is provably right inside a single
  // critical interval; under heavy contention the greedy's interval
  // selection (and overlap fallbacks) interact with it and the
  // advantage can invert — reported honestly below.
  std::printf("\nCongestion sweep at alpha = 2:\n");
  bench::rule();
  std::printf("%8s  %14s  %12s\n", "flows", "plain/virtual", "fallbacks");
  bench::rule();
  const PowerModel model2 = PowerModel::pure_speed_scaling(2.0);
  for (int n : {8, 15, 30, 45}) {
    RunningStats ratio, fallbacks;
    for (int run = 0; run < runs; ++run) {
      Rng rng(seed + static_cast<std::uint64_t>(run));
      PaperWorkloadParams params;
      params.num_flows = n;
      const auto flows = paper_workload(topo, params, rng);
      const auto paths = shortest_path_routing(g, flows);
      DcfsOptions with;
      DcfsOptions without;
      without.use_virtual_weights = false;
      const auto a = most_critical_first(g, flows, paths, model2, with);
      const auto b = most_critical_first(g, flows, paths, model2, without);
      const Interval horizon = flow_horizon(flows);
      ratio.add(energy_phi_g(g, b.schedule, model2, horizon) /
                energy_phi_g(g, a.schedule, model2, horizon));
      fallbacks.add(static_cast<double>(a.availability_fallbacks));
    }
    std::printf("%8d  %14s  %12.1f\n", n, format_mean_ci(ratio, 4).c_str(),
                fallbacks.mean());
  }
  return 0;
}
