// Micro-benchmarks (google-benchmark): runtime scaling of the library's
// algorithmic kernels — interval algebra, EDF, YDS, Most-Critical-First,
// Frank-Wolfe F-MCF solves, interval decomposition, path extraction and
// full Random-Schedule — as input sizes grow.
#include <benchmark/benchmark.h>

#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/random.h"
#include "dcfs/most_critical_first.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "graph/flow_decomposition.h"
#include "graph/k_shortest.h"
#include "mcf/relaxation.h"
#include "opt/convex_mcf.h"
#include "schedule/edf.h"
#include "speedscale/yds.h"
#include "topology/builders.h"

namespace dcn {
namespace {

/// Surfaces the per-phase Frank-Wolfe work as benchmark counters so a
/// perf diff can be attributed (oracle vs repricing vs line search)
/// straight from the bench output.
void report_fw_stats(benchmark::State& state, const FrankWolfeStats& stats) {
  state.counters["fw_sweeps"] =
      benchmark::Counter(static_cast<double>(stats.oracle_sweeps));
  state.counters["fw_edges_repriced"] =
      benchmark::Counter(static_cast<double>(stats.edges_repriced));
  state.counters["fw_ls_evals"] =
      benchmark::Counter(static_cast<double>(stats.line_search_evals));
  state.counters["oracle_ms"] = benchmark::Counter(stats.oracle_seconds * 1e3);
  state.counters["reprice_ms"] =
      benchmark::Counter(stats.reprice_seconds * 1e3);
  state.counters["ls_ms"] =
      benchmark::Counter(stats.line_search_seconds * 1e3);
}

void BM_IntervalSetOps(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    IntervalSet s;
    for (int i = 0; i < n; ++i) {
      double a = rng.uniform(0.0, 100.0);
      double b = a + rng.uniform(0.1, 5.0);
      if (rng.uniform() < 0.7) {
        s.add({a, b});
      } else {
        s.subtract({a, b});
      }
    }
    benchmark::DoNotOptimize(s.measure());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_IntervalSetOps)->Range(16, 1024)->Complexity();

void BM_PreemptiveEdf(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<EdfJob> jobs;
  for (int i = 0; i < n; ++i) {
    const double r = rng.uniform(0.0, 100.0);
    const double d = r + rng.uniform(5.0, 30.0);
    jobs.push_back({i, d, rng.uniform(0.1, 1.0), IntervalSet{Interval{r, d}}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(preemptive_edf(jobs));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_PreemptiveEdf)->Range(8, 256)->Complexity();

void BM_YdsSchedule(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  Rng rng(13);
  std::vector<SsJob> jobs;
  for (int i = 0; i < n; ++i) {
    double a = rng.uniform(0.0, 100.0);
    double b = a + rng.uniform(1.0, 30.0);
    jobs.push_back({i, rng.uniform(0.5, 8.0), {a, b}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(yds_schedule(jobs));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_YdsSchedule)->Range(8, 128)->Complexity();

void BM_MostCriticalFirst(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Topology topo = fat_tree(8);
  Rng rng(17);
  PaperWorkloadParams params;
  params.num_flows = n;
  const auto flows = paper_workload(topo, params, rng);
  const auto paths = shortest_path_routing(topo.graph(), flows);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(most_critical_first(topo.graph(), flows, paths, model));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MostCriticalFirst)->Arg(40)->Arg(80)->Arg(160)->Complexity();

void BM_ConvexMcfSolve(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const Topology topo = fat_tree(8);
  Rng rng(19);
  ConvexMcfProblem problem;
  problem.graph = &topo.graph();
  problem.cost = [](double x) { return x * x; };
  problem.cost_derivative = [](double x) { return 2.0 * x; };
  for (int c = 0; c < k; ++c) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, 127));
    std::size_t b;
    do {
      b = static_cast<std::size_t>(rng.uniform_int(0, 127));
    } while (b == a);
    problem.commodities.push_back(
        {topo.hosts()[a], topo.hosts()[b], rng.uniform(0.5, 3.0)});
  }
  FrankWolfeOptions options;
  options.max_iterations = 15;
  options.gap_tolerance = 2e-3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_convex_mcf(problem, options));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_ConvexMcfSolve)->Arg(16)->Arg(64)->Arg(128)->Complexity();

void BM_IntervalDecomposition(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Topology topo = fat_tree(8);
  Rng rng(23);
  PaperWorkloadParams params;
  params.num_flows = n;
  const auto flows = paper_workload(topo, params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decompose_intervals(flows));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_IntervalDecomposition)->Range(32, 512)->Complexity();

void BM_FlowDecomposition(benchmark::State& state) {
  const Topology topo = fat_tree(8);
  const Graph& g = topo.graph();
  // An even 16-way split across the core (worst-case candidate count).
  const NodeId src = topo.hosts()[0];
  const NodeId dst = topo.hosts()[127];
  const auto paths = equal_cost_paths(g, src, dst, 16);
  std::vector<double> edge_flow(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (const Path& p : paths) {
    for (EdgeId e : p.edges) {
      edge_flow[static_cast<std::size_t>(e)] += 1.0 / static_cast<double>(paths.size());
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(decompose_flow(g, src, dst, edge_flow, 1.0));
  }
}
BENCHMARK(BM_FlowDecomposition);

// The full multi-interval fractional relaxation (Algorithm 2 steps 1-7)
// at the sizes the north star cares about: fat-tree k=6/k=8 with
// hundreds to a thousand concurrent deadline flows. This is the
// hot path of Random-Schedule and the headline case for the sparse
// Frank-Wolfe core. Runs the production defaults — since v2 the
// pairwise rule with the adaptive parallel oracle and the analytic
// envelope repricing. Args are {fat-tree k, num_flows}.
void BM_SolveRelaxation(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const auto n = static_cast<int>(state.range(1));
  const Topology topo = fat_tree(k);
  Rng rng(37);
  PaperWorkloadParams params;
  params.num_flows = n;
  const auto flows = paper_workload(topo, params, rng);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  RelaxationOptions options;
  options.frank_wolfe.max_iterations = 12;
  options.frank_wolfe.gap_tolerance = 1e-3;
  FrankWolfeStats stats;
  for (auto _ : state) {
    const FractionalRelaxation r =
        solve_relaxation(topo.graph(), flows, model, options);
    stats += r.fw_stats;
    benchmark::DoNotOptimize(r.lower_bound_energy);
  }
  report_fw_stats(state, stats);
  state.SetComplexityN(n);
}
BENCHMARK(BM_SolveRelaxation)
    ->Args({6, 200})
    ->Args({6, 500})
    ->Args({8, 400})
    ->Args({8, 1000})
    ->Iterations(1)  // one full multi-interval solve per measurement
    ->Unit(benchmark::kMillisecond);

// Same workload with the oracle forced sequential — the A/B baseline
// for the adaptive parallel default (oracle_threads = 0), which this
// case matched before v2 made parallel the default. Byte-identical
// results either way.
void BM_SolveRelaxationParallelOracle(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const auto n = static_cast<int>(state.range(1));
  const Topology topo = fat_tree(k);
  Rng rng(37);
  PaperWorkloadParams params;
  params.num_flows = n;
  const auto flows = paper_workload(topo, params, rng);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  RelaxationOptions options;
  options.frank_wolfe.max_iterations = 12;
  options.frank_wolfe.gap_tolerance = 1e-3;
  options.frank_wolfe.oracle_threads = -1;  // forced sequential
  FrankWolfeStats stats;
  for (auto _ : state) {
    const FractionalRelaxation r =
        solve_relaxation(topo.graph(), flows, model, options);
    stats += r.fw_stats;
    benchmark::DoNotOptimize(r.lower_bound_energy);
  }
  report_fw_stats(state, stats);
  state.SetComplexityN(n);
}
BENCHMARK(BM_SolveRelaxationParallelOracle)
    ->Args({8, 400})
    ->Args({8, 1000})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The online scheduler's hot path: a warm-started incremental re-solve
// after one mouse arrival, from the carried rows of a tighter prior
// solve (the regime of tests/online_warm_start_test.cc at fleet
// scale). The Classic/Pairwise pair is the step_rule A/B: classic pays
// the last-mile shedding stall on every re-solve, pairwise moves only
// the mass the arrival displaced. Args are {fat-tree k, num_flows}.
void warm_resolve_bench(benchmark::State& state, FrankWolfeStepRule rule) {
  const auto k = static_cast<int>(state.range(0));
  const auto n = static_cast<int>(state.range(1));
  const Topology topo = fat_tree(k);
  Rng rng(37);
  PaperWorkloadParams params;
  params.num_flows = n;
  auto flows = paper_workload(topo, params, rng);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);

  RelaxationOptions tight;
  tight.frank_wolfe.max_iterations = 30;
  tight.frank_wolfe.gap_tolerance = 1e-3;
  RelaxationWorkspace workspace;
  const FractionalRelaxation prior =
      solve_relaxation(topo.graph(), flows, model, tight, &workspace);

  Flow arrival = flows.back();
  arrival.id = static_cast<FlowId>(flows.size());
  arrival.volume *= 0.05;
  flows.push_back(arrival);
  std::vector<SparseEdgeFlow> warm_rows = prior.final_flow;
  warm_rows.emplace_back();  // the arrival starts cold

  RelaxationOptions budget;
  budget.frank_wolfe.max_iterations = 15;
  budget.frank_wolfe.gap_tolerance = 2e-3;
  budget.frank_wolfe.step_rule = rule;
  std::int64_t iterations = 0;
  FrankWolfeStats stats;
  for (auto _ : state) {
    const FractionalRelaxation warm = solve_relaxation(
        topo.graph(), flows, model, budget, &workspace, &warm_rows);
    iterations += warm.total_fw_iterations;
    stats += warm.fw_stats;
    benchmark::DoNotOptimize(warm.lower_bound_energy);
  }
  state.counters["fw_iterations"] =
      benchmark::Counter(static_cast<double>(iterations));
  report_fw_stats(state, stats);
  state.SetComplexityN(n);
}

void BM_SolveRelaxationWarmClassic(benchmark::State& state) {
  warm_resolve_bench(state, FrankWolfeStepRule::kClassic);
}
BENCHMARK(BM_SolveRelaxationWarmClassic)
    ->Args({8, 400})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_SolveRelaxationWarmPairwise(benchmark::State& state) {
  warm_resolve_bench(state, FrankWolfeStepRule::kPairwise);
}
BENCHMARK(BM_SolveRelaxationWarmPairwise)
    ->Args({8, 400})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_SolveRelaxationWarmAway(benchmark::State& state) {
  warm_resolve_bench(state, FrankWolfeStepRule::kAwayStep);
}
BENCHMARK(BM_SolveRelaxationWarmAway)
    ->Args({8, 400})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_RandomScheduleFull(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Topology topo = fat_tree(8);
  Rng wl(29);
  PaperWorkloadParams params;
  params.num_flows = n;
  const auto flows = paper_workload(topo, params, wl);
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);
  RandomScheduleOptions options;
  // The registry's v2 calibrated budget (see src/engine/registry.cc).
  options.relaxation.frank_wolfe.max_iterations = 12;
  options.relaxation.frank_wolfe.gap_tolerance = 1e-3;
  for (auto _ : state) {
    Rng rng(31);
    benchmark::DoNotOptimize(random_schedule(topo.graph(), flows, model, rng, options));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RandomScheduleFull)
    ->Arg(40)
    ->Arg(80)
    ->Iterations(2)  // seconds per solve; bound the harness runtime
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dcn

// Expanded BENCHMARK_MAIN() so a ThreadSanitizer build can stamp the
// JSON context: bench_to_json.py refuses such captures the same way it
// refuses debug benchmark-library ones (TSan is a 5-15x slowdown — the
// numbers must never fold into a tracked snapshot).
int main(int argc, char** argv) {
  if (DCN_BENCH_TSAN) {
    benchmark::AddCustomContext("dcn_sanitizer", "thread");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
