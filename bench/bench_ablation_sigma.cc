// Ablation A3: idle-power share. Sweeps sigma at fixed mu = 1,
// alpha = 2 and reports RS, SP+MCF and the greedy consolidation
// baseline normalized by LB. As sigma grows, turning links off
// dominates and routing consolidation (RS, greedy) pulls further ahead
// of shortest-path routing, which scatters flows over many links.
#include <cstdio>

#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "sim/replay.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dcn;
  const bench::Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 5));
  const int num_flows = static_cast<int>(args.get_int("flows", 60));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 53));

  const Topology topo = fat_tree(8);
  const Graph& g = topo.graph();

  std::printf(
      "Ablation A3: idle power sweep (mu=1, alpha=2, %d flows, %d runs)\n",
      num_flows, runs);
  bench::rule();
  std::printf("%8s  %14s  %14s  %14s  %12s\n", "sigma", "RS/LB", "SP+MCF/LB",
              "Greedy/LB", "RS links");
  bench::rule();

  for (double sigma : {0.0, 0.1, 0.5, 1.0, 2.0, 5.0}) {
    const PowerModel model(sigma, 1.0, 2.0);
    RunningStats rs_ratio, sp_ratio, greedy_ratio, rs_links;
    for (int run = 0; run < runs; ++run) {
      Rng rng(seed + static_cast<std::uint64_t>(run));
      PaperWorkloadParams params;
      params.num_flows = num_flows;
      const auto flows = paper_workload(topo, params, rng);
      const Interval horizon = flow_horizon(flows);

      RandomScheduleOptions options;
      options.relaxation.frank_wolfe.max_iterations = 15;
      options.relaxation.frank_wolfe.gap_tolerance = 2e-3;
      const auto rs = random_schedule(g, flows, model, rng, options);
      if (!rs.capacity_feasible) continue;
      const auto rs_replay = replay_schedule(g, flows, rs.schedule, model);

      const auto sp = sp_mcf(g, flows, model);
      const double sp_energy = energy_phi_f(g, sp.schedule, model, horizon);

      const Schedule greedy = greedy_energy_aware(g, flows, model);
      const double greedy_energy = energy_phi_f(g, greedy, model, horizon);

      rs_ratio.add(rs_replay.energy / rs.lower_bound_energy);
      sp_ratio.add(sp_energy / rs.lower_bound_energy);
      greedy_ratio.add(greedy_energy / rs.lower_bound_energy);
      rs_links.add(static_cast<double>(rs_replay.active_links));
    }
    std::printf("%8.2f  %14s  %14s  %14s  %12.1f\n", sigma,
                format_mean_ci(rs_ratio).c_str(),
                format_mean_ci(sp_ratio).c_str(),
                format_mean_ci(greedy_ratio).c_str(), rs_links.mean());
  }
  return 0;
}
