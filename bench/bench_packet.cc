// Packet-realizability study (Sec. III-C): how close does a real
// store-and-forward, priority-queued network get to the fluid schedules
// the algorithms emit?
//
// For the paper's workload, runs Random-Schedule and SP+MCF, packetizes
// both at several packet sizes, and reports worst-case lateness against
// the per-flow pipeline allowance (|P|-1) * S / s_min. Lateness should
// (a) stay within the allowance and (b) shrink linearly as packets
// shrink — the executable version of the paper's priority argument.
#include <cstdio>

#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "sim/packet_sim.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dcn;
  const bench::Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 3));
  const int num_flows = static_cast<int>(args.get_int("flows", 60));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 19));

  const Topology topo = fat_tree(8);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);

  std::printf(
      "Packet realizability (fat_tree(8), alpha=2, %d flows, %d runs)\n",
      num_flows, runs);
  bench::rule();
  std::printf("%14s  %10s  %14s  %14s  %10s\n", "schedule", "pkt size",
              "max lateness", "verdict ok", "max queue");
  bench::rule();

  RandomScheduleOptions rs_options;
  rs_options.relaxation.frank_wolfe.max_iterations = 15;
  rs_options.relaxation.frank_wolfe.gap_tolerance = 2e-3;

  for (double packet_size : {0.5, 0.1, 0.02}) {
    RunningStats rs_late, sp_edf_late, sp_start_late, rs_queue;
    int rs_ok = 0, sp_edf_ok = 0, sp_start_ok = 0, total = 0;
    for (int run = 0; run < runs; ++run) {
      Rng rng(seed + static_cast<std::uint64_t>(run));
      PaperWorkloadParams params;
      params.num_flows = num_flows;
      const auto flows = paper_workload(topo, params, rng);

      const auto rs = random_schedule(g, flows, model, rng, rs_options);
      if (!rs.capacity_feasible) continue;
      const auto sp = sp_mcf(g, flows, model);
      ++total;

      PacketSimOptions options;
      options.packet_size = packet_size;
      const auto rs_report = packet_simulate(g, flows, rs.schedule, options);
      const auto sp_edf = packet_simulate(g, flows, sp.schedule, options);
      options.priority = PacketSimOptions::Priority::kStartTime;
      const auto sp_start = packet_simulate(g, flows, sp.schedule, options);

      rs_late.add(rs_report.max_lateness);
      sp_edf_late.add(sp_edf.max_lateness);
      sp_start_late.add(sp_start.max_lateness);
      rs_queue.add(static_cast<double>(rs_report.max_queue_packets));
      if (rs_report.all_deadlines_met) ++rs_ok;
      if (sp_edf.all_deadlines_met) ++sp_edf_ok;
      if (sp_start.all_deadlines_met) ++sp_start_ok;
    }
    std::printf("%14s  %10.3f  %14.5f  %11d/%d  %10.0f\n", "RS (EDF)",
                packet_size, rs_late.mean(), rs_ok, total, rs_queue.mean());
    std::printf("%14s  %10.3f  %14.5f  %11d/%d\n", "SP+MCF (EDF)", packet_size,
                sp_edf_late.mean(), sp_edf_ok, total);
    std::printf("%14s  %10.3f  %14.5f  %11d/%d\n", "SP+MCF (start)",
                packet_size, sp_start_late.mean(), sp_start_ok, total);
  }
  std::printf(
      "\nReading: under EDF packet priorities, lateness tracks the packet\n"
      "size linearly and stays within the pipeline-fill envelope — the fluid\n"
      "schedules are realizable in a packet-switched network (Sec. III-C).\n"
      "Under the paper's start-time priority rule, lateness does NOT shrink\n"
      "with the packet size: late-starting tight flows are starved behind\n"
      "early-starting loose flows on shared links (reproduction finding;\n"
      "see EXPERIMENTS.md).\n");
  return 0;
}
