// Ablation A2: sensitivity of Random-Schedule to the interval
// granularity lambda = (t_K - t_0) / min_k |I_k| of Theorem 6's bound.
//
// Workloads are generated with release/deadline times snapped to grids
// of decreasing pitch; a coarser grid merges breakpoints and lowers
// lambda. Reported: measured lambda, interval count, and the RS/LB
// ratio — Theorem 6 predicts degradation as lambda^alpha, the measured
// effect is much milder on random traffic.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "sim/replay.h"
#include "topology/builders.h"

namespace {

/// Snaps every release/deadline to multiples of `pitch` (keeping spans
/// non-degenerate).
std::vector<dcn::Flow> snap_to_grid(std::vector<dcn::Flow> flows, double pitch) {
  for (dcn::Flow& fl : flows) {
    fl.release = std::floor(fl.release / pitch) * pitch;
    fl.deadline = std::ceil(fl.deadline / pitch) * pitch;
    if (fl.deadline - fl.release < pitch) fl.deadline = fl.release + pitch;
  }
  return flows;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcn;
  const bench::Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 5));
  const int num_flows = static_cast<int>(args.get_int("flows", 80));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 97));

  const Topology topo = fat_tree(8);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);

  std::printf("Ablation A2: interval granularity (alpha=2, %d flows, %d runs)\n",
              num_flows, runs);
  bench::rule();
  std::printf("%10s  %12s  %10s  %14s\n", "grid", "lambda", "intervals", "RS/LB");
  bench::rule();

  for (double pitch : {0.0, 1.0, 2.0, 5.0, 10.0, 25.0}) {
    RunningStats lambda_stats, interval_stats, ratio;
    for (int run = 0; run < runs; ++run) {
      Rng rng(seed + static_cast<std::uint64_t>(run));
      PaperWorkloadParams params;
      params.num_flows = num_flows;
      auto flows = paper_workload(topo, params, rng);
      if (pitch > 0.0) flows = snap_to_grid(std::move(flows), pitch);

      RandomScheduleOptions options;
      options.relaxation.frank_wolfe.max_iterations = 15;
      options.relaxation.frank_wolfe.gap_tolerance = 2e-3;
      const auto rs = random_schedule(g, flows, model, rng, options);
      if (!rs.capacity_feasible) continue;
      const auto replay = replay_schedule(g, flows, rs.schedule, model);
      if (!replay.ok) continue;
      lambda_stats.add(rs.lambda);
      const auto dec = decompose_intervals(flows);
      interval_stats.add(static_cast<double>(dec.num_intervals()));
      ratio.add(replay.energy / rs.lower_bound_energy);
    }
    std::printf("%10.1f  %12.1f  %10.0f  %14s\n", pitch, lambda_stats.mean(),
                interval_stats.mean(), format_mean_ci(ratio).c_str());
  }
  return 0;
}
