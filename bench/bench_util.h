// Shared helpers for the benchmark harnesses: flag parsing and table
// printing. Every bench prints its configuration (including seeds) so
// EXPERIMENTS.md rows are reproducible from the logged command line.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace dcn::bench {

/// Minimal --key value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) tokens_.emplace_back(argv[i]);
  }

  [[nodiscard]] bool has_flag(const std::string& name) const {
    for (const std::string& t : tokens_) {
      if (t == "--" + name) return true;
    }
    return false;
  }

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const {
    for (std::size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i] == "--" + name) return tokens_[i + 1];
    }
    return fallback;
  }

  [[nodiscard]] double get_double(const std::string& name, double fallback) const {
    const std::string v = get(name, "");
    return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
  }

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const {
    const std::string v = get(name, "");
    return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
  }

  /// Comma-separated integer list.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& fallback) const {
    const std::string v = get(name, "");
    if (v.empty()) return fallback;
    std::vector<std::int64_t> out;
    std::size_t pos = 0;
    while (pos < v.size()) {
      std::size_t next = v.find(',', pos);
      if (next == std::string::npos) next = v.size();
      out.push_back(std::strtoll(v.substr(pos, next - pos).c_str(), nullptr, 10));
      pos = next + 1;
    }
    return out;
  }

 private:
  std::vector<std::string> tokens_;
};

/// Prints a horizontal rule sized for typical tables.
inline void rule() {
  std::printf("-------------------------------------------------------------------------------\n");
}

}  // namespace dcn::bench
