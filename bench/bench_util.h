// Shared helpers for the benchmark harnesses.
//
// The flag parser and table helpers now live in the engine CLI layer
// (src/engine/cli.h) so dcn_run and every bench share one
// implementation; this header keeps the historical dcn::bench names
// working for the bench sources.
#pragma once

#include "engine/cli.h"

// Sanitizer-instrumented benchmark captures must be refusable down the
// pipeline (tools/bench_to_json.py), exactly like debug-library ones:
// TSan alone is a 5-15x slowdown, so such numbers are never comparable
// to tracked Release snapshots. Benches stamp their JSON context with
// this flag.
#if defined(__SANITIZE_THREAD__)
#define DCN_BENCH_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DCN_BENCH_TSAN 1
#endif
#endif
#ifndef DCN_BENCH_TSAN
#define DCN_BENCH_TSAN 0
#endif

namespace dcn::bench {

using Args = ::dcn::cli::Args;
using ::dcn::cli::rule;

}  // namespace dcn::bench
