// Shared helpers for the benchmark harnesses.
//
// The flag parser and table helpers now live in the engine CLI layer
// (src/engine/cli.h) so dcn_run and every bench share one
// implementation; this header keeps the historical dcn::bench names
// working for the bench sources.
#pragma once

#include "engine/cli.h"

namespace dcn::bench {

using Args = ::dcn::cli::Args;
using ::dcn::cli::rule;

}  // namespace dcn::bench
