// Figure 1 / Example 1 reproduction: the line network A - B - C with
// f(x) = x^2 and flows
//   j1 = (A -> C, r=2, d=4, w=6),   j2 = (A -> B, r=1, d=3, w=8).
// The paper derives the optimal schedule in closed form:
//   sqrt(2) * s1 = s2 = (8 + 6 sqrt 2) / 3.
// This harness runs Most-Critical-First on the instance and prints the
// computed rates, timings and energy against the closed form.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "dcfs/most_critical_first.h"
#include "graph/shortest_path.h"
#include "schedule/schedule.h"
#include "sim/replay.h"
#include "topology/builders.h"

int main() {
  using namespace dcn;

  const Topology topo = line_network(3);
  const Graph& g = topo.graph();
  const std::vector<Flow> flows{
      {0, 0, 2, 6.0, 2.0, 4.0},  // j1: A -> C
      {1, 0, 1, 8.0, 1.0, 3.0},  // j2: A -> B
  };
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);

  std::vector<Path> paths;
  for (const Flow& fl : flows) {
    paths.push_back(*bfs_shortest_path(g, fl.src, fl.dst));
  }
  const DcfsResult result = most_critical_first(g, flows, paths, model);

  const double s2_closed = (8.0 + 6.0 * std::sqrt(2.0)) / 3.0;
  const double s1_closed = s2_closed / std::sqrt(2.0);
  const double phi_closed = 2.0 * 6.0 * s1_closed + 8.0 * s2_closed;
  const double phi_measured =
      energy_phi_g(g, result.schedule, model, flow_horizon(flows));

  std::printf("Example 1 (Fig. 1): line network A-B-C, f(x) = x^2\n");
  bench::rule();
  std::printf("%22s  %12s  %12s  %10s\n", "quantity", "closed form", "computed",
              "abs err");
  bench::rule();
  std::printf("%22s  %12.6f  %12.6f  %10.2e\n", "s1 (A->C, 2 hops)", s1_closed,
              result.rates[0], std::fabs(result.rates[0] - s1_closed));
  std::printf("%22s  %12.6f  %12.6f  %10.2e\n", "s2 (A->B, 1 hop)", s2_closed,
              result.rates[1], std::fabs(result.rates[1] - s2_closed));
  std::printf("%22s  %12.6f  %12.6f  %10.2e\n", "energy Phi_g", phi_closed,
              phi_measured, std::fabs(phi_measured - phi_closed));

  const auto replay = replay_schedule(g, flows, result.schedule, model);
  std::printf("\nschedule detail (EDF inside critical interval [1,4]):\n");
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (const RateSegment& seg : result.schedule.flows[i].segments) {
      std::printf("  j%zu: [%.4f, %.4f) at rate %.4f\n", i + 1, seg.interval.lo,
                  seg.interval.hi, seg.rate);
    }
  }
  std::printf("replay: %s, energy %.6f, active links %d\n",
              replay.ok ? "ok" : "VIOLATIONS", replay.energy,
              replay.active_links);
  return replay.ok ? 0 : 1;
}
