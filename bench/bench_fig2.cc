// Figure 2 reproduction: approximation performance of Random-Schedule.
//
// Paper setup (Sec. V-C): fat-tree with 80 switches / 128 hosts
// (fat_tree(8)), horizon [1, 100], release times and deadlines uniform
// in [1, 100], volumes ~ N(10, 3), flow counts 40..200, power functions
// x^2 and x^4, 10 independent runs. Reported series, all normalized by
// the fractional lower bound LB:
//   * RS      — Random-Schedule (Algorithm 2),
//   * SP+MCF  — shortest-path routing + Most-Critical-First.
//
// Flags: --alpha <a> (run one exponent; default runs 2 then 4),
//        --runs <n> (default 10, as in the paper),
//        --flows <list> (default 40,80,120,160,200),
//        --seed <s> (base seed, default 2014),
//        --fw-iters <n> / --fw-gap <g> (Frank-Wolfe budget).
#include <cstdio>

#include "baselines/baselines.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "dcfsr/random_schedule.h"
#include "flow/workload.h"
#include "sim/replay.h"
#include "topology/builders.h"

namespace dcn {
namespace {

struct SeriesPoint {
  RunningStats rs_ratio;
  RunningStats sp_ratio;
  RunningStats lb_energy;
  std::vector<double> rs_samples;
  std::vector<double> sp_samples;
  int infeasible_roundings = 0;
};

void run_alpha(double alpha, const std::vector<std::int64_t>& flow_counts,
               int runs, std::uint64_t base_seed, const FrankWolfeOptions& fw) {
  const Topology topo = fat_tree(8);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(alpha);

  std::printf("\n=== Figure 2: power function x^%.3g on %s ===\n", alpha,
              topo.name().c_str());
  std::printf("%8s  %16s  %8s  %16s  %8s  %12s  %4s\n", "flows", "RS/LB mean",
              "median", "SP+MCF/LB mean", "median", "LB energy", "inf");
  bench::rule();

  for (std::int64_t n : flow_counts) {
    SeriesPoint point;
    for (int run = 0; run < runs; ++run) {
      Rng rng(base_seed + 1000003ULL * static_cast<std::uint64_t>(n) +
              static_cast<std::uint64_t>(run));
      PaperWorkloadParams params;
      params.num_flows = static_cast<std::int32_t>(n);
      const auto flows = paper_workload(topo, params, rng);

      RandomScheduleOptions options;
      options.relaxation.frank_wolfe = fw;
      const auto rs = random_schedule(g, flows, model, rng, options);
      if (!rs.capacity_feasible) {
        ++point.infeasible_roundings;
        continue;
      }
      const auto rs_replay = replay_schedule(g, flows, rs.schedule, model);
      if (!rs_replay.ok) {
        std::printf("!! RS replay failed (n=%lld run=%d): %s\n",
                    static_cast<long long>(n), run,
                    rs_replay.issues.front().c_str());
        continue;
      }

      const auto sp = sp_mcf(g, flows, model);
      const double sp_energy =
          energy_phi_f(g, sp.schedule, model, flow_horizon(flows));

      point.lb_energy.add(rs.lower_bound_energy);
      point.rs_ratio.add(rs_replay.energy / rs.lower_bound_energy);
      point.sp_ratio.add(sp_energy / rs.lower_bound_energy);
      point.rs_samples.push_back(rs_replay.energy / rs.lower_bound_energy);
      point.sp_samples.push_back(sp_energy / rs.lower_bound_energy);
    }
    const double rs_median =
        point.rs_samples.empty() ? 0.0 : percentile(point.rs_samples, 0.5);
    const double sp_median =
        point.sp_samples.empty() ? 0.0 : percentile(point.sp_samples, 0.5);
    std::printf("%8lld  %16s  %8.3f  %16s  %8.3f  %12.1f  %4d\n",
                static_cast<long long>(n), format_mean_ci(point.rs_ratio).c_str(),
                rs_median, format_mean_ci(point.sp_ratio).c_str(), sp_median,
                point.lb_energy.mean(), point.infeasible_roundings);
  }
}

}  // namespace
}  // namespace dcn

int main(int argc, char** argv) {
  const dcn::bench::Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 10));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 2014));
  const auto flow_counts = args.get_int_list("flows", {40, 80, 120, 160, 200});
  dcn::FrankWolfeOptions fw;
  // Budget calibrated so LB moves < 0.5% versus a 4x larger budget while
  // the sweep finishes in minutes (see EXPERIMENTS.md).
  fw.max_iterations = static_cast<std::int32_t>(args.get_int("fw-iters", 15));
  fw.gap_tolerance = args.get_double("fw-gap", 2e-3);

  std::printf("bench_fig2: runs=%d seed=%llu fw-iters=%d fw-gap=%g\n", runs,
              static_cast<unsigned long long>(seed), fw.max_iterations,
              fw.gap_tolerance);

  const double alpha = args.get_double("alpha", 0.0);
  if (alpha > 0.0) {
    dcn::run_alpha(alpha, flow_counts, runs, seed, fw);
  } else {
    dcn::run_alpha(2.0, flow_counts, runs, seed, fw);
    dcn::run_alpha(4.0, flow_counts, runs, seed, fw);
  }
  return 0;
}
