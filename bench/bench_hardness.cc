// Theorems 2 and 3: the hardness constructions, made executable.
//
// Part 1 tabulates the Theorem 3 inapproximability bound
//   gamma(alpha) = 3/2 * (1 + ((2/3)^alpha - 1)/alpha)
// and verifies it against the two certificate energies of the proof's
// parallel-link gadget (2 links at rate C vs 3 links at rate 2C/3).
//
// Part 2 builds Theorem 2's 3-partition gadget and compares the energy
// of the perfect-partition schedule (phi0) with imbalanced groupings and
// with what Random-Schedule actually achieves on the gadget.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "dcfsr/hardness.h"
#include "dcfsr/random_schedule.h"
#include "sim/replay.h"

int main(int argc, char** argv) {
  using namespace dcn;
  const bench::Args args(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  std::printf("Part 1: Theorem 3 inapproximability bound gamma(alpha)\n");
  bench::rule();
  std::printf("%8s  %14s  %22s\n", "alpha", "gamma bound", "certificate ratio");
  bench::rule();
  for (double alpha : {1.5, 2.0, 3.0, 4.0, 6.0}) {
    const double mu = 1.0, c = 5.0;
    const double sigma = mu * std::pow(c, alpha) * (alpha - 1.0);
    const PowerModel model(sigma, mu, alpha, c);
    const double two_link = 2.0 * sigma + 2.0 * mu * std::pow(c, alpha);
    const double three_link =
        3.0 * sigma + 3.0 * mu * std::pow(2.0 * c / 3.0, alpha);
    std::printf("%8.2f  %14.6f  %22.6f\n", alpha,
                model.inapproximability_bound(), three_link / two_link);
  }

  std::printf("\nPart 2: Theorem 2 gadget (3-partition, B = 12, m = 3)\n");
  bench::rule();
  // 9 volumes in (B/4, B/2) = (3, 6) summing to 3B = 36, admitting the
  // perfect partition {5,4,3} x 3.
  const std::vector<double> volumes{5.0, 4.0, 3.0, 5.0, 4.0, 3.0, 5.0, 4.0, 3.0};
  const auto inst = three_partition_instance(volumes, 12.0, 1.0, 2.0, 9);
  std::printf("R_opt = %.4f (calibrated to B), phi0 = %.4f\n",
              inst.model.r_opt(), inst.phi0);

  const double perfect =
      grouped_energy(inst, {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}});
  const double imbalanced =
      grouped_energy(inst, {{0, 3, 6}, {1, 4, 7}, {2, 5, 8}});
  const double one_link = grouped_energy(inst, {{0, 1, 2, 3, 4, 5, 6, 7, 8}});
  std::printf("perfect partition {5,4,3}:      %.4f  (ratio %.4f)\n", perfect,
              perfect / inst.phi0);
  std::printf("imbalanced {5,5,5}/{4,4,4}/...: %.4f  (ratio %.4f)\n", imbalanced,
              imbalanced / inst.phi0);
  std::printf("all on one link:                %.4f  (ratio %.4f)\n", one_link,
              one_link / inst.phi0);

  Rng rng(seed);
  const auto rs =
      random_schedule(inst.topology.graph(), inst.flows, inst.model, rng);
  const auto replay = replay_schedule(inst.topology.graph(), inst.flows,
                                      rs.schedule, inst.model);
  std::printf("\nRandom-Schedule on the gadget (seed %llu):\n",
              static_cast<unsigned long long>(seed));
  std::printf("  energy %.4f, ratio to phi0 %.4f, LB %.4f, replay %s\n",
              replay.energy, replay.energy / inst.phi0, rs.lower_bound_energy,
              replay.ok ? "ok" : "VIOLATIONS");
  return 0;
}
