// Ablation A9: multipath via flow splitting (the Sec. II-B remark).
//
// Every flow is split into `ways` equal subflows that round their paths
// independently inside Random-Schedule. More ways = finer realization
// of the fractional relaxation (lower energy, approaching LB) at the
// cost of packet reordering across subflow paths at the destination.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "dcfsr/random_schedule.h"
#include "flow/split.h"
#include "flow/workload.h"
#include "sim/replay.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dcn;
  const bench::Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 5));
  const int num_flows = static_cast<int>(args.get_int("flows", 60));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 83));

  const Topology topo = fat_tree(8);
  const Graph& g = topo.graph();
  const PowerModel model = PowerModel::pure_speed_scaling(2.0);

  std::printf("Ablation A9: flow splitting (alpha=2, %d flows, %d runs)\n",
              num_flows, runs);
  bench::rule();
  std::printf("%8s  %14s  %16s\n", "ways", "RS/LB", "parent volumes ok");
  bench::rule();

  RandomScheduleOptions options;
  options.relaxation.frank_wolfe.max_iterations = 15;
  options.relaxation.frank_wolfe.gap_tolerance = 2e-3;

  for (int ways : {1, 2, 4, 8}) {
    RunningStats ratio;
    int volumes_ok = 0, total = 0;
    for (int run = 0; run < runs; ++run) {
      Rng rng(seed + static_cast<std::uint64_t>(run));
      PaperWorkloadParams params;
      params.num_flows = num_flows;
      const auto flows = paper_workload(topo, params, rng);
      const SplitResult split = split_flows(flows, ways);

      const auto rs = random_schedule(g, split.subflows, model, rng, options);
      if (!rs.capacity_feasible) continue;
      const auto replay = replay_schedule(g, split.subflows, rs.schedule, model);
      if (!replay.ok) continue;
      ratio.add(replay.energy / rs.lower_bound_energy);

      // Each parent's subflow deliveries must add up to its volume.
      const auto delivered =
          aggregate_by_parent(split, replay.delivered, flows.size());
      ++total;
      bool ok = true;
      for (std::size_t i = 0; i < flows.size(); ++i) {
        if (std::abs(delivered[i] - flows[i].volume) > 1e-6 * flows[i].volume) {
          ok = false;
        }
      }
      if (ok) ++volumes_ok;
    }
    std::printf("%8d  %14s  %13d/%d\n", ways, format_mean_ci(ratio).c_str(),
                volumes_ok, total);
  }
  std::printf(
      "\nReading: splitting lets the rounding mirror the fractional optimum\n"
      "per subflow; the ratio decreases toward the integrality-free limit.\n");
  return 0;
}
