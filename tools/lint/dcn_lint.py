#!/usr/bin/env python3
"""dcn_lint — repo-specific determinism lint for the dcn engine.

The engine's headline guarantee is byte-identical canonical output for
any --jobs, shard count, or worker count. CI enforces it end to end
with cmp grids, but nothing stopped a PR from introducing an
order-dependent iteration or a stray wall-clock read on a path the
grids do not cover. This tool makes the conventions mechanical:

  unordered-iter   No iteration over std::unordered_map/set (or
                   aliases of them) in canonical-result code under
                   src/. Hash-order iteration feeds float accumulation
                   in a platform/libstdc++-dependent order, which
                   breaks byte-determinism. Membership tests, inserts,
                   and lookups are fine; collect-keys-then-sort is the
                   blessed pattern (annotate the collection loop).

  wall-clock       No std::chrono/clock reads under src/ outside the
                   annotated timing-capture sites. Wall time must only
                   ever reach SolverOutcome::timings (never canonical
                   output, never `stats`); every capture site carries
                   a visible annotation saying where the value goes.
                   bench/, tools/, and tests/ are exempt — measuring
                   time is their job.

  raw-random       No rand()/std::random_device/raw std::mt19937
                   outside src/common/random. All randomness flows
                   through the seeded dcn::Rng (xoshiro256**) so every
                   experiment replays bit-for-bit; std::random_device
                   is non-deterministic by definition and the std
                   engines/distributions vary across standard-library
                   implementations.

  raw-thread       No raw std::thread/std::jthread/std::async/detach()
                   outside src/common/parallel. Ad-hoc threads bypass
                   the WorkerPool's determinism-by-construction task
                   claiming and its TSan-vetted synchronization.
                   (std::thread::hardware_concurrency() is a static
                   query and stays allowed.)

  std-function-hot No std::function in src/opt/ — the Frank-Wolfe hot
                   loops (PR 6 measured 567M type-erased calls per
                   cold 8/1000 solve before templating line_search).
                   Use templates over concrete callables.

Suppression is visible and reasoned, never silent:

    // dcn-lint: allow(<rule>) <non-empty reason>

on the offending line, or alone on the line above it. An allow() with
an empty reason or an unknown rule name is itself a violation.

Modes: the default engine is a comment/string-stripping tokenizer with
per-rule regexes — deterministic, dependency-free, and what CI runs.
`--ast` additionally refines unordered-iter through libclang
(clang.cindex over compile_commands.json) when the bindings are
installed; without them it degrades to the regex engine with a notice
(the container image does not ship python3-clang).

Usage:
    python3 tools/lint/dcn_lint.py [--root DIR] [files...]
    python3 tools/lint/dcn_lint.py --list-rules
Exit status: 0 clean, 1 violations, 2 usage/internal error.
"""
from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import sys

# --------------------------------------------------------------------------
# Rule table

RULES = {
    "unordered-iter":
        "iteration over std::unordered_{map,set} in canonical-result code",
    "wall-clock":
        "clock read outside an annotated timing-capture site",
    "raw-random":
        "raw std random source outside src/common/random",
    "raw-thread":
        "raw thread/async outside src/common/parallel",
    "std-function-hot":
        "std::function in src/opt/ hot-loop code",
}

# Directories (relative, POSIX) each rule patrols, and files exempt by
# charter (the home of the blessed facility itself).
RULE_SCOPE = {
    "unordered-iter": {"dirs": ("src",), "exempt": ()},
    "wall-clock": {"dirs": ("src",), "exempt": ()},
    "raw-random": {
        "dirs": ("src", "tools"),
        "exempt": ("src/common/random.h", "src/common/random.cc"),
    },
    "raw-thread": {
        "dirs": ("src", "tools"),
        "exempt": ("src/common/parallel.h", "src/common/parallel.cc"),
    },
    "std-function-hot": {"dirs": ("src/opt",), "exempt": ()},
}

SOURCE_SUFFIXES = (".cc", ".cpp", ".cxx", ".h", ".hpp")

ALLOW_RE = re.compile(r"//\s*dcn-lint:\s*allow\(([^)]*)\)\s*(.*?)\s*$")

WALL_CLOCK_RE = re.compile(
    r"\bstd::chrono\b|\bclock_gettime\b|\bgettimeofday\b"
    r"|\bsteady_clock\b|\bsystem_clock\b|\bhigh_resolution_clock\b"
    r"|\bstd::time\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
)
RAW_RANDOM_RE = re.compile(
    r"\bstd::rand\b|\bsrand\s*\(|\brand\s*\(|\bstd::random_device\b"
    r"|\bstd::mt19937(?:_64)?\b|\bstd::minstd_rand0?\b"
    r"|\bstd::default_random_engine\b|\bstd::ranlux"
)
# std::thread::hardware_concurrency() is a static query — skipped via
# the (?!\s*::) lookahead.
RAW_THREAD_RE = re.compile(
    r"\bstd::thread\b(?!\s*::)|\bstd::jthread\b|\bstd::async\b"
    r"|\.\s*detach\s*\("
)
STD_FUNCTION_RE = re.compile(r"\bstd::function\b")

UNORDERED_TYPE_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
# `using Alias = std::unordered_map<...>` / `typedef std::unordered_set<...> Alias;`
UNORDERED_ALIAS_USING_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*(?:typename\s+)?std::unordered_")
UNORDERED_ALIAS_TYPEDEF_RE = re.compile(
    r"\btypedef\b.*\bstd::unordered_.*?\b(\w+)\s*;")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*?):([^)]*)\)")
BEGIN_CALL_RE = re.compile(
    r"\b(\w+)\s*((?:\[[^\]]*\])?)\s*\.\s*c?r?(?:begin|end)\s*\(")
IDENT_RE = re.compile(r"\b([A-Za-z_]\w*)\b")


@dataclasses.dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Comment/string stripping

def strip_comments_and_strings(text: str) -> list[str]:
    """Returns the file's lines with comments, string and char literals
    blanked out (replaced by spaces), preserving line structure so
    reported line numbers match the raw file."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    buf = []
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                buf.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                buf.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw strings R"delim(...)delim" — find the real end.
                if buf and buf[-1] and buf[-1][-1] == "R" and re.search(
                        r"\bR$", "".join(buf[-8:])):
                    m = re.match(r'"([^(]{0,16})\(', text[i:])
                    if m:
                        closer = ")" + m.group(1) + '"'
                        end = text.find(closer, i + len(m.group(0)))
                        end = end + len(closer) if end != -1 else n
                        buf.append("".join(ch if ch == "\n" else " "
                                           for ch in text[i:end]))
                        i = end
                        continue
                state = "string"
                buf.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                buf.append(" ")
                i += 1
                continue
            buf.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                buf.append("\n")
            else:
                buf.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                buf.append("  ")
                i += 2
            else:
                buf.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                buf.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                buf.append(" ")
                i += 1
            else:
                buf.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(buf).split("\n")


# --------------------------------------------------------------------------
# Suppression annotations

def collect_allows(raw_lines: list[str], code_lines: list[str],
                   path: str) -> tuple[dict[int, set[str]], list[Violation]]:
    """Maps 0-based line index -> set of allowed rule names.

    An annotation on a line with code covers that line; an annotation
    alone on a line covers the next line that carries code. Empty
    reasons and unknown rule names are violations in their own right.
    """
    allows: dict[int, set[str]] = {}
    violations: list[Violation] = []
    for idx, raw in enumerate(raw_lines):
        m = ALLOW_RE.search(raw)
        if not m:
            if "dcn-lint:" in raw:
                violations.append(Violation(
                    path, idx + 1, "annotation",
                    "malformed dcn-lint annotation; expected "
                    "'// dcn-lint: allow(<rule>) <reason>'"))
            continue
        rule, reason = m.group(1).strip(), m.group(2).strip()
        if rule not in RULES:
            violations.append(Violation(
                path, idx + 1, "annotation",
                f"allow() names unknown rule '{rule}' "
                f"(known: {', '.join(sorted(RULES))})"))
            continue
        if not reason:
            violations.append(Violation(
                path, idx + 1, "annotation",
                f"allow({rule}) requires a non-empty reason — say why "
                "the invariant holds here"))
            continue
        target = idx
        if not code_lines[idx].strip():
            # Annotation-only line: covers the next code-bearing line.
            for j in range(idx + 1, len(code_lines)):
                if code_lines[j].strip():
                    target = j
                    break
        allows.setdefault(target, set()).add(rule)
    return allows, violations


# --------------------------------------------------------------------------
# unordered-iter: track unordered-typed names, then catch iteration

def find_unordered_names(code_lines: list[str]) -> tuple[set[str], set[str]]:
    """Returns (direct_vars, element_vars): names declared with an
    unordered type (or an alias of one), and names of containers whose
    *elements* are unordered (e.g. std::vector<PathAccumulator>)."""
    # Alias declarations often wrap across lines — search the joined
    # text (\s in the patterns matches the newline).
    joined = "\n".join(code_lines)
    aliases: set[str] = set()
    for m in UNORDERED_ALIAS_USING_RE.finditer(joined):
        aliases.add(m.group(1))
    for m in UNORDERED_ALIAS_TYPEDEF_RE.finditer(joined):
        aliases.add(m.group(1))

    alias_pat = None
    if aliases:
        alias_pat = re.compile(
            r"\b(?:" + "|".join(re.escape(a) for a in aliases) + r")\b")

    direct: set[str] = set()
    element: set[str] = set()
    decl_tail_re = re.compile(r">\s*&?\s*([A-Za-z_]\w*)\s*(?:[;={(,)]|\[|$)")
    for line in code_lines:
        mentions_unordered = bool(UNORDERED_TYPE_RE.search(line)) or bool(
            alias_pat and alias_pat.search(line))
        if not mentions_unordered:
            continue
        if re.search(r"\busing\b|\btypedef\b|#\s*include", line):
            continue
        # Wrapped in another container: iteration over the wrapper is
        # ordered, but element access (name[i].begin()) is not.
        wrapped = bool(re.search(
            r"\b(?:std::vector|std::array|std::deque)\s*<[^;]*"
            r"(?:unordered_|" + "|".join(re.escape(a) for a in aliases or
                                         {"\x00"}) + r")", line))
        # Alias used bare: `PathAccumulator accum;` or `Alias& ref = ...`.
        name = None
        m = decl_tail_re.search(line)
        if m:
            name = m.group(1)
        elif alias_pat:
            m2 = re.search(
                r"\b(?:" + "|".join(re.escape(a) for a in aliases) +
                r")\s*&?\s*([A-Za-z_]\w*)", line)
            if m2:
                name = m2.group(1)
        if not name:
            continue
        (element if wrapped else direct).add(name)
    return direct, element


def check_unordered_iter(path: str, code_lines: list[str]) -> list[Violation]:
    direct, element = find_unordered_names(code_lines)
    if not direct and not element:
        return []
    def hash_order_hits(expr: str) -> set[str]:
        """Names in `expr` whose *hash order* the expression exposes:
        a direct unordered var used bare (m[k]/.at(k) reach a mapped
        value, which is ordered), or an element var used indexed."""
        hits = set()
        for name in set(IDENT_RE.findall(expr)) & (direct | element):
            accesses = [mm.end() for mm in re.finditer(
                r"\b" + re.escape(name) + r"\b", expr)]
            value_access = all(
                re.match(r"\s*(?:\[|\.\s*at\s*\()", expr[pos:])
                for pos in accesses)
            if name in direct and not value_access:
                hits.add(name)
            if name in element and value_access:
                hits.add(name)
        return hits

    out: list[Violation] = []
    for idx, line in enumerate(code_lines):
        for m in RANGE_FOR_RE.finditer(line):
            hits = hash_order_hits(m.group(2))
            if hits:
                out.append(Violation(
                    path, idx + 1, "unordered-iter",
                    f"range-for over unordered container "
                    f"'{sorted(hits)[0]}' — hash order is not "
                    "deterministic; collect keys and sort, or use an "
                    "indexed container"))
        for m in BEGIN_CALL_RE.finditer(line):
            name, indexed = m.group(1), m.group(2)
            if name in direct or (name in element and indexed):
                out.append(Violation(
                    path, idx + 1, "unordered-iter",
                    f"iterator over unordered container '{name}' — hash "
                    "order is not deterministic"))
    return out


# --------------------------------------------------------------------------
# Optional libclang refinement (gated: the image may not ship bindings)

def ast_refine_unordered(root: pathlib.Path, rel_path: str,
                         violations: list[Violation]) -> list[Violation]:
    """With clang.cindex available, re-verify regex unordered-iter hits
    against the AST: a flagged range-for whose range expression's
    canonical type is not an unordered container is dropped. Regex
    findings stand wherever the AST is unavailable or fails to parse —
    the regex engine is the source of truth, the AST only removes
    false positives."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return violations
    ccdb_dir = root / "build"
    try:
        db = cindex.CompilationDatabase.fromDirectory(str(ccdb_dir))
        cmds = db.getCompileCommands(str(root / rel_path))
        if not cmds:
            return violations
        cmd = list(cmds)[0]
        args = [a for a in list(cmd.arguments)[1:] if a != str(cmd.filename)]
        tu = cindex.Index.create().parse(str(cmd.filename), args=args)
    except Exception:
        return violations

    unordered_for_lines: set[int] = set()

    def walk(node):
        if node.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
            children = list(node.get_children())
            if children:
                range_type = children[0].type.get_canonical().spelling
                if "unordered_" in range_type:
                    unordered_for_lines.add(node.location.line)
        for child in node.get_children():
            if child.location.file and str(child.location.file) == str(
                    cmd.filename):
                walk(child)

    try:
        walk(tu.cursor)
    except Exception:
        return violations
    kept = []
    for v in violations:
        if (v.rule == "unordered-iter" and "range-for" in v.message
                and v.line not in unordered_for_lines):
            continue  # AST says the range is not unordered: false positive
        kept.append(v)
    return kept


# --------------------------------------------------------------------------
# Driver

def rule_applies(rule: str, rel_path: str) -> bool:
    scope = RULE_SCOPE[rule]
    if rel_path in scope["exempt"]:
        return False
    return any(
        rel_path == d or rel_path.startswith(d + "/") for d in scope["dirs"])


def lint_file(root: pathlib.Path, rel_path: str,
              use_ast: bool) -> list[Violation]:
    text = (root / rel_path).read_text(encoding="utf-8", errors="replace")
    raw_lines = text.split("\n")
    code_lines = strip_comments_and_strings(text)
    if len(code_lines) < len(raw_lines):
        code_lines += [""] * (len(raw_lines) - len(code_lines))

    allows, violations = collect_allows(raw_lines, code_lines, rel_path)

    candidates: list[Violation] = []
    if rule_applies("unordered-iter", rel_path):
        found = check_unordered_iter(rel_path, code_lines)
        if use_ast and found:
            found = ast_refine_unordered(root, rel_path, found)
        candidates += found
    for rule, regex in (("wall-clock", WALL_CLOCK_RE),
                        ("raw-random", RAW_RANDOM_RE),
                        ("raw-thread", RAW_THREAD_RE),
                        ("std-function-hot", STD_FUNCTION_RE)):
        if not rule_applies(rule, rel_path):
            continue
        for idx, line in enumerate(code_lines):
            m = regex.search(line)
            if m:
                candidates.append(Violation(
                    path=rel_path, line=idx + 1, rule=rule,
                    message=f"'{m.group(0).strip()}' — {RULES[rule]}"))

    for v in candidates:
        if v.rule in allows.get(v.line - 1, ()):
            continue
        violations.append(v)
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def discover_files(root: pathlib.Path) -> list[str]:
    patrolled: set[str] = set()
    for scope in RULE_SCOPE.values():
        patrolled.update(scope["dirs"])
    rels = []
    for top in sorted(patrolled):
        base = root / top
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in SOURCE_SUFFIXES and p.is_file():
                rels.append(p.relative_to(root).as_posix())
    return sorted(set(rels))


def main() -> int:
    parser = argparse.ArgumentParser(
        description="repo-specific determinism lint (see module docstring)")
    parser.add_argument("files", nargs="*",
                        help="files to lint (relative to --root); default: "
                        "every patrolled source file under --root")
    parser.add_argument("--root", default=".",
                        help="repo root the per-rule path policies are "
                        "resolved against (default: cwd)")
    parser.add_argument("--ast", action="store_true",
                        help="refine unordered-iter via libclang over "
                        "build/compile_commands.json when python3-clang is "
                        "installed; silently degrades to the regex engine "
                        "otherwise")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-file summary line")
    args = parser.parse_args()

    if args.list_rules:
        for rule, summary in RULES.items():
            scope = RULE_SCOPE[rule]
            print(f"{rule:18s} {summary}  [dirs: {', '.join(scope['dirs'])}]")
        return 0

    root = pathlib.Path(args.root).resolve()
    if not root.is_dir():
        print(f"dcn_lint: --root {args.root} is not a directory",
              file=sys.stderr)
        return 2

    if args.files:
        rels = []
        for f in args.files:
            p = pathlib.Path(f)
            if p.is_absolute():
                try:
                    rels.append(p.resolve().relative_to(root).as_posix())
                except ValueError:
                    print(f"dcn_lint: {f} is outside --root {root}",
                          file=sys.stderr)
                    return 2
            else:
                rels.append(p.as_posix())
    else:
        rels = discover_files(root)

    all_violations: list[Violation] = []
    for rel in rels:
        if not (root / rel).is_file():
            print(f"dcn_lint: no such file: {rel}", file=sys.stderr)
            return 2
        all_violations += lint_file(root, rel, use_ast=args.ast)

    for v in all_violations:
        print(v.render())
    if not args.quiet:
        print(f"dcn_lint: {len(rels)} file(s), "
              f"{len(all_violations)} violation(s)",
              file=sys.stderr)
    return 1 if all_violations else 0


if __name__ == "__main__":
    sys.exit(main())
