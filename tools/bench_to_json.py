#!/usr/bin/env python3
"""Convert google-benchmark JSON output into the repo's BENCH_*.json schema.

The BENCH_*.json files are the repo's performance trajectory: one
snapshot per recorded run, with one point per benchmark case, normalized
to milliseconds so snapshots from different google-benchmark configs
stay comparable. bench_online emits the same JSON shape via --json, so
its sweeps fold into BENCH_online.json through this converter too.

Any numeric per-benchmark field outside the harness schema passes
through as a counter (see _NON_COUNTER_FIELDS): bench_online's latency
percentiles and index-health columns, and since the preempt solver also
admitted/energy (the competitive-ratio inputs), rerate_commits/
rerated_flows (re-rating activity), and oracle_beaten (seeds where a
solver out-admitted the hindsight oracle — nonzero means that cell's
cr_adm is not a bound).

Usage:
    bench_micro --benchmark_format=json > raw.json
    python3 tools/bench_to_json.py raw.json > BENCH_engine.json

    # Several raw files merge into one snapshot (points concatenate):
    python3 tools/bench_to_json.py --suite bench_online a.json b.json \
        > BENCH_online.json

    # Compare two snapshots (old new); prints per-case speedups:
    python3 tools/bench_to_json.py --compare BENCH_old.json BENCH_new.json
"""
import argparse
import json
import re
import sys

SCHEMA = "dcn-bench-v1"

_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}

# google-benchmark per-case fields that are part of the harness schema;
# any *other* numeric field on a benchmark entry is a user counter.
_NON_COUNTER_FIELDS = {
    "name", "run_name", "run_type", "family_index", "per_family_instance_index",
    "repetitions", "repetition_index", "threads", "iterations", "real_time",
    "cpu_time", "time_unit", "aggregate_name", "aggregate_unit",
}


def _canonical_name(name: str) -> str:
    """Strips run-parameter suffixes (e.g. '/iterations:1') from a case name."""
    return re.sub(r"/(iterations|repeats|min_time|min_warmup_time):[^/]+", "", name)


def check_release_capture(paths: list[str], raws: list[dict],
                          allow_debug: bool) -> None:
    """Refuses debug benchmark-library captures (or warns with --allow-debug).

    A debug google-benchmark library skews the timing harness itself, so
    a snapshot captured against it is not comparable to Release ones
    (this bit BENCH_engine.json once). Raw files without the field —
    e.g. bench_online's own --json output — pass: the field describes
    the benchmark library, which those files don't link.
    """
    for path, raw in zip(paths, raws):
        build_type = raw.get("context", {}).get("library_build_type")
        if build_type is None or build_type.lower() != "debug":
            continue
        message = (
            f"{path}: captured against a debug google-benchmark library; "
            "snapshot timings would not be comparable to Release captures"
        )
        if not allow_debug:
            raise SystemExit(
                f"bench_to_json: {message} (pass --allow-debug to override)")
        print(f"bench_to_json: WARNING: {message}", file=sys.stderr)


def check_uninstrumented_capture(paths: list[str], raws: list[dict],
                                 allow_sanitizer: bool) -> None:
    """Refuses sanitizer-instrumented captures (or warns with
    --allow-sanitizer).

    A ThreadSanitizer build runs 5-15x slower than Release, so its
    numbers can never fold into a tracked snapshot — the same reasoning
    as the debug benchmark-library refusal above. Both bench_micro
    (custom benchmark context) and bench_online (--json context field)
    stamp `dcn_sanitizer` when built under TSan; see bench_util.h.
    """
    for path, raw in zip(paths, raws):
        sanitizer = raw.get("context", {}).get("dcn_sanitizer")
        if not sanitizer:
            continue
        message = (
            f"{path}: captured from a {sanitizer}-sanitizer-instrumented "
            "build; timings would not be comparable to Release captures"
        )
        if not allow_sanitizer:
            raise SystemExit(
                f"bench_to_json: {message} (pass --allow-sanitizer to "
                "override)")
        print(f"bench_to_json: WARNING: {message}", file=sys.stderr)


def convert(raws: list[dict], suite: str, exclude: str | None = None) -> dict:
    context = raws[0].get("context", {}) if raws else {}
    pattern = re.compile(exclude) if exclude else None
    points = []
    for raw in raws:
        for bench in raw.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            if pattern and pattern.search(bench["name"]):
                continue
            scale = _UNIT_TO_MS[bench.get("time_unit", "ns")]
            point = {
                "name": _canonical_name(bench["name"]),
                "real_time_ms": bench["real_time"] * scale,
                "cpu_time_ms": bench["cpu_time"] * scale,
                "iterations": bench.get("iterations", 1),
            }
            # User counters (google-benchmark emits them as extra numeric
            # fields; bench_online does the same for its latency
            # percentiles and load-index health columns) are carried
            # verbatim — unconverted, since counters are not times.
            counters = {
                key: value
                for key, value in bench.items()
                if key not in _NON_COUNTER_FIELDS
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
            }
            if counters:
                point["counters"] = counters
            points.append(point)
    return {
        "schema": SCHEMA,
        "suite": suite,
        "captured": {
            "date": context.get("date"),
            "host_name": context.get("host_name"),
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            # Note: this is the google-benchmark library's own build
            # type, not the benchmarked binary's.
            "benchmark_library_build_type": context.get("library_build_type"),
        },
        "points": points,
    }


def compare(old: dict, new: dict, fail_over: list[str]) -> int:
    """Prints per-case speedups; returns 1 when a --fail-over gate trips.

    Each gate is "REGEX:PCT": any case in `new` matching REGEX that also
    exists in `old` fails the comparison when its real time regressed by
    more than PCT percent. A gate whose only matches are cases missing
    from the baseline snapshot (freshly-landed benchmarks that have not
    been recorded yet) warns and skips instead of failing: the first
    capture after a new tracked case lands must not break the trend job.
    """
    gates = []
    for spec in fail_over:
        pattern, sep, pct = spec.rpartition(":")
        try:
            threshold = float(pct)
        except ValueError:
            threshold = None
        if not sep or not pattern or threshold is None:
            raise SystemExit(f"--fail-over expects REGEX:PCT, got {spec!r}")
        # [pattern, threshold, compared matches, new-only matches]
        gates.append([re.compile(pattern), threshold, 0, 0])

    old_points = {p["name"]: p for p in old["points"]}
    width = max((len(n) for n in old_points), default=0) + 2
    failed = 0
    for point in new["points"]:
        name = point["name"]
        if name not in old_points:
            print(f"{name:{width}s} (new case)")
            for gate in gates:
                if gate[0].search(name):
                    gate[3] += 1
            continue
        before = old_points[name]["real_time_ms"]
        after = point["real_time_ms"]
        speedup = before / after if after > 0 else float("inf")
        verdict = ""
        for gate in gates:
            pattern, pct, _, _ = gate
            if not pattern.search(name):
                continue
            gate[2] += 1
            if after > before * (1.0 + pct / 100.0):
                verdict = f"   REGRESSED >{pct:g}%"
                failed = 1
        print(
            f"{name:{width}s} {before:12.2f} ms -> {after:12.2f} ms"
            f"   {speedup:6.2f}x{verdict}"
        )
    # A gate that matched nothing compared is either a silently-vanished
    # gate (renamed case, over-narrow benchmark filter — fail loudly) or
    # a gate over a case the baseline has not recorded yet (warn, skip:
    # the next snapshot capture establishes the baseline).
    for pattern, _, matches, new_only in gates:
        if matches > 0:
            continue
        if new_only > 0:
            print(
                f"--fail-over gate '{pattern.pattern}' matched only "
                f"{new_only} case(s) missing from the baseline snapshot; "
                "skipping until a baseline is recorded",
                file=sys.stderr)
            continue
        print(f"--fail-over gate '{pattern.pattern}' matched no compared case",
              file=sys.stderr)
        failed = 1
    return failed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="benchmark JSON file(s)")
    parser.add_argument(
        "--compare",
        action="store_true",
        help="treat the two arguments as old/new BENCH snapshots and print speedups",
    )
    parser.add_argument(
        "--exclude",
        metavar="REGEX",
        help="drop cases matching REGEX from the snapshot (e.g. parallel-oracle "
        "cases when capturing on a single-core host)",
    )
    parser.add_argument(
        "--suite",
        default="bench_micro",
        help="suite label recorded in the snapshot (bench_online sweeps use "
        "--suite bench_online)",
    )
    parser.add_argument(
        "--allow-debug",
        action="store_true",
        help="convert debug benchmark-library captures with a warning "
        "instead of refusing them",
    )
    parser.add_argument(
        "--allow-sanitizer",
        action="store_true",
        help="convert sanitizer-instrumented captures (e.g. a DCN_TSAN "
        "build) with a warning instead of refusing them",
    )
    parser.add_argument(
        "--fail-over",
        metavar="REGEX:PCT",
        action="append",
        default=[],
        help="with --compare: exit 1 when a case matching REGEX regressed by "
        "more than PCT percent (repeatable; CI gates the headline solver "
        "case with this)",
    )
    args = parser.parse_args()

    if args.compare:
        if len(args.files) != 2:
            parser.error("--compare takes exactly two snapshot files (old new)")
        with open(args.files[0]) as f:
            old = json.load(f)
        with open(args.files[1]) as f:
            new = json.load(f)
        for snap in (old, new):
            if snap.get("schema") != SCHEMA:
                parser.error("--compare expects BENCH_*.json snapshots "
                             f"(schema {SCHEMA})")
        return compare(old, new, args.fail_over)

    raws = []
    for path in args.files:
        with open(path) as f:
            raws.append(json.load(f))
    check_release_capture(args.files, raws, args.allow_debug)
    check_uninstrumented_capture(args.files, raws, args.allow_sanitizer)
    json.dump(convert(raws, args.suite, args.exclude), sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
