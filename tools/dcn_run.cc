// dcn_run — the single entry point for engine experiments.
//
// Runs any solver x scenario x seed grid through the parallel
// BatchRunner, replays every schedule, and prints per-cell lines plus a
// per-solver aggregate table.
//
//   dcn_run --solver mcf --scenario fat_tree/paper --seed 1
//   dcn_run --solver dcfsr,mcf,greedy --scenario fat_tree/shuffle
//           --seeds 1,2,3 --jobs 8
//   dcn_run --solver all --scenario fat_tree/paper --flows 60
//   dcn_run --list
//
// Flags:
//   --solver a,b,..    solvers to run; "all" = every registered solver
//                      except exact (name it explicitly to include the
//                      exhaustive solver, which refuses big instances) [mcf]
//   --scenario s,..    "<topology>/<workload>" specs      [fat_tree/paper]
//   --seed n           single seed                        [1]
//   --seeds a,b,..     seed list (overrides --seed)
//   --jobs n           worker threads                     [1]
//   --flows n          flow count (paper/slack/permutation/online)
//   --alpha x          power exponent                     [2]
//   --sigma x          idle power                         [0]
//   --senders n        incast fan-in                      [8]
//   --volume x         per-flow volume (pattern workloads)
//   --rate x           Poisson arrival rate (poisson/websearch/hadoop) [2]
//   --slack x          deadline looseness (slack/online workloads) [2]
//   --capacity x       link capacity; finite values make the online
//                      solvers' admission control bite    [inf]
//   --verbose          per-cell canonical lines
//   --canonical        dump the full canonical result (for diffing)
//   --list             list solvers and scenarios, then exit
//
// Sustained-stream service mode (--serve): instead of a batch grid,
// runs the sharded always-on scheduler over a pull-based Poisson
// arrival stream — the trace is synthesized on demand and never
// materialized, so 100k+ arrivals run in bounded memory. The stream
// reproduces, flow for flow, the trace the scenario would materialize
// with the same seed and knobs, and the scheduler consumes the same
// rng stream as the online_dcfsr_sharded batch solver.
//
//   dcn_run --serve --scenario fat_tree8/poisson --seed 1
//           --arrivals 100000 --rate 8 --capacity 3 --flush-every 10000
//
// Serve flags (plus --seed/--flows-family knobs above where noted):
//   --arrivals n       arrivals to stream                  [10000]
//   --shards n         shard lanes (0 = one per source group) [0]
//   --workers n        phase-A threads (0 = hardware)      [0]
//   --epoch x          admission epoch                     [0.5]
//   --window x         lookahead window                    [2]
//   --flush-every n    arrivals between stats flushes (0 = off) [10000]
//   --rerate           enable deadline-safe re-rating
//   --audit            load-index audit shadow + warm-state sweeps (slow)
//
// Exit status: 0 when every cell produced a replay-validated schedule
// (batch mode) / the stream drained (serve mode).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "engine/batch_runner.h"
#include "engine/cli.h"
#include "online/event_stream.h"
#include "online/sharded.h"

namespace {

double latency_percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t idx =
      static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[idx];
}

int run_serve(const dcn::cli::Args& args,
              const dcn::engine::ScenarioSuite& suite) {
  using namespace dcn;
  using namespace dcn::engine;

  const std::string spec = args.get("scenario", "fat_tree8/poisson");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::int64_t arrivals = args.get_int("arrivals", 10000);
  if (arrivals < 0) {
    std::fprintf(stderr, "dcn_run --serve: --arrivals must be >= 0\n");
    return 2;
  }

  const std::size_t slash = spec.find('/');
  const std::string workload =
      slash == std::string::npos ? "" : spec.substr(slash + 1);
  SizeModel size_model;
  if (workload == "poisson") {
    size_model = SizeModel::kFixed;
  } else if (workload == "websearch") {
    size_model = SizeModel::kWebSearch;
  } else if (workload == "hadoop") {
    size_model = SizeModel::kHadoop;
  } else {
    std::fprintf(stderr,
                 "dcn_run --serve: scenario workload must be an arrival "
                 "process (poisson|websearch|hadoop), got \"%s\"\n",
                 spec.c_str());
    return 2;
  }

  ScenarioOptions options;
  options.alpha = args.get_double("alpha", options.alpha);
  options.sigma = args.get_double("sigma", options.sigma);
  options.volume = args.get_double("volume", options.volume);
  options.arrival_rate = args.get_double("rate", options.arrival_rate);
  options.slack = args.get_double("slack", options.slack);
  options.capacity = args.get_double("capacity", options.capacity);

  // The registered online_dcfsr_sharded configuration (the calibrated
  // Frank-Wolfe budget on the flat-latency options), overridable per
  // run; --audit turns on the load-index shadow + warm-state sweeps.
  OnlineOptions online;
  online.rounding.relaxation.frank_wolfe.max_iterations = 12;
  online.rounding.relaxation.frank_wolfe.gap_tolerance = 1e-3;
  online.lookahead_window = args.get_double("window", 2.0);
  online.epoch = args.get_double("epoch", 0.5);
  online.allow_rerate = args.has_flag("rerate");
  online.audit_load_index = args.has_flag("audit");

  auto [topology, stream_rng] = suite.build_topology(spec, seed);
  PoissonEventStream stream(topology,
                            online_workload_params(options, size_model),
                            stream_rng, arrivals);
  const ShardPlan plan = ShardPlan::by_source_group(
      topology, static_cast<std::int32_t>(args.get_int("shards", 0)));
  const auto workers = static_cast<std::int32_t>(args.get_int("workers", 0));
  const std::int64_t flush_every = args.get_int("flush-every", 10000);

  std::printf(
      "dcn_run --serve: %s seed=%llu arrivals=%lld rate=%g capacity=%g "
      "groups=%d lanes=%d epoch=%g window=%g rerate=%d audit=%d\n",
      spec.c_str(), static_cast<unsigned long long>(seed),
      static_cast<long long>(arrivals), options.arrival_rate, options.capacity,
      plan.num_groups(), plan.num_lanes(), online.epoch,
      online.lookahead_window, online.allow_rerate ? 1 : 0,
      online.audit_load_index ? 1 : 0);

  // The batch solver's exact stream key (see engine::solver_rng): a
  // serve run consumes the identical rng online_dcfsr_sharded would on
  // the materialized "<spec>#<seed>" instance.
  Rng rng(mix_seed(seed, spec + "#" + std::to_string(seed) + "|dcfsr"));
  const PowerModel model = options.power_model();

  auto on_flush = [](const StreamFlushStats& s) {
    std::printf(
        "serve t=%.2f arrivals=%lld admitted=%d rejected=%d completed=%lld "
        "in_flight=%d resolves=%d p50=%.3fms p99=%.3fms live_segments=%d "
        "pruned=%lld rss=%lldKB\n",
        s.now, static_cast<long long>(s.arrivals), s.admitted, s.rejected,
        static_cast<long long>(s.completed), s.in_flight, s.resolves, s.p50_ms,
        s.p99_ms, s.peak_live_segments,
        static_cast<long long>(s.segments_pruned),
        static_cast<long long>(s.peak_rss_kb));
    std::fflush(stdout);
  };

  OnlineResult result =
      run_online_stream(topology.graph(), stream, model, rng, online, plan,
                        workers, flush_every, on_flush,
                        /*discard_completed=*/true);

  // Deterministic counters first (byte-comparable across runs and
  // worker counts), wall-clock and RSS on their own line.
  std::printf(
      "serve done: arrivals=%lld events=%d admitted=%d rejected=%d "
      "peak_in_flight=%d resolves=%d batch_fallbacks=%d rounding_attempts=%d "
      "rerate_commits=%d peak_live_segments=%d segments_pruned=%lld\n",
      static_cast<long long>(result.num_admitted + result.num_rejected),
      result.num_events, result.num_admitted, result.num_rejected,
      result.peak_in_flight, result.resolves, result.batch_fallbacks,
      result.rounding_attempts, result.rerate_commits,
      result.peak_live_segments,
      static_cast<long long>(result.load_segments_pruned));
  std::printf("serve timings: p50=%.3f ms p99=%.3f ms peak_rss=%lld KB\n",
              latency_percentile(result.decision_latency_ms, 0.50),
              latency_percentile(result.decision_latency_ms, 0.99),
              static_cast<long long>(peak_rss_kb()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcn;
  using namespace dcn::engine;
  const cli::Args args(argc, argv);

  const SolverRegistry& registry = default_registry();
  const ScenarioSuite& suite = ScenarioSuite::default_suite();

  if (args.has_flag("serve")) return run_serve(args, suite);

  if (args.has_flag("list")) {
    std::printf("solvers:\n");
    for (const std::string& name : registry.names()) {
      std::printf("  %-12s %s\n", name.c_str(),
                  registry.create(name)->description().c_str());
    }
    std::printf("\nscenarios (<topology>/<workload>):\n  topologies:");
    for (const std::string& name : suite.topology_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n  workloads: ");
    for (const std::string& name : suite.workload_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 0;
  }

  BatchSpec spec;
  spec.solvers = args.get_list("solver", {"mcf"});
  if (spec.solvers.size() == 1 && spec.solvers[0] == "all") {
    // "all" means every solver that can attempt any instance; exact
    // (exhaustive, tiny instances only) must be named explicitly, so
    // `--solver all` keeps its exit-0 = replay-validated contract.
    spec.solvers.clear();
    for (const std::string& name : registry.names()) {
      if (name != "exact") spec.solvers.push_back(name);
    }
  }
  spec.scenarios = args.get_list("scenario", {"fat_tree/paper"});
  if (spec.scenarios.size() == 1 && spec.scenarios[0] == "all") {
    spec.scenarios = suite.names();
  }
  spec.seeds.clear();
  for (const std::int64_t s : args.get_int_list("seeds", {args.get_int("seed", 1)})) {
    spec.seeds.push_back(static_cast<std::uint64_t>(s));
  }
  spec.jobs = static_cast<std::int32_t>(args.get_int("jobs", 1));
  spec.options.num_flows = static_cast<std::int32_t>(
      args.get_int("flows", spec.options.num_flows));
  spec.options.alpha = args.get_double("alpha", spec.options.alpha);
  spec.options.sigma = args.get_double("sigma", spec.options.sigma);
  spec.options.senders = static_cast<std::int32_t>(
      args.get_int("senders", spec.options.senders));
  spec.options.volume = args.get_double("volume", spec.options.volume);
  spec.options.arrival_rate = args.get_double("rate", spec.options.arrival_rate);
  spec.options.slack = args.get_double("slack", spec.options.slack);
  spec.options.capacity = args.get_double("capacity", spec.options.capacity);
  spec.discard_schedules = true;

  const bool canonical = args.has_flag("canonical");
  if (!canonical) {
    std::printf("dcn_run: %zu solver(s) x %zu scenario(s) x %zu seed(s), "
                "jobs=%d, flows=%d, alpha=%g, sigma=%g\n",
                spec.solvers.size(), spec.scenarios.size(), spec.seeds.size(),
                spec.jobs, spec.options.num_flows, spec.options.alpha,
                spec.options.sigma);
  }

  BatchResult result;
  try {
    result = run_batch(registry, suite, spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dcn_run: %s\n", e.what());
    return 2;
  }

  if (canonical) {
    std::fputs(result.canonical().c_str(), stdout);
    return result.all_feasible() ? 0 : 1;
  }

  if (args.has_flag("verbose")) {
    for (const auto& cell : result.cells) {
      if (cell.ran) {
        std::printf("%s seed=%llu %s (%.0f ms)\n", cell.scenario.c_str(),
                    static_cast<unsigned long long>(cell.seed),
                    canonical_summary(cell.outcome).c_str(), cell.elapsed_ms);
      } else {
        std::printf("%s seed=%llu solver=%s FAILED: %s\n", cell.scenario.c_str(),
                    static_cast<unsigned long long>(cell.seed),
                    cell.solver.c_str(), cell.error.c_str());
      }
    }
    std::printf("\n");
  } else {
    for (const auto& cell : result.cells) {
      if (!cell.ran) {
        std::printf("!! %s seed=%llu solver=%s failed: %s\n",
                    cell.scenario.c_str(),
                    static_cast<unsigned long long>(cell.seed),
                    cell.solver.c_str(), cell.error.c_str());
      } else if (!cell.outcome.feasible) {
        std::printf("!! %s seed=%llu solver=%s infeasible: %s\n",
                    cell.scenario.c_str(),
                    static_cast<unsigned long long>(cell.seed),
                    cell.solver.c_str(), cell.outcome.first_issue.c_str());
      }
    }
  }

  std::fputs(result.table().c_str(), stdout);
  const bool ok = result.all_feasible();
  std::printf("%s\n", ok ? "all schedules replay-validated"
                         : "NOT all schedules replay-validated");
  return ok ? 0 : 1;
}
