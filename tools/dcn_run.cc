// dcn_run — the single entry point for engine experiments.
//
// Runs any solver x scenario x seed grid through the parallel
// BatchRunner, replays every schedule, and prints per-cell lines plus a
// per-solver aggregate table.
//
//   dcn_run --solver mcf --scenario fat_tree/paper --seed 1
//   dcn_run --solver dcfsr,mcf,greedy --scenario fat_tree/shuffle
//           --seeds 1,2,3 --jobs 8
//   dcn_run --solver all --scenario fat_tree/paper --flows 60
//   dcn_run --list
//
// Flags:
//   --solver a,b,..    solvers to run; "all" = every registered solver
//                      except exact (name it explicitly to include the
//                      exhaustive solver, which refuses big instances) [mcf]
//   --scenario s,..    "<topology>/<workload>" specs      [fat_tree/paper]
//   --seed n           single seed                        [1]
//   --seeds a,b,..     seed list (overrides --seed)
//   --jobs n           worker threads                     [1]
//   --flows n          flow count (paper/slack/permutation/online)
//   --alpha x          power exponent                     [2]
//   --sigma x          idle power                         [0]
//   --senders n        incast fan-in                      [8]
//   --volume x         per-flow volume (pattern workloads)
//   --rate x           Poisson arrival rate (poisson/websearch/hadoop) [2]
//   --slack x          deadline looseness (slack/online workloads) [2]
//   --capacity x       link capacity; finite values make the online
//                      solvers' admission control bite    [inf]
//   --verbose          per-cell canonical lines
//   --canonical        dump the full canonical result (for diffing)
//   --list             list solvers and scenarios, then exit
//
// Exit status: 0 when every cell produced a replay-validated schedule.
#include <cstdio>

#include "engine/batch_runner.h"
#include "engine/cli.h"

int main(int argc, char** argv) {
  using namespace dcn;
  using namespace dcn::engine;
  const cli::Args args(argc, argv);

  const SolverRegistry& registry = default_registry();
  const ScenarioSuite& suite = ScenarioSuite::default_suite();

  if (args.has_flag("list")) {
    std::printf("solvers:\n");
    for (const std::string& name : registry.names()) {
      std::printf("  %-12s %s\n", name.c_str(),
                  registry.create(name)->description().c_str());
    }
    std::printf("\nscenarios (<topology>/<workload>):\n  topologies:");
    for (const std::string& name : suite.topology_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n  workloads: ");
    for (const std::string& name : suite.workload_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 0;
  }

  BatchSpec spec;
  spec.solvers = args.get_list("solver", {"mcf"});
  if (spec.solvers.size() == 1 && spec.solvers[0] == "all") {
    // "all" means every solver that can attempt any instance; exact
    // (exhaustive, tiny instances only) must be named explicitly, so
    // `--solver all` keeps its exit-0 = replay-validated contract.
    spec.solvers.clear();
    for (const std::string& name : registry.names()) {
      if (name != "exact") spec.solvers.push_back(name);
    }
  }
  spec.scenarios = args.get_list("scenario", {"fat_tree/paper"});
  if (spec.scenarios.size() == 1 && spec.scenarios[0] == "all") {
    spec.scenarios = suite.names();
  }
  spec.seeds.clear();
  for (const std::int64_t s : args.get_int_list("seeds", {args.get_int("seed", 1)})) {
    spec.seeds.push_back(static_cast<std::uint64_t>(s));
  }
  spec.jobs = static_cast<std::int32_t>(args.get_int("jobs", 1));
  spec.options.num_flows = static_cast<std::int32_t>(
      args.get_int("flows", spec.options.num_flows));
  spec.options.alpha = args.get_double("alpha", spec.options.alpha);
  spec.options.sigma = args.get_double("sigma", spec.options.sigma);
  spec.options.senders = static_cast<std::int32_t>(
      args.get_int("senders", spec.options.senders));
  spec.options.volume = args.get_double("volume", spec.options.volume);
  spec.options.arrival_rate = args.get_double("rate", spec.options.arrival_rate);
  spec.options.slack = args.get_double("slack", spec.options.slack);
  spec.options.capacity = args.get_double("capacity", spec.options.capacity);
  spec.discard_schedules = true;

  const bool canonical = args.has_flag("canonical");
  if (!canonical) {
    std::printf("dcn_run: %zu solver(s) x %zu scenario(s) x %zu seed(s), "
                "jobs=%d, flows=%d, alpha=%g, sigma=%g\n",
                spec.solvers.size(), spec.scenarios.size(), spec.seeds.size(),
                spec.jobs, spec.options.num_flows, spec.options.alpha,
                spec.options.sigma);
  }

  BatchResult result;
  try {
    result = run_batch(registry, suite, spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dcn_run: %s\n", e.what());
    return 2;
  }

  if (canonical) {
    std::fputs(result.canonical().c_str(), stdout);
    return result.all_feasible() ? 0 : 1;
  }

  if (args.has_flag("verbose")) {
    for (const auto& cell : result.cells) {
      if (cell.ran) {
        std::printf("%s seed=%llu %s (%.0f ms)\n", cell.scenario.c_str(),
                    static_cast<unsigned long long>(cell.seed),
                    canonical_summary(cell.outcome).c_str(), cell.elapsed_ms);
      } else {
        std::printf("%s seed=%llu solver=%s FAILED: %s\n", cell.scenario.c_str(),
                    static_cast<unsigned long long>(cell.seed),
                    cell.solver.c_str(), cell.error.c_str());
      }
    }
    std::printf("\n");
  } else {
    for (const auto& cell : result.cells) {
      if (!cell.ran) {
        std::printf("!! %s seed=%llu solver=%s failed: %s\n",
                    cell.scenario.c_str(),
                    static_cast<unsigned long long>(cell.seed),
                    cell.solver.c_str(), cell.error.c_str());
      } else if (!cell.outcome.feasible) {
        std::printf("!! %s seed=%llu solver=%s infeasible: %s\n",
                    cell.scenario.c_str(),
                    static_cast<unsigned long long>(cell.seed),
                    cell.solver.c_str(), cell.outcome.first_issue.c_str());
      }
    }
  }

  std::fputs(result.table().c_str(), stdout);
  const bool ok = result.all_feasible();
  std::printf("%s\n", ok ? "all schedules replay-validated"
                         : "NOT all schedules replay-validated");
  return ok ? 0 : 1;
}
