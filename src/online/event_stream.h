// The event-stream layer of the online scheduling service.
//
// The flat event loop replays a pre-materialized trace; a long-lived
// service absorbs arrivals it has never seen as a vector. EventStream
// is the seam between the two: the scheduler pulls arrivals one at a
// time (releases non-decreasing) and never needs the whole trace in
// memory. Two sources:
//
//   TraceEventStream    wraps a materialized trace (sorted into arrival
//                       order) — the bit-identical bridge from today's
//                       batch API to the streaming service.
//   PoissonEventStream  synthesizes Poisson arrivals on demand via
//                       PoissonFlowGenerator, with the identical rng
//                       discipline as poisson_workload — so a 100k+
//                       arrival soak never materializes the trace, yet
//                       emits exactly the flows the materializing
//                       generator would have.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "flow/flow.h"
#include "flow/workload.h"

namespace dcn {

/// Pull-based arrival source. Implementations must emit flows with
/// non-decreasing releases and sequential positions (the consumer
/// assigns its own dense slots; flow ids are the producer's and only
/// break ordering ties).
class EventStream {
 public:
  virtual ~EventStream() = default;

  /// The next arrival, or nullopt when the stream is exhausted.
  /// Releases never decrease across calls.
  [[nodiscard]] virtual std::optional<Flow> next() = 0;
};

/// A materialized trace as a stream: flows sorted by (release, id) —
/// exactly the event loop's arrival order — and handed out one at a
/// time.
class TraceEventStream final : public EventStream {
 public:
  explicit TraceEventStream(std::vector<Flow> flows);

  [[nodiscard]] std::optional<Flow> next() override;

 private:
  std::vector<Flow> flows_;  // arrival order
  std::size_t pos_ = 0;
};

/// `limit` Poisson arrivals synthesized on demand (see
/// PoissonFlowGenerator for the bit-equality contract with
/// poisson_workload). `topo` must outlive the stream.
class PoissonEventStream final : public EventStream {
 public:
  PoissonEventStream(const Topology& topo, const OnlineWorkloadParams& params,
                     Rng rng, std::int64_t limit);

  [[nodiscard]] std::optional<Flow> next() override;

 private:
  PoissonFlowGenerator gen_;
  std::int64_t remaining_;
};

}  // namespace dcn
