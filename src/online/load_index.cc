#include "online/load_index.h"

#include <algorithm>

#include "baselines/baselines.h"

namespace dcn {

EdgeLoadIndex::EdgeLoadIndex(std::int32_t num_edges, bool audit)
    : profiles_(static_cast<std::size_t>(num_edges)), audit_(audit) {
  if (audit_) shadow_.resize(static_cast<std::size_t>(num_edges));
}

void EdgeLoadIndex::add(EdgeId e, const Interval& iv, double rate) {
  LoadProfile& profile = profiles_[static_cast<std::size_t>(e)];
  profile.add(iv, rate);
  peak_live_ = std::max(
      peak_live_, static_cast<std::int32_t>(profile.live_breakpoints()));
  if (audit_) shadow_[static_cast<std::size_t>(e)].add(iv, rate);
}

void EdgeLoadIndex::retract(EdgeId e, const Interval& iv, double rate) {
  add(e, iv, -rate);
}

double EdgeLoadIndex::value_at(EdgeId e, double t) const {
  const double v = at(e).value_at(t);
  if (audit_) {
    // Bitwise, not approximate: the index must be indistinguishable
    // from the naive replay (same fold order, same zero snapping).
    DCN_ENSURES(v == shadow_[static_cast<std::size_t>(e)].value_at(t));
  }
  return v;
}

double EdgeLoadIndex::max_within(EdgeId e, const Interval& window) const {
  const double v = at(e).max_within(window);
  if (audit_) {
    DCN_ENSURES(v == shadow_[static_cast<std::size_t>(e)].max_within(window));
  }
  return v;
}

double EdgeLoadIndex::marginal_energy(EdgeId e, const Interval& span, double d,
                                      const PowerModel& model) const {
  // The reference implementation (baselines.h) iterates every merged
  // segment of the profile and clips; runs wholly past the span clip to
  // nothing, so stopping the walk there is exact — that early exit plus
  // pruning is what makes the weight O(segments in span).
  double covered = 0.0;
  double total = 0.0;
  at(e).for_each_segment_from(
      span.lo, [&](const Interval& iv, double value) {
        if (iv.lo >= span.hi) return false;
        const Interval clip = iv.intersect(span);
        if (!clip.empty()) {
          covered += clip.measure();
          total += (model.f(value + d) - model.f(value)) * clip.measure();
        }
        return true;
      });
  const double gaps = span.measure() - covered;
  if (gaps > 0.0) total += model.f(d) * gaps;
  if (audit_) {
    DCN_ENSURES(total == dcn::marginal_energy(
                             shadow_[static_cast<std::size_t>(e)], span, d,
                             model));
  }
  return total;
}

void EdgeLoadIndex::advance_low_water(double t) {
  if (!(t > low_water_)) return;
  low_water_ = t;
  for (LoadProfile& profile : profiles_) profile.prune_before(t);
  // The audit shadows fold the same prefix (drop_before is the naive
  // replay's prune), so a long soak with audit on stays bounded too —
  // every cross-check probes at or after the low-water mark, where the
  // folded shadow is indistinguishable from the unpruned one.
  if (audit_) {
    for (StepFunction& s : shadow_) s.drop_before(t);
  }
}

std::int64_t EdgeLoadIndex::segments_pruned() const {
  std::int64_t total = 0;
  for (const LoadProfile& profile : profiles_) {
    total += profile.pruned_breakpoints();
  }
  return total;
}

}  // namespace dcn
