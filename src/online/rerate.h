// The preemption/re-rate transaction (OnlineOptions::allow_rerate).
//
// Split out of the online monolith as its own unit: the deadline-safe
// PDQ-style pass that reshapes in-flight flows' *future* rate profiles
// behind a commit barrier. Templated on the load-index type so the flat
// event loop (EdgeLoadIndex) and the sharded service (ShardedLoadIndex,
// one pass per shard over the shard's own active set against the global
// index) run the identical transaction.
#pragma once

#include <cstddef>
#include <set>
#include <utility>
#include <vector>

#include "online/admission_core.h"

namespace dcn {
namespace online_impl {

/// The deadline-safe re-rate pass (OnlineOptions::allow_rerate). Tries
/// to make room for arrival `fl` (flow index `arrival`) at its density
/// rate on `path` by reshaping the future rate profiles of admitted
/// in-flight flows that share an edge with `path` — re-rate, never
/// re-route. The transaction:
///
///   1. Retract every candidate's future segments from the index. If
///      the arrival still does not fit, the displaced load was not the
///      obstacle: restore and fail.
///   2. Place the arrival at its density over its true span.
///   3. Re-admit the candidates in deadline (EDF) order. A candidate
///      whose old future still fits keeps it bitwise — it is not
///      re-rated, its warm rows stay valid. Otherwise it is repacked
///      within [max(now, release), deadline] on its committed path: at
///      its flat residual density when that fits (re-rating should not
///      spike rates — the power curve is convex), else into the
///      earliest remaining capacity (edf_fill).
///   4. The commit barrier: if any candidate cannot move its full
///      remaining volume by its deadline, every index mutation is
///      rolled back (bitwise: the retract/add pairs cancel exactly) and
///      the pass fails — no admitted deadline is ever broken.
///
/// On success the arrival's schedule + admission are recorded (its load
/// is already placed), reshaped candidates get their segments stitched
/// (immutable past + repacked future), their warm rows/atoms dropped
/// (the rows route the original density, which the reshaped profile no
/// longer has), and their `rerated` flags set — from then on their
/// residual demands are computed from the committed profile, not the
/// density invariant. Consumes no rng: given the same index state the
/// pass is deterministic.
template <typename Index>
bool try_rerate(OnlineResult& out, Index& load, const std::vector<Flow>& flows,
                const std::set<std::pair<double, std::size_t>>& active,
                double now, double capacity, std::size_t arrival,
                const Path& path, std::vector<char>& rerated,
                std::vector<SparseEdgeFlow>& warm,
                std::vector<AtomSet>& warm_atoms) {
  const Flow& fl = flows[arrival];
  ++out.rerate_attempts;

  std::vector<char> on_path(static_cast<std::size_t>(
                                *std::max_element(path.edges.begin(),
                                                  path.edges.end()) +
                                1),
                            0);
  for (const EdgeId e : path.edges) on_path[static_cast<std::size_t>(e)] = 1;
  auto shares_edge = [&](const Path& p) {
    for (const EdgeId e : p.edges) {
      const auto k = static_cast<std::size_t>(e);
      if (k < on_path.size() && on_path[k]) return true;
    }
    return false;
  };

  // Candidates: admitted in-flight flows sharing an edge with `path`
  // whose profiles still have a future to reshape, in deadline order
  // (`active` iterates (deadline, index)).
  struct Candidate {
    std::size_t i;
    std::vector<RateSegment> old_future;
    double remaining;
  };
  std::vector<Candidate> candidates;
  for (const auto& [deadline, i] : active) {
    const FlowSchedule& fs = out.schedule.flows[i];
    if (!shares_edge(fs.path)) continue;
    std::vector<RateSegment> future = future_segments(fs, now);
    if (future.empty()) continue;
    candidates.push_back(
        {i, std::move(future), remaining_volume(flows[i], fs, now)});
  }
  if (candidates.empty()) return false;

  // 1. Retract the candidates' futures.
  for (const Candidate& c : candidates) {
    for (const RateSegment& seg : c.old_future) {
      for (const EdgeId e : out.schedule.flows[c.i].path.edges) {
        load.retract(e, seg.interval, seg.rate);
      }
    }
  }
  auto restore_futures = [&] {
    for (const Candidate& c : candidates) {
      for (const RateSegment& seg : c.old_future) {
        for (const EdgeId e : out.schedule.flows[c.i].path.edges) {
          load.add(e, seg.interval, seg.rate);
        }
      }
    }
  };
  if (!rate_fits(load, path, fl.span(), fl.density(), capacity)) {
    restore_futures();
    return false;
  }

  // 2. Place the arrival.
  for (const EdgeId e : path.edges) load.add(e, fl.span(), fl.density());

  // 3. Re-admit the candidates, earliest deadline first. `kept[k]` set
  // means candidate k kept its old future bitwise (not re-rated);
  // otherwise repacked[k] holds its replacement future.
  std::vector<std::vector<RateSegment>> repacked(candidates.size());
  std::vector<char> kept(candidates.size(), 0);
  bool feasible = true;
  std::size_t readmitted = 0;
  for (; readmitted < candidates.size(); ++readmitted) {
    const Candidate& c = candidates[readmitted];
    const Flow& cf = flows[c.i];
    const Path& cpath = out.schedule.flows[c.i].path;
    const Interval window{std::max(now, cf.release), cf.deadline};
    if (c.remaining <= 1e-12 * std::max(1.0, cf.volume)) {
      // Nothing left to move (an earlier re-rating accelerated it to
      // completion): its future stays empty.
      continue;
    }
    if (segments_fit(load, cpath, c.old_future, capacity)) {
      kept[readmitted] = 1;
      for (const RateSegment& seg : c.old_future) {
        for (const EdgeId e : cpath.edges) load.add(e, seg.interval, seg.rate);
      }
      continue;
    }
    const double flat = c.remaining / window.measure();
    if (rate_fits(load, cpath, window, flat, capacity)) {
      repacked[readmitted] = {{window, flat}};
    } else {
      repacked[readmitted] =
          edf_fill_over(load, cpath, window, c.remaining, capacity);
      if (repacked[readmitted].empty()) {
        feasible = false;
        break;
      }
    }
    for (const RateSegment& seg : repacked[readmitted]) {
      for (const EdgeId e : cpath.edges) load.add(e, seg.interval, seg.rate);
    }
  }

  if (!feasible) {
    // 4. Commit barrier: roll back bitwise — retract what was re-added,
    // retract the arrival, restore the original futures.
    for (std::size_t k = 0; k < readmitted; ++k) {
      const Candidate& c = candidates[k];
      const Path& cpath = out.schedule.flows[c.i].path;
      const std::vector<RateSegment>& placed =
          kept[k] ? c.old_future : repacked[k];
      for (const RateSegment& seg : placed) {
        for (const EdgeId e : cpath.edges) {
          load.retract(e, seg.interval, seg.rate);
        }
      }
    }
    for (const EdgeId e : path.edges) load.retract(e, fl.span(), fl.density());
    restore_futures();
    return false;
  }

  // Success: record the arrival (its load is already placed) and stitch
  // the reshaped candidates' profiles — immutable past + new future.
  record_commit(out, arrival, path, {{fl.span(), fl.density()}});
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    const Candidate& c = candidates[k];
    if (kept[k]) continue;
    FlowSchedule& fs = out.schedule.flows[c.i];
    std::vector<RateSegment> stitched;
    for (const RateSegment& seg : fs.segments) {
      const Interval past{seg.interval.lo, std::min(seg.interval.hi, now)};
      if (!past.empty()) stitched.push_back({past, seg.rate});
    }
    stitched.insert(stitched.end(), repacked[k].begin(), repacked[k].end());
    fs.segments = std::move(stitched);
    if (!rerated[c.i]) ++out.rerated_flows;
    rerated[c.i] = 1;
    warm[c.i] = {};
    warm_atoms[c.i] = {};
  }
  ++out.rerate_commits;
  return true;
}

}  // namespace online_impl
}  // namespace dcn
