// EDF fill: the earliest-remaining-capacity fallback packing shared by
// every online policy. The indexed overload routes through the template
// in admission_core.h (the same body the sharded service instantiates
// over its routed index); the StepFunction overload is the reference
// the audit shadow cross-checks against.
#include <algorithm>
#include <vector>

#include "online/admission_core.h"
#include "online/online_scheduler.h"

namespace dcn {

std::vector<RateSegment> edf_fill(const EdgeLoadIndex& load, const Path& path,
                                  const Interval& span, double volume,
                                  double capacity) {
  return online_impl::edf_fill_over(load, path, span, volume, capacity);
}

/// Reference fill: packs `volume` into the earliest remaining capacity
/// of `path` within `span`, scanning every committed segment of each
/// edge's full profile. The differential baseline of the indexed
/// overload above (audit mode and tests); not on any scheduler's path.
std::vector<RateSegment> edf_fill(const std::vector<StepFunction>& load,
                                  const Path& path, const Interval& span,
                                  double volume, double capacity) {
  // Elementary intervals: every committed-load breakpoint of the path's
  // edges inside the span, so the combined load is constant per piece.
  std::vector<double> cuts{span.lo, span.hi};
  for (const EdgeId e : path.edges) {
    for (const auto& [iv, value] : load[static_cast<std::size_t>(e)].segments()) {
      if (iv.lo > span.lo && iv.lo < span.hi) cuts.push_back(iv.lo);
      if (iv.hi > span.lo && iv.hi < span.hi) cuts.push_back(iv.hi);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<RateSegment> segments;
  double remaining = volume;
  for (std::size_t k = 0; k + 1 < cuts.size() && remaining > 0.0; ++k) {
    const Interval piece{cuts[k], cuts[k + 1]};
    double used = 0.0;
    for (const EdgeId e : path.edges) {
      used = std::max(used,
                      load[static_cast<std::size_t>(e)].value_at(piece.lo));
    }
    const double avail = capacity - used;
    if (avail <= online_impl::kCapacitySlack * std::max(1.0, capacity)) continue;
    const double takeable = avail * piece.measure();
    if (takeable >= remaining) {
      segments.push_back({{piece.lo, piece.lo + remaining / avail}, avail});
      remaining = 0.0;
    } else {
      segments.push_back({piece, avail});
      remaining -= takeable;
    }
  }
  if (remaining > 1e-9 * std::max(1.0, volume)) return {};
  return segments;
}

}  // namespace dcn
