// Entry points of the sharded scheduling service: the batch API
// (online_dcfsr_sharded — drop-in comparable with online_dcfsr) and the
// sustained-stream runner (run_online_stream — pulls from an
// EventStream, flushes periodic service stats, never materializes the
// trace). The engine itself lives in sharded.cc.
#include <algorithm>
#include <utility>

#include "common/contracts.h"
#include "online/sharded.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dcn {

std::int32_t ShardedScheduler::peak_live_segments() const {
  return load_.peak_live_segments();
}

std::int64_t ShardedScheduler::load_segments_pruned() const {
  return load_.segments_pruned();
}

std::int64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // reported in bytes on macOS
#else
  return usage.ru_maxrss;  // reported in KB on Linux
#endif
#else
  return 0;
#endif
}

OnlineResult online_dcfsr_sharded(const Graph& g,
                                  const std::vector<Flow>& flows,
                                  const PowerModel& model, Rng& rng,
                                  const OnlineOptions& options,
                                  const ShardPlan& plan,
                                  std::int32_t workers) {
  // A single lane (or a single source group, where sharding has nothing
  // to decompose) delegates outright — same rng stream, same loop — so
  // "1 shard" is the flat scheduler byte for byte.
  if (plan.num_lanes() <= 1 || plan.num_groups() <= 1) {
    return online_dcfsr(g, flows, model, rng, options);
  }
  validate_flows(g, flows);
  if (flows.empty()) {
    OnlineResult out;
    return out;
  }

  const std::vector<std::size_t> order = online_impl::arrival_order(flows);
  // One draw from the caller's stream seeds every per-shard stream (a
  // deterministic mix per group) — the caller's rng advances by exactly
  // one draw regardless of shard, worker, or group count.
  const std::uint64_t stream_seed = rng();
  ShardedScheduler sched(g, model, options, plan, stream_seed, workers,
                         /*discard_completed=*/false);

  // The flat loop's epoch batching, verbatim: one global event per
  // batch, decision point at the batch's first release.
  std::vector<Flow> batch;
  for (std::size_t lo = 0; lo < order.size();) {
    const double now = flows[order[lo]].release;
    batch.clear();
    std::size_t hi = lo;
    while (hi < order.size() &&
           flows[order[hi]].release <= now + options.epoch) {
      batch.push_back(flows[order[hi]]);
      ++hi;
    }
    sched.process_batch(now, batch);
    lo = hi;
  }

  // The engine's rows are in feed (arrival) order; put them back at the
  // caller's indices. Latencies stay in decision order (same convention
  // as the flat loop's per-batch pushes).
  OnlineResult out = sched.take_result();
  std::vector<FlowSchedule> rows(flows.size());
  std::vector<bool> admitted(flows.size(), false);
  for (std::size_t k = 0; k < order.size(); ++k) {
    rows[order[k]] = std::move(out.schedule.flows[k]);
    admitted[order[k]] = out.admitted[k];
  }
  out.schedule.flows = std::move(rows);
  out.admitted = std::move(admitted);
  return out;
}

OnlineResult run_online_stream(
    const Graph& g, EventStream& stream, const PowerModel& model, Rng& rng,
    const OnlineOptions& options, const ShardPlan& plan, std::int32_t workers,
    std::int64_t flush_every,
    const std::function<void(const StreamFlushStats&)>& on_flush,
    bool discard_completed) {
  const std::uint64_t stream_seed = rng();
  ShardedScheduler sched(g, model, options, plan, stream_seed, workers,
                         discard_completed);

  auto percentile = [](std::vector<double> values, double q) {
    if (values.empty()) return 0.0;
    const auto k = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1) + 0.5);
    std::nth_element(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(k),
                     values.end());
    return values[k];
  };
  auto flush = [&](double now) {
    if (!on_flush) return;
    const OnlineResult& r = sched.result();
    StreamFlushStats s;
    s.now = now;
    s.arrivals = sched.arrivals();
    s.admitted = r.num_admitted;
    s.rejected = r.num_rejected;
    s.completed = sched.completed();
    s.in_flight = sched.in_flight();
    s.resolves = r.resolves;
    s.p50_ms = percentile(r.decision_latency_ms, 0.50);
    s.p99_ms = percentile(r.decision_latency_ms, 0.99);
    s.peak_live_segments = sched.peak_live_segments();
    s.segments_pruned = sched.load_segments_pruned();
    s.peak_rss_kb = peak_rss_kb();
    on_flush(s);
  };

  // Pull-with-holdback epoch batching: the batch is closed by the first
  // arrival past the epoch window, which is held over as the next
  // batch's opener — at most one synthesized-but-unfed flow exists at
  // any time, so a 100k-arrival soak never materializes its trace.
  std::optional<Flow> pending = stream.next();
  std::vector<Flow> batch;
  std::int64_t since_flush = 0;
  double now = 0.0;
  while (pending.has_value()) {
    now = pending->release;
    batch.clear();
    batch.push_back(*pending);
    pending.reset();
    while (auto next = stream.next()) {
      DCN_EXPECTS(next->release >= now);
      if (next->release <= now + options.epoch) {
        batch.push_back(*next);
      } else {
        pending = std::move(next);
        break;
      }
    }
    sched.process_batch(now, batch);
    since_flush += static_cast<std::int64_t>(batch.size());
    if (flush_every > 0 && since_flush >= flush_every) {
      flush(now);
      since_flush = 0;
    }
  }
  // Final flush, unless the periodic one just fired at this arrival.
  if (since_flush > 0 || sched.arrivals() == 0) flush(now);
  return sched.take_result();
}

}  // namespace dcn
