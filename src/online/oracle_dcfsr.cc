// The hindsight admission oracle (see online_scheduler.h): offline
// dcfsr over the whole trace with admission control, the denominator of
// bench_online's empirical competitive ratios.
#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "mcf/relaxation.h"
#include "online/admission_core.h"
#include "online/load_index.h"
#include "online/online_scheduler.h"

namespace dcn {

using online_impl::commit;
using online_impl::density_before;
using online_impl::peak_overlap;
using online_impl::rate_fits;
using online_impl::rcd_before;
using online_impl::ReachabilityCache;

OnlineResult oracle_dcfsr(const Graph& g, const std::vector<Flow>& flows,
                          const PowerModel& model, Rng& rng,
                          const OnlineOptions& options) {
  validate_flows(g, flows);
  OnlineResult out;
  out.schedule.flows.resize(flows.size());
  out.admitted.assign(flows.size(), false);
  if (flows.empty()) return out;
  out.num_events = 1;
  const double capacity = model.capacity();
  // One batch, nothing ever departs: the index is never pruned here —
  // the oracle only uses its cached probes (and audit shadow).
  EdgeLoadIndex load(g.num_edges(), options.audit_load_index);

  // Connectivity screen: unroutable flows are rejections, never fed to
  // the relaxation. The common all-routable case keeps the original
  // vector, so the joint-feasible trajectory below stays bit-identical
  // to offline dcfsr.
  ReachabilityCache reachable(g);
  std::vector<std::size_t> orig;
  orig.reserve(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (reachable.routable(flows[i].src, flows[i].dst)) {
      orig.push_back(i);
    } else {
      ++out.num_rejected;
    }
  }
  if (orig.empty()) return out;
  std::vector<Flow> sub;
  const std::vector<Flow>* trace = &flows;
  if (orig.size() != flows.size()) {
    sub.reserve(orig.size());
    for (const std::size_t i : orig) {
      Flow fl = flows[i];
      fl.id = static_cast<FlowId>(sub.size());
      sub.push_back(fl);
    }
    trace = &sub;
  }

  // One relaxation over the whole trace at its true spans — exactly the
  // offline Algorithm 2 relaxation (cold start, whatever step rule the
  // caller configured), so with matching options the joint-feasible
  // case reproduces offline dcfsr bit for bit on the shared rng stream.
  const FractionalRelaxation relax =
      solve_relaxation(g, *trace, model, options.rounding.relaxation);
  out.resolves = 1;
  out.fw_iterations = relax.total_fw_iterations;
  out.fw_stats = relax.fw_stats;
  out.first_lower_bound = relax.lower_bound_energy;

  RandomScheduleResult draw =
      round_relaxation(g, *trace, model, relax, rng, options.rounding);
  out.rounding_attempts += draw.rounding_attempts;
  if (draw.capacity_feasible) {
    for (std::size_t r = 0; r < trace->size(); ++r) {
      const Flow& fl = flows[orig[r]];
      commit(out, load, orig[r], std::move(draw.schedule.flows[r].path),
             {{fl.span(), fl.density()}});
    }
    out.peak_in_flight = peak_overlap(flows, out.admitted);
    out.peak_live_segments = load.peak_live_segments();
    return out;
  }

  // Contended hindsight: admit one flow at a time over the *whole*
  // trace (the online loop only ever sees one event batch at a time —
  // the oracle's edge is this global ordering plus the trace-wide
  // relaxation candidates). A single fixed order is not a bound: under
  // heavy contention the RCD urgency order can be beaten by the online
  // policies it is supposed to upper-bound (cr_adm < 1). So the
  // fallback runs twice — RCD and density-first — on copies of the
  // same rng stream (Rng is a value type) with their own scratch load
  // indexes, and the better admission set wins; ties keep RCD, which
  // preserves the historical schedules whenever the orders draw equal.
  ++out.batch_fallbacks;
  struct OracleAttempt {
    std::vector<std::size_t> placed;  // residual indices, placement order
    std::vector<Path> paths;          // parallel to `placed`
    std::int32_t rounding_attempts = 0;
  };
  auto run_fallback = [&](auto order_before, Rng stream) {
    std::vector<std::size_t> fallback_order(trace->size());
    std::iota(fallback_order.begin(), fallback_order.end(), std::size_t{0});
    std::sort(fallback_order.begin(), fallback_order.end(),
              [&](std::size_t a, std::size_t b) {
                return order_before((*trace)[a], (*trace)[b]);
              });
    // Scratch index (no audit: the winner is re-committed through the
    // audited outer index below, which cross-checks the same probes).
    EdgeLoadIndex scratch(g.num_edges(), false);
    OracleAttempt attempt_result;
    std::vector<double> weights;
    for (const std::size_t r : fallback_order) {
      const Flow& fl = flows[orig[r]];
      for (std::int32_t attempt = 0;
           attempt < options.rounding.max_rounding_attempts; ++attempt) {
        ++attempt_result.rounding_attempts;
        const Path& path = draw_path(relax.candidates[r], stream, weights);
        if (rate_fits(scratch, path, fl.span(), fl.density(), capacity)) {
          for (const EdgeId e : path.edges) {
            scratch.add(e, fl.span(), fl.density());
          }
          attempt_result.placed.push_back(r);
          attempt_result.paths.push_back(path);
          break;
        }
      }
    }
    return attempt_result;
  };
  const OracleAttempt rcd = run_fallback(rcd_before, rng);
  const OracleAttempt dense = run_fallback(density_before, rng);
  out.oracle_rcd_admitted = static_cast<std::int32_t>(rcd.placed.size());
  out.oracle_density_admitted = static_cast<std::int32_t>(dense.placed.size());
  out.rounding_attempts += rcd.rounding_attempts + dense.rounding_attempts;
  const OracleAttempt& winner =
      dense.placed.size() > rcd.placed.size() ? dense : rcd;
  for (std::size_t k = 0; k < winner.placed.size(); ++k) {
    const std::size_t r = winner.placed[k];
    const Flow& fl = flows[orig[r]];
    commit(out, load, orig[r], winner.paths[k], {{fl.span(), fl.density()}});
  }
  out.num_rejected +=
      static_cast<std::int32_t>(trace->size() - winner.placed.size());
  out.peak_in_flight = peak_overlap(flows, out.admitted);
  out.peak_live_segments = load.peak_live_segments();
  return out;
}

}  // namespace dcn
