// The sharded scheduling engine (see sharded.h for the service shape
// and sharded_service.cc for the batch/stream entry points). Phase A
// mirrors the flat event loop's per-event body — completions, gap
// check, residual build, warm re-solve, joint rounding draw — run per
// source group over the group's own state; Phase B is the core-link
// coordinator: serial, ascending group id, every drawn path verified
// against the global load index before it commits.
#include "online/sharded.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <utility>

#include "common/contracts.h"
#include "dcfsr/random_schedule.h"
#include "online/rerate.h"

namespace dcn {

using online_impl::commit;
using online_impl::rate_fits;
using online_impl::rcd_before;
using online_impl::remaining_volume;
using online_impl::ReachabilityCache;
using online_impl::try_rerate;

/// A shard worker's long-lived state: its admitted in-flight flows and
/// their releases (the same indexed structures the flat loop keeps,
/// scoped to the group), the relaxation workspace reused across its
/// re-solves, its private rng stream (one deterministic mix per group,
/// independent of lane/worker placement), and its reachability cache
/// (sound per group: flows are partitioned by source).
struct ShardedScheduler::GroupState {
  GroupState(const Graph& g, Rng group_rng)
      : rng(group_rng), reach(g) {}

  std::set<std::pair<double, std::size_t>> active;  // (deadline, slot)
  std::multiset<double> live_releases;
  RelaxationWorkspace workspace;
  Rng rng;
  ReachabilityCache reach;
  std::vector<double> weights;  // draw_path scratch
};

/// What phase A hands the coordinator: the group's residual problem,
/// its solved relaxation (candidates feed the per-flow fallback), the
/// joint rounding draw, and the counters to fold — everything written
/// to per-group slots so concurrent groups never alias.
struct ShardedScheduler::Proposal {
  std::vector<Flow> residual;
  std::vector<std::size_t> orig;  // residual row -> slot
  std::size_t first_new = 0;
  FractionalRelaxation relax;
  RandomScheduleResult draw;
  bool solved = false;  // false: residual was empty, nothing to fold in B

  std::int64_t completions = 0;
  std::int32_t rejected_unroutable = 0;
  std::int32_t gap_checks = 0;
  std::int64_t gap_iterations = 0;
  std::int64_t fw_iterations = 0;
  FrankWolfeStats fw_stats;
  double lower_bound = 0.0;
};

ShardedScheduler::ShardedScheduler(const Graph& g, const PowerModel& model,
                                   const OnlineOptions& options,
                                   const ShardPlan& plan,
                                   std::uint64_t stream_seed,
                                   std::int32_t workers,
                                   bool discard_completed)
    : g_(g),
      model_(model),
      options_(options),
      plan_(plan),
      capacity_(model.capacity()),
      discard_completed_(discard_completed),
      load_(plan, g.num_edges(), options.audit_load_index) {
  const std::int32_t n = plan_.num_groups();
  DCN_EXPECTS(n > 0);
  groups_.reserve(static_cast<std::size_t>(n));
  for (std::int32_t gid = 0; gid < n; ++gid) {
    groups_.push_back(std::make_unique<GroupState>(
        g, Rng(mix_seed(stream_seed, "shard-" + std::to_string(gid)))));
  }
  batch_slots_.resize(static_cast<std::size_t>(n));
  // Lanes cap concurrency, never semantics: phase A writes only
  // per-group slots, so any pool size (or none) is byte-identical.
  std::int32_t effective =
      workers <= 0 ? static_cast<std::int32_t>(std::max<unsigned>(
                         1, std::thread::hardware_concurrency()))
                   : workers;
  effective = std::min(effective, plan_.num_lanes());
  if (plan_.num_lanes() > 1 && effective > 1) {
    pool_ = std::make_unique<WorkerPool>(static_cast<std::size_t>(effective));
  }
}

ShardedScheduler::~ShardedScheduler() = default;

std::int32_t ShardedScheduler::in_flight() const {
  std::size_t total = 0;
  for (const auto& gp : groups_) total += gp->active.size();
  return static_cast<std::int32_t>(total);
}

void ShardedScheduler::release_warm(std::size_t slot) {
  // `vector = {}` is assign(empty) and keeps the old capacity; warm
  // rows are sparse edge-flow vectors that can run to hundreds of
  // entries, and a completed or rejected slot is never written again.
  // Move-assigning a fresh vector actually releases the heap, which is
  // what keeps a long-running service's RSS proportional to the
  // in-flight working set instead of the stream length.
  warm_[slot] = SparseEdgeFlow();
  warm_atoms_[slot] = AtomSet();
}

double ShardedScheduler::residual_volume(std::size_t slot, double t) const {
  // The density invariant for untouched flows, the committed profile's
  // actual remainder once re-rated (same rule as the flat loop).
  return rerated_[slot]
             ? remaining_volume(flows_[slot], out_.schedule.flows[slot], t)
             : flows_[slot].density() * (flows_[slot].deadline - t);
}

void ShardedScheduler::phase_a(GroupState& gs,
                               const std::vector<std::size_t>& batch_slots,
                               double now, Proposal& p) {
  // Completions since the group's previous activation: pop the prefix
  // with deadline <= now and release the departed flows' warm state.
  double depart = -std::numeric_limits<double>::infinity();
  while (!gs.active.empty() && gs.active.begin()->first <= now) {
    const std::size_t done = gs.active.begin()->second;
    depart = gs.active.begin()->first;
    gs.active.erase(gs.active.begin());
    gs.live_releases.erase(gs.live_releases.find(flows_[done].release));
    release_warm(done);
    ++p.completions;
    if (discard_completed_) {
      // Service mode: the completed flow's committed row is history —
      // drop its path and segments so resident state tracks the
      // in-flight working set, not the stream length. The admission
      // flag and aggregate counters keep the outcome.
      out_.schedule.flows[done] = FlowSchedule{};
    }
  }

  // Departures-only fast path, per group (same certification the flat
  // loop runs; survivors and warm rows are the group's own).
  if (options_.departures_fast_path && std::isfinite(depart) &&
      !gs.active.empty()) {
    std::vector<Flow> survivors;
    std::vector<std::size_t> surviving;
    std::vector<SparseEdgeFlow> gap_rows;
    std::vector<AtomSet> gap_atoms;
    survivors.reserve(gs.active.size());
    const double gap_horizon =
        options_.lookahead_window > 0.0
            ? depart + options_.lookahead_window
            : std::numeric_limits<double>::infinity();
    for (const auto& [deadline, i] : gs.active) {
      Flow res = flows_[i];
      res.volume = residual_volume(i, depart);
      if (rerated_[i] &&
          res.volume <= 1e-12 * std::max(1.0, flows_[i].volume)) {
        continue;  // accelerated to completion before its deadline
      }
      res.id = static_cast<FlowId>(survivors.size());
      res.release = depart;
      if (res.deadline > gap_horizon) {
        res.volume = rerated_[i]
                         ? res.volume *
                               ((gap_horizon - depart) / (deadline - depart))
                         : flows_[i].density() * (gap_horizon - depart);
        res.deadline = gap_horizon;
      }
      survivors.push_back(res);
      surviving.push_back(i);
      gap_rows.push_back(warm_[i]);
      gap_atoms.push_back(std::move(warm_atoms_[i]));
    }
    RelaxationOptions gap_options = options_.rounding.relaxation;
    gap_options.frank_wolfe.max_iterations = 1;
    gap_options.frank_wolfe.step_rule = options_.warm_step_rule;
    FractionalRelaxation check =
        solve_relaxation(g_, survivors, model_, gap_options, &gs.workspace,
                         &gap_rows, &gap_atoms);
    ++p.gap_checks;
    p.gap_iterations += check.total_fw_iterations;
    p.fw_stats += check.fw_stats;
    for (std::size_t r = 0; r < survivors.size(); ++r) {
      if (rerated_[surviving[r]]) continue;  // stays cold
      warm_[surviving[r]] = std::move(check.final_flow[r]);
      warm_atoms_[surviving[r]] = std::move(check.final_atoms[r]);
    }
  }

  // Residual problem: the group's in-flight flows pinned to their
  // circuits, then its share of the arriving batch.
  std::vector<const Path*> forced;
  p.residual.reserve(gs.active.size() + batch_slots.size());
  for (const auto& [deadline, i] : gs.active) {
    (void)deadline;
    Flow res = flows_[i];
    res.volume = residual_volume(i, now);
    if (rerated_[i] && res.volume <= 1e-12 * std::max(1.0, flows_[i].volume)) {
      continue;
    }
    res.id = static_cast<FlowId>(p.residual.size());
    res.release = now;
    p.residual.push_back(res);
    p.orig.push_back(i);
    forced.push_back(&out_.schedule.flows[i].path);
  }
  p.first_new = p.residual.size();
  for (const std::size_t slot : batch_slots) {
    Flow res = flows_[slot];
    if (!gs.reach.routable(res.src, res.dst)) {
      ++p.rejected_unroutable;
      continue;
    }
    res.id = static_cast<FlowId>(p.residual.size());
    p.residual.push_back(res);
    p.orig.push_back(slot);
    forced.push_back(nullptr);
  }
  if (p.residual.empty()) return;  // p.solved stays false

  // Warm-started re-solve over the group's shifted horizon, windowed
  // exactly like the flat loop (admission below still checks true
  // spans, so the window never affects soundness).
  std::vector<SparseEdgeFlow> warm_rows(p.residual.size());
  std::vector<AtomSet> warm_atom_rows(p.residual.size());
  for (std::size_t r = 0; r < p.residual.size(); ++r) {
    warm_rows[r] = warm_[p.orig[r]];
    warm_atom_rows[r] = std::move(warm_atoms_[p.orig[r]]);
  }
  const std::vector<Flow>* relax_flows = &p.residual;
  std::vector<Flow> clipped;
  if (options_.lookahead_window > 0.0) {
    const double horizon = now + options_.lookahead_window;
    bool any_clipped = false;
    for (const Flow& fl : p.residual) {
      if (fl.deadline > horizon && fl.release < horizon) {
        any_clipped = true;
        break;
      }
    }
    if (any_clipped) {
      clipped = p.residual;
      for (Flow& fl : clipped) {
        if (fl.deadline > horizon && fl.release < horizon) {
          fl.volume = fl.density() * (horizon - fl.release);
          fl.deadline = horizon;
        }
      }
      relax_flows = &clipped;
    }
  }
  RelaxationOptions relax_options = options_.rounding.relaxation;
  if (p.first_new > 0) {
    relax_options.frank_wolfe.step_rule = options_.warm_step_rule;
  }
  p.relax = solve_relaxation(g_, *relax_flows, model_, relax_options,
                             &gs.workspace, &warm_rows, &warm_atom_rows);
  p.solved = true;
  p.fw_iterations += p.relax.total_fw_iterations;
  p.fw_stats += p.relax.fw_stats;
  p.lower_bound = p.relax.lower_bound_energy;
  for (std::size_t r = 0; r < p.residual.size(); ++r) {
    if (rerated_[p.orig[r]]) {
      release_warm(p.orig[r]);
      continue;
    }
    warm_[p.orig[r]] = std::move(p.relax.final_flow[r]);
    warm_atoms_[p.orig[r]] = std::move(p.relax.final_atoms[r]);
  }

  // Joint rounding draw from the group's own stream; commits happen in
  // phase B against the global index.
  p.draw = round_relaxation(g_, p.residual, model_, p.relax, gs.rng,
                            options_.rounding, &forced);
}

void ShardedScheduler::phase_b(GroupState& gs, double now, Proposal& p) {
  completed_ += p.completions;
  out_.num_rejected += p.rejected_unroutable;
  out_.departure_gap_checks += p.gap_checks;
  out_.gap_check_iterations += p.gap_iterations;
  out_.fw_stats += p.fw_stats;
  if (!p.solved) return;
  ++out_.resolves;
  out_.fw_iterations += p.fw_iterations;
  if (!first_lb_set_) {
    out_.first_lower_bound = p.lower_bound;
    first_lb_set_ = true;
  }

  auto admit_into_index = [&](std::size_t i) {
    gs.active.emplace(flows_[i].deadline, i);
    gs.live_releases.insert(flows_[i].release);
  };
  auto release_rejected = [&](std::size_t i) { release_warm(i); };

  // Per-flow fallback against the global committed load: fresh draws
  // from the group's stream, then — with allow_rerate — deterministic
  // re-rate attempts over the group's own in-flight flows (the only
  // ones a source-partitioned pass may reshape).
  auto place_arrival = [&](std::size_t r) -> bool {
    const std::size_t i = p.orig[r];
    const Flow& fl = flows_[i];
    for (std::int32_t attempt = 0;
         attempt < options_.rounding.max_rounding_attempts; ++attempt) {
      ++out_.rounding_attempts;
      const Path& path = draw_path(p.relax.candidates[r], gs.rng, gs.weights);
      if (rate_fits(load_, path, fl.span(), fl.density(), capacity_)) {
        commit(out_, load_, i, path, {{fl.span(), fl.density()}});
        admit_into_index(i);
        return true;
      }
    }
    if (!options_.allow_rerate) return false;
    std::vector<const WeightedPath*> ranked;
    for (const WeightedPath& wp : p.relax.candidates[r].paths) {
      ranked.push_back(&wp);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const WeightedPath* a, const WeightedPath* b) {
                       return a->weight > b->weight;
                     });
    std::size_t tried = 0;
    for (std::size_t k = 0; k < ranked.size() && tried < 3; ++k) {
      bool duplicate = false;
      for (std::size_t j = 0; j < k && !duplicate; ++j) {
        duplicate = ranked[j]->path.edges == ranked[k]->path.edges;
      }
      if (duplicate) continue;
      ++tried;
      if (try_rerate(out_, load_, flows_, gs.active, now, capacity_, i,
                     ranked[k]->path, rerated_, warm_, warm_atoms_)) {
        admit_into_index(i);
        return true;
      }
    }
    return false;
  };

  out_.rounding_attempts += p.draw.rounding_attempts;
  if (p.draw.capacity_feasible) {
    // Coordinator arbitration: the group's joint capacity check covered
    // only its own residual timeline — shared aggregation/core edges
    // carry other groups' committed load it never saw. Every drawn path
    // is therefore verified against the global index, in residual
    // (event-time, shard-id, flow-id) order, before it commits; flows
    // the arbitration displaces go through the per-flow fallback.
    std::vector<std::size_t> leftover;
    for (std::size_t r = p.first_new; r < p.residual.size(); ++r) {
      const Flow& fl = flows_[p.orig[r]];
      const Path& path = p.draw.schedule.flows[r].path;
      if (rate_fits(load_, path, fl.span(), fl.density(), capacity_)) {
        commit(out_, load_, p.orig[r], std::move(p.draw.schedule.flows[r].path),
               {{fl.span(), fl.density()}});
        admit_into_index(p.orig[r]);
      } else {
        leftover.push_back(r);
      }
    }
    for (const std::size_t r : leftover) {
      if (!place_arrival(r)) {
        ++out_.num_rejected;
        release_rejected(p.orig[r]);
      }
    }
    return;
  }

  // The group's joint admission failed within its attempt budget: admit
  // its batch share one flow at a time (RCD urgency order by default).
  ++out_.batch_fallbacks;
  std::vector<std::size_t> fallback_order;
  for (std::size_t r = p.first_new; r < p.residual.size(); ++r) {
    fallback_order.push_back(r);
  }
  if (options_.fallback_order == FallbackAdmissionOrder::kDeadlineDensity) {
    std::sort(fallback_order.begin(), fallback_order.end(),
              [&](std::size_t a, std::size_t b) {
                return rcd_before(flows_[p.orig[a]], flows_[p.orig[b]]);
              });
  }
  for (const std::size_t r : fallback_order) {
    if (!place_arrival(r)) {
      ++out_.num_rejected;
      release_rejected(p.orig[r]);
    }
  }
}

void ShardedScheduler::audit_warm_state() const {
  if (!options_.audit_load_index) return;
  std::vector<char> in_flight(flows_.size(), 0);
  for (const auto& gp : groups_) {
    for (const auto& [deadline, i] : gp->active) {
      (void)deadline;
      in_flight[i] = 1;
    }
  }
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (in_flight[i]) continue;
    DCN_ENSURES(warm_[i].empty());
    DCN_ENSURES(warm_atoms_[i].empty());
  }
}

void ShardedScheduler::process_batch(double now,
                                     const std::vector<Flow>& batch) {
  ++out_.num_events;
  // dcn-lint: allow(wall-clock) timing capture: decision latency, reaches SolverOutcome::timings only (never canonical)
  const auto event_start = std::chrono::steady_clock::now();

  const std::size_t base = flows_.size();
  flows_.insert(flows_.end(), batch.begin(), batch.end());
  warm_.resize(flows_.size());
  warm_atoms_.resize(flows_.size());
  rerated_.resize(flows_.size(), 0);
  group_of_slot_.resize(flows_.size());
  out_.schedule.flows.resize(flows_.size());
  out_.admitted.resize(flows_.size(), false);

  // Bucket the batch per group (batch order is (release, id), which
  // the buckets preserve), then find the affected groups: those with
  // arrivals or completions due. Untouched groups carry their state
  // forward for free — no per-event work proportional to group count
  // beyond this scan.
  for (auto& bucket : batch_slots_) bucket.clear();
  affected_.clear();
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const std::size_t slot = base + k;
    const std::int32_t gid = plan_.group_of(flows_[slot]);
    DCN_EXPECTS(gid >= 0);
    group_of_slot_[slot] = gid;
    batch_slots_[static_cast<std::size_t>(gid)].push_back(slot);
  }
  for (std::int32_t gid = 0; gid < plan_.num_groups(); ++gid) {
    GroupState& gs = *groups_[static_cast<std::size_t>(gid)];
    const bool arrivals = !batch_slots_[static_cast<std::size_t>(gid)].empty();
    const bool completions =
        !gs.active.empty() && gs.active.begin()->first <= now;
    if (arrivals || completions) affected_.push_back(gid);
  }

  // Phase A: independent per-group work, parallel across lanes. Every
  // write lands in the group's own slots or its proposal, so the task
  // schedule (and whether a pool exists at all) cannot affect results.
  std::vector<Proposal> proposals(affected_.size());
  auto run_group = [&](std::size_t task, std::size_t worker) {
    (void)worker;
    const auto gid = static_cast<std::size_t>(affected_[task]);
    phase_a(*groups_[gid], batch_slots_[gid], now, proposals[task]);
  };
  if (pool_ && affected_.size() > 1) {
    pool_->run(affected_.size(), run_group);
  } else {
    for (std::size_t t = 0; t < affected_.size(); ++t) run_group(t, 0);
  }

  // Prune between phases — completions popped, commits not yet placed —
  // which is exactly the flat loop's prune point. The mark is global:
  // min(now, earliest live release across every group).
  double earliest = now;
  for (const auto& gp : groups_) {
    if (!gp->live_releases.empty()) {
      earliest = std::min(earliest, *gp->live_releases.begin());
    }
  }
  load_.advance_low_water(earliest);

  // Phase B: the coordinator folds proposals in ascending group id —
  // deterministic (event-time, shard-id, flow-id) arbitration order.
  for (std::size_t t = 0; t < affected_.size(); ++t) {
    phase_b(*groups_[static_cast<std::size_t>(affected_[t])], now,
            proposals[t]);
  }

  out_.peak_in_flight = std::max(out_.peak_in_flight, in_flight());
  audit_warm_state();
  // dcn-lint: allow(wall-clock) timing capture: closes the decision-latency window opened at event_start
  const double ms = std::chrono::duration<double, std::milli>(
                        // dcn-lint: allow(wall-clock) timing capture: same latency read (continuation)
                        std::chrono::steady_clock::now() - event_start)
                        .count();
  for (std::size_t k = 0; k < batch.size(); ++k) {
    out_.decision_latency_ms.push_back(ms);
  }
}

OnlineResult ShardedScheduler::take_result() {
  out_.peak_live_segments = load_.peak_live_segments();
  out_.load_segments_pruned = load_.segments_pruned();
  return std::move(out_);
}

}  // namespace dcn
