#include "online/event_stream.h"

#include <algorithm>
#include <utility>

#include "common/contracts.h"

namespace dcn {

TraceEventStream::TraceEventStream(std::vector<Flow> flows)
    : flows_(std::move(flows)) {
  std::sort(flows_.begin(), flows_.end(), [](const Flow& a, const Flow& b) {
    if (a.release != b.release) return a.release < b.release;
    return a.id < b.id;
  });
}

std::optional<Flow> TraceEventStream::next() {
  if (pos_ >= flows_.size()) return std::nullopt;
  return flows_[pos_++];
}

PoissonEventStream::PoissonEventStream(const Topology& topo,
                                       const OnlineWorkloadParams& params,
                                       Rng rng, std::int64_t limit)
    : gen_(topo, params, rng), remaining_(limit) {
  DCN_EXPECTS(limit >= 0);
}

std::optional<Flow> PoissonEventStream::next() {
  if (remaining_ <= 0) return std::nullopt;
  --remaining_;
  return gen_.next();
}

}  // namespace dcn
