// The incremental per-edge load index of the online schedulers.
//
// One LoadProfile per edge holds the committed density segments of
// every admitted flow. The schedulers advance a global low-water mark —
// the earliest release among flows still in flight (and the current
// event time) — and the index prunes each edge's profile to it, so
// admission probes (`rate_fits`' max_within, `edf_fill`'s piece
// values, online_greedy's marginal-energy weights) cost O(log live +
// segments in span) regardless of how many flows ever committed.
//
// Audit mode (OnlineOptions::audit_load_index, used by the test
// sweeps) keeps a shadow of plain StepFunctions alongside and
// cross-checks every probe bitwise against the naive replay — the
// differential harness of the bitwise contract documented on
// LoadProfile. The shadows fold their own history at the same low-water
// mark (StepFunction::drop_before — the naive fold of the same prefix),
// so audit-on soaks stay memory-bounded without weakening the check:
// every probe the contract covers is at or after the mark.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/contracts.h"
#include "common/piecewise.h"
#include "graph/graph.h"
#include "power/power_model.h"

namespace dcn {

class EdgeLoadIndex {
 public:
  explicit EdgeLoadIndex(std::int32_t num_edges, bool audit = false);

  /// Adds `rate` over `iv` on edge e (one committed schedule segment).
  void add(EdgeId e, const Interval& iv, double rate);

  /// Removes `rate` over `iv` on edge e — the exact inverse of an
  /// earlier add, used by the re-rate pass (OnlineOptions::allow_rerate)
  /// to take a committed profile's future out of the index before
  /// committing its replacement (or restoring the original, when the
  /// commit barrier rejects the re-rating). A retraction is an add of
  /// -rate, so the difference representation — and the bitwise
  /// audit-shadow equality — is preserved by construction; a retract
  /// followed by re-adding the identical segment cancels exactly (the
  /// deltas sum to 0.0 at each breakpoint) and leaves every probe value
  /// bitwise unchanged. `iv.lo` must be at or after the low-water mark,
  /// which holds for any retraction of a live flow's future: the mark
  /// never passes the current event time.
  void retract(EdgeId e, const Interval& iv, double rate);

  /// Committed load on edge e at time t.
  [[nodiscard]] double value_at(EdgeId e, double t) const;

  /// Peak committed load on edge e inside `window`.
  [[nodiscard]] double max_within(EdgeId e, const Interval& window) const;

  /// Marginal energy of adding density `d` on edge e over `span`:
  /// integral of f(x + d) - f(x), stretches with x = 0 contributing
  /// f(d) — the windowed form of baselines.h's marginal_energy, reading
  /// only the span's merged segments instead of the whole profile.
  [[nodiscard]] double marginal_energy(EdgeId e, const Interval& span, double d,
                                       const PowerModel& model) const;

  /// Advances the low-water mark and prunes every edge's history
  /// strictly before it. No-op unless `t` advances the mark. After this
  /// call, probes and adds before `t` are out of contract.
  void advance_low_water(double t);

  /// Merged committed segments of edge e from the nearest run boundary
  /// at or before `from` (see LoadProfile::for_each_segment_from).
  template <typename Fn>
  void for_each_segment_from(EdgeId e, double from, Fn&& fn) const {
    profiles_[static_cast<std::size_t>(e)].for_each_segment_from(
        from, static_cast<Fn&&>(fn));
  }

  [[nodiscard]] double low_water() const { return low_water_; }
  /// Largest live-breakpoint count any edge ever held — the probe-cost
  /// working set the pruning invariant bounds (a bench_online column).
  [[nodiscard]] std::int32_t peak_live_segments() const { return peak_live_; }
  /// Total breakpoints pruned across all edges.
  [[nodiscard]] std::int64_t segments_pruned() const;

  /// The naive shadow profiles (audit mode only, nullptr otherwise) —
  /// lets edf_fill cross-check its fill against the reference
  /// implementation.
  [[nodiscard]] const std::vector<StepFunction>* shadow() const {
    return audit_ ? &shadow_ : nullptr;
  }

 private:
  [[nodiscard]] const LoadProfile& at(EdgeId e) const {
    return profiles_[static_cast<std::size_t>(e)];
  }

  std::vector<LoadProfile> profiles_;
  bool audit_ = false;
  std::vector<StepFunction> shadow_;  // audit mode only
  double low_water_ = -std::numeric_limits<double>::infinity();
  std::int32_t peak_live_ = 0;
};

}  // namespace dcn
