// Result-shaping utilities of the online layer.
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "online/online_scheduler.h"

namespace dcn {

std::pair<std::vector<Flow>, Schedule> admitted_subset(
    const std::vector<Flow>& flows, const Schedule& schedule,
    const std::vector<bool>& admitted) {
  DCN_EXPECTS(schedule.flows.size() == flows.size());
  DCN_EXPECTS(admitted.size() == flows.size());
  std::vector<Flow> sub_flows;
  Schedule sub_schedule;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (!admitted[i]) continue;
    Flow fl = flows[i];
    fl.id = static_cast<FlowId>(sub_flows.size());
    sub_flows.push_back(fl);
    sub_schedule.flows.push_back(schedule.flows[i]);
  }
  return {std::move(sub_flows), std::move(sub_schedule)};
}

}  // namespace dcn
