#include "online/shard_plan.h"

#include <algorithm>

#include "common/contracts.h"

namespace dcn {

ShardPlan ShardPlan::by_source_group(const Topology& topo,
                                     std::int32_t num_shards) {
  const Graph& g = topo.graph();
  ShardPlan plan;
  plan.host_group_.assign(static_cast<std::size_t>(g.num_nodes()), -1);

  // A host's attachment switch is the destination of its first (and in
  // every supported fabric, only) uplink. A host with no uplink at all
  // can never source a routable flow; it gets a synthetic key disjoint
  // from the switch ids so its flows still land in a well-defined group
  // (where the reachability screen rejects them).
  std::vector<std::pair<NodeId, NodeId>> keyed;  // (attachment key, host)
  keyed.reserve(topo.hosts().size());
  for (const NodeId h : topo.hosts()) {
    const auto& up = g.out_edges(h);
    const NodeId key = up.empty() ? g.num_nodes() + h : g.edge(up.front()).dst;
    keyed.emplace_back(key, h);
  }
  // Distinct attachment keys in ascending order define the group ids —
  // a pure function of the topology, independent of shard/worker count.
  std::vector<NodeId> keys;
  keys.reserve(keyed.size());
  for (const auto& [key, h] : keyed) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (const auto& [key, h] : keyed) {
    const auto it = std::lower_bound(keys.begin(), keys.end(), key);
    plan.host_group_[static_cast<std::size_t>(h)] =
        static_cast<std::int32_t>(it - keys.begin());
  }
  plan.num_groups_ = static_cast<std::int32_t>(keys.size());

  // Edge ownership: a host's out-edges (uplinks) are private to its
  // group — hosts are leaves, so no path transits a host and only flows
  // sourced there ever load those edges. Everything else (aggregation,
  // core, and every downlink, which inbound traffic from any group can
  // load) is coordinator-owned.
  plan.edge_owner_.assign(static_cast<std::size_t>(g.num_edges()), -1);
  const auto edges = g.edges();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId src = edges[static_cast<std::size_t>(e)].src;
    plan.edge_owner_[static_cast<std::size_t>(e)] =
        plan.host_group_[static_cast<std::size_t>(src)];
  }

  plan.num_lanes_ = num_shards <= 0
                        ? std::max(plan.num_groups_, 1)
                        : std::min(num_shards, std::max(plan.num_groups_, 1));
  return plan;
}

ShardedLoadIndex::ShardedLoadIndex(const ShardPlan& plan,
                                   std::int32_t num_edges, bool audit)
    : owner_(&plan.edge_owner()), coordinator_(num_edges, audit) {
  DCN_EXPECTS(static_cast<std::int32_t>(owner_->size()) == num_edges);
  privates_.reserve(static_cast<std::size_t>(plan.num_groups()));
  for (std::int32_t gid = 0; gid < plan.num_groups(); ++gid) {
    privates_.emplace_back(num_edges, audit);
  }
}

void ShardedLoadIndex::advance_low_water(double t) {
  for (EdgeLoadIndex& idx : privates_) idx.advance_low_water(t);
  coordinator_.advance_low_water(t);
}

std::int32_t ShardedLoadIndex::peak_live_segments() const {
  std::int32_t peak = coordinator_.peak_live_segments();
  for (const EdgeLoadIndex& idx : privates_) {
    peak = std::max(peak, idx.peak_live_segments());
  }
  return peak;
}

std::int64_t ShardedLoadIndex::segments_pruned() const {
  std::int64_t total = coordinator_.segments_pruned();
  for (const EdgeLoadIndex& idx : privates_) total += idx.segments_pruned();
  return total;
}

}  // namespace dcn
