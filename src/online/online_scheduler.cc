#include "online/online_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <utility>

#include "baselines/baselines.h"
#include "common/contracts.h"
#include "common/piecewise.h"
#include "graph/shortest_path.h"
#include "mcf/relaxation.h"

namespace dcn {

namespace {

/// Relative slack applied to every capacity comparison (mirrors the
/// rounding accept/reject step of Algorithm 2).
constexpr double kCapacitySlack = 1e-9;

/// Per-source reachability (the routing layer's bfs_distances), cached
/// per distinct source for the run. Online inputs are not pre-screened
/// for connectivity: every admission path must treat an unroutable
/// flow as a rejection, never feed it to the relaxation (whose routing
/// oracle asserts reachability). Connectivity is static for a run, so
/// each check after a source's first is O(1); the graph is directed,
/// so this is a true reachability sweep, not an undirected component
/// labeling.
class ReachabilityCache {
 public:
  explicit ReachabilityCache(const Graph& g) : g_(g) {}

  bool routable(NodeId src, NodeId dst) {
    auto [it, inserted] = cache_.try_emplace(src);
    if (inserted) it->second = bfs_distances(g_, src);
    return it->second[static_cast<std::size_t>(dst)] >= 0;
  }

 private:
  const Graph& g_;
  std::map<NodeId, std::vector<std::int32_t>> cache_;
};

/// RCD urgency order (Noormohammadpour et al.): closest deadline
/// first, then higher density, then id. Both per-flow admission
/// fallbacks — the online event loop's and the hindsight oracle's —
/// sort by exactly this comparator, which is what lets the oracle
/// claim "the online machinery with full knowledge".
bool rcd_before(const Flow& a, const Flow& b) {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.density() != b.density()) return a.density() > b.density();
  return a.id < b.id;
}

/// Peak number of admitted flows simultaneously in flight: the maximum
/// overlap of the admitted spans (half-open, so a flow ending exactly
/// when another starts does not overlap it).
std::int32_t peak_overlap(const std::vector<Flow>& flows,
                          const std::vector<bool>& admitted) {
  std::vector<std::pair<double, std::int32_t>> events;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (!admitted[i]) continue;
    events.emplace_back(flows[i].release, +1);
    events.emplace_back(flows[i].deadline, -1);
  }
  std::sort(events.begin(), events.end());
  std::int32_t current = 0, peak = 0;
  for (const auto& [time, delta] : events) {
    current += delta;
    peak = std::max(peak, current);
  }
  return peak;
}

/// Arrival order: indices sorted by (release, id).
std::vector<std::size_t> arrival_order(const std::vector<Flow>& flows) {
  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&flows](std::size_t a, std::size_t b) {
    if (flows[a].release != flows[b].release) {
      return flows[a].release < flows[b].release;
    }
    return flows[a].id < flows[b].id;
  });
  return order;
}

/// True when adding constant rate `rate` over `span` keeps every edge of
/// `path` within capacity against the committed `load`. The peak lookup
/// is the index's max_within — cached prefix values plus a block-max
/// overlay over the live (unpruned) region, so the probe cost is bounded
/// by the in-flight history even after thousands of commits.
bool rate_fits(const EdgeLoadIndex& load, const Path& path,
               const Interval& span, double rate, double capacity) {
  const double limit = capacity * (1.0 + kCapacitySlack);
  if (rate > limit) return false;
  for (const EdgeId e : path.edges) {
    if (load.max_within(e, span) + rate > limit) return false;
  }
  return true;
}

/// Commits `segments` on `path` for flow `i`: records the flow schedule
/// and adds every segment to the per-edge load index.
void commit(OnlineResult& out, EdgeLoadIndex& load, std::size_t i, Path path,
            std::vector<RateSegment> segments) {
  FlowSchedule& fs = out.schedule.flows[i];
  fs.path = std::move(path);
  fs.segments = std::move(segments);
  for (const RateSegment& seg : fs.segments) {
    for (const EdgeId e : fs.path.edges) {
      load.add(e, seg.interval, seg.rate);
    }
  }
  out.admitted[i] = true;
  ++out.num_admitted;
}

}  // namespace

/// Indexed EDF fill (see header): same elementary-piece packing as the
/// reference below, but the cut collection walks only the merged
/// segments overlapping `span` (for_each_segment_from stops at the
/// first run starting past span.hi) and the per-piece load probes are
/// O(log live) index lookups. Runs the index enumerates that the
/// reference's full segments() scan would also visit but that end at or
/// before span.lo — or start at or past span.hi — contribute no cuts
/// under the strict window filters, so the cut set matches the
/// reference exactly; in audit mode the whole fill is cross-checked
/// against the reference on the naive shadow.
std::vector<RateSegment> edf_fill(const EdgeLoadIndex& load, const Path& path,
                                  const Interval& span, double volume,
                                  double capacity) {
  std::vector<double> cuts{span.lo, span.hi};
  for (const EdgeId e : path.edges) {
    load.for_each_segment_from(e, span.lo, [&](const Interval& iv, double) {
      if (iv.lo >= span.hi) return false;
      if (iv.lo > span.lo && iv.lo < span.hi) cuts.push_back(iv.lo);
      if (iv.hi > span.lo && iv.hi < span.hi) cuts.push_back(iv.hi);
      return true;
    });
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<RateSegment> segments;
  double remaining = volume;
  for (std::size_t k = 0; k + 1 < cuts.size() && remaining > 0.0; ++k) {
    const Interval piece{cuts[k], cuts[k + 1]};
    double used = 0.0;
    for (const EdgeId e : path.edges) {
      used = std::max(used, load.value_at(e, piece.lo));
    }
    const double avail = capacity - used;
    if (avail <= kCapacitySlack * std::max(1.0, capacity)) continue;
    const double takeable = avail * piece.measure();
    if (takeable >= remaining) {
      segments.push_back({{piece.lo, piece.lo + remaining / avail}, avail});
      remaining = 0.0;
    } else {
      segments.push_back({piece, avail});
      remaining -= takeable;
    }
  }
  if (remaining > 1e-9 * std::max(1.0, volume)) segments.clear();
  if (const std::vector<StepFunction>* shadow = load.shadow()) {
    // Bitwise differential against the reference fill on the naive
    // never-pruned profiles: same cuts, same rates, same early exit.
    const std::vector<RateSegment> ref =
        edf_fill(*shadow, path, span, volume, capacity);
    DCN_ENSURES(segments.size() == ref.size());
    for (std::size_t k = 0; k < segments.size(); ++k) {
      DCN_ENSURES(segments[k].interval.lo == ref[k].interval.lo);
      DCN_ENSURES(segments[k].interval.hi == ref[k].interval.hi);
      DCN_ENSURES(segments[k].rate == ref[k].rate);
    }
  }
  return segments;
}

/// Reference fill: packs `volume` into the earliest remaining capacity
/// of `path` within `span`, scanning every committed segment of each
/// edge's full profile. The differential baseline of the indexed
/// overload above (audit mode and tests); not on any scheduler's path.
std::vector<RateSegment> edf_fill(const std::vector<StepFunction>& load,
                                  const Path& path, const Interval& span,
                                  double volume, double capacity) {
  // Elementary intervals: every committed-load breakpoint of the path's
  // edges inside the span, so the combined load is constant per piece.
  std::vector<double> cuts{span.lo, span.hi};
  for (const EdgeId e : path.edges) {
    for (const auto& [iv, value] : load[static_cast<std::size_t>(e)].segments()) {
      if (iv.lo > span.lo && iv.lo < span.hi) cuts.push_back(iv.lo);
      if (iv.hi > span.lo && iv.hi < span.hi) cuts.push_back(iv.hi);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<RateSegment> segments;
  double remaining = volume;
  for (std::size_t k = 0; k + 1 < cuts.size() && remaining > 0.0; ++k) {
    const Interval piece{cuts[k], cuts[k + 1]};
    double used = 0.0;
    for (const EdgeId e : path.edges) {
      used = std::max(used,
                      load[static_cast<std::size_t>(e)].value_at(piece.lo));
    }
    const double avail = capacity - used;
    if (avail <= kCapacitySlack * std::max(1.0, capacity)) continue;
    const double takeable = avail * piece.measure();
    if (takeable >= remaining) {
      segments.push_back({{piece.lo, piece.lo + remaining / avail}, avail});
      remaining = 0.0;
    } else {
      segments.push_back({piece, avail});
      remaining -= takeable;
    }
  }
  if (remaining > 1e-9 * std::max(1.0, volume)) return {};
  return segments;
}

std::pair<std::vector<Flow>, Schedule> admitted_subset(
    const std::vector<Flow>& flows, const Schedule& schedule,
    const std::vector<bool>& admitted) {
  DCN_EXPECTS(schedule.flows.size() == flows.size());
  DCN_EXPECTS(admitted.size() == flows.size());
  std::vector<Flow> sub_flows;
  Schedule sub_schedule;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (!admitted[i]) continue;
    Flow fl = flows[i];
    fl.id = static_cast<FlowId>(sub_flows.size());
    sub_flows.push_back(fl);
    sub_schedule.flows.push_back(schedule.flows[i]);
  }
  return {std::move(sub_flows), std::move(sub_schedule)};
}

OnlineResult online_dcfsr(const Graph& g, const std::vector<Flow>& flows,
                          const PowerModel& model, Rng& rng,
                          const OnlineOptions& options) {
  validate_flows(g, flows);
  OnlineResult out;
  out.schedule.flows.resize(flows.size());
  out.admitted.assign(flows.size(), false);
  if (flows.empty()) return out;

  const std::vector<std::size_t> order = arrival_order(flows);
  const double capacity = model.capacity();

  // Warm-start rows and pairwise path atoms by original flow id,
  // threaded across re-solves, and one workspace for every re-solve of
  // the run: the PR 2 fast path plus the PR 5 atom carry-over. Both are
  // released the moment a flow departs or is rejected, so the carried
  // state stays proportional to the flows actually in flight.
  std::vector<SparseEdgeFlow> warm(flows.size());
  std::vector<AtomSet> warm_atoms(flows.size());
  RelaxationWorkspace workspace;

  // Committed per-edge load (admitted density segments) for the
  // per-flow admission fallback: the incremental index, pruned to the
  // run's low-water mark at every event below.
  EdgeLoadIndex load(g.num_edges(), options.audit_load_index);
  ReachabilityCache reachable(g);

  // The active-flow index: admitted, still-in-flight flows keyed by
  // (deadline, flow index). Completions leave from the front in
  // O(log n) each; the residual problem reads the set in deadline order
  // in O(active) — no per-event scan over the whole trace.
  std::set<std::pair<double, std::size_t>> active;
  // Release times of the flows in `active`, kept as a multiset so the
  // low-water mark — min(earliest live release, event time) — updates
  // in O(log n) per admission/completion.
  std::multiset<double> live_releases;

  for (std::size_t lo = 0; lo < order.size();) {
    // The event's decision point is the batch's first release; with
    // epoch > 0 every arrival within `epoch` of it joins the batch.
    // epoch = 0 reduces to equal-release grouping exactly: releases
    // ascend, so `<= now + 0` is `== now`.
    const double now = flows[order[lo]].release;
    std::size_t hi = lo;
    while (hi < order.size() &&
           flows[order[hi]].release <= now + options.epoch) {
      ++hi;
    }
    ++out.num_events;
    const auto event_start = std::chrono::steady_clock::now();
    // Every arrival in the batch is charged the event's full wall
    // clock — the decision latency a caller of admission would see.
    auto record_latency = [&] {
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - event_start)
                            .count();
      for (std::size_t k = lo; k < hi; ++k) {
        out.decision_latency_ms.push_back(ms);
      }
    };

    // Completions since the previous event: pop the index prefix with
    // deadline <= now and release the departed flows' warm state. The
    // index held exactly the flows in flight after the previous event,
    // so the popped deadlines are exactly the completions strictly
    // inside (previous event, now]; the latest one seeds the
    // departures-only fast path below.
    double depart = -std::numeric_limits<double>::infinity();
    while (!active.empty() && active.begin()->first <= now) {
      const std::size_t done = active.begin()->second;
      depart = active.begin()->first;
      active.erase(active.begin());
      live_releases.erase(live_releases.find(flows[done].release));
      warm[done] = {};
      warm_atoms[done] = {};
    }
    // Departed history is dead weight for every future probe (batch
    // spans start at or after `now`, live spans at or after the
    // earliest live release): advance the low-water mark and let the
    // index fold it away. This pruning is what keeps probe cost flat
    // as the trace grows instead of scaling with every flow ever seen.
    load.advance_low_water(
        live_releases.empty() ? now : std::min(now, *live_releases.begin()));

    // Departures-only fast path. The completions changed the carried
    // problem by removal only: the surviving warm rows stay feasible
    // and close to optimal, so a full relaxation at the completion
    // point would be wasted. Instead the latest completion time gets a
    // single gap check — a one-iteration warm re-solve that certifies
    // the rows when they are still within tolerance and otherwise
    // sheds one step of mass onto the capacity the departures freed —
    // so this event's full re-solve starts from rows adapted to the
    // post-departure network.
    if (options.departures_fast_path && std::isfinite(depart) &&
        !active.empty()) {
      std::vector<Flow> survivors;
      std::vector<std::size_t> surviving;
      std::vector<SparseEdgeFlow> gap_rows;
      std::vector<AtomSet> gap_atoms;
      survivors.reserve(active.size());
      // The gap check is a re-solve like any other: with a finite
      // lookahead its survivors are clipped to [depart, depart + W] at
      // their original densities (no admission happens here, so the
      // window only shrinks the interval decomposition).
      const double gap_horizon =
          options.lookahead_window > 0.0
              ? depart + options.lookahead_window
              : std::numeric_limits<double>::infinity();
      for (const auto& [deadline, i] : active) {
        Flow res = flows[i];
        res.id = static_cast<FlowId>(survivors.size());
        res.release = depart;
        res.volume = flows[i].density() * (deadline - depart);
        if (res.deadline > gap_horizon) {
          res.volume = flows[i].density() * (gap_horizon - depart);
          res.deadline = gap_horizon;
        }
        survivors.push_back(res);
        surviving.push_back(i);
        gap_rows.push_back(warm[i]);
        gap_atoms.push_back(std::move(warm_atoms[i]));
      }
      RelaxationOptions gap_options = options.rounding.relaxation;
      gap_options.frank_wolfe.max_iterations = 1;
      gap_options.frank_wolfe.step_rule = options.warm_step_rule;
      FractionalRelaxation check = solve_relaxation(
          g, survivors, model, gap_options, &workspace, &gap_rows, &gap_atoms);
      ++out.departure_gap_checks;
      out.gap_check_iterations += check.total_fw_iterations;
      out.fw_stats += check.fw_stats;
      for (std::size_t r = 0; r < survivors.size(); ++r) {
        warm[surviving[r]] = std::move(check.final_flow[r]);
        warm_atoms[surviving[r]] = std::move(check.final_atoms[r]);
      }
    }

    // Residual problem: admitted flows still in flight (at their
    // original densities — the density schedule leaves the residual
    // density invariant), straight off the index in deadline order,
    // then the arriving batch.
    std::vector<Flow> residual;
    std::vector<std::size_t> orig;
    std::vector<const Path*> forced;
    residual.reserve(active.size() + (hi - lo));
    for (const auto& [deadline, i] : active) {
      Flow res = flows[i];
      res.id = static_cast<FlowId>(residual.size());
      res.release = now;
      res.volume = flows[i].density() * (deadline - now);
      residual.push_back(res);
      orig.push_back(i);
      forced.push_back(&out.schedule.flows[i].path);
    }
    const std::size_t first_new = residual.size();
    for (std::size_t k = lo; k < hi; ++k) {
      Flow res = flows[order[k]];
      if (!reachable.routable(res.src, res.dst)) {
        // No route at all: reject here rather than crash the routing
        // oracle inside the relaxation.
        ++out.num_rejected;
        continue;
      }
      res.id = static_cast<FlowId>(residual.size());
      residual.push_back(res);
      orig.push_back(order[k]);
      forced.push_back(nullptr);
    }
    if (residual.empty()) {  // nothing in flight, no routable arrival
      record_latency();
      lo = hi;
      continue;
    }

    // Warm-started incremental re-solve over the shifted horizon. With
    // warm mass carried (any admitted flow still in flight) the solve
    // steps with the warm rule — pairwise Frank-Wolfe sheds the rows'
    // mass that the arrivals made suboptimal in a handful of steps —
    // while an all-new event (the first one in particular) keeps the
    // configured rule, so the all-at-t=0 case stays bit-identical to
    // offline dcfsr.
    std::vector<SparseEdgeFlow> warm_rows(residual.size());
    std::vector<AtomSet> warm_atom_rows(residual.size());
    for (std::size_t r = 0; r < residual.size(); ++r) {
      warm_rows[r] = warm[orig[r]];
      warm_atom_rows[r] = std::move(warm_atoms[orig[r]]);
    }
    // Interval-windowed relaxation: flows whose deadlines lie past
    // now + W enter the *relaxation* clipped to the window at their
    // original densities — the rounding below still accepts/rejects
    // against the true spans, so the window affects solve cost, never
    // admission soundness. When no flow reaches past the horizon
    // (W = 0, or a window covering every residual span) the relaxation
    // sees the identical vector, keeping those cases bit-for-bit.
    const std::vector<Flow>* relax_flows = &residual;
    std::vector<Flow> clipped;
    if (options.lookahead_window > 0.0) {
      const double horizon = now + options.lookahead_window;
      bool any_clipped = false;
      for (const Flow& fl : residual) {
        if (fl.deadline > horizon && fl.release < horizon) {
          any_clipped = true;
          break;
        }
      }
      if (any_clipped) {
        clipped = residual;
        for (Flow& fl : clipped) {
          // An epoch-batched arrival releasing at or past the horizon
          // keeps its true span (clipping would invert it).
          if (fl.deadline > horizon && fl.release < horizon) {
            fl.volume = fl.density() * (horizon - fl.release);
            fl.deadline = horizon;
          }
        }
        relax_flows = &clipped;
      }
    }
    RelaxationOptions relax_options = options.rounding.relaxation;
    if (first_new > 0) {
      relax_options.frank_wolfe.step_rule = options.warm_step_rule;
    }
    FractionalRelaxation relax =
        solve_relaxation(g, *relax_flows, model, relax_options, &workspace,
                         &warm_rows, &warm_atom_rows);
    ++out.resolves;
    out.fw_iterations += relax.total_fw_iterations;
    out.fw_stats += relax.fw_stats;
    if (out.resolves == 1) out.first_lower_bound = relax.lower_bound_energy;
    for (std::size_t r = 0; r < residual.size(); ++r) {
      warm[orig[r]] = std::move(relax.final_flow[r]);
      warm_atoms[orig[r]] = std::move(relax.final_atoms[r]);
    }

    // After this event's admissions the index must hold every admitted
    // in-flight flow, and rejected arrivals must not keep warm state.
    auto admit_into_index = [&](std::size_t i) {
      active.emplace(flows[i].deadline, i);
      live_releases.insert(flows[i].release);
    };
    auto release_rejected = [&](std::size_t i) {
      warm[i] = {};
      warm_atoms[i] = {};
    };

    // Joint batch admission: randomized rounding with admitted flows
    // pinned to their circuits (exactly offline Algorithm 2 when no
    // flow is pinned, i.e. at the first event of an all-at-t=0 input).
    RandomScheduleResult draw = round_relaxation(g, residual, model, relax, rng,
                                                 options.rounding, &forced);
    out.rounding_attempts += draw.rounding_attempts;
    if (draw.capacity_feasible) {
      for (std::size_t r = first_new; r < residual.size(); ++r) {
        const Flow& fl = flows[orig[r]];
        commit(out, load, orig[r], std::move(draw.schedule.flows[r].path),
               {{fl.span(), fl.density()}});
        admit_into_index(orig[r]);
      }
      out.peak_in_flight = std::max(out.peak_in_flight,
                                    static_cast<std::int32_t>(active.size()));
      record_latency();
      lo = hi;
      continue;
    }

    // Joint admission failed within the attempt budget: fall back to
    // admitting the batch one flow at a time, each against the
    // committed load only — so one unroutable elephant cannot veto an
    // entire batch of mice. The default order is RCD-style
    // close-to-deadline first (ties: denser first, then id): urgent,
    // hard-to-place flows draw their paths while the committed load is
    // lightest, instead of whichever flows happened to get low ids.
    ++out.batch_fallbacks;
    std::vector<std::size_t> fallback_order;
    for (std::size_t r = first_new; r < residual.size(); ++r) {
      fallback_order.push_back(r);
    }
    if (options.fallback_order == FallbackAdmissionOrder::kDeadlineDensity) {
      std::sort(fallback_order.begin(), fallback_order.end(),
                [&](std::size_t a, std::size_t b) {
                  return rcd_before(flows[orig[a]], flows[orig[b]]);
                });
    }
    std::vector<double> weights;
    for (const std::size_t r : fallback_order) {
      const std::size_t i = orig[r];
      const Flow& fl = flows[i];
      bool placed = false;
      for (std::int32_t attempt = 0;
           attempt < options.rounding.max_rounding_attempts && !placed;
           ++attempt) {
        ++out.rounding_attempts;
        const Path& path = draw_path(relax.candidates[r], rng, weights);
        if (rate_fits(load, path, fl.span(), fl.density(), capacity)) {
          commit(out, load, i, path, {{fl.span(), fl.density()}});
          admit_into_index(i);
          placed = true;
        }
      }
      if (!placed) {
        ++out.num_rejected;
        release_rejected(i);
      }
    }
    out.peak_in_flight = std::max(out.peak_in_flight,
                                  static_cast<std::int32_t>(active.size()));
    record_latency();
    lo = hi;
  }
  out.peak_live_segments = load.peak_live_segments();
  out.load_segments_pruned = load.segments_pruned();
  return out;
}

OnlineResult oracle_dcfsr(const Graph& g, const std::vector<Flow>& flows,
                          const PowerModel& model, Rng& rng,
                          const OnlineOptions& options) {
  validate_flows(g, flows);
  OnlineResult out;
  out.schedule.flows.resize(flows.size());
  out.admitted.assign(flows.size(), false);
  if (flows.empty()) return out;
  out.num_events = 1;
  const double capacity = model.capacity();
  // One batch, nothing ever departs: the index is never pruned here —
  // the oracle only uses its cached probes (and audit shadow).
  EdgeLoadIndex load(g.num_edges(), options.audit_load_index);

  // Connectivity screen: unroutable flows are rejections, never fed to
  // the relaxation. The common all-routable case keeps the original
  // vector, so the joint-feasible trajectory below stays bit-identical
  // to offline dcfsr.
  ReachabilityCache reachable(g);
  std::vector<std::size_t> orig;
  orig.reserve(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (reachable.routable(flows[i].src, flows[i].dst)) {
      orig.push_back(i);
    } else {
      ++out.num_rejected;
    }
  }
  if (orig.empty()) return out;
  std::vector<Flow> sub;
  const std::vector<Flow>* trace = &flows;
  if (orig.size() != flows.size()) {
    sub.reserve(orig.size());
    for (const std::size_t i : orig) {
      Flow fl = flows[i];
      fl.id = static_cast<FlowId>(sub.size());
      sub.push_back(fl);
    }
    trace = &sub;
  }

  // One relaxation over the whole trace at its true spans — exactly the
  // offline Algorithm 2 relaxation (cold start, whatever step rule the
  // caller configured), so with matching options the joint-feasible
  // case reproduces offline dcfsr bit for bit on the shared rng stream.
  const FractionalRelaxation relax =
      solve_relaxation(g, *trace, model, options.rounding.relaxation);
  out.resolves = 1;
  out.fw_iterations = relax.total_fw_iterations;
  out.fw_stats = relax.fw_stats;
  out.first_lower_bound = relax.lower_bound_energy;

  RandomScheduleResult draw =
      round_relaxation(g, *trace, model, relax, rng, options.rounding);
  out.rounding_attempts += draw.rounding_attempts;
  if (draw.capacity_feasible) {
    for (std::size_t r = 0; r < trace->size(); ++r) {
      const Flow& fl = flows[orig[r]];
      commit(out, load, orig[r], std::move(draw.schedule.flows[r].path),
             {{fl.span(), fl.density()}});
    }
    out.peak_in_flight = peak_overlap(flows, out.admitted);
    out.peak_live_segments = load.peak_live_segments();
    return out;
  }

  // Contended hindsight: admit one flow at a time in the RCD urgency
  // order over the *whole* trace (the online loop only ever sees one
  // event batch at a time — the oracle's edge is exactly this global
  // ordering plus the trace-wide relaxation candidates).
  ++out.batch_fallbacks;
  std::vector<std::size_t> fallback_order(trace->size());
  std::iota(fallback_order.begin(), fallback_order.end(), std::size_t{0});
  std::sort(fallback_order.begin(), fallback_order.end(),
            [trace](std::size_t a, std::size_t b) {
              return rcd_before((*trace)[a], (*trace)[b]);
            });
  std::vector<double> weights;
  for (const std::size_t r : fallback_order) {
    const Flow& fl = flows[orig[r]];
    bool placed = false;
    for (std::int32_t attempt = 0;
         attempt < options.rounding.max_rounding_attempts && !placed;
         ++attempt) {
      ++out.rounding_attempts;
      const Path& path = draw_path(relax.candidates[r], rng, weights);
      if (rate_fits(load, path, fl.span(), fl.density(), capacity)) {
        commit(out, load, orig[r], path, {{fl.span(), fl.density()}});
        placed = true;
      }
    }
    if (!placed) ++out.num_rejected;
  }
  out.peak_in_flight = peak_overlap(flows, out.admitted);
  out.peak_live_segments = load.peak_live_segments();
  return out;
}

OnlineResult online_greedy(const Graph& g, const std::vector<Flow>& flows,
                           const PowerModel& model,
                           const OnlineOptions& options) {
  validate_flows(g, flows);
  OnlineResult out;
  out.schedule.flows.resize(flows.size());
  out.admitted.assign(flows.size(), false);
  if (flows.empty()) return out;

  const std::vector<std::size_t> order = arrival_order(flows);
  const double capacity = model.capacity();

  EdgeLoadIndex load(g.num_edges(), options.audit_load_index);
  std::vector<double> weights(static_cast<std::size_t>(g.num_edges()), 0.0);

  // Admitted flows in flight, deadline-ordered, with their releases in
  // a parallel multiset: completions pop at each arrival and the index
  // prunes to min(earliest live release, arrival time) — the same
  // pruning invariant as online_dcfsr's event loop. This is where the
  // index pays off most: the greedy weight loop probes *every* edge per
  // arrival, so the naive full-history marginal_energy scan made the
  // whole policy superlinear in trace length.
  std::multiset<std::pair<double, double>> active;  // (deadline, release)
  std::multiset<double> live_releases;

  double last_release = flows[order.front()].release - 1.0;
  for (const std::size_t i : order) {
    const Flow& fl = flows[i];
    const auto event_start = std::chrono::steady_clock::now();
    auto record_latency = [&] {
      out.decision_latency_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - event_start)
              .count());
    };
    if (fl.release != last_release) {
      ++out.num_events;
      last_release = fl.release;
    }
    while (!active.empty() && active.begin()->first <= fl.release) {
      live_releases.erase(live_releases.find(active.begin()->second));
      active.erase(active.begin());
    }
    load.advance_low_water(live_releases.empty()
                               ? fl.release
                               : std::min(fl.release, *live_releases.begin()));
    const double d = fl.density();

    // The greedy baseline's routing rule against the committed load,
    // each edge weight read from the span window of the index instead
    // of the edge's full history.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      weights[static_cast<std::size_t>(e)] =
          std::max(load.marginal_energy(e, fl.span(), d, model), 1e-12);
    }
    auto path = dijkstra_shortest_path(g, fl.src, fl.dst, weights);
    if (!path.has_value()) {
      // No route at all (disconnected endpoints): a rejection like any
      // other unplaceable flow — online inputs are not pre-screened for
      // connectivity, so this must not abort the run.
      ++out.num_rejected;
      record_latency();
      continue;
    }
    auto admit = [&] {
      active.emplace(fl.deadline, fl.release);
      live_releases.insert(fl.release);
    };

    if (rate_fits(load, *path, fl.span(), d, capacity)) {
      commit(out, load, i, std::move(*path), {{fl.span(), d}});
      admit();
      record_latency();
      continue;
    }

    // EDF fallback: earliest remaining capacity on the same path.
    std::vector<RateSegment> segments =
        edf_fill(load, *path, fl.span(), fl.volume, capacity);
    if (!segments.empty()) {
      ++out.edf_fallbacks;
      commit(out, load, i, std::move(*path), std::move(segments));
      admit();
    } else {
      ++out.num_rejected;
    }
    record_latency();
  }
  out.peak_live_segments = load.peak_live_segments();
  out.load_segments_pruned = load.segments_pruned();
  return out;
}

}  // namespace dcn
