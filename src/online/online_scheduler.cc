#include "online/online_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <utility>

#include "baselines/baselines.h"
#include "common/contracts.h"
#include "common/piecewise.h"
#include "graph/shortest_path.h"
#include "mcf/relaxation.h"

namespace dcn {

namespace {

/// Relative slack applied to every capacity comparison (mirrors the
/// rounding accept/reject step of Algorithm 2).
constexpr double kCapacitySlack = 1e-9;

/// Per-source reachability (the routing layer's bfs_distances), cached
/// per distinct source for the run. Online inputs are not pre-screened
/// for connectivity: every admission path must treat an unroutable
/// flow as a rejection, never feed it to the relaxation (whose routing
/// oracle asserts reachability). Connectivity is static for a run, so
/// each check after a source's first is O(1); the graph is directed,
/// so this is a true reachability sweep, not an undirected component
/// labeling.
class ReachabilityCache {
 public:
  explicit ReachabilityCache(const Graph& g) : g_(g) {}

  bool routable(NodeId src, NodeId dst) {
    auto [it, inserted] = cache_.try_emplace(src);
    if (inserted) it->second = bfs_distances(g_, src);
    return it->second[static_cast<std::size_t>(dst)] >= 0;
  }

 private:
  const Graph& g_;
  std::map<NodeId, std::vector<std::int32_t>> cache_;
};

/// RCD urgency order (Noormohammadpour et al.): closest deadline
/// first, then higher density, then id. Both per-flow admission
/// fallbacks — the online event loop's and the hindsight oracle's —
/// sort by exactly this comparator, which is what lets the oracle
/// claim "the online machinery with full knowledge".
bool rcd_before(const Flow& a, const Flow& b) {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.density() != b.density()) return a.density() > b.density();
  return a.id < b.id;
}

/// Peak number of admitted flows simultaneously in flight: the maximum
/// overlap of the admitted spans (half-open, so a flow ending exactly
/// when another starts does not overlap it).
std::int32_t peak_overlap(const std::vector<Flow>& flows,
                          const std::vector<bool>& admitted) {
  std::vector<std::pair<double, std::int32_t>> events;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (!admitted[i]) continue;
    events.emplace_back(flows[i].release, +1);
    events.emplace_back(flows[i].deadline, -1);
  }
  std::sort(events.begin(), events.end());
  std::int32_t current = 0, peak = 0;
  for (const auto& [time, delta] : events) {
    current += delta;
    peak = std::max(peak, current);
  }
  return peak;
}

/// Arrival order: indices sorted by (release, id).
std::vector<std::size_t> arrival_order(const std::vector<Flow>& flows) {
  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&flows](std::size_t a, std::size_t b) {
    if (flows[a].release != flows[b].release) {
      return flows[a].release < flows[b].release;
    }
    return flows[a].id < flows[b].id;
  });
  return order;
}

/// True when adding constant rate `rate` over `span` keeps every edge of
/// `path` within capacity against the committed `load`. The peak lookup
/// is the index's max_within — cached prefix values plus a block-max
/// overlay over the live (unpruned) region, so the probe cost is bounded
/// by the in-flight history even after thousands of commits.
bool rate_fits(const EdgeLoadIndex& load, const Path& path,
               const Interval& span, double rate, double capacity) {
  const double limit = capacity * (1.0 + kCapacitySlack);
  if (rate > limit) return false;
  for (const EdgeId e : path.edges) {
    if (load.max_within(e, span) + rate > limit) return false;
  }
  return true;
}

/// Records the committed schedule and admission of flow `i` without
/// touching the load index (the re-rate pass places the arrival's load
/// itself, mid-transaction).
void record_commit(OnlineResult& out, std::size_t i, Path path,
                   std::vector<RateSegment> segments) {
  FlowSchedule& fs = out.schedule.flows[i];
  fs.path = std::move(path);
  fs.segments = std::move(segments);
  out.admitted[i] = true;
  ++out.num_admitted;
}

/// Commits `segments` on `path` for flow `i`: records the flow schedule
/// and adds every segment to the per-edge load index.
void commit(OnlineResult& out, EdgeLoadIndex& load, std::size_t i, Path path,
            std::vector<RateSegment> segments) {
  record_commit(out, i, std::move(path), std::move(segments));
  const FlowSchedule& fs = out.schedule.flows[i];
  for (const RateSegment& seg : fs.segments) {
    for (const EdgeId e : fs.path.edges) {
      load.add(e, seg.interval, seg.rate);
    }
  }
}

/// Density-first fallback order (the DCoflow-style counterpart of RCD):
/// higher density first, then closer deadline, then id. Dense flows are
/// the hardest to place late; admitting them first wins on traces where
/// the RCD order burns capacity on urgent-but-thin flows.
bool density_before(const Flow& a, const Flow& b) {
  if (a.density() != b.density()) return a.density() > b.density();
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  return a.id < b.id;
}

/// Volume flow `fl` still has to move at time `t` under its committed
/// profile (segments before `t` have been transmitted; `t` inside a
/// segment counts the elapsed part). Exact for any committed profile,
/// re-rated or not.
double remaining_volume(const Flow& fl, const FlowSchedule& fs, double t) {
  double sent = 0.0;
  for (const RateSegment& seg : fs.segments) {
    const Interval past{seg.interval.lo, std::min(seg.interval.hi, t)};
    if (!past.empty()) sent += seg.rate * past.measure();
  }
  return std::max(0.0, fl.volume - sent);
}

/// The part of a committed profile at or after `t`, with a straddling
/// segment split at `t`. These are the segments the re-rate pass may
/// retract and replace; everything before `t` is history and immutable.
std::vector<RateSegment> future_segments(const FlowSchedule& fs, double t) {
  std::vector<RateSegment> future;
  for (const RateSegment& seg : fs.segments) {
    if (seg.interval.hi <= t) continue;
    future.push_back({{std::max(seg.interval.lo, t), seg.interval.hi}, seg.rate});
  }
  return future;
}

/// True when re-adding `segments` on `path` keeps every edge within
/// capacity against the committed `load` (the segments themselves are
/// not yet in the index).
bool segments_fit(const EdgeLoadIndex& load, const Path& path,
                  const std::vector<RateSegment>& segments, double capacity) {
  const double limit = capacity * (1.0 + kCapacitySlack);
  for (const RateSegment& seg : segments) {
    for (const EdgeId e : path.edges) {
      if (load.max_within(e, seg.interval) + seg.rate > limit) return false;
    }
  }
  return true;
}

/// The deadline-safe re-rate pass (OnlineOptions::allow_rerate). Tries
/// to make room for arrival `fl` (flow index `arrival`) at its density
/// rate on `path` by reshaping the future rate profiles of admitted
/// in-flight flows that share an edge with `path` — re-rate, never
/// re-route. The transaction:
///
///   1. Retract every candidate's future segments from the index. If
///      the arrival still does not fit, the displaced load was not the
///      obstacle: restore and fail.
///   2. Place the arrival at its density over its true span.
///   3. Re-admit the candidates in deadline (EDF) order. A candidate
///      whose old future still fits keeps it bitwise — it is not
///      re-rated, its warm rows stay valid. Otherwise it is repacked
///      within [max(now, release), deadline] on its committed path: at
///      its flat residual density when that fits (re-rating should not
///      spike rates — the power curve is convex), else into the
///      earliest remaining capacity (edf_fill).
///   4. The commit barrier: if any candidate cannot move its full
///      remaining volume by its deadline, every index mutation is
///      rolled back (bitwise: the retract/add pairs cancel exactly) and
///      the pass fails — no admitted deadline is ever broken.
///
/// On success the arrival's schedule + admission are recorded (its load
/// is already placed), reshaped candidates get their segments stitched
/// (immutable past + repacked future), their warm rows/atoms dropped
/// (the rows route the original density, which the reshaped profile no
/// longer has), and their `rerated` flags set — from then on their
/// residual demands are computed from the committed profile, not the
/// density invariant. Consumes no rng: given the same index state the
/// pass is deterministic.
bool try_rerate(OnlineResult& out, EdgeLoadIndex& load,
                const std::vector<Flow>& flows,
                const std::set<std::pair<double, std::size_t>>& active,
                double now, double capacity, std::size_t arrival,
                const Path& path, std::vector<char>& rerated,
                std::vector<SparseEdgeFlow>& warm,
                std::vector<AtomSet>& warm_atoms) {
  const Flow& fl = flows[arrival];
  ++out.rerate_attempts;

  std::vector<char> on_path(static_cast<std::size_t>(
                                *std::max_element(path.edges.begin(),
                                                  path.edges.end()) +
                                1),
                            0);
  for (const EdgeId e : path.edges) on_path[static_cast<std::size_t>(e)] = 1;
  auto shares_edge = [&](const Path& p) {
    for (const EdgeId e : p.edges) {
      const auto k = static_cast<std::size_t>(e);
      if (k < on_path.size() && on_path[k]) return true;
    }
    return false;
  };

  // Candidates: admitted in-flight flows sharing an edge with `path`
  // whose profiles still have a future to reshape, in deadline order
  // (`active` iterates (deadline, index)).
  struct Candidate {
    std::size_t i;
    std::vector<RateSegment> old_future;
    double remaining;
  };
  std::vector<Candidate> candidates;
  for (const auto& [deadline, i] : active) {
    const FlowSchedule& fs = out.schedule.flows[i];
    if (!shares_edge(fs.path)) continue;
    std::vector<RateSegment> future = future_segments(fs, now);
    if (future.empty()) continue;
    candidates.push_back(
        {i, std::move(future), remaining_volume(flows[i], fs, now)});
  }
  if (candidates.empty()) return false;

  // 1. Retract the candidates' futures.
  for (const Candidate& c : candidates) {
    for (const RateSegment& seg : c.old_future) {
      for (const EdgeId e : out.schedule.flows[c.i].path.edges) {
        load.retract(e, seg.interval, seg.rate);
      }
    }
  }
  auto restore_futures = [&] {
    for (const Candidate& c : candidates) {
      for (const RateSegment& seg : c.old_future) {
        for (const EdgeId e : out.schedule.flows[c.i].path.edges) {
          load.add(e, seg.interval, seg.rate);
        }
      }
    }
  };
  if (!rate_fits(load, path, fl.span(), fl.density(), capacity)) {
    restore_futures();
    return false;
  }

  // 2. Place the arrival.
  for (const EdgeId e : path.edges) load.add(e, fl.span(), fl.density());

  // 3. Re-admit the candidates, earliest deadline first. `kept[k]` set
  // means candidate k kept its old future bitwise (not re-rated);
  // otherwise repacked[k] holds its replacement future.
  std::vector<std::vector<RateSegment>> repacked(candidates.size());
  std::vector<char> kept(candidates.size(), 0);
  bool feasible = true;
  std::size_t readmitted = 0;
  for (; readmitted < candidates.size(); ++readmitted) {
    const Candidate& c = candidates[readmitted];
    const Flow& cf = flows[c.i];
    const Path& cpath = out.schedule.flows[c.i].path;
    const Interval window{std::max(now, cf.release), cf.deadline};
    if (c.remaining <= 1e-12 * std::max(1.0, cf.volume)) {
      // Nothing left to move (an earlier re-rating accelerated it to
      // completion): its future stays empty.
      continue;
    }
    if (segments_fit(load, cpath, c.old_future, capacity)) {
      kept[readmitted] = 1;
      for (const RateSegment& seg : c.old_future) {
        for (const EdgeId e : cpath.edges) load.add(e, seg.interval, seg.rate);
      }
      continue;
    }
    const double flat = c.remaining / window.measure();
    if (rate_fits(load, cpath, window, flat, capacity)) {
      repacked[readmitted] = {{window, flat}};
    } else {
      repacked[readmitted] =
          edf_fill(load, cpath, window, c.remaining, capacity);
      if (repacked[readmitted].empty()) {
        feasible = false;
        break;
      }
    }
    for (const RateSegment& seg : repacked[readmitted]) {
      for (const EdgeId e : cpath.edges) load.add(e, seg.interval, seg.rate);
    }
  }

  if (!feasible) {
    // 4. Commit barrier: roll back bitwise — retract what was re-added,
    // retract the arrival, restore the original futures.
    for (std::size_t k = 0; k < readmitted; ++k) {
      const Candidate& c = candidates[k];
      const Path& cpath = out.schedule.flows[c.i].path;
      const std::vector<RateSegment>& placed =
          kept[k] ? c.old_future : repacked[k];
      for (const RateSegment& seg : placed) {
        for (const EdgeId e : cpath.edges) {
          load.retract(e, seg.interval, seg.rate);
        }
      }
    }
    for (const EdgeId e : path.edges) load.retract(e, fl.span(), fl.density());
    restore_futures();
    return false;
  }

  // Success: record the arrival (its load is already placed) and stitch
  // the reshaped candidates' profiles — immutable past + new future.
  record_commit(out, arrival, path, {{fl.span(), fl.density()}});
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    const Candidate& c = candidates[k];
    if (kept[k]) continue;
    FlowSchedule& fs = out.schedule.flows[c.i];
    std::vector<RateSegment> stitched;
    for (const RateSegment& seg : fs.segments) {
      const Interval past{seg.interval.lo, std::min(seg.interval.hi, now)};
      if (!past.empty()) stitched.push_back({past, seg.rate});
    }
    stitched.insert(stitched.end(), repacked[k].begin(), repacked[k].end());
    fs.segments = std::move(stitched);
    if (!rerated[c.i]) ++out.rerated_flows;
    rerated[c.i] = 1;
    warm[c.i] = {};
    warm_atoms[c.i] = {};
  }
  ++out.rerate_commits;
  return true;
}

}  // namespace

/// Indexed EDF fill (see header): same elementary-piece packing as the
/// reference below, but the cut collection walks only the merged
/// segments overlapping `span` (for_each_segment_from stops at the
/// first run starting past span.hi) and the per-piece load probes are
/// O(log live) index lookups. Runs the index enumerates that the
/// reference's full segments() scan would also visit but that end at or
/// before span.lo — or start at or past span.hi — contribute no cuts
/// under the strict window filters, so the cut set matches the
/// reference exactly; in audit mode the whole fill is cross-checked
/// against the reference on the naive shadow.
std::vector<RateSegment> edf_fill(const EdgeLoadIndex& load, const Path& path,
                                  const Interval& span, double volume,
                                  double capacity) {
  std::vector<double> cuts{span.lo, span.hi};
  for (const EdgeId e : path.edges) {
    load.for_each_segment_from(e, span.lo, [&](const Interval& iv, double) {
      if (iv.lo >= span.hi) return false;
      if (iv.lo > span.lo && iv.lo < span.hi) cuts.push_back(iv.lo);
      if (iv.hi > span.lo && iv.hi < span.hi) cuts.push_back(iv.hi);
      return true;
    });
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<RateSegment> segments;
  double remaining = volume;
  for (std::size_t k = 0; k + 1 < cuts.size() && remaining > 0.0; ++k) {
    const Interval piece{cuts[k], cuts[k + 1]};
    double used = 0.0;
    for (const EdgeId e : path.edges) {
      used = std::max(used, load.value_at(e, piece.lo));
    }
    const double avail = capacity - used;
    if (avail <= kCapacitySlack * std::max(1.0, capacity)) continue;
    const double takeable = avail * piece.measure();
    if (takeable >= remaining) {
      segments.push_back({{piece.lo, piece.lo + remaining / avail}, avail});
      remaining = 0.0;
    } else {
      segments.push_back({piece, avail});
      remaining -= takeable;
    }
  }
  if (remaining > 1e-9 * std::max(1.0, volume)) segments.clear();
  if (const std::vector<StepFunction>* shadow = load.shadow()) {
    // Bitwise differential against the reference fill on the naive
    // never-pruned profiles: same cuts, same rates, same early exit.
    const std::vector<RateSegment> ref =
        edf_fill(*shadow, path, span, volume, capacity);
    DCN_ENSURES(segments.size() == ref.size());
    for (std::size_t k = 0; k < segments.size(); ++k) {
      DCN_ENSURES(segments[k].interval.lo == ref[k].interval.lo);
      DCN_ENSURES(segments[k].interval.hi == ref[k].interval.hi);
      DCN_ENSURES(segments[k].rate == ref[k].rate);
    }
  }
  return segments;
}

/// Reference fill: packs `volume` into the earliest remaining capacity
/// of `path` within `span`, scanning every committed segment of each
/// edge's full profile. The differential baseline of the indexed
/// overload above (audit mode and tests); not on any scheduler's path.
std::vector<RateSegment> edf_fill(const std::vector<StepFunction>& load,
                                  const Path& path, const Interval& span,
                                  double volume, double capacity) {
  // Elementary intervals: every committed-load breakpoint of the path's
  // edges inside the span, so the combined load is constant per piece.
  std::vector<double> cuts{span.lo, span.hi};
  for (const EdgeId e : path.edges) {
    for (const auto& [iv, value] : load[static_cast<std::size_t>(e)].segments()) {
      if (iv.lo > span.lo && iv.lo < span.hi) cuts.push_back(iv.lo);
      if (iv.hi > span.lo && iv.hi < span.hi) cuts.push_back(iv.hi);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<RateSegment> segments;
  double remaining = volume;
  for (std::size_t k = 0; k + 1 < cuts.size() && remaining > 0.0; ++k) {
    const Interval piece{cuts[k], cuts[k + 1]};
    double used = 0.0;
    for (const EdgeId e : path.edges) {
      used = std::max(used,
                      load[static_cast<std::size_t>(e)].value_at(piece.lo));
    }
    const double avail = capacity - used;
    if (avail <= kCapacitySlack * std::max(1.0, capacity)) continue;
    const double takeable = avail * piece.measure();
    if (takeable >= remaining) {
      segments.push_back({{piece.lo, piece.lo + remaining / avail}, avail});
      remaining = 0.0;
    } else {
      segments.push_back({piece, avail});
      remaining -= takeable;
    }
  }
  if (remaining > 1e-9 * std::max(1.0, volume)) return {};
  return segments;
}

std::pair<std::vector<Flow>, Schedule> admitted_subset(
    const std::vector<Flow>& flows, const Schedule& schedule,
    const std::vector<bool>& admitted) {
  DCN_EXPECTS(schedule.flows.size() == flows.size());
  DCN_EXPECTS(admitted.size() == flows.size());
  std::vector<Flow> sub_flows;
  Schedule sub_schedule;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (!admitted[i]) continue;
    Flow fl = flows[i];
    fl.id = static_cast<FlowId>(sub_flows.size());
    sub_flows.push_back(fl);
    sub_schedule.flows.push_back(schedule.flows[i]);
  }
  return {std::move(sub_flows), std::move(sub_schedule)};
}

OnlineResult online_dcfsr(const Graph& g, const std::vector<Flow>& flows,
                          const PowerModel& model, Rng& rng,
                          const OnlineOptions& options) {
  validate_flows(g, flows);
  OnlineResult out;
  out.schedule.flows.resize(flows.size());
  out.admitted.assign(flows.size(), false);
  if (flows.empty()) return out;

  const std::vector<std::size_t> order = arrival_order(flows);
  const double capacity = model.capacity();

  // Warm-start rows and pairwise path atoms by original flow id,
  // threaded across re-solves, and one workspace for every re-solve of
  // the run: the PR 2 fast path plus the PR 5 atom carry-over. Both are
  // released the moment a flow departs or is rejected, so the carried
  // state stays proportional to the flows actually in flight.
  std::vector<SparseEdgeFlow> warm(flows.size());
  std::vector<AtomSet> warm_atoms(flows.size());
  RelaxationWorkspace workspace;
  // Flows whose committed profile was reshaped by a re-rate pass
  // (allow_rerate only; sticky). The density invariant — residual
  // density equals original density — no longer holds for them: their
  // residual demands are computed from the committed profile, and they
  // re-enter each relaxation cold (warm rows route the original
  // density). With allow_rerate off no flag is ever set and every
  // expression below reduces to the plain event loop bit for bit.
  std::vector<char> rerated(flows.size(), 0);
  // Residual volume of in-flight flow i at time t: the density
  // invariant for untouched flows (bit-identical to the plain loop),
  // the committed profile's actual remainder once re-rated.
  auto residual_volume = [&](std::size_t i, double t) {
    return rerated[i] ? remaining_volume(flows[i], out.schedule.flows[i], t)
                      : flows[i].density() * (flows[i].deadline - t);
  };

  // Committed per-edge load (admitted density segments) for the
  // per-flow admission fallback: the incremental index, pruned to the
  // run's low-water mark at every event below.
  EdgeLoadIndex load(g.num_edges(), options.audit_load_index);
  ReachabilityCache reachable(g);

  // The active-flow index: admitted, still-in-flight flows keyed by
  // (deadline, flow index). Completions leave from the front in
  // O(log n) each; the residual problem reads the set in deadline order
  // in O(active) — no per-event scan over the whole trace.
  std::set<std::pair<double, std::size_t>> active;
  // Release times of the flows in `active`, kept as a multiset so the
  // low-water mark — min(earliest live release, event time) — updates
  // in O(log n) per admission/completion.
  std::multiset<double> live_releases;

  for (std::size_t lo = 0; lo < order.size();) {
    // The event's decision point is the batch's first release; with
    // epoch > 0 every arrival within `epoch` of it joins the batch.
    // epoch = 0 reduces to equal-release grouping exactly: releases
    // ascend, so `<= now + 0` is `== now`.
    const double now = flows[order[lo]].release;
    std::size_t hi = lo;
    while (hi < order.size() &&
           flows[order[hi]].release <= now + options.epoch) {
      ++hi;
    }
    ++out.num_events;
    const auto event_start = std::chrono::steady_clock::now();
    // Every arrival in the batch is charged the event's full wall
    // clock — the decision latency a caller of admission would see.
    auto record_latency = [&] {
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - event_start)
                            .count();
      for (std::size_t k = lo; k < hi; ++k) {
        out.decision_latency_ms.push_back(ms);
      }
    };

    // Completions since the previous event: pop the index prefix with
    // deadline <= now and release the departed flows' warm state. The
    // index held exactly the flows in flight after the previous event,
    // so the popped deadlines are exactly the completions strictly
    // inside (previous event, now]; the latest one seeds the
    // departures-only fast path below.
    double depart = -std::numeric_limits<double>::infinity();
    while (!active.empty() && active.begin()->first <= now) {
      const std::size_t done = active.begin()->second;
      depart = active.begin()->first;
      active.erase(active.begin());
      live_releases.erase(live_releases.find(flows[done].release));
      warm[done] = {};
      warm_atoms[done] = {};
    }
    // Departed history is dead weight for every future probe (batch
    // spans start at or after `now`, live spans at or after the
    // earliest live release): advance the low-water mark and let the
    // index fold it away. This pruning is what keeps probe cost flat
    // as the trace grows instead of scaling with every flow ever seen.
    load.advance_low_water(
        live_releases.empty() ? now : std::min(now, *live_releases.begin()));

    // Warm-state hygiene (audit mode): at every event exit, only
    // admitted in-flight flows may hold warm rows or path atoms — a
    // rejected or departed flow keeping either would leak carried
    // state and corrupt a later re-solve (the rows route a density the
    // residual problem no longer contains).
    auto audit_warm_state = [&] {
      if (!options.audit_load_index) return;
      std::vector<char> in_flight(flows.size(), 0);
      for (const auto& [deadline, i] : active) {
        (void)deadline;
        in_flight[i] = 1;
      }
      for (std::size_t i = 0; i < flows.size(); ++i) {
        if (in_flight[i]) continue;
        DCN_ENSURES(warm[i].empty());
        DCN_ENSURES(warm_atoms[i].empty());
      }
    };

    // Departures-only fast path. The completions changed the carried
    // problem by removal only: the surviving warm rows stay feasible
    // and close to optimal, so a full relaxation at the completion
    // point would be wasted. Instead the latest completion time gets a
    // single gap check — a one-iteration warm re-solve that certifies
    // the rows when they are still within tolerance and otherwise
    // sheds one step of mass onto the capacity the departures freed —
    // so this event's full re-solve starts from rows adapted to the
    // post-departure network.
    if (options.departures_fast_path && std::isfinite(depart) &&
        !active.empty()) {
      std::vector<Flow> survivors;
      std::vector<std::size_t> surviving;
      std::vector<SparseEdgeFlow> gap_rows;
      std::vector<AtomSet> gap_atoms;
      survivors.reserve(active.size());
      // The gap check is a re-solve like any other: with a finite
      // lookahead its survivors are clipped to [depart, depart + W] at
      // their original densities (no admission happens here, so the
      // window only shrinks the interval decomposition).
      const double gap_horizon =
          options.lookahead_window > 0.0
              ? depart + options.lookahead_window
              : std::numeric_limits<double>::infinity();
      for (const auto& [deadline, i] : active) {
        Flow res = flows[i];
        res.volume = residual_volume(i, depart);
        if (rerated[i] &&
            res.volume <= 1e-12 * std::max(1.0, flows[i].volume)) {
          // A re-rated flow accelerated to completion before its
          // deadline: nothing left to optimize for it.
          continue;
        }
        res.id = static_cast<FlowId>(survivors.size());
        res.release = depart;
        if (res.deadline > gap_horizon) {
          // The untouched branch keeps the plain loop's expression bit
          // for bit; a re-rated profile is not flat, so its clipped
          // volume is the window's share of the remainder.
          res.volume = rerated[i]
                           ? res.volume *
                                 ((gap_horizon - depart) / (deadline - depart))
                           : flows[i].density() * (gap_horizon - depart);
          res.deadline = gap_horizon;
        }
        survivors.push_back(res);
        surviving.push_back(i);
        gap_rows.push_back(warm[i]);
        gap_atoms.push_back(std::move(warm_atoms[i]));
      }
      RelaxationOptions gap_options = options.rounding.relaxation;
      gap_options.frank_wolfe.max_iterations = 1;
      gap_options.frank_wolfe.step_rule = options.warm_step_rule;
      FractionalRelaxation check = solve_relaxation(
          g, survivors, model, gap_options, &workspace, &gap_rows, &gap_atoms);
      ++out.departure_gap_checks;
      out.gap_check_iterations += check.total_fw_iterations;
      out.fw_stats += check.fw_stats;
      for (std::size_t r = 0; r < survivors.size(); ++r) {
        if (rerated[surviving[r]]) continue;  // stays cold (see `rerated`)
        warm[surviving[r]] = std::move(check.final_flow[r]);
        warm_atoms[surviving[r]] = std::move(check.final_atoms[r]);
      }
    }

    // Residual problem: admitted flows still in flight (at their
    // original densities — the density schedule leaves the residual
    // density invariant), straight off the index in deadline order,
    // then the arriving batch.
    std::vector<Flow> residual;
    std::vector<std::size_t> orig;
    std::vector<const Path*> forced;
    residual.reserve(active.size() + (hi - lo));
    for (const auto& [deadline, i] : active) {
      (void)deadline;
      Flow res = flows[i];
      res.volume = residual_volume(i, now);
      if (rerated[i] && res.volume <= 1e-12 * std::max(1.0, flows[i].volume)) {
        continue;  // accelerated to completion; nothing left to carry
      }
      res.id = static_cast<FlowId>(residual.size());
      res.release = now;
      residual.push_back(res);
      orig.push_back(i);
      forced.push_back(&out.schedule.flows[i].path);
    }
    const std::size_t first_new = residual.size();
    for (std::size_t k = lo; k < hi; ++k) {
      Flow res = flows[order[k]];
      if (!reachable.routable(res.src, res.dst)) {
        // No route at all: reject here rather than crash the routing
        // oracle inside the relaxation.
        ++out.num_rejected;
        continue;
      }
      res.id = static_cast<FlowId>(residual.size());
      residual.push_back(res);
      orig.push_back(order[k]);
      forced.push_back(nullptr);
    }
    if (residual.empty()) {  // nothing in flight, no routable arrival
      audit_warm_state();
      record_latency();
      lo = hi;
      continue;
    }

    // Warm-started incremental re-solve over the shifted horizon. With
    // warm mass carried (any admitted flow still in flight) the solve
    // steps with the warm rule — pairwise Frank-Wolfe sheds the rows'
    // mass that the arrivals made suboptimal in a handful of steps —
    // while an all-new event (the first one in particular) keeps the
    // configured rule, so the all-at-t=0 case stays bit-identical to
    // offline dcfsr.
    std::vector<SparseEdgeFlow> warm_rows(residual.size());
    std::vector<AtomSet> warm_atom_rows(residual.size());
    for (std::size_t r = 0; r < residual.size(); ++r) {
      warm_rows[r] = warm[orig[r]];
      warm_atom_rows[r] = std::move(warm_atoms[orig[r]]);
    }
    // Interval-windowed relaxation: flows whose deadlines lie past
    // now + W enter the *relaxation* clipped to the window at their
    // original densities — the rounding below still accepts/rejects
    // against the true spans, so the window affects solve cost, never
    // admission soundness. When no flow reaches past the horizon
    // (W = 0, or a window covering every residual span) the relaxation
    // sees the identical vector, keeping those cases bit-for-bit.
    const std::vector<Flow>* relax_flows = &residual;
    std::vector<Flow> clipped;
    if (options.lookahead_window > 0.0) {
      const double horizon = now + options.lookahead_window;
      bool any_clipped = false;
      for (const Flow& fl : residual) {
        if (fl.deadline > horizon && fl.release < horizon) {
          any_clipped = true;
          break;
        }
      }
      if (any_clipped) {
        clipped = residual;
        for (Flow& fl : clipped) {
          // An epoch-batched arrival releasing at or past the horizon
          // keeps its true span (clipping would invert it).
          if (fl.deadline > horizon && fl.release < horizon) {
            fl.volume = fl.density() * (horizon - fl.release);
            fl.deadline = horizon;
          }
        }
        relax_flows = &clipped;
      }
    }
    RelaxationOptions relax_options = options.rounding.relaxation;
    if (first_new > 0) {
      relax_options.frank_wolfe.step_rule = options.warm_step_rule;
    }
    FractionalRelaxation relax =
        solve_relaxation(g, *relax_flows, model, relax_options, &workspace,
                         &warm_rows, &warm_atom_rows);
    ++out.resolves;
    out.fw_iterations += relax.total_fw_iterations;
    out.fw_stats += relax.fw_stats;
    if (out.resolves == 1) out.first_lower_bound = relax.lower_bound_energy;
    for (std::size_t r = 0; r < residual.size(); ++r) {
      if (rerated[orig[r]]) {
        // A re-rated flow's residual density drifts between events
        // (its committed profile is not flat), so rows routing this
        // event's density are stale at the next one: re-enter cold.
        warm[orig[r]] = {};
        warm_atoms[orig[r]] = {};
        continue;
      }
      warm[orig[r]] = std::move(relax.final_flow[r]);
      warm_atoms[orig[r]] = std::move(relax.final_atoms[r]);
    }

    // After this event's admissions the index must hold every admitted
    // in-flight flow, and rejected arrivals must not keep warm state.
    auto admit_into_index = [&](std::size_t i) {
      active.emplace(flows[i].deadline, i);
      live_releases.insert(flows[i].release);
    };
    auto release_rejected = [&](std::size_t i) {
      warm[i] = {};
      warm_atoms[i] = {};
    };

    // Places arrival `r` (residual index) against the committed load:
    // the per-flow rounding attempts of the admission fallback, then —
    // with allow_rerate — deterministic re-rate attempts over the
    // highest-weight candidate paths. Shared by the fallback loop and
    // the re-rate mode's joint-path verification below; with
    // allow_rerate off this is exactly the historical fallback body
    // (same rng consumption, same counters).
    std::vector<double> weights;
    auto place_arrival = [&](std::size_t r) -> bool {
      const std::size_t i = orig[r];
      const Flow& fl = flows[i];
      for (std::int32_t attempt = 0;
           attempt < options.rounding.max_rounding_attempts; ++attempt) {
        ++out.rounding_attempts;
        const Path& path = draw_path(relax.candidates[r], rng, weights);
        if (rate_fits(load, path, fl.span(), fl.density(), capacity)) {
          commit(out, load, i, path, {{fl.span(), fl.density()}});
          admit_into_index(i);
          return true;
        }
      }
      if (!options.allow_rerate) return false;
      // Re-rate attempts: the flow does not fit against the committed
      // load on any drawn path — try reshaping the in-flight profiles
      // in its way, over the top-weight candidate paths (deterministic:
      // ranked by rounding weight, no rng, at most three distinct).
      std::vector<const WeightedPath*> ranked;
      for (const WeightedPath& wp : relax.candidates[r].paths) {
        ranked.push_back(&wp);
      }
      std::stable_sort(ranked.begin(), ranked.end(),
                       [](const WeightedPath* a, const WeightedPath* b) {
                         return a->weight > b->weight;
                       });
      std::size_t tried = 0;
      for (std::size_t k = 0; k < ranked.size() && tried < 3; ++k) {
        bool duplicate = false;
        for (std::size_t j = 0; j < k && !duplicate; ++j) {
          duplicate = ranked[j]->path.edges == ranked[k]->path.edges;
        }
        if (duplicate) continue;
        ++tried;
        if (try_rerate(out, load, flows, active, now, capacity, i,
                       ranked[k]->path, rerated, warm, warm_atoms)) {
          admit_into_index(i);
          return true;
        }
      }
      return false;
    };

    // Joint batch admission: randomized rounding with admitted flows
    // pinned to their circuits (exactly offline Algorithm 2 when no
    // flow is pinned, i.e. at the first event of an all-at-t=0 input).
    RandomScheduleResult draw = round_relaxation(g, residual, model, relax, rng,
                                                 options.rounding, &forced);
    out.rounding_attempts += draw.rounding_attempts;
    if (draw.capacity_feasible) {
      if (!options.allow_rerate) {
        for (std::size_t r = first_new; r < residual.size(); ++r) {
          const Flow& fl = flows[orig[r]];
          commit(out, load, orig[r], std::move(draw.schedule.flows[r].path),
                 {{fl.span(), fl.density()}});
          admit_into_index(orig[r]);
        }
      } else {
        // Once any flow has been re-rated the joint rounding's capacity
        // check is no longer sound for new arrivals — the residual
        // timeline it checks (flat residual densities) understates a
        // reshaped profile's committed acceleration. Verify each drawn
        // path against the index before committing; while nothing has
        // been re-rated the check never fails (the sequential probes
        // see a subset of the joint timeline under the same slack), so
        // admissions match the plain loop exactly.
        std::vector<std::size_t> leftover;
        for (std::size_t r = first_new; r < residual.size(); ++r) {
          const Flow& fl = flows[orig[r]];
          const Path& path = draw.schedule.flows[r].path;
          if (rate_fits(load, path, fl.span(), fl.density(), capacity)) {
            commit(out, load, orig[r], std::move(draw.schedule.flows[r].path),
                   {{fl.span(), fl.density()}});
            admit_into_index(orig[r]);
          } else {
            leftover.push_back(r);
          }
        }
        for (const std::size_t r : leftover) {
          if (!place_arrival(r)) {
            ++out.num_rejected;
            release_rejected(orig[r]);
          }
        }
      }
      out.peak_in_flight = std::max(out.peak_in_flight,
                                    static_cast<std::int32_t>(active.size()));
      audit_warm_state();
      record_latency();
      lo = hi;
      continue;
    }

    // Joint admission failed within the attempt budget: fall back to
    // admitting the batch one flow at a time, each against the
    // committed load only — so one unroutable elephant cannot veto an
    // entire batch of mice. The default order is RCD-style
    // close-to-deadline first (ties: denser first, then id): urgent,
    // hard-to-place flows draw their paths while the committed load is
    // lightest, instead of whichever flows happened to get low ids.
    ++out.batch_fallbacks;
    std::vector<std::size_t> fallback_order;
    for (std::size_t r = first_new; r < residual.size(); ++r) {
      fallback_order.push_back(r);
    }
    if (options.fallback_order == FallbackAdmissionOrder::kDeadlineDensity) {
      std::sort(fallback_order.begin(), fallback_order.end(),
                [&](std::size_t a, std::size_t b) {
                  return rcd_before(flows[orig[a]], flows[orig[b]]);
                });
    }
    for (const std::size_t r : fallback_order) {
      if (!place_arrival(r)) {
        ++out.num_rejected;
        release_rejected(orig[r]);
      }
    }
    out.peak_in_flight = std::max(out.peak_in_flight,
                                  static_cast<std::int32_t>(active.size()));
    audit_warm_state();
    record_latency();
    lo = hi;
  }
  out.peak_live_segments = load.peak_live_segments();
  out.load_segments_pruned = load.segments_pruned();
  return out;
}

OnlineResult oracle_dcfsr(const Graph& g, const std::vector<Flow>& flows,
                          const PowerModel& model, Rng& rng,
                          const OnlineOptions& options) {
  validate_flows(g, flows);
  OnlineResult out;
  out.schedule.flows.resize(flows.size());
  out.admitted.assign(flows.size(), false);
  if (flows.empty()) return out;
  out.num_events = 1;
  const double capacity = model.capacity();
  // One batch, nothing ever departs: the index is never pruned here —
  // the oracle only uses its cached probes (and audit shadow).
  EdgeLoadIndex load(g.num_edges(), options.audit_load_index);

  // Connectivity screen: unroutable flows are rejections, never fed to
  // the relaxation. The common all-routable case keeps the original
  // vector, so the joint-feasible trajectory below stays bit-identical
  // to offline dcfsr.
  ReachabilityCache reachable(g);
  std::vector<std::size_t> orig;
  orig.reserve(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (reachable.routable(flows[i].src, flows[i].dst)) {
      orig.push_back(i);
    } else {
      ++out.num_rejected;
    }
  }
  if (orig.empty()) return out;
  std::vector<Flow> sub;
  const std::vector<Flow>* trace = &flows;
  if (orig.size() != flows.size()) {
    sub.reserve(orig.size());
    for (const std::size_t i : orig) {
      Flow fl = flows[i];
      fl.id = static_cast<FlowId>(sub.size());
      sub.push_back(fl);
    }
    trace = &sub;
  }

  // One relaxation over the whole trace at its true spans — exactly the
  // offline Algorithm 2 relaxation (cold start, whatever step rule the
  // caller configured), so with matching options the joint-feasible
  // case reproduces offline dcfsr bit for bit on the shared rng stream.
  const FractionalRelaxation relax =
      solve_relaxation(g, *trace, model, options.rounding.relaxation);
  out.resolves = 1;
  out.fw_iterations = relax.total_fw_iterations;
  out.fw_stats = relax.fw_stats;
  out.first_lower_bound = relax.lower_bound_energy;

  RandomScheduleResult draw =
      round_relaxation(g, *trace, model, relax, rng, options.rounding);
  out.rounding_attempts += draw.rounding_attempts;
  if (draw.capacity_feasible) {
    for (std::size_t r = 0; r < trace->size(); ++r) {
      const Flow& fl = flows[orig[r]];
      commit(out, load, orig[r], std::move(draw.schedule.flows[r].path),
             {{fl.span(), fl.density()}});
    }
    out.peak_in_flight = peak_overlap(flows, out.admitted);
    out.peak_live_segments = load.peak_live_segments();
    return out;
  }

  // Contended hindsight: admit one flow at a time over the *whole*
  // trace (the online loop only ever sees one event batch at a time —
  // the oracle's edge is this global ordering plus the trace-wide
  // relaxation candidates). A single fixed order is not a bound: under
  // heavy contention the RCD urgency order can be beaten by the online
  // policies it is supposed to upper-bound (cr_adm < 1). So the
  // fallback runs twice — RCD and density-first — on copies of the
  // same rng stream (Rng is a value type) with their own scratch load
  // indexes, and the better admission set wins; ties keep RCD, which
  // preserves the historical schedules whenever the orders draw equal.
  ++out.batch_fallbacks;
  struct OracleAttempt {
    std::vector<std::size_t> placed;  // residual indices, placement order
    std::vector<Path> paths;          // parallel to `placed`
    std::int32_t rounding_attempts = 0;
  };
  auto run_fallback = [&](auto order_before, Rng stream) {
    std::vector<std::size_t> fallback_order(trace->size());
    std::iota(fallback_order.begin(), fallback_order.end(), std::size_t{0});
    std::sort(fallback_order.begin(), fallback_order.end(),
              [&](std::size_t a, std::size_t b) {
                return order_before((*trace)[a], (*trace)[b]);
              });
    // Scratch index (no audit: the winner is re-committed through the
    // audited outer index below, which cross-checks the same probes).
    EdgeLoadIndex scratch(g.num_edges(), false);
    OracleAttempt attempt_result;
    std::vector<double> weights;
    for (const std::size_t r : fallback_order) {
      const Flow& fl = flows[orig[r]];
      for (std::int32_t attempt = 0;
           attempt < options.rounding.max_rounding_attempts; ++attempt) {
        ++attempt_result.rounding_attempts;
        const Path& path = draw_path(relax.candidates[r], stream, weights);
        if (rate_fits(scratch, path, fl.span(), fl.density(), capacity)) {
          for (const EdgeId e : path.edges) {
            scratch.add(e, fl.span(), fl.density());
          }
          attempt_result.placed.push_back(r);
          attempt_result.paths.push_back(path);
          break;
        }
      }
    }
    return attempt_result;
  };
  const OracleAttempt rcd = run_fallback(rcd_before, rng);
  const OracleAttempt dense = run_fallback(density_before, rng);
  out.oracle_rcd_admitted = static_cast<std::int32_t>(rcd.placed.size());
  out.oracle_density_admitted = static_cast<std::int32_t>(dense.placed.size());
  out.rounding_attempts += rcd.rounding_attempts + dense.rounding_attempts;
  const OracleAttempt& winner =
      dense.placed.size() > rcd.placed.size() ? dense : rcd;
  for (std::size_t k = 0; k < winner.placed.size(); ++k) {
    const std::size_t r = winner.placed[k];
    const Flow& fl = flows[orig[r]];
    commit(out, load, orig[r], winner.paths[k], {{fl.span(), fl.density()}});
  }
  out.num_rejected +=
      static_cast<std::int32_t>(trace->size() - winner.placed.size());
  out.peak_in_flight = peak_overlap(flows, out.admitted);
  out.peak_live_segments = load.peak_live_segments();
  return out;
}

OnlineResult online_greedy(const Graph& g, const std::vector<Flow>& flows,
                           const PowerModel& model,
                           const OnlineOptions& options) {
  validate_flows(g, flows);
  OnlineResult out;
  out.schedule.flows.resize(flows.size());
  out.admitted.assign(flows.size(), false);
  if (flows.empty()) return out;

  const std::vector<std::size_t> order = arrival_order(flows);
  const double capacity = model.capacity();

  EdgeLoadIndex load(g.num_edges(), options.audit_load_index);
  std::vector<double> weights(static_cast<std::size_t>(g.num_edges()), 0.0);

  // Admitted flows in flight, deadline-ordered, with their releases in
  // a parallel multiset: completions pop at each arrival and the index
  // prunes to min(earliest live release, arrival time) — the same
  // pruning invariant as online_dcfsr's event loop. This is where the
  // index pays off most: the greedy weight loop probes *every* edge per
  // arrival, so the naive full-history marginal_energy scan made the
  // whole policy superlinear in trace length.
  std::multiset<std::pair<double, double>> active;  // (deadline, release)
  std::multiset<double> live_releases;

  double last_release = flows[order.front()].release - 1.0;
  for (const std::size_t i : order) {
    const Flow& fl = flows[i];
    const auto event_start = std::chrono::steady_clock::now();
    auto record_latency = [&] {
      out.decision_latency_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - event_start)
              .count());
    };
    if (fl.release != last_release) {
      ++out.num_events;
      last_release = fl.release;
    }
    while (!active.empty() && active.begin()->first <= fl.release) {
      live_releases.erase(live_releases.find(active.begin()->second));
      active.erase(active.begin());
    }
    load.advance_low_water(live_releases.empty()
                               ? fl.release
                               : std::min(fl.release, *live_releases.begin()));
    const double d = fl.density();

    // The greedy baseline's routing rule against the committed load,
    // each edge weight read from the span window of the index instead
    // of the edge's full history.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      weights[static_cast<std::size_t>(e)] =
          std::max(load.marginal_energy(e, fl.span(), d, model), 1e-12);
    }
    auto path = dijkstra_shortest_path(g, fl.src, fl.dst, weights);
    if (!path.has_value()) {
      // No route at all (disconnected endpoints): a rejection like any
      // other unplaceable flow — online inputs are not pre-screened for
      // connectivity, so this must not abort the run.
      ++out.num_rejected;
      record_latency();
      continue;
    }
    auto admit = [&] {
      active.emplace(fl.deadline, fl.release);
      live_releases.insert(fl.release);
    };

    if (rate_fits(load, *path, fl.span(), d, capacity)) {
      commit(out, load, i, std::move(*path), {{fl.span(), d}});
      admit();
      record_latency();
      continue;
    }

    // EDF fallback: earliest remaining capacity on the same path.
    std::vector<RateSegment> segments =
        edf_fill(load, *path, fl.span(), fl.volume, capacity);
    if (!segments.empty()) {
      ++out.edf_fallbacks;
      commit(out, load, i, std::move(*path), std::move(segments));
      admit();
    } else {
      ++out.num_rejected;
    }
    record_latency();
  }
  out.peak_live_segments = load.peak_live_segments();
  out.load_segments_pruned = load.segments_pruned();
  return out;
}

}  // namespace dcn
