#include "online/online_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "baselines/baselines.h"
#include "common/contracts.h"
#include "common/piecewise.h"
#include "graph/shortest_path.h"
#include "mcf/relaxation.h"

namespace dcn {

namespace {

/// Relative slack applied to every capacity comparison (mirrors the
/// rounding accept/reject step of Algorithm 2).
constexpr double kCapacitySlack = 1e-9;

/// Arrival order: indices sorted by (release, id).
std::vector<std::size_t> arrival_order(const std::vector<Flow>& flows) {
  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&flows](std::size_t a, std::size_t b) {
    if (flows[a].release != flows[b].release) {
      return flows[a].release < flows[b].release;
    }
    return flows[a].id < flows[b].id;
  });
  return order;
}

/// Maximum committed load anywhere inside `span` (0 when the link is
/// idle throughout).
double max_load_within(const StepFunction& load, const Interval& span) {
  double peak = 0.0;
  for (const auto& [iv, value] : load.segments()) {
    if (iv.overlaps(span)) peak = std::max(peak, value);
  }
  return peak;
}

/// True when adding constant rate `rate` over `span` keeps every edge of
/// `path` within capacity against the committed `load`.
bool rate_fits(const std::vector<StepFunction>& load, const Path& path,
               const Interval& span, double rate, double capacity) {
  const double limit = capacity * (1.0 + kCapacitySlack);
  if (rate > limit) return false;
  for (const EdgeId e : path.edges) {
    if (max_load_within(load[static_cast<std::size_t>(e)], span) + rate > limit) {
      return false;
    }
  }
  return true;
}

/// Commits `segments` on `path` for flow `i`: records the flow schedule
/// and adds every segment to the per-edge load profiles.
void commit(OnlineResult& out, std::vector<StepFunction>& load, std::size_t i,
            Path path, std::vector<RateSegment> segments) {
  FlowSchedule& fs = out.schedule.flows[i];
  fs.path = std::move(path);
  fs.segments = std::move(segments);
  for (const RateSegment& seg : fs.segments) {
    for (const EdgeId e : fs.path.edges) {
      load[static_cast<std::size_t>(e)].add(seg.interval, seg.rate);
    }
  }
  out.admitted[i] = true;
  ++out.num_admitted;
}

/// EDF-style fallback fill: packs `volume` into the earliest remaining
/// capacity of `path` within `span`. Returns the segments on success,
/// an empty vector when even the full remaining capacity cannot finish
/// the flow by its deadline.
std::vector<RateSegment> edf_fill(const std::vector<StepFunction>& load,
                                  const Path& path, const Interval& span,
                                  double volume, double capacity) {
  // Elementary intervals: every committed-load breakpoint of the path's
  // edges inside the span, so the combined load is constant per piece.
  std::vector<double> cuts{span.lo, span.hi};
  for (const EdgeId e : path.edges) {
    for (const auto& [iv, value] : load[static_cast<std::size_t>(e)].segments()) {
      if (iv.lo > span.lo && iv.lo < span.hi) cuts.push_back(iv.lo);
      if (iv.hi > span.lo && iv.hi < span.hi) cuts.push_back(iv.hi);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<RateSegment> segments;
  double remaining = volume;
  for (std::size_t k = 0; k + 1 < cuts.size() && remaining > 0.0; ++k) {
    const Interval piece{cuts[k], cuts[k + 1]};
    double used = 0.0;
    for (const EdgeId e : path.edges) {
      used = std::max(used,
                      load[static_cast<std::size_t>(e)].value_at(piece.lo));
    }
    const double avail = capacity - used;
    if (avail <= kCapacitySlack * std::max(1.0, capacity)) continue;
    const double takeable = avail * piece.measure();
    if (takeable >= remaining) {
      segments.push_back({{piece.lo, piece.lo + remaining / avail}, avail});
      remaining = 0.0;
    } else {
      segments.push_back({piece, avail});
      remaining -= takeable;
    }
  }
  if (remaining > 1e-9 * std::max(1.0, volume)) return {};
  return segments;
}

}  // namespace

std::pair<std::vector<Flow>, Schedule> admitted_subset(
    const std::vector<Flow>& flows, const Schedule& schedule,
    const std::vector<bool>& admitted) {
  DCN_EXPECTS(schedule.flows.size() == flows.size());
  DCN_EXPECTS(admitted.size() == flows.size());
  std::vector<Flow> sub_flows;
  Schedule sub_schedule;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (!admitted[i]) continue;
    Flow fl = flows[i];
    fl.id = static_cast<FlowId>(sub_flows.size());
    sub_flows.push_back(fl);
    sub_schedule.flows.push_back(schedule.flows[i]);
  }
  return {std::move(sub_flows), std::move(sub_schedule)};
}

OnlineResult online_dcfsr(const Graph& g, const std::vector<Flow>& flows,
                          const PowerModel& model, Rng& rng,
                          const OnlineOptions& options) {
  validate_flows(g, flows);
  OnlineResult out;
  out.schedule.flows.resize(flows.size());
  out.admitted.assign(flows.size(), false);
  if (flows.empty()) return out;

  const std::vector<std::size_t> order = arrival_order(flows);
  const double capacity = model.capacity();

  // Warm-start rows by original flow id, threaded across re-solves, and
  // one workspace for every re-solve of the run: the PR 2 fast path.
  std::vector<SparseEdgeFlow> warm(flows.size());
  RelaxationWorkspace workspace;

  // Committed per-edge load (admitted density segments) for the
  // per-flow admission fallback.
  std::vector<StepFunction> load(static_cast<std::size_t>(g.num_edges()));

  double prev_event = -std::numeric_limits<double>::infinity();
  for (std::size_t lo = 0; lo < order.size();) {
    const double now = flows[order[lo]].release;
    std::size_t hi = lo;
    while (hi < order.size() && flows[order[hi]].release == now) ++hi;
    ++out.num_events;

    // Departures-only fast path. Admitted flows that completed
    // strictly inside (prev_event, now] changed the carried problem by
    // removal only: the surviving warm rows stay feasible and close to
    // optimal, so a full relaxation at the completion point would be
    // wasted. Instead the latest completion time gets a single gap
    // check — a one-iteration warm re-solve that certifies the rows
    // when they are still within tolerance and otherwise sheds one
    // step of mass onto the capacity the departures freed — so this
    // event's full re-solve starts from rows adapted to the
    // post-departure network.
    if (options.departures_fast_path && std::isfinite(prev_event)) {
      double depart = -std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < flows.size(); ++i) {
        if (!out.admitted[i]) continue;
        const double d = flows[i].deadline;
        if (d > prev_event && d <= now && d > depart) depart = d;
      }
      if (std::isfinite(depart)) {
        std::vector<Flow> survivors;
        std::vector<std::size_t> surviving;
        for (std::size_t i = 0; i < flows.size(); ++i) {
          if (!out.admitted[i] || flows[i].deadline <= depart) continue;
          Flow res = flows[i];
          res.id = static_cast<FlowId>(survivors.size());
          res.release = depart;
          res.volume = flows[i].density() * (flows[i].deadline - depart);
          survivors.push_back(res);
          surviving.push_back(i);
        }
        if (!survivors.empty()) {
          std::vector<SparseEdgeFlow> gap_rows(survivors.size());
          for (std::size_t r = 0; r < survivors.size(); ++r) {
            gap_rows[r] = warm[surviving[r]];
          }
          RelaxationOptions gap_options = options.rounding.relaxation;
          gap_options.frank_wolfe.max_iterations = 1;
          gap_options.frank_wolfe.step_rule = options.warm_step_rule;
          FractionalRelaxation check = solve_relaxation(
              g, survivors, model, gap_options, &workspace, &gap_rows);
          ++out.departure_gap_checks;
          out.gap_check_iterations += check.total_fw_iterations;
          for (std::size_t r = 0; r < survivors.size(); ++r) {
            warm[surviving[r]] = std::move(check.final_flow[r]);
          }
        }
      }
    }
    prev_event = now;

    // Residual problem: admitted flows still in flight (at their
    // original densities — the density schedule leaves the residual
    // density invariant), then the arriving batch.
    std::vector<Flow> residual;
    std::vector<std::size_t> orig;
    std::vector<const Path*> forced;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (!out.admitted[i] || flows[i].deadline <= now) continue;
      Flow res = flows[i];
      res.id = static_cast<FlowId>(residual.size());
      res.release = now;
      res.volume = flows[i].density() * (flows[i].deadline - now);
      residual.push_back(res);
      orig.push_back(i);
      forced.push_back(&out.schedule.flows[i].path);
    }
    const std::size_t first_new = residual.size();
    for (std::size_t k = lo; k < hi; ++k) {
      Flow res = flows[order[k]];
      res.id = static_cast<FlowId>(residual.size());
      residual.push_back(res);
      orig.push_back(order[k]);
      forced.push_back(nullptr);
    }

    // Warm-started incremental re-solve over the shifted horizon. With
    // warm mass carried (any admitted flow still in flight) the solve
    // steps with the warm rule — pairwise Frank-Wolfe sheds the rows'
    // mass that the arrivals made suboptimal in a handful of steps —
    // while an all-new event (the first one in particular) keeps the
    // configured rule, so the all-at-t=0 case stays bit-identical to
    // offline dcfsr.
    std::vector<SparseEdgeFlow> warm_rows(residual.size());
    for (std::size_t r = 0; r < residual.size(); ++r) {
      warm_rows[r] = warm[orig[r]];
    }
    RelaxationOptions relax_options = options.rounding.relaxation;
    if (first_new > 0) {
      relax_options.frank_wolfe.step_rule = options.warm_step_rule;
    }
    FractionalRelaxation relax = solve_relaxation(g, residual, model,
                                                  relax_options, &workspace,
                                                  &warm_rows);
    ++out.resolves;
    out.fw_iterations += relax.total_fw_iterations;
    if (out.resolves == 1) out.first_lower_bound = relax.lower_bound_energy;
    for (std::size_t r = 0; r < residual.size(); ++r) {
      warm[orig[r]] = std::move(relax.final_flow[r]);
    }

    // Joint batch admission: randomized rounding with admitted flows
    // pinned to their circuits (exactly offline Algorithm 2 when no
    // flow is pinned, i.e. at the first event of an all-at-t=0 input).
    RandomScheduleResult draw = round_relaxation(g, residual, model, relax, rng,
                                                 options.rounding, &forced);
    out.rounding_attempts += draw.rounding_attempts;
    if (draw.capacity_feasible) {
      for (std::size_t r = first_new; r < residual.size(); ++r) {
        const Flow& fl = flows[orig[r]];
        commit(out, load, orig[r], std::move(draw.schedule.flows[r].path),
               {{fl.span(), fl.density()}});
      }
      lo = hi;
      continue;
    }

    // Joint admission failed within the attempt budget: fall back to
    // admitting the batch one flow at a time, each against the
    // committed load only — so one unroutable elephant cannot veto an
    // entire batch of mice. The default order is RCD-style
    // close-to-deadline first (ties: denser first, then id): urgent,
    // hard-to-place flows draw their paths while the committed load is
    // lightest, instead of whichever flows happened to get low ids.
    ++out.batch_fallbacks;
    std::vector<std::size_t> fallback_order;
    for (std::size_t r = first_new; r < residual.size(); ++r) {
      fallback_order.push_back(r);
    }
    if (options.fallback_order == FallbackAdmissionOrder::kDeadlineDensity) {
      std::sort(fallback_order.begin(), fallback_order.end(),
                [&](std::size_t a, std::size_t b) {
                  const Flow& fa = flows[orig[a]];
                  const Flow& fb = flows[orig[b]];
                  if (fa.deadline != fb.deadline) {
                    return fa.deadline < fb.deadline;
                  }
                  if (fa.density() != fb.density()) {
                    return fa.density() > fb.density();
                  }
                  return fa.id < fb.id;
                });
    }
    std::vector<double> weights;
    for (const std::size_t r : fallback_order) {
      const std::size_t i = orig[r];
      const Flow& fl = flows[i];
      bool placed = false;
      for (std::int32_t attempt = 0;
           attempt < options.rounding.max_rounding_attempts && !placed;
           ++attempt) {
        ++out.rounding_attempts;
        const Path& path = draw_path(relax.candidates[r], rng, weights);
        if (rate_fits(load, path, fl.span(), fl.density(), capacity)) {
          commit(out, load, i, path, {{fl.span(), fl.density()}});
          placed = true;
        }
      }
      if (!placed) ++out.num_rejected;
    }
    lo = hi;
  }
  return out;
}

OnlineResult online_greedy(const Graph& g, const std::vector<Flow>& flows,
                           const PowerModel& model) {
  validate_flows(g, flows);
  OnlineResult out;
  out.schedule.flows.resize(flows.size());
  out.admitted.assign(flows.size(), false);
  if (flows.empty()) return out;

  const std::vector<std::size_t> order = arrival_order(flows);
  const double capacity = model.capacity();

  std::vector<StepFunction> load(static_cast<std::size_t>(g.num_edges()));
  std::vector<double> weights(static_cast<std::size_t>(g.num_edges()), 0.0);

  double last_release = flows[order.front()].release - 1.0;
  for (const std::size_t i : order) {
    const Flow& fl = flows[i];
    if (fl.release != last_release) {
      ++out.num_events;
      last_release = fl.release;
    }
    const double d = fl.density();

    // The greedy baseline's routing rule against the committed load.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      weights[static_cast<std::size_t>(e)] = std::max(
          marginal_energy(load[static_cast<std::size_t>(e)], fl.span(), d, model),
          1e-12);
    }
    auto path = dijkstra_shortest_path(g, fl.src, fl.dst, weights);
    DCN_ENSURES(path.has_value());

    if (rate_fits(load, *path, fl.span(), d, capacity)) {
      commit(out, load, i, std::move(*path), {{fl.span(), d}});
      continue;
    }

    // EDF fallback: earliest remaining capacity on the same path.
    std::vector<RateSegment> segments =
        edf_fill(load, *path, fl.span(), fl.volume, capacity);
    if (!segments.empty()) {
      ++out.edf_fallbacks;
      commit(out, load, i, std::move(*path), std::move(segments));
    } else {
      ++out.num_rejected;
    }
  }
  return out;
}

}  // namespace dcn
