// The greedy online baseline (see online_scheduler.h): marginal-energy
// routing, density-rate admission with EDF fallback. No re-solves, no
// rng.
#include <algorithm>
#include <chrono>
#include <set>
#include <utility>
#include <vector>

#include "graph/shortest_path.h"
#include "online/admission_core.h"
#include "online/load_index.h"
#include "online/online_scheduler.h"

namespace dcn {

using online_impl::arrival_order;
using online_impl::commit;
using online_impl::rate_fits;

OnlineResult online_greedy(const Graph& g, const std::vector<Flow>& flows,
                           const PowerModel& model,
                           const OnlineOptions& options) {
  validate_flows(g, flows);
  OnlineResult out;
  out.schedule.flows.resize(flows.size());
  out.admitted.assign(flows.size(), false);
  if (flows.empty()) return out;

  const std::vector<std::size_t> order = arrival_order(flows);
  const double capacity = model.capacity();

  EdgeLoadIndex load(g.num_edges(), options.audit_load_index);
  std::vector<double> weights(static_cast<std::size_t>(g.num_edges()), 0.0);

  // Admitted flows in flight, deadline-ordered, with their releases in
  // a parallel multiset: completions pop at each arrival and the index
  // prunes to min(earliest live release, arrival time) — the same
  // pruning invariant as online_dcfsr's event loop. This is where the
  // index pays off most: the greedy weight loop probes *every* edge per
  // arrival, so the naive full-history marginal_energy scan made the
  // whole policy superlinear in trace length.
  std::multiset<std::pair<double, double>> active;  // (deadline, release)
  std::multiset<double> live_releases;

  double last_release = flows[order.front()].release - 1.0;
  for (const std::size_t i : order) {
    const Flow& fl = flows[i];
    // dcn-lint: allow(wall-clock) timing capture: decision latency, reaches SolverOutcome::timings only (never canonical)
    const auto event_start = std::chrono::steady_clock::now();
    auto record_latency = [&] {
      out.decision_latency_ms.push_back(
          // dcn-lint: allow(wall-clock) timing capture: closes the decision-latency window opened at event_start
          std::chrono::duration<double, std::milli>(
              // dcn-lint: allow(wall-clock) timing capture: same latency read (continuation)
              std::chrono::steady_clock::now() - event_start)
              .count());
    };
    if (fl.release != last_release) {
      ++out.num_events;
      last_release = fl.release;
    }
    while (!active.empty() && active.begin()->first <= fl.release) {
      live_releases.erase(live_releases.find(active.begin()->second));
      active.erase(active.begin());
    }
    load.advance_low_water(live_releases.empty()
                               ? fl.release
                               : std::min(fl.release, *live_releases.begin()));
    const double d = fl.density();

    // The greedy baseline's routing rule against the committed load,
    // each edge weight read from the span window of the index instead
    // of the edge's full history.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      weights[static_cast<std::size_t>(e)] =
          std::max(load.marginal_energy(e, fl.span(), d, model), 1e-12);
    }
    auto path = dijkstra_shortest_path(g, fl.src, fl.dst, weights);
    if (!path.has_value()) {
      // No route at all (disconnected endpoints): a rejection like any
      // other unplaceable flow — online inputs are not pre-screened for
      // connectivity, so this must not abort the run.
      ++out.num_rejected;
      record_latency();
      continue;
    }
    auto admit = [&] {
      active.emplace(fl.deadline, fl.release);
      live_releases.insert(fl.release);
    };

    if (rate_fits(load, *path, fl.span(), d, capacity)) {
      commit(out, load, i, std::move(*path), {{fl.span(), d}});
      admit();
      record_latency();
      continue;
    }

    // EDF fallback: earliest remaining capacity on the same path.
    std::vector<RateSegment> segments =
        edf_fill(load, *path, fl.span(), fl.volume, capacity);
    if (!segments.empty()) {
      ++out.edf_fallbacks;
      commit(out, load, i, std::move(*path), std::move(segments));
      admit();
    } else {
      ++out.num_rejected;
    }
    record_latency();
  }
  out.peak_live_segments = load.peak_live_segments();
  out.load_segments_pruned = load.segments_pruned();
  return out;
}

}  // namespace dcn
