// The event/admission core shared by every online scheduler TU.
//
// These are the admission primitives the 1100-line online_scheduler.cc
// monolith kept in one anonymous namespace, now a header so the split
// translation units (online_dcfsr.cc, oracle_dcfsr.cc, online_greedy.cc,
// edf_fill.cc, rerate.h, sharded.cc) share one definition. Everything
// capacity-facing is templated on the load-index type: the flat loop
// probes a single EdgeLoadIndex, the sharded service probes a
// ShardedLoadIndex that routes each edge to its owning shard or the
// core-link coordinator — same probe semantics, different storage
// partition. This header is internal to src/online; the public surface
// stays online_scheduler.h.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <utility>
#include <vector>

#include "flow/flow.h"
#include "graph/graph.h"
#include "graph/shortest_path.h"
#include "online/online_scheduler.h"
#include "schedule/schedule.h"

namespace dcn {
namespace online_impl {

/// Relative slack applied to every capacity comparison (mirrors the
/// rounding accept/reject step of Algorithm 2).
constexpr double kCapacitySlack = 1e-9;

/// Per-source reachability (the routing layer's bfs_distances), cached
/// per distinct source for the run. Online inputs are not pre-screened
/// for connectivity: every admission path must treat an unroutable
/// flow as a rejection, never feed it to the relaxation (whose routing
/// oracle asserts reachability). Connectivity is static for a run, so
/// each check after a source's first is O(1); the graph is directed,
/// so this is a true reachability sweep, not an undirected component
/// labeling. In the sharded service each shard keeps its own cache —
/// sound because flows are partitioned by source, so no two shards
/// ever sweep the same source.
class ReachabilityCache {
 public:
  explicit ReachabilityCache(const Graph& g) : g_(g) {}

  bool routable(NodeId src, NodeId dst) {
    auto [it, inserted] = cache_.try_emplace(src);
    if (inserted) it->second = bfs_distances(g_, src);
    return it->second[static_cast<std::size_t>(dst)] >= 0;
  }

 private:
  const Graph& g_;
  std::map<NodeId, std::vector<std::int32_t>> cache_;
};

/// RCD urgency order (Noormohammadpour et al.): closest deadline
/// first, then higher density, then id. Both per-flow admission
/// fallbacks — the online event loop's and the hindsight oracle's —
/// sort by exactly this comparator, which is what lets the oracle
/// claim "the online machinery with full knowledge".
inline bool rcd_before(const Flow& a, const Flow& b) {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.density() != b.density()) return a.density() > b.density();
  return a.id < b.id;
}

/// Density-first fallback order (the DCoflow-style counterpart of RCD):
/// higher density first, then closer deadline, then id. Dense flows are
/// the hardest to place late; admitting them first wins on traces where
/// the RCD order burns capacity on urgent-but-thin flows.
inline bool density_before(const Flow& a, const Flow& b) {
  if (a.density() != b.density()) return a.density() > b.density();
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  return a.id < b.id;
}

/// Peak number of admitted flows simultaneously in flight: the maximum
/// overlap of the admitted spans (half-open, so a flow ending exactly
/// when another starts does not overlap it).
inline std::int32_t peak_overlap(const std::vector<Flow>& flows,
                                 const std::vector<bool>& admitted) {
  std::vector<std::pair<double, std::int32_t>> events;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (!admitted[i]) continue;
    events.emplace_back(flows[i].release, +1);
    events.emplace_back(flows[i].deadline, -1);
  }
  std::sort(events.begin(), events.end());
  std::int32_t current = 0, peak = 0;
  for (const auto& [time, delta] : events) {
    current += delta;
    peak = std::max(peak, current);
  }
  return peak;
}

/// Arrival order: indices sorted by (release, id).
inline std::vector<std::size_t> arrival_order(const std::vector<Flow>& flows) {
  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&flows](std::size_t a, std::size_t b) {
    if (flows[a].release != flows[b].release) {
      return flows[a].release < flows[b].release;
    }
    return flows[a].id < flows[b].id;
  });
  return order;
}

/// True when adding constant rate `rate` over `span` keeps every edge of
/// `path` within capacity against the committed `load`. The peak lookup
/// is the index's max_within — cached prefix values plus a block-max
/// overlay over the live (unpruned) region, so the probe cost is bounded
/// by the in-flight history even after thousands of commits.
template <typename Index>
bool rate_fits(const Index& load, const Path& path, const Interval& span,
               double rate, double capacity) {
  const double limit = capacity * (1.0 + kCapacitySlack);
  if (rate > limit) return false;
  for (const EdgeId e : path.edges) {
    if (load.max_within(e, span) + rate > limit) return false;
  }
  return true;
}

/// Records the committed schedule and admission of flow `i` without
/// touching the load index (the re-rate pass places the arrival's load
/// itself, mid-transaction).
inline void record_commit(OnlineResult& out, std::size_t i, Path path,
                          std::vector<RateSegment> segments) {
  FlowSchedule& fs = out.schedule.flows[i];
  fs.path = std::move(path);
  fs.segments = std::move(segments);
  out.admitted[i] = true;
  ++out.num_admitted;
}

/// Commits `segments` on `path` for flow `i`: records the flow schedule
/// and adds every segment to the per-edge load index.
template <typename Index>
void commit(OnlineResult& out, Index& load, std::size_t i, Path path,
            std::vector<RateSegment> segments) {
  record_commit(out, i, std::move(path), std::move(segments));
  const FlowSchedule& fs = out.schedule.flows[i];
  for (const RateSegment& seg : fs.segments) {
    for (const EdgeId e : fs.path.edges) {
      load.add(e, seg.interval, seg.rate);
    }
  }
}

/// Volume flow `fl` still has to move at time `t` under its committed
/// profile (segments before `t` have been transmitted; `t` inside a
/// segment counts the elapsed part). Exact for any committed profile,
/// re-rated or not.
inline double remaining_volume(const Flow& fl, const FlowSchedule& fs,
                               double t) {
  double sent = 0.0;
  for (const RateSegment& seg : fs.segments) {
    const Interval past{seg.interval.lo, std::min(seg.interval.hi, t)};
    if (!past.empty()) sent += seg.rate * past.measure();
  }
  return std::max(0.0, fl.volume - sent);
}

/// The part of a committed profile at or after `t`, with a straddling
/// segment split at `t`. These are the segments the re-rate pass may
/// retract and replace; everything before `t` is history and immutable.
inline std::vector<RateSegment> future_segments(const FlowSchedule& fs,
                                                double t) {
  std::vector<RateSegment> future;
  for (const RateSegment& seg : fs.segments) {
    if (seg.interval.hi <= t) continue;
    future.push_back({{std::max(seg.interval.lo, t), seg.interval.hi}, seg.rate});
  }
  return future;
}

/// True when re-adding `segments` on `path` keeps every edge within
/// capacity against the committed `load` (the segments themselves are
/// not yet in the index).
template <typename Index>
bool segments_fit(const Index& load, const Path& path,
                  const std::vector<RateSegment>& segments, double capacity) {
  const double limit = capacity * (1.0 + kCapacitySlack);
  for (const RateSegment& seg : segments) {
    for (const EdgeId e : path.edges) {
      if (load.max_within(e, seg.interval) + seg.rate > limit) return false;
    }
  }
  return true;
}

/// Indexed EDF fill, templated on the load-index type (see the public
/// edf_fill overload in online_scheduler.h for the contract): same
/// elementary-piece packing as the StepFunction reference, but the cut
/// collection walks only the merged segments overlapping `span`
/// (for_each_segment_from stops at the first run starting past span.hi)
/// and the per-piece load probes are O(log live) index lookups. Runs
/// the index enumerates that the reference's full segments() scan would
/// also visit but that end at or before span.lo — or start at or past
/// span.hi — contribute no cuts under the strict window filters, so the
/// cut set matches the reference exactly; in audit mode (an index whose
/// shadow() is non-null) the whole fill is cross-checked against the
/// reference on the naive shadow.
template <typename Index>
std::vector<RateSegment> edf_fill_over(const Index& load, const Path& path,
                                       const Interval& span, double volume,
                                       double capacity) {
  std::vector<double> cuts{span.lo, span.hi};
  for (const EdgeId e : path.edges) {
    load.for_each_segment_from(e, span.lo, [&](const Interval& iv, double) {
      if (iv.lo >= span.hi) return false;
      if (iv.lo > span.lo && iv.lo < span.hi) cuts.push_back(iv.lo);
      if (iv.hi > span.lo && iv.hi < span.hi) cuts.push_back(iv.hi);
      return true;
    });
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<RateSegment> segments;
  double remaining = volume;
  for (std::size_t k = 0; k + 1 < cuts.size() && remaining > 0.0; ++k) {
    const Interval piece{cuts[k], cuts[k + 1]};
    double used = 0.0;
    for (const EdgeId e : path.edges) {
      used = std::max(used, load.value_at(e, piece.lo));
    }
    const double avail = capacity - used;
    if (avail <= kCapacitySlack * std::max(1.0, capacity)) continue;
    const double takeable = avail * piece.measure();
    if (takeable >= remaining) {
      segments.push_back({{piece.lo, piece.lo + remaining / avail}, avail});
      remaining = 0.0;
    } else {
      segments.push_back({piece, avail});
      remaining -= takeable;
    }
  }
  if (remaining > 1e-9 * std::max(1.0, volume)) segments.clear();
  if (const std::vector<StepFunction>* shadow = load.shadow()) {
    // Bitwise differential against the reference fill on the naive
    // shadow profiles: same cuts, same rates, same early exit.
    const std::vector<RateSegment> ref =
        edf_fill(*shadow, path, span, volume, capacity);
    DCN_ENSURES(segments.size() == ref.size());
    for (std::size_t k = 0; k < segments.size(); ++k) {
      DCN_ENSURES(segments[k].interval.lo == ref[k].interval.lo);
      DCN_ENSURES(segments[k].interval.hi == ref[k].interval.hi);
      DCN_ENSURES(segments[k].rate == ref[k].rate);
    }
  }
  return segments;
}

}  // namespace online_impl
}  // namespace dcn
