// The flat event loop: online_dcfsr, the per-event warm-started
// re-solve policy (see online_scheduler.h for the contract). Split out
// of the online monolith; the admission primitives live in
// admission_core.h and the re-rate transaction in rerate.h so the
// sharded service (sharded.cc) runs the identical machinery per shard.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "mcf/relaxation.h"
#include "online/admission_core.h"
#include "online/load_index.h"
#include "online/online_scheduler.h"
#include "online/rerate.h"

namespace dcn {

using online_impl::arrival_order;
using online_impl::commit;
using online_impl::rate_fits;
using online_impl::rcd_before;
using online_impl::remaining_volume;
using online_impl::ReachabilityCache;
using online_impl::try_rerate;

OnlineResult online_dcfsr(const Graph& g, const std::vector<Flow>& flows,
                          const PowerModel& model, Rng& rng,
                          const OnlineOptions& options) {
  validate_flows(g, flows);
  OnlineResult out;
  out.schedule.flows.resize(flows.size());
  out.admitted.assign(flows.size(), false);
  if (flows.empty()) return out;

  const std::vector<std::size_t> order = arrival_order(flows);
  const double capacity = model.capacity();

  // Warm-start rows and pairwise path atoms by original flow id,
  // threaded across re-solves, and one workspace for every re-solve of
  // the run: the PR 2 fast path plus the PR 5 atom carry-over. Both are
  // released the moment a flow departs or is rejected, so the carried
  // state stays proportional to the flows actually in flight.
  std::vector<SparseEdgeFlow> warm(flows.size());
  std::vector<AtomSet> warm_atoms(flows.size());
  RelaxationWorkspace workspace;
  // Flows whose committed profile was reshaped by a re-rate pass
  // (allow_rerate only; sticky). The density invariant — residual
  // density equals original density — no longer holds for them: their
  // residual demands are computed from the committed profile, and they
  // re-enter each relaxation cold (warm rows route the original
  // density). With allow_rerate off no flag is ever set and every
  // expression below reduces to the plain event loop bit for bit.
  std::vector<char> rerated(flows.size(), 0);
  // Residual volume of in-flight flow i at time t: the density
  // invariant for untouched flows (bit-identical to the plain loop),
  // the committed profile's actual remainder once re-rated.
  auto residual_volume = [&](std::size_t i, double t) {
    return rerated[i] ? remaining_volume(flows[i], out.schedule.flows[i], t)
                      : flows[i].density() * (flows[i].deadline - t);
  };

  // Committed per-edge load (admitted density segments) for the
  // per-flow admission fallback: the incremental index, pruned to the
  // run's low-water mark at every event below.
  EdgeLoadIndex load(g.num_edges(), options.audit_load_index);
  ReachabilityCache reachable(g);

  // The active-flow index: admitted, still-in-flight flows keyed by
  // (deadline, flow index). Completions leave from the front in
  // O(log n) each; the residual problem reads the set in deadline order
  // in O(active) — no per-event scan over the whole trace.
  std::set<std::pair<double, std::size_t>> active;
  // Release times of the flows in `active`, kept as a multiset so the
  // low-water mark — min(earliest live release, event time) — updates
  // in O(log n) per admission/completion.
  std::multiset<double> live_releases;

  for (std::size_t lo = 0; lo < order.size();) {
    // The event's decision point is the batch's first release; with
    // epoch > 0 every arrival within `epoch` of it joins the batch.
    // epoch = 0 reduces to equal-release grouping exactly: releases
    // ascend, so `<= now + 0` is `== now`.
    const double now = flows[order[lo]].release;
    std::size_t hi = lo;
    while (hi < order.size() &&
           flows[order[hi]].release <= now + options.epoch) {
      ++hi;
    }
    ++out.num_events;
    // dcn-lint: allow(wall-clock) timing capture: decision latency, reaches SolverOutcome::timings only (never canonical)
    const auto event_start = std::chrono::steady_clock::now();
    // Every arrival in the batch is charged the event's full wall
    // clock — the decision latency a caller of admission would see.
    auto record_latency = [&] {
      // dcn-lint: allow(wall-clock) timing capture: closes the decision-latency window opened at event_start
      const double ms = std::chrono::duration<double, std::milli>(
                            // dcn-lint: allow(wall-clock) timing capture: same latency read (continuation)
                            std::chrono::steady_clock::now() - event_start)
                            .count();
      for (std::size_t k = lo; k < hi; ++k) {
        out.decision_latency_ms.push_back(ms);
      }
    };

    // Completions since the previous event: pop the index prefix with
    // deadline <= now and release the departed flows' warm state. The
    // index held exactly the flows in flight after the previous event,
    // so the popped deadlines are exactly the completions strictly
    // inside (previous event, now]; the latest one seeds the
    // departures-only fast path below.
    double depart = -std::numeric_limits<double>::infinity();
    while (!active.empty() && active.begin()->first <= now) {
      const std::size_t done = active.begin()->second;
      depart = active.begin()->first;
      active.erase(active.begin());
      live_releases.erase(live_releases.find(flows[done].release));
      warm[done] = {};
      warm_atoms[done] = {};
    }
    // Departed history is dead weight for every future probe (batch
    // spans start at or after `now`, live spans at or after the
    // earliest live release): advance the low-water mark and let the
    // index fold it away. This pruning is what keeps probe cost flat
    // as the trace grows instead of scaling with every flow ever seen.
    load.advance_low_water(
        live_releases.empty() ? now : std::min(now, *live_releases.begin()));

    // Warm-state hygiene (audit mode): at every event exit, only
    // admitted in-flight flows may hold warm rows or path atoms — a
    // rejected or departed flow keeping either would leak carried
    // state and corrupt a later re-solve (the rows route a density the
    // residual problem no longer contains).
    auto audit_warm_state = [&] {
      if (!options.audit_load_index) return;
      std::vector<char> in_flight(flows.size(), 0);
      for (const auto& [deadline, i] : active) {
        (void)deadline;
        in_flight[i] = 1;
      }
      for (std::size_t i = 0; i < flows.size(); ++i) {
        if (in_flight[i]) continue;
        DCN_ENSURES(warm[i].empty());
        DCN_ENSURES(warm_atoms[i].empty());
      }
    };

    // Departures-only fast path. The completions changed the carried
    // problem by removal only: the surviving warm rows stay feasible
    // and close to optimal, so a full relaxation at the completion
    // point would be wasted. Instead the latest completion time gets a
    // single gap check — a one-iteration warm re-solve that certifies
    // the rows when they are still within tolerance and otherwise
    // sheds one step of mass onto the capacity the departures freed —
    // so this event's full re-solve starts from rows adapted to the
    // post-departure network.
    if (options.departures_fast_path && std::isfinite(depart) &&
        !active.empty()) {
      std::vector<Flow> survivors;
      std::vector<std::size_t> surviving;
      std::vector<SparseEdgeFlow> gap_rows;
      std::vector<AtomSet> gap_atoms;
      survivors.reserve(active.size());
      // The gap check is a re-solve like any other: with a finite
      // lookahead its survivors are clipped to [depart, depart + W] at
      // their original densities (no admission happens here, so the
      // window only shrinks the interval decomposition).
      const double gap_horizon =
          options.lookahead_window > 0.0
              ? depart + options.lookahead_window
              : std::numeric_limits<double>::infinity();
      for (const auto& [deadline, i] : active) {
        Flow res = flows[i];
        res.volume = residual_volume(i, depart);
        if (rerated[i] &&
            res.volume <= 1e-12 * std::max(1.0, flows[i].volume)) {
          // A re-rated flow accelerated to completion before its
          // deadline: nothing left to optimize for it.
          continue;
        }
        res.id = static_cast<FlowId>(survivors.size());
        res.release = depart;
        if (res.deadline > gap_horizon) {
          // The untouched branch keeps the plain loop's expression bit
          // for bit; a re-rated profile is not flat, so its clipped
          // volume is the window's share of the remainder.
          res.volume = rerated[i]
                           ? res.volume *
                                 ((gap_horizon - depart) / (deadline - depart))
                           : flows[i].density() * (gap_horizon - depart);
          res.deadline = gap_horizon;
        }
        survivors.push_back(res);
        surviving.push_back(i);
        gap_rows.push_back(warm[i]);
        gap_atoms.push_back(std::move(warm_atoms[i]));
      }
      RelaxationOptions gap_options = options.rounding.relaxation;
      gap_options.frank_wolfe.max_iterations = 1;
      gap_options.frank_wolfe.step_rule = options.warm_step_rule;
      FractionalRelaxation check = solve_relaxation(
          g, survivors, model, gap_options, &workspace, &gap_rows, &gap_atoms);
      ++out.departure_gap_checks;
      out.gap_check_iterations += check.total_fw_iterations;
      out.fw_stats += check.fw_stats;
      for (std::size_t r = 0; r < survivors.size(); ++r) {
        if (rerated[surviving[r]]) continue;  // stays cold (see `rerated`)
        warm[surviving[r]] = std::move(check.final_flow[r]);
        warm_atoms[surviving[r]] = std::move(check.final_atoms[r]);
      }
    }

    // Residual problem: admitted flows still in flight (at their
    // original densities — the density schedule leaves the residual
    // density invariant), straight off the index in deadline order,
    // then the arriving batch.
    std::vector<Flow> residual;
    std::vector<std::size_t> orig;
    std::vector<const Path*> forced;
    residual.reserve(active.size() + (hi - lo));
    for (const auto& [deadline, i] : active) {
      (void)deadline;
      Flow res = flows[i];
      res.volume = residual_volume(i, now);
      if (rerated[i] && res.volume <= 1e-12 * std::max(1.0, flows[i].volume)) {
        continue;  // accelerated to completion; nothing left to carry
      }
      res.id = static_cast<FlowId>(residual.size());
      res.release = now;
      residual.push_back(res);
      orig.push_back(i);
      forced.push_back(&out.schedule.flows[i].path);
    }
    const std::size_t first_new = residual.size();
    for (std::size_t k = lo; k < hi; ++k) {
      Flow res = flows[order[k]];
      if (!reachable.routable(res.src, res.dst)) {
        // No route at all: reject here rather than crash the routing
        // oracle inside the relaxation.
        ++out.num_rejected;
        continue;
      }
      res.id = static_cast<FlowId>(residual.size());
      residual.push_back(res);
      orig.push_back(order[k]);
      forced.push_back(nullptr);
    }
    if (residual.empty()) {  // nothing in flight, no routable arrival
      audit_warm_state();
      record_latency();
      lo = hi;
      continue;
    }

    // Warm-started incremental re-solve over the shifted horizon. With
    // warm mass carried (any admitted flow still in flight) the solve
    // steps with the warm rule — pairwise Frank-Wolfe sheds the rows'
    // mass that the arrivals made suboptimal in a handful of steps —
    // while an all-new event (the first one in particular) keeps the
    // configured rule, so the all-at-t=0 case stays bit-identical to
    // offline dcfsr.
    std::vector<SparseEdgeFlow> warm_rows(residual.size());
    std::vector<AtomSet> warm_atom_rows(residual.size());
    for (std::size_t r = 0; r < residual.size(); ++r) {
      warm_rows[r] = warm[orig[r]];
      warm_atom_rows[r] = std::move(warm_atoms[orig[r]]);
    }
    // Interval-windowed relaxation: flows whose deadlines lie past
    // now + W enter the *relaxation* clipped to the window at their
    // original densities — the rounding below still accepts/rejects
    // against the true spans, so the window affects solve cost, never
    // admission soundness. When no flow reaches past the horizon
    // (W = 0, or a window covering every residual span) the relaxation
    // sees the identical vector, keeping those cases bit-for-bit.
    const std::vector<Flow>* relax_flows = &residual;
    std::vector<Flow> clipped;
    if (options.lookahead_window > 0.0) {
      const double horizon = now + options.lookahead_window;
      bool any_clipped = false;
      for (const Flow& fl : residual) {
        if (fl.deadline > horizon && fl.release < horizon) {
          any_clipped = true;
          break;
        }
      }
      if (any_clipped) {
        clipped = residual;
        for (Flow& fl : clipped) {
          // An epoch-batched arrival releasing at or past the horizon
          // keeps its true span (clipping would invert it).
          if (fl.deadline > horizon && fl.release < horizon) {
            fl.volume = fl.density() * (horizon - fl.release);
            fl.deadline = horizon;
          }
        }
        relax_flows = &clipped;
      }
    }
    RelaxationOptions relax_options = options.rounding.relaxation;
    if (first_new > 0) {
      relax_options.frank_wolfe.step_rule = options.warm_step_rule;
    }
    FractionalRelaxation relax =
        solve_relaxation(g, *relax_flows, model, relax_options, &workspace,
                         &warm_rows, &warm_atom_rows);
    ++out.resolves;
    out.fw_iterations += relax.total_fw_iterations;
    out.fw_stats += relax.fw_stats;
    if (out.resolves == 1) out.first_lower_bound = relax.lower_bound_energy;
    for (std::size_t r = 0; r < residual.size(); ++r) {
      if (rerated[orig[r]]) {
        // A re-rated flow's residual density drifts between events
        // (its committed profile is not flat), so rows routing this
        // event's density are stale at the next one: re-enter cold.
        warm[orig[r]] = {};
        warm_atoms[orig[r]] = {};
        continue;
      }
      warm[orig[r]] = std::move(relax.final_flow[r]);
      warm_atoms[orig[r]] = std::move(relax.final_atoms[r]);
    }

    // After this event's admissions the index must hold every admitted
    // in-flight flow, and rejected arrivals must not keep warm state.
    auto admit_into_index = [&](std::size_t i) {
      active.emplace(flows[i].deadline, i);
      live_releases.insert(flows[i].release);
    };
    auto release_rejected = [&](std::size_t i) {
      warm[i] = {};
      warm_atoms[i] = {};
    };

    // Places arrival `r` (residual index) against the committed load:
    // the per-flow rounding attempts of the admission fallback, then —
    // with allow_rerate — deterministic re-rate attempts over the
    // highest-weight candidate paths. Shared by the fallback loop and
    // the re-rate mode's joint-path verification below; with
    // allow_rerate off this is exactly the historical fallback body
    // (same rng consumption, same counters).
    std::vector<double> weights;
    auto place_arrival = [&](std::size_t r) -> bool {
      const std::size_t i = orig[r];
      const Flow& fl = flows[i];
      for (std::int32_t attempt = 0;
           attempt < options.rounding.max_rounding_attempts; ++attempt) {
        ++out.rounding_attempts;
        const Path& path = draw_path(relax.candidates[r], rng, weights);
        if (rate_fits(load, path, fl.span(), fl.density(), capacity)) {
          commit(out, load, i, path, {{fl.span(), fl.density()}});
          admit_into_index(i);
          return true;
        }
      }
      if (!options.allow_rerate) return false;
      // Re-rate attempts: the flow does not fit against the committed
      // load on any drawn path — try reshaping the in-flight profiles
      // in its way, over the top-weight candidate paths (deterministic:
      // ranked by rounding weight, no rng, at most three distinct).
      std::vector<const WeightedPath*> ranked;
      for (const WeightedPath& wp : relax.candidates[r].paths) {
        ranked.push_back(&wp);
      }
      std::stable_sort(ranked.begin(), ranked.end(),
                       [](const WeightedPath* a, const WeightedPath* b) {
                         return a->weight > b->weight;
                       });
      std::size_t tried = 0;
      for (std::size_t k = 0; k < ranked.size() && tried < 3; ++k) {
        bool duplicate = false;
        for (std::size_t j = 0; j < k && !duplicate; ++j) {
          duplicate = ranked[j]->path.edges == ranked[k]->path.edges;
        }
        if (duplicate) continue;
        ++tried;
        if (try_rerate(out, load, flows, active, now, capacity, i,
                       ranked[k]->path, rerated, warm, warm_atoms)) {
          admit_into_index(i);
          return true;
        }
      }
      return false;
    };

    // Joint batch admission: randomized rounding with admitted flows
    // pinned to their circuits (exactly offline Algorithm 2 when no
    // flow is pinned, i.e. at the first event of an all-at-t=0 input).
    RandomScheduleResult draw = round_relaxation(g, residual, model, relax, rng,
                                                 options.rounding, &forced);
    out.rounding_attempts += draw.rounding_attempts;
    if (draw.capacity_feasible) {
      if (!options.allow_rerate) {
        for (std::size_t r = first_new; r < residual.size(); ++r) {
          const Flow& fl = flows[orig[r]];
          commit(out, load, orig[r], std::move(draw.schedule.flows[r].path),
                 {{fl.span(), fl.density()}});
          admit_into_index(orig[r]);
        }
      } else {
        // Once any flow has been re-rated the joint rounding's capacity
        // check is no longer sound for new arrivals — the residual
        // timeline it checks (flat residual densities) understates a
        // reshaped profile's committed acceleration. Verify each drawn
        // path against the index before committing; while nothing has
        // been re-rated the check never fails (the sequential probes
        // see a subset of the joint timeline under the same slack), so
        // admissions match the plain loop exactly.
        std::vector<std::size_t> leftover;
        for (std::size_t r = first_new; r < residual.size(); ++r) {
          const Flow& fl = flows[orig[r]];
          const Path& path = draw.schedule.flows[r].path;
          if (rate_fits(load, path, fl.span(), fl.density(), capacity)) {
            commit(out, load, orig[r], std::move(draw.schedule.flows[r].path),
                   {{fl.span(), fl.density()}});
            admit_into_index(orig[r]);
          } else {
            leftover.push_back(r);
          }
        }
        for (const std::size_t r : leftover) {
          if (!place_arrival(r)) {
            ++out.num_rejected;
            release_rejected(orig[r]);
          }
        }
      }
      out.peak_in_flight = std::max(out.peak_in_flight,
                                    static_cast<std::int32_t>(active.size()));
      audit_warm_state();
      record_latency();
      lo = hi;
      continue;
    }

    // Joint admission failed within the attempt budget: fall back to
    // admitting the batch one flow at a time, each against the
    // committed load only — so one unroutable elephant cannot veto an
    // entire batch of mice. The default order is RCD-style
    // close-to-deadline first (ties: denser first, then id): urgent,
    // hard-to-place flows draw their paths while the committed load is
    // lightest, instead of whichever flows happened to get low ids.
    ++out.batch_fallbacks;
    std::vector<std::size_t> fallback_order;
    for (std::size_t r = first_new; r < residual.size(); ++r) {
      fallback_order.push_back(r);
    }
    if (options.fallback_order == FallbackAdmissionOrder::kDeadlineDensity) {
      std::sort(fallback_order.begin(), fallback_order.end(),
                [&](std::size_t a, std::size_t b) {
                  return rcd_before(flows[orig[a]], flows[orig[b]]);
                });
    }
    for (const std::size_t r : fallback_order) {
      if (!place_arrival(r)) {
        ++out.num_rejected;
        release_rejected(orig[r]);
      }
    }
    out.peak_in_flight = std::max(out.peak_in_flight,
                                  static_cast<std::int32_t>(active.size()));
    audit_warm_state();
    record_latency();
    lo = hi;
  }
  out.peak_live_segments = load.peak_live_segments();
  out.load_segments_pruned = load.segments_pruned();
  return out;
}

}  // namespace dcn
