// The sharded always-on scheduling service: stream -> shard ->
// coordinator.
//
// ShardedScheduler is the long-lived core. It absorbs epoch batches of
// arrivals (from a trace or an EventStream pulled on demand) and runs
// each global event in two phases:
//
//   Phase A (parallel over affected source groups): each group — a
//   long-lived shard worker owning its warm rows, path atoms, active
//   set, rng stream, and reachability cache — pops its completions,
//   runs the departures-only gap check, builds its residual problem,
//   warm re-solves the relaxation in its private workspace, and draws
//   candidate paths by randomized rounding from its own rng stream.
//   Nothing global is written: proposals go to per-group slots, so any
//   worker count produces identical state (the BatchRunner house rule).
//
//   Phase B (the core-link coordinator, serial): proposals are folded
//   in ascending group id — i.e. reservations are arbitrated in
//   deterministic (event-time, shard-id, flow-id) order — and every
//   drawn path is verified against the *global* sharded load index
//   before committing (a group's own draw checked capacity only
//   against its own residual timeline; shared aggregation/core edges
//   carry other groups' load). Arrivals whose drawn path no longer
//   fits go through the per-flow fallback (fresh draws from the
//   group's stream, then — with allow_rerate — the deadline-safe
//   re-rate transaction over the group's own in-flight flows).
//
// The decomposition (which flows solve together) is fixed by the
// topology via ShardPlan, so results are byte-identical for any shard
// count >= 2 and any worker count; a 1-shard plan delegates to the
// flat loop (online_dcfsr) outright and is byte-identical to
// online_dcfsr_flat under that solver's options.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "mcf/relaxation.h"
#include "online/admission_core.h"
#include "online/event_stream.h"
#include "online/online_scheduler.h"
#include "online/shard_plan.h"

namespace dcn {

/// The long-lived sharded admission engine. Feed arrivals in event
/// order via process_batch (each batch = one global event: the epoch
/// window starting at the batch's first release); read the aggregate
/// OnlineResult with take_result() when the stream ends. Result rows
/// are indexed by feed order (slot k = k-th arrival fed), not by the
/// caller's original flow indices — online_dcfsr_sharded() remaps.
class ShardedScheduler {
 public:
  /// `stream_seed` seeds the per-shard rng streams (one mix per group).
  /// `workers` caps phase-A concurrency: 0 = min(hardware, lanes).
  /// `discard_completed` drops completed flows' committed segments and
  /// paths (service mode: keeps resident state proportional to flows
  /// in flight; the aggregate counters stay exact, the returned
  /// schedule keeps only in-flight rows).
  ShardedScheduler(const Graph& g, const PowerModel& model,
                   const OnlineOptions& options, const ShardPlan& plan,
                   std::uint64_t stream_seed, std::int32_t workers,
                   bool discard_completed);
  ~ShardedScheduler();  // out of line: GroupState is private to the TU

  /// One global event: `batch` holds the arrivals with release in
  /// [now, now + epoch], in (release, id) order; `now` is the first
  /// release. Calls must present non-decreasing `now`.
  void process_batch(double now, const std::vector<Flow>& batch);

  /// Finalizes index-health counters and moves the result out.
  [[nodiscard]] OnlineResult take_result();

  /// Live introspection for the stream service's periodic flushes.
  [[nodiscard]] const OnlineResult& result() const { return out_; }
  [[nodiscard]] std::int64_t arrivals() const {
    return static_cast<std::int64_t>(flows_.size());
  }
  [[nodiscard]] std::int64_t completed() const { return completed_; }
  [[nodiscard]] std::int32_t in_flight() const;
  [[nodiscard]] std::int32_t peak_live_segments() const;
  [[nodiscard]] std::int64_t load_segments_pruned() const;

 private:
  struct GroupState;
  struct Proposal;

  [[nodiscard]] double residual_volume(std::size_t slot, double t) const;
  void phase_a(GroupState& gs, const std::vector<std::size_t>& batch_slots,
               double now, Proposal& p);
  void phase_b(GroupState& gs, double now, Proposal& p);
  void release_warm(std::size_t slot);
  void audit_warm_state() const;

  const Graph& g_;
  const PowerModel& model_;
  const OnlineOptions options_;
  const ShardPlan& plan_;
  const double capacity_;
  const bool discard_completed_;

  std::vector<std::unique_ptr<GroupState>> groups_;
  std::unique_ptr<WorkerPool> pool_;  // phase A lanes; null = serial

  // Slot-indexed state (slot = feed order), exactly the flat loop's
  // per-flow vectors. Phase A touches only its own group's slots, so
  // parallel groups never alias.
  std::vector<Flow> flows_;
  std::vector<SparseEdgeFlow> warm_;
  std::vector<AtomSet> warm_atoms_;
  std::vector<char> rerated_;
  std::vector<std::int32_t> group_of_slot_;

  ShardedLoadIndex load_;
  OnlineResult out_;
  std::int64_t completed_ = 0;
  bool first_lb_set_ = false;

  // Per-batch scratch, reused across events.
  std::vector<std::vector<std::size_t>> batch_slots_;
  std::vector<std::int32_t> affected_;
};

/// Batch-API entry point, registered as `online_dcfsr_sharded`: runs
/// the sharded service over a materialized trace and returns a result
/// indexed like the input (drop-in comparable with online_dcfsr).
/// Plans with a single lane or a single source group delegate to
/// online_dcfsr on the caller's rng stream — byte-identical to the
/// flat loop under the same options. With >= 2 lanes the output is a
/// pure function of (inputs, plan groups): byte-identical for any
/// shard count >= 2 and any `workers` (0 = min(hardware, lanes)).
[[nodiscard]] OnlineResult online_dcfsr_sharded(
    const Graph& g, const std::vector<Flow>& flows, const PowerModel& model,
    Rng& rng, const OnlineOptions& options, const ShardPlan& plan,
    std::int32_t workers = 0);

/// Periodic service snapshot handed to the stream runner's flush
/// callback (stats are cumulative since the stream started).
struct StreamFlushStats {
  double now = 0.0;           // current event time (trace time)
  std::int64_t arrivals = 0;  // pulled from the stream so far
  std::int32_t admitted = 0;
  std::int32_t rejected = 0;
  std::int64_t completed = 0;      // admitted flows past their deadline
  std::int32_t in_flight = 0;      // admitted, still active
  std::int32_t resolves = 0;       // relaxation re-solves so far
  double p50_ms = 0.0;             // decision latency so far (wall clock)
  double p99_ms = 0.0;
  std::int32_t peak_live_segments = 0;
  std::int64_t segments_pruned = 0;
  std::int64_t peak_rss_kb = 0;  // process high-water (getrusage)
};

/// Sustained-stream mode: pulls arrivals from `stream` (never
/// materializing the trace), feeds them to a ShardedScheduler in epoch
/// batches, and invokes `on_flush` every `flush_every` arrivals (and
/// once at the end; pass 0 to disable periodic flushes). With
/// `discard_completed` (service default) completed flows' committed
/// segments are dropped as they finish, so resident state tracks the
/// in-flight working set instead of the stream length — the returned
/// schedule then keeps only still-in-flight rows, while admission
/// counters and decision latencies stay exact.
[[nodiscard]] OnlineResult run_online_stream(
    const Graph& g, EventStream& stream, const PowerModel& model, Rng& rng,
    const OnlineOptions& options, const ShardPlan& plan, std::int32_t workers,
    std::int64_t flush_every,
    const std::function<void(const StreamFlushStats&)>& on_flush,
    bool discard_completed = true);

/// Process-wide peak resident set size in KB (getrusage high-water;
/// monotonic over the process lifetime — callers comparing runs should
/// measure in separate processes). 0 where unsupported.
[[nodiscard]] std::int64_t peak_rss_kb();

}  // namespace dcn
