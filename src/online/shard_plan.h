// The shard layer of the online scheduling service: a topology-fixed
// partition of flows by source edge-group, and the load-index storage
// split it induces.
//
// ShardPlan groups hosts by their attachment (edge) switch — the
// pod-local unit RCD's near-deadline locality argument justifies — and
// assigns each group to an execution lane (lane = group % shards).
// Crucially the *decomposition* is a function of the topology alone:
// shard and worker counts only choose how many groups run concurrently,
// never which flows share a relaxation, so the sharded scheduler's
// output is byte-identical for any shard count >= 2 and any worker
// count (the BatchRunner house rule).
//
// ShardedLoadIndex partitions committed-load storage by edge ownership:
// a host's uplink (host -> edge switch) is traversed only by flows
// sourced at that host (hosts are leaves — leaf-free transit means no
// path crosses a host), so those edges are private to the source's
// group and live in the group's own EdgeLoadIndex; every other edge —
// aggregation, core, and the downlinks that inbound traffic from any
// group can load — belongs to the core-link coordinator's index. Every
// edge lives in exactly one sub-index, so each edge's LoadProfile sees
// the identical add/retract/prune sequence a single EdgeLoadIndex
// would: probes are bitwise-equal to the unsharded index by
// construction, and capacity soundness never depends on the ownership
// split (the router sends every probe to the owning sub-index).
#pragma once

#include <cstdint>
#include <vector>

#include "flow/flow.h"
#include "online/load_index.h"
#include "topology/topology.h"

namespace dcn {

class ShardPlan {
 public:
  /// Partition by source edge-group (attachment switch). `num_shards`
  /// is the requested lane count: 0 means one lane per group, values
  /// above the group count are clamped, and 1 yields a single-lane plan
  /// (the sharded scheduler delegates that case to the flat loop so "1
  /// shard" matches online_dcfsr_flat byte for byte).
  [[nodiscard]] static ShardPlan by_source_group(const Topology& topo,
                                                 std::int32_t num_shards);

  /// Distinct source groups (edge switches with attached hosts).
  [[nodiscard]] std::int32_t num_groups() const { return num_groups_; }
  /// Execution lanes — the effective shard count (concurrency cap).
  [[nodiscard]] std::int32_t num_lanes() const { return num_lanes_; }

  /// Group of a host node; -1 for non-hosts.
  [[nodiscard]] std::int32_t group_of_host(NodeId host) const {
    return host_group_[static_cast<std::size_t>(host)];
  }
  [[nodiscard]] std::int32_t group_of(const Flow& fl) const {
    return group_of_host(fl.src);
  }

  /// Owning group of each edge: g for group g's private host uplinks,
  /// -1 for coordinator-owned (shared) edges.
  [[nodiscard]] const std::vector<std::int32_t>& edge_owner() const {
    return edge_owner_;
  }

  [[nodiscard]] std::int32_t lane_of_group(std::int32_t g) const {
    return g % num_lanes_;
  }

 private:
  std::vector<std::int32_t> host_group_;  // by NodeId; -1 for non-hosts
  std::vector<std::int32_t> edge_owner_;  // by EdgeId; -1 = coordinator
  std::int32_t num_groups_ = 0;
  std::int32_t num_lanes_ = 0;
};

/// The storage-sharded committed-load index: one private EdgeLoadIndex
/// per group (its hosts' uplinks), one for the coordinator (everything
/// shared). Same probe API as EdgeLoadIndex — every call routes to the
/// sub-index owning the edge — so the admission templates in
/// admission_core.h / rerate.h instantiate over either. shadow() is
/// nullptr (each sub-index audits its own probes bitwise in audit mode;
/// there is no combined naive replay to diff a cross-shard fill
/// against).
class ShardedLoadIndex {
 public:
  ShardedLoadIndex(const ShardPlan& plan, std::int32_t num_edges, bool audit);

  void add(EdgeId e, const Interval& iv, double rate) {
    sub(e).add(e, iv, rate);
  }
  void retract(EdgeId e, const Interval& iv, double rate) {
    sub(e).retract(e, iv, rate);
  }
  [[nodiscard]] double value_at(EdgeId e, double t) const {
    return sub(e).value_at(e, t);
  }
  [[nodiscard]] double max_within(EdgeId e, const Interval& window) const {
    return sub(e).max_within(e, window);
  }
  [[nodiscard]] double marginal_energy(EdgeId e, const Interval& span, double d,
                                       const PowerModel& model) const {
    return sub(e).marginal_energy(e, span, d, model);
  }
  template <typename Fn>
  void for_each_segment_from(EdgeId e, double from, Fn&& fn) const {
    sub(e).for_each_segment_from(e, from, static_cast<Fn&&>(fn));
  }

  /// Advances every sub-index's low-water mark (the mark is global:
  /// min over all groups' earliest live release and the event time).
  void advance_low_water(double t);

  [[nodiscard]] std::int32_t peak_live_segments() const;
  [[nodiscard]] std::int64_t segments_pruned() const;
  [[nodiscard]] const std::vector<StepFunction>* shadow() const {
    return nullptr;
  }

 private:
  [[nodiscard]] EdgeLoadIndex& sub(EdgeId e) {
    const std::int32_t owner = (*owner_)[static_cast<std::size_t>(e)];
    return owner >= 0 ? privates_[static_cast<std::size_t>(owner)]
                      : coordinator_;
  }
  [[nodiscard]] const EdgeLoadIndex& sub(EdgeId e) const {
    const std::int32_t owner = (*owner_)[static_cast<std::size_t>(e)];
    return owner >= 0 ? privates_[static_cast<std::size_t>(owner)]
                      : coordinator_;
  }

  const std::vector<std::int32_t>* owner_;  // plan's edge_owner
  std::vector<EdgeLoadIndex> privates_;     // one per group
  EdgeLoadIndex coordinator_;
};

}  // namespace dcn
