// Online rolling-horizon scheduling for DCFSR.
//
// The paper solves DCFSR with every flow known upfront, but its own
// motivation — hard-deadline flows in production data centers — is
// online: flows arrive over time and the schedule must be re-planned
// without violating already-admitted deadlines (cf. RCD, DCoflow).
// This module runs that regime as an event-driven loop over arrival
// times:
//
//   * Arrivals with the same release time form one event batch.
//   * At each event the residual problem is formed: every admitted,
//     still-active flow contributes its remaining volume over
//     [now, d_i]; flows transmit at their density, so the residual
//     density equals the original density and committed rates never
//     need revision (the Theorem 4 schedule, executed online).
//   * Admission control: a batch (or, when joint admission fails, each
//     arrival individually, closest deadline first — RCD-style, see
//     FallbackAdmissionOrder) is accepted iff a capacity-feasible
//     schedule exists for the union of residual admitted demands and
//     the new flow(s). Admitted flows are never preempted or rejected
//     later; rejected flows are dropped at arrival (no partial
//     service).
//   * Paths are virtual circuits: committed at admission and held fixed
//     through every later re-solve (a mid-flight path change is not
//     representable — nor desirable — in the circuit model of
//     Sec. III-A). Re-solves therefore re-optimize *routing of new
//     arrivals* against a fractional re-optimization of everything in
//     flight.
//   * With OnlineOptions::allow_rerate (the online_dcfsr_preempt
//     solver), the frozen-rate half of that contract softens: an
//     arrival that cannot fit against the committed load may trigger a
//     re-rate pass that reshapes the *future* rate profiles of admitted
//     in-flight flows sharing its path's edges — never their paths, and
//     never the past. A commit barrier keeps admitted deadlines
//     inviolable: each reshaped flow must still move its full remaining
//     volume by its deadline within capacity, or the whole pass rolls
//     back bitwise and the arrival is rejected (cf. PDQ's deadline-
//     aware preemptive re-rating).
//   * The event loop is indexed: admitted in-flight flows live in a
//     deadline-ordered active set, so each event touches O(active +
//     log n) state — completions pop off the front, the residual
//     problem reads the set directly, and the warm rows + path atoms
//     of departed (or rejected) flows are released immediately, so a
//     run over thousands of arrivals keeps memory and per-event cost
//     proportional to the flows actually in flight.
//
// Two policies:
//
//   online_dcfsr   On each event, re-solves the interval relaxation of
//                  Algorithm 2 over the residual demands — warm-started
//                  from the previous event's per-flow fractional flows,
//                  stepping with pairwise Frank-Wolfe whenever warm
//                  mass is carried (OnlineOptions::warm_step_rule), and
//                  reusing one RelaxationWorkspace across the whole
//                  run, so a re-solve costs a fraction of a cold solve —
//                  then draws the new arrivals' paths by randomized
//                  rounding with admitted flows pinned to their
//                  circuits. Completions between arrivals take the
//                  departures-only fast path (a single gap check) in
//                  place of a full relaxation. When every flow arrives
//                  at t = 0 this degenerates to exactly offline
//                  Random-Schedule (asserted by
//                  tests/online_differential_test.cc).
//   online_greedy  No re-solve: each arrival is routed on the path of
//                  minimum marginal energy against the committed load
//                  (the greedy baseline's rule) and admitted at its
//                  density rate when capacity allows; when the constant
//                  density does not fit, an EDF-style fallback packs
//                  the flow into the earliest remaining capacity on
//                  that path, and the flow is rejected only when even
//                  that cannot finish by the deadline (or when no path
//                  exists at all — disconnected endpoints are a
//                  rejection, not an abort).
//   oracle_dcfsr   The hindsight baseline for empirical competitive
//                  ratios (cf. DCoflow): every flow is presented in one
//                  batch with full knowledge of the trace, admitted by
//                  exactly the online machinery — joint rounding first,
//                  per-flow fallback after — against the true spans.
//                  When the joint rounding is feasible (always, at
//                  infinite capacity) this IS offline Random-Schedule
//                  bit for bit; under contention the fallback runs
//                  *both* the RCD urgency order and a density-first
//                  order on identical rng streams and keeps whichever
//                  admits more (a single fixed order is beatable by the
//                  online policies it is supposed to bound — cf.
//                  DCoflow's offline subset selection), the denominator
//                  of bench_online's cr_admit and cr_energy columns.
#pragma once

#include <cstdint>
#include <vector>

#include "common/piecewise.h"
#include "common/random.h"
#include "dcfsr/random_schedule.h"
#include "flow/flow.h"
#include "graph/graph.h"
#include "online/load_index.h"
#include "power/power_model.h"
#include "schedule/schedule.h"

namespace dcn {

/// Order in which the per-flow admission fallback tries an arrival
/// batch after joint batch admission fails.
enum class FallbackAdmissionOrder : std::int32_t {
  /// Closest deadline first, then higher density, then id — the
  /// RCD-style urgency order (Noormohammadpour et al.): urgent, hard-
  /// to-place flows draw their paths while the committed load is
  /// lightest, instead of burning the batch's admission budget on
  /// whichever flows happened to get low ids.
  kDeadlineDensity = 0,
  /// Ascending flow id (the historical order; kept for A/B runs).
  kFlowId = 1,
};

struct OnlineOptions {
  /// Relaxation + rounding knobs of the per-event re-solve
  /// (online_dcfsr only). The rounding attempt budget doubles as the
  /// per-event admission budget.
  RandomScheduleOptions rounding;
  /// Step rule for re-solves that carry warm mass (at least one
  /// admitted flow still in flight). Pairwise Frank-Wolfe sheds the
  /// mass an arrival made suboptimal in a handful of steps; events
  /// with nothing carried (the first event in particular) always use
  /// the configured rounding.relaxation rule, which keeps the
  /// all-at-t=0 degenerate case bit-identical to offline dcfsr.
  FrankWolfeStepRule warm_step_rule = FrankWolfeStepRule::kPairwise;
  /// Per-flow admission order after a failed joint batch admission.
  FallbackAdmissionOrder fallback_order = FallbackAdmissionOrder::kDeadlineDensity;
  /// Departures-only fast path: when admitted flows completed strictly
  /// between two arrival events, the carried problem changed by
  /// removal only and the remaining warm rows stay feasible — instead
  /// of a full relaxation the completion point gets a single gap check
  /// (a one-iteration warm re-solve) that certifies the rows or
  /// improves them one step against the freed capacity.
  bool departures_fast_path = true;
  /// Lookahead window W for the per-event re-solves (online_dcfsr
  /// only); 0 keeps today's full-horizon behavior bit for bit. With
  /// W > 0 every residual flow whose deadline lies past now + W enters
  /// the *relaxation* clipped to [release, now + W] at its original
  /// density (volume scaled to the clipped span) — near-deadline
  /// decisions only need a short lookahead (cf. RCD) and the interval
  /// decomposition shrinks with W instead of the longest remaining
  /// span. Admission stays sound at any W: the randomized rounding's
  /// capacity accept/reject and the per-flow fallback always check the
  /// *true* spans against the committed load, so a finite window can
  /// never break an admitted deadline (asserted across the property
  /// sweep). A window covering every span is bit-identical to W = 0.
  double lookahead_window = 0.0;
  /// Admission epoch (online_dcfsr only); 0 keeps one event per
  /// distinct release time (today's behavior bit for bit). With
  /// epoch > 0 all arrivals whose releases land within `epoch` of the
  /// event's first arrival are admitted in a single joint re-solve —
  /// the event's decision point stays the *first* release (completions
  /// pop and residual volumes shrink to it, so the joint capacity
  /// check covers every batched span soundly); admitted batch members
  /// keep their true releases and densities. This trades up to `epoch`
  /// of extra decision latency (in trace time) for ~arrival_rate*epoch
  /// fewer re-solves per unit time.
  double epoch = 0.0;
  /// Deadline-safe re-rating of admitted flows (the online_dcfsr_preempt
  /// solver; online_dcfsr only). When an arrival does not fit against
  /// the committed load — after the usual rounding attempts — a re-rate
  /// pass may reshape the *future* rate profiles of admitted in-flight
  /// flows that share an edge with the candidate path: their committed
  /// futures are retracted from the load index, the arrival is placed
  /// at its density, and each displaced flow is repacked within
  /// [now, deadline] — at its flat residual density when that still
  /// fits, else into the earliest remaining capacity (EDF) on its
  /// committed path. Paths are never changed and the past is never
  /// rewritten. The commit barrier: if any displaced flow cannot move
  /// its full remaining volume by its deadline within capacity, every
  /// profile is restored bitwise and the arrival is rejected — no
  /// previously admitted deadline is ever broken (property-swept with
  /// the audit shadow on, packet-sim replayed). Re-rated flows re-enter
  /// subsequent relaxations pinned to their paths with residual-size
  /// demands (their warm rows are dropped: the rows route the original
  /// density, which a reshaped profile no longer has). false is
  /// byte-identical to the plain event loop.
  bool allow_rerate = false;
  /// Differential audit: the EdgeLoadIndex keeps a naive never-pruned
  /// StepFunction shadow and cross-checks every probe bitwise (tests;
  /// far too slow for large runs). Also sweeps warm-state hygiene at
  /// every event: a flow that is not admitted-and-in-flight must hold
  /// no warm rows or path atoms.
  bool audit_load_index = false;
};

struct OnlineResult {
  /// One entry per input flow: admitted flows carry their committed
  /// path and rate segments, rejected flows are empty.
  Schedule schedule;
  std::vector<bool> admitted;

  std::int32_t num_admitted = 0;
  std::int32_t num_rejected = 0;
  /// Distinct arrival times processed.
  std::int32_t num_events = 0;

  // online_dcfsr diagnostics.
  std::int32_t resolves = 0;            // full relaxation re-solves
  std::int64_t fw_iterations = 0;       // total Frank-Wolfe iterations
  std::int32_t rounding_attempts = 0;   // total rounding draws
  std::int32_t batch_fallbacks = 0;     // events demoted to per-flow admission
  /// Departures-only fast path: completion windows handled by a single
  /// gap check instead of a full relaxation, and the (one-per-interval)
  /// Frank-Wolfe iterations those checks spent — kept out of
  /// fw_iterations so the warm-start economy of the full re-solves
  /// stays directly comparable across runs.
  std::int32_t departure_gap_checks = 0;
  std::int64_t gap_check_iterations = 0;
  /// Per-phase Frank-Wolfe work summed over every relaxation call this
  /// run made (full re-solves and departure gap checks alike). The
  /// counters are deterministic — byte-identical across --jobs and
  /// oracle thread counts — and may surface as engine stats; the
  /// seconds are wall time and must stay out of canonical output.
  FrankWolfeStats fw_stats;
  /// LB of the first re-solve; equals the offline relaxation LB when
  /// every flow arrives at the first event.
  double first_lower_bound = 0.0;

  /// Largest number of admitted flows simultaneously in flight at any
  /// event — the working-set size the indexed event loop keeps warm
  /// state for (memory scales with this, not with the offered total).
  std::int32_t peak_in_flight = 0;

  /// Load-index health: the largest live-breakpoint count any edge's
  /// profile ever held, and the total breakpoints the low-water-mark
  /// pruning folded away. peak_live_segments is what bounds probe
  /// cost; segments_pruned is how much history the flat per-event
  /// claim did *not* have to carry. Deterministic (canonical-safe).
  std::int32_t peak_live_segments = 0;
  std::int64_t load_segments_pruned = 0;

  /// Wall-clock admission-decision latency per arrival, in the order
  /// decisions were made: each arrival is charged its event's
  /// processing time (every member of an epoch batch gets the batch's
  /// joint solve time — that is the latency a caller of the decision
  /// would see). Wall time: must never reach canonical output or
  /// stats; bench_online folds it into p50/p99 columns via
  /// SolverOutcome::timings.
  std::vector<double> decision_latency_ms;

  // online_greedy diagnostics.
  std::int32_t edf_fallbacks = 0;       // admissions via the EDF fill

  // Re-rating diagnostics (OnlineOptions::allow_rerate; all zero
  // otherwise). Deterministic — the pass consumes no rng.
  std::int32_t rerate_attempts = 0;  // re-rate passes tried
  std::int32_t rerate_commits = 0;   // passes that stuck (arrival admitted)
  std::int32_t rerated_flows = 0;    // in-flight profiles reshaped (cumulative)

  // oracle_dcfsr diagnostics: admitted counts of the two contended
  // fallback orders (-1 when the joint rounding was feasible and the
  // fallback never ran). The oracle keeps the better set.
  std::int32_t oracle_rcd_admitted = -1;
  std::int32_t oracle_density_admitted = -1;
};

/// Builds the flow subset selected by `admitted` with ids renumbered to
/// positions, and the matching schedule rows — the replayable view of
/// an online run (replay/packet-sim validate admitted flows only;
/// rejected flows receive no service by design).
[[nodiscard]] std::pair<std::vector<Flow>, Schedule> admitted_subset(
    const std::vector<Flow>& flows, const Schedule& schedule,
    const std::vector<bool>& admitted);

/// Runs the online loop with per-event relaxation re-solves (see file
/// comment). `rng` drives the randomized rounding; passing the offline
/// dcfsr stream makes the all-arrivals-at-t=0 case bit-identical to
/// offline Random-Schedule.
[[nodiscard]] OnlineResult online_dcfsr(const Graph& g,
                                        const std::vector<Flow>& flows,
                                        const PowerModel& model, Rng& rng,
                                        const OnlineOptions& options = {});

/// Runs the greedy online loop: marginal-energy routing, density-rate
/// admission with EDF fallback. Deterministic (no rng). Only
/// audit_load_index is read from `options` (the greedy loop has no
/// re-solves to window or batch).
[[nodiscard]] OnlineResult online_greedy(const Graph& g,
                                         const std::vector<Flow>& flows,
                                         const PowerModel& model,
                                         const OnlineOptions& options = {});

/// Hindsight admission oracle (see file comment): offline dcfsr over
/// the whole trace with admission control — joint randomized rounding,
/// then a per-flow fallback run in both the RCD and the density-first
/// order (identical rng streams), keeping whichever admits more.
/// Passing the offline dcfsr rng stream makes the joint-feasible case
/// bit-identical to offline Random-Schedule. The denominator of
/// empirical competitive ratios.
[[nodiscard]] OnlineResult oracle_dcfsr(const Graph& g,
                                        const std::vector<Flow>& flows,
                                        const PowerModel& model, Rng& rng,
                                        const OnlineOptions& options = {});

/// EDF-style fallback fill: packs `volume` into the earliest remaining
/// capacity of `path` within `span` against the committed per-edge
/// load, one segment per elementary piece of constant committed load.
/// Returns the segments, or an empty vector when even the full
/// remaining capacity cannot finish the volume by span.hi (to the
/// relative tolerance of the admission slack). The cut collection and
/// per-piece load probes read only the span window of the index (plus
/// pruning, this is what makes the fill O(segments in span) instead of
/// O(total history)); in audit mode the result is cross-checked
/// against the reference overload below on the naive shadow.
[[nodiscard]] std::vector<RateSegment> edf_fill(const EdgeLoadIndex& load,
                                                const Path& path,
                                                const Interval& span,
                                                double volume, double capacity);

/// Reference implementation of the fill against plain StepFunctions —
/// scans every segment of each edge's full profile. Kept as the
/// differential baseline (audit mode and tests/edf_fill_test.cc); the
/// schedulers route through the indexed overload above.
[[nodiscard]] std::vector<RateSegment> edf_fill(
    const std::vector<StepFunction>& load, const Path& path,
    const Interval& span, double volume, double capacity);

}  // namespace dcn
