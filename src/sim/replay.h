// Independent schedule replay / validation.
//
// replay_schedule() re-executes a Schedule with a deliberately separate
// mechanism from the analytic evaluator in src/schedule (sorted event
// sweeps per link instead of breakpoint maps), re-verifying every
// feasibility invariant and re-integrating the energy of Eq. 5.
// Agreement between both evaluators is asserted by the integration
// tests; benches use replay as the final word on what a schedule costs
// and whether deadlines held.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/flow.h"
#include "power/power_model.h"
#include "schedule/schedule.h"

namespace dcn {

struct ReplayReport {
  bool ok = true;
  std::vector<std::string> issues;

  double energy = 0.0;          // Phi_f (Eq. 5)
  double dynamic_energy = 0.0;  // mu * integral x^alpha
  double idle_energy = 0.0;     // sigma * horizon * |active links|
  std::int32_t active_links = 0;
  double peak_rate = 0.0;       // max over links and time of x_e(t)
  /// Per-flow volume actually delivered.
  std::vector<double> delivered;

  void fail(std::string message);
};

/// Replays `schedule` for `flows` on `g` and validates:
///  * every flow's path is a valid simple src->dst path,
///  * all transmission happens inside [r_i, d_i],
///  * delivered volume equals w_i (relative tolerance `tol`),
///  * x_e(t) <= capacity at all times.
/// Energy is recomputed from scratch over the flow horizon.
[[nodiscard]] ReplayReport replay_schedule(const Graph& g,
                                           const std::vector<Flow>& flows,
                                           const Schedule& schedule,
                                           const PowerModel& model,
                                           double tol = 1e-6);

}  // namespace dcn
