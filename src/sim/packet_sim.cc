#include "sim/packet_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/contracts.h"
#include "common/piecewise.h"

namespace dcn {

namespace {

struct Packet {
  FlowId flow = -1;
  std::int32_t seq = 0;        // position within the flow
  double size = 0.0;           // data units (last packet may be short)
  std::size_t hop = 0;         // index into the flow's path
  double priority_key = 0.0;   // smaller = more urgent
  std::int64_t fifo_stamp = 0; // arrival order tie-break
};

struct PacketOrder {
  bool operator()(const Packet& a, const Packet& b) const {
    // std::priority_queue is a max-heap; invert for smallest-first.
    if (a.priority_key != b.priority_key) return a.priority_key > b.priority_key;
    if (a.flow != b.flow) return a.flow > b.flow;
    return a.seq > b.seq;
  }
};

struct Event {
  double time = 0.0;
  enum class Kind { kSourceRelease, kServiceDone } kind = Kind::kSourceRelease;
  EdgeId link = kInvalidEdge;  // for kServiceDone
  Packet packet;
  std::int64_t stamp = 0;  // deterministic tie-break

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.stamp > b.stamp;
  }
};

struct LinkState {
  std::priority_queue<Packet, std::vector<Packet>, PacketOrder> queue;
  bool busy = false;
  std::int64_t peak_queue = 0;
};

/// time_to_accumulate with float-slop clamping: serving the final
/// packet of an exactly-sized schedule can come up short by rounding
/// error; when the missing volume is negligible, finish at the end of
/// the function's support instead of never.
double accumulate_or_clamp(const StepFunction& fn, double from, double volume,
                           double support_end) {
  const double t = fn.time_to_accumulate(from, volume);
  if (std::isfinite(t)) return t;
  const double got = fn.integral_between(from, support_end);
  if (volume - got <= 1e-6 * volume + 1e-9) return support_end;
  return std::numeric_limits<double>::infinity();
}

/// Latest time with positive value (support supremum); `fallback` when
/// the function is identically zero.
double support_end_of(const StepFunction& fn, double fallback) {
  const auto segs = fn.segments();
  return segs.empty() ? fallback : segs.back().first.hi;
}

/// Completion time of a packet of `size` whose service starts at `now`
/// on a link with scheduled rate segments `segs` (sorted).
///
/// The link serves at the rate sampled at service start. When the
/// scheduled rate at `now` is zero but an earlier window existed, the
/// link *drains* at the most recent window's rate — a real switch
/// finishes its queued packets at line rate before powering down, which
/// is exactly the O(packet-size) grace the fluid model's sharp window
/// edges require (a packet that misses its fluid window by a pipeline
/// fill must not wait for an unrelated later window). Before the first
/// window the packet waits for it. Infinite only for an always-off link.
double sampled_service_done(const std::vector<std::pair<Interval, double>>& segs,
                            double now, double size) {
  if (segs.empty()) return std::numeric_limits<double>::infinity();
  // Last segment starting at or before `now`.
  auto it = std::upper_bound(
      segs.begin(), segs.end(), now,
      [](double t, const auto& seg) { return t < seg.first.lo; });
  if (it == segs.begin()) {
    // Before the first window: wait for it, then serve at its rate.
    return segs.front().first.lo + size / segs.front().second;
  }
  const auto& seg = *std::prev(it);
  // Inside the window, or past it (drain at the window's rate).
  return now + size / seg.second;
}

}  // namespace

PacketSimReport packet_simulate(const Graph& g, const std::vector<Flow>& flows,
                                const Schedule& schedule,
                                const PacketSimOptions& options) {
  DCN_EXPECTS(options.packet_size > 0.0);
  DCN_EXPECTS(options.allowance_multiplier >= 1.0);
  DCN_EXPECTS(schedule.flows.size() == flows.size());
  validate_flows(g, flows);

  const std::vector<StepFunction> rates = link_timelines(g, schedule);
  std::vector<std::vector<std::pair<Interval, double>>> link_segments(
      static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    link_segments[static_cast<std::size_t>(e)] =
        rates[static_cast<std::size_t>(e)].segments();
  }

  PacketSimReport report;
  report.completion_time.assign(flows.size(),
                                -std::numeric_limits<double>::infinity());
  report.lateness.assign(flows.size(), 0.0);
  report.pipeline_allowance.assign(flows.size(), 0.0);

  // Per-flow cumulative-rate function at the source (for packet release
  // times) and priority keys.
  std::vector<double> priority_key(flows.size(), 0.0);
  std::vector<std::int64_t> expected_packets(flows.size(), 0);
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::int64_t stamp = 0;
  std::int64_t source_starved_ = 0;

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Flow& flow = flows[i];
    const FlowSchedule& fs = schedule.flows[i];
    DCN_EXPECTS(!fs.path.empty());

    StepFunction source_rate;
    double min_rate = std::numeric_limits<double>::infinity();
    double first_start = std::numeric_limits<double>::infinity();
    for (const RateSegment& seg : fs.segments) {
      source_rate.add(seg.interval, seg.rate);
      min_rate = std::min(min_rate, seg.rate);
      first_start = std::min(first_start, seg.interval.lo);
    }
    switch (options.priority) {
      case PacketSimOptions::Priority::kEdf:
        priority_key[i] = flow.deadline;
        break;
      case PacketSimOptions::Priority::kStartTime:
        priority_key[i] = first_start;
        break;
      case PacketSimOptions::Priority::kFifo:
        priority_key[i] = 0.0;  // pure FIFO: stamps decide
        break;
    }
    // Per remaining hop, a straggler pays at most one service time plus
    // a cross-traffic residual, and past a fluid window's sharp edge it
    // drains at whatever rate the link runs next — so the envelope uses
    // the slowest positive rate any link of the path ever runs at.
    double slowest_link_rate = min_rate;
    for (EdgeId e : fs.path.edges) {
      for (const auto& [iv, v] : link_segments[static_cast<std::size_t>(e)]) {
        slowest_link_rate = std::min(slowest_link_rate, v);
      }
    }
    report.pipeline_allowance[i] =
        2.0 *
        static_cast<double>(fs.path.length() > 0 ? fs.path.length() - 1 : 0) *
        options.packet_size / slowest_link_rate;

    // Packetize: packet p becomes available at the source when the
    // scheduled cumulative volume reaches (p+1) * S (its data exists).
    const auto full_packets =
        static_cast<std::int64_t>(std::floor(flow.volume / options.packet_size));
    const double tail = flow.volume - static_cast<double>(full_packets) *
                                          options.packet_size;
    // Release times: the flow's scheduled emission IS its first-hop
    // transmission; packet p is fully received by the first relay when
    // the cumulative scheduled volume reaches (p+1) * S, and then has
    // the remaining |P| - 1 hops to travel.
    const double source_end = support_end_of(source_rate, flow.deadline);
    std::int32_t seq = 0;
    double cumulative = 0.0;
    auto release_packet = [&](double size) {
      cumulative += size;
      const double ready =
          accumulate_or_clamp(source_rate, flow.release, cumulative, source_end);
      ++seq;
      if (!std::isfinite(ready)) {
        // The schedule never emits this packet's data: volume-short
        // schedule. Counted as starved; the verdict will be negative.
        ++source_starved_;
        return;
      }
      events.push({ready, Event::Kind::kSourceRelease, kInvalidEdge,
                   Packet{flow.id, seq - 1, size, 1, priority_key[i], 0},
                   stamp++});
    };
    for (std::int64_t p = 0; p < full_packets; ++p) {
      release_packet(options.packet_size);
    }
    if (tail > 1e-12 * flow.volume) release_packet(tail);
    expected_packets[i] = seq;
  }

  std::vector<LinkState> links(static_cast<std::size_t>(g.num_edges()));
  std::int64_t fifo_counter = 0;
  std::int64_t starved_packets = source_starved_;

  // Starts service on `link` if idle and work is queued.
  const auto try_start_service = [&](EdgeId link, double now) {
    LinkState& state = links[static_cast<std::size_t>(link)];
    while (!state.busy && !state.queue.empty()) {
      const Packet packet = state.queue.top();
      state.queue.pop();
      const double done = sampled_service_done(
          link_segments[static_cast<std::size_t>(link)], now, packet.size);
      if (!std::isfinite(done)) {
        // Only possible for a link whose timeline is identically zero —
        // a schedule that never carried this flow at all.
        ++starved_packets;
        continue;
      }
      state.busy = true;
      events.push({done, Event::Kind::kServiceDone, link, packet, stamp++});
    }
  };

  const auto enqueue_at_hop = [&](Packet packet, double now) {
    const FlowSchedule& fs = schedule.flows[static_cast<std::size_t>(packet.flow)];
    if (packet.hop >= fs.path.length()) {
      // Delivered.
      ++report.packets_delivered;
      auto& completion =
          report.completion_time[static_cast<std::size_t>(packet.flow)];
      completion = std::max(completion, now);
      return;
    }
    const EdgeId link = fs.path.edges[packet.hop];
    packet.fifo_stamp = fifo_counter++;
    if (options.priority == PacketSimOptions::Priority::kFifo) {
      packet.priority_key = static_cast<double>(packet.fifo_stamp);
    }
    LinkState& state = links[static_cast<std::size_t>(link)];
    state.queue.push(packet);
    state.peak_queue = std::max(
        state.peak_queue, static_cast<std::int64_t>(state.queue.size()));
    try_start_service(link, now);
  };

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    ++report.events_processed;
    switch (ev.kind) {
      case Event::Kind::kSourceRelease:
        enqueue_at_hop(ev.packet, ev.time);
        break;
      case Event::Kind::kServiceDone: {
        LinkState& state = links[static_cast<std::size_t>(ev.link)];
        state.busy = false;
        Packet packet = ev.packet;
        ++packet.hop;
        enqueue_at_hop(packet, ev.time);
        try_start_service(ev.link, ev.time);
        break;
      }
    }
  }

  // Verdicts.
  std::int64_t expected_total = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    expected_total += expected_packets[i];
    const double completion = report.completion_time[i];
    report.lateness[i] = std::max(0.0, completion - flows[i].deadline);
    report.max_lateness = std::max(report.max_lateness, report.lateness[i]);
    if (!std::isfinite(completion) ||
        report.lateness[i] > options.allowance_multiplier *
                                     report.pipeline_allowance[i] * (1.0 + 1e-6) +
                                 1e-9) {
      report.all_deadlines_met = false;
    }
  }
  report.packets_starved = starved_packets;
  if (report.packets_delivered != expected_total) {
    report.all_deadlines_met = false;  // lost packets
  }
  for (const LinkState& state : links) {
    report.max_queue_packets = std::max(report.max_queue_packets, state.peak_queue);
  }
  return report;
}

}  // namespace dcn
