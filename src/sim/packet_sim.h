// Discrete-event store-and-forward packet simulator.
//
// The optimality analysis of Sec. III treats flows as fluids on virtual
// circuits; Sec. III-C argues the schedule is realizable in a real
// packet-switched network by stamping each packet with its flow's
// priority. This simulator tests that claim executably:
//
//  * every flow is chopped into packets of `packet_size` data units,
//    released at the source as the flow's scheduled rate function
//    delivers them;
//  * every directed link serves one packet at a time (store-and-
//    forward, output-queued) at the time-varying rate x_e(t) that the
//    fluid schedule assigned to that link — a packet of size S occupies
//    the link until integral x_e dt over the service period reaches S;
//  * contending packets are ordered by a configurable priority: EDF
//    (flow deadline), the paper's start-time rule (r'_i), or FIFO.
//
// The fluid model ignores per-hop pipelining, so a packetized flow
// finishes up to about (|P_i| - 1) * S / s_i later than its fluid
// counterpart; this "pipeline fill" shrinks linearly with the packet
// size (tested), vanishing in the fluid limit — which is exactly the
// sense in which the paper's schedules are realizable.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/flow.h"
#include "schedule/schedule.h"

namespace dcn {

struct PacketSimOptions {
  /// Data units per packet (the last packet of a flow may be smaller).
  double packet_size = 0.05;

  enum class Priority {
    kEdf,        // earlier flow deadline first (default)
    kStartTime,  // earlier scheduled start first (the paper's rule)
    kFifo,       // arrival order at each queue
  };
  Priority priority = Priority::kEdf;

  /// The deadline verdict accepts lateness up to this multiple of the
  /// per-flow pipeline allowance. The allowance counts one service time
  /// plus one cross-traffic residual per hop; transient queue waits
  /// behind bursty cross traffic add a small constant factor on top
  /// (observed <= 4x on the paper's workloads). Both are linear in the
  /// packet size, so the verdict tightens to the fluid deadline as
  /// packets shrink.
  double allowance_multiplier = 6.0;
};

struct PacketSimReport {
  /// True when every flow's last packet reached the destination by the
  /// flow deadline plus twice its `pipeline_allowance` (see below) —
  /// i.e. within the store-and-forward envelope that vanishes with the
  /// packet size. Callers needing strict verdicts use `lateness`.
  bool all_deadlines_met = true;

  /// Per flow: arrival time of the last packet at the destination.
  std::vector<double> completion_time;
  /// Per flow: max(0, completion - deadline) — raw fluid-model lateness
  /// (includes the unavoidable pipeline fill).
  std::vector<double> lateness;
  double max_lateness = 0.0;

  /// Per flow: the pipeline-fill allowance
  ///   2 * (|P_i| - 1) * S / (slowest positive rate on any link of P_i):
  /// one service time plus one cross-traffic residual per remaining
  /// hop, paid at the slowest rate the flow's links ever run at (a
  /// straggler past a fluid window's sharp edge drains at the link's
  /// next operating rate). Linear in S: vanishes in the fluid limit.
  std::vector<double> pipeline_allowance;

  std::int64_t packets_delivered = 0;
  /// Packets the fluid schedule could never serve (non-zero only for
  /// schedules that were already volume-infeasible).
  std::int64_t packets_starved = 0;
  std::int64_t events_processed = 0;
  /// Largest queue length observed on any link (packets).
  std::int64_t max_queue_packets = 0;
};

/// Simulates `schedule` at packet granularity. The schedule must be
/// replay-feasible (volumes, spans); link service rates are taken from
/// the schedule's own link timelines.
[[nodiscard]] PacketSimReport packet_simulate(const Graph& g,
                                              const std::vector<Flow>& flows,
                                              const Schedule& schedule,
                                              const PacketSimOptions& options = {});

}  // namespace dcn
