#include "sim/replay.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/contracts.h"

namespace dcn {

void ReplayReport::fail(std::string message) {
  ok = false;
  issues.push_back(std::move(message));
}

ReplayReport replay_schedule(const Graph& g, const std::vector<Flow>& flows,
                             const Schedule& schedule, const PowerModel& model,
                             double tol) {
  ReplayReport report;
  if (schedule.flows.size() != flows.size()) {
    report.fail("schedule/flow count mismatch");
    return report;
  }
  const Interval horizon = flow_horizon(flows);

  // Per-link event lists: (time, +rate/-rate).
  std::vector<std::vector<std::pair<double, double>>> events(
      static_cast<std::size_t>(g.num_edges()));
  report.delivered.assign(flows.size(), 0.0);

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Flow& fl = flows[i];
    const FlowSchedule& fs = schedule.flows[i];
    std::ostringstream tag;
    tag << "flow#" << fl.id << ": ";

    if (!is_valid_path(g, fs.path) || fs.path.src != fl.src ||
        fs.path.dst != fl.dst || fs.path.empty()) {
      report.fail(tag.str() + "invalid path");
      continue;
    }
    const double time_tol = tol * std::max(1.0, fl.deadline - fl.release);
    for (const RateSegment& seg : fs.segments) {
      if (seg.interval.empty() || seg.rate <= 0.0) {
        report.fail(tag.str() + "degenerate segment");
        continue;
      }
      if (seg.interval.lo < fl.release - time_tol ||
          seg.interval.hi > fl.deadline + time_tol) {
        report.fail(tag.str() + "transmission outside the span");
      }
      report.delivered[i] += seg.rate * seg.interval.measure();
      for (EdgeId e : fs.path.edges) {
        events[static_cast<std::size_t>(e)].emplace_back(seg.interval.lo, seg.rate);
        events[static_cast<std::size_t>(e)].emplace_back(seg.interval.hi, -seg.rate);
      }
    }
    if (std::fabs(report.delivered[i] - fl.volume) >
        tol * std::max(1.0, fl.volume)) {
      std::ostringstream msg;
      msg << tag.str() << "delivered " << report.delivered[i] << " of "
          << fl.volume;
      report.fail(msg.str());
    }
  }

  // Sweep every link: accumulate rate between events, integrate power.
  const double rate_eps = 1e-9;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    auto& ev = events[static_cast<std::size_t>(e)];
    if (ev.empty()) continue;
    std::sort(ev.begin(), ev.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second < b.second;  // process -rate before +rate at a tie
    });
    double rate = 0.0;
    double prev = ev.front().first;
    double link_dynamic = 0.0;
    bool link_active = false;
    for (const auto& [time, delta] : ev) {
      if (time > prev && rate > rate_eps) {
        link_dynamic += model.g(rate) * (time - prev);
        link_active = true;
        report.peak_rate = std::max(report.peak_rate, rate);
      }
      rate += delta;
      prev = time;
    }
    if (std::fabs(rate) > rate_eps) {
      report.fail("link e" + std::to_string(e) + ": unbalanced rate events");
    }
    if (link_active) {
      ++report.active_links;
      report.dynamic_energy += link_dynamic;
    }
  }

  if (report.peak_rate > model.capacity() * (1.0 + tol)) {
    std::ostringstream msg;
    msg << "peak link rate " << report.peak_rate << " exceeds capacity "
        << model.capacity();
    report.fail(msg.str());
  }

  report.idle_energy = model.sigma() * horizon.measure() *
                       static_cast<double>(report.active_links);
  report.energy = report.idle_energy + report.dynamic_energy;
  return report;
}

}  // namespace dcn
