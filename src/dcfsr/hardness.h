// Instance builders for the NP-hardness constructions of Sec. IV-B.
//
// Theorem 2 reduces 3-partition to DCFSR on a parallel-link network: 3m
// flows with volumes a_1..a_3m (sum mB, each in (B/4, B/2)) must cross
// from src to dst within one unit of time; with sigma = mu*(alpha-1)*B^alpha
// (so R_opt = B) a schedule of energy m*alpha*mu*B^alpha exists iff the
// integers 3-partition. Theorem 3 uses the same network with partition
// volumes to derive the inapproximability bound
// 3/2 * (1 + ((2/3)^alpha - 1)/alpha).
//
// These builders are exercised by tests (verifying the energy identities
// the proofs rely on) and by bench_hardness (tabulating the bound).
#pragma once

#include <cstdint>
#include <vector>

#include "flow/flow.h"
#include "power/power_model.h"
#include "topology/topology.h"

namespace dcn {

/// A hardness gadget instance: the parallel-link network plus flows and
/// the calibrated power model.
struct HardnessInstance {
  Topology topology;
  std::vector<Flow> flows;
  PowerModel model;
  /// The decision threshold Phi_0 of Theorem 2 (energy of a perfect
  /// partition schedule).
  double phi0 = 0.0;
};

/// Theorem 2 instance: `volumes` must hold 3m values summing to m*B.
/// Builds k >= m parallel links, unit time horizon, and the calibrated
/// model with R_opt = B.
[[nodiscard]] HardnessInstance three_partition_instance(
    const std::vector<double>& volumes, double b, double mu, double alpha,
    std::int32_t links);

/// Energy of scheduling volume groups on separate links, each link
/// running at constant rate (sum of its group) for the unit horizon —
/// the quantity compared against phi0 in the reduction.
[[nodiscard]] double grouped_energy(const HardnessInstance& instance,
                                    const std::vector<std::vector<std::size_t>>& groups);

}  // namespace dcn
