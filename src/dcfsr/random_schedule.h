// Random-Schedule — the approximation algorithm for DCFSR
// (Algorithm 2 of the paper).
//
// Pipeline: multi-interval fractional relaxation (src/mcf) -> candidate
// path sets Q_i with aggregated weights wbar -> randomized rounding (one
// path per flow, drawn with probability wbar_P) -> per-interval rate
// assignment.
//
// Rate assignment: the paper sets every flow crossing link e in interval
// I_k to rate sum_{j in J_e(k)} D_j and time-shares the link with EDF;
// the link is then busy for the whole interval at exactly that rate. We
// represent the *fluid equivalent*: each flow transmits at its density
// D_i over its entire span on its chosen path. Both produce identical
// link-rate timelines (x_e(t) = sum of active densities), identical
// energy Phi_f, and meet every deadline (Theorem 4); the EDF variant
// only reorders which flow's packets occupy the link within an
// interval. See DESIGN.md.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "flow/flow.h"
#include "mcf/relaxation.h"
#include "power/power_model.h"
#include "schedule/schedule.h"

namespace dcn {

struct RandomScheduleOptions {
  RelaxationOptions relaxation;
  /// Re-roundings attempted when a rounding violates link capacity
  /// (the paper: "repeat the randomized rounding process until we
  /// obtain a feasible solution").
  std::int32_t max_rounding_attempts = 50;
  /// When > 1, draws this many capacity-feasible roundings and keeps
  /// the lowest-energy one (ablation A5; 1 = the paper's algorithm).
  std::int32_t best_of = 1;
};

struct RandomScheduleResult {
  Schedule schedule;
  /// Phi_f of the produced schedule over the flow horizon.
  double energy = 0.0;
  /// LB: optimum of the fractional relaxation (Fig. 2 normalizer).
  double lower_bound_energy = 0.0;
  /// Interval-granularity parameter of Theorem 6.
  double lambda = 0.0;
  /// Roundings drawn before (and including) the accepted one.
  std::int32_t rounding_attempts = 0;
  /// False when no capacity-feasible rounding was found within the
  /// attempt budget (the returned schedule is the last draw).
  bool capacity_feasible = true;
  /// Diagnostic: mean Frank-Wolfe gap of the interval solves.
  double mean_relative_gap = 0.0;
  /// Per-phase Frank-Wolfe work of the relaxation stage (counters are
  /// deterministic; the seconds are wall time — diagnostics only).
  FrankWolfeStats fw_stats;
};

/// One wbar draw for a single flow. Every sampling site (offline
/// rounding, online joint-batch rounding, online per-flow admission)
/// funnels through here, so rng consumption stays identical by
/// construction across them. `weights` is caller-provided scratch.
[[nodiscard]] const Path& draw_path(const FlowCandidates& candidates, Rng& rng,
                                    std::vector<double>& weights);

/// Draws one path per flow from its candidate distribution.
[[nodiscard]] std::vector<Path> sample_paths(const std::vector<FlowCandidates>& candidates,
                                             Rng& rng);

/// The fluid rate assignment: flow i transmits at density D_i over its
/// whole span on paths[i].
[[nodiscard]] Schedule density_schedule(const std::vector<Flow>& flows,
                                        const std::vector<Path>& paths);

/// Runs the full Algorithm 2 pipeline.
[[nodiscard]] RandomScheduleResult random_schedule(const Graph& g,
                                                   const std::vector<Flow>& flows,
                                                   const PowerModel& model, Rng& rng,
                                                   const RandomScheduleOptions& options = {});

/// Reruns only the rounding + rate-assignment stage on a precomputed
/// relaxation (for rounding ablations; avoids re-solving the convex
/// programs).
///
/// `forced_paths`, when non-null, must have one entry per flow; a
/// non-null entry pins that flow to the given path — no draw, no rng
/// consumption — while null entries sample from the flow's candidates
/// as usual. The online scheduler uses this to hold admitted flows on
/// their committed virtual circuits while routing new arrivals. With
/// forced_paths null (or all-null) the rng consumption is identical to
/// the unforced overload.
[[nodiscard]] RandomScheduleResult round_relaxation(
    const Graph& g, const std::vector<Flow>& flows, const PowerModel& model,
    const FractionalRelaxation& relaxation, Rng& rng,
    const RandomScheduleOptions& options = {},
    const std::vector<const Path*>* forced_paths = nullptr);

}  // namespace dcn
