#include "dcfsr/random_schedule.h"

#include <limits>
#include <utility>

#include "common/contracts.h"

namespace dcn {

const Path& draw_path(const FlowCandidates& candidates, Rng& rng,
                      std::vector<double>& weights) {
  DCN_EXPECTS(!candidates.paths.empty());
  weights.clear();
  weights.reserve(candidates.paths.size());
  for (const WeightedPath& wp : candidates.paths) weights.push_back(wp.weight);
  return candidates.paths[rng.weighted_index(weights)].path;
}

std::vector<Path> sample_paths(const std::vector<FlowCandidates>& candidates,
                               Rng& rng) {
  std::vector<Path> paths;
  paths.reserve(candidates.size());
  std::vector<double> weights;
  for (const FlowCandidates& cand : candidates) {
    paths.push_back(draw_path(cand, rng, weights));
  }
  return paths;
}

Schedule density_schedule(const std::vector<Flow>& flows,
                          const std::vector<Path>& paths) {
  DCN_EXPECTS(paths.size() == flows.size());
  Schedule schedule;
  schedule.flows.resize(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    FlowSchedule& fs = schedule.flows[i];
    fs.path = paths[i];
    fs.segments = {{flows[i].span(), flows[i].density()}};
  }
  return schedule;
}

namespace {

/// Peak rate over all links; used for the capacity accept/reject step.
double peak_link_rate(const Graph& g, const Schedule& schedule) {
  double peak = 0.0;
  for (const StepFunction& tl : link_timelines(g, schedule)) {
    peak = std::max(peak, tl.max_value());
  }
  return peak;
}

}  // namespace

RandomScheduleResult round_relaxation(const Graph& g, const std::vector<Flow>& flows,
                                      const PowerModel& model,
                                      const FractionalRelaxation& relaxation,
                                      Rng& rng, const RandomScheduleOptions& options,
                                      const std::vector<const Path*>* forced_paths) {
  DCN_EXPECTS(options.max_rounding_attempts >= 1);
  DCN_EXPECTS(options.best_of >= 1);
  DCN_EXPECTS(forced_paths == nullptr || forced_paths->size() == flows.size());

  RandomScheduleResult result;
  result.lower_bound_energy = relaxation.lower_bound_energy;
  result.lambda = relaxation.decomposition.lambda();
  result.mean_relative_gap = relaxation.mean_relative_gap;
  result.fw_stats = relaxation.fw_stats;

  const Interval horizon = flow_horizon(flows);
  double best_energy = std::numeric_limits<double>::infinity();
  std::int32_t feasible_found = 0;

  Schedule last_draw;
  std::vector<double> weights;
  for (std::int32_t attempt = 1; attempt <= options.max_rounding_attempts; ++attempt) {
    result.rounding_attempts = attempt;
    // Pinned flows keep their committed path; the rest draw from their
    // candidate distribution through the same draw_path as
    // sample_paths, so unpinned rounding consumes the rng identically.
    std::vector<Path> paths;
    paths.reserve(relaxation.candidates.size());
    for (std::size_t i = 0; i < relaxation.candidates.size(); ++i) {
      if (forced_paths != nullptr && (*forced_paths)[i] != nullptr) {
        paths.push_back(*(*forced_paths)[i]);
      } else {
        paths.push_back(draw_path(relaxation.candidates[i], rng, weights));
      }
    }
    last_draw = density_schedule(flows, paths);
    if (peak_link_rate(g, last_draw) > model.capacity() * (1.0 + 1e-9)) {
      continue;  // capacity violated: redraw (Algorithm 2 repeat step)
    }
    ++feasible_found;
    const double energy = energy_phi_f(g, last_draw, model, horizon);
    if (energy < best_energy) {
      best_energy = energy;
      result.schedule = std::move(last_draw);
      last_draw = {};
    }
    if (feasible_found >= options.best_of) break;
  }

  if (feasible_found == 0) {
    // No capacity-feasible rounding found; report the last draw so the
    // caller can inspect the violation.
    result.capacity_feasible = false;
    result.schedule = std::move(last_draw);
    result.energy = energy_phi_f(g, result.schedule, model, horizon);
    return result;
  }
  result.capacity_feasible = true;
  result.energy = best_energy;
  return result;
}

RandomScheduleResult random_schedule(const Graph& g, const std::vector<Flow>& flows,
                                     const PowerModel& model, Rng& rng,
                                     const RandomScheduleOptions& options) {
  const FractionalRelaxation relaxation =
      solve_relaxation(g, flows, model, options.relaxation);
  return round_relaxation(g, flows, model, relaxation, rng, options);
}

}  // namespace dcn
