#include "dcfsr/random_schedule.h"

#include <limits>
#include <utility>

#include "common/contracts.h"

namespace dcn {

std::vector<Path> sample_paths(const std::vector<FlowCandidates>& candidates,
                               Rng& rng) {
  std::vector<Path> paths;
  paths.reserve(candidates.size());
  for (const FlowCandidates& cand : candidates) {
    DCN_EXPECTS(!cand.paths.empty());
    std::vector<double> weights;
    weights.reserve(cand.paths.size());
    for (const WeightedPath& wp : cand.paths) weights.push_back(wp.weight);
    paths.push_back(cand.paths[rng.weighted_index(weights)].path);
  }
  return paths;
}

Schedule density_schedule(const std::vector<Flow>& flows,
                          const std::vector<Path>& paths) {
  DCN_EXPECTS(paths.size() == flows.size());
  Schedule schedule;
  schedule.flows.resize(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    FlowSchedule& fs = schedule.flows[i];
    fs.path = paths[i];
    fs.segments = {{flows[i].span(), flows[i].density()}};
  }
  return schedule;
}

namespace {

/// Peak rate over all links; used for the capacity accept/reject step.
double peak_link_rate(const Graph& g, const Schedule& schedule) {
  double peak = 0.0;
  for (const StepFunction& tl : link_timelines(g, schedule)) {
    peak = std::max(peak, tl.max_value());
  }
  return peak;
}

}  // namespace

RandomScheduleResult round_relaxation(const Graph& g, const std::vector<Flow>& flows,
                                      const PowerModel& model,
                                      const FractionalRelaxation& relaxation,
                                      Rng& rng, const RandomScheduleOptions& options) {
  DCN_EXPECTS(options.max_rounding_attempts >= 1);
  DCN_EXPECTS(options.best_of >= 1);

  RandomScheduleResult result;
  result.lower_bound_energy = relaxation.lower_bound_energy;
  result.lambda = relaxation.decomposition.lambda();
  result.mean_relative_gap = relaxation.mean_relative_gap;

  const Interval horizon = flow_horizon(flows);
  double best_energy = std::numeric_limits<double>::infinity();
  std::int32_t feasible_found = 0;

  Schedule last_draw;
  for (std::int32_t attempt = 1; attempt <= options.max_rounding_attempts; ++attempt) {
    result.rounding_attempts = attempt;
    const std::vector<Path> paths = sample_paths(relaxation.candidates, rng);
    last_draw = density_schedule(flows, paths);
    if (peak_link_rate(g, last_draw) > model.capacity() * (1.0 + 1e-9)) {
      continue;  // capacity violated: redraw (Algorithm 2 repeat step)
    }
    ++feasible_found;
    const double energy = energy_phi_f(g, last_draw, model, horizon);
    if (energy < best_energy) {
      best_energy = energy;
      result.schedule = std::move(last_draw);
      last_draw = {};
    }
    if (feasible_found >= options.best_of) break;
  }

  if (feasible_found == 0) {
    // No capacity-feasible rounding found; report the last draw so the
    // caller can inspect the violation.
    result.capacity_feasible = false;
    result.schedule = std::move(last_draw);
    result.energy = energy_phi_f(g, result.schedule, model, horizon);
    return result;
  }
  result.capacity_feasible = true;
  result.energy = best_energy;
  return result;
}

RandomScheduleResult random_schedule(const Graph& g, const std::vector<Flow>& flows,
                                     const PowerModel& model, Rng& rng,
                                     const RandomScheduleOptions& options) {
  const FractionalRelaxation relaxation =
      solve_relaxation(g, flows, model, options.relaxation);
  return round_relaxation(g, flows, model, relaxation, rng, options);
}

}  // namespace dcn
