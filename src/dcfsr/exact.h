// Exact DCFSR solver for tiny instances by exhaustive path enumeration.
//
// DCFSR is strongly NP-hard (Theorem 2), but small instances can be
// solved exactly: enumerate every assignment of flows to candidate
// simple paths (the k shortest per flow, which is all simple paths for
// small k on small graphs), solve the remaining rate-assignment problem
// optimally with Most-Critical-First (Theorem 1), and keep the
// cheapest. Used to decompose the Fig. 2 ratio RS/LB into algorithmic
// and relaxation gaps (bench_exact) — which the paper could not do at
// its evaluation scale.
//
// Scope caveat: the result is the optimum of the paper's
// *virtual-circuit* scheduling model (Sec. III-A: a transmitting flow
// occupies its links exclusively; MCF is optimal under it, Corollary 1).
// Fluid schedules that let flows share a link concurrently — e.g.
// Random-Schedule's density schedules — live outside this space and can
// occasionally beat the virtual-circuit optimum, a model-level finding
// bench_exact surfaces.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/flow.h"
#include "power/power_model.h"
#include "schedule/schedule.h"

namespace dcn {

struct ExactDcfsrOptions {
  /// Candidate paths per flow (Yen's k shortest by hop count). The
  /// search space is paths_per_flow ^ n — keep n * log(paths) tiny.
  std::size_t paths_per_flow = 4;
  /// Hard cap on enumerated assignments; the solver throws
  /// ContractViolation when the instance would exceed it.
  std::int64_t max_assignments = 2'000'000;
};

struct ExactDcfsrResult {
  Schedule schedule;           // the optimal schedule found
  double energy = 0.0;         // Phi_f over the flow horizon
  std::int64_t assignments_tried = 0;
  std::vector<std::size_t> chosen_path_index;  // per flow, into its candidates
};

/// Exhaustively solves DCFSR. Candidate-path energies are evaluated
/// with the circuit-exact Most-Critical-First rate assignment, so the
/// result is optimal over (candidate path choice) x (rates); with
/// paths_per_flow covering all simple paths this is the true optimum
/// of the virtual-circuit model.
[[nodiscard]] ExactDcfsrResult exact_dcfsr(const Graph& g,
                                           const std::vector<Flow>& flows,
                                           const PowerModel& model,
                                           const ExactDcfsrOptions& options = {});

}  // namespace dcn
