#include "dcfsr/exact.h"

#include <limits>

#include "common/contracts.h"
#include "dcfs/most_critical_first.h"
#include "graph/k_shortest.h"

namespace dcn {

ExactDcfsrResult exact_dcfsr(const Graph& g, const std::vector<Flow>& flows,
                             const PowerModel& model,
                             const ExactDcfsrOptions& options) {
  DCN_EXPECTS(options.paths_per_flow >= 1);
  DCN_EXPECTS(options.max_assignments >= 1);
  validate_flows(g, flows);
  DCN_EXPECTS(!flows.empty());

  // Candidate paths per flow: k shortest by hop count.
  const std::vector<double> unit(static_cast<std::size_t>(g.num_edges()), 1.0);
  std::vector<std::vector<Path>> candidates;
  candidates.reserve(flows.size());
  std::int64_t total_assignments = 1;
  for (const Flow& fl : flows) {
    std::vector<Path> paths =
        yen_k_shortest_paths(g, fl.src, fl.dst, unit, options.paths_per_flow);
    DCN_EXPECTS(!paths.empty());
    const auto count = static_cast<std::int64_t>(paths.size());
    DCN_EXPECTS(total_assignments <= options.max_assignments / count);
    total_assignments *= count;
    candidates.push_back(std::move(paths));
  }

  const Interval horizon = flow_horizon(flows);
  ExactDcfsrResult best;
  best.energy = std::numeric_limits<double>::infinity();

  // Odometer enumeration over the assignment space.
  std::vector<std::size_t> index(flows.size(), 0);
  std::vector<Path> assignment(flows.size());
  while (true) {
    for (std::size_t i = 0; i < flows.size(); ++i) {
      assignment[i] = candidates[i][index[i]];
    }
    ++best.assignments_tried;
    try {
      const DcfsResult rates = most_critical_first(g, flows, assignment, model);
      const double energy = energy_phi_f(g, rates.schedule, model, horizon);
      if (energy < best.energy) {
        best.energy = energy;
        best.schedule = rates.schedule;
        best.chosen_path_index = index;
      }
    } catch (const InfeasibleError&) {
      // This assignment admits no virtual-circuit schedule; skip it.
    }

    // Advance the odometer.
    std::size_t digit = 0;
    while (digit < index.size()) {
      if (++index[digit] < candidates[digit].size()) break;
      index[digit] = 0;
      ++digit;
    }
    if (digit == index.size()) break;
  }
  DCN_ENSURES(best.energy < std::numeric_limits<double>::infinity());
  return best;
}

}  // namespace dcn
