#include "dcfsr/hardness.h"

#include <cmath>

#include "common/contracts.h"
#include "topology/builders.h"

namespace dcn {

HardnessInstance three_partition_instance(const std::vector<double>& volumes,
                                          double b, double mu, double alpha,
                                          std::int32_t links) {
  DCN_EXPECTS(!volumes.empty());
  DCN_EXPECTS(volumes.size() % 3 == 0);
  DCN_EXPECTS(b > 0.0);
  DCN_EXPECTS(mu > 0.0);
  DCN_EXPECTS(alpha > 1.0);
  const auto m = static_cast<double>(volumes.size()) / 3.0;
  DCN_EXPECTS(links >= static_cast<std::int32_t>(m));

  // sigma = mu * (alpha - 1) * B^alpha makes R_opt = B (Theorem 2).
  const double sigma = mu * (alpha - 1.0) * std::pow(b, alpha);
  HardnessInstance instance{
      parallel_links(links),
      {},
      PowerModel(sigma, mu, alpha),
      m * alpha * mu * std::pow(b, alpha),
  };

  instance.flows.reserve(volumes.size());
  for (std::size_t i = 0; i < volumes.size(); ++i) {
    DCN_EXPECTS(volumes[i] > 0.0);
    instance.flows.push_back({static_cast<FlowId>(i), /*src=*/0, /*dst=*/1,
                              volumes[i], /*release=*/0.0, /*deadline=*/1.0});
  }
  return instance;
}

double grouped_energy(const HardnessInstance& instance,
                      const std::vector<std::vector<std::size_t>>& groups) {
  // Under Eq. 5 (idle power charged over the full horizon once a link is
  // active), a link carrying total volume V in the unit horizon is
  // cheapest at constant rate V: energy = f(V).
  double total = 0.0;
  for (const auto& group : groups) {
    double volume = 0.0;
    for (std::size_t i : group) {
      DCN_EXPECTS(i < instance.flows.size());
      volume += instance.flows[i].volume;
    }
    if (volume > 0.0) total += instance.model.f(volume);
  }
  return total;
}

}  // namespace dcn
