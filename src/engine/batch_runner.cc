#include "engine/batch_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <exception>
#include <memory>

#include "common/contracts.h"
#include "common/parallel.h"

namespace dcn::engine {
namespace {

struct Cell {
  std::string scenario;
  std::string solver;
  std::uint64_t seed;
};

void run_cell(const SolverRegistry& registry, const ScenarioSuite& suite,
              const BatchSpec& spec, const Cell& cell, CellResult& result) {
  result.scenario = cell.scenario;
  result.solver = cell.solver;
  result.seed = cell.seed;

  // dcn-lint: allow(wall-clock) timing capture: elapsed_ms feeds CellResult's diagnostic column only, never canonical()
  const auto start = std::chrono::steady_clock::now();
  try {
    const Instance instance =
        suite.build(cell.scenario, cell.seed, spec.options);
    const std::unique_ptr<Solver> solver = registry.create(cell.solver);
    result.outcome = solver->solve(instance);
    result.ran = true;
    if (spec.discard_schedules) result.outcome.schedule = Schedule{};
  } catch (const std::exception& e) {
    result.ran = false;
    result.error = e.what();
  }
  result.elapsed_ms =
      // dcn-lint: allow(wall-clock) timing capture: end of the elapsed_ms window opened above
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                start)
          .count();
}

}  // namespace

std::string BatchResult::canonical() const {
  std::string out;
  for (const CellResult& cell : cells) {
    detail::append_format(out, "%s seed=%llu ", cell.scenario.c_str(),
           static_cast<unsigned long long>(cell.seed));
    if (cell.ran) {
      out += canonical_summary(cell.outcome);
    } else {
      out += "solver=" + cell.solver + " error=\"" + cell.error + "\"";
    }
    out += "\n";
  }
  for (const SolverAggregate& agg : solvers) {
    detail::append_format(out,
           "aggregate solver=%s cells=%d ran=%d feasible=%d total_energy=%.17g "
           "mean_energy=%.17g mean_lb_ratio=%.17g lb_cells=%d\n",
           agg.solver.c_str(), agg.cells, agg.ran, agg.feasible,
           agg.total_energy, agg.mean_energy, agg.mean_lb_ratio, agg.lb_cells);
  }
  return out;
}

std::string BatchResult::table() const {
  std::string out;
  detail::append_format(out, "%-12s  %6s  %6s  %9s  %14s  %10s\n", "solver", "cells",
         "feasib", "failures", "mean energy", "mean /LB");
  for (const SolverAggregate& agg : solvers) {
    if (agg.lb_cells > 0) {
      detail::append_format(out, "%-12s  %6d  %6d  %9d  %14.2f  %10.3f\n", agg.solver.c_str(),
             agg.cells, agg.feasible, agg.cells - agg.ran, agg.mean_energy,
             agg.mean_lb_ratio);
    } else {
      detail::append_format(out, "%-12s  %6d  %6d  %9d  %14.2f  %10s\n", agg.solver.c_str(),
             agg.cells, agg.feasible, agg.cells - agg.ran, agg.mean_energy,
             "-");
    }
  }
  return out;
}

bool BatchResult::all_feasible() const {
  for (const CellResult& cell : cells) {
    if (!cell.ran || !cell.outcome.feasible) return false;
  }
  return !cells.empty();
}

BatchResult run_batch(const SolverRegistry& registry, const ScenarioSuite& suite,
                      const BatchSpec& spec) {
  DCN_EXPECTS(!spec.solvers.empty());
  DCN_EXPECTS(!spec.scenarios.empty());
  DCN_EXPECTS(!spec.seeds.empty());

  // Resolve every name up front: misspellings fail fast, not mid-grid.
  for (const std::string& name : spec.solvers) (void)registry.create(name);
  for (const std::string& name : spec.scenarios) {
    if (!suite.contains(name)) {
      (void)suite.build(name, 0, spec.options);  // throws with the catalogue
    }
  }

  std::vector<Cell> grid;
  grid.reserve(spec.scenarios.size() * spec.solvers.size() * spec.seeds.size());
  for (const std::string& scenario : spec.scenarios) {
    for (const std::string& solver : spec.solvers) {
      for (const std::uint64_t seed : spec.seeds) {
        grid.push_back({scenario, solver, seed});
      }
    }
  }

  BatchResult result;
  result.cells.resize(grid.size());

  const std::size_t jobs = static_cast<std::size_t>(
      std::max<std::int32_t>(1, spec.jobs));
  if (jobs == 1) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      run_cell(registry, suite, spec, grid[i], result.cells[i]);
    }
  } else {
    // WorkerPool claims cells from its atomic task counter; every cell
    // writes into its own slot, so the outcome is independent of how
    // cells land on workers (and TSan-vetted, unlike an ad-hoc pool).
    WorkerPool pool(std::min(jobs, grid.size()));
    pool.run(grid.size(), [&](std::size_t i, std::size_t /*worker*/) {
      run_cell(registry, suite, spec, grid[i], result.cells[i]);
    });
  }

  // Serial aggregation in spec order: identical for any thread count.
  for (const std::string& solver : spec.solvers) {
    SolverAggregate agg;
    agg.solver = solver;
    for (const CellResult& cell : result.cells) {
      if (cell.solver != solver) continue;
      ++agg.cells;
      if (!cell.ran) continue;
      ++agg.ran;
      if (cell.outcome.feasible) ++agg.feasible;
      agg.total_energy += cell.outcome.energy;
      if (cell.outcome.lower_bound > 0.0) {
        agg.mean_lb_ratio += cell.outcome.energy / cell.outcome.lower_bound;
        ++agg.lb_cells;
      }
    }
    if (agg.ran > 0) agg.mean_energy = agg.total_energy / agg.ran;
    if (agg.lb_cells > 0) agg.mean_lb_ratio /= agg.lb_cells;
    result.solvers.push_back(agg);
  }
  return result;
}

}  // namespace dcn::engine
