#include "engine/registry.h"

#include "common/contracts.h"
#include "engine/solvers.h"

namespace dcn::engine {

void SolverRegistry::add(const std::string& name, Factory factory) {
  DCN_EXPECTS(!name.empty());
  DCN_EXPECTS(factory != nullptr);
  DCN_EXPECTS(!factories_.contains(name));
  factories_.emplace(name, std::move(factory));
}

std::unique_ptr<Solver> SolverRegistry::create(const std::string& name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string message = "unknown solver \"" + name + "\"; known solvers:";
    for (const auto& [known, factory] : factories_) message += " " + known;
    throw UnknownSolverError(message);
  }
  return it->second();
}

bool SolverRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

const SolverRegistry& default_registry() {
  static const SolverRegistry registry = [] {
    SolverRegistry r;
    r.add("mcf", [] { return std::make_unique<McfSolver>("mcf"); });
    // The paper's Fig. 2 baseline under its own name.
    r.add("sp_mcf", [] {
      return std::make_unique<McfSolver>(
          "sp_mcf", DcfsOptions{},
          "alias of mcf: the paper's SP+MCF baseline");
    });
    r.add("mcf_paper", [] {
      DcfsOptions options;
      options.circuit_exact = false;
      return std::make_unique<McfSolver>(
          "mcf_paper", options,
          "SP routing + paper-literal Algorithm 1 (per-critical-link "
          "availability)");
    });
    r.add("mcf_plain", [] {
      DcfsOptions options;
      options.use_virtual_weights = false;
      return std::make_unique<McfSolver>(
          "mcf_plain", options,
          "SP routing + MCF without virtual weights (Theorem 1 ablation)");
    });
    r.add("dcfsr", [] {
      RandomScheduleOptions options;
      // The calibrated Frank-Wolfe budget used across the benches: LB
      // moves < 0.5% versus a 4x larger budget (see EXPERIMENTS.md).
      options.relaxation.frank_wolfe.max_iterations = 15;
      options.relaxation.frank_wolfe.gap_tolerance = 2e-3;
      return std::make_unique<RandomScheduleSolver>(options);
    });
    // dcfsr with the parallel Frank-Wolfe oracle (one worker per
    // hardware thread): byte-identical outcomes to dcfsr, less
    // wall-clock on single-cell runs. Prefer plain dcfsr inside wide
    // batch grids, where BatchRunner already saturates the cores.
    r.add("dcfsr_mt", [] {
      RandomScheduleOptions options;
      options.relaxation.frank_wolfe.max_iterations = 15;
      options.relaxation.frank_wolfe.gap_tolerance = 2e-3;
      options.relaxation.frank_wolfe.oracle_threads = 0;
      return std::make_unique<RandomScheduleSolver>(options, "dcfsr_mt");
    });
    r.add("ecmp_mcf", [] { return std::make_unique<EcmpMcfSolver>(); });
    r.add("greedy", [] { return std::make_unique<GreedySolver>(); });
    r.add("edf", [] { return std::make_unique<EdfSolver>(); });
    r.add("exact", [] { return std::make_unique<ExactSolver>(); });
    // Online arrivals (src/online): the same calibrated Frank-Wolfe
    // budget as dcfsr, so the all-at-t=0 degenerate case is the offline
    // run bit for bit.
    r.add("online_dcfsr", [] {
      OnlineOptions options;
      options.rounding.relaxation.frank_wolfe.max_iterations = 15;
      options.rounding.relaxation.frank_wolfe.gap_tolerance = 2e-3;
      return std::make_unique<OnlineDcfsrSolver>(options);
    });
    // Legacy id-order admission fallback (classic warm steps too):
    // the A/B baseline bench_online compares the RCD-style order and
    // pairwise warm re-solves against.
    r.add("online_dcfsr_id", [] {
      OnlineOptions options;
      options.rounding.relaxation.frank_wolfe.max_iterations = 15;
      options.rounding.relaxation.frank_wolfe.gap_tolerance = 2e-3;
      options.warm_step_rule = FrankWolfeStepRule::kClassic;
      options.fallback_order = FallbackAdmissionOrder::kFlowId;
      options.departures_fast_path = false;
      return std::make_unique<OnlineDcfsrSolver>(options, "online_dcfsr_id");
    });
    r.add("online_greedy", [] { return std::make_unique<OnlineGreedySolver>(); });
    // Hindsight admission oracle: the same calibrated budget as dcfsr,
    // so the joint-feasible case (e.g. infinite capacity) is offline
    // dcfsr bit for bit; bench_online divides the online solvers'
    // admitted counts and energies by this row's.
    r.add("oracle_dcfsr", [] {
      OnlineOptions options;
      options.rounding.relaxation.frank_wolfe.max_iterations = 15;
      options.rounding.relaxation.frank_wolfe.gap_tolerance = 2e-3;
      return std::make_unique<OracleDcfsrSolver>(options);
    });
    return r;
  }();
  return registry;
}

}  // namespace dcn::engine
