#include "engine/registry.h"

#include "common/contracts.h"
#include "engine/solvers.h"

namespace dcn::engine {

void SolverRegistry::add(const std::string& name, Factory factory) {
  DCN_EXPECTS(!name.empty());
  DCN_EXPECTS(factory != nullptr);
  DCN_EXPECTS(!factories_.contains(name));
  factories_.emplace(name, std::move(factory));
}

std::unique_ptr<Solver> SolverRegistry::create(const std::string& name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string message = "unknown solver \"" + name + "\"; known solvers:";
    for (const auto& [known, factory] : factories_) message += " " + known;
    throw UnknownSolverError(message);
  }
  return it->second();
}

bool SolverRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

namespace {

/// The calibrated Frank-Wolfe budget shared by every current
/// dcfsr-family solver — the single place a recalibration lands.
///
/// v2 calibration (pairwise cold solves, the default step rule since
/// the flip): 12 iterations at gap 1e-3. Criterion unchanged from v1:
/// LB moves < 0.5% versus a 4x larger budget across the scenario grid
/// (see EXPERIMENTS.md for the sweep). The pairwise sweeps certify a
/// 2x tighter gap in fewer iterations than the classic rule's v1
/// budget (15 / 2e-3), which was sized around the classic last-mile
/// stall and lives on in LegacyV1FwBudget().
FrankWolfeOptions CalibratedFwBudget() {
  FrankWolfeOptions fw;
  fw.max_iterations = 12;
  fw.gap_tolerance = 1e-3;
  return fw;
}

/// The v1 budget and step rule, frozen: classic joint steps at
/// 15 / 2e-3. dcfsr_classic (and the legacy online baseline) keep the
/// pre-flip configuration selectable for A/Bs.
FrankWolfeOptions LegacyV1FwBudget() {
  FrankWolfeOptions fw;
  fw.max_iterations = 15;
  fw.gap_tolerance = 2e-3;
  fw.step_rule = FrankWolfeStepRule::kClassic;
  return fw;
}

}  // namespace

const SolverRegistry& default_registry() {
  static const SolverRegistry registry = [] {
    SolverRegistry r;
    r.add("mcf", [] { return std::make_unique<McfSolver>("mcf"); });
    // The paper's Fig. 2 baseline under its own name.
    r.add("sp_mcf", [] {
      return std::make_unique<McfSolver>(
          "sp_mcf", DcfsOptions{},
          "alias of mcf: the paper's SP+MCF baseline");
    });
    r.add("mcf_paper", [] {
      DcfsOptions options;
      options.circuit_exact = false;
      return std::make_unique<McfSolver>(
          "mcf_paper", options,
          "SP routing + paper-literal Algorithm 1 (per-critical-link "
          "availability)");
    });
    r.add("mcf_plain", [] {
      DcfsOptions options;
      options.use_virtual_weights = false;
      return std::make_unique<McfSolver>(
          "mcf_plain", options,
          "SP routing + MCF without virtual weights (Theorem 1 ablation)");
    });
    // v2: pairwise step rule (the FrankWolfeOptions default) with the
    // adaptive parallel oracle — cold solves certify past the classic
    // rule's stall under the shared calibrated budget.
    r.add("dcfsr", [] {
      RandomScheduleOptions options;
      options.relaxation.frank_wolfe = CalibratedFwBudget();
      return std::make_unique<RandomScheduleSolver>(options);
    });
    // The v1 configuration, frozen: classic joint steps at the old
    // budget, so the pre-flip algorithm stays selectable for A/Bs.
    r.add("dcfsr_classic", [] {
      RandomScheduleOptions options;
      options.relaxation.frank_wolfe = LegacyV1FwBudget();
      return std::make_unique<RandomScheduleSolver>(options, "dcfsr_classic");
    });
    // Alias kept for grid compatibility: the adaptive parallel oracle
    // is the default since v2, so dcfsr_mt now differs from dcfsr only
    // in name (both are byte-identical at any thread count).
    r.add("dcfsr_mt", [] {
      RandomScheduleOptions options;
      options.relaxation.frank_wolfe = CalibratedFwBudget();
      options.relaxation.frank_wolfe.oracle_threads = 0;
      return std::make_unique<RandomScheduleSolver>(options, "dcfsr_mt");
    });
    r.add("ecmp_mcf", [] { return std::make_unique<EcmpMcfSolver>(); });
    r.add("greedy", [] { return std::make_unique<GreedySolver>(); });
    r.add("edf", [] { return std::make_unique<EdfSolver>(); });
    r.add("exact", [] { return std::make_unique<ExactSolver>(); });
    // Online arrivals (src/online): the same calibrated Frank-Wolfe
    // budget (and, via the defaults, the same pairwise rule) as dcfsr,
    // so the all-at-t=0 degenerate case is the offline run bit for bit.
    r.add("online_dcfsr", [] {
      OnlineOptions options;
      options.rounding.relaxation.frank_wolfe = CalibratedFwBudget();
      return std::make_unique<OnlineDcfsrSolver>(options);
    });
    // Legacy id-order admission fallback (v1 classic budget and rule
    // throughout, cold solves included): the A/B baseline bench_online
    // compares the RCD-style order and pairwise re-solves against.
    r.add("online_dcfsr_id", [] {
      OnlineOptions options;
      options.rounding.relaxation.frank_wolfe = LegacyV1FwBudget();
      options.warm_step_rule = FrankWolfeStepRule::kClassic;
      options.fallback_order = FallbackAdmissionOrder::kFlowId;
      options.departures_fast_path = false;
      return std::make_unique<OnlineDcfsrSolver>(options, "online_dcfsr_id");
    });
    // Flat-latency configuration: interval-windowed re-solves plus
    // epoch-batched admission on top of the calibrated budget. The
    // window (2 time units) covers the generated workloads' span scale
    // (~2.5 for the bench poisson traces), so the residual relaxation's
    // interval decomposition stops growing with the longest remaining
    // deadline; the 0.5 epoch batches ~arrival_rate/2 arrivals per
    // joint re-solve. Trades up to 0.5 trace-time units of admission
    // delay for a per-event wall clock that stays flat into the tens
    // of thousands of arrivals (the BENCH_online sweep's 16k point).
    r.add("online_dcfsr_flat", [] {
      OnlineOptions options;
      options.rounding.relaxation.frank_wolfe = CalibratedFwBudget();
      options.lookahead_window = 2.0;
      options.epoch = 0.5;
      return std::make_unique<OnlineDcfsrSolver>(options, "online_dcfsr_flat");
    });
    // The flat configuration with deadline-safe re-rating of admitted
    // flows (PDQ-style preemption, re-rate never re-route): an arrival
    // that does not fit against the committed load may reshape the
    // future rate profiles of in-flight flows sharing its path, behind
    // a commit barrier that keeps every admitted deadline inviolable.
    // With allow_rerate off this is online_dcfsr_flat byte for byte
    // (anchored in tests/online_differential_test.cc).
    r.add("online_dcfsr_preempt", [] {
      OnlineOptions options;
      options.rounding.relaxation.frank_wolfe = CalibratedFwBudget();
      options.lookahead_window = 2.0;
      options.epoch = 0.5;
      options.allow_rerate = true;
      return std::make_unique<OnlineDcfsrSolver>(options,
                                                 "online_dcfsr_preempt");
    });
    // The sharded always-on service on the flat-latency configuration:
    // flows partitioned by source edge-group, shard workers re-solving
    // per group, a serial core-link coordinator arbitrating commits
    // against the global load index. shards = 0 means one lane per
    // group; the output is byte-identical for any shard count >= 2 and
    // any worker count (topologies with a single source group delegate
    // to the flat loop).
    r.add("online_dcfsr_sharded", [] {
      OnlineOptions options;
      options.rounding.relaxation.frank_wolfe = CalibratedFwBudget();
      options.lookahead_window = 2.0;
      options.epoch = 0.5;
      return std::make_unique<OnlineShardedSolver>(options);
    });
    r.add("online_greedy", [] { return std::make_unique<OnlineGreedySolver>(); });
    // Hindsight admission oracle: the same calibrated budget as dcfsr,
    // so the joint-feasible case (e.g. infinite capacity) is offline
    // dcfsr bit for bit; bench_online divides the online solvers'
    // admitted counts and energies by this row's.
    r.add("oracle_dcfsr", [] {
      OnlineOptions options;
      options.rounding.relaxation.frank_wolfe = CalibratedFwBudget();
      return std::make_unique<OracleDcfsrSolver>(options);
    });
    return r;
  }();
  return registry;
}

}  // namespace dcn::engine
