// String-keyed solver registry.
//
// The registry maps stable names ("mcf", "dcfsr", ...) to factories so
// the CLI, the batch runner, and tests all construct solvers the same
// way. default_registry() carries every algorithm in the library;
// registries are immutable once populated and safe to share across the
// batch runner's worker threads (create() only reads).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/solver.h"

namespace dcn::engine {

/// Thrown by SolverRegistry::create for unknown names; the message
/// lists every registered solver.
class UnknownSolverError : public std::invalid_argument {
 public:
  explicit UnknownSolverError(const std::string& what)
      : std::invalid_argument(what) {}
};

class SolverRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Solver>()>;

  /// Registers `factory` under `name`. Throws ContractViolation when
  /// the name is empty or already taken.
  void add(const std::string& name, Factory factory);

  /// Instantiates the solver registered under `name`. Throws
  /// UnknownSolverError (message lists known names) when absent.
  [[nodiscard]] std::unique_ptr<Solver> create(const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Registered names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const { return factories_.size(); }

 private:
  std::map<std::string, Factory> factories_;
};

/// All solvers of the library under their canonical names:
/// mcf, mcf_paper, mcf_plain, dcfsr, dcfsr_mt, sp_mcf (alias of mcf),
/// ecmp_mcf, greedy, edf, exact, online_dcfsr, online_dcfsr_id (the
/// legacy online configuration — id-order fallback, classic warm
/// steps, no departures fast path — kept as the A/B baseline),
/// online_greedy.
[[nodiscard]] const SolverRegistry& default_registry();

}  // namespace dcn::engine
