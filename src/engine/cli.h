// Command-line parsing for the engine CLI (dcn_run) and the bench
// harnesses.
//
// Promoted from bench/bench_util.h so every binary shares one parser:
// `--key value` options, bare `--flag` switches, comma-separated lists.
// bench_util.h now forwards here. Header-only on purpose — the bench
// targets link only the pieces of the library they exercise.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace dcn::cli {

/// Minimal --key value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) tokens_.emplace_back(argv[i]);
  }

  [[nodiscard]] bool has_flag(const std::string& name) const {
    for (const std::string& t : tokens_) {
      if (t == "--" + name) return true;
    }
    return false;
  }

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const {
    for (std::size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i] == "--" + name) return tokens_[i + 1];
    }
    return fallback;
  }

  [[nodiscard]] double get_double(const std::string& name, double fallback) const {
    const std::string v = get(name, "");
    return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
  }

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const {
    const std::string v = get(name, "");
    return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
  }

  /// Comma-separated string list ("a,b,c"); `fallback` when absent.
  [[nodiscard]] std::vector<std::string> get_list(
      const std::string& name, const std::vector<std::string>& fallback) const {
    const std::string v = get(name, "");
    if (v.empty()) return fallback;
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= v.size()) {
      std::size_t next = v.find(',', pos);
      if (next == std::string::npos) next = v.size();
      if (next > pos) out.push_back(v.substr(pos, next - pos));
      pos = next + 1;
    }
    return out;
  }

  /// Comma-separated integer list. Empty segments ("1,,2") are
  /// skipped, matching get_list.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& fallback) const {
    const std::string v = get(name, "");
    if (v.empty()) return fallback;
    std::vector<std::int64_t> out;
    std::size_t pos = 0;
    while (pos < v.size()) {
      std::size_t next = v.find(',', pos);
      if (next == std::string::npos) next = v.size();
      if (next > pos) {
        out.push_back(
            std::strtoll(v.substr(pos, next - pos).c_str(), nullptr, 10));
      }
      pos = next + 1;
    }
    return out;
  }

 private:
  std::vector<std::string> tokens_;
};

/// Prints a horizontal rule sized for typical tables.
inline void rule() {
  std::printf("-------------------------------------------------------------------------------\n");
}

}  // namespace dcn::cli
