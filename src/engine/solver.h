// The polymorphic solver interface of the engine.
//
// A Solver maps an Instance to a SolverOutcome: a complete schedule plus
// replay-validated feasibility and energy. Every adapter funnels its
// result through finish_outcome(), which runs the independent replayer
// (src/sim) — so "feasible" always means *replay-validated*: every
// deadline met, full volumes delivered, no link over capacity, energy
// re-integrated from scratch. Solver-specific diagnostics (iterations,
// rounding attempts, lower bounds) travel in a flat ordered stats list
// so the batch runner can aggregate and print them uniformly.
//
// Randomized solvers must derive their generator with solver_rng(), a
// pure function of (instance seed, solver name). This keeps every cell
// of a solver x scenario grid independent of execution order, which is
// what makes BatchRunner results identical for any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "engine/instance.h"
#include "schedule/schedule.h"

namespace dcn {
struct ReplayReport;
}

namespace dcn::engine {

/// What a solver produced on one instance, replay-validated.
struct SolverOutcome {
  std::string solver;
  std::string instance;

  Schedule schedule;

  /// True iff the independent replay found no violation.
  bool feasible = false;
  /// First replay issue when infeasible ("" otherwise).
  std::string first_issue;

  /// Replayed total energy Phi_f (Eq. 5) over the flow horizon.
  double energy = 0.0;
  double dynamic_energy = 0.0;
  double idle_energy = 0.0;
  std::int32_t active_links = 0;
  double peak_rate = 0.0;

  /// Fractional relaxation bound when the solver computes one
  /// (Random-Schedule); 0 means "none".
  double lower_bound = 0.0;

  /// Ordered solver-specific counters (e.g. {"iterations", 12}).
  /// Deterministic values only: stats feed canonical_summary, which is
  /// byte-compared across --jobs and runner thread counts.
  std::vector<std::pair<std::string, double>> stats;

  /// Ordered wall-clock measurements (e.g. the online schedulers'
  /// admission-decision latency percentiles, in ms). Kept apart from
  /// `stats` and never serialized by canonical_summary — wall time
  /// varies run to run while canonical output must not. bench_online
  /// reads these for its latency columns.
  std::vector<std::pair<std::string, double>> timings;
};

/// Abstract solver: every algorithm of the paper behind one call.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry key, e.g. "mcf", "dcfsr".
  [[nodiscard]] virtual std::string name() const = 0;

  /// One-line description for --list output.
  [[nodiscard]] virtual std::string description() const = 0;

  /// Solves the instance. May throw (InfeasibleError, ContractViolation)
  /// when the instance is outside the algorithm's reach; BatchRunner
  /// converts throws into failed cells.
  [[nodiscard]] virtual SolverOutcome solve(const Instance& instance) const = 0;
};

/// Replays `schedule` on the instance and fills the common outcome
/// fields. Solver adapters append their specific stats afterwards.
[[nodiscard]] SolverOutcome finish_outcome(const std::string& solver,
                                           const Instance& instance,
                                           Schedule schedule);

/// Deterministic per-(instance, solver) generator: a pure function of
/// the instance seed and the solver name, independent of call order.
[[nodiscard]] Rng solver_rng(const Instance& instance, const std::string& solver);

/// Canonical text form of an outcome (fixed field order, %.17g floats,
/// no wall-clock data) — the byte-comparable serialization the
/// determinism tests and the batch runner's canonical dump use.
[[nodiscard]] std::string canonical_summary(const SolverOutcome& outcome);

namespace detail {
/// printf-appends to `out` (shared by the canonical serializers).
void append_format(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Copies a replay report's verdict and energy fields into an outcome —
/// the single place replay results become outcome fields (shared by
/// finish_outcome and the online adapters' admitted-subset replay).
void apply_replay(SolverOutcome& out, const ReplayReport& replay);
}  // namespace detail

}  // namespace dcn::engine
