#include "engine/solver.h"

#include <cstdarg>
#include <cstdio>

#include "sim/replay.h"

namespace dcn::engine {

namespace detail {

void append_format(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

void apply_replay(SolverOutcome& out, const ReplayReport& replay) {
  out.feasible = replay.ok;
  if (!replay.issues.empty()) out.first_issue = replay.issues.front();
  out.energy = replay.energy;
  out.dynamic_energy = replay.dynamic_energy;
  out.idle_energy = replay.idle_energy;
  out.active_links = replay.active_links;
  out.peak_rate = replay.peak_rate;
}

}  // namespace detail

SolverOutcome finish_outcome(const std::string& solver, const Instance& instance,
                             Schedule schedule) {
  SolverOutcome out;
  out.solver = solver;
  out.instance = instance.name();
  out.schedule = std::move(schedule);

  const ReplayReport replay = replay_schedule(instance.graph(), instance.flows(),
                                              out.schedule, instance.model());
  detail::apply_replay(out, replay);
  return out;
}

Rng solver_rng(const Instance& instance, const std::string& solver) {
  // Distinct solvers on one instance (and one solver across instances)
  // get independent streams, regardless of execution order.
  return Rng(mix_seed(instance.seed(), instance.name() + "|" + solver));
}

std::string canonical_summary(const SolverOutcome& outcome) {
  std::string out;
  detail::append_format(out, "solver=%s instance=%s feasible=%d energy=%.17g",
         outcome.solver.c_str(), outcome.instance.c_str(),
         outcome.feasible ? 1 : 0, outcome.energy);
  detail::append_format(out, " dynamic=%.17g idle=%.17g active_links=%d peak=%.17g lb=%.17g",
         outcome.dynamic_energy, outcome.idle_energy, outcome.active_links,
         outcome.peak_rate, outcome.lower_bound);
  for (const auto& [key, value] : outcome.stats) {
    detail::append_format(out, " %s=%.17g", key.c_str(), value);
  }
  if (!outcome.feasible && !outcome.first_issue.empty()) {
    out += " issue=\"" + outcome.first_issue + "\"";
  }
  return out;
}

}  // namespace dcn::engine
