#include "engine/scenario.h"

#include <algorithm>

#include "flow/workload.h"
#include "topology/builders.h"

namespace dcn::engine {
namespace {

std::int32_t clamp_count(std::int32_t requested, std::int32_t available) {
  return std::max<std::int32_t>(1, std::min(requested, available));
}

}  // namespace

OnlineWorkloadParams online_workload_params(const ScenarioOptions& o,
                                            SizeModel model) {
  OnlineWorkloadParams params;
  params.num_flows = std::max<std::int32_t>(1, o.num_flows);
  params.arrival_rate = o.arrival_rate;
  params.mean_volume = o.volume;
  params.size_model = model;
  params.slack = o.slack;
  params.base_rate = o.base_rate;
  return params;
}

ScenarioSuite::ScenarioSuite() {
  topologies_ = {
      {"line", [](Rng&) { return line_network(4); }},
      {"fat_tree", [](Rng&) { return fat_tree(4); }},
      {"fat_tree8", [](Rng&) { return fat_tree(8); }},
      {"bcube", [](Rng&) { return bcube(4, 1); }},
      {"bcube42", [](Rng&) { return bcube(4, 2); }},
      {"leaf_spine", [](Rng&) { return leaf_spine(4, 4, 4); }},
      {"leaf_spine_wide", [](Rng&) { return leaf_spine(16, 8, 8); }},
      {"random",
       [](Rng& rng) { return random_fabric(8, 5, 2, rng); }},
  };

  workloads_ = {
      {"paper",
       [](const Topology& topo, const ScenarioOptions& o, Rng& rng) {
         PaperWorkloadParams params;
         params.num_flows = std::max<std::int32_t>(1, o.num_flows);
         return paper_workload(topo, params, rng);
       }},
      {"incast",
       [](const Topology& topo, const ScenarioOptions& o, Rng& rng) {
         const std::int32_t senders =
             clamp_count(o.senders, topo.num_hosts() - 1);
         return incast_workload(topo, senders, o.volume, o.window, rng);
       }},
      {"shuffle",
       [](const Topology& topo, const ScenarioOptions& o, Rng& rng) {
         const std::int32_t mappers =
             clamp_count(o.mappers, topo.num_hosts() / 2);
         const std::int32_t reducers =
             clamp_count(o.reducers, topo.num_hosts() - mappers);
         return shuffle_workload(topo, mappers, reducers, o.volume, o.window,
                                 rng);
       }},
      {"permutation",
       [](const Topology& topo, const ScenarioOptions& o, Rng& rng) {
         const std::int32_t pairs =
             clamp_count(o.num_flows, topo.num_hosts() / 2);
         PaperWorkloadParams params;
         return permutation_workload(topo, pairs, params, rng);
       }},
      {"slack",
       [](const Topology& topo, const ScenarioOptions& o, Rng& rng) {
         return slack_workload(topo, std::max<std::int32_t>(1, o.num_flows),
                               o.volume, o.base_rate, o.slack, o.window, rng);
       }},
      {"poisson",
       [](const Topology& topo, const ScenarioOptions& o, Rng& rng) {
         return poisson_workload(topo, online_workload_params(o, SizeModel::kFixed), rng);
       }},
      {"websearch",
       [](const Topology& topo, const ScenarioOptions& o, Rng& rng) {
         return poisson_workload(topo, online_workload_params(o, SizeModel::kWebSearch),
                                 rng);
       }},
      {"hadoop",
       [](const Topology& topo, const ScenarioOptions& o, Rng& rng) {
         return poisson_workload(topo, online_workload_params(o, SizeModel::kHadoop), rng);
       }},
  };
}

const ScenarioSuite& ScenarioSuite::default_suite() {
  static const ScenarioSuite suite;
  return suite;
}

std::vector<std::string> ScenarioSuite::topology_names() const {
  std::vector<std::string> out;
  out.reserve(topologies_.size());
  for (const auto& [name, factory] : topologies_) out.push_back(name);
  return out;
}

std::vector<std::string> ScenarioSuite::workload_names() const {
  std::vector<std::string> out;
  out.reserve(workloads_.size());
  for (const auto& [name, factory] : workloads_) out.push_back(name);
  return out;
}

std::vector<std::string> ScenarioSuite::names() const {
  std::vector<std::string> out;
  out.reserve(topologies_.size() * workloads_.size());
  for (const auto& [topo, tf] : topologies_) {
    for (const auto& [work, wf] : workloads_) {
      out.push_back(topo + "/" + work);
    }
  }
  return out;
}

bool ScenarioSuite::contains(const std::string& spec) const {
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos) return false;
  return topologies_.contains(spec.substr(0, slash)) &&
         workloads_.contains(spec.substr(slash + 1));
}

Instance ScenarioSuite::build(const std::string& spec, std::uint64_t seed,
                              const ScenarioOptions& options) const {
  const std::size_t slash = spec.find('/');
  const std::string topo_name =
      slash == std::string::npos ? spec : spec.substr(0, slash);
  const std::string work_name =
      slash == std::string::npos ? "" : spec.substr(slash + 1);

  const auto topo_it = topologies_.find(topo_name);
  const auto work_it = workloads_.find(work_name);
  if (slash == std::string::npos || topo_it == topologies_.end() ||
      work_it == workloads_.end()) {
    std::string message = "unknown scenario \"" + spec +
                          "\" (want <topology>/<workload>); topologies:";
    for (const auto& [name, factory] : topologies_) message += " " + name;
    message += "; workloads:";
    for (const auto& [name, factory] : workloads_) message += " " + name;
    throw UnknownScenarioError(message);
  }

  // One private stream per (spec, seed): instance content is a pure
  // function of the two, independent of build order or thread.
  Rng rng(mix_seed(seed, spec));
  Topology topology = topo_it->second(rng);
  std::vector<Flow> flows = work_it->second(topology, options, rng);

  return Instance(spec + "#" + std::to_string(seed), std::move(topology),
                  std::move(flows), options.power_model(), seed);
}

std::pair<Topology, Rng> ScenarioSuite::build_topology(
    const std::string& spec, std::uint64_t seed) const {
  const std::size_t slash = spec.find('/');
  const std::string topo_name =
      slash == std::string::npos ? spec : spec.substr(0, slash);
  const std::string work_name =
      slash == std::string::npos ? "" : spec.substr(slash + 1);
  const auto topo_it = topologies_.find(topo_name);
  if (slash == std::string::npos || topo_it == topologies_.end() ||
      !workloads_.contains(work_name)) {
    std::string message = "unknown scenario \"" + spec +
                          "\" (want <topology>/<workload>); topologies:";
    for (const auto& [name, factory] : topologies_) message += " " + name;
    message += "; workloads:";
    for (const auto& [name, factory] : workloads_) message += " " + name;
    throw UnknownScenarioError(message);
  }

  // Exactly build()'s stream discipline: the scenario rng is seeded by
  // (seed, spec) and the topology factory consumes its prefix. The
  // returned rng is therefore in the precise state the workload factory
  // would receive — a generator fed from it synthesizes build()'s trace.
  Rng rng(mix_seed(seed, spec));
  Topology topology = topo_it->second(rng);
  return {std::move(topology), rng};
}

}  // namespace dcn::engine
