#include "engine/solvers.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "baselines/baselines.h"
#include "common/contracts.h"
#include "common/interval.h"
#include "sim/replay.h"

namespace dcn::engine {

namespace {

/// Outcome assembly for the online solvers: replay validates the
/// *admitted* subset (rejected flows receive no service by design, so
/// replaying them against their full volumes would always fail). The
/// full-size schedule (rejected rows empty) still travels in the
/// outcome for inspection.
/// Nearest-rank percentile of an unsorted sample, p in [0, 1].
double percentile(std::vector<double>& xs, double p) {
  DCN_EXPECTS(!xs.empty());
  std::sort(xs.begin(), xs.end());
  const std::size_t idx =
      static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[idx];
}

SolverOutcome finish_online_outcome(const std::string& solver,
                                    const Instance& instance,
                                    OnlineResult result) {
  SolverOutcome out;
  out.solver = solver;
  out.instance = instance.name();

  auto [sub_flows, sub_schedule] =
      admitted_subset(instance.flows(), result.schedule, result.admitted);
  if (!sub_flows.empty()) {
    const ReplayReport replay = replay_schedule(instance.graph(), sub_flows,
                                                sub_schedule, instance.model());
    detail::apply_replay(out, replay);
  } else {
    // Nothing admitted: vacuously feasible, zero energy.
    out.feasible = true;
  }
  out.schedule = std::move(result.schedule);
  out.stats = {{"admitted", static_cast<double>(result.num_admitted)},
               {"rejected", static_cast<double>(result.num_rejected)},
               {"events", static_cast<double>(result.num_events)},
               // Load-index health: the live-segment working set that
               // bounds probe cost, and how much departed history the
               // low-water pruning folded away. Deterministic, unlike
               // the latency timings below.
               {"peak_live_segments",
                static_cast<double>(result.peak_live_segments)},
               {"load_segments_pruned",
                static_cast<double>(result.load_segments_pruned)}};
  // Wall-clock admission-decision latency percentiles ride in timings,
  // never stats: canonical output is byte-compared across --jobs.
  if (!result.decision_latency_ms.empty()) {
    out.timings = {
        {"decision_latency_p50_ms",
         percentile(result.decision_latency_ms, 0.50)},
        {"decision_latency_p99_ms",
         percentile(result.decision_latency_ms, 0.99)}};
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// McfSolver

McfSolver::McfSolver(std::string name, DcfsOptions options, std::string description)
    : name_(std::move(name)),
      description_(std::move(description)),
      options_(options) {}

SolverOutcome McfSolver::solve(const Instance& instance) const {
  const std::vector<Path> paths =
      shortest_path_routing(instance.graph(), instance.flows());
  const DcfsResult r = most_critical_first(instance.graph(), instance.flows(),
                                           paths, instance.model(), options_);
  SolverOutcome out = finish_outcome(name_, instance, r.schedule);
  out.stats = {{"iterations", static_cast<double>(r.iterations)},
               {"speed_escalations", static_cast<double>(r.speed_escalations)},
               {"availability_fallbacks",
                static_cast<double>(r.availability_fallbacks)}};
  return out;
}

// ---------------------------------------------------------------------------
// RandomScheduleSolver

RandomScheduleSolver::RandomScheduleSolver(RandomScheduleOptions options,
                                           std::string name)
    : options_(options), name_(std::move(name)) {}

std::string RandomScheduleSolver::description() const {
  return "Random-Schedule: fractional relaxation + randomized rounding "
         "(Algorithm 2)";
}

SolverOutcome RandomScheduleSolver::solve(const Instance& instance) const {
  // Keyed by the algorithm id, not the display name: dcfsr variants
  // must draw the same stream to stay byte-identical.
  Rng rng = solver_rng(instance, "dcfsr");
  const RandomScheduleResult r = random_schedule(
      instance.graph(), instance.flows(), instance.model(), rng, options_);
  SolverOutcome out = finish_outcome(name(), instance, r.schedule);
  out.lower_bound = r.lower_bound_energy;
  // The fw_* phase counters are deterministic (no wall time here: stats
  // are byte-compared across --jobs and oracle thread counts).
  out.stats = {{"lambda", r.lambda},
               {"rounding_attempts", static_cast<double>(r.rounding_attempts)},
               {"capacity_feasible", r.capacity_feasible ? 1.0 : 0.0},
               {"mean_relative_gap", r.mean_relative_gap},
               {"fw_sweeps", static_cast<double>(r.fw_stats.oracle_sweeps)},
               {"fw_edges_repriced",
                static_cast<double>(r.fw_stats.edges_repriced)},
               {"fw_ls_evals",
                static_cast<double>(r.fw_stats.line_search_evals)}};
  if (!r.capacity_feasible && out.feasible) {
    // The last rounding draw violated link capacity; replay would have
    // flagged it, but keep the solver's own verdict authoritative too.
    out.feasible = false;
    out.first_issue = "no capacity-feasible rounding within attempt budget";
  }
  return out;
}

// ---------------------------------------------------------------------------
// EcmpMcfSolver

EcmpMcfSolver::EcmpMcfSolver(std::size_t width) : width_(width) {}

std::string EcmpMcfSolver::description() const {
  return "ECMP routing (width " + std::to_string(width_) +
         ") + Most-Critical-First";
}

SolverOutcome EcmpMcfSolver::solve(const Instance& instance) const {
  Rng rng = solver_rng(instance, name());
  const std::vector<Path> paths =
      ecmp_routing(instance.graph(), instance.flows(), width_, rng);
  const DcfsResult r = most_critical_first(instance.graph(), instance.flows(),
                                           paths, instance.model());
  SolverOutcome out = finish_outcome(name(), instance, r.schedule);
  out.stats = {{"iterations", static_cast<double>(r.iterations)},
               {"availability_fallbacks",
                static_cast<double>(r.availability_fallbacks)}};
  return out;
}

// ---------------------------------------------------------------------------
// GreedySolver

SolverOutcome GreedySolver::solve(const Instance& instance) const {
  Schedule schedule =
      greedy_energy_aware(instance.graph(), instance.flows(), instance.model());
  return finish_outcome(name(), instance, std::move(schedule));
}

// ---------------------------------------------------------------------------
// EdfSolver

SolverOutcome EdfSolver::solve(const Instance& instance) const {
  const Graph& g = instance.graph();
  const std::vector<Flow>& flows = instance.flows();
  const std::vector<Path> paths = shortest_path_routing(g, flows);

  // Deadline order, id tie-break (deterministic).
  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (flows[a].deadline != flows[b].deadline)
      return flows[a].deadline < flows[b].deadline;
    return flows[a].id < flows[b].id;
  });

  std::vector<IntervalSet> busy(static_cast<std::size_t>(g.num_edges()));
  Schedule schedule;
  schedule.flows.resize(flows.size());
  std::int32_t fallbacks = 0;

  for (const std::size_t i : order) {
    const Flow& flow = flows[i];
    const Path& path = paths[i];

    IntervalSet allowed{flow.span()};
    for (const EdgeId e : path.edges) {
      allowed.subtract(busy[static_cast<std::size_t>(e)]);
    }
    if (allowed.measure() <= 0.0) {
      // Span fully booked on some link: overlap (packet realization).
      allowed = IntervalSet{flow.span()};
      ++fallbacks;
    }

    const double rate = flow.volume / allowed.measure();
    schedule.flows[i].path = path;
    for (const Interval& iv : allowed.intervals()) {
      schedule.flows[i].segments.push_back({iv, rate});
      for (const EdgeId e : path.edges) {
        busy[static_cast<std::size_t>(e)].add(iv);
      }
    }
  }

  SolverOutcome out = finish_outcome(name(), instance, std::move(schedule));
  out.stats = {{"availability_fallbacks", static_cast<double>(fallbacks)}};
  return out;
}

// ---------------------------------------------------------------------------
// ExactSolver

ExactSolver::ExactSolver(ExactDcfsrOptions options) : options_(options) {}

std::string ExactSolver::description() const {
  return "exhaustive DCFSR optimum (" + std::to_string(options_.paths_per_flow) +
         " candidate paths per flow; tiny instances only)";
}

SolverOutcome ExactSolver::solve(const Instance& instance) const {
  const ExactDcfsrResult r =
      exact_dcfsr(instance.graph(), instance.flows(), instance.model(), options_);
  SolverOutcome out = finish_outcome(name(), instance, r.schedule);
  out.stats = {{"assignments_tried", static_cast<double>(r.assignments_tried)}};
  return out;
}

// ---------------------------------------------------------------------------
// OnlineDcfsrSolver

OnlineDcfsrSolver::OnlineDcfsrSolver(OnlineOptions options, std::string name)
    : options_(options), name_(std::move(name)) {}

SolverOutcome OnlineDcfsrSolver::solve(const Instance& instance) const {
  // Keyed to the offline algorithm's stream: the all-arrivals-at-t=0
  // degenerate case then reproduces dcfsr bit for bit.
  Rng rng = solver_rng(instance, "dcfsr");
  OnlineResult r = online_dcfsr(instance.graph(), instance.flows(),
                                instance.model(), rng, options_);
  const std::vector<std::pair<std::string, double>> extra = {
      {"resolves", static_cast<double>(r.resolves)},
      {"fw_iterations", static_cast<double>(r.fw_iterations)},
      {"rounding_attempts", static_cast<double>(r.rounding_attempts)},
      {"batch_fallbacks", static_cast<double>(r.batch_fallbacks)},
      {"departure_gap_checks", static_cast<double>(r.departure_gap_checks)},
      {"gap_check_iterations", static_cast<double>(r.gap_check_iterations)},
      {"peak_in_flight", static_cast<double>(r.peak_in_flight)},
      {"first_lb", r.first_lower_bound},
      {"fw_sweeps", static_cast<double>(r.fw_stats.oracle_sweeps)},
      {"fw_edges_repriced", static_cast<double>(r.fw_stats.edges_repriced)},
      {"fw_ls_evals", static_cast<double>(r.fw_stats.line_search_evals)},
      // Re-rate diagnostics (all zero unless allow_rerate):
      // deterministic, the pass consumes no rng.
      {"rerate_attempts", static_cast<double>(r.rerate_attempts)},
      {"rerate_commits", static_cast<double>(r.rerate_commits)},
      {"rerated_flows", static_cast<double>(r.rerated_flows)}};
  SolverOutcome out = finish_online_outcome(name(), instance, std::move(r));
  out.stats.insert(out.stats.end(), extra.begin(), extra.end());
  return out;
}

// ---------------------------------------------------------------------------
// OnlineShardedSolver

OnlineShardedSolver::OnlineShardedSolver(OnlineOptions options,
                                         std::int32_t shards,
                                         std::int32_t workers, std::string name)
    : options_(options),
      shards_(shards),
      workers_(workers),
      name_(std::move(name)) {}

SolverOutcome OnlineShardedSolver::solve(const Instance& instance) const {
  // Same stream key as the rest of the dcfsr family: the single-lane
  // delegating case is then online_dcfsr draw for draw.
  Rng rng = solver_rng(instance, "dcfsr");
  const ShardPlan plan =
      ShardPlan::by_source_group(instance.topology(), shards_);
  OnlineResult r =
      online_dcfsr_sharded(instance.graph(), instance.flows(),
                           instance.model(), rng, options_, plan, workers_);
  const std::vector<std::pair<std::string, double>> extra = {
      {"resolves", static_cast<double>(r.resolves)},
      {"fw_iterations", static_cast<double>(r.fw_iterations)},
      {"rounding_attempts", static_cast<double>(r.rounding_attempts)},
      {"batch_fallbacks", static_cast<double>(r.batch_fallbacks)},
      {"departure_gap_checks", static_cast<double>(r.departure_gap_checks)},
      {"gap_check_iterations", static_cast<double>(r.gap_check_iterations)},
      {"peak_in_flight", static_cast<double>(r.peak_in_flight)},
      {"first_lb", r.first_lower_bound},
      {"fw_sweeps", static_cast<double>(r.fw_stats.oracle_sweeps)},
      {"fw_edges_repriced", static_cast<double>(r.fw_stats.edges_repriced)},
      {"fw_ls_evals", static_cast<double>(r.fw_stats.line_search_evals)},
      {"rerate_attempts", static_cast<double>(r.rerate_attempts)},
      {"rerate_commits", static_cast<double>(r.rerate_commits)},
      {"rerated_flows", static_cast<double>(r.rerated_flows)},
      // The decomposition (groups) is topology-fixed; lanes are the
      // concurrency cap actually in effect. Both deterministic.
      {"shard_groups", static_cast<double>(plan.num_groups())},
      {"shard_lanes", static_cast<double>(plan.num_lanes())}};
  SolverOutcome out = finish_online_outcome(name(), instance, std::move(r));
  out.stats.insert(out.stats.end(), extra.begin(), extra.end());
  return out;
}

// ---------------------------------------------------------------------------
// OracleDcfsrSolver

OracleDcfsrSolver::OracleDcfsrSolver(OnlineOptions options)
    : options_(options) {}

SolverOutcome OracleDcfsrSolver::solve(const Instance& instance) const {
  // The offline algorithm's stream: when the joint rounding is
  // capacity-feasible the oracle is offline dcfsr bit for bit.
  Rng rng = solver_rng(instance, "dcfsr");
  OnlineResult r = oracle_dcfsr(instance.graph(), instance.flows(),
                                instance.model(), rng, options_);
  const std::vector<std::pair<std::string, double>> extra = {
      {"resolves", static_cast<double>(r.resolves)},
      {"fw_iterations", static_cast<double>(r.fw_iterations)},
      {"rounding_attempts", static_cast<double>(r.rounding_attempts)},
      {"batch_fallbacks", static_cast<double>(r.batch_fallbacks)},
      {"peak_in_flight", static_cast<double>(r.peak_in_flight)},
      {"first_lb", r.first_lower_bound},
      {"fw_sweeps", static_cast<double>(r.fw_stats.oracle_sweeps)},
      {"fw_edges_repriced", static_cast<double>(r.fw_stats.edges_repriced)},
      {"fw_ls_evals", static_cast<double>(r.fw_stats.line_search_evals)},
      // Admitted counts of the two contended fallback orders (-1 when
      // the joint rounding was feasible and no fallback ran); the
      // oracle committed whichever order admitted more.
      {"oracle_rcd_admitted", static_cast<double>(r.oracle_rcd_admitted)},
      {"oracle_density_admitted",
       static_cast<double>(r.oracle_density_admitted)}};
  SolverOutcome out = finish_online_outcome(name(), instance, std::move(r));
  out.stats.insert(out.stats.end(), extra.begin(), extra.end());
  return out;
}

// ---------------------------------------------------------------------------
// OnlineGreedySolver

SolverOutcome OnlineGreedySolver::solve(const Instance& instance) const {
  OnlineResult r =
      online_greedy(instance.graph(), instance.flows(), instance.model());
  const double edf_fallbacks = static_cast<double>(r.edf_fallbacks);
  SolverOutcome out = finish_online_outcome(name(), instance, std::move(r));
  out.stats.emplace_back("edf_fallbacks", edf_fallbacks);
  return out;
}

}  // namespace dcn::engine
