#include "engine/solvers.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "baselines/baselines.h"
#include "common/interval.h"

namespace dcn::engine {

// ---------------------------------------------------------------------------
// McfSolver

McfSolver::McfSolver(std::string name, DcfsOptions options, std::string description)
    : name_(std::move(name)),
      description_(std::move(description)),
      options_(options) {}

SolverOutcome McfSolver::solve(const Instance& instance) const {
  const std::vector<Path> paths =
      shortest_path_routing(instance.graph(), instance.flows());
  const DcfsResult r = most_critical_first(instance.graph(), instance.flows(),
                                           paths, instance.model(), options_);
  SolverOutcome out = finish_outcome(name_, instance, r.schedule);
  out.stats = {{"iterations", static_cast<double>(r.iterations)},
               {"speed_escalations", static_cast<double>(r.speed_escalations)},
               {"availability_fallbacks",
                static_cast<double>(r.availability_fallbacks)}};
  return out;
}

// ---------------------------------------------------------------------------
// RandomScheduleSolver

RandomScheduleSolver::RandomScheduleSolver(RandomScheduleOptions options,
                                           std::string name)
    : options_(options), name_(std::move(name)) {}

std::string RandomScheduleSolver::description() const {
  return "Random-Schedule: fractional relaxation + randomized rounding "
         "(Algorithm 2)";
}

SolverOutcome RandomScheduleSolver::solve(const Instance& instance) const {
  // Keyed by the algorithm id, not the display name: dcfsr variants
  // must draw the same stream to stay byte-identical.
  Rng rng = solver_rng(instance, "dcfsr");
  const RandomScheduleResult r = random_schedule(
      instance.graph(), instance.flows(), instance.model(), rng, options_);
  SolverOutcome out = finish_outcome(name(), instance, r.schedule);
  out.lower_bound = r.lower_bound_energy;
  out.stats = {{"lambda", r.lambda},
               {"rounding_attempts", static_cast<double>(r.rounding_attempts)},
               {"capacity_feasible", r.capacity_feasible ? 1.0 : 0.0},
               {"mean_relative_gap", r.mean_relative_gap}};
  if (!r.capacity_feasible && out.feasible) {
    // The last rounding draw violated link capacity; replay would have
    // flagged it, but keep the solver's own verdict authoritative too.
    out.feasible = false;
    out.first_issue = "no capacity-feasible rounding within attempt budget";
  }
  return out;
}

// ---------------------------------------------------------------------------
// EcmpMcfSolver

EcmpMcfSolver::EcmpMcfSolver(std::size_t width) : width_(width) {}

std::string EcmpMcfSolver::description() const {
  return "ECMP routing (width " + std::to_string(width_) +
         ") + Most-Critical-First";
}

SolverOutcome EcmpMcfSolver::solve(const Instance& instance) const {
  Rng rng = solver_rng(instance, name());
  const std::vector<Path> paths =
      ecmp_routing(instance.graph(), instance.flows(), width_, rng);
  const DcfsResult r = most_critical_first(instance.graph(), instance.flows(),
                                           paths, instance.model());
  SolverOutcome out = finish_outcome(name(), instance, r.schedule);
  out.stats = {{"iterations", static_cast<double>(r.iterations)},
               {"availability_fallbacks",
                static_cast<double>(r.availability_fallbacks)}};
  return out;
}

// ---------------------------------------------------------------------------
// GreedySolver

SolverOutcome GreedySolver::solve(const Instance& instance) const {
  Schedule schedule =
      greedy_energy_aware(instance.graph(), instance.flows(), instance.model());
  return finish_outcome(name(), instance, std::move(schedule));
}

// ---------------------------------------------------------------------------
// EdfSolver

SolverOutcome EdfSolver::solve(const Instance& instance) const {
  const Graph& g = instance.graph();
  const std::vector<Flow>& flows = instance.flows();
  const std::vector<Path> paths = shortest_path_routing(g, flows);

  // Deadline order, id tie-break (deterministic).
  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (flows[a].deadline != flows[b].deadline)
      return flows[a].deadline < flows[b].deadline;
    return flows[a].id < flows[b].id;
  });

  std::vector<IntervalSet> busy(static_cast<std::size_t>(g.num_edges()));
  Schedule schedule;
  schedule.flows.resize(flows.size());
  std::int32_t fallbacks = 0;

  for (const std::size_t i : order) {
    const Flow& flow = flows[i];
    const Path& path = paths[i];

    IntervalSet allowed{flow.span()};
    for (const EdgeId e : path.edges) {
      allowed.subtract(busy[static_cast<std::size_t>(e)]);
    }
    if (allowed.measure() <= 0.0) {
      // Span fully booked on some link: overlap (packet realization).
      allowed = IntervalSet{flow.span()};
      ++fallbacks;
    }

    const double rate = flow.volume / allowed.measure();
    schedule.flows[i].path = path;
    for (const Interval& iv : allowed.intervals()) {
      schedule.flows[i].segments.push_back({iv, rate});
      for (const EdgeId e : path.edges) {
        busy[static_cast<std::size_t>(e)].add(iv);
      }
    }
  }

  SolverOutcome out = finish_outcome(name(), instance, std::move(schedule));
  out.stats = {{"availability_fallbacks", static_cast<double>(fallbacks)}};
  return out;
}

// ---------------------------------------------------------------------------
// ExactSolver

ExactSolver::ExactSolver(ExactDcfsrOptions options) : options_(options) {}

std::string ExactSolver::description() const {
  return "exhaustive DCFSR optimum (" + std::to_string(options_.paths_per_flow) +
         " candidate paths per flow; tiny instances only)";
}

SolverOutcome ExactSolver::solve(const Instance& instance) const {
  const ExactDcfsrResult r =
      exact_dcfsr(instance.graph(), instance.flows(), instance.model(), options_);
  SolverOutcome out = finish_outcome(name(), instance, r.schedule);
  out.stats = {{"assignments_tried", static_cast<double>(r.assignments_tried)}};
  return out;
}

}  // namespace dcn::engine
