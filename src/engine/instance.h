// A solvable problem instance: the triple the whole paper operates on.
//
// Every algorithm in the library — Most-Critical-First, Random-Schedule,
// the baselines, the exact solver — consumes the same three objects: a
// network (Graph via Topology), a deadline-constrained flow set, and the
// Eq. 1 power model. Instance bundles them as one value, together with
// the seed the workload was drawn from and a human-readable name, so
// solvers, the batch runner, and the CLI all speak about "the same
// experiment" unambiguously and reproducibly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/flow.h"
#include "power/power_model.h"
#include "topology/topology.h"

namespace dcn::engine {

class Instance {
 public:
  /// Validates the flow set against the topology's graph on
  /// construction (throws ContractViolation on malformed input).
  Instance(std::string name, Topology topology, std::vector<Flow> flows,
           PowerModel model, std::uint64_t seed);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] const Graph& graph() const { return topology_.graph(); }
  [[nodiscard]] const std::vector<Flow>& flows() const { return flows_; }
  [[nodiscard]] const PowerModel& model() const { return model_; }
  /// The seed the scenario generator drew this instance with.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// [min release, max deadline] of the flow set.
  [[nodiscard]] Interval horizon() const { return flow_horizon(flows_); }

  /// One-line summary for logs and tables.
  [[nodiscard]] std::string summary() const;

 private:
  std::string name_;
  Topology topology_;
  std::vector<Flow> flows_;
  PowerModel model_;
  std::uint64_t seed_;
};

}  // namespace dcn::engine
