// Concrete Solver adapters: every algorithm of the paper behind the
// engine interface.
//
//   mcf        SP routing + Most-Critical-First, circuit-exact (the
//              paper's SP+MCF baseline; optimal DCFS rates, Theorem 1)
//   mcf_paper  SP routing + the paper-literal Algorithm 1 (per-critical-
//              link availability; bench_ablation_circuit's subject)
//   mcf_plain  SP routing + MCF without virtual weights (Theorem 1
//              ablation)
//   dcfsr      Random-Schedule: relaxation + randomized rounding
//              (Algorithm 2; also reports the fractional lower bound)
//   ecmp_mcf   ECMP routing (seeded) + Most-Critical-First
//   greedy     Online greedy energy-aware routing at density rates
//   edf        SP routing + deadline-ordered virtual-circuit packing:
//              each flow grabs the earliest time still free on every
//              link of its path and transmits at the constant rate that
//              exactly fills it — the classic deadline heuristic, no
//              energy awareness
//   exact      Exhaustive path enumeration + MCF rates (tiny instances)
//   online_dcfsr   event-driven rolling horizon: per-arrival admission
//              control + warm-started incremental re-solve of the
//              interval relaxation (src/online)
//   online_greedy  per-arrival marginal-energy routing + density-rate
//              admission with EDF fallback (src/online)
//   oracle_dcfsr   hindsight admission baseline: offline dcfsr over the
//              whole trace with admission control — the denominator of
//              bench_online's empirical competitive ratios (src/online)
//
// The online solvers see the instance as an arrival stream (flows
// revealed at their release times) and may *reject* flows; for them
// `feasible` means every **admitted** flow is replay-validated on the
// admitted subset, and the rejected count travels in the stats.
#pragma once

#include <cstdint>

#include "dcfs/most_critical_first.h"
#include "dcfsr/exact.h"
#include "dcfsr/random_schedule.h"
#include "engine/solver.h"
#include "online/online_scheduler.h"
#include "online/sharded.h"

namespace dcn::engine {

/// Shortest-path routing + Most-Critical-First rate assignment.
class McfSolver final : public Solver {
 public:
  explicit McfSolver(std::string name, DcfsOptions options = {},
                     std::string description =
                         "SP routing + Most-Critical-First (optimal DCFS rates)");

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::string description() const override { return description_; }
  [[nodiscard]] SolverOutcome solve(const Instance& instance) const override;

 private:
  std::string name_;
  std::string description_;
  DcfsOptions options_;
};

/// Random-Schedule (Algorithm 2): relaxation + randomized rounding.
/// Variants (e.g. dcfsr_mt with the parallel Frank-Wolfe oracle) share
/// the algorithm's rng stream, so every variant produces byte-identical
/// outcomes — only the wall-clock differs.
class RandomScheduleSolver final : public Solver {
 public:
  explicit RandomScheduleSolver(RandomScheduleOptions options = {},
                                std::string name = "dcfsr");

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] SolverOutcome solve(const Instance& instance) const override;

 private:
  RandomScheduleOptions options_;
  std::string name_;
};

/// ECMP routing (one of up to `width` equal-cost shortest paths per
/// flow, drawn with the engine's deterministic per-cell rng) + MCF.
class EcmpMcfSolver final : public Solver {
 public:
  explicit EcmpMcfSolver(std::size_t width = 8);

  [[nodiscard]] std::string name() const override { return "ecmp_mcf"; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] SolverOutcome solve(const Instance& instance) const override;

 private:
  std::size_t width_;
};

/// Online greedy energy-aware routing; flows transmit at density.
class GreedySolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "greedy"; }
  [[nodiscard]] std::string description() const override {
    return "online greedy energy-aware routing at density rates";
  }
  [[nodiscard]] SolverOutcome solve(const Instance& instance) const override;
};

/// Deadline-ordered virtual-circuit packing on shortest paths: the
/// energy-oblivious EDF baseline. Flows are processed by (deadline, id);
/// each receives the earliest still-free time on all links of its path
/// and the single constant rate that exactly fills that free time. When
/// a flow's span is fully booked on some link it falls back to its span
/// (overlapping is legal in the packet realization, and the replayer
/// charges the superadditive cost honestly) — counted in the stats.
class EdfSolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "edf"; }
  [[nodiscard]] std::string description() const override {
    return "SP routing + deadline-ordered circuit packing (no energy awareness)";
  }
  [[nodiscard]] SolverOutcome solve(const Instance& instance) const override;
};

/// Exhaustive DCFSR optimum over candidate paths (tiny instances only;
/// throws ContractViolation when the assignment space exceeds its cap).
class ExactSolver final : public Solver {
 public:
  explicit ExactSolver(ExactDcfsrOptions options = {});

  [[nodiscard]] std::string name() const override { return "exact"; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] SolverOutcome solve(const Instance& instance) const override;

 private:
  ExactDcfsrOptions options_;
};

/// Online rolling horizon with warm-started relaxation re-solves
/// (src/online). The rounding rng is keyed to the "dcfsr" stream on
/// purpose: when every flow of the instance arrives at t = 0 the run
/// degenerates to exactly offline Random-Schedule (the differential
/// test's anchor).
class OnlineDcfsrSolver final : public Solver {
 public:
  /// `name` distinguishes registered option variants (the registry's
  /// "online_dcfsr_id" keeps the legacy id-order admission fallback
  /// for A/B runs); the rng stays keyed to "dcfsr" regardless.
  explicit OnlineDcfsrSolver(OnlineOptions options = {},
                             std::string name = "online_dcfsr");

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::string description() const override {
    return "online arrivals: admission control + warm-started relaxation "
           "re-solve per arrival";
  }
  [[nodiscard]] SolverOutcome solve(const Instance& instance) const override;

 private:
  OnlineOptions options_;
  std::string name_;
};

/// The sharded always-on scheduling service behind the batch API
/// (src/online/sharded.h): flows partitioned by source edge-group, one
/// long-lived shard worker per group (phase A runs groups in parallel
/// across `workers` lanes), a serial core-link coordinator arbitrating
/// every commit against the global load index in deterministic
/// (event-time, shard-id, flow-id) order. Byte-identical for any shard
/// count >= 2 and any worker count; single-lane plans delegate to
/// online_dcfsr outright. The rng is keyed to "dcfsr" like every
/// dcfsr-family solver (the delegating case then matches the flat
/// solver's stream draw for draw).
class OnlineShardedSolver final : public Solver {
 public:
  /// `shards` = requested lane count (0: one lane per source group);
  /// `workers` = phase-A thread cap (0: hardware concurrency).
  explicit OnlineShardedSolver(OnlineOptions options = {},
                               std::int32_t shards = 0,
                               std::int32_t workers = 0,
                               std::string name = "online_dcfsr_sharded");

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::string description() const override {
    return "sharded online service: per-source-group shard workers + "
           "core-link coordinator (byte-identical at any worker count)";
  }
  [[nodiscard]] SolverOutcome solve(const Instance& instance) const override;

 private:
  OnlineOptions options_;
  std::int32_t shards_;
  std::int32_t workers_;
  std::string name_;
};

/// Hindsight admission oracle: offline dcfsr over the whole trace with
/// admission control (joint rounding, then RCD-ordered per-flow
/// fallback). Shares the "dcfsr" rng stream, so the joint-feasible case
/// is offline Random-Schedule bit for bit; its admitted count and
/// energy are the denominators of bench_online's competitive ratios.
class OracleDcfsrSolver final : public Solver {
 public:
  explicit OracleDcfsrSolver(OnlineOptions options = {});

  [[nodiscard]] std::string name() const override { return "oracle_dcfsr"; }
  [[nodiscard]] std::string description() const override {
    return "hindsight admission oracle: offline dcfsr over the whole trace "
           "with admission control (competitive-ratio baseline)";
  }
  [[nodiscard]] SolverOutcome solve(const Instance& instance) const override;

 private:
  OnlineOptions options_;
};

/// Online greedy admission: marginal-energy routing at density rates
/// with an EDF fallback fill (src/online). Deterministic.
class OnlineGreedySolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "online_greedy"; }
  [[nodiscard]] std::string description() const override {
    return "online arrivals: marginal-energy routing + density admission "
           "with EDF fallback";
  }
  [[nodiscard]] SolverOutcome solve(const Instance& instance) const override;
};

}  // namespace dcn::engine
