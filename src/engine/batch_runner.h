// Multi-threaded solver x scenario x seed grid execution.
//
// BatchRunner expands a BatchSpec into a flat list of cells (scenario-
// major, then solver, then seed), executes them on `jobs` worker
// threads, replays every schedule, and aggregates per-solver statistics
// after the join. Results are *thread-count invariant*: each cell
// builds its own instance and solver, randomized solvers derive their
// stream from (instance, solver) alone, results land in a pre-sized
// vector indexed by cell, and aggregation runs serially in cell order —
// so --jobs 8 is byte-identical to --jobs 1 (asserted by
// batch_runner_test).
//
// A cell whose solver throws (exact on a too-large instance, an
// infeasible workload) becomes a failed cell carrying the exception
// text; the grid keeps going.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/registry.h"
#include "engine/scenario.h"
#include "engine/solver.h"

namespace dcn::engine {

/// The grid to run.
struct BatchSpec {
  std::vector<std::string> solvers;
  std::vector<std::string> scenarios;
  std::vector<std::uint64_t> seeds{1};
  ScenarioOptions options;
  /// Worker threads; values < 1 are treated as 1.
  std::int32_t jobs = 1;
  /// When true, drop each cell's Schedule after replay (keeps big grids
  /// in bounded memory; outcomes keep their scalar fields).
  bool discard_schedules = false;
};

/// One executed (scenario, solver, seed) cell.
struct CellResult {
  std::string scenario;
  std::string solver;
  std::uint64_t seed = 0;

  /// False when the solver threw; `error` holds the exception text and
  /// `outcome` is default-constructed.
  bool ran = false;
  std::string error;

  SolverOutcome outcome;

  /// Wall-clock of instance build + solve + replay. Informational only:
  /// excluded from canonical() and from aggregates.
  double elapsed_ms = 0.0;
};

/// Per-solver aggregate over all cells that ran.
struct SolverAggregate {
  std::string solver;
  std::int32_t cells = 0;     // cells attempted
  std::int32_t ran = 0;       // cells that did not throw
  std::int32_t feasible = 0;  // replay-validated cells
  double total_energy = 0.0;  // sum of replayed Phi_f over ran cells
  double mean_energy = 0.0;   // total_energy / ran (0 when none)
  /// Mean of energy / lower_bound over cells with a lower bound.
  double mean_lb_ratio = 0.0;
  std::int32_t lb_cells = 0;
};

struct BatchResult {
  std::vector<CellResult> cells;          // grid order
  std::vector<SolverAggregate> solvers;   // spec order

  /// Deterministic full dump (one line per cell + aggregates, %.17g,
  /// no timing) — the byte-comparable form.
  [[nodiscard]] std::string canonical() const;

  /// Human-readable aggregate table.
  [[nodiscard]] std::string table() const;

  [[nodiscard]] bool all_feasible() const;
};

/// Expands and runs the grid. Solver and scenario names are resolved
/// up front: unknown names throw UnknownSolverError /
/// UnknownScenarioError before any work starts.
[[nodiscard]] BatchResult run_batch(const SolverRegistry& registry,
                                    const ScenarioSuite& suite,
                                    const BatchSpec& spec);

}  // namespace dcn::engine
