// Named, seeded scenarios: topology presets x workload generators.
//
// A scenario spec is "<topology>/<workload>", e.g. "fat_tree/paper" or
// "leaf_spine/incast". The suite crosses the topology builders
// (src/topology) with the workload generators (src/flow/workload) into
// reproducible Instances: the same (spec, seed, options) always yields
// the identical instance, on any thread, in any order — the scenario
// rng is derived from mix_seed(seed, spec), never shared.
//
// Topology presets (sized so every solver terminates in seconds, with
// *8 / *_wide variants at the paper's 128-host evaluation scale):
//   line fat_tree fat_tree8 bcube bcube42 leaf_spine leaf_spine_wide
//   random
// Workload presets:
//   paper incast shuffle permutation slack
//   poisson websearch hadoop   (online arrival processes: Poisson
//   releases at `arrival_rate`, fixed / websearch-tailed /
//   hadoop-tailed sizes — the inputs the online solvers re-plan on)
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/random.h"
#include "engine/instance.h"
#include "flow/workload.h"

namespace dcn::engine {

/// Thrown for unknown scenario specs; the message lists valid names.
class UnknownScenarioError : public std::invalid_argument {
 public:
  explicit UnknownScenarioError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Knobs shared by the workload generators. Workloads clamp the counts
/// to what the chosen topology's host set supports.
struct ScenarioOptions {
  /// Flow count for "paper" / "slack"; pair budget for "permutation".
  std::int32_t num_flows = 40;

  // Power model of Eq. 1 (defaults: the paper's x^2).
  double alpha = 2.0;
  double sigma = 0.0;
  double mu = 1.0;
  double capacity = std::numeric_limits<double>::infinity();

  // Pattern-specific shape.
  std::int32_t senders = 8;    // incast fan-in
  std::int32_t mappers = 4;    // shuffle
  std::int32_t reducers = 4;   // shuffle
  double volume = 5.0;         // per-flow volume (incast/shuffle/slack/online)
  double slack = 2.0;          // deadline looseness (slack/online workloads)
  double base_rate = 4.0;      // reference rate (slack/online workloads)
  Interval window{0.0, 20.0};  // common window (incast/shuffle/slack)
  /// Poisson arrival intensity of the online workloads
  /// (poisson/websearch/hadoop); sweep it to vary sustained load.
  double arrival_rate = 2.0;

  [[nodiscard]] PowerModel power_model() const {
    return PowerModel(sigma, mu, alpha, capacity);
  }
};

/// The OnlineWorkloadParams the online scenario workloads
/// (poisson/websearch/hadoop) derive from ScenarioOptions — public so a
/// sustained-stream service can synthesize the exact arrival process a
/// scenario instance would materialize.
[[nodiscard]] OnlineWorkloadParams online_workload_params(
    const ScenarioOptions& options, SizeModel model);

class ScenarioSuite {
 public:
  /// The default preset catalogue described in the header comment.
  ScenarioSuite();

  /// Shared immutable default suite.
  static const ScenarioSuite& default_suite();

  [[nodiscard]] std::vector<std::string> topology_names() const;
  [[nodiscard]] std::vector<std::string> workload_names() const;
  /// Every "<topology>/<workload>" combination, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] bool contains(const std::string& spec) const;

  /// Builds the instance named "<topology>/<workload>#<seed>". Throws
  /// UnknownScenarioError for malformed or unknown specs.
  [[nodiscard]] Instance build(const std::string& spec, std::uint64_t seed,
                               const ScenarioOptions& options = {}) const;

  /// Builds only the topology of "<topology>/<workload>#<seed>" and
  /// returns the scenario rng advanced past the topology draw. For the
  /// online workloads, feeding that rng to a PoissonEventStream with
  /// online_workload_params() yields — flow for flow — the trace
  /// build() would materialize with the same (spec, seed, options):
  /// the sustained-stream service's bit-identical bridge to scenario
  /// instances. Throws UnknownScenarioError like build().
  [[nodiscard]] std::pair<Topology, Rng> build_topology(
      const std::string& spec, std::uint64_t seed) const;

 private:
  using TopologyFactory = std::function<Topology(Rng&)>;
  using WorkloadFactory = std::function<std::vector<Flow>(
      const Topology&, const ScenarioOptions&, Rng&)>;

  std::map<std::string, TopologyFactory> topologies_;
  std::map<std::string, WorkloadFactory> workloads_;
};

}  // namespace dcn::engine
