#include "engine/instance.h"

#include <cstdio>
#include <utility>

namespace dcn::engine {

Instance::Instance(std::string name, Topology topology, std::vector<Flow> flows,
                   PowerModel model, std::uint64_t seed)
    : name_(std::move(name)),
      topology_(std::move(topology)),
      flows_(std::move(flows)),
      model_(model),
      seed_(seed) {
  validate_flows(topology_.graph(), flows_);
}

std::string Instance::summary() const {
  const Interval h = horizon();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s: %d hosts / %d switches / %d links, %zu flows, horizon "
                "[%.6g, %.6g], alpha=%.6g sigma=%.6g, seed=%llu",
                name_.c_str(), topology_.num_hosts(), topology_.num_switches(),
                graph().num_edges(), flows_.size(), h.lo, h.hi, model_.alpha(),
                model_.sigma(), static_cast<unsigned long long>(seed_));
  return buf;
}

}  // namespace dcn::engine
