#include "baselines/baselines.h"

#include <algorithm>
#include <numeric>

#include "common/contracts.h"
#include "common/piecewise.h"
#include "graph/k_shortest.h"
#include "graph/shortest_path.h"

namespace dcn {

std::vector<Path> shortest_path_routing(const Graph& g,
                                        const std::vector<Flow>& flows) {
  std::vector<Path> paths;
  paths.reserve(flows.size());
  for (const Flow& fl : flows) {
    auto p = bfs_shortest_path(g, fl.src, fl.dst);
    DCN_ENSURES(p.has_value());
    paths.push_back(std::move(*p));
  }
  return paths;
}

std::vector<Path> ecmp_routing(const Graph& g, const std::vector<Flow>& flows,
                               std::size_t width, Rng& rng) {
  DCN_EXPECTS(width >= 1);
  std::vector<Path> paths;
  paths.reserve(flows.size());
  for (const Flow& fl : flows) {
    std::vector<Path> choices = equal_cost_paths(g, fl.src, fl.dst, width);
    DCN_ENSURES(!choices.empty());
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(choices.size()) - 1));
    paths.push_back(std::move(choices[pick]));
  }
  return paths;
}

DcfsResult sp_mcf(const Graph& g, const std::vector<Flow>& flows,
                  const PowerModel& model) {
  return most_critical_first(g, flows, shortest_path_routing(g, flows), model);
}

DcfsResult ecmp_mcf(const Graph& g, const std::vector<Flow>& flows,
                    const PowerModel& model, std::size_t width, Rng& rng) {
  return most_critical_first(g, flows, ecmp_routing(g, flows, width, rng), model);
}

double marginal_energy(const StepFunction& load, const Interval& span, double d,
                       const PowerModel& model) {
  double covered = 0.0;
  double total = 0.0;
  for (const auto& [iv, value] : load.segments()) {
    const Interval clip = iv.intersect(span);
    if (clip.empty()) continue;
    covered += clip.measure();
    total += (model.f(value + d) - model.f(value)) * clip.measure();
  }
  const double gaps = span.measure() - covered;
  if (gaps > 0.0) total += model.f(d) * gaps;
  return total;
}

Schedule greedy_energy_aware(const Graph& g, const std::vector<Flow>& flows,
                             const PowerModel& model) {
  validate_flows(g, flows);
  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&flows](std::size_t a, std::size_t b) {
    if (flows[a].release != flows[b].release) {
      return flows[a].release < flows[b].release;
    }
    return flows[a].id < flows[b].id;
  });

  std::vector<StepFunction> load(static_cast<std::size_t>(g.num_edges()));
  Schedule schedule;
  schedule.flows.resize(flows.size());

  std::vector<double> weights(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (std::size_t idx : order) {
    const Flow& fl = flows[idx];
    const double d = fl.density();
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      // Tiny positive floor keeps Dijkstra well-posed when the marginal
      // cost is zero everywhere (sigma = 0 and empty network).
      weights[static_cast<std::size_t>(e)] = std::max(
          marginal_energy(load[static_cast<std::size_t>(e)], fl.span(), d, model),
          1e-12);
    }
    auto path = dijkstra_shortest_path(g, fl.src, fl.dst, weights);
    DCN_ENSURES(path.has_value());
    for (EdgeId e : path->edges) {
      load[static_cast<std::size_t>(e)].add(fl.span(), d);
    }
    schedule.flows[idx].path = std::move(*path);
    schedule.flows[idx].segments = {{fl.span(), d}};
  }
  return schedule;
}

}  // namespace dcn
