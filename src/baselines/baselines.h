// Baseline routing and scheduling schemes.
//
// SP+MCF is the comparison the paper's Fig. 2 reports: shortest-path
// routing (the norm in production data centers) followed by the optimal
// DCFS rate assignment (Most-Critical-First) on those routes — "the
// lower bound of the energy consumption by SP routing". ECMP+MCF and
// the greedy energy-aware router are additional baselines for the
// ablation and topology studies.
#pragma once

#include <vector>

#include "common/piecewise.h"
#include "common/random.h"
#include "dcfs/most_critical_first.h"
#include "flow/flow.h"
#include "graph/path.h"
#include "power/power_model.h"
#include "schedule/schedule.h"

namespace dcn {

/// Marginal energy of adding density `d` to edge load `load` over
/// `span`: integral of f(x + d) - f(x), where stretches with x = 0
/// contribute f(d) (the link switches on). The edge weight of the
/// greedy energy-aware routers (offline `greedy`, online_greedy).
[[nodiscard]] double marginal_energy(const StepFunction& load, const Interval& span,
                                     double d, const PowerModel& model);

/// Minimum-hop path per flow (deterministic tie-break).
[[nodiscard]] std::vector<Path> shortest_path_routing(const Graph& g,
                                                      const std::vector<Flow>& flows);

/// ECMP-style routing: each flow picks uniformly among its (up to
/// `width`) minimum-hop equal-cost paths.
[[nodiscard]] std::vector<Path> ecmp_routing(const Graph& g,
                                             const std::vector<Flow>& flows,
                                             std::size_t width, Rng& rng);

/// SP + Most-Critical-First: the paper's baseline.
[[nodiscard]] DcfsResult sp_mcf(const Graph& g, const std::vector<Flow>& flows,
                                const PowerModel& model);

/// ECMP + Most-Critical-First.
[[nodiscard]] DcfsResult ecmp_mcf(const Graph& g, const std::vector<Flow>& flows,
                                  const PowerModel& model, std::size_t width,
                                  Rng& rng);

/// Greedy energy-aware routing: flows are routed one at a time (release
/// order) on the path minimizing the marginal energy increase
/// integral_span [f(x_e(t) + D_i) - f(x_e(t))] dt against the density
/// load profile of already-routed flows; each flow then transmits at
/// its density. A consolidation heuristic in the spirit of
/// energy-aware routing schemes ([2], [29] in the paper).
///
/// This is also a genuine *online* algorithm for DCFSR: each routing
/// decision uses only flows released earlier, and the density rate
/// never needs revision (remaining volume / remaining span stays
/// constant when executed). Comparing it against offline
/// Random-Schedule (bench_ablation_sigma's Greedy column) measures the
/// value of knowing the future.
[[nodiscard]] Schedule greedy_energy_aware(const Graph& g,
                                           const std::vector<Flow>& flows,
                                           const PowerModel& model);

}  // namespace dcn
