// One-dimensional minimization of unimodal functions.
//
// Header-only templates: these run on the innermost hot path of the
// Frank-Wolfe solver (hundreds of millions of objective evaluations
// per cold solve), where a type-erased std::function callback costs
// more than the arithmetic it wraps. Taking the callable as a template
// parameter lets the per-edge cost (the analytic envelope fast path in
// particular) inline into the search loop. The arithmetic is identical
// to the former out-of-line definitions, so results are bit-equal.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "common/contracts.h"

namespace dcn {

/// Golden-section search for the minimizer of a unimodal `fn` on
/// [lo, hi]. Returns the abscissa of the minimum within `tol` of the
/// true minimizer. Deterministic, derivative-free: exactly what the
/// Frank-Wolfe step-size search needs (the restricted objective is
/// convex, hence unimodal).
template <class Fn>
[[nodiscard]] double golden_section_minimize(const Fn& fn, double lo,
                                             double hi, double tol = 1e-7) {
  DCN_EXPECTS(lo <= hi);
  DCN_EXPECTS(tol > 0.0);
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo, b = hi;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = fn(c);
  double fd = fn(d);
  while (b - a > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = fn(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = fn(d);
    }
  }
  return 0.5 * (a + b);
}

/// Golden-section search specialized to the Frank-Wolfe restricted
/// objective along a direction: minimizes
///
///     phi(t) = sum_i cost(x_i + t * d_i)        over t in [0, t_max]
///
/// where `diff` holds one (x_i, d_i) pair per edge whose flow the step
/// changes (off-support edges only add a constant, which cannot move
/// the minimizer). Used by the pairwise Frank-Wolfe step, whose
/// direction support is the symmetric difference of the away and
/// target paths. Values are clamped at 0 before evaluation — a full
/// drain (d_i = -x_i at t = t_max) can dip below zero by float dust —
/// and entries at or below 1e-15 are treated as exactly idle, matching
/// the solver's support threshold. A bracket converging onto either
/// endpoint snaps to it exactly when the endpoint is no worse, so
/// callers can recognize boundary steps: t = t_max is a drop step
/// (away atom fully drained), t = 0 is a stall.
template <class CostFn>
[[nodiscard]] double golden_section_minimize_direction(
    const CostFn& cost, const std::vector<std::pair<double, double>>& diff,
    double t_max, double tol = 1e-6) {
  DCN_EXPECTS(t_max > 0.0);
  const auto phi = [&](double t) {
    double total = 0.0;
    for (const auto& [x, d] : diff) {
      const double v = std::max(0.0, x + t * d);
      if (v > 1e-15) total += cost(v);
    }
    return total;
  };
  double t = golden_section_minimize(phi, 0.0, t_max, tol);
  // Snap onto an endpoint the bracket converged against: the interior
  // midpoint golden section returns can never be exactly 0 or t_max,
  // but the pairwise caller needs exact boundary steps (a drop step
  // must drain its away atom completely, and an exact 0 signals the
  // fallback). Convexity makes the single comparison sufficient.
  if (t_max - t <= 2.0 * tol && phi(t_max) <= phi(t)) return t_max;
  if (t <= 2.0 * tol && phi(0.0) <= phi(t)) return 0.0;
  return t;
}

}  // namespace dcn
