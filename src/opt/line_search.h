// One-dimensional minimization of unimodal functions.
#pragma once

#include <functional>
#include <utility>
#include <vector>

namespace dcn {

/// Golden-section search for the minimizer of a unimodal `fn` on
/// [lo, hi]. Returns the abscissa of the minimum within `tol` of the
/// true minimizer. Deterministic, derivative-free: exactly what the
/// Frank-Wolfe step-size search needs (the restricted objective is
/// convex, hence unimodal).
[[nodiscard]] double golden_section_minimize(const std::function<double(double)>& fn,
                                             double lo, double hi, double tol = 1e-7);

/// Golden-section search specialized to the Frank-Wolfe restricted
/// objective along a direction: minimizes
///
///     phi(t) = sum_i cost(x_i + t * d_i)        over t in [0, t_max]
///
/// where `diff` holds one (x_i, d_i) pair per edge whose flow the step
/// changes (off-support edges only add a constant, which cannot move
/// the minimizer). Used by the pairwise Frank-Wolfe step, whose
/// direction support is the symmetric difference of the away and
/// target paths. Values are clamped at 0 before evaluation — a full
/// drain (d_i = -x_i at t = t_max) can dip below zero by float dust —
/// and entries at or below 1e-15 are treated as exactly idle, matching
/// the solver's support threshold. A bracket converging onto either
/// endpoint snaps to it exactly when the endpoint is no worse, so
/// callers can recognize boundary steps: t = t_max is a drop step
/// (away atom fully drained), t = 0 is a stall.
[[nodiscard]] double golden_section_minimize_direction(
    const std::function<double(double)>& cost,
    const std::vector<std::pair<double, double>>& diff, double t_max,
    double tol = 1e-6);

}  // namespace dcn
