// One-dimensional minimization of unimodal functions.
#pragma once

#include <functional>

namespace dcn {

/// Golden-section search for the minimizer of a unimodal `fn` on
/// [lo, hi]. Returns the abscissa of the minimum within `tol` of the
/// true minimizer. Deterministic, derivative-free: exactly what the
/// Frank-Wolfe step-size search needs (the restricted objective is
/// convex, hence unimodal).
[[nodiscard]] double golden_section_minimize(const std::function<double(double)>& fn,
                                             double lo, double hi, double tol = 1e-7);

}  // namespace dcn
