#include "opt/line_search.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace dcn {

double golden_section_minimize(const std::function<double(double)>& fn, double lo,
                               double hi, double tol) {
  DCN_EXPECTS(lo <= hi);
  DCN_EXPECTS(tol > 0.0);
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo, b = hi;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = fn(c);
  double fd = fn(d);
  while (b - a > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = fn(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = fn(d);
    }
  }
  return 0.5 * (a + b);
}

double golden_section_minimize_direction(
    const std::function<double(double)>& cost,
    const std::vector<std::pair<double, double>>& diff, double t_max,
    double tol) {
  DCN_EXPECTS(t_max > 0.0);
  const auto phi = [&](double t) {
    double total = 0.0;
    for (const auto& [x, d] : diff) {
      const double v = std::max(0.0, x + t * d);
      if (v > 1e-15) total += cost(v);
    }
    return total;
  };
  double t = golden_section_minimize(phi, 0.0, t_max, tol);
  // Snap onto an endpoint the bracket converged against: the interior
  // midpoint golden section returns can never be exactly 0 or t_max,
  // but the pairwise caller needs exact boundary steps (a drop step
  // must drain its away atom completely, and an exact 0 signals the
  // fallback). Convexity makes the single comparison sufficient.
  if (t_max - t <= 2.0 * tol && phi(t_max) <= phi(t)) return t_max;
  if (t <= 2.0 * tol && phi(0.0) <= phi(t)) return 0.0;
  return t;
}

}  // namespace dcn
