#include "opt/line_search.h"

#include <cmath>

#include "common/contracts.h"

namespace dcn {

double golden_section_minimize(const std::function<double(double)>& fn, double lo,
                               double hi, double tol) {
  DCN_EXPECTS(lo <= hi);
  DCN_EXPECTS(tol > 0.0);
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo, b = hi;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = fn(c);
  double fd = fn(d);
  while (b - a > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = fn(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = fn(d);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace dcn
