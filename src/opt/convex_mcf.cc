#include "opt/convex_mcf.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/contracts.h"
#include "graph/path.h"
#include "opt/line_search.h"

namespace dcn {

namespace {

/// Adds `delta` mass to the active-set atom carrying exactly `edges`,
/// appending a new atom when the path is not active yet. Both step
/// rules funnel their target-path bookkeeping through here so the
/// active-set semantics cannot diverge between them.
void merge_into_atoms(AtomSet& atoms, const std::vector<EdgeId>& edges,
                      double delta) {
  for (PathAtom& atom : atoms) {
    if (atom.edges == edges) {
      atom.weight += delta;
      return;
    }
  }
  atoms.push_back({edges, delta});
}

/// Sorts (src, commodity) pairs so commodities sharing a source form a
/// contiguous run; the index tie-break keeps the order deterministic.
void group_by_source(const std::vector<Commodity>& commodities,
                     std::vector<std::pair<NodeId, std::size_t>>& by_source) {
  by_source.clear();
  by_source.reserve(commodities.size());
  for (std::size_t c = 0; c < commodities.size(); ++c) {
    by_source.emplace_back(commodities[c].src, c);
  }
  std::sort(by_source.begin(), by_source.end());
}

}  // namespace

ConvexMcfSolution solve_convex_mcf(const ConvexMcfProblem& problem,
                                   const FrankWolfeOptions& options,
                                   const std::vector<SparseEdgeFlow>* warm_start,
                                   ConvexMcfWorkspace* workspace,
                                   const std::vector<AtomSet>* warm_atoms) {
  DCN_EXPECTS(problem.graph != nullptr);
  DCN_EXPECTS(static_cast<bool>(problem.cost));
  DCN_EXPECTS(static_cast<bool>(problem.cost_derivative));
  const Graph& g = *problem.graph;
  const auto num_edges = static_cast<std::size_t>(g.num_edges());
  const std::size_t num_commodities = problem.commodities.size();
  for (const Commodity& com : problem.commodities) {
    DCN_EXPECTS(g.valid_node(com.src));
    DCN_EXPECTS(g.valid_node(com.dst));
    DCN_EXPECTS(com.src != com.dst);
    DCN_EXPECTS(com.demand > 0.0);
  }

  ConvexMcfSolution sol;
  sol.total_flow.assign(num_edges, 0.0);
  if (num_commodities == 0) return sol;

  ConvexMcfWorkspace local_ws;
  ConvexMcfWorkspace& ws = workspace != nullptr ? *workspace : local_ws;

  // Restore the workspace invariants (weights all w_zero, target flow
  // all zero) when the graph, the cost model, or an interrupted prior
  // solve invalidated them.
  const double w_zero =
      std::max(problem.cost_derivative(0.0), problem.min_edge_weight);
  if (ws.weights_.size() != num_edges || ws.w_zero_ != w_zero || !ws.clean_) {
    ws.weights_.assign(num_edges, w_zero);
    ws.target_total_.assign(num_edges, 0.0);
    ws.w_zero_ = w_zero;
  }
  if (ws.x_mark_.size() != num_edges) {
    ws.x_mark_.assign(num_edges, 0);
    ws.y_mark_.assign(num_edges, 0);
    ws.x_generation_ = 0;
    ws.y_generation_ = 0;
  }
  const bool pairwise = options.step_rule == FrankWolfeStepRule::kPairwise;
  if (pairwise && ws.dir_mark_.size() != num_edges) {
    ws.direction_.assign(num_edges, 0.0);
    ws.dir_mark_.assign(num_edges, 0);
    ws.dir_generation_ = 0;
  }
  ws.clean_ = false;

  ++ws.x_generation_;
  ws.x_support_.clear();
  auto touch_x = [&ws](EdgeId e) {
    const auto i = static_cast<std::size_t>(e);
    if (ws.x_mark_[i] != ws.x_generation_) {
      ws.x_mark_[i] = ws.x_generation_;
      ws.x_support_.push_back(e);
    }
  };

  ws.csr_.build(g);
  group_by_source(problem.commodities, ws.by_source_);
  ws.group_bounds_.clear();
  for (std::size_t lo = 0; lo < ws.by_source_.size();) {
    std::size_t hi = lo;
    while (hi < ws.by_source_.size() &&
           ws.by_source_[hi].first == ws.by_source_[lo].first) {
      ++hi;
    }
    ws.group_bounds_.emplace_back(lo, hi);
    lo = hi;
  }

  // Lazily materialize the oracle pool when parallelism is requested.
  // 0 resolves to hardware concurrency here so a reused workspace never
  // silently keeps a pool of the wrong width — and a single-core host
  // resolves to 1 and skips the pool (and its dispatch overhead)
  // entirely.
  std::size_t requested_threads = static_cast<std::size_t>(
      options.oracle_threads < 0 ? 1 : options.oracle_threads);
  if (requested_threads == 0) {
    requested_threads =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (requested_threads > 1 &&
      (ws.pool_ == nullptr || ws.pool_->threads() != requested_threads)) {
    ws.pool_ = std::make_unique<WorkerPool>(requested_threads);
  }
  WorkerPool* pool = requested_threads > 1 ? ws.pool_.get() : nullptr;
  if (pool != nullptr) {
    ws.worker_dijkstra_.resize(pool->threads());
    ws.worker_targets_.resize(pool->threads());
  }

  // One early-exit Dijkstra per distinct source; paths land in
  // ws.target_paths_ indexed by commodity. Each source group writes a
  // disjoint slice, so the parallel dispatch is byte-deterministic.
  auto solve_group = [&](const std::vector<double>& weights, std::size_t group,
                         DijkstraWorkspace& dijkstra,
                         std::vector<NodeId>& targets) {
    const auto [lo, hi] = ws.group_bounds_[group];
    const NodeId src = ws.by_source_[lo].first;
    targets.clear();
    for (std::size_t i = lo; i < hi; ++i) {
      targets.push_back(problem.commodities[ws.by_source_[i].second].dst);
    }
    dijkstra_sweep(ws.csr_, src, weights, targets, dijkstra);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t c = ws.by_source_[i].second;
      const bool reached = workspace_path_into(
          g, dijkstra, src, problem.commodities[c].dst, ws.target_paths_[c]);
      DCN_ENSURES(reached);
    }
  };
  auto cheapest_paths = [&](const std::vector<double>& weights) {
    ws.target_paths_.resize(num_commodities);
    if (pool != nullptr && ws.group_bounds_.size() > 1) {
      pool->run(ws.group_bounds_.size(),
                [&](std::size_t group, std::size_t worker) {
                  solve_group(weights, group, ws.worker_dijkstra_[worker],
                              ws.worker_targets_[worker]);
                });
    } else {
      for (std::size_t group = 0; group < ws.group_bounds_.size(); ++group) {
        solve_group(weights, group, ws.dijkstra_, ws.group_targets_);
      }
    }
  };

  // Initial point: warm start when shapes match, otherwise route every
  // commodity on its cheapest path under the empty-network marginal
  // cost — which is exactly the clean workspace weights vector.
  // Commodities with a carried active set (pairwise only) skip the row
  // copy: their rows are rebuilt from the atoms below, so the atom
  // representation and the edge flow agree to the last bit.
  const bool atoms_carried = pairwise && warm_atoms != nullptr &&
                             warm_atoms->size() == num_commodities;
  auto has_carried_atoms = [&](std::size_t c) {
    if (!atoms_carried) return false;
    for (const PathAtom& atom : (*warm_atoms)[c]) {
      if (atom.weight > 1e-12) return true;
    }
    return false;
  };
  std::vector<SparseEdgeFlow>& rows = sol.commodity_flow;
  rows.assign(num_commodities, {});
  bool warm_rows = false;
  if (warm_start != nullptr && warm_start->size() == num_commodities) {
    warm_rows = true;
    for (std::size_t c = 0; c < num_commodities; ++c) {
      if (has_carried_atoms(c)) continue;
      for (const auto& [e, v] : (*warm_start)[c]) {
        DCN_EXPECTS(g.valid_edge(e));
        if (v > 1e-15) rows[c].emplace_back(e, v);
      }
    }
  } else {
    cheapest_paths(ws.weights_);
    for (std::size_t c = 0; c < num_commodities; ++c) {
      for (EdgeId e : ws.target_paths_[c].edges) {
        sparse_flow_add(rows[c], e, problem.commodities[c].demand);
      }
    }
  }

  // Pairwise mode: seed each commodity's active set. A carried set
  // (warm_atoms) is adopted directly — dust atoms dropped, the row
  // rebuilt as the atoms' edge-sum — skipping the decomposition below.
  // Otherwise a warm row is a convex combination of paths (the solver's
  // own output shape), so the Raghavan-Tompson extraction recovers its
  // atoms; the row is then rebuilt from the atoms so the atom
  // representation and the edge flow agree to the last bit (the
  // extraction discards residual float dust). Cold rows are a single
  // cheapest-path atom already. An empty row leaves an empty active
  // set, and that commodity simply rides the classic fallback steps.
  std::vector<AtomSet>& atoms = ws.atoms_;
  if (pairwise) {
    atoms.assign(num_commodities, {});
    for (std::size_t c = 0; c < num_commodities; ++c) {
      if (has_carried_atoms(c)) {
        // The carried atoms define the commodity's initial point: drop
        // whatever the row holds (the cold-start path when warm_start
        // was absent) so the rebuild below cannot stack on top of it.
        rows[c].clear();
        for (const PathAtom& atom : (*warm_atoms)[c]) {
          if (atom.weight <= 1e-12) continue;
          atoms[c].push_back(atom);
          for (const EdgeId e : atom.edges) {
            DCN_EXPECTS(g.valid_edge(e));
            sparse_flow_add(rows[c], e, atom.weight);
          }
        }
        std::sort(rows[c].begin(), rows[c].end());
        continue;
      }
      if (rows[c].empty()) continue;
      const Commodity& com = problem.commodities[c];
      if (warm_rows) {
        const std::vector<WeightedPath> paths =
            decompose_flow_sparse(g, com.src, com.dst, rows[c], com.demand,
                                  1e-9, &ws.atom_seed_);
        atoms[c].reserve(paths.size());
        rows[c].clear();
        for (const WeightedPath& wp : paths) {
          const double mass = wp.weight * com.demand;
          atoms[c].push_back({wp.path.edges, mass});
          for (const EdgeId e : wp.path.edges) {
            sparse_flow_add(rows[c], e, mass);
          }
        }
        std::sort(rows[c].begin(), rows[c].end());
      } else {
        atoms[c].push_back({ws.target_paths_[c].edges, com.demand});
      }
    }
  }

  for (std::size_t c = 0; c < num_commodities; ++c) {
    for (const auto& [e, v] : rows[c]) {
      sol.total_flow[static_cast<std::size_t>(e)] += v;
      touch_x(e);
    }
  }
  std::sort(ws.x_support_.begin(), ws.x_support_.end());

  auto& x = sol.total_flow;
  auto& y = ws.target_total_;

  for (std::int32_t iter = 0; iter < options.max_iterations; ++iter) {
    sol.iterations = iter + 1;

    // Marginal costs and current objective in one pass over the support
    // of x (off-support weights already equal w_zero; iterating the
    // sorted support reproduces a dense ascending-edge scan exactly,
    // since zero-flow edges contribute exactly 0 to the objective).
    double current_cost = 0.0;
    for (const EdgeId e : ws.x_support_) {
      const auto i = static_cast<std::size_t>(e);
      ws.weights_[i] =
          std::max(problem.cost_derivative(x[i]), problem.min_edge_weight);
      if (x[i] > 1e-15) current_cost += problem.cost(x[i]);
    }

    // Linearized subproblem: one cheapest path per commodity.
    cheapest_paths(ws.weights_);
    ++ws.y_generation_;
    ws.y_support_.clear();
    for (std::size_t c = 0; c < num_commodities; ++c) {
      for (EdgeId e : ws.target_paths_[c].edges) {
        const auto i = static_cast<std::size_t>(e);
        if (ws.y_mark_[i] != ws.y_generation_) {
          ws.y_mark_[i] = ws.y_generation_;
          ws.y_support_.push_back(e);
          y[i] = 0.0;
        }
        y[i] += problem.commodities[c].demand;
      }
    }
    std::sort(ws.y_support_.begin(), ws.y_support_.end());

    // Frank-Wolfe gap grad . (x - y) >= cost(x) - cost(opt), plus the
    // line-search restriction cost(t) = constant + sum over edges where
    // x and y differ, both accumulated in one ascending merge over the
    // two supports (off-support edges contribute exactly 0 to the gap
    // and a constant 0 to the restriction).
    double gap = 0.0;
    double line_constant = 0.0;
    ws.line_search_diff_.clear();
    {
      const auto& xs = ws.x_support_;
      const auto& ys = ws.y_support_;
      std::size_t i = 0, j = 0;
      while (i < xs.size() || j < ys.size()) {
        EdgeId e;
        if (j >= ys.size() || (i < xs.size() && xs[i] < ys[j])) {
          e = xs[i++];
        } else if (i >= xs.size() || ys[j] < xs[i]) {
          e = ys[j++];
        } else {
          e = xs[i];
          ++i;
          ++j;
        }
        const auto idx = static_cast<std::size_t>(e);
        const double xe = x[idx];
        const double ye = ws.y_mark_[idx] == ws.y_generation_ ? y[idx] : 0.0;
        gap += ws.weights_[idx] * (xe - ye);
        if (xe != ye) {
          ws.line_search_diff_.emplace_back(xe, ye);
        } else if (xe > 1e-15) {
          line_constant += problem.cost(xe);
        }
      }
    }
    sol.cost = current_cost;
    // Clamp: float noise can make the gap marginally negative at
    // convergence; a zero-cost instance reports a zero gap.
    sol.relative_gap = current_cost > 0.0 ? std::max(0.0, gap / current_cost) : 0.0;
    auto clear_targets = [&]() {
      for (const EdgeId e : ws.y_support_) y[static_cast<std::size_t>(e)] = 0.0;
    };
    if (sol.relative_gap <= options.gap_tolerance) {
      clear_targets();
      break;
    }

    // Pairwise sweep: one block-coordinate pass over the commodities.
    // Each commodity picks the worst active atom under the current
    // marginal costs as its away vertex and shifts mass from it onto
    // the cheapest path, with its own exact line search over the two
    // paths' edge difference (t = 1 drains the away atom — the drop
    // step). Marginal costs are refreshed on the touched edges after
    // every sub-step, so later commodities in the sweep see the moved
    // mass, and each sub-step minimizes the true objective along its
    // direction — the sweep decreases the objective monotonically,
    // which is what lets misplaced warm mass leave in a handful of
    // steps while well-placed commodities sit the sweep out (exactly
    // what the classic joint step cannot do).
    bool stepped = false;
    if (pairwise) {
      auto path_cost = [&ws](const std::vector<EdgeId>& edges) {
        double total = 0.0;
        for (const EdgeId e : edges) {
          total += ws.weights_[static_cast<std::size_t>(e)];
        }
        return total;
      };
      const auto old_support = static_cast<std::ptrdiff_t>(ws.x_support_.size());
      for (std::size_t c = 0; c < num_commodities; ++c) {
        if (atoms[c].empty()) continue;
        double worst = -1.0;
        std::size_t away = 0;
        for (std::size_t a = 0; a < atoms[c].size(); ++a) {
          const double cost_a = path_cost(atoms[c][a].edges);
          if (cost_a > worst) {
            worst = cost_a;
            away = a;
          }
        }
        if (worst <= path_cost(ws.target_paths_[c].edges)) continue;

        // The commodity's pairwise direction: its full away mass moves
        // to the cheapest path; edges shared by both cancel.
        ++ws.dir_generation_;
        ws.dir_support_.clear();
        auto touch_dir = [&ws](EdgeId e, double delta) {
          const auto i = static_cast<std::size_t>(e);
          if (ws.dir_mark_[i] != ws.dir_generation_) {
            ws.dir_mark_[i] = ws.dir_generation_;
            ws.direction_[i] = 0.0;
            ws.dir_support_.push_back(e);
          }
          ws.direction_[i] += delta;
        };
        const double mass = atoms[c][away].weight;
        for (const EdgeId e : ws.target_paths_[c].edges) touch_dir(e, mass);
        for (const EdgeId e : atoms[c][away].edges) touch_dir(e, -mass);
        std::sort(ws.dir_support_.begin(), ws.dir_support_.end());
        ws.dir_diff_.clear();
        for (const EdgeId e : ws.dir_support_) {
          const auto i = static_cast<std::size_t>(e);
          if (ws.direction_[i] != 0.0) {
            ws.dir_diff_.emplace_back(x[i], ws.direction_[i]);
          }
        }
        if (ws.dir_diff_.empty()) continue;
        const double t = golden_section_minimize_direction(problem.cost,
                                                           ws.dir_diff_, 1.0);
        if (t <= 1e-12) continue;

        const double delta = t * mass;
        for (const EdgeId e : ws.target_paths_[c].edges) {
          sparse_flow_add(rows[c], e, delta);
        }
        for (const EdgeId e : atoms[c][away].edges) {
          sparse_flow_add(rows[c], e, -delta);
        }
        // Compact near-zero entries occasionally to bound the support.
        if (rows[c].size() > 256) {
          std::erase_if(rows[c],
                        [](const auto& kv) { return kv.second < 1e-12; });
        }
        // Merge the mass into the cheapest path's atom, then shrink —
        // or on a drop step, remove — the away atom.
        merge_into_atoms(atoms[c], ws.target_paths_[c].edges, delta);
        if (t == 1.0) {
          atoms[c].erase(atoms[c].begin() + static_cast<std::ptrdiff_t>(away));
        } else {
          atoms[c][away].weight -= delta;
        }
        // Apply to the dense point and refresh the touched marginal
        // costs so the rest of the sweep prices the moved mass.
        for (const EdgeId e : ws.dir_support_) {
          const auto i = static_cast<std::size_t>(e);
          if (ws.direction_[i] == 0.0) continue;
          x[i] = std::max(0.0, x[i] + t * ws.direction_[i]);
          ws.weights_[i] =
              std::max(problem.cost_derivative(x[i]), problem.min_edge_weight);
          touch_x(e);
        }
        stepped = true;
      }
      // Edges the sweep newly touched were appended per sub-step; one
      // sort of the tail plus an in-place merge restores the sorted
      // support for the next iteration's cost scan.
      if (static_cast<std::ptrdiff_t>(ws.x_support_.size()) > old_support) {
        std::sort(ws.x_support_.begin() + old_support, ws.x_support_.end());
        std::inplace_merge(ws.x_support_.begin(),
                           ws.x_support_.begin() + old_support,
                           ws.x_support_.end());
      }
    }

    // Classic step: one joint convex combination toward the
    // all-cheapest-paths corner. The only step under kClassic; under
    // kPairwise the fallback when no commodity offers a pairwise
    // direction (empty active sets on cold rows) or the pairwise line
    // search stalled.
    if (!stepped) {
      // Step size by golden section on the convex restriction,
      // evaluated only where x and y differ.
      const double gamma = golden_section_minimize(
          [&](double t) {
            double c = line_constant;
            for (const auto& [xe, ye] : ws.line_search_diff_) {
              const double v = (1.0 - t) * xe + t * ye;
              if (v > 1e-15) c += problem.cost(v);
            }
            return c;
          },
          0.0, 1.0, 1e-6);
      if (gamma <= 1e-12) {  // no further progress possible
        clear_targets();
        break;
      }

      // Sparse mix: y_c <- (1-gamma) y_c + gamma * demand_c * path_c.
      for (std::size_t c = 0; c < num_commodities; ++c) {
        for (auto& [e, v] : rows[c]) v *= (1.0 - gamma);
        for (EdgeId e : ws.target_paths_[c].edges) {
          sparse_flow_add(rows[c], e, gamma * problem.commodities[c].demand);
        }
        // Compact near-zero entries occasionally to bound the support.
        if (rows[c].size() > 256) {
          std::erase_if(rows[c], [](const auto& kv) { return kv.second < 1e-12; });
        }
      }
      // Dense mix over the union support only: untouched edges stay an
      // exact 0 = (1-gamma)*0 + gamma*0.
      for (const EdgeId e : ws.x_support_) {
        const auto i = static_cast<std::size_t>(e);
        const double ye = ws.y_mark_[i] == ws.y_generation_ ? y[i] : 0.0;
        x[i] = (1.0 - gamma) * x[i] + gamma * ye;
      }
      // New support edges arrive in ascending order (y_support_ is
      // sorted), so one in-place merge keeps x_support_ sorted.
      const auto old_support = static_cast<std::ptrdiff_t>(ws.x_support_.size());
      for (const EdgeId e : ws.y_support_) {
        const auto i = static_cast<std::size_t>(e);
        if (ws.x_mark_[i] != ws.x_generation_) {
          x[i] = gamma * y[i];
          touch_x(e);
        }
      }
      if (static_cast<std::ptrdiff_t>(ws.x_support_.size()) > old_support) {
        std::inplace_merge(ws.x_support_.begin(),
                           ws.x_support_.begin() + old_support,
                           ws.x_support_.end());
      }
      // A classic step is itself an active-set operation — scale every
      // atom by (1 - gamma), then add gamma * demand on the cheapest
      // path — so the atom representation survives the fallback and a
      // commodity that started with no atoms (empty warm row) acquires
      // its first one here.
      if (pairwise) {
        for (std::size_t c = 0; c < num_commodities; ++c) {
          for (auto& atom : atoms[c]) atom.weight *= (1.0 - gamma);
          merge_into_atoms(atoms[c], ws.target_paths_[c].edges,
                           gamma * problem.commodities[c].demand);
        }
      }
    }
    clear_targets();
  }

  // Final objective over the support (ascending, matching a dense scan).
  sol.cost = 0.0;
  for (const EdgeId e : ws.x_support_) {
    const double xe = x[static_cast<std::size_t>(e)];
    if (xe > 1e-15) sol.cost += problem.cost(xe);
  }

  // Canonicalize the per-commodity rows for the caller: drop float
  // dust, sort by edge id.
  for (SparseEdgeFlow& row : rows) sparse_flow_canonicalize(row, 1e-15);

  // Hand the active sets to the caller (pairwise only): the atom
  // decomposition of the final point, ready to seed the next related
  // solve without a Raghavan-Tompson pass. The workspace copy is
  // rebuilt per solve, so moving it out is free.
  if (pairwise) sol.commodity_atoms = std::move(ws.atoms_);

  // Restore the workspace invariant for the next solve.
  for (const EdgeId e : ws.x_support_) {
    ws.weights_[static_cast<std::size_t>(e)] = w_zero;
  }
  ws.clean_ = true;
  return sol;
}

}  // namespace dcn
