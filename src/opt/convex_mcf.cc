#include "opt/convex_mcf.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/contracts.h"
#include "graph/path.h"
#include "graph/shortest_path.h"
#include "opt/line_search.h"

namespace dcn {

namespace {

/// Sparse per-commodity edge flow: unsorted (edge, value) pairs with a
/// small support (a convex combination of one shortest path per
/// Frank-Wolfe iteration), so linear scans beat hash maps.
using SparseRow = std::vector<std::pair<EdgeId, double>>;

void sparse_add(SparseRow& row, EdgeId e, double delta) {
  for (auto& [edge, value] : row) {
    if (edge == e) {
      value += delta;
      return;
    }
  }
  row.emplace_back(e, delta);
}

/// Cheapest path per commodity under `weights`, batched so commodities
/// sharing a source share one Dijkstra tree.
std::vector<Path> cheapest_paths(const Graph& g,
                                 const std::vector<Commodity>& commodities,
                                 const std::vector<double>& weights) {
  std::vector<Path> out(commodities.size());
  // Group commodity indices by source.
  std::map<NodeId, std::vector<std::size_t>> by_source;
  for (std::size_t c = 0; c < commodities.size(); ++c) {
    by_source[commodities[c].src].push_back(c);
  }
  for (const auto& [src, indices] : by_source) {
    const ShortestPathTree tree = dijkstra_tree(g, src, weights);
    for (std::size_t c : indices) {
      auto path = tree_path(g, tree, src, commodities[c].dst);
      DCN_ENSURES(path.has_value());
      out[c] = std::move(*path);
    }
  }
  return out;
}

double total_cost(const ConvexMcfProblem& problem, const std::vector<double>& x) {
  double cost = 0.0;
  for (double xe : x) {
    if (xe > 1e-15) cost += problem.cost(xe);
  }
  return cost;
}

}  // namespace

ConvexMcfSolution solve_convex_mcf(const ConvexMcfProblem& problem,
                                   const FrankWolfeOptions& options,
                                   const std::vector<std::vector<double>>* warm_start) {
  DCN_EXPECTS(problem.graph != nullptr);
  DCN_EXPECTS(static_cast<bool>(problem.cost));
  DCN_EXPECTS(static_cast<bool>(problem.cost_derivative));
  const Graph& g = *problem.graph;
  const auto num_edges = static_cast<std::size_t>(g.num_edges());
  const std::size_t num_commodities = problem.commodities.size();
  for (const Commodity& com : problem.commodities) {
    DCN_EXPECTS(g.valid_node(com.src));
    DCN_EXPECTS(g.valid_node(com.dst));
    DCN_EXPECTS(com.src != com.dst);
    DCN_EXPECTS(com.demand > 0.0);
  }

  ConvexMcfSolution sol;
  sol.total_flow.assign(num_edges, 0.0);
  if (num_commodities == 0) return sol;

  // Initial point: warm start when shapes match, otherwise route every
  // commodity on its cheapest path under the empty-network marginal cost.
  std::vector<SparseRow> rows(num_commodities);
  if (warm_start != nullptr && warm_start->size() == num_commodities) {
    for (std::size_t c = 0; c < num_commodities; ++c) {
      const auto& dense = (*warm_start)[c];
      DCN_EXPECTS(dense.size() == num_edges);
      for (std::size_t e = 0; e < num_edges; ++e) {
        if (dense[e] > 1e-15) rows[c].emplace_back(static_cast<EdgeId>(e), dense[e]);
      }
    }
  } else {
    std::vector<double> w0(num_edges,
                           std::max(problem.cost_derivative(0.0), problem.min_edge_weight));
    const std::vector<Path> paths = cheapest_paths(g, problem.commodities, w0);
    for (std::size_t c = 0; c < num_commodities; ++c) {
      for (EdgeId e : paths[c].edges) {
        sparse_add(rows[c], e, problem.commodities[c].demand);
      }
    }
  }
  for (std::size_t c = 0; c < num_commodities; ++c) {
    for (const auto& [e, v] : rows[c]) {
      sol.total_flow[static_cast<std::size_t>(e)] += v;
    }
  }

  std::vector<double> weights(num_edges, 0.0);
  std::vector<double> target_total(num_edges, 0.0);
  for (std::int32_t iter = 0; iter < options.max_iterations; ++iter) {
    sol.iterations = iter + 1;

    // Marginal costs at the current point.
    for (std::size_t e = 0; e < num_edges; ++e) {
      weights[e] = std::max(problem.cost_derivative(sol.total_flow[e]),
                            problem.min_edge_weight);
    }

    // Linearized subproblem: one cheapest path per commodity.
    const std::vector<Path> target = cheapest_paths(g, problem.commodities, weights);
    std::fill(target_total.begin(), target_total.end(), 0.0);
    for (std::size_t c = 0; c < num_commodities; ++c) {
      for (EdgeId e : target[c].edges) {
        target_total[static_cast<std::size_t>(e)] += problem.commodities[c].demand;
      }
    }

    // Frank-Wolfe gap: grad . (x - y) >= cost(x) - cost(opt).
    double gap = 0.0;
    for (std::size_t e = 0; e < num_edges; ++e) {
      gap += weights[e] * (sol.total_flow[e] - target_total[e]);
    }
    const double current_cost = total_cost(problem, sol.total_flow);
    sol.cost = current_cost;
    sol.relative_gap = current_cost > 0.0 ? gap / current_cost : 0.0;
    if (sol.relative_gap <= options.gap_tolerance) break;

    // Step size by golden section on the convex restriction.
    const auto& x = sol.total_flow;
    const auto& y = target_total;
    const double gamma = golden_section_minimize(
        [&](double t) {
          double c = 0.0;
          for (std::size_t e = 0; e < num_edges; ++e) {
            const double v = (1.0 - t) * x[e] + t * y[e];
            if (v > 1e-15) c += problem.cost(v);
          }
          return c;
        },
        0.0, 1.0, 1e-6);
    if (gamma <= 1e-12) break;  // no further progress possible

    // Sparse mix: y_c <- (1-gamma) y_c + gamma * demand_c * path_c.
    for (std::size_t c = 0; c < num_commodities; ++c) {
      for (auto& [e, v] : rows[c]) v *= (1.0 - gamma);
      for (EdgeId e : target[c].edges) {
        sparse_add(rows[c], e, gamma * problem.commodities[c].demand);
      }
      // Compact near-zero entries occasionally to bound the support.
      if (rows[c].size() > 256) {
        std::erase_if(rows[c], [](const auto& kv) { return kv.second < 1e-12; });
      }
    }
    for (std::size_t e = 0; e < num_edges; ++e) {
      sol.total_flow[e] = (1.0 - gamma) * sol.total_flow[e] + gamma * target_total[e];
    }
  }

  sol.cost = total_cost(problem, sol.total_flow);

  // Materialize the per-commodity dense rows once for the caller.
  sol.commodity_flow.assign(num_commodities, std::vector<double>(num_edges, 0.0));
  for (std::size_t c = 0; c < num_commodities; ++c) {
    for (const auto& [e, v] : rows[c]) {
      if (v > 1e-15) sol.commodity_flow[c][static_cast<std::size_t>(e)] = v;
    }
  }
  return sol;
}

}  // namespace dcn
