#include "opt/convex_mcf.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/contracts.h"
#include "graph/path.h"
#include "opt/line_search.h"

namespace dcn {

namespace {

// dcn-lint: allow(wall-clock) timing capture: phase wall clocks feed FrankWolfeStats only — surfaced by the benches, excluded from canonical output
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  // dcn-lint: allow(wall-clock) timing capture: the single clock read behind every FrankWolfeStats phase timer
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Adds `delta` mass to the active-set atom carrying exactly `edges`,
/// appending a new atom when the path is not active yet. All step
/// rules funnel their target-path bookkeeping through here so the
/// active-set semantics cannot diverge between them.
void merge_into_atoms(AtomSet& atoms, const std::vector<EdgeId>& edges,
                      double delta) {
  for (PathAtom& atom : atoms) {
    if (atom.edges == edges) {
      atom.weight += delta;
      return;
    }
  }
  atoms.push_back({edges, delta});
}

/// The node a source's oracle sweep is rooted at. A leaf source's sole
/// neighbor stands in: every path out of the leaf starts with one of
/// its (parallel) edges into that neighbor, so the neighbor's
/// shortest-path tree plus the cheapest entry edge IS the leaf's
/// oracle — and, decisively, every leaf attached to the same switch
/// shares that tree, so grouping by root collapses all same-switch
/// sources into one sweep per iteration (in a fat-tree, hosts
/// outnumber edge switches ~4:1). Non-leaf sources root their own
/// sweep.
NodeId sweep_root(const Graph& g, NodeId src) {
  if (!g.is_leaf(src)) return src;
  const std::span<const EdgeId> out = g.out_edges(src);
  if (out.empty()) return src;
  return g.edge(out.front()).dst;
}

/// Sorts (sweep root, commodity) pairs so commodities sharing a root
/// form a contiguous run; the index tie-break keeps the order
/// deterministic.
void group_by_sweep_root(const Graph& g,
                         const std::vector<Commodity>& commodities,
                         std::vector<std::pair<NodeId, std::size_t>>& by_root) {
  by_root.clear();
  by_root.reserve(commodities.size());
  for (std::size_t c = 0; c < commodities.size(); ++c) {
    by_root.emplace_back(sweep_root(g, commodities[c].src), c);
  }
  std::sort(by_root.begin(), by_root.end());
}

/// One vectorizable pass over the whole weights array:
/// w[i] = max(env'(x[i]), min_w). The per-alpha loops keep the body
/// branch-light — one select for the envelope kink, no calls — so the
/// compiler can vectorize them; results are bit-identical to the
/// scalar spec.derivative() path (same operation order, and
/// std::pow(x, 2.0) is correctly rounded, hence bit-equal to x * x).
/// Entries with x[i] == 0 come out as exactly max(env_slope, min_w) ==
/// w_zero, which is what preserves the workspace's clean-weights
/// invariant for off-support edges.
void dense_reprice(std::vector<double>& weights, const std::vector<double>& x,
                   const EnvelopeCostSpec& env, double min_w) {
  const std::size_t n = x.size();
  const double r_hat = env.r_hat;
  const double slope = env.env_slope;
  if (env.alpha == 2.0) {
    const double ma = env.mu * env.alpha;
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = x[i];
      const double d = xi <= r_hat ? slope : ma * xi;
      weights[i] = std::max(d, min_w);
    }
  } else if (env.alpha == 3.0) {
    const double ma = env.mu * env.alpha;
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = x[i];
      const double d = xi <= r_hat ? slope : ma * (xi * xi);
      weights[i] = std::max(d, min_w);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      weights[i] = std::max(env.derivative(x[i]), min_w);
    }
  }
}

}  // namespace

ConvexMcfSolution solve_convex_mcf(const ConvexMcfProblem& problem,
                                   const FrankWolfeOptions& options,
                                   const std::vector<SparseEdgeFlow>* warm_start,
                                   ConvexMcfWorkspace* workspace,
                                   const std::vector<AtomSet>* warm_atoms) {
  DCN_EXPECTS(problem.graph != nullptr);
  DCN_EXPECTS(static_cast<bool>(problem.cost));
  DCN_EXPECTS(static_cast<bool>(problem.cost_derivative));
  const Graph& g = *problem.graph;
  const auto num_edges = static_cast<std::size_t>(g.num_edges());
  const std::size_t num_commodities = problem.commodities.size();
  for (const Commodity& com : problem.commodities) {
    DCN_EXPECTS(g.valid_node(com.src));
    DCN_EXPECTS(g.valid_node(com.dst));
    DCN_EXPECTS(com.src != com.dst);
    DCN_EXPECTS(com.demand > 0.0);
  }

  ConvexMcfSolution sol;
  sol.total_flow.assign(num_edges, 0.0);
  if (num_commodities == 0) return sol;

  ConvexMcfWorkspace local_ws;
  ConvexMcfWorkspace& ws = workspace != nullptr ? *workspace : local_ws;
  FrankWolfeStats stats;

  // The analytic envelope fast path; the std::function callbacks stay
  // as the generic fallback (and the bitwise reference — the spec is
  // documented to reproduce them bit for bit).
  const EnvelopeCostSpec* env =
      problem.envelope.has_value() ? &*problem.envelope : nullptr;
  auto cost_value = [&](double v) {
    return env != nullptr ? env->value(v) : problem.cost(v);
  };

  // Restore the workspace invariants (weights all w_zero, target flow
  // all zero) when the graph, the cost model, or an interrupted prior
  // solve invalidated them.
  const double w_zero =
      std::max(problem.cost_derivative(0.0), problem.min_edge_weight);
  if (ws.weights_.size() != num_edges || ws.w_zero_ != w_zero || !ws.clean_) {
    ws.weights_.assign(num_edges, w_zero);
    ws.target_total_.assign(num_edges, 0.0);
    ws.w_zero_ = w_zero;
  }
  if (ws.x_mark_.size() != num_edges) {
    ws.x_mark_.assign(num_edges, 0);
    ws.y_mark_.assign(num_edges, 0);
    ws.x_generation_ = 0;
    ws.y_generation_ = 0;
  }
  const FrankWolfeStepRule rule = options.step_rule;
  // Both atom-based rules (pairwise and away-step) share the active-set
  // machinery; kClassic never touches it.
  const bool atomic = rule != FrankWolfeStepRule::kClassic;
  if (atomic && ws.dir_mark_.size() != num_edges) {
    ws.direction_.assign(num_edges, 0.0);
    ws.dir_mark_.assign(num_edges, 0);
    ws.dir_generation_ = 0;
  }
  ws.clean_ = false;

  ++ws.x_generation_;
  ws.x_support_.clear();
  auto touch_x = [&ws](EdgeId e) {
    const auto i = static_cast<std::size_t>(e);
    if (ws.x_mark_[i] != ws.x_generation_) {
      ws.x_mark_[i] = ws.x_generation_;
      ws.x_support_.push_back(e);
    }
  };

  ws.csr_.build(g);
  group_by_sweep_root(g, problem.commodities, ws.by_source_);
  ws.group_bounds_.clear();
  if (options.batch_oracle) {
    // One sweep group per distinct sweep root: a single multi-target
    // Dijkstra serves every commodity whose source shares that root —
    // same-source commodities, and leaf sources hanging off the same
    // switch.
    for (std::size_t lo = 0; lo < ws.by_source_.size();) {
      std::size_t hi = lo;
      while (hi < ws.by_source_.size() &&
             ws.by_source_[hi].first == ws.by_source_[lo].first) {
        ++hi;
      }
      ws.group_bounds_.emplace_back(lo, hi);
      lo = hi;
    }
  } else {
    // A/B hook: one single-target sweep per commodity, rooted at the
    // same stand-in as the batched grouping. Byte-identical paths —
    // the multi-target early exit never disturbs the parents of
    // settled nodes — at strictly more sweeps.
    for (std::size_t i = 0; i < ws.by_source_.size(); ++i) {
      ws.group_bounds_.emplace_back(i, i + 1);
    }
  }

  // Resolve the oracle width: > 0 pins it, 0 (the default) adapts to
  // min(hardware concurrency, #sweep groups) — more workers than
  // groups can never help, and a single-core host resolves to 1 and
  // skips the pool (and its dispatch overhead) entirely — and < 0
  // forces sequential. Under the adaptive default a reused workspace
  // keeps the widest pool it has needed (idle workers just park on the
  // condition variable), so re-solves with varying group counts never
  // re-spawn threads; an explicit width still pins the pool exactly.
  std::size_t requested_threads = 1;
  if (options.oracle_threads > 0) {
    requested_threads = static_cast<std::size_t>(options.oracle_threads);
  } else if (options.oracle_threads == 0) {
    requested_threads = std::min<std::size_t>(
        std::max<std::size_t>(1, std::thread::hardware_concurrency()),
        std::max<std::size_t>(1, ws.group_bounds_.size()));
  }
  if (requested_threads > 1) {
    const bool rebuild =
        ws.pool_ == nullptr ||
        (options.oracle_threads > 0
             ? ws.pool_->threads() != requested_threads
             : ws.pool_->threads() < requested_threads);
    if (rebuild) ws.pool_ = std::make_unique<WorkerPool>(requested_threads);
  }
  WorkerPool* pool = requested_threads > 1 ? ws.pool_.get() : nullptr;
  if (pool != nullptr) {
    ws.worker_dijkstra_.resize(pool->threads());
    ws.worker_targets_.resize(pool->threads());
  }

  // One early-exit Dijkstra per sweep group; paths land in
  // ws.target_paths_ indexed by commodity. Each group writes a
  // disjoint slice, so the parallel dispatch is byte-deterministic.
  auto solve_group = [&](const std::vector<double>& weights, std::size_t group,
                         DijkstraWorkspace& dijkstra,
                         std::vector<NodeId>& targets) {
    const auto [lo, hi] = ws.group_bounds_[group];
    const NodeId root = ws.by_source_[lo].first;
    targets.clear();
    for (std::size_t i = lo; i < hi; ++i) {
      targets.push_back(problem.commodities[ws.by_source_[i].second].dst);
    }
    dijkstra_sweep(ws.csr_, root, weights, targets, dijkstra);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t c = ws.by_source_[i].second;
      const Commodity& com = problem.commodities[c];
      Path& path = ws.target_paths_[c];
      const bool reached = workspace_path_into(g, dijkstra, root, com.dst, path);
      DCN_ENSURES(reached);
      if (com.src == root) continue;
      // Leaf source standing in behind its neighbor: enter through the
      // cheapest of its parallel edges into the root, chosen by the
      // same first-strict-improvement rule the sweep applies when
      // relaxing out of a source.
      const std::span<const EdgeId> out = g.out_edges(com.src);
      EdgeId entry = out.front();
      double entry_w = weights[static_cast<std::size_t>(entry)];
      for (std::size_t k = 1; k < out.size(); ++k) {
        const double w = weights[static_cast<std::size_t>(out[k])];
        if (w < entry_w) {
          entry_w = w;
          entry = out[k];
        }
      }
      path.src = com.src;
      path.edges.insert(path.edges.begin(), entry);
    }
  };
  auto cheapest_paths = [&](const std::vector<double>& weights) {
    const auto t0 = Clock::now();
    ws.target_paths_.resize(num_commodities);
    if (pool != nullptr && ws.group_bounds_.size() > 1) {
      pool->run(ws.group_bounds_.size(),
                [&](std::size_t group, std::size_t worker) {
                  solve_group(weights, group, ws.worker_dijkstra_[worker],
                              ws.worker_targets_[worker]);
                });
    } else {
      for (std::size_t group = 0; group < ws.group_bounds_.size(); ++group) {
        solve_group(weights, group, ws.dijkstra_, ws.group_targets_);
      }
    }
    stats.oracle_sweeps += static_cast<std::int64_t>(ws.group_bounds_.size());
    stats.oracle_seconds += seconds_since(t0);
  };

  // Initial point: warm start when shapes match, otherwise route every
  // commodity on its cheapest path under the empty-network marginal
  // cost — which is exactly the clean workspace weights vector.
  // Commodities with a carried active set (atom rules only) skip the
  // row copy: their rows are rebuilt from the atoms below, so the atom
  // representation and the edge flow agree to the last bit.
  const bool atoms_carried = atomic && warm_atoms != nullptr &&
                             warm_atoms->size() == num_commodities;
  auto has_carried_atoms = [&](std::size_t c) {
    if (!atoms_carried) return false;
    for (const PathAtom& atom : (*warm_atoms)[c]) {
      if (atom.weight > 1e-12) return true;
    }
    return false;
  };
  std::vector<SparseEdgeFlow>& rows = sol.commodity_flow;
  rows.assign(num_commodities, {});
  bool warm_rows = false;
  if (warm_start != nullptr && warm_start->size() == num_commodities) {
    warm_rows = true;
    for (std::size_t c = 0; c < num_commodities; ++c) {
      if (has_carried_atoms(c)) continue;
      for (const auto& [e, v] : (*warm_start)[c]) {
        DCN_EXPECTS(g.valid_edge(e));
        if (v > 1e-15) rows[c].emplace_back(e, v);
      }
    }
  } else {
    cheapest_paths(ws.weights_);
    for (std::size_t c = 0; c < num_commodities; ++c) {
      for (EdgeId e : ws.target_paths_[c].edges) {
        sparse_flow_add(rows[c], e, problem.commodities[c].demand);
      }
    }
  }

  // Atom rules: seed each commodity's active set. A carried set
  // (warm_atoms) is adopted directly — dust atoms dropped, the row
  // rebuilt as the atoms' edge-sum — skipping the decomposition below.
  // Otherwise a warm row is a convex combination of paths (the solver's
  // own output shape), so the Raghavan-Tompson extraction recovers its
  // atoms; the row is then rebuilt from the atoms so the atom
  // representation and the edge flow agree to the last bit (the
  // extraction discards residual float dust). Cold rows are a single
  // cheapest-path atom already. An empty row leaves an empty active
  // set, and that commodity simply rides the classic fallback steps.
  std::vector<AtomSet>& atoms = ws.atoms_;
  if (atomic) {
    atoms.assign(num_commodities, {});
    for (std::size_t c = 0; c < num_commodities; ++c) {
      if (has_carried_atoms(c)) {
        // The carried atoms define the commodity's initial point: drop
        // whatever the row holds (the cold-start path when warm_start
        // was absent) so the rebuild below cannot stack on top of it.
        rows[c].clear();
        for (const PathAtom& atom : (*warm_atoms)[c]) {
          if (atom.weight <= 1e-12) continue;
          atoms[c].push_back(atom);
          for (const EdgeId e : atom.edges) {
            DCN_EXPECTS(g.valid_edge(e));
            sparse_flow_add(rows[c], e, atom.weight);
          }
        }
        std::sort(rows[c].begin(), rows[c].end());
        continue;
      }
      if (rows[c].empty()) continue;
      const Commodity& com = problem.commodities[c];
      if (warm_rows) {
        const std::vector<WeightedPath> paths =
            decompose_flow_sparse(g, com.src, com.dst, rows[c], com.demand,
                                  1e-9, &ws.atom_seed_);
        atoms[c].reserve(paths.size());
        rows[c].clear();
        for (const WeightedPath& wp : paths) {
          const double mass = wp.weight * com.demand;
          atoms[c].push_back({wp.path.edges, mass});
          for (const EdgeId e : wp.path.edges) {
            sparse_flow_add(rows[c], e, mass);
          }
        }
        std::sort(rows[c].begin(), rows[c].end());
      } else {
        atoms[c].push_back({ws.target_paths_[c].edges, com.demand});
      }
    }
  }

  for (std::size_t c = 0; c < num_commodities; ++c) {
    for (const auto& [e, v] : rows[c]) {
      sol.total_flow[static_cast<std::size_t>(e)] += v;
      touch_x(e);
    }
  }
  std::sort(ws.x_support_.begin(), ws.x_support_.end());

  auto& x = sol.total_flow;
  auto& y = ws.target_total_;

  // The cost callback handed to the directional line searches: the
  // analytic envelope when a spec is attached, the generic callback
  // otherwise — plus the per-evaluation counter either way. A concrete
  // lambda (not std::function): the templated golden-section search
  // inlines it, and with a spec the whole evaluation is straight-line
  // arithmetic — this is the single hottest call site of a cold solve.
  const auto search_cost = [&](double v) {
    ++stats.line_search_evals;
    return env != nullptr ? env->value(v) : problem.cost(v);
  };

  for (std::int32_t iter = 0; iter < options.max_iterations; ++iter) {
    sol.iterations = iter + 1;

    // Reprice the marginal costs. With an analytic envelope spec the
    // pass is direct arithmetic — dense over the whole weights array
    // when the support covers enough of it (the per-alpha loops
    // vectorize, and off-support entries recompute exactly w_zero, so
    // the clean-weights invariant survives), sparse over the sorted
    // support otherwise. Without a spec the generic callback runs over
    // the support as before. All variants write bit-identical weights.
    {
      const auto t0 = Clock::now();
      if (env != nullptr && ws.x_support_.size() * 4 >= num_edges) {
        dense_reprice(ws.weights_, x, *env, problem.min_edge_weight);
        stats.edges_repriced += static_cast<std::int64_t>(num_edges);
      } else if (env != nullptr) {
        const EnvelopeCostSpec spec = *env;
        for (const EdgeId e : ws.x_support_) {
          const auto i = static_cast<std::size_t>(e);
          ws.weights_[i] =
              std::max(spec.derivative(x[i]), problem.min_edge_weight);
        }
        stats.edges_repriced +=
            static_cast<std::int64_t>(ws.x_support_.size());
      } else {
        for (const EdgeId e : ws.x_support_) {
          const auto i = static_cast<std::size_t>(e);
          ws.weights_[i] =
              std::max(problem.cost_derivative(x[i]), problem.min_edge_weight);
        }
        stats.edges_repriced +=
            static_cast<std::int64_t>(ws.x_support_.size());
      }
      stats.reprice_seconds += seconds_since(t0);
    }

    // Current objective in one pass over the sorted support (iterating
    // it reproduces a dense ascending-edge scan exactly, since
    // zero-flow edges contribute exactly 0 to the objective).
    double current_cost = 0.0;
    for (const EdgeId e : ws.x_support_) {
      const double xe = x[static_cast<std::size_t>(e)];
      if (xe > 1e-15) current_cost += cost_value(xe);
    }

    // Linearized subproblem: one cheapest path per commodity.
    cheapest_paths(ws.weights_);
    ++ws.y_generation_;
    ws.y_support_.clear();
    for (std::size_t c = 0; c < num_commodities; ++c) {
      for (EdgeId e : ws.target_paths_[c].edges) {
        const auto i = static_cast<std::size_t>(e);
        if (ws.y_mark_[i] != ws.y_generation_) {
          ws.y_mark_[i] = ws.y_generation_;
          ws.y_support_.push_back(e);
          y[i] = 0.0;
        }
        y[i] += problem.commodities[c].demand;
      }
    }
    std::sort(ws.y_support_.begin(), ws.y_support_.end());

    // Frank-Wolfe gap grad . (x - y) >= cost(x) - cost(opt), plus the
    // line-search restriction cost(t) = constant + sum over edges where
    // x and y differ, both accumulated in one ascending merge over the
    // two supports (off-support edges contribute exactly 0 to the gap
    // and a constant 0 to the restriction).
    double gap = 0.0;
    double line_constant = 0.0;
    ws.line_search_diff_.clear();
    {
      const auto& xs = ws.x_support_;
      const auto& ys = ws.y_support_;
      std::size_t i = 0, j = 0;
      while (i < xs.size() || j < ys.size()) {
        EdgeId e;
        if (j >= ys.size() || (i < xs.size() && xs[i] < ys[j])) {
          e = xs[i++];
        } else if (i >= xs.size() || ys[j] < xs[i]) {
          e = ys[j++];
        } else {
          e = xs[i];
          ++i;
          ++j;
        }
        const auto idx = static_cast<std::size_t>(e);
        const double xe = x[idx];
        const double ye = ws.y_mark_[idx] == ws.y_generation_ ? y[idx] : 0.0;
        gap += ws.weights_[idx] * (xe - ye);
        if (xe != ye) {
          ws.line_search_diff_.emplace_back(xe, ye);
        } else if (xe > 1e-15) {
          line_constant += cost_value(xe);
        }
      }
    }
    sol.cost = current_cost;
    // Clamp: float noise can make the gap marginally negative at
    // convergence; a zero-cost instance reports a zero gap.
    sol.relative_gap = current_cost > 0.0 ? std::max(0.0, gap / current_cost) : 0.0;
    auto clear_targets = [&]() {
      for (const EdgeId e : ws.y_support_) y[static_cast<std::size_t>(e)] = 0.0;
    };
    if (sol.relative_gap <= options.gap_tolerance) {
      clear_targets();
      break;
    }

    // Atom sweep: one block-coordinate pass over the commodities.
    // Under kPairwise each commodity picks the worst active atom under
    // the current marginal costs as its away vertex and shifts mass
    // from it onto the cheapest path; under kAwayStep it additionally
    // weighs that against the Frank-Wolfe direction (the whole point
    // moving toward the cheapest-path vertex) by inner product and
    // steps along whichever descends faster. Every sub-step runs its
    // own exact line search over the direction's edge difference, and
    // marginal costs are refreshed on the touched edges after every
    // sub-step, so later commodities in the sweep see the moved mass
    // and the sweep decreases the objective monotonically — which is
    // what lets misplaced warm mass leave in a handful of steps while
    // well-placed commodities sit the sweep out (exactly what the
    // classic joint step cannot do).
    bool stepped = false;
    if (atomic) {
      auto path_cost = [&ws](const std::vector<EdgeId>& edges) {
        double total = 0.0;
        for (const EdgeId e : edges) {
          total += ws.weights_[static_cast<std::size_t>(e)];
        }
        return total;
      };
      auto touch_dir = [&ws](EdgeId e, double delta) {
        const auto i = static_cast<std::size_t>(e);
        if (ws.dir_mark_[i] != ws.dir_generation_) {
          ws.dir_mark_[i] = ws.dir_generation_;
          ws.direction_[i] = 0.0;
          ws.dir_support_.push_back(e);
        }
        ws.direction_[i] += delta;
      };
      // Collects the direction's nonzero edge difference; empty when
      // the two sides cancelled exactly.
      auto collect_dir_diff = [&]() {
        std::sort(ws.dir_support_.begin(), ws.dir_support_.end());
        ws.dir_diff_.clear();
        for (const EdgeId e : ws.dir_support_) {
          const auto i = static_cast<std::size_t>(e);
          if (ws.direction_[i] != 0.0) {
            ws.dir_diff_.emplace_back(x[i], ws.direction_[i]);
          }
        }
        return !ws.dir_diff_.empty();
      };
      // Applies t along the built direction to the dense point and
      // refreshes the touched marginal costs so the rest of the sweep
      // prices the moved mass.
      auto apply_direction = [&](double t) {
        for (const EdgeId e : ws.dir_support_) {
          const auto i = static_cast<std::size_t>(e);
          if (ws.direction_[i] == 0.0) continue;
          x[i] = std::max(0.0, x[i] + t * ws.direction_[i]);
          const double d = env != nullptr
                               ? env->derivative(x[i])
                               : problem.cost_derivative(x[i]);
          ws.weights_[i] = std::max(d, problem.min_edge_weight);
          ++stats.edges_repriced;
          touch_x(e);
        }
      };
      auto minimize_direction = [&](double t_max) {
        const auto t0 = Clock::now();
        const double t =
            golden_section_minimize_direction(search_cost, ws.dir_diff_, t_max);
        stats.line_search_seconds += seconds_since(t0);
        return t;
      };

      const auto old_support = static_cast<std::ptrdiff_t>(ws.x_support_.size());
      for (std::size_t c = 0; c < num_commodities; ++c) {
        if (atoms[c].empty()) continue;
        const double demand = problem.commodities[c].demand;
        double worst = -1.0;
        std::size_t away = 0;
        for (std::size_t a = 0; a < atoms[c].size(); ++a) {
          const double cost_a = path_cost(atoms[c][a].edges);
          if (cost_a > worst) {
            worst = cost_a;
            away = a;
          }
        }
        const double cheapest = path_cost(ws.target_paths_[c].edges);
        if (worst <= cheapest) continue;  // this block is already optimal

        if (rule == FrankWolfeStepRule::kPairwise) {
          // The commodity's pairwise direction: its full away mass
          // moves to the cheapest path; edges shared by both cancel.
          ++ws.dir_generation_;
          ws.dir_support_.clear();
          const double mass = atoms[c][away].weight;
          for (const EdgeId e : ws.target_paths_[c].edges) touch_dir(e, mass);
          for (const EdgeId e : atoms[c][away].edges) touch_dir(e, -mass);
          if (!collect_dir_diff()) continue;
          const double t = minimize_direction(1.0);
          if (t <= 1e-12) continue;

          const double delta = t * mass;
          for (const EdgeId e : ws.target_paths_[c].edges) {
            sparse_flow_add(rows[c], e, delta);
          }
          for (const EdgeId e : atoms[c][away].edges) {
            sparse_flow_add(rows[c], e, -delta);
          }
          // Compact near-zero entries occasionally to bound the support.
          if (rows[c].size() > 256) {
            std::erase_if(rows[c],
                          [](const auto& kv) { return kv.second < 1e-12; });
          }
          // Merge the mass into the cheapest path's atom, then shrink —
          // or on a drop step, remove — the away atom.
          merge_into_atoms(atoms[c], ws.target_paths_[c].edges, delta);
          if (t == 1.0) {
            atoms[c].erase(atoms[c].begin() + static_cast<std::ptrdiff_t>(away));
          } else {
            atoms[c][away].weight -= delta;
          }
          apply_direction(t);
          stepped = true;
          continue;
        }

        // kAwayStep: inner products with the marginal costs decide the
        // direction. With <w, x_c> =: dot,
        //   d_fw   = demand * p* - x_c    <w, d_fw>   = demand * c* - dot
        //   d_away = x_c - demand * p_a   <w, d_away> = dot - demand * c_a
        // and both are <= 0 (c* is the cheapest path, c_a the costliest
        // active atom); the steeper one wins. When the away atom
        // carries (almost) the whole demand the away direction
        // degenerates to ~0, so the FW direction takes over.
        double dot = 0.0;
        for (const auto& [e, v] : rows[c]) {
          dot += ws.weights_[static_cast<std::size_t>(e)] * v;
        }
        const double mass = atoms[c][away].weight;
        const double fw_descent = demand * cheapest - dot;
        const double away_descent = dot - demand * worst;
        const bool fw_step = fw_descent <= away_descent ||
                             demand - mass <= 1e-12 * demand;

        ++ws.dir_generation_;
        ws.dir_support_.clear();
        double t_max;
        if (fw_step) {
          for (const EdgeId e : ws.target_paths_[c].edges) {
            touch_dir(e, demand);
          }
          for (const auto& [e, v] : rows[c]) touch_dir(e, -v);
          t_max = 1.0;
        } else {
          for (const auto& [e, v] : rows[c]) touch_dir(e, v);
          for (const EdgeId e : atoms[c][away].edges) touch_dir(e, -demand);
          // The largest step keeping the away atom's coefficient
          // nonnegative: (1 + t) * mass - t * demand >= 0.
          t_max = mass / (demand - mass);
        }
        if (!collect_dir_diff()) continue;
        const double t = minimize_direction(t_max);
        if (t <= 1e-12) continue;

        if (fw_step) {
          const double delta = t * demand;
          for (auto& [e, v] : rows[c]) v *= (1.0 - t);
          for (const EdgeId e : ws.target_paths_[c].edges) {
            sparse_flow_add(rows[c], e, delta);
          }
          if (rows[c].size() > 256) {
            std::erase_if(rows[c],
                          [](const auto& kv) { return kv.second < 1e-12; });
          }
          for (auto& atom : atoms[c]) atom.weight *= (1.0 - t);
          merge_into_atoms(atoms[c], ws.target_paths_[c].edges, delta);
          if (t == 1.0) {
            // Full jump: the active set collapses onto the cheapest
            // path (every other atom was scaled to exactly zero).
            std::erase_if(atoms[c],
                          [](const PathAtom& a) { return a.weight <= 0.0; });
          }
        } else {
          const double delta = t * demand;
          for (auto& [e, v] : rows[c]) v *= (1.0 + t);
          for (const EdgeId e : atoms[c][away].edges) {
            sparse_flow_add(rows[c], e, -delta);
          }
          if (rows[c].size() > 256) {
            std::erase_if(rows[c],
                          [](const auto& kv) { return kv.second < 1e-12; });
          }
          for (auto& atom : atoms[c]) atom.weight *= (1.0 + t);
          if (t == t_max) {
            // Drop step: the away atom drains exactly.
            atoms[c].erase(atoms[c].begin() + static_cast<std::ptrdiff_t>(away));
          } else {
            atoms[c][away].weight -= delta;
          }
        }
        apply_direction(t);
        stepped = true;
      }
      // Edges the sweep newly touched were appended per sub-step; one
      // sort of the tail plus an in-place merge restores the sorted
      // support for the next iteration's cost scan.
      if (static_cast<std::ptrdiff_t>(ws.x_support_.size()) > old_support) {
        std::sort(ws.x_support_.begin() + old_support, ws.x_support_.end());
        std::inplace_merge(ws.x_support_.begin(),
                           ws.x_support_.begin() + old_support,
                           ws.x_support_.end());
      }
    }

    // Classic step: one joint convex combination toward the
    // all-cheapest-paths corner. The only step under kClassic; under
    // the atom rules the fallback when no commodity offers a direction
    // (empty active sets on cold rows) or every line search stalled.
    if (!stepped) {
      // Step size by golden section on the convex restriction,
      // evaluated only where x and y differ.
      const auto ls0 = Clock::now();
      const double gamma = golden_section_minimize(
          [&](double t) {
            double c = line_constant;
            for (const auto& [xe, ye] : ws.line_search_diff_) {
              const double v = (1.0 - t) * xe + t * ye;
              if (v > 1e-15) {
                ++stats.line_search_evals;
                c += cost_value(v);
              }
            }
            return c;
          },
          0.0, 1.0, 1e-6);
      stats.line_search_seconds += seconds_since(ls0);
      if (gamma <= 1e-12) {  // no further progress possible
        clear_targets();
        break;
      }

      // Sparse mix: y_c <- (1-gamma) y_c + gamma * demand_c * path_c.
      for (std::size_t c = 0; c < num_commodities; ++c) {
        for (auto& [e, v] : rows[c]) v *= (1.0 - gamma);
        for (EdgeId e : ws.target_paths_[c].edges) {
          sparse_flow_add(rows[c], e, gamma * problem.commodities[c].demand);
        }
        // Compact near-zero entries occasionally to bound the support.
        if (rows[c].size() > 256) {
          std::erase_if(rows[c], [](const auto& kv) { return kv.second < 1e-12; });
        }
      }
      // Dense mix over the union support only: untouched edges stay an
      // exact 0 = (1-gamma)*0 + gamma*0.
      for (const EdgeId e : ws.x_support_) {
        const auto i = static_cast<std::size_t>(e);
        const double ye = ws.y_mark_[i] == ws.y_generation_ ? y[i] : 0.0;
        x[i] = (1.0 - gamma) * x[i] + gamma * ye;
      }
      // New support edges arrive in ascending order (y_support_ is
      // sorted), so one in-place merge keeps x_support_ sorted.
      const auto old_support = static_cast<std::ptrdiff_t>(ws.x_support_.size());
      for (const EdgeId e : ws.y_support_) {
        const auto i = static_cast<std::size_t>(e);
        if (ws.x_mark_[i] != ws.x_generation_) {
          x[i] = gamma * y[i];
          touch_x(e);
        }
      }
      if (static_cast<std::ptrdiff_t>(ws.x_support_.size()) > old_support) {
        std::inplace_merge(ws.x_support_.begin(),
                           ws.x_support_.begin() + old_support,
                           ws.x_support_.end());
      }
      // A classic step is itself an active-set operation — scale every
      // atom by (1 - gamma), then add gamma * demand on the cheapest
      // path — so the atom representation survives the fallback and a
      // commodity that started with no atoms (empty warm row) acquires
      // its first one here.
      if (atomic) {
        for (std::size_t c = 0; c < num_commodities; ++c) {
          for (auto& atom : atoms[c]) atom.weight *= (1.0 - gamma);
          merge_into_atoms(atoms[c], ws.target_paths_[c].edges,
                           gamma * problem.commodities[c].demand);
        }
      }
    }
    clear_targets();
  }

  // Final objective over the support (ascending, matching a dense scan).
  sol.cost = 0.0;
  for (const EdgeId e : ws.x_support_) {
    const double xe = x[static_cast<std::size_t>(e)];
    if (xe > 1e-15) sol.cost += cost_value(xe);
  }

  // Canonicalize the per-commodity rows for the caller: drop float
  // dust, sort by edge id.
  for (SparseEdgeFlow& row : rows) sparse_flow_canonicalize(row, 1e-15);

  // Hand the active sets to the caller (atom rules only): the atom
  // decomposition of the final point, ready to seed the next related
  // solve without a Raghavan-Tompson pass. The workspace copy is
  // rebuilt per solve, so moving it out is free.
  if (atomic) sol.commodity_atoms = std::move(ws.atoms_);

  // Restore the workspace invariant for the next solve.
  for (const EdgeId e : ws.x_support_) {
    ws.weights_[static_cast<std::size_t>(e)] = w_zero;
  }
  ws.clean_ = true;
  sol.stats = stats;
  return sol;
}

}  // namespace dcn
