// Convex-cost fractional multi-commodity flow via Frank-Wolfe
// (the classical "flow deviation" method).
//
// minimize   sum_e cost(x_e)         x_e = sum_c y_{c,e}
// subject to y_c routes demand_c from src_c to dst_c (fractionally)
//
// This is the per-interval F-MCF problem of Definition 4 that
// Random-Schedule solves "by convex programming". Frank-Wolfe fits the
// structure perfectly: the linearized subproblem decomposes into one
// shortest-path computation per commodity under marginal-cost edge
// weights, the step size comes from a golden-section search on the
// (convex) restricted objective, and — crucially for the
// Raghavan-Tompson extraction — the per-commodity edge flows y_{c,e}
// are maintained explicitly, so the fractional solution y*_{i,e}(k) of
// Algorithm 2 comes out directly.
//
// The solver is sparse end-to-end: per-commodity flows are (edge,
// value) rows whose support is a convex combination of shortest paths,
// the linearization oracle batches commodities by source and stops each
// Dijkstra as soon as the group's destinations are settled, and the
// golden-section step evaluates the restricted objective only on edges
// where the current point and the target differ. A ConvexMcfWorkspace
// carries all O(V)/O(E) scratch between solves, so a sequence of
// related instances (consecutive intervals of Algorithm 2) allocates
// per-solve memory proportional to the solution support only.
//
// Three step rules (FrankWolfeOptions::step_rule): the classic joint
// convex-combination step, a pairwise rule over the per-commodity path
// polytopes that maintains explicit active sets of path atoms and moves
// mass from the worst active atom onto the cheapest path — the repair
// for the warm-start last-mile stall, where the classic step can only
// shed warm mass geometrically, and the default since v2 — and the full
// away-step rule, which picks the steeper of the Frank-Wolfe and away
// directions per commodity.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "graph/flow_decomposition.h"
#include "graph/graph.h"
#include "graph/shortest_path.h"
#include "graph/sparse_flow.h"

namespace dcn {

/// One commodity: route `demand` (a rate) from src to dst.
struct Commodity {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double demand = 0.0;
};

/// Analytic description of the PowerModel convex envelope,
///
///     env(x) = env_slope * x                 for x <= r_hat
///     env(x) = sigma + mu * x^alpha          for x >  r_hat,
///
/// attached to a problem so the solver's hot loops (per-iteration edge
/// repricing, line-search evaluation) run as direct arithmetic instead
/// of indirect std::function calls — the dense repricing pass
/// vectorizes, and alpha == 2 / alpha == 3 take pow-free fast paths.
///
/// Bitwise contract: value() and derivative() reproduce
/// PowerModel::envelope / ::envelope_derivative bit for bit (identical
/// operation order, incl. the pow fast paths), so attaching a spec
/// never changes any solver output — only how fast it is computed. The
/// sigma == 0 degenerate case (r_hat == 0, env_slope == 0) falls out:
/// x <= 0 only at x == 0, where both pieces meet at 0.
struct EnvelopeCostSpec {
  double sigma = 0.0;
  double mu = 1.0;
  double alpha = 2.0;
  double r_hat = 0.0;      // min(r_opt, capacity); 0 when sigma == 0
  double env_slope = 0.0;  // f(r_hat)/r_hat; 0 when r_hat == 0

  [[nodiscard]] double value(double x) const {
    if (x <= r_hat) return env_slope * x;
    if (alpha == 2.0) return sigma + mu * (x * x);
    return sigma + mu * std::pow(x, alpha);
  }
  [[nodiscard]] double derivative(double x) const {
    if (x <= r_hat) return env_slope;
    if (alpha == 2.0) return mu * alpha * x;
    // std::pow(x, 2.0) is correctly rounded, hence bit-equal to x * x.
    if (alpha == 3.0) return mu * alpha * (x * x);
    return mu * alpha * std::pow(x, alpha - 1.0);
  }
};

/// Problem definition. `cost` must be convex and non-decreasing on
/// [0, inf); `cost_derivative` its (sub)derivative. The solver floors
/// shortest-path weights at `min_edge_weight` so that a zero marginal
/// cost at x = 0 (pure speed scaling, sigma = 0) still yields
/// shortest-hop-like, well-posed subproblems.
struct ConvexMcfProblem {
  const Graph* graph = nullptr;
  std::vector<Commodity> commodities;
  // dcn-lint: allow(std-function-hot) problem-definition callbacks: only the generic fallback calls them per edge; the hot loops take EnvelopeCostSpec's analytic path (PR 6)
  std::function<double(double)> cost;
  // dcn-lint: allow(std-function-hot) same problem-definition callback as `cost`
  std::function<double(double)> cost_derivative;
  double min_edge_weight = 1e-9;
  /// Optional analytic fast path. When set, it MUST describe the same
  /// functions as `cost`/`cost_derivative` (see EnvelopeCostSpec): the
  /// solver evaluates the spec in its hot loops and the callbacks stay
  /// as the generic fallback for non-envelope costs.
  std::optional<EnvelopeCostSpec> envelope;
};

/// One path atom of the pairwise step rule's active sets: a candidate
/// s-t path and the mass it carries. A commodity's atoms sum to its
/// demand and their edge-sum reproduces its sparse flow row — the
/// decomposed representation the pairwise rule moves mass between, and
/// a first-class solver output: callers thread a solve's final atoms
/// into the next related solve (`warm_atoms`), which skips the
/// Raghavan-Tompson re-decomposition of the warm rows and preserves
/// atom identity across re-solves.
struct PathAtom {
  std::vector<EdgeId> edges;
  double weight = 0.0;
};

/// A commodity's active set of path atoms.
using AtomSet = std::vector<PathAtom>;

/// Which Frank-Wolfe step the solver takes each iteration.
enum class FrankWolfeStepRule : std::int32_t {
  /// Classic flow deviation: every step is one joint convex
  /// combination of the current point with the all-cheapest-paths
  /// corner. Cheap per iteration and the right default for cold
  /// solves, but pathologically slow at *shedding* mass from paths a
  /// warm start carried in that the new instance made suboptimal —
  /// every step also shrinks the mass of perfectly placed commodities,
  /// so the bad mass decays only geometrically (the warm-start
  /// last-mile stall documented by tests/online_warm_start_test.cc).
  kClassic = 0,
  /// Pairwise (away-step) Frank-Wolfe on the per-commodity path
  /// polytopes: the solver maintains each commodity's active set of
  /// path atoms, picks the worst active atom against the current
  /// marginal costs as the away vertex, and shifts mass from it
  /// directly onto the cheapest path, draining it entirely on a drop
  /// step. Mass a warm start misplaced is shed in a handful of steps
  /// while well-placed commodities stay untouched. Falls back to a
  /// classic step for commodities with no active set (cold rows) or
  /// when the pairwise direction stalls. The default since v2: cold
  /// solves certify tight gaps on the multipath instances where the
  /// classic rule stalls ~1e-4 from the optimum (bcube incast), and
  /// warm re-solves shed displaced mass in a handful of steps.
  kPairwise = 1,
  /// Full away-step Frank-Wolfe on the same per-commodity active sets:
  /// each commodity compares the Frank-Wolfe direction (move mass onto
  /// the cheapest path from the whole point) against the away direction
  /// (move mass off the worst active atom, expanding the point) by
  /// inner product with the marginal costs and steps along whichever
  /// descends faster, with an exact line search (a drop step removes
  /// the away atom; a full FW step collapses the active set onto the
  /// cheapest path). The textbook AFW companion to kPairwise, kept as
  /// an A/B alternative: both converge linearly on the path polytopes
  /// and certify the same objectives (tests/cold_path_test.cc).
  kAwayStep = 2,
};

/// Deterministic per-phase counters plus a wall-time split of one solve
/// (accumulated across solves by the relaxation/online layers). The
/// counters are invariant under --jobs and any oracle thread count —
/// safe to byte-compare and to surface as engine stats — while the
/// *_seconds fields are wall-clock and must never enter canonical
/// output.
struct FrankWolfeStats {
  /// Dijkstra sweeps the linearization oracle ran (one per source
  /// group and pass; the relaxation layer also counts its cold-routing
  /// sweeps here).
  std::int64_t oracle_sweeps = 0;
  /// Marginal-cost writes: dense repricing passes count every edge,
  /// sparse passes the support, pairwise/away sub-steps their touched
  /// edges.
  std::int64_t edges_repriced = 0;
  /// Cost-function evaluations inside the golden-section line searches
  /// (the classic profile's dominant term before the analytic spec).
  std::int64_t line_search_evals = 0;
  double oracle_seconds = 0.0;
  double reprice_seconds = 0.0;
  double line_search_seconds = 0.0;

  FrankWolfeStats& operator+=(const FrankWolfeStats& o) {
    oracle_sweeps += o.oracle_sweeps;
    edges_repriced += o.edges_repriced;
    line_search_evals += o.line_search_evals;
    oracle_seconds += o.oracle_seconds;
    reprice_seconds += o.reprice_seconds;
    line_search_seconds += o.line_search_seconds;
    return *this;
  }
};

struct FrankWolfeOptions {
  std::int32_t max_iterations = 120;
  double gap_tolerance = 1e-4;  // stop when gap / cost falls below this
  /// Worker threads for the shortest-path linearization oracle (the
  /// per-source Dijkstra sweeps are independent, so results are
  /// byte-identical for any thread count). 0 (default) is adaptive:
  /// min(hardware concurrency, #distinct sources) — a single-core host
  /// or a single-source problem resolves to 1 and skips the pool (and
  /// its dispatch overhead) entirely. > 0 pins the width; < 0 forces
  /// sequential.
  std::int32_t oracle_threads = 0;
  /// Step rule. kPairwise (the v2 default) converges linearly on the
  /// per-commodity path polytopes; kClassic keeps the pre-v2 trajectory
  /// bit for bit; kAwayStep is the full away-step A/B alternative (see
  /// the enum for the trade-offs).
  FrankWolfeStepRule step_rule = FrankWolfeStepRule::kPairwise;
  /// When true (default), the oracle groups commodities by source so
  /// one multi-target Dijkstra sweep serves every same-source
  /// commodity. False runs one single-target sweep per commodity —
  /// byte-identical results (early exit never disturbs the parents of
  /// settled nodes), kept selectable as the A/B and test hook for the
  /// batching.
  bool batch_oracle = true;
};

/// Fractional solution.
struct ConvexMcfSolution {
  /// y[c]: sparse flow of commodity c, sorted by edge id, entries
  /// > 1e-15 only.
  std::vector<SparseEdgeFlow> commodity_flow;
  /// x[e] = sum_c y[c][e].
  std::vector<double> total_flow;
  /// sum_e cost(x_e).
  double cost = 0.0;
  /// Final relative Frank-Wolfe duality gap (upper bound on relative
  /// distance from the optimum); clamped to [0, inf) — float noise can
  /// drive the raw gap slightly negative at convergence.
  double relative_gap = 0.0;
  std::int32_t iterations = 0;
  /// Per-commodity active sets at termination — populated under the
  /// pairwise and away-step rules (empty vector under kClassic). atoms[c] is
  /// a path decomposition of commodity_flow[c]; feed it back through
  /// `warm_atoms` to seed a later related solve without re-decomposing.
  std::vector<AtomSet> commodity_atoms;
  /// Per-phase counters and wall-time split of this solve.
  FrankWolfeStats stats;
};

class ConvexMcfWorkspace;

/// Solves the problem. `warm_start`, when non-null and of matching
/// length, provides one sparse row per commodity used as the initial
/// point (consecutive intervals in Algorithm 2 share most active flows,
/// so warm starts cut iteration counts substantially). `workspace`,
/// when non-null, is reused across calls and eliminates all O(V)/O(E)
/// scratch allocation after the first solve on a given graph.
///
/// `warm_atoms`, when non-null and of matching length (pairwise and
/// away-step rules), carries each commodity's active set from a previous related
/// solve: a non-empty set seeds the commodity's atoms directly — its
/// initial point is rebuilt from the atoms, the matching `warm_start`
/// row is ignored, and the per-solve Raghavan-Tompson decomposition of
/// that row is skipped. Atom weights must sum to the commodity's demand
/// (a previous solve's commodity_atoms qualify as long as the demand is
/// unchanged). Empty sets fall back to decomposing the warm row (or the
/// cold start).
[[nodiscard]] ConvexMcfSolution solve_convex_mcf(
    const ConvexMcfProblem& problem, const FrankWolfeOptions& options = {},
    const std::vector<SparseEdgeFlow>* warm_start = nullptr,
    ConvexMcfWorkspace* workspace = nullptr,
    const std::vector<AtomSet>* warm_atoms = nullptr);

/// Reusable scratch for solve_convex_mcf: Dijkstra state, the dense
/// marginal-weight and target vectors (kept in a canonical "clean"
/// state between solves so only touched entries are ever rewritten),
/// and the per-iteration support bookkeeping. Treat as opaque; a
/// default-constructed workspace fits any problem and adapts to graph
/// size changes automatically.
class ConvexMcfWorkspace {
 public:
  ConvexMcfWorkspace() = default;

 private:
  friend ConvexMcfSolution solve_convex_mcf(const ConvexMcfProblem&,
                                            const FrankWolfeOptions&,
                                            const std::vector<SparseEdgeFlow>*,
                                            ConvexMcfWorkspace*,
                                            const std::vector<AtomSet>*);

  DijkstraWorkspace dijkstra_;
  /// Flat adjacency snapshot, rebuilt per solve (the graph is fixed for
  /// a solve's duration).
  CsrAdjacency csr_;
  /// Oracle worker pool + per-worker Dijkstra scratch; created lazily
  /// when oracle_threads requests parallelism.
  std::unique_ptr<WorkerPool> pool_;
  std::vector<DijkstraWorkspace> worker_dijkstra_;
  std::vector<std::vector<NodeId>> worker_targets_;
  /// Dense marginal weights; invariant between solves: every entry
  /// equals `w_zero_` (the marginal cost of an empty edge).
  std::vector<double> weights_;
  double w_zero_ = std::numeric_limits<double>::quiet_NaN();
  /// Dense linearization-target flow; all-zero between solves.
  std::vector<double> target_total_;
  bool clean_ = false;

  // Per-solve scratch (contents regenerated; capacity reused).
  std::vector<std::pair<NodeId, std::size_t>> by_source_;  // (sweep root, commodity)
  std::vector<std::pair<std::size_t, std::size_t>> group_bounds_;
  std::vector<NodeId> group_targets_;
  std::vector<Path> target_paths_;
  std::vector<EdgeId> x_support_;
  std::vector<EdgeId> y_support_;
  std::vector<std::uint64_t> x_mark_;
  std::vector<std::uint64_t> y_mark_;
  std::uint64_t x_generation_ = 0;
  std::uint64_t y_generation_ = 0;
  std::vector<std::pair<double, double>> line_search_diff_;  // (x_e, y_e)

  // Pairwise-mode state (untouched under the classic rule).
  /// Per-commodity active sets, rebuilt each solve — seeded from
  /// caller-carried atoms, by decomposing the warm rows into paths, or
  /// from the cold-start cheapest paths; moved into the solution's
  /// commodity_atoms at termination.
  std::vector<AtomSet> atoms_;
  /// Decomposition scratch for the warm-row seeding.
  FlowDecompositionWorkspace atom_seed_;
  /// Dense pairwise direction, generation-stamped like the targets.
  std::vector<double> direction_;
  std::vector<std::uint64_t> dir_mark_;
  std::uint64_t dir_generation_ = 0;
  std::vector<EdgeId> dir_support_;
  std::vector<std::pair<double, double>> dir_diff_;  // (x_e, d_e)
};

}  // namespace dcn
