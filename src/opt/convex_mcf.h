// Convex-cost fractional multi-commodity flow via Frank-Wolfe
// (the classical "flow deviation" method).
//
// minimize   sum_e cost(x_e)         x_e = sum_c y_{c,e}
// subject to y_c routes demand_c from src_c to dst_c (fractionally)
//
// This is the per-interval F-MCF problem of Definition 4 that
// Random-Schedule solves "by convex programming". Frank-Wolfe fits the
// structure perfectly: the linearized subproblem decomposes into one
// shortest-path computation per commodity under marginal-cost edge
// weights, the step size comes from a golden-section search on the
// (convex) restricted objective, and — crucially for the
// Raghavan-Tompson extraction — the per-commodity edge flows y_{c,e}
// are maintained explicitly, so the fractional solution y*_{i,e}(k) of
// Algorithm 2 comes out directly.
#pragma once

#include <functional>
#include <vector>

#include "graph/graph.h"

namespace dcn {

/// One commodity: route `demand` (a rate) from src to dst.
struct Commodity {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double demand = 0.0;
};

/// Problem definition. `cost` must be convex and non-decreasing on
/// [0, inf); `cost_derivative` its (sub)derivative. The solver floors
/// shortest-path weights at `min_edge_weight` so that a zero marginal
/// cost at x = 0 (pure speed scaling, sigma = 0) still yields
/// shortest-hop-like, well-posed subproblems.
struct ConvexMcfProblem {
  const Graph* graph = nullptr;
  std::vector<Commodity> commodities;
  std::function<double(double)> cost;
  std::function<double(double)> cost_derivative;
  double min_edge_weight = 1e-9;
};

struct FrankWolfeOptions {
  std::int32_t max_iterations = 120;
  double gap_tolerance = 1e-4;  // stop when gap / cost falls below this
};

/// Fractional solution.
struct ConvexMcfSolution {
  /// y[c][e]: amount of commodity c on edge e.
  std::vector<std::vector<double>> commodity_flow;
  /// x[e] = sum_c y[c][e].
  std::vector<double> total_flow;
  /// sum_e cost(x_e).
  double cost = 0.0;
  /// Final relative Frank-Wolfe duality gap (upper bound on relative
  /// distance from the optimum).
  double relative_gap = 0.0;
  std::int32_t iterations = 0;
};

/// Solves the problem. `warm_start`, when non-null, must be a
/// commodity_flow matrix of matching shape and is used as the initial
/// point (consecutive intervals in Algorithm 2 share most active flows,
/// so warm starts cut iteration counts substantially).
[[nodiscard]] ConvexMcfSolution solve_convex_mcf(
    const ConvexMcfProblem& problem, const FrankWolfeOptions& options = {},
    const std::vector<std::vector<double>>* warm_start = nullptr);

}  // namespace dcn
