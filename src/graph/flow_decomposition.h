// Decomposition of a single-commodity edge flow into weighted paths.
//
// This is the Raghavan-Tompson extraction step of Algorithm 2
// (Random-Schedule): given the fractional solution y*_{i,e} for one flow
// in one interval, repeatedly peel off a source->destination path through
// the positive-flow subgraph, assign it the bottleneck value, and reduce.
// Flow conservation guarantees termination; each extraction zeroes at
// least one edge, so at most |E| paths come out.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/path.h"

namespace dcn {

/// A candidate path with its extracted weight (fraction of the demand).
struct WeightedPath {
  Path path;
  double weight = 0.0;  // in (0, 1], fractions sum to ~1 after normalization
};

/// Decomposes `edge_flow` (size g.num_edges(), the per-edge amount of
/// this commodity) into simple paths from src to dst.
///
/// `demand` is the commodity total; returned weights are normalized to
/// sum to exactly 1 (they are used as a probability distribution by the
/// randomized rounding). Residual flow below `tolerance * demand` (float
/// slop or tiny circulations) is discarded proportionally.
///
/// Requires demand > 0 and at least one extractable path.
[[nodiscard]] std::vector<WeightedPath> decompose_flow(
    const Graph& g, NodeId src, NodeId dst, std::vector<double> edge_flow,
    double demand, double tolerance = 1e-9);

}  // namespace dcn
