// Decomposition of a single-commodity edge flow into weighted paths.
//
// This is the Raghavan-Tompson extraction step of Algorithm 2
// (Random-Schedule): given the fractional solution y*_{i,e} for one flow
// in one interval, repeatedly peel off a source->destination path through
// the positive-flow subgraph, assign it the bottleneck value, and reduce.
// Flow conservation guarantees termination; each extraction zeroes at
// least one edge, so the support size bounds the number of paths.
//
// The sparse entry point works entirely over the support subgraph
// (nodes and edges that actually carry flow), so extraction cost scales
// with the solution's support instead of |V| + |E| — on a fat-tree a
// commodity touches a dozen edges out of hundreds.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/path.h"
#include "graph/sparse_flow.h"

namespace dcn {

/// A candidate path with its extracted weight (fraction of the demand).
struct WeightedPath {
  Path path;
  double weight = 0.0;  // in (0, 1], fractions sum to ~1 after normalization
};

class FlowDecompositionWorkspace;

/// Decomposes a sparse per-edge flow of one commodity into simple paths
/// from src to dst, walking only the support subgraph.
///
/// `demand` is the commodity total; returned weights are normalized to
/// sum to exactly 1 (they are used as a probability distribution by the
/// randomized rounding). Residual flow below `tolerance * demand` (float
/// slop or tiny circulations) is discarded proportionally. `workspace`,
/// when non-null, is reused across calls and removes all per-call
/// scratch allocation (the relaxation decomposes every flow in every
/// interval).
///
/// Requires demand > 0 and at least one extractable path.
[[nodiscard]] std::vector<WeightedPath> decompose_flow_sparse(
    const Graph& g, NodeId src, NodeId dst, const SparseEdgeFlow& edge_flow,
    double demand, double tolerance = 1e-9,
    FlowDecompositionWorkspace* workspace = nullptr);

/// Reusable scratch for decompose_flow_sparse: the node-id compaction
/// map (generation-stamped, graph-sized) and all support-sized arrays.
/// Treat as opaque.
class FlowDecompositionWorkspace {
 public:
  FlowDecompositionWorkspace() = default;

 private:
  friend std::vector<WeightedPath> decompose_flow_sparse(
      const Graph&, NodeId, NodeId, const SparseEdgeFlow&, double, double,
      FlowDecompositionWorkspace*);

  std::vector<std::int32_t> local_id_;     // per graph node; valid iff marked
  std::vector<std::uint64_t> node_mark_;
  std::uint64_t generation_ = 0;

  // Support-sized scratch.
  std::vector<std::pair<EdgeId, double>> sorted_;
  std::vector<EdgeId> arc_edge_;
  std::vector<std::int32_t> arc_from_;
  std::vector<std::int32_t> arc_to_;
  std::vector<double> value_;
  std::vector<std::int32_t> out_offset_;  // CSR over local nodes
  std::vector<std::int32_t> out_arcs_;
  std::vector<std::int32_t> parent_arc_;
  std::vector<std::uint8_t> seen_;
  std::vector<std::int32_t> frontier_;
  std::vector<std::int32_t> chain_;
};

/// Dense convenience wrapper: `edge_flow` has size g.num_edges().
[[nodiscard]] std::vector<WeightedPath> decompose_flow(
    const Graph& g, NodeId src, NodeId dst, std::vector<double> edge_flow,
    double demand, double tolerance = 1e-9);

}  // namespace dcn
