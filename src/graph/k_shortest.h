// Yen's algorithm for k loopless shortest paths.
//
// Used by the ECMP-style baseline (hash across equal-cost candidates)
// and available for candidate-path-set construction in extensions.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/path.h"

namespace dcn {

/// Up to `k` loopless paths from src to dst in non-decreasing weight
/// order (ties broken deterministically). Fewer are returned when the
/// graph does not contain k distinct simple paths.
[[nodiscard]] std::vector<Path> yen_k_shortest_paths(
    const Graph& g, NodeId src, NodeId dst,
    const std::vector<double>& edge_weights, std::size_t k);

/// All minimum-hop paths between src and dst, up to `limit` (the
/// equal-cost multipath set). Deterministic order.
[[nodiscard]] std::vector<Path> equal_cost_paths(const Graph& g, NodeId src,
                                                 NodeId dst, std::size_t limit);

}  // namespace dcn
