#include "graph/flow_decomposition.h"

#include <algorithm>
#include <cstdint>
#include <limits>

namespace dcn {

std::vector<WeightedPath> decompose_flow_sparse(const Graph& g, NodeId src,
                                                NodeId dst,
                                                const SparseEdgeFlow& edge_flow,
                                                double demand, double tolerance,
                                                FlowDecompositionWorkspace* workspace) {
  DCN_EXPECTS(g.valid_node(src));
  DCN_EXPECTS(g.valid_node(dst));
  DCN_EXPECTS(src != dst);
  DCN_EXPECTS(demand > 0.0);
  for (const auto& [e, v] : edge_flow) DCN_EXPECTS(g.valid_edge(e));

  FlowDecompositionWorkspace local_ws;
  FlowDecompositionWorkspace& ws = workspace != nullptr ? *workspace : local_ws;

  // Sorting by edge id makes each node's support adjacency follow the
  // graph's out-edge insertion order, so extraction visits candidates in
  // exactly the order a dense BFS over g would.
  ws.sorted_.assign(edge_flow.begin(), edge_flow.end());
  std::sort(ws.sorted_.begin(), ws.sorted_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Compact node ids over the support subgraph (+ src and dst), via a
  // generation-stamped graph-sized map.
  const auto num_nodes = static_cast<std::size_t>(g.num_nodes());
  if (ws.node_mark_.size() != num_nodes) {
    ws.node_mark_.assign(num_nodes, 0);
    ws.local_id_.assign(num_nodes, 0);
    ws.generation_ = 0;
  }
  ++ws.generation_;
  std::int32_t num_local = 0;
  auto local_id = [&ws, &num_local](NodeId v) {
    const auto i = static_cast<std::size_t>(v);
    if (ws.node_mark_[i] != ws.generation_) {
      ws.node_mark_[i] = ws.generation_;
      ws.local_id_[i] = num_local++;
    }
    return ws.local_id_[i];
  };
  const std::int32_t src_local = local_id(src);
  const std::int32_t dst_local = local_id(dst);

  const std::size_t num_arcs = ws.sorted_.size();
  ws.arc_edge_.resize(num_arcs);
  ws.arc_from_.resize(num_arcs);
  ws.arc_to_.resize(num_arcs);
  ws.value_.resize(num_arcs);
  const std::span<const Edge> edges = g.edges();
  for (std::size_t i = 0; i < num_arcs; ++i) {
    const auto [e, v] = ws.sorted_[i];
    const Edge& ed = edges[static_cast<std::size_t>(e)];
    ws.arc_edge_[i] = e;
    ws.arc_from_[i] = local_id(ed.src);
    ws.arc_to_[i] = local_id(ed.dst);
    ws.value_[i] = v;
  }

  // CSR out-adjacency over local nodes (counting sort preserves the
  // sorted arc order within each node).
  const auto n_local = static_cast<std::size_t>(num_local);
  ws.out_offset_.assign(n_local + 1, 0);
  for (std::size_t i = 0; i < num_arcs; ++i) {
    ++ws.out_offset_[static_cast<std::size_t>(ws.arc_from_[i]) + 1];
  }
  for (std::size_t u = 0; u < n_local; ++u) {
    ws.out_offset_[u + 1] += ws.out_offset_[u];
  }
  ws.out_arcs_.resize(num_arcs);
  {
    std::vector<std::int32_t>& cursor = ws.parent_arc_;  // borrow as scratch
    cursor.assign(n_local, 0);
    for (std::size_t i = 0; i < num_arcs; ++i) {
      const auto u = static_cast<std::size_t>(ws.arc_from_[i]);
      ws.out_arcs_[static_cast<std::size_t>(ws.out_offset_[u]) +
                   static_cast<std::size_t>(cursor[u]++)] =
          static_cast<std::int32_t>(i);
    }
  }

  const double threshold = tolerance * demand;
  ws.parent_arc_.assign(n_local, -1);
  ws.seen_.assign(n_local, 0);
  std::vector<WeightedPath> result;

  // Each extraction zeroes its bottleneck entry, so the support size
  // bounds the loop.
  for (std::size_t iter = 0; iter < num_arcs; ++iter) {
    // BFS src -> dst through arcs with value > threshold.
    std::fill(ws.seen_.begin(), ws.seen_.end(), std::uint8_t{0});
    ws.frontier_.clear();
    ws.frontier_.push_back(src_local);
    ws.seen_[static_cast<std::size_t>(src_local)] = 1;
    bool found = false;
    for (std::size_t head = 0; head < ws.frontier_.size() && !found; ++head) {
      const std::int32_t u = ws.frontier_[head];
      const auto lo = static_cast<std::size_t>(ws.out_offset_[static_cast<std::size_t>(u)]);
      const auto hi =
          static_cast<std::size_t>(ws.out_offset_[static_cast<std::size_t>(u) + 1]);
      for (std::size_t k = lo; k < hi; ++k) {
        const std::int32_t a = ws.out_arcs_[k];
        if (ws.value_[static_cast<std::size_t>(a)] <= threshold) continue;
        const std::int32_t v = ws.arc_to_[static_cast<std::size_t>(a)];
        if (ws.seen_[static_cast<std::size_t>(v)]) continue;
        ws.seen_[static_cast<std::size_t>(v)] = 1;
        ws.parent_arc_[static_cast<std::size_t>(v)] = a;
        if (v == dst_local) {
          found = true;
          break;
        }
        ws.frontier_.push_back(v);
      }
    }
    if (!found) break;

    ws.chain_.clear();
    for (std::int32_t at = dst_local; at != src_local;) {
      const std::int32_t a = ws.parent_arc_[static_cast<std::size_t>(at)];
      ws.chain_.push_back(a);
      at = ws.arc_from_[static_cast<std::size_t>(a)];
    }
    std::reverse(ws.chain_.begin(), ws.chain_.end());

    double bottleneck = std::numeric_limits<double>::infinity();
    for (const std::int32_t a : ws.chain_) {
      bottleneck = std::min(bottleneck, ws.value_[static_cast<std::size_t>(a)]);
    }
    std::vector<EdgeId> path_edges;
    path_edges.reserve(ws.chain_.size());
    for (const std::int32_t a : ws.chain_) {
      ws.value_[static_cast<std::size_t>(a)] -= bottleneck;
      path_edges.push_back(ws.arc_edge_[static_cast<std::size_t>(a)]);
    }
    result.push_back({Path{src, dst, std::move(path_edges)}, bottleneck / demand});
  }
  DCN_ENSURES(!result.empty());

  // Normalize: float slop and dropped residuals mean raw fractions sum
  // to slightly less than one.
  double total = 0.0;
  for (const WeightedPath& wp : result) total += wp.weight;
  DCN_ENSURES(total > 0.0);
  for (WeightedPath& wp : result) wp.weight /= total;
  return result;
}

std::vector<WeightedPath> decompose_flow(const Graph& g, NodeId src, NodeId dst,
                                         std::vector<double> edge_flow,
                                         double demand, double tolerance) {
  DCN_EXPECTS(edge_flow.size() == static_cast<std::size_t>(g.num_edges()));
  SparseEdgeFlow sparse;
  for (std::size_t e = 0; e < edge_flow.size(); ++e) {
    if (edge_flow[e] > 0.0) sparse.emplace_back(static_cast<EdgeId>(e), edge_flow[e]);
  }
  return decompose_flow_sparse(g, src, dst, sparse, demand, tolerance);
}

}  // namespace dcn
