#include "graph/flow_decomposition.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace dcn {

namespace {

/// BFS through edges with flow > threshold; returns an edge chain or an
/// empty vector when dst is unreachable in the support subgraph.
std::vector<EdgeId> support_path(const Graph& g, NodeId src, NodeId dst,
                                 const std::vector<double>& flow, double threshold) {
  std::vector<EdgeId> parent(static_cast<std::size_t>(g.num_nodes()), kInvalidEdge);
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  std::queue<NodeId> frontier;
  seen[static_cast<std::size_t>(src)] = true;
  frontier.push(src);
  bool found = (src == dst);
  while (!frontier.empty() && !found) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (EdgeId e : g.out_edges(u)) {
      if (flow[static_cast<std::size_t>(e)] <= threshold) continue;
      const NodeId v = g.edge(e).dst;
      if (seen[static_cast<std::size_t>(v)]) continue;
      seen[static_cast<std::size_t>(v)] = true;
      parent[static_cast<std::size_t>(v)] = e;
      if (v == dst) {
        found = true;
        break;
      }
      frontier.push(v);
    }
  }
  if (!found) return {};
  std::vector<EdgeId> edges;
  NodeId at = dst;
  while (at != src) {
    const EdgeId e = parent[static_cast<std::size_t>(at)];
    edges.push_back(e);
    at = g.edge(e).src;
  }
  std::reverse(edges.begin(), edges.end());
  return edges;
}

}  // namespace

std::vector<WeightedPath> decompose_flow(const Graph& g, NodeId src, NodeId dst,
                                         std::vector<double> edge_flow,
                                         double demand, double tolerance) {
  DCN_EXPECTS(g.valid_node(src));
  DCN_EXPECTS(g.valid_node(dst));
  DCN_EXPECTS(src != dst);
  DCN_EXPECTS(demand > 0.0);
  DCN_EXPECTS(edge_flow.size() == static_cast<std::size_t>(g.num_edges()));

  const double threshold = tolerance * demand;
  std::vector<WeightedPath> out;
  // Each extraction zeroes the bottleneck edge, so |E| bounds the loop.
  for (std::int32_t iter = 0; iter < g.num_edges(); ++iter) {
    std::vector<EdgeId> edges = support_path(g, src, dst, edge_flow, threshold);
    if (edges.empty()) break;
    double bottleneck = std::numeric_limits<double>::infinity();
    for (EdgeId e : edges) {
      bottleneck = std::min(bottleneck, edge_flow[static_cast<std::size_t>(e)]);
    }
    for (EdgeId e : edges) edge_flow[static_cast<std::size_t>(e)] -= bottleneck;
    out.push_back({Path{src, dst, std::move(edges)}, bottleneck / demand});
  }
  DCN_ENSURES(!out.empty());

  // Normalize: float slop and dropped residuals mean raw fractions sum
  // to slightly less than one.
  double total = 0.0;
  for (const WeightedPath& wp : out) total += wp.weight;
  DCN_ENSURES(total > 0.0);
  for (WeightedPath& wp : out) wp.weight /= total;
  return out;
}

}  // namespace dcn
