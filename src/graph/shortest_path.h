// Shortest-path searches: BFS (hop count) and Dijkstra (weighted).
//
// Dijkstra with per-edge weights is both the SP baseline router and the
// linearization oracle inside the Frank-Wolfe solver for the fractional
// multi-commodity flow relaxation (the per-iteration "cheapest path
// under marginal cost" step).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/path.h"

namespace dcn {

inline constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();

/// Fewest-hop path from src to dst (ties broken deterministically by
/// visiting out-edges in insertion order). nullopt when unreachable.
[[nodiscard]] std::optional<Path> bfs_shortest_path(const Graph& g, NodeId src,
                                                    NodeId dst);

/// Minimum-weight path under non-negative `edge_weights` (size
/// g.num_edges()). nullopt when unreachable.
[[nodiscard]] std::optional<Path> dijkstra_shortest_path(
    const Graph& g, NodeId src, NodeId dst, const std::vector<double>& edge_weights);

/// Result of a single-source Dijkstra sweep.
struct ShortestPathTree {
  std::vector<double> distance;      // per node; kInfiniteDistance if unreachable
  std::vector<EdgeId> parent_edge;   // per node; kInvalidEdge at src/unreachable
};

/// Single-source Dijkstra over all nodes.
[[nodiscard]] ShortestPathTree dijkstra_tree(const Graph& g, NodeId src,
                                             const std::vector<double>& edge_weights);

/// Reconstructs the path src -> dst from a ShortestPathTree rooted at src.
/// nullopt when dst is unreachable.
[[nodiscard]] std::optional<Path> tree_path(const Graph& g,
                                            const ShortestPathTree& tree,
                                            NodeId src, NodeId dst);

/// Flattened out-adjacency snapshot of a graph: per node, contiguous
/// (edge, destination) pairs in out_edges() order, plus a "transit"
/// view with every edge into a leaf filtered out and, for each leaf,
/// its in-edges. Repeated sweeps walk this instead of the
/// pointer-chasing vector-of-vectors adjacency; targeted sweeps walk
/// the leaf-free transit view and resolve leaf targets from their
/// single neighbor afterwards. Callers own freshness — build once per
/// solve while the graph is fixed.
class CsrAdjacency {
 public:
  struct Neighbor {
    EdgeId edge;
    NodeId dst;
  };
  struct InEdge {
    EdgeId edge;
    NodeId src;
  };

  void build(const Graph& g);

  [[nodiscard]] std::int32_t num_nodes() const {
    return static_cast<std::int32_t>(offsets_.size()) - 1;
  }
  [[nodiscard]] std::span<const Neighbor> out(NodeId u) const {
    const auto i = static_cast<std::size_t>(u);
    return {neighbors_.data() + offsets_[i],
            static_cast<std::size_t>(offsets_[i + 1] - offsets_[i])};
  }
  /// out(u) restricted to non-leaf destinations.
  [[nodiscard]] std::span<const Neighbor> transit_out(NodeId u) const {
    const auto i = static_cast<std::size_t>(u);
    return {transit_neighbors_.data() + transit_offsets_[i],
            static_cast<std::size_t>(transit_offsets_[i + 1] -
                                     transit_offsets_[i])};
  }
  /// In-edges of a leaf node, in insertion order (empty for non-leaves).
  [[nodiscard]] std::span<const InEdge> leaf_in(NodeId u) const {
    const auto i = static_cast<std::size_t>(u);
    return {leaf_in_edges_.data() + leaf_in_offsets_[i],
            static_cast<std::size_t>(leaf_in_offsets_[i + 1] -
                                     leaf_in_offsets_[i])};
  }
  [[nodiscard]] bool is_leaf(NodeId u) const {
    return leaf_[static_cast<std::size_t>(u)] != 0;
  }

 private:
  std::vector<Neighbor> neighbors_;
  std::vector<std::int32_t> offsets_;  // size num_nodes + 1
  std::vector<Neighbor> transit_neighbors_;
  std::vector<std::int32_t> transit_offsets_;
  std::vector<InEdge> leaf_in_edges_;
  std::vector<std::int32_t> leaf_in_offsets_;
  std::vector<std::uint8_t> leaf_;
};

/// Reusable scratch state for repeated Dijkstra sweeps over the same
/// (or same-sized) graph. Distance/parent arrays are invalidated by
/// bumping a generation counter instead of refilling them, so a sweep
/// touches only the nodes it actually settles — the key to making the
/// Frank-Wolfe linearization oracle (thousands of sweeps per solve)
/// allocation-free. A workspace holds the *last* sweep's results;
/// query them via distance()/parent_edge() or workspace_path().
class DijkstraWorkspace {
 public:
  /// Distance of `v` in the last sweep; kInfiniteDistance when `v` was
  /// not reached (or not settled before an early exit).
  [[nodiscard]] double distance(NodeId v) const {
    const auto i = static_cast<std::size_t>(v);
    return mark_[i] == generation_ ? distance_[i] : kInfiniteDistance;
  }

  /// Parent edge of `v` in the last sweep's shortest-path tree;
  /// kInvalidEdge at the source or when unreached.
  [[nodiscard]] EdgeId parent_edge(NodeId v) const {
    const auto i = static_cast<std::size_t>(v);
    return mark_[i] == generation_ ? parent_edge_[i] : kInvalidEdge;
  }

 private:
  friend void dijkstra_sweep(const CsrAdjacency& adj, NodeId src,
                             const std::vector<double>& edge_weights,
                             std::span<const NodeId> targets,
                             DijkstraWorkspace& ws);

  void begin_sweep(std::size_t num_nodes);

  std::vector<double> distance_;
  std::vector<EdgeId> parent_edge_;
  std::vector<std::uint64_t> mark_;          // node state valid iff == generation_
  std::vector<std::uint64_t> target_mark_;   // node is a target this sweep
  std::vector<std::int32_t> heap_pos_;       // position in heap_; valid iff marked
  std::uint64_t generation_ = 0;
  std::vector<NodeId> heap_;  // indexed binary heap keyed by (distance, node)
};

/// Single-source Dijkstra into a reusable workspace, walking a
/// CsrAdjacency snapshot of the graph. When `targets` is non-empty the
/// sweep stops as soon as every (distinct) target is settled, and
/// non-target leaf nodes are skipped outright (a leaf's only exit
/// returns to its sole neighbor, so it can never be a transit hop);
/// settled nodes carry exactly the distances/parents a full sweep would
/// produce. An empty `targets` settles the whole graph, leaves
/// included. Precondition (unchecked in this hot path): edge weights
/// are non-negative.
void dijkstra_sweep(const CsrAdjacency& adj, NodeId src,
                    const std::vector<double>& edge_weights,
                    std::span<const NodeId> targets, DijkstraWorkspace& ws);

/// Reconstructs the path src -> dst from the workspace's last sweep
/// (which must have been rooted at src and have settled dst).
/// nullopt when dst was not reached.
[[nodiscard]] std::optional<Path> workspace_path(const Graph& g,
                                                 const DijkstraWorkspace& ws,
                                                 NodeId src, NodeId dst);

/// Allocation-reusing variant: refills `out` (keeping its edge-vector
/// capacity) instead of constructing a fresh Path. Returns false when
/// dst was not reached, leaving `out` unspecified.
bool workspace_path_into(const Graph& g, const DijkstraWorkspace& ws, NodeId src,
                         NodeId dst, Path& out);

/// Per-node hop distance from src (BFS); -1 when unreachable.
[[nodiscard]] std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId src);

/// True when every node is reachable from every other node.
[[nodiscard]] bool is_strongly_connected(const Graph& g);

}  // namespace dcn
