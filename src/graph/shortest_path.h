// Shortest-path searches: BFS (hop count) and Dijkstra (weighted).
//
// Dijkstra with per-edge weights is both the SP baseline router and the
// linearization oracle inside the Frank-Wolfe solver for the fractional
// multi-commodity flow relaxation (the per-iteration "cheapest path
// under marginal cost" step).
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/path.h"

namespace dcn {

inline constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();

/// Fewest-hop path from src to dst (ties broken deterministically by
/// visiting out-edges in insertion order). nullopt when unreachable.
[[nodiscard]] std::optional<Path> bfs_shortest_path(const Graph& g, NodeId src,
                                                    NodeId dst);

/// Minimum-weight path under non-negative `edge_weights` (size
/// g.num_edges()). nullopt when unreachable.
[[nodiscard]] std::optional<Path> dijkstra_shortest_path(
    const Graph& g, NodeId src, NodeId dst, const std::vector<double>& edge_weights);

/// Result of a single-source Dijkstra sweep.
struct ShortestPathTree {
  std::vector<double> distance;      // per node; kInfiniteDistance if unreachable
  std::vector<EdgeId> parent_edge;   // per node; kInvalidEdge at src/unreachable
};

/// Single-source Dijkstra over all nodes.
[[nodiscard]] ShortestPathTree dijkstra_tree(const Graph& g, NodeId src,
                                             const std::vector<double>& edge_weights);

/// Reconstructs the path src -> dst from a ShortestPathTree rooted at src.
/// nullopt when dst is unreachable.
[[nodiscard]] std::optional<Path> tree_path(const Graph& g,
                                            const ShortestPathTree& tree,
                                            NodeId src, NodeId dst);

/// Per-node hop distance from src (BFS); -1 when unreachable.
[[nodiscard]] std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId src);

/// True when every node is reachable from every other node.
[[nodiscard]] bool is_strongly_connected(const Graph& g);

}  // namespace dcn
