// Sparse per-commodity edge flows.
//
// A commodity's flow in the Frank-Wolfe F-MCF solver is a convex
// combination of one shortest path per iteration, so its support is a
// handful of edges out of thousands — storing it as (edge, value) pairs
// keeps per-solve commodity state O(support) instead of the dense
// O(commodities x edges) matrix the seed implementation materialized,
// and it is the interchange format between the solver
// (opt/convex_mcf), the relaxation warm starts (mcf/relaxation), and
// the Raghavan-Tompson path extraction (graph/flow_decomposition).
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace dcn {

/// Sparse edge flow: (edge, value) pairs. Producers sort rows by edge
/// id before handing them across module boundaries (deterministic
/// iteration order); scratch rows inside a solver may be unsorted.
using SparseEdgeFlow = std::vector<std::pair<EdgeId, double>>;

/// Adds `delta` to edge `e` in an (unsorted) row by linear scan — the
/// support is small enough that scans beat hashing.
inline void sparse_flow_add(SparseEdgeFlow& row, EdgeId e, double delta) {
  for (auto& [edge, value] : row) {
    if (edge == e) {
      value += delta;
      return;
    }
  }
  row.emplace_back(e, delta);
}

/// Canonicalizes a row: drops entries at or below `threshold` and sorts
/// by edge id.
inline void sparse_flow_canonicalize(SparseEdgeFlow& row, double threshold) {
  std::erase_if(row, [threshold](const auto& kv) { return kv.second <= threshold; });
  std::sort(row.begin(), row.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

/// Densifies a row into `out` (sized num_edges), accumulating values.
inline void sparse_flow_accumulate(const SparseEdgeFlow& row,
                                   std::vector<double>& out) {
  for (const auto& [e, v] : row) out[static_cast<std::size_t>(e)] += v;
}

}  // namespace dcn
