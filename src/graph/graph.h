// Directed graph with stable integer node / edge ids.
//
// The network G = (V, E) of the paper. Physical full-duplex links are
// modeled as a pair of directed edges (one per direction); the power
// model (idle power sigma, dynamic power mu*x^a) is charged per directed
// edge, consistent with the paper's abstraction of port+link power into
// "the link" and with the speed-scaling literature it builds on
// (Andrews et al. [16]).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/contracts.h"

namespace dcn {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// A directed edge from `src` to `dst`.
struct Edge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Growable directed multigraph. Nodes and edges are identified by dense
/// ids assigned in insertion order; neither can be removed (network
/// topologies are static for the scheduling horizon).
class Graph {
 public:
  Graph() = default;

  /// Creates `n` isolated nodes up front.
  explicit Graph(std::int32_t n) { add_nodes(n); }

  /// Adds one node; returns its id.
  NodeId add_node();

  /// Adds `n` nodes; returns the id of the first.
  NodeId add_nodes(std::int32_t n);

  /// Adds a directed edge; both endpoints must exist. Returns its id.
  EdgeId add_edge(NodeId src, NodeId dst);

  /// Adds the directed pair (u,v) and (v,u); returns {forward, backward}.
  std::pair<EdgeId, EdgeId> add_bidirectional_edge(NodeId u, NodeId v);

  [[nodiscard]] std::int32_t num_nodes() const {
    return static_cast<std::int32_t>(out_edges_.size());
  }
  [[nodiscard]] std::int32_t num_edges() const {
    return static_cast<std::int32_t>(edges_.size());
  }

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    DCN_EXPECTS(valid_edge(e));
    return edges_[static_cast<std::size_t>(e)];
  }

  /// All edges, indexed by EdgeId — lets hot loops hoist one bounds
  /// check instead of paying edge()'s per-call contract check.
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

  /// Ids of edges leaving `u`, in insertion order (deterministic
  /// tie-breaking in the search algorithms relies on this).
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId u) const {
    DCN_EXPECTS(valid_node(u));
    return out_edges_[static_cast<std::size_t>(u)];
  }

  /// Ids of edges entering `u`, in insertion order.
  [[nodiscard]] std::span<const EdgeId> in_edges(NodeId u) const {
    DCN_EXPECTS(valid_node(u));
    return in_edges_[static_cast<std::size_t>(u)];
  }

  [[nodiscard]] bool valid_node(NodeId u) const {
    return u >= 0 && u < num_nodes();
  }
  [[nodiscard]] bool valid_edge(EdgeId e) const {
    return e >= 0 && e < num_edges();
  }

  /// The reverse edge id for edges created with add_bidirectional_edge;
  /// kInvalidEdge when the edge has no registered reverse.
  [[nodiscard]] EdgeId reverse_edge(EdgeId e) const {
    DCN_EXPECTS(valid_edge(e));
    return reverse_[static_cast<std::size_t>(e)];
  }

  /// True when every edge at `u` (either direction) joins the same
  /// single neighbor, or `u` has no edges at all. A leaf's only way out
  /// leads straight back to its sole neighbor, so a leaf can never be an
  /// intermediate hop of a shortest path — targeted searches skip
  /// non-target leaves entirely. Hosts in fat-tree and leaf-spine
  /// fabrics are leaves; the flag is maintained incrementally by
  /// add_edge.
  [[nodiscard]] bool is_leaf(NodeId u) const {
    DCN_EXPECTS(valid_node(u));
    return !multi_neighbor_[static_cast<std::size_t>(u)];
  }

 private:
  void note_neighbor(NodeId u, NodeId neighbor);

  std::vector<Edge> edges_;
  std::vector<EdgeId> reverse_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  std::vector<NodeId> solo_neighbor_;  // the one neighbor seen so far
  std::vector<bool> multi_neighbor_;   // node has >= 2 distinct neighbors
};

}  // namespace dcn
