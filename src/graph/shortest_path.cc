#include "graph/shortest_path.h"

#include <algorithm>
#include <queue>

namespace dcn {

namespace {

std::optional<Path> reconstruct(const Graph& g,
                                const std::vector<EdgeId>& parent_edge,
                                NodeId src, NodeId dst) {
  if (src == dst) return Path{src, dst, {}};
  if (parent_edge[static_cast<std::size_t>(dst)] == kInvalidEdge) return std::nullopt;
  std::vector<EdgeId> edges;
  NodeId at = dst;
  while (at != src) {
    const EdgeId e = parent_edge[static_cast<std::size_t>(at)];
    if (e == kInvalidEdge) return std::nullopt;
    edges.push_back(e);
    at = g.edge(e).src;
  }
  std::reverse(edges.begin(), edges.end());
  return Path{src, dst, std::move(edges)};
}

}  // namespace

std::optional<Path> bfs_shortest_path(const Graph& g, NodeId src, NodeId dst) {
  DCN_EXPECTS(g.valid_node(src));
  DCN_EXPECTS(g.valid_node(dst));
  std::vector<EdgeId> parent(static_cast<std::size_t>(g.num_nodes()), kInvalidEdge);
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  std::queue<NodeId> frontier;
  frontier.push(src);
  seen[static_cast<std::size_t>(src)] = true;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    if (u == dst) break;
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.edge(e).dst;
      if (seen[static_cast<std::size_t>(v)]) continue;
      seen[static_cast<std::size_t>(v)] = true;
      parent[static_cast<std::size_t>(v)] = e;
      frontier.push(v);
    }
  }
  return reconstruct(g, parent, src, dst);
}

ShortestPathTree dijkstra_tree(const Graph& g, NodeId src,
                               const std::vector<double>& edge_weights) {
  DCN_EXPECTS(g.valid_node(src));
  DCN_EXPECTS(edge_weights.size() == static_cast<std::size_t>(g.num_edges()));
  ShortestPathTree tree;
  tree.distance.assign(static_cast<std::size_t>(g.num_nodes()), kInfiniteDistance);
  tree.parent_edge.assign(static_cast<std::size_t>(g.num_nodes()), kInvalidEdge);
  tree.distance[static_cast<std::size_t>(src)] = 0.0;

  using Entry = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > tree.distance[static_cast<std::size_t>(u)]) continue;  // stale
    for (EdgeId e : g.out_edges(u)) {
      const double w = edge_weights[static_cast<std::size_t>(e)];
      DCN_EXPECTS(w >= 0.0);
      const NodeId v = g.edge(e).dst;
      const double cand = dist + w;
      if (cand < tree.distance[static_cast<std::size_t>(v)]) {
        tree.distance[static_cast<std::size_t>(v)] = cand;
        tree.parent_edge[static_cast<std::size_t>(v)] = e;
        heap.emplace(cand, v);
      }
    }
  }
  return tree;
}

std::optional<Path> tree_path(const Graph& g, const ShortestPathTree& tree,
                              NodeId src, NodeId dst) {
  DCN_EXPECTS(g.valid_node(src));
  DCN_EXPECTS(g.valid_node(dst));
  if (tree.distance[static_cast<std::size_t>(dst)] == kInfiniteDistance) {
    return std::nullopt;
  }
  return reconstruct(g, tree.parent_edge, src, dst);
}

std::optional<Path> dijkstra_shortest_path(const Graph& g, NodeId src, NodeId dst,
                                           const std::vector<double>& edge_weights) {
  const ShortestPathTree tree = dijkstra_tree(g, src, edge_weights);
  return tree_path(g, tree, src, dst);
}

std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId src) {
  DCN_EXPECTS(g.valid_node(src));
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  std::queue<NodeId> frontier;
  dist[static_cast<std::size_t>(src)] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.edge(e).dst;
      if (dist[static_cast<std::size_t>(v)] != -1) continue;
      dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
      frontier.push(v);
    }
  }
  return dist;
}

bool is_strongly_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  // Forward reachability from node 0 plus backward reachability (via
  // in-edges) suffices for strong connectivity.
  const std::vector<std::int32_t> fwd = bfs_distances(g, 0);
  if (std::any_of(fwd.begin(), fwd.end(), [](std::int32_t d) { return d == -1; })) {
    return false;
  }
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  std::queue<NodeId> frontier;
  seen[0] = true;
  frontier.push(0);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (EdgeId e : g.in_edges(u)) {
      const NodeId v = g.edge(e).src;
      if (seen[static_cast<std::size_t>(v)]) continue;
      seen[static_cast<std::size_t>(v)] = true;
      frontier.push(v);
    }
  }
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

}  // namespace dcn
