#include "graph/shortest_path.h"

#include <algorithm>
#include <queue>

namespace dcn {

namespace {

std::optional<Path> reconstruct(const Graph& g,
                                const std::vector<EdgeId>& parent_edge,
                                NodeId src, NodeId dst) {
  if (src == dst) return Path{src, dst, {}};
  if (parent_edge[static_cast<std::size_t>(dst)] == kInvalidEdge) return std::nullopt;
  std::vector<EdgeId> edges;
  NodeId at = dst;
  while (at != src) {
    const EdgeId e = parent_edge[static_cast<std::size_t>(at)];
    if (e == kInvalidEdge) return std::nullopt;
    edges.push_back(e);
    at = g.edge(e).src;
  }
  std::reverse(edges.begin(), edges.end());
  return Path{src, dst, std::move(edges)};
}

}  // namespace

std::optional<Path> bfs_shortest_path(const Graph& g, NodeId src, NodeId dst) {
  DCN_EXPECTS(g.valid_node(src));
  DCN_EXPECTS(g.valid_node(dst));
  std::vector<EdgeId> parent(static_cast<std::size_t>(g.num_nodes()), kInvalidEdge);
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  std::queue<NodeId> frontier;
  frontier.push(src);
  seen[static_cast<std::size_t>(src)] = true;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    if (u == dst) break;
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.edge(e).dst;
      if (seen[static_cast<std::size_t>(v)]) continue;
      seen[static_cast<std::size_t>(v)] = true;
      parent[static_cast<std::size_t>(v)] = e;
      frontier.push(v);
    }
  }
  return reconstruct(g, parent, src, dst);
}

ShortestPathTree dijkstra_tree(const Graph& g, NodeId src,
                               const std::vector<double>& edge_weights) {
  DCN_EXPECTS(g.valid_node(src));
  DCN_EXPECTS(edge_weights.size() == static_cast<std::size_t>(g.num_edges()));
  ShortestPathTree tree;
  tree.distance.assign(static_cast<std::size_t>(g.num_nodes()), kInfiniteDistance);
  tree.parent_edge.assign(static_cast<std::size_t>(g.num_nodes()), kInvalidEdge);
  tree.distance[static_cast<std::size_t>(src)] = 0.0;

  using Entry = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > tree.distance[static_cast<std::size_t>(u)]) continue;  // stale
    for (EdgeId e : g.out_edges(u)) {
      const double w = edge_weights[static_cast<std::size_t>(e)];
      DCN_EXPECTS(w >= 0.0);
      const NodeId v = g.edge(e).dst;
      const double cand = dist + w;
      if (cand < tree.distance[static_cast<std::size_t>(v)]) {
        tree.distance[static_cast<std::size_t>(v)] = cand;
        tree.parent_edge[static_cast<std::size_t>(v)] = e;
        heap.emplace(cand, v);
      }
    }
  }
  return tree;
}

void CsrAdjacency::build(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  offsets_.assign(n + 1, 0);
  transit_offsets_.assign(n + 1, 0);
  leaf_in_offsets_.assign(n + 1, 0);
  neighbors_.clear();
  neighbors_.reserve(static_cast<std::size_t>(g.num_edges()));
  transit_neighbors_.clear();
  leaf_in_edges_.clear();
  leaf_.assign(n, 0);
  const std::span<const Edge> edges = g.edges();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    leaf_[static_cast<std::size_t>(u)] = g.is_leaf(u) ? 1 : 0;
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto i = static_cast<std::size_t>(u);
    offsets_[i] = static_cast<std::int32_t>(neighbors_.size());
    transit_offsets_[i] = static_cast<std::int32_t>(transit_neighbors_.size());
    leaf_in_offsets_[i] = static_cast<std::int32_t>(leaf_in_edges_.size());
    for (EdgeId e : g.out_edges(u)) {
      const NodeId dst = edges[static_cast<std::size_t>(e)].dst;
      neighbors_.push_back({e, dst});
      if (leaf_[static_cast<std::size_t>(dst)] == 0) {
        transit_neighbors_.push_back({e, dst});
      }
    }
    if (leaf_[i] != 0) {
      for (EdgeId e : g.in_edges(u)) {
        leaf_in_edges_.push_back({e, edges[static_cast<std::size_t>(e)].src});
      }
    }
  }
  offsets_[n] = static_cast<std::int32_t>(neighbors_.size());
  transit_offsets_[n] = static_cast<std::int32_t>(transit_neighbors_.size());
  leaf_in_offsets_[n] = static_cast<std::int32_t>(leaf_in_edges_.size());
}

void DijkstraWorkspace::begin_sweep(std::size_t num_nodes) {
  if (distance_.size() != num_nodes) {
    distance_.assign(num_nodes, kInfiniteDistance);
    parent_edge_.assign(num_nodes, kInvalidEdge);
    mark_.assign(num_nodes, 0);
    target_mark_.assign(num_nodes, 0);
    heap_pos_.assign(num_nodes, -1);
    generation_ = 0;
  }
  ++generation_;  // invalidates every per-node slot in O(1)
}

void dijkstra_sweep(const CsrAdjacency& adj, NodeId src,
                    const std::vector<double>& edge_weights,
                    std::span<const NodeId> targets, DijkstraWorkspace& ws) {
  DCN_EXPECTS(src >= 0 && src < adj.num_nodes());
  const auto num_nodes = static_cast<std::size_t>(adj.num_nodes());
  ws.begin_sweep(num_nodes);
  if (ws.heap_.size() < num_nodes) ws.heap_.resize(num_nodes);
  const std::uint64_t gen = ws.generation_;

  // Raw pointers: every array is pre-sized (the heap holds each node at
  // most once, so num_nodes bounds it), which keeps the hot loop free of
  // vector-aliasing reloads and reallocation hazards.
  double* const dist = ws.distance_.data();
  EdgeId* const parent = ws.parent_edge_.data();
  std::uint64_t* const mark = ws.mark_.data();
  std::uint64_t* const target_mark = ws.target_mark_.data();
  std::int32_t* const pos = ws.heap_pos_.data();
  NodeId* const heap = ws.heap_.data();
  std::int32_t heap_size = 0;
  const double* const weight = edge_weights.data();

  auto touch = [&](NodeId v) -> std::size_t {
    const auto i = static_cast<std::size_t>(v);
    if (mark[i] != gen) {
      mark[i] = gen;
      dist[i] = kInfiniteDistance;
      parent[i] = kInvalidEdge;
      pos[i] = -1;
    }
    return i;
  };

  // Indexed 4-ary heap keyed by (distance, node): every node appears at
  // most once, so there are no stale entries to pop and skip, and the
  // key reproduces the classic lazy-deletion pop order exactly — ties
  // on distance settle in node-id order.
  auto heap_less = [&](NodeId a, NodeId b) {
    const double da = dist[static_cast<std::size_t>(a)];
    const double db = dist[static_cast<std::size_t>(b)];
    if (da != db) return da < db;
    return a < b;
  };
  auto sift_up = [&](std::int32_t i) {
    const NodeId v = heap[i];
    while (i > 0) {
      const std::int32_t up = (i - 1) / 4;
      const NodeId p = heap[up];
      if (!heap_less(v, p)) break;
      heap[i] = p;
      pos[static_cast<std::size_t>(p)] = i;
      i = up;
    }
    heap[i] = v;
    pos[static_cast<std::size_t>(v)] = i;
  };
  auto sift_down = [&](std::int32_t i) {
    const NodeId v = heap[i];
    while (true) {
      const std::int32_t first = 4 * i + 1;
      if (first >= heap_size) break;
      const std::int32_t last = std::min(first + 4, heap_size);
      std::int32_t best = first;
      for (std::int32_t c = first + 1; c < last; ++c) {
        if (heap_less(heap[c], heap[best])) best = c;
      }
      const NodeId b = heap[best];
      if (!heap_less(b, v)) break;
      heap[i] = b;
      pos[static_cast<std::size_t>(b)] = i;
      i = best;
    }
    heap[i] = v;
    pos[static_cast<std::size_t>(v)] = i;
  };

  // Targeted sweeps never settle leaves: the transit adjacency drops
  // every edge into a leaf (a leaf's only exit returns to its sole
  // neighbor, so it can never be a transit hop), and each leaf target
  // is stood in for by its neighbor — once that neighbor settles, the
  // leaf's label is one relaxation away and is resolved in a post-step.
  // Count distinct effective targets via the stamped target marks
  // (duplicates in `targets` are fine and counted once).
  std::size_t remaining = 0;
  for (NodeId t : targets) {
    DCN_EXPECTS(t >= 0 && t < adj.num_nodes());
    NodeId effective = t;
    if (adj.is_leaf(t) && t != src) {
      const std::span<const CsrAdjacency::InEdge> in = adj.leaf_in(t);
      if (in.empty()) continue;  // no way in: stays unreached
      effective = in.front().src;
    }
    const auto i = static_cast<std::size_t>(effective);
    if (target_mark[i] != gen) {
      target_mark[i] = gen;
      ++remaining;
    }
  }
  const bool early_exit = remaining > 0;

  dist[touch(src)] = 0.0;
  heap[0] = src;
  pos[static_cast<std::size_t>(src)] = 0;
  heap_size = 1;

  while (heap_size > 0) {
    const NodeId u = heap[0];
    const auto ui = static_cast<std::size_t>(u);
    pos[ui] = -1;
    --heap_size;
    if (heap_size > 0) {
      const NodeId last = heap[heap_size];
      heap[0] = last;
      pos[static_cast<std::size_t>(last)] = 0;
      sift_down(0);
    }
    // u is settled now: its distance/parent chain is final under
    // non-negative weights.
    if (early_exit && target_mark[ui] == gen && --remaining == 0) break;
    const double du = dist[ui];
    const std::span<const CsrAdjacency::Neighbor> row =
        early_exit ? adj.transit_out(u) : adj.out(u);
    for (const auto& [e, v] : row) {
      const auto vi = touch(v);
      const double cand = du + weight[static_cast<std::size_t>(e)];
      if (cand < dist[vi]) {
        dist[vi] = cand;
        parent[vi] = e;
        if (pos[vi] >= 0) {
          sift_up(pos[vi]);
        } else {
          heap[heap_size] = v;
          sift_up(heap_size);
          ++heap_size;
        }
      }
    }
  }

  if (!early_exit) return;
  // Resolve leaf targets from their settled neighbor: the label a full
  // sweep would assign the moment that neighbor settled, with the same
  // first-strict-improvement tie-break over parallel edges.
  for (NodeId t : targets) {
    if (!adj.is_leaf(t) || t == src) continue;
    const auto ti = touch(t);
    double best = kInfiniteDistance;
    EdgeId best_edge = kInvalidEdge;
    for (const auto& [e, u] : adj.leaf_in(t)) {
      const auto uidx = static_cast<std::size_t>(u);
      if (mark[uidx] != gen || pos[uidx] != -1) continue;  // not settled
      const double cand = dist[uidx] + weight[static_cast<std::size_t>(e)];
      if (cand < best) {
        best = cand;
        best_edge = e;
      }
    }
    dist[ti] = best;
    parent[ti] = best_edge;
  }
}

bool workspace_path_into(const Graph& g, const DijkstraWorkspace& ws, NodeId src,
                         NodeId dst, Path& out) {
  DCN_EXPECTS(g.valid_node(src));
  DCN_EXPECTS(g.valid_node(dst));
  out.src = src;
  out.dst = dst;
  out.edges.clear();
  if (src == dst) return true;
  if (ws.parent_edge(dst) == kInvalidEdge) return false;
  NodeId at = dst;
  while (at != src) {
    const EdgeId e = ws.parent_edge(at);
    if (e == kInvalidEdge) return false;
    out.edges.push_back(e);
    at = g.edge(e).src;
  }
  std::reverse(out.edges.begin(), out.edges.end());
  return true;
}

std::optional<Path> workspace_path(const Graph& g, const DijkstraWorkspace& ws,
                                   NodeId src, NodeId dst) {
  Path path;
  if (!workspace_path_into(g, ws, src, dst, path)) return std::nullopt;
  return path;
}

std::optional<Path> tree_path(const Graph& g, const ShortestPathTree& tree,
                              NodeId src, NodeId dst) {
  DCN_EXPECTS(g.valid_node(src));
  DCN_EXPECTS(g.valid_node(dst));
  if (tree.distance[static_cast<std::size_t>(dst)] == kInfiniteDistance) {
    return std::nullopt;
  }
  return reconstruct(g, tree.parent_edge, src, dst);
}

std::optional<Path> dijkstra_shortest_path(const Graph& g, NodeId src, NodeId dst,
                                           const std::vector<double>& edge_weights) {
  const ShortestPathTree tree = dijkstra_tree(g, src, edge_weights);
  return tree_path(g, tree, src, dst);
}

std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId src) {
  DCN_EXPECTS(g.valid_node(src));
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  std::queue<NodeId> frontier;
  dist[static_cast<std::size_t>(src)] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.edge(e).dst;
      if (dist[static_cast<std::size_t>(v)] != -1) continue;
      dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
      frontier.push(v);
    }
  }
  return dist;
}

bool is_strongly_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  // Forward reachability from node 0 plus backward reachability (via
  // in-edges) suffices for strong connectivity.
  const std::vector<std::int32_t> fwd = bfs_distances(g, 0);
  if (std::any_of(fwd.begin(), fwd.end(), [](std::int32_t d) { return d == -1; })) {
    return false;
  }
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  std::queue<NodeId> frontier;
  seen[0] = true;
  frontier.push(0);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (EdgeId e : g.in_edges(u)) {
      const NodeId v = g.edge(e).src;
      if (seen[static_cast<std::size_t>(v)]) continue;
      seen[static_cast<std::size_t>(v)] = true;
      frontier.push(v);
    }
  }
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

}  // namespace dcn
