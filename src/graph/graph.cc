#include "graph/graph.h"

namespace dcn {

NodeId Graph::add_node() {
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return num_nodes() - 1;
}

NodeId Graph::add_nodes(std::int32_t n) {
  DCN_EXPECTS(n >= 0);
  const NodeId first = num_nodes();
  out_edges_.resize(out_edges_.size() + static_cast<std::size_t>(n));
  in_edges_.resize(in_edges_.size() + static_cast<std::size_t>(n));
  return first;
}

EdgeId Graph::add_edge(NodeId src, NodeId dst) {
  DCN_EXPECTS(valid_node(src));
  DCN_EXPECTS(valid_node(dst));
  DCN_EXPECTS(src != dst);
  const EdgeId id = num_edges();
  edges_.push_back({src, dst});
  reverse_.push_back(kInvalidEdge);
  out_edges_[static_cast<std::size_t>(src)].push_back(id);
  in_edges_[static_cast<std::size_t>(dst)].push_back(id);
  return id;
}

std::pair<EdgeId, EdgeId> Graph::add_bidirectional_edge(NodeId u, NodeId v) {
  const EdgeId fwd = add_edge(u, v);
  const EdgeId bwd = add_edge(v, u);
  reverse_[static_cast<std::size_t>(fwd)] = bwd;
  reverse_[static_cast<std::size_t>(bwd)] = fwd;
  return {fwd, bwd};
}

}  // namespace dcn
