#include "graph/graph.h"

namespace dcn {

NodeId Graph::add_node() {
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  solo_neighbor_.push_back(kInvalidNode);
  multi_neighbor_.push_back(false);
  return num_nodes() - 1;
}

NodeId Graph::add_nodes(std::int32_t n) {
  DCN_EXPECTS(n >= 0);
  const NodeId first = num_nodes();
  out_edges_.resize(out_edges_.size() + static_cast<std::size_t>(n));
  in_edges_.resize(in_edges_.size() + static_cast<std::size_t>(n));
  solo_neighbor_.resize(solo_neighbor_.size() + static_cast<std::size_t>(n),
                        kInvalidNode);
  multi_neighbor_.resize(multi_neighbor_.size() + static_cast<std::size_t>(n),
                         false);
  return first;
}

void Graph::note_neighbor(NodeId u, NodeId neighbor) {
  NodeId& solo = solo_neighbor_[static_cast<std::size_t>(u)];
  if (solo == kInvalidNode) {
    solo = neighbor;
  } else if (solo != neighbor) {
    multi_neighbor_[static_cast<std::size_t>(u)] = true;
  }
}

EdgeId Graph::add_edge(NodeId src, NodeId dst) {
  DCN_EXPECTS(valid_node(src));
  DCN_EXPECTS(valid_node(dst));
  DCN_EXPECTS(src != dst);
  const EdgeId id = num_edges();
  edges_.push_back({src, dst});
  reverse_.push_back(kInvalidEdge);
  out_edges_[static_cast<std::size_t>(src)].push_back(id);
  in_edges_[static_cast<std::size_t>(dst)].push_back(id);
  note_neighbor(src, dst);
  note_neighbor(dst, src);
  return id;
}

std::pair<EdgeId, EdgeId> Graph::add_bidirectional_edge(NodeId u, NodeId v) {
  const EdgeId fwd = add_edge(u, v);
  const EdgeId bwd = add_edge(v, u);
  reverse_[static_cast<std::size_t>(fwd)] = bwd;
  reverse_[static_cast<std::size_t>(bwd)] = fwd;
  return {fwd, bwd};
}

}  // namespace dcn
