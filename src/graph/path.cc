#include "graph/path.h"

#include <ostream>
#include <unordered_set>

namespace dcn {

bool is_valid_path(const Graph& g, const Path& path) {
  if (!g.valid_node(path.src) || !g.valid_node(path.dst)) return false;
  if (path.edges.empty()) return path.src == path.dst;
  NodeId at = path.src;
  // Membership probes only — never iterated, so hash order cannot
  // reach any result (dcn_lint's unordered-iter rule guards this).
  std::unordered_set<NodeId> visited{at};
  for (EdgeId e : path.edges) {
    if (!g.valid_edge(e)) return false;
    const Edge& edge = g.edge(e);
    if (edge.src != at) return false;
    at = edge.dst;
    if (!visited.insert(at).second) return false;  // repeated node
  }
  return at == path.dst;
}

std::vector<NodeId> path_nodes(const Graph& g, const Path& path) {
  std::vector<NodeId> nodes;
  nodes.reserve(path.edges.size() + 1);
  nodes.push_back(path.src);
  for (EdgeId e : path.edges) nodes.push_back(g.edge(e).dst);
  return nodes;
}

double path_weight(const Path& path, const std::vector<double>& edge_weights) {
  double total = 0.0;
  for (EdgeId e : path.edges) {
    DCN_EXPECTS(e >= 0 && static_cast<std::size_t>(e) < edge_weights.size());
    total += edge_weights[static_cast<std::size_t>(e)];
  }
  return total;
}

std::ostream& operator<<(std::ostream& os, const Path& path) {
  os << path.src;
  for (EdgeId e : path.edges) os << " -e" << e << "->";
  return os << " " << path.dst;
}

}  // namespace dcn
